(* Determinism lint driver: scan the library sources for DES
   nondeterminism hazards (see Pstm_analysis.Source_lint) and fail when
   any unallowlisted site exists. Wired into `dune runtest` through the
   @lint alias. *)

let () =
  let roots =
    match List.tl (Array.to_list Sys.argv) with [] -> [ "lib" ] | roots -> roots
  in
  let files = List.length (Pstm_analysis.Source_lint.ml_files_under roots) in
  match Pstm_analysis.Source_lint.scan_roots roots with
  | [] ->
    Fmt.pr "determinism lint: %d files clean@." files;
    exit 0
  | findings ->
    List.iter (fun f -> Fmt.pr "@[<v>%a@]@." Pstm_analysis.Source_lint.pp_finding f) findings;
    Fmt.pr "determinism lint: %d hazard(s) in %d files@." (List.length findings) files;
    exit 1
