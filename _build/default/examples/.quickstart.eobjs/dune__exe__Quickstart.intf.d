examples/quickstart.mli:
