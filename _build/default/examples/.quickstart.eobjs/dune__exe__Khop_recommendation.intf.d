examples/khop_recommendation.mli:
