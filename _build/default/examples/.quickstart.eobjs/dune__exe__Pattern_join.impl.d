examples/pattern_join.ml: Array Ast Async_engine Channel Cluster Compile Dsl Engine Fmt List Metrics Planner Pstm_engine Pstm_ldbc Pstm_query Snb_gen Snb_schema
