examples/pattern_join.mli:
