examples/quickstart.ml: Array Async_engine Builder Channel Cluster Compile Dsl Engine Fmt Graph Local_engine Metrics Parser Program Pstm_engine Pstm_query Sim_time Value
