examples/khop_recommendation.ml: Array Async_engine Bsp_engine Channel Cluster Compile Dsl Engine Fmt Graph List Pstm_engine Pstm_ldbc Pstm_query Snb_gen Snb_schema Value
