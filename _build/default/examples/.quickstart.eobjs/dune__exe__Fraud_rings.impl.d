examples/fraud_rings.ml: Array Async_engine Builder Channel Cluster Compile Dsl Engine Fmt Graph List Prng Pstm_engine Pstm_query Value
