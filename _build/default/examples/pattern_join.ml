(* Bidirectional pattern matching — the paper's Figure 3.

   "Given a person p and a tag t, find all posts created by one- or
   two-hop friends of p with tag t." The pattern can be matched by
   expanding from either endpoint or by splitting it at the creator and
   joining the two partial paths with the double-pipelined join. This
   example shows the cost-based planner's estimates, its choice, and the
   measured cost of every feasible plan.

     dune exec examples/pattern_join.exe *)

open Pstm_engine
open Pstm_query
open Pstm_ldbc

let () =
  let data = Snb_gen.load Snb_gen.snb_s in
  let graph = data.Snb_gen.graph in
  let person = 77 in
  let tag = "Tag_3" in
  Fmt.pr "pattern: person %d -knows*2- v -hasCreator- post -hasTag- %s@.@." person tag;
  (* The two partial paths of Figure 3, meeting at the post. *)
  let left =
    Dsl.(
      v_lookup ~label:Snb_schema.person ~key:"id" (int person)
      |> as_ "p"
      |> repeat_out Snb_schema.knows ~times:2
      |> where_neq "p"
      |> in_ Snb_schema.has_creator
      |> has_label Snb_schema.post
      |> traversal)
  in
  let right =
    Dsl.(
      v_lookup ~label:Snb_schema.tag ~key:"name" (str tag)
      |> in_ Snb_schema.has_tag
      |> has_label Snb_schema.post
      |> traversal)
  in
  let post = [ Ast.Values "content" ] in
  (* Planner estimates. *)
  let cost_l, card_l = Planner.traversal_cost graph left in
  let cost_r, card_r = Planner.traversal_cost graph right in
  Fmt.pr "estimates: PathA cost %.0f (%.0f matches), PathB cost %.0f (%.0f matches)@." cost_l
    card_l cost_r card_r;
  let chosen = Planner.choose graph ~left ~right in
  Fmt.pr "planner chooses: %s@.@." (Planner.plan_name chosen);
  (* Execute every feasible plan and compare. *)
  List.iter
    (fun plan ->
      match Compile.compile_with_plan ~name:"fig3" graph ~plan ~left ~right ~post with
      | exception Planner.Not_reversible reason ->
        Fmt.pr "%-20s infeasible (%s)@." (Planner.plan_name plan) reason
      | program ->
        let report =
          Async_engine.run ~cluster_config:Cluster.default_config
            ~channel_config:Channel.default_config ~graph
            [| Engine.submit program |]
        in
        let q = report.Engine.queries.(0) in
        Fmt.pr "%-20s %d rows, %.3f ms simulated, %d traverser steps%s@."
          (Planner.plan_name plan) (List.length q.Engine.rows) (Engine.latency_ms q)
          (Metrics.steps report.Engine.metrics)
          (if plan = chosen then "   <- chosen" else ""))
    [ Planner.Bidirectional; Planner.Expand_left; Planner.Expand_right ]
