(* Friend recommendation — the paper's motivating example (Figure 1).

   "A social networking application may suggest new friends to a user by
   selecting the 10 most influential individuals reachable within k steps
   of the 'knows' relationship from that user."

   Runs the exact Figure 1 query on the SNB-like social network for
   several users and hop counts, comparing the asynchronous engine against
   the BSP baseline on the same simulated cluster.

     dune exec examples/khop_recommendation.exe *)

open Pstm_engine
open Pstm_query
open Pstm_ldbc

let config = { Cluster.default_config with Cluster.n_nodes = 8; workers_per_node = 8 }

(* Figure 1a, in the DSL. Persons carry creationDate as their
   "influence" stand-in (the SNB generator has no weight property). *)
let figure1_query data ~person ~hops =
  Compile.compile ~name:(Fmt.str "fig1-%d-hop" hops) data.Snb_gen.graph
    Dsl.(
      v_lookup ~label:Snb_schema.person ~key:"id" (int person)
      |> as_ "start"
      |> repeat_out Snb_schema.knows ~times:hops
      |> where_neq "start"
      |> top_k "creationDate" 10
      |> build)

let () =
  let data = Snb_gen.load Snb_gen.snb_s in
  Fmt.pr "dataset: %s (%d persons, %d vertices, %d edges)@." data.Snb_gen.scale.Snb_gen.name
    (Array.length data.Snb_gen.persons)
    (Graph.n_vertices data.Snb_gen.graph)
    (Graph.n_edges data.Snb_gen.graph);
  List.iter
    (fun person ->
      List.iter
        (fun hops ->
          let program = figure1_query data ~person ~hops in
          let async_report =
            Async_engine.run ~cluster_config:config ~channel_config:Channel.default_config
              ~graph:data.Snb_gen.graph
              [| Engine.submit program |]
          in
          let bsp_report =
            Bsp_engine.run ~cluster_config:config ~graph:data.Snb_gen.graph
              [| Engine.submit program |]
          in
          let q = async_report.Engine.queries.(0) in
          Fmt.pr "@.person %d, %d hops:@." person hops;
          (match q.Engine.rows with
          | [ [| Value.List influencers |] ] ->
            Fmt.pr "  recommend: %a@." (Fmt.list ~sep:(Fmt.any ", ") Value.pp) influencers
          | rows -> Fmt.pr "  rows: %a@." (Fmt.list (Fmt.array Value.pp)) rows);
          Fmt.pr "  async: %.3f ms | bsp: %.3f ms (simulated, 8 nodes)@."
            (Engine.latency_ms q)
            (Engine.latency_ms bsp_report.Engine.queries.(0)))
        [ 2; 3 ])
    [ 11; 42 ]
