(* Real-time fraud screening on a payments graph.

   The paper's introduction lists fraud detection as a driving workload
   for interactive complex queries. This example builds an
   account/device/merchant graph with a few planted fraud rings (accounts
   that share devices and move money in cycles) and runs two screening
   queries under interactive latency requirements:

   1. device fan-out: for a flagged account, how many distinct accounts
      share devices within 2 device-hops (classic collusion signal);
   2. mule-chain reach: which merchants are reachable through 3 transfer
      hops from the flagged account, ranked by amount received.

     dune exec examples/fraud_rings.exe *)

open Pstm_engine
open Pstm_query

let build_payments_graph () =
  let prng = Prng.create 2024 in
  let b = Builder.create () in
  let n_accounts = 3_000 in
  let n_devices = 1_200 in
  let n_merchants = 150 in
  let accounts =
    Array.init n_accounts (fun i ->
        Builder.add_vertex b ~label:"Account"
          ~props:[ ("id", Value.Int i); ("risk", Value.Int (Prng.int prng 100)) ]
          ())
  in
  let devices =
    Array.init n_devices (fun i ->
        Builder.add_vertex b ~label:"Device" ~props:[ ("id", Value.Int i) ] ())
  in
  let merchants =
    Array.init n_merchants (fun i ->
        Builder.add_vertex b ~label:"Merchant"
          ~props:[ ("id", Value.Int i); ("volume", Value.Int (Prng.int prng 1_000_000)) ]
          ())
  in
  (* Normal behaviour: accounts use 1-2 devices, pay a few merchants,
     occasionally transfer to each other. *)
  Array.iter
    (fun a ->
      for _ = 1 to 1 + Prng.int prng 2 do
        ignore (Builder.add_edge b ~src:a ~label:"uses" ~dst:(Prng.pick prng devices) ())
      done;
      for _ = 1 to Prng.int prng 4 do
        ignore (Builder.add_edge b ~src:a ~label:"pays" ~dst:(Prng.pick prng merchants) ())
      done;
      if Prng.chance prng 0.5 then
        ignore (Builder.add_edge b ~src:a ~label:"transfers" ~dst:(Prng.pick prng accounts) ()))
    accounts;
  (* Planted rings: a clique of accounts sharing one device pool and
     chaining transfers toward a cash-out merchant. *)
  let rings = [ (0, 12); (1_000, 9); (2_000, 15) ] in
  List.iter
    (fun (base, size) ->
      let shared = Array.init 3 (fun i -> devices.((base + i) mod n_devices)) in
      for i = 0 to size - 1 do
        let a = accounts.(base + i) in
        Array.iter (fun d -> ignore (Builder.add_edge b ~src:a ~label:"uses" ~dst:d ())) shared;
        let next = accounts.(base + ((i + 1) mod size)) in
        ignore (Builder.add_edge b ~src:a ~label:"transfers" ~dst:next ())
      done;
      ignore
        (Builder.add_edge b ~src:accounts.(base) ~label:"pays" ~dst:merchants.(base mod n_merchants) ()))
    rings;
  (* Devices point back at their users so device-hops are traversable. *)
  Builder.build b

let () =
  let graph = build_payments_graph () in
  let config = { Cluster.default_config with Cluster.n_nodes = 4; workers_per_node = 8 } in
  let run name ast =
    let program = Compile.compile ~name graph ast in
    let report =
      Async_engine.run ~cluster_config:config ~channel_config:Channel.default_config ~graph
        [| Engine.submit program |]
    in
    let q = report.Engine.queries.(0) in
    Fmt.pr "@.%s (simulated %.3f ms):@." name (Engine.latency_ms q);
    List.iteri
      (fun i row -> if i < 8 then Fmt.pr "  %a@." (Fmt.array ~sep:(Fmt.any " | ") Value.pp) row)
      q.Engine.rows;
    if List.length q.Engine.rows > 8 then
      Fmt.pr "  ... (%d rows total)@." (List.length q.Engine.rows)
  in
  let flagged = 1_003 (* an account inside the second planted ring *) in
  Fmt.pr "screening account %d on a %d-vertex payments graph@." flagged (Graph.n_vertices graph);
  (* Query 1: collusion fan-out via shared devices. [uses] edges are
     traversed forward to devices and backward to co-users. *)
  run "device-collusion-count"
    Dsl.(
      v_lookup ~label:"Account" ~key:"id" (int flagged)
      |> as_ "flagged"
      |> out_ "uses" (* my devices *)
      |> in_ "uses" (* accounts sharing them *)
      |> where_neq "flagged"
      |> dedup
      |> count
      |> build);
  (* Query 2: where does the money go? Merchants reachable through up to
     3 transfer hops, by volume. *)
  run "mule-chain-merchants"
    Dsl.(
      v_lookup ~label:"Account" ~key:"id" (int flagged)
      |> repeat_out "transfers" ~times:3
      |> out_ "pays"
      |> dedup
      |> top_k "volume" 5
      |> build);
  (* Query 3: rank co-located accounts by risk score. *)
  run "risky-neighbors"
    Dsl.(
      v_lookup ~label:"Account" ~key:"id" (int flagged)
      |> as_ "flagged"
      |> out_ "uses"
      |> in_ "uses"
      |> where_neq "flagged"
      |> dedup
      |> top_k "risk" 5
      |> build)
