(* Quickstart: build a property graph, write a query three ways (DSL,
   Gremlin text, raw step ISA), and run it on the reference interpreter
   and on a simulated GraphDance cluster.

     dune exec examples/quickstart.exe *)

open Pstm_engine
open Pstm_query

let () =
  (* 1. Build a small property graph: people who follow each other. *)
  let b = Builder.create () in
  let people = [| "ada"; "bob"; "cyd"; "dee"; "eli"; "fay" |] in
  let ids =
    Array.mapi
      (fun i name ->
        Builder.add_vertex b ~label:"Person"
          ~props:[ ("name", Value.Str name); ("id", Value.Int i); ("karma", Value.Int (10 * (i + 1))) ]
          ())
      people
  in
  let follow src dst = ignore (Builder.add_edge b ~src:ids.(src) ~label:"follows" ~dst:ids.(dst) ()) in
  follow 0 1;
  follow 0 2;
  follow 1 3;
  follow 2 3;
  follow 3 4;
  follow 4 5;
  follow 5 0;
  let graph = Builder.build b in
  Fmt.pr "graph: %d vertices, %d edges@." (Graph.n_vertices graph) (Graph.n_edges graph);

  (* 2a. A query through the combinator DSL: who is within 2 follow hops
     of ada, ranked by karma? *)
  let ast =
    Dsl.(
      v_lookup ~label:"Person" ~key:"name" (str "ada")
      |> as_ "me"
      |> repeat_out "follows" ~times:2
      |> where_neq "me"
      |> top_k "karma" 3
      |> build)
  in
  let program = Compile.compile ~name:"influencers" graph ast in
  Fmt.pr "@.compiled plan:@.%a@." Program.pp program;

  (* 2b. The same query as Gremlin text through the parser. *)
  let parsed =
    Parser.parse_exn
      "g.V().hasLabel('Person').has('name', 'ada').as('me')\n\
      \ .repeat(out('follows')).times(2).where(neq('me'))\n\
      \ .order().by('karma', desc).limit(3)"
  in
  let program' = Compile.compile ~name:"influencers-text" graph parsed in
  ignore program';

  (* 3. Run on the reference interpreter. *)
  let rows = Local_engine.run graph program in
  Fmt.pr "reference result: %a@." (Fmt.list (Fmt.array Value.pp)) rows;

  (* 4. Run on a simulated 4-node GraphDance cluster and report the
     simulated latency. *)
  let report =
    Async_engine.run
      ~cluster_config:{ Cluster.default_config with Cluster.n_nodes = 4; workers_per_node = 4 }
      ~channel_config:Channel.default_config ~graph
      [| Engine.submit program |]
  in
  let q = report.Engine.queries.(0) in
  Fmt.pr "cluster result:   %a@." (Fmt.list (Fmt.array Value.pp)) q.Engine.rows;
  (match Engine.latency q with
  | Some l -> Fmt.pr "simulated latency on 4 nodes: %a@." Sim_time.pp l
  | None -> assert false);
  Fmt.pr "messages: %d traverser, %d progress-tracking@."
    (Metrics.messages report.Engine.metrics Metrics.Traverser_msg)
    (Metrics.messages report.Engine.metrics Metrics.Progress_msg)
