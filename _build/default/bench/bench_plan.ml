(* Join-plan ablation (§III-A, Figure 3).

   The IC6 pattern — person's 2-hop friends' posts joined with posts
   carrying a given tag — executed under each plan the cost-based planner
   can choose: bidirectional double-pipelined join, or unidirectional
   expansion from either endpoint. Reports what the planner picked and
   how each plan actually performed. *)

open Pstm_engine
open Pstm_ldbc
open Harness

let run () =
  let data = Snb_gen.load Snb_gen.snb_s in
  let graph = data.Snb_gen.graph in
  let prng = Pstm_util.Prng.create 23 in
  let left, right, post = Ic_queries.ic6_sides data prng in
  let chosen = Pstm_query.Planner.choose graph ~left ~right in
  Printf.printf "\n  cost-based planner chose: %s\n" (Pstm_query.Planner.plan_name chosen);
  let plans =
    [
      Pstm_query.Planner.Bidirectional;
      Pstm_query.Planner.Expand_left;
      Pstm_query.Planner.Expand_right;
    ]
  in
  let rows =
    List.filter_map
      (fun plan ->
        match
          Pstm_query.Compile.compile_with_plan ~name:"IC6-plan" graph ~plan ~left ~right ~post
        with
        | exception Pstm_query.Planner.Not_reversible reason ->
          Some [ Pstm_query.Planner.plan_name plan; "infeasible"; "-"; "-"; reason ]
        | program ->
          let report = run_graphdance graph [| Engine.submit program |] in
          Some
            [
              Pstm_query.Planner.plan_name plan;
              ms (Engine.mean_latency_ms report);
              string_of_int (Pstm_sim.Metrics.steps report.Engine.metrics);
              string_of_int (Pstm_sim.Metrics.spawned report.Engine.metrics);
              (if plan = chosen then "<- chosen" else "");
            ])
      plans
  in
  print_table
    ~title:"Figure 3 ablation: IC6 under each join plan (SNB-S)"
    ~headers:[ "Plan"; "Latency (ms)"; "Steps executed"; "Traversers"; "" ]
    rows
