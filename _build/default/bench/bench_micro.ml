(* Wall-clock microbenchmarks (Bechamel) of the hot primitives underneath
   the simulator's cost model: weight arithmetic, memo operations, top-k
   accumulation, CSR adjacency scans and single-step execution. *)

open Bechamel
open Toolkit

let weight_tests () =
  let prng = Pstm_util.Prng.create 1 in
  [
    Test.make ~name:"weight-split2"
      (Staged.stage (fun () -> ignore (Pstm_core.Weight.split2 prng Pstm_core.Weight.root)));
    Test.make ~name:"weight-add"
      (Staged.stage
         (let w = ref Pstm_core.Weight.zero in
          fun () -> w := Pstm_core.Weight.add !w Pstm_core.Weight.root));
    Test.make ~name:"prng-next"
      (Staged.stage (fun () -> ignore (Pstm_util.Prng.next_int64 prng)));
  ]

let memo_tests () =
  let memo = Pstm_core.Memo.create () in
  let prng = Pstm_util.Prng.create 2 in
  [
    Test.make ~name:"memo-dedup-probe"
      (Staged.stage (fun () ->
           ignore
             (Pstm_core.Memo.add_if_absent memo ~qid:0 ~label:1
                (Value.Int (Pstm_util.Prng.int prng 100_000)))));
    Test.make ~name:"memo-min-dist"
      (Staged.stage (fun () ->
           ignore
             (Pstm_core.Memo.min_int_update memo ~qid:0 ~label:2
                (Value.Vertex (Pstm_util.Prng.int prng 100_000))
                (Pstm_util.Prng.int prng 8))));
  ]

let structure_tests () =
  let prng = Pstm_util.Prng.create 3 in
  let topk =
    Pstm_util.Topk.create ~k:10
      ~cmp:(fun (a, _) (b, _) -> compare (a : int) b)
      ~dummy:(0, 0)
  in
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.lj_like in
  let n = Graph.n_vertices graph in
  [
    Test.make ~name:"topk-add"
      (Staged.stage (fun () ->
           Pstm_util.Topk.add topk (Pstm_util.Prng.int prng 1_000_000, Pstm_util.Prng.int prng n)));
    Test.make ~name:"csr-expand-scan"
      (Staged.stage (fun () ->
           let v = Pstm_util.Prng.int prng n in
           let acc = ref 0 in
           Graph.iter_adjacent graph ~dir:Graph.Out v (fun ~target ~edge_id:_ ~label:_ ->
               acc := !acc + target);
           ignore !acc));
    Test.make ~name:"value-compare"
      (Staged.stage (fun () ->
           ignore (Value.compare (Value.Int (Pstm_util.Prng.int prng 100)) (Value.Int 50))));
  ]

let run () =
  Printf.printf "\n== Microbenchmarks (wall clock, Bechamel OLS ns/op) ==\n";
  let tests = weight_tests () @ memo_tests () @ structure_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let stats = Analyze.all ols (List.hd instances) results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] -> Printf.printf "  %-20s %10.1f ns/op\n" name ns
          | _ -> Printf.printf "  %-20s (no estimate)\n" name)
        stats)
    tests
