bench/main.mli:
