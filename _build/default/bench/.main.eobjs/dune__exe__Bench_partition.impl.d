bench/bench_partition.ml: Array Async_engine Engine Float Harness List Partition Printf Pstm_engine Pstm_gen
