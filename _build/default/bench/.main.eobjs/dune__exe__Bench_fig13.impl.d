bench/bench_fig13.ml: Array Cluster Harness List Printf Pstm_engine Pstm_gen Pstm_sim
