bench/bench_plan.ml: Engine Harness Ic_queries List Printf Pstm_engine Pstm_ldbc Pstm_query Pstm_sim Pstm_util Snb_gen
