bench/bench_breakdown.ml: Array Async_engine Channel Engine Float Harness List Metrics Printf Pstm_engine Pstm_gen Pstm_sim
