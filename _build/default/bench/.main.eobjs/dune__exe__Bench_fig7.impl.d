bench/bench_fig7.ml: Array Driver Harness Ic_queries Is_queries List Printf Pstm_ldbc Pstm_sim Pstm_util Snb_gen
