bench/bench_micro.ml: Analyze Bechamel Benchmark Graph Hashtbl Instance List Measure Printf Pstm_core Pstm_gen Pstm_util Staged Test Time Toolkit Value
