bench/bench_tables.ml: Engine Float Graph Harness Ic_queries Is_queries List Printf Program Pstm_engine Pstm_gen Pstm_ldbc Pstm_query Pstm_sim Pstm_util Snb_gen
