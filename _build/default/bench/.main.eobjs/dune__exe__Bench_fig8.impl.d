bench/bench_fig8.ml: Array Bsp_engine Driver Engine Float Graph Harness Ic_queries List Printf Pstm_engine Pstm_ldbc Pstm_sim Pstm_util Single_node_engine Snb_gen
