bench/bench_fig9.ml: Harness List Printf Pstm_engine Pstm_gen
