bench/main.ml: Array Bench_breakdown Bench_fig13 Bench_fig7 Bench_fig8 Bench_fig9 Bench_micro Bench_partition Bench_plan Bench_tables Harness List Option Printf Pstm_ldbc String Sys
