bench/harness.ml: Array Async_engine Bsp_engine Channel Cluster Compile Dsl Engine Graph List Printf Pstm_engine Pstm_query Pstm_util String
