(* Figure 13: hardware impact.

   Relative k-hop latency under reduced network bandwidth and reduced CPU
   core counts. Expected shape: deep (3-/4-hop) queries speed up
   substantially on modern hardware (up to ~2.7x in the paper) and need
   *both* resources, while 2-hop queries are latency-bound and flat. *)

open Harness

let bandwidths = [ 200.0; 50.0; 12.5 ]
let cores = [ 16; 4 ]
let hops_list = [ 2; 3; 4 ]

let run () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.fs_like in
  let start = (khop_starts graph ~seed:35 ~n:1).(0) in
  let latency ~gbps ~workers ~hops =
    let config =
      {
        (cluster ~nodes:8 ~workers) with
        Cluster.net = Pstm_sim.Netmodel.with_bandwidth Pstm_sim.Netmodel.default gbps;
      }
    in
    Pstm_engine.Engine.mean_latency_ms
      (khop_report ~run:(fun g s -> run_graphdance ~config g s) graph ~hops ~start)
  in
  let rows =
    List.concat_map
      (fun workers ->
        List.map
          (fun gbps ->
            let cells =
              List.map
                (fun hops -> latency ~gbps ~workers ~hops)
                hops_list
            in
            Printf.sprintf "%g Gbps x %d cores" gbps workers :: List.map ms cells)
          bandwidths)
      cores
  in
  (* Normalize against the best (modern) configuration per hop count. *)
  let best =
    List.map (fun hops -> latency ~gbps:200.0 ~workers:16 ~hops) hops_list
  in
  let rel_rows =
    List.map
      (fun row ->
        match row with
        | name :: cells ->
          name
          :: List.map2
               (fun cell best -> Printf.sprintf "%.2fx" (float_of_string cell /. best))
               cells best
        | [] -> [])
      rows
  in
  print_table
    ~title:"Figure 13: FS-like k-hop latency under reduced hardware (ms)"
    ~headers:[ "Hardware"; "2-hop"; "3-hop"; "4-hop" ]
    rows;
  print_table
    ~title:"Figure 13 (relative to 200 Gbps x 16 cores)"
    ~headers:[ "Hardware"; "2-hop"; "3-hop"; "4-hop" ]
    rel_rows
