(* Table I and Table II of the paper.

   Table I characterizes the three workload classes by actually running a
   representative of each on the simulated cluster and measuring accessed
   data, compute stages and latency. Table II reports the generated
   datasets standing in for the paper's. *)

open Pstm_engine
open Pstm_ldbc
open Harness

let table2 () =
  let rows =
    List.map
      (fun (name, vertices, edges, bytes) ->
        [
          name;
          string_of_int vertices;
          string_of_int edges;
          Printf.sprintf "%.1f MB" (fi bytes /. 1e6);
        ])
      [
        Snb_gen.row Snb_gen.snb_s;
        Snb_gen.row Snb_gen.snb_l;
        Pstm_gen.Datasets.row Pstm_gen.Datasets.lj_like;
        Pstm_gen.Datasets.row Pstm_gen.Datasets.fs_like;
      ]
  in
  print_table ~title:"Table II: graph datasets used in evaluation (scaled stand-ins)"
    ~headers:[ "Dataset"; "# Vertices"; "# Edges"; "Raw Size" ]
    rows;
  print_endline
    "  (SNB-S plays LDBC SF300, SNB-L plays SF1000, LJ-like plays LiveJournal,\n\
    \   FS-like plays Friendster; see DESIGN.md for the substitution rationale)"

(* One representative query per workload class, measured. *)
let table1 () =
  let data = Snb_gen.load Snb_gen.snb_s in
  let graph = data.Snb_gen.graph in
  let total_data = fi (Graph.n_vertices graph + Graph.n_edges graph) in
  let measure name program =
    let report = run_graphdance graph [| Engine.submit program |] in
    let metrics = report.Engine.metrics in
    let accessed =
      Float.min 100.0
        (100.0
        *. fi (Pstm_sim.Metrics.steps metrics + Pstm_sim.Metrics.edges_scanned metrics)
        /. total_data)
    in
    let stages = Program.n_steps program in
    let latency = Engine.mean_latency_ms report in
    (name, accessed, stages, latency)
  in
  let prng = Pstm_util.Prng.create 5 in
  let transactional = measure "Transactional (IS4)" (Is_queries.is4 data prng) in
  let interactive = measure "Interactive Complex (IC9)" (Ic_queries.ic9 data prng) in
  let analytics =
    (* PageRank-style: one full pass over every adjacency list. *)
    measure "Offline Analytics (edge scan)"
      (Pstm_query.Compile.compile ~name:"scan-edges" graph
         Pstm_query.Dsl.(v () |> out () |> count |> build))
  in
  let rows =
    List.map
      (fun (name, accessed, stages, latency) ->
        [
          name;
          Printf.sprintf "%.4f%%" accessed;
          string_of_int stages;
          (if latency < 0.01 then Printf.sprintf "%.1f us" (latency *. 1000.0)
           else Printf.sprintf "%.3f ms" latency);
          Printf.sprintf "%.0f QPS" (1000.0 /. Float.max latency 1e-6);
        ])
      [ transactional; interactive; analytics ]
  in
  print_table
    ~title:"Table I: measured workload-class characteristics (SNB-S, 8-node cluster)"
    ~headers:[ "Workload"; "Accessed data"; "Plan steps"; "Latency"; "Per-stream QPS" ]
    rows
