(* Performance breakdown: Figures 10, 11 and 12.

   Fig 10: query latency with weight coalescing (WC) on vs off.
   Fig 11: progress-tracking messages vs other messages, WC on vs off.
   Fig 12: the two-tier I/O scheduler — no batching, thread-level
   combining only (TLC), and TLC + node-level combining (NLC). *)

open Pstm_engine
open Pstm_sim
open Harness

let datasets =
  [ ("LJ-like", Pstm_gen.Datasets.lj_like); ("FS-like", Pstm_gen.Datasets.fs_like) ]

let hops_list = [ 2; 3; 4 ]

let wc_options on = { Async_engine.default_options with Async_engine.weight_coalescing = on }

(* Figures 10 and 11 come from the same pair of runs. *)
let weight_coalescing () =
  let lat_rows = ref [] in
  let msg_rows = ref [] in
  List.iter
    (fun (dname, preset) ->
      let graph = Pstm_gen.Datasets.load preset in
      let start = (khop_starts graph ~seed:33 ~n:1).(0) in
      List.iter
        (fun hops ->
          let report_with on =
            khop_report
              ~run:(fun g s -> run_graphdance ~options:(wc_options on) g s)
              graph ~hops ~start
          in
          let on = report_with true in
          let off = report_with false in
          let lat r = Engine.mean_latency_ms r in
          let progress r = Metrics.messages r.Engine.metrics Metrics.Progress_msg in
          let others r =
            Metrics.total_messages r.Engine.metrics - progress r
          in
          let name = Printf.sprintf "%s %d-hop" dname hops in
          lat_rows :=
            [
              name;
              ms (lat on);
              ms (lat off);
              pct (100.0 *. (1.0 -. (lat on /. Float.max (lat off) 1e-9)));
            ]
            :: !lat_rows;
          msg_rows :=
            [
              name;
              string_of_int (progress on);
              string_of_int (progress off);
              string_of_int (others on);
              pct (100.0 *. (1.0 -. (fi (progress on) /. Float.max (fi (progress off)) 1.0)));
            ]
            :: !msg_rows)
        hops_list)
    datasets;
  print_table ~title:"Figure 10: impact of weight coalescing on k-hop latency"
    ~headers:[ "Query"; "WC on (ms)"; "WC off (ms)"; "time saved" ]
    (List.rev !lat_rows);
  print_table
    ~title:"Figure 11: progress-tracking messages vs other messages"
    ~headers:[ "Query"; "progress (WC)"; "progress (no WC)"; "other msgs"; "reduction" ]
    (List.rev !msg_rows)

(* Figure 12: channel configurations. *)
let io_scheduler () =
  let configs =
    [
      ("no batching", Channel.no_batching);
      ("+TLC", Channel.tlc_only);
      ("+TLC+NLC", Channel.default_config);
    ]
  in
  let rows = ref [] in
  List.iter
    (fun (dname, preset) ->
      let graph = Pstm_gen.Datasets.load preset in
      let start = (khop_starts graph ~seed:34 ~n:1).(0) in
      List.iter
        (fun hops ->
          let lats =
            List.map
              (fun (_, channel) ->
                Engine.mean_latency_ms
                  (khop_report
                     ~run:(fun g s -> run_graphdance ~channel g s)
                     graph ~hops ~start))
              configs
          in
          let base = List.nth lats 0 in
          let row =
            (Printf.sprintf "%s %d-hop" dname hops :: List.map ms lats)
            @ [ Printf.sprintf "%.1fx" (base /. Float.max (List.nth lats 2) 1e-9) ]
          in
          rows := row :: !rows)
        hops_list)
    datasets;
  print_table
    ~title:"Figure 12: two-tier I/O scheduler, k-hop latency (ms)"
    ~headers:[ "Query"; "no batching"; "+TLC"; "+TLC+NLC"; "speedup" ]
    (List.rev !rows)

let run () =
  weight_coalescing ();
  io_scheduler ()
