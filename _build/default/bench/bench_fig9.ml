(* Figure 9: vertical and horizontal scalability of the k-hop query.

   GraphDance vs the Banyan-like and GAIA-like dataflow engines and the
   BSP engine on the LJ-like and FS-like graphs. Vertical: worker threads
   on one node. Horizontal: nodes at a fixed per-node thread count.
   Expected shapes from the paper: GraphDance scales near-linearly; the
   dataflow engines flatten (per-operator scheduling overhead grows with
   workers; GAIA additionally centralizes aggregation); Banyan can beat
   GraphDance at very low thread counts on deep queries; BSP is strongest
   on the largest queries where barriers amortize. *)

open Harness

let systems =
  [
    ("GraphDance", fun config graph subs -> run_graphdance ~config graph subs);
    ("Banyan-like", fun config graph subs -> run_flavor Pstm_engine.Async_engine.Banyan_like ~config graph subs);
    ("GAIA-like", fun config graph subs -> run_flavor Pstm_engine.Async_engine.Gaia_like ~config graph subs);
    ("BSP", fun config graph subs -> run_bsp ~config graph subs);
  ]

let datasets =
  [ ("LJ-like", Pstm_gen.Datasets.lj_like); ("FS-like", Pstm_gen.Datasets.fs_like) ]

let hops_list = [ 2; 4 ]

let sweep ~title ~configs =
  List.iter
    (fun (dname, preset) ->
      let graph = Pstm_gen.Datasets.load preset in
      let starts = khop_starts graph ~seed:31 ~n:1 in
      List.iter
        (fun hops ->
          let rows =
            List.map
              (fun (cname, config) ->
                cname
                :: List.map
                     (fun (_, run) ->
                       ms (khop_latency ~run:(run config) graph ~hops ~starts))
                     systems)
              configs
          in
          print_table
            ~title:(Printf.sprintf "%s — %s %d-hop latency (ms)" title dname hops)
            ~headers:("Config" :: List.map fst systems)
            rows)
        hops_list)
    datasets

let vertical () =
  sweep ~title:"Figure 9 (vertical: threads on one node)"
    ~configs:
      (List.map
         (fun w -> (Printf.sprintf "%d threads" w, cluster ~nodes:1 ~workers:w))
         [ 1; 4; 16; 32 ])

let horizontal () =
  sweep ~title:"Figure 9 (horizontal: nodes x 16 threads)"
    ~configs:
      (List.map
         (fun n -> (Printf.sprintf "%d nodes" n, cluster ~nodes:n ~workers:16))
         [ 1; 2; 4; 8 ])

let run () =
  vertical ();
  horizontal ()
