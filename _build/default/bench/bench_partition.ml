(* Partition-strategy ablation (design decision 2 of DESIGN.md).

   The paper's H is a hash partitioner; this ablation contrasts it with
   modulo and block (range) partitioning on the k-hop workload. Block
   partitioning concentrates BFS frontiers (and the generators' low-id
   hubs) on few workers, so the straggler ratio — busiest worker over
   mean — degrades, and latency with it. *)

open Pstm_engine
open Harness

let strategies =
  [ ("hash", Partition.Hash); ("modulo", Partition.Mod); ("block/range", Partition.Block) ]

let run () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.lj_like in
  let start = (khop_starts graph ~seed:77 ~n:1).(0) in
  let rows =
    List.concat_map
      (fun hops ->
        List.map
          (fun (name, strategy) ->
            let options = { Async_engine.default_options with Async_engine.partition = strategy } in
            let report =
              run_graphdance ~options graph [| Engine.submit (khop_program graph ~start ~hops) |]
            in
            let busy = report.Engine.worker_busy in
            let total = Array.fold_left ( + ) 0 busy in
            let mean = fi total /. fi (Array.length busy) in
            let straggler = fi (Array.fold_left max 0 busy) /. Float.max mean 1.0 in
            [
              Printf.sprintf "%d-hop %s" hops name;
              ms (Engine.mean_latency_ms report);
              Printf.sprintf "%.2fx" straggler;
            ])
          strategies)
      [ 2; 4 ]
  in
  print_table
    ~title:"Partition-strategy ablation: LJ-like k-hop under different H"
    ~headers:[ "Config"; "Latency (ms)"; "Straggler (max/mean busy)" ]
    rows
