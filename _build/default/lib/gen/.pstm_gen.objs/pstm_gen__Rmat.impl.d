lib/gen/rmat.ml: Builder Hashtbl Prng Vec
