lib/gen/datasets.mli: Graph Rmat
