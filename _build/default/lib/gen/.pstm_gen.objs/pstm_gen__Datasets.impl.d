lib/gen/datasets.ml: Array Builder Graph Hashtbl Prng Rmat Value
