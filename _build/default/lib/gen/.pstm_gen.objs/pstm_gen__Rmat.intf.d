lib/gen/rmat.mli: Graph Prng
