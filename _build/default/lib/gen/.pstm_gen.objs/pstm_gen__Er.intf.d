lib/gen/er.mli: Graph Prng
