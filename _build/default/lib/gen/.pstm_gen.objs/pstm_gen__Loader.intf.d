lib/gen/loader.mli: Graph
