lib/gen/loader.ml: Array Builder Fmt Graph Hashtbl List Printf Prng String Value Vec
