lib/gen/er.ml: Array Builder Prng
