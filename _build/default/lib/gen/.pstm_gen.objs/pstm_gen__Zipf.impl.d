lib/gen/zipf.ml: Array Float Prng
