lib/gen/zipf.mli: Prng
