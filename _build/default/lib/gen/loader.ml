(* SNAP edge-list loader.

   The paper's LiveJournal and Friendster datasets are distributed as SNAP
   text files: '#'-comment headers, then one "src dst" pair per line. This
   loader reads that format (so the real files can be dropped in where the
   synthetic stand-ins are used), remaps arbitrary vertex ids to a dense
   range, optionally symmetrizes, and attaches the id/weight properties
   the k-hop benchmarks expect. [save] writes the same format back. *)

exception Parse_error of string

let parse_error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* Parse one "src dst" line; [None] for comments and blanks. *)
let parse_line ~lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else begin
    let is_sep c = c = ' ' || c = '\t' || c = ',' in
    match String.split_on_char ' ' (String.map (fun c -> if is_sep c then ' ' else c) line) with
    | [] -> None
    | fields -> begin
      match List.filter (fun f -> f <> "") fields with
      | [ a; b ] -> begin
        match int_of_string_opt a, int_of_string_opt b with
        | Some s, Some d -> Some (s, d)
        | _ -> parse_error "line %d: expected two integers, got %S" lineno line
      end
      | _ -> parse_error "line %d: expected two fields, got %S" lineno line
    end
  end

(* Read raw (src, dst) pairs with their original ids. *)
let read_edges channel =
  let edges = Vec.create ~dummy:(0, 0) in
  let lineno = ref 0 in
  (try
     while true do
       incr lineno;
       let line = input_line channel in
       match parse_line ~lineno:!lineno line with
       | Some pair -> Vec.push edges pair
       | None -> ()
     done
   with End_of_file -> ());
  Vec.to_array edges

(* Dense remapping: SNAP ids are sparse and arbitrary. *)
let densify edges =
  let ids = Hashtbl.create (2 * Array.length edges) in
  let next = ref 0 in
  let map v =
    match Hashtbl.find_opt ids v with
    | Some d -> d
    | None ->
      let d = !next in
      incr next;
      Hashtbl.add ids v d;
      d
  in
  let dense = Array.map (fun (s, d) -> (map s, map d)) edges in
  (dense, !next)

let of_channel ?(symmetrize = false) ?(weight_seed = 17) channel =
  let raw = read_edges channel in
  let edges, n_vertices = densify raw in
  let edges =
    if symmetrize then Array.concat [ edges; Array.map (fun (s, d) -> (d, s)) edges ]
    else edges
  in
  let b = Builder.of_edges ~vertex_label:"vertex" ~edge_label:"link" ~n_vertices edges in
  let prng = Prng.create weight_seed in
  for v = 0 to n_vertices - 1 do
    Builder.set_vertex_prop b ~vertex:v ~key:"id" (Value.Int v);
    Builder.set_vertex_prop b ~vertex:v ~key:"weight" (Value.Int (Prng.int prng 1_000_000))
  done;
  Builder.build b

let load ?symmetrize ?weight_seed path =
  let channel = open_in path in
  match of_channel ?symmetrize ?weight_seed channel with
  | graph ->
    close_in channel;
    graph
  | exception e ->
    close_in_noerr channel;
    raise e

let save graph path =
  let channel = open_out path in
  (try
     Printf.fprintf channel "# Directed edge list: %d vertices, %d edges\n"
       (Graph.n_vertices graph) (Graph.n_edges graph);
     Graph.iter_vertices graph (fun v ->
         Graph.iter_adjacent graph ~dir:Graph.Out v (fun ~target ~edge_id:_ ~label:_ ->
             Printf.fprintf channel "%d\t%d\n" v target))
   with e ->
     close_out_noerr channel;
     raise e);
  close_out channel
