(** Erdős–Rényi G(n, m) random graphs (self-loop free, duplicates allowed). *)

val generate : Prng.t -> n_vertices:int -> n_edges:int -> (int * int) array
val graph : ?vertex_label:string -> ?edge_label:string -> Prng.t -> n_vertices:int -> n_edges:int -> Graph.t
