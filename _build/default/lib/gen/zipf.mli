(** Zipf-distributed sampling and power-law degree sequences. *)

type t

(** [create ~n ~exponent] samples indices in [0, n) with probability
    proportional to [(i+1) ** -exponent]. *)
val create : n:int -> exponent:float -> t

val size : t -> int
val sample : t -> Prng.t -> int

(** Power-law degrees summing to roughly [target_edges], shuffled so hubs
    spread across hash partitions. *)
val degree_sequence : Prng.t -> n:int -> target_edges:int -> exponent:float -> int array
