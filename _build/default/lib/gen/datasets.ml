(* Dataset presets standing in for the paper's Table II graphs.

   The SNAP LiveJournal (4M vertices / 34.7M edges) and Friendster (65.6M /
   1.8B) downloads are not available in this container, so two R-MAT presets
   reproduce their roles at a scale the simulator sweeps in seconds: the
   LJ-like preset is the "medium" graph and the FS-like preset the "large,
   denser" one (higher edge factor, more skew), preserving the relative
   frontier-growth behaviour that Figures 9-13 depend on. Vertices carry the
   random integer [weight] property that the paper assigns for aggregation
   queries. *)

type preset = {
  name : string;
  paper_name : string;
  rmat : Rmat.params;
  seed : int;
}

let lj_like =
  {
    name = "LJ-like";
    paper_name = "LiveJournal (4.0M v / 34.7M e)";
    rmat = { Rmat.default with scale = 14; edge_factor = 9; a = 0.48; b = 0.21; c = 0.21 };
    seed = 42;
  }

let fs_like =
  {
    name = "FS-like";
    paper_name = "Friendster (65.6M v / 1.8B e)";
    rmat = { Rmat.default with scale = 15; edge_factor = 14; a = 0.48; b = 0.21; c = 0.21 };
    seed = 43;
  }

(* A small preset for unit tests and the quickstart example. *)
let tiny =
  {
    name = "tiny";
    paper_name = "(test fixture)";
    rmat = { Rmat.default with scale = 8; edge_factor = 8 };
    seed = 7;
  }

let all = [ lj_like; fs_like ]

let cache : (string, Graph.t) Hashtbl.t = Hashtbl.create 4

(* Vertex weights follow the paper: "we assign a random integer weight to
   each vertex for aggregation queries" (§V). Edges are stored in both
   directions (social-network symmetrization): R-MAT emits directed pairs,
   and a directed power-law graph leaves ~40% of vertices without
   out-edges, which would make traversal starts degenerate. *)
let build preset =
  let prng = Prng.create preset.seed in
  let directed = Rmat.generate ~params:preset.rmat prng in
  let edges =
    Array.concat [ directed; Array.map (fun (s, d) -> (d, s)) directed ]
  in
  let b = Builder.of_edges ~vertex_label:"vertex" ~edge_label:"link" ~n_vertices:(Rmat.n_vertices preset.rmat) edges in
  let weight_prng = Prng.create (preset.seed + 1) in
  for v = 0 to Builder.n_vertices b - 1 do
    Builder.set_vertex_prop b ~vertex:v ~key:"weight" (Value.Int (Prng.int weight_prng 1_000_000));
    Builder.set_vertex_prop b ~vertex:v ~key:"id" (Value.Int v)
  done;
  Builder.build b

let load preset =
  match Hashtbl.find_opt cache preset.name with
  | Some g -> g
  | None ->
    let g = build preset in
    Hashtbl.add cache preset.name g;
    g

let row preset =
  let g = load preset in
  (preset.name, Graph.n_vertices g, Graph.n_edges g, Graph.bytes g)
