(** R-MAT recursive-matrix power-law graph generator. *)

type params = {
  scale : int; (** vertices = 2^scale *)
  edge_factor : int; (** target edges = edge_factor * vertices *)
  a : float;
  b : float;
  c : float; (** quadrant probabilities; d = 1 - a - b - c *)
  dedup : bool; (** drop duplicates and self-loops *)
}

(** scale 14, edge factor 16, (0.57, 0.19, 0.19, 0.05) — Graph500-style. *)
val default : params

val n_vertices : params -> int

(** Directed edge list. With [dedup] the count can fall slightly short of
    the target on very skewed parameters. *)
val generate : ?params:params -> Prng.t -> (int * int) array

(** Edge list assembled into a property graph. *)
val graph : ?params:params -> ?vertex_label:string -> ?edge_label:string -> Prng.t -> Graph.t
