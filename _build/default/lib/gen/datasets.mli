(** Scaled-down stand-ins for the paper's LiveJournal / Friendster graphs.

    Each preset is deterministic (fixed seed) and cached after first load.
    Vertices carry integer [weight] and [id] properties as the paper
    prescribes for aggregation queries on unweighted graphs. *)

type preset = {
  name : string;
  paper_name : string; (** what the paper used in this role *)
  rmat : Rmat.params;
  seed : int;
}

val lj_like : preset
val fs_like : preset
val tiny : preset
val all : preset list

(** Generate (or fetch the cached) graph for a preset. *)
val load : preset -> Graph.t

(** [(name, n_vertices, n_edges, bytes)] — a Table II row. *)
val row : preset -> string * int * int * int

(**/**)

val build : preset -> Graph.t
