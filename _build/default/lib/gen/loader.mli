(** SNAP edge-list I/O: load the paper's real datasets (LiveJournal,
    Friendster) where available, or round-trip generated graphs.

    Format: ['#']-prefixed comment lines, then one whitespace- or
    comma-separated "src dst" pair per line. Vertex ids are remapped to a
    dense range; every vertex receives the [id] and [weight] properties
    the k-hop benchmarks use. *)

exception Parse_error of string

(** [load path] reads a SNAP file. [symmetrize] stores each edge in both
    directions (social-network semantics). *)
val load : ?symmetrize:bool -> ?weight_seed:int -> string -> Graph.t

val of_channel : ?symmetrize:bool -> ?weight_seed:int -> in_channel -> Graph.t

(** Write the out-adjacency as a SNAP edge list. *)
val save : Graph.t -> string -> unit
