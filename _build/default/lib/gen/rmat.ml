(* R-MAT recursive-matrix graph generator (Chakrabarti et al.).

   Stands in for the SNAP LiveJournal and Friendster graphs used in the
   paper's scalability study: with skewed quadrant probabilities it yields
   the power-law degree distribution and community structure that drive
   frontier growth in multi-hop traversals. *)

type params = {
  scale : int; (* n_vertices = 2^scale *)
  edge_factor : int; (* edges = edge_factor * n_vertices *)
  a : float; (* quadrant probabilities; a + b + c + d = 1 *)
  b : float;
  c : float;
  dedup : bool; (* drop duplicate edges and self-loops *)
}

let default = { scale = 14; edge_factor = 16; a = 0.57; b = 0.19; c = 0.19; dedup = true }

let n_vertices params = 1 lsl params.scale

(* One directed edge endpoint pair via recursive quadrant descent with the
   customary +-10% noise to avoid exact self-similarity artifacts. *)
let sample_edge params prng =
  let src = ref 0 and dst = ref 0 in
  for _level = 1 to params.scale do
    let noise () = 0.9 +. Prng.float prng 0.2 in
    let a = params.a *. noise () in
    let b = params.b *. noise () in
    let c = params.c *. noise () in
    let d = (1.0 -. params.a -. params.b -. params.c) *. noise () in
    let total = a +. b +. c +. d in
    let u = Prng.float prng total in
    src := !src lsl 1;
    dst := !dst lsl 1;
    if u < a then ()
    else if u < a +. b then dst := !dst lor 1
    else if u < a +. b +. c then src := !src lor 1
    else begin
      src := !src lor 1;
      dst := !dst lor 1
    end
  done;
  (!src, !dst)

let generate ?(params = default) prng =
  let n = n_vertices params in
  let target = params.edge_factor * n in
  let edges = Vec.create ~dummy:(0, 0) in
  let seen = if params.dedup then Some (Hashtbl.create (2 * target)) else None in
  let attempts = ref 0 in
  (* Cap attempts so extremely skewed parameter choices still terminate. *)
  let max_attempts = 4 * target in
  while Vec.length edges < target && !attempts < max_attempts do
    incr attempts;
    let src, dst = sample_edge params prng in
    let fresh =
      src <> dst
      &&
      match seen with
      | None -> true
      | Some table ->
        let key = (src * n) + dst in
        if Hashtbl.mem table key then false
        else begin
          Hashtbl.add table key ();
          true
        end
    in
    if fresh then Vec.push edges (src, dst)
  done;
  Vec.to_array edges

let graph ?(params = default) ?(vertex_label = "vertex") ?(edge_label = "link") prng =
  let edges = generate ~params prng in
  Builder.build (Builder.of_edges ~vertex_label ~edge_label ~n_vertices:(n_vertices params) edges)
