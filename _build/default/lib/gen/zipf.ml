(* Zipf-distributed sampling.

   Social graphs have power-law degree and popularity distributions; the
   SNB-like generator uses Zipf samples to pick tags, forums and friends so
   that query touch-sets are skewed the way LDBC data is. Sampling uses a
   precomputed CDF and binary search: O(n) setup, O(log n) per draw. *)

type t = {
  cdf : float array;
  n : int;
}

let create ~n ~exponent =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (i + 1) ** exponent));
    cdf.(i) <- !total
  done;
  let total = !total in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { cdf; n }

let size t = t.n

(* Index in [0, n) with P(i) proportional to (i+1)^-exponent. *)
let sample t prng =
  let u = Prng.float prng 1.0 in
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) < u then search (mid + 1) hi else search lo mid
    end
  in
  search 0 (t.n - 1)

(* A degree sequence with a power-law tail, total close to [target_edges].
   Degrees are assigned to vertices in a random order so that high-degree
   hubs are spread across partitions. *)
let degree_sequence prng ~n ~target_edges ~exponent =
  if n <= 0 then invalid_arg "Zipf.degree_sequence";
  let raw = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** exponent)) in
  let total = Array.fold_left ( +. ) 0.0 raw in
  let scale = float_of_int target_edges /. total in
  let degrees = Array.map (fun w -> max 1 (int_of_float (Float.round (w *. scale)))) raw in
  Prng.shuffle_in_place prng degrees;
  degrees
