(* Erdős–Rényi G(n, m) generator.

   Uniform random graphs are the adversarial opposite of power-law graphs:
   no hubs, uniform frontier growth. Tests use them to check that engine
   results do not depend on degree skew, and property tests use small ER
   graphs as neutral fixtures. *)

let generate prng ~n_vertices ~n_edges =
  if n_vertices <= 1 && n_edges > 0 then invalid_arg "Er.generate: too few vertices";
  let edges = Array.make n_edges (0, 0) in
  for i = 0 to n_edges - 1 do
    let src = Prng.int prng n_vertices in
    let dst = ref (Prng.int prng n_vertices) in
    while !dst = src do
      dst := Prng.int prng n_vertices
    done;
    edges.(i) <- (src, !dst)
  done;
  edges

let graph ?(vertex_label = "vertex") ?(edge_label = "link") prng ~n_vertices ~n_edges =
  let edges = generate prng ~n_vertices ~n_edges in
  Builder.build (Builder.of_edges ~vertex_label ~edge_label ~n_vertices edges)
