(* Transactional edge log (§IV-C), after LiveGraph's TEL design.

   Each vertex owns an append-only log of edge entries carrying creation
   and deletion timestamps. A reader at snapshot timestamp [ts] performs
   one purely sequential scan and keeps entries with

     created <= ts < deleted

   — no random version-chain chasing, which is the property the paper
   borrows TEL for. Deletion writes a tombstone timestamp into the live
   entry rather than removing it; [compact] reclaims dead entries below a
   watermark, and [truncate_after] implements the §IV-C recovery rule
   (drop every version newer than the last commit timestamp). *)

type entry = {
  dst : int;
  label : int;
  created : int;
  mutable deleted : int; (* max_int while live *)
}

type t = {
  mutable logs : entry Vec.t array;
  mutable n_vertices : int;
}

let live = max_int

let dummy_entry = { dst = -1; label = -1; created = 0; deleted = 0 }

let create ?(n_vertices = 0) () =
  let t = { logs = [||]; n_vertices = 0 } in
  let grown = Array.init (max n_vertices 16) (fun _ -> Vec.create ~dummy:dummy_entry) in
  t.logs <- grown;
  t.n_vertices <- n_vertices;
  t

let n_vertices t = t.n_vertices

let ensure_vertex t v =
  if v >= Array.length t.logs then begin
    let grown =
      Array.init (max (v + 1) (2 * Array.length t.logs)) (fun i ->
          if i < Array.length t.logs then t.logs.(i) else Vec.create ~dummy:dummy_entry)
    in
    t.logs <- grown
  end;
  if v >= t.n_vertices then t.n_vertices <- v + 1

let add_vertex t =
  let v = t.n_vertices in
  ensure_vertex t v;
  v

let check_vertex t v =
  if v < 0 || v >= t.n_vertices then invalid_arg "Tel: vertex out of range"

let insert_edge t ~src ~label ~dst ~ts =
  check_vertex t src;
  check_vertex t dst;
  Vec.push t.logs.(src) { dst; label; created = ts; deleted = live }

(* Tombstone the most recent visible matching entry; [false] when there is
   no such edge at [ts]. *)
let delete_edge t ~src ~label ~dst ~ts =
  check_vertex t src;
  let log = t.logs.(src) in
  let found = ref false in
  (* Scan from the tail: the latest version is the one to kill. *)
  let i = ref (Vec.length log - 1) in
  while (not !found) && !i >= 0 do
    let e = Vec.get log !i in
    if e.dst = dst && e.label = label && e.created <= ts && ts < e.deleted then begin
      e.deleted <- ts;
      found := true
    end;
    decr i
  done;
  !found

(* Roll back an uncommitted insert: drop the entry created at exactly
   [ts]. Scans from the tail, where a young entry lives. *)
let rollback_insert t ~src ~label ~dst ~ts =
  check_vertex t src;
  let log = t.logs.(src) in
  let found = ref false in
  let i = ref (Vec.length log - 1) in
  while (not !found) && !i >= 0 do
    let e = Vec.get log !i in
    if e.dst = dst && e.label = label && e.created = ts then begin
      ignore (Vec.swap_remove log !i);
      found := true
    end;
    decr i
  done;
  !found

(* Roll back an uncommitted delete: clear the tombstone written at [ts]. *)
let rollback_delete t ~src ~label ~dst ~ts =
  check_vertex t src;
  let log = t.logs.(src) in
  let found = ref false in
  let i = ref (Vec.length log - 1) in
  while (not !found) && !i >= 0 do
    let e = Vec.get log !i in
    if e.dst = dst && e.label = label && e.deleted = ts then begin
      e.deleted <- live;
      found := true
    end;
    decr i
  done;
  !found

(* Single sequential scan of the visible adjacency at snapshot [ts]. *)
let scan t ~src ~ts f =
  check_vertex t src;
  Vec.iter (fun e -> if e.created <= ts && ts < e.deleted then f ~dst:e.dst ~label:e.label) t.logs.(src)

let degree t ~src ~ts =
  let n = ref 0 in
  scan t ~src ~ts (fun ~dst:_ ~label:_ -> incr n);
  !n

let edge_exists t ~src ~label ~dst ~ts =
  let found = ref false in
  scan t ~src ~ts (fun ~dst:d ~label:l -> if d = dst && l = label then found := true);
  !found

(* Log length including dead entries (compaction telemetry). *)
let log_length t ~src =
  check_vertex t src;
  Vec.length t.logs.(src)

(* Drop entries deleted at or before the watermark (no reader can see
   them anymore). *)
let compact t ~watermark =
  let reclaimed = ref 0 in
  Array.iteri
    (fun v log ->
      if v < t.n_vertices then begin
        let keep = Vec.create ~dummy:dummy_entry in
        Vec.iter (fun e -> if e.deleted > watermark then Vec.push keep e else incr reclaimed) log;
        t.logs.(v) <- keep
      end)
    t.logs;
  !reclaimed

(* Recovery (§IV-C): remove every version with a timestamp newer than the
   last commit timestamp, resurrecting entries whose deletion was not yet
   committed. *)
let truncate_after t ~lct =
  let removed = ref 0 in
  Array.iteri
    (fun v log ->
      if v < t.n_vertices then begin
        let keep = Vec.create ~dummy:dummy_entry in
        Vec.iter
          (fun e ->
            if e.created > lct then incr removed
            else begin
              if e.deleted <> live && e.deleted > lct then e.deleted <- live;
              Vec.push keep e
            end)
          log;
        t.logs.(v) <- keep
      end)
    t.logs;
  !removed
