(* Centralized transaction manager (§IV-C).

   Assigns commit timestamps to update transactions and maintains the
   last commit timestamp (LCT): the timestamp below which every
   transaction has committed. The LCT is broadcast to all worker nodes so
   a read-only query can pick up its snapshot timestamp from any node
   without a round trip to the manager — [node_lct] models the (slightly
   stale) per-node copies. *)

type status =
  | Active
  | Committed
  | Aborted

type t = {
  mutable next_ts : int;
  mutable lct : int;
  statuses : (int, status) Hashtbl.t; (* ts -> status, for active window *)
  node_lct : int array; (* broadcast copies, possibly stale *)
  mutable started : int;
  mutable committed : int;
  mutable aborted : int;
}

let create ~n_nodes =
  {
    next_ts = 1;
    lct = 0;
    statuses = Hashtbl.create 64;
    node_lct = Array.make (max 1 n_nodes) 0;
    started = 0;
    committed = 0;
    aborted = 0;
  }

let lct t = t.lct
let started t = t.started
let committed t = t.committed
let aborted t = t.aborted

(* Snapshot timestamp for a read-only query arriving at [node]: the
   node-local LCT copy, no manager round trip. *)
let read_timestamp t ~node = t.node_lct.(node)

let broadcast t = Array.fill t.node_lct 0 (Array.length t.node_lct) t.lct

let begin_update t =
  let ts = t.next_ts in
  t.next_ts <- ts + 1;
  t.started <- t.started + 1;
  Hashtbl.replace t.statuses ts Active;
  ts

(* Advance the LCT over the longest committed prefix. *)
let advance t =
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt t.statuses (t.lct + 1) with
    | Some Committed ->
      Hashtbl.remove t.statuses (t.lct + 1);
      t.lct <- t.lct + 1
    | Some Aborted ->
      (* Aborted slots are skipped: their effects were rolled back. *)
      Hashtbl.remove t.statuses (t.lct + 1);
      t.lct <- t.lct + 1
    | Some Active | None -> continue := false
  done

let commit t ~ts =
  (match Hashtbl.find_opt t.statuses ts with
  | Some Active -> Hashtbl.replace t.statuses ts Committed
  | _ -> invalid_arg "Txn_manager.commit: not an active transaction");
  t.committed <- t.committed + 1;
  advance t;
  broadcast t

let abort t ~ts =
  (match Hashtbl.find_opt t.statuses ts with
  | Some Active -> Hashtbl.replace t.statuses ts Aborted
  | _ -> invalid_arg "Txn_manager.abort: not an active transaction");
  t.aborted <- t.aborted + 1;
  advance t;
  broadcast t
