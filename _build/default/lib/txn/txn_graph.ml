(* Transactional property-graph store: TEL adjacency + MV2PL + the
   centralized manager, assembled per §IV-C.

   Update transactions follow strict 2PL over the vertices they touch and
   write multi-version entries stamped with their transaction timestamp;
   read-only queries run against the snapshot at a node's LCT copy and
   are never blocked. [crash_recover] replays the §IV-C restart rule. *)

type t = {
  tel : Tel.t;
  locks : Lock_table.t;
  manager : Txn_manager.t;
  schema : Schema.t;
  vertex_labels : int Vec.t;
  vertex_props : (int * int, Value.t) Hashtbl.t; (* (vertex, key) -> value *)
}

type txn = {
  store : t;
  ts : int;
  mutable finished : bool;
  mutable undo : (unit -> unit) list; (* rollback actions, newest first *)
}

exception Aborted of string

let create ?schema ~n_nodes () =
  let schema = match schema with Some s -> s | None -> Schema.create () in
  {
    tel = Tel.create ();
    locks = Lock_table.create ();
    manager = Txn_manager.create ~n_nodes;
    schema;
    vertex_labels = Vec.create ~dummy:(-1);
    vertex_props = Hashtbl.create 256;
  }

let schema t = t.schema
let manager t = t.manager
let locks t = t.locks
let n_vertices t = Tel.n_vertices t.tel

(* --- Update transactions --- *)

let begin_update store =
  { store; ts = Txn_manager.begin_update store.manager; finished = false; undo = [] }

let check_open txn = if txn.finished then invalid_arg "Txn_graph: transaction already finished"

let rollback txn = List.iter (fun undo -> undo ()) txn.undo

let lock txn vertex mode =
  match Lock_table.acquire txn.store.locks ~txn:txn.ts ~vertex mode with
  | Lock_table.Granted -> ()
  | Lock_table.Conflict ->
    txn.finished <- true;
    rollback txn;
    Lock_table.release_all txn.store.locks ~txn:txn.ts;
    Txn_manager.abort txn.store.manager ~ts:txn.ts;
    raise (Aborted (Fmt.str "lock conflict on vertex %d" vertex))

let add_vertex txn ~label ?(props = []) () =
  check_open txn;
  let v = Tel.add_vertex txn.store.tel in
  Vec.push txn.store.vertex_labels (Schema.vertex_label txn.store.schema label);
  lock txn v Lock_table.Exclusive;
  List.iter
    (fun (key, value) ->
      Hashtbl.replace txn.store.vertex_props (v, Schema.property_key txn.store.schema key) value)
    props;
  v

let insert_edge txn ~src ~label ~dst =
  check_open txn;
  lock txn src Lock_table.Exclusive;
  lock txn dst Lock_table.Shared;
  let label = Schema.edge_label txn.store.schema label in
  Tel.insert_edge txn.store.tel ~src ~label ~dst ~ts:txn.ts;
  txn.undo <-
    (fun () -> ignore (Tel.rollback_insert txn.store.tel ~src ~label ~dst ~ts:txn.ts))
    :: txn.undo

let delete_edge txn ~src ~label ~dst =
  check_open txn;
  lock txn src Lock_table.Exclusive;
  let label = Schema.edge_label txn.store.schema label in
  let deleted = Tel.delete_edge txn.store.tel ~src ~label ~dst ~ts:txn.ts in
  if deleted then
    txn.undo <-
      (fun () -> ignore (Tel.rollback_delete txn.store.tel ~src ~label ~dst ~ts:txn.ts))
      :: txn.undo;
  deleted

let commit txn =
  check_open txn;
  txn.finished <- true;
  Lock_table.release_all txn.store.locks ~txn:txn.ts;
  Txn_manager.commit txn.store.manager ~ts:txn.ts

let abort txn =
  check_open txn;
  txn.finished <- true;
  rollback txn;
  Lock_table.release_all txn.store.locks ~txn:txn.ts;
  Txn_manager.abort txn.store.manager ~ts:txn.ts

(* --- Read-only snapshot access (never blocked, §IV-C) --- *)

type snapshot = {
  snap_store : t;
  snap_ts : int;
}

let snapshot store ~node = { snap_store = store; snap_ts = Txn_manager.read_timestamp store.manager ~node }

let snapshot_ts s = s.snap_ts

let neighbors s ~src =
  let out = Vec.create ~dummy:(0, 0) in
  Tel.scan s.snap_store.tel ~src ~ts:s.snap_ts (fun ~dst ~label -> Vec.push out (dst, label));
  Vec.to_array out

let degree s ~src = Tel.degree s.snap_store.tel ~src ~ts:s.snap_ts

let edge_exists s ~src ~label ~dst =
  match Schema.edge_label_opt s.snap_store.schema label with
  | None -> false
  | Some label -> Tel.edge_exists s.snap_store.tel ~src ~label ~dst ~ts:s.snap_ts

let vertex_prop s ~vertex ~key =
  match Schema.property_key_opt s.snap_store.schema key with
  | None -> Value.Null
  | Some k ->
    Option.value ~default:Value.Null (Hashtbl.find_opt s.snap_store.vertex_props (vertex, k))

(* --- Recovery --- *)

(* Restart after a crash: every version newer than the LCT is removed
   (those transactions never committed). Returns removed version count. *)
let crash_recover store = Tel.truncate_after store.tel ~lct:(Txn_manager.lct store.manager)
