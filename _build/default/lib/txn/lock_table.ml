(* MV2PL lock table (§IV-C).

   Update transactions acquire shared/exclusive locks on vertices and hold
   them to commit (strict 2PL); read-only queries never touch this table —
   they read a consistent multi-version snapshot at the LCT instead, which
   is exactly why MV2PL never blocks them. Conflicts are resolved no-wait:
   the requester is told to abort, avoiding deadlock detection entirely. *)

type mode =
  | Shared
  | Exclusive

type holder = {
  txn : int;
  mode : mode;
}

type t = {
  locks : (int, holder list) Hashtbl.t; (* vertex -> current holders *)
  held : (int, int list) Hashtbl.t; (* txn -> locked vertices *)
  mutable acquisitions : int;
  mutable conflicts : int;
}

let create () =
  { locks = Hashtbl.create 256; held = Hashtbl.create 64; acquisitions = 0; conflicts = 0 }

let acquisitions t = t.acquisitions
let conflicts t = t.conflicts

let compatible requested holders ~txn =
  List.for_all
    (fun h ->
      h.txn = txn (* re-entrant; upgrades handled below *)
      || (h.mode = Shared && requested = Shared))
    holders

type verdict =
  | Granted
  | Conflict

let acquire t ~txn ~vertex mode =
  t.acquisitions <- t.acquisitions + 1;
  let holders = Option.value ~default:[] (Hashtbl.find_opt t.locks vertex) in
  if not (compatible mode holders ~txn) then begin
    t.conflicts <- t.conflicts + 1;
    Conflict
  end
  else begin
    let mine, others = List.partition (fun h -> h.txn = txn) holders in
    let merged_mode =
      match mine with
      | { mode = Exclusive; _ } :: _ -> Exclusive
      | _ -> mode
    in
    Hashtbl.replace t.locks vertex ({ txn; mode = merged_mode } :: others);
    if mine = [] then
      Hashtbl.replace t.held txn (vertex :: Option.value ~default:[] (Hashtbl.find_opt t.held txn));
    Granted
  end

let release_all t ~txn =
  let vertices = Option.value ~default:[] (Hashtbl.find_opt t.held txn) in
  List.iter
    (fun vertex ->
      match Hashtbl.find_opt t.locks vertex with
      | None -> ()
      | Some holders ->
        (match List.filter (fun h -> h.txn <> txn) holders with
        | [] -> Hashtbl.remove t.locks vertex
        | rest -> Hashtbl.replace t.locks vertex rest))
    vertices;
  Hashtbl.remove t.held txn

let holds t ~txn ~vertex =
  match Hashtbl.find_opt t.locks vertex with
  | None -> None
  | Some holders ->
    List.find_opt (fun h -> h.txn = txn) holders |> Option.map (fun h -> h.mode)
