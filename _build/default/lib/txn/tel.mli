(** Transactional edge log: multi-version adjacency with embedded
    creation/deletion timestamps, readable in one sequential scan
    (LiveGraph-style, §IV-C). *)

type t

val create : ?n_vertices:int -> unit -> t
val n_vertices : t -> int

(** Append a fresh vertex; returns its id. *)
val add_vertex : t -> int

val insert_edge : t -> src:int -> label:int -> dst:int -> ts:int -> unit

(** Tombstone the latest visible matching edge; [false] if none visible. *)
val delete_edge : t -> src:int -> label:int -> dst:int -> ts:int -> bool

(** Undo an uncommitted insert (entry created at exactly [ts]). *)
val rollback_insert : t -> src:int -> label:int -> dst:int -> ts:int -> bool

(** Undo an uncommitted delete (tombstone written at exactly [ts]). *)
val rollback_delete : t -> src:int -> label:int -> dst:int -> ts:int -> bool

(** Visit the adjacency visible at snapshot [ts]. *)
val scan : t -> src:int -> ts:int -> (dst:int -> label:int -> unit) -> unit

val degree : t -> src:int -> ts:int -> int
val edge_exists : t -> src:int -> label:int -> dst:int -> ts:int -> bool

(** Physical log length including dead versions. *)
val log_length : t -> src:int -> int

(** Reclaim entries invisible to every snapshot above [watermark];
    returns the number reclaimed. *)
val compact : t -> watermark:int -> int

(** Crash recovery: drop versions newer than the last commit timestamp;
    returns the number of entries removed. *)
val truncate_after : t -> lct:int -> int
