(** Transactional property-graph store: TEL multi-version adjacency under
    MV2PL with a centralized timestamp manager (§IV-C). *)

type t
type txn

(** Raised when a no-wait lock conflict aborts the transaction (locks are
    released and the manager informed before raising). *)
exception Aborted of string

val create : ?schema:Schema.t -> n_nodes:int -> unit -> t
val schema : t -> Schema.t
val manager : t -> Txn_manager.t
val locks : t -> Lock_table.t
val n_vertices : t -> int

(** {2 Update transactions (strict 2PL)} *)

val begin_update : t -> txn
val add_vertex : txn -> label:string -> ?props:(string * Value.t) list -> unit -> int
val insert_edge : txn -> src:int -> label:string -> dst:int -> unit
val delete_edge : txn -> src:int -> label:string -> dst:int -> bool
val commit : txn -> unit
val abort : txn -> unit

(** {2 Read-only snapshots (never blocked)} *)

type snapshot

(** Snapshot at the LCT copy of [node] — no manager round trip. *)
val snapshot : t -> node:int -> snapshot

val snapshot_ts : snapshot -> int

(** Visible [(dst, edge-label)] pairs. *)
val neighbors : snapshot -> src:int -> (int * int) array

val degree : snapshot -> src:int -> int
val edge_exists : snapshot -> src:int -> label:string -> dst:int -> bool
val vertex_prop : snapshot -> vertex:int -> key:string -> Value.t

(** {2 Recovery} *)

(** Apply the restart rule: drop versions newer than the LCT. *)
val crash_recover : t -> int
