(** Centralized transaction manager with last-commit-timestamp (LCT)
    broadcast: update transactions get timestamps here; read-only queries
    take their snapshot from any node's LCT copy. *)

type t

val create : n_nodes:int -> t
val lct : t -> int

(** Snapshot timestamp visible at a node (its broadcast LCT copy). *)
val read_timestamp : t -> node:int -> int

val begin_update : t -> int
val commit : t -> ts:int -> unit
val abort : t -> ts:int -> unit
val started : t -> int
val committed : t -> int
val aborted : t -> int
