lib/txn/txn_graph.mli: Lock_table Schema Txn_manager Value
