lib/txn/tel.mli:
