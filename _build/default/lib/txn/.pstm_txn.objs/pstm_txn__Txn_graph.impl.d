lib/txn/txn_graph.ml: Fmt Hashtbl List Lock_table Option Schema Tel Txn_manager Value Vec
