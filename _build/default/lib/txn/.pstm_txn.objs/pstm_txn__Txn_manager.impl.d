lib/txn/txn_manager.ml: Array Hashtbl
