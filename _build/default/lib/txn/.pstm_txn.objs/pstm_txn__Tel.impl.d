lib/txn/tel.ml: Array Vec
