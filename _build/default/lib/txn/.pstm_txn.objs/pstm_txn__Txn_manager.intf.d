lib/txn/txn_manager.mli:
