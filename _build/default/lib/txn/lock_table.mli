(** MV2PL lock table: strict two-phase locking for update transactions,
    no-wait conflict resolution. Read-only queries bypass it entirely. *)

type mode =
  | Shared
  | Exclusive

type t

val create : unit -> t
val acquisitions : t -> int
val conflicts : t -> int

type verdict =
  | Granted
  | Conflict

(** Acquire (or upgrade) a lock; [Conflict] means the caller must abort. *)
val acquire : t -> txn:int -> vertex:int -> mode -> verdict

(** Release every lock of a finished transaction. *)
val release_all : t -> txn:int -> unit

(** Lock currently held by [txn] on [vertex], if any. *)
val holds : t -> txn:int -> vertex:int -> mode option
