(** Summary statistics for latency samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val mean : float array -> float
val stddev : float array -> float

(** Nearest-rank percentile; [q] in [0, 100]. *)
val percentile : float array -> float -> float

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

(** Geometric mean, for averaging speedup ratios. *)
val geomean : float array -> float
