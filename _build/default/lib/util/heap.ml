(* Binary min-heap over an explicit ordering.

   Used by the discrete-event queue (million-event simulations) and by the
   bounded top-k selector, so it avoids closures in the hot path by taking
   the comparison at creation time. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ~cmp ~dummy = { cmp; data = [||]; len = 0; dummy }

let length t = t.len

let is_empty t = t.len = 0

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let ensure_capacity t n =
  let cap = Array.length t.data in
  if n > cap then begin
    let data = Array.make (max n (max 8 (2 * cap))) t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let sift_up t i =
  let x = t.data.(i) in
  let i = ref i in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    t.cmp x t.data.(parent) < 0
  do
    let parent = (!i - 1) / 2 in
    t.data.(!i) <- t.data.(parent);
    i := parent
  done;
  t.data.(!i) <- x

let sift_down t i =
  let x = t.data.(i) in
  let n = t.len in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    let r = l + 1 in
    if l >= n then continue := false
    else begin
      let smallest = if r < n && t.cmp t.data.(r) t.data.(l) < 0 then r else l in
      if t.cmp t.data.(smallest) x < 0 then begin
        t.data.(!i) <- t.data.(smallest);
        i := smallest
      end
      else continue := false
    end
  done;
  t.data.(!i) <- x

let push t x =
  ensure_capacity t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t = if t.len = 0 then None else Some t.data.(0)

let peek_exn t =
  if t.len = 0 then invalid_arg "Heap.peek_exn: empty";
  t.data.(0)

let pop t =
  if t.len = 0 then invalid_arg "Heap.pop: empty";
  let top = t.data.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.data.(0) <- t.data.(t.len);
    t.data.(t.len) <- t.dummy;
    sift_down t 0
  end
  else t.data.(t.len) <- t.dummy;
  top

let pop_opt t = if t.len = 0 then None else Some (pop t)

let to_sorted_list t =
  let copy = { t with data = Array.copy t.data } in
  let rec drain acc = if is_empty copy then List.rev acc else drain (pop copy :: acc) in
  drain []
