(** Fixed-capacity mutable bitset over [0, capacity). *)

type t

val create : int -> t
val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit

(** Test-and-set: returns [true] iff the bit was previously clear. *)
val add_if_absent : t -> int -> bool

val clear : t -> unit

(** Number of set bits. *)
val count : t -> int

val iter : (int -> unit) -> t -> unit
