lib/util/bitset.mli:
