lib/util/heap.mli:
