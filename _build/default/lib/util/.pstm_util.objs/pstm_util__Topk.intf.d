lib/util/topk.mli:
