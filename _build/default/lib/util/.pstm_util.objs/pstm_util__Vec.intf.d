lib/util/vec.mli:
