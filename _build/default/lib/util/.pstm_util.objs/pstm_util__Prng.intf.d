lib/util/prng.mli:
