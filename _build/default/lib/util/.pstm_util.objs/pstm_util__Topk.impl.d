lib/util/topk.ml: Heap List
