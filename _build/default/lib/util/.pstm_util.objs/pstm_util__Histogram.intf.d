lib/util/histogram.mli:
