(** Bounded top-k accumulator.

    [cmp] orders candidates; greater elements are better. The accumulator
    is partitionable: merging per-partition accumulators yields the global
    top-k, which is how the TopK step aggregates across workers. *)

type 'a t

val create : k:int -> cmp:('a -> 'a -> int) -> dummy:'a -> 'a t
val length : 'a t -> int
val add : 'a t -> 'a -> unit

(** Merge [t] into [into]; [t] is unchanged. *)
val merge : into:'a t -> 'a t -> unit

(** The current top-k, best first. *)
val to_sorted_list : 'a t -> 'a list
