(* Bounded top-k selector.

   Keeps the k best elements seen so far in a min-heap of size k: a new
   element displaces the current minimum when it compares greater. This is
   the accumulator behind the TopK aggregation step (Figure 1 of the paper)
   and is itself commutative and associative, hence partitionable: partial
   top-k sets merged across partitions give the global top-k. *)

type 'a t = {
  k : int;
  cmp : 'a -> 'a -> int;
  heap : 'a Heap.t;
}

let create ~k ~cmp ~dummy =
  if k < 0 then invalid_arg "Topk.create: negative k";
  { k; cmp; heap = Heap.create ~cmp ~dummy }

let length t = Heap.length t.heap

let add t x =
  if t.k > 0 then
    if Heap.length t.heap < t.k then Heap.push t.heap x
    else if t.cmp x (Heap.peek_exn t.heap) > 0 then begin
      ignore (Heap.pop t.heap);
      Heap.push t.heap x
    end

let merge ~into t = List.iter (add into) (Heap.to_sorted_list t.heap)

(* Best first. *)
let to_sorted_list t = List.rev (Heap.to_sorted_list t.heap)
