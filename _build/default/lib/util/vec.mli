(** Growable array, the workhorse container of the traversal engines.

    A [dummy] element is required at creation; it fills unused capacity so
    that dropped elements do not leak through the backing array. *)

type 'a t

val create : dummy:'a -> 'a t
val make : dummy:'a -> int -> 'a -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** Remove all elements, keeping capacity. *)
val clear : 'a t -> unit

(** Remove all elements and release the backing store. *)
val reset : 'a t -> unit

val push : 'a t -> 'a -> unit

(** Remove and return the last element. Raises on empty. *)
val pop : 'a t -> 'a

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val last : 'a t -> 'a
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_array : dummy:'a -> 'a array -> 'a t

(** [append ~into src] pushes all of [src] onto [into]. *)
val append : into:'a t -> 'a t -> unit

(** O(1) removal that moves the last element into the hole. *)
val swap_remove : 'a t -> int -> 'a

val sort : ('a -> 'a -> int) -> 'a t -> unit
