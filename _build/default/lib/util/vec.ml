(* Growable array. OCaml 5.1 has no Dynarray in the stdlib, and the
   traversal engines append to frontiers and message buffers on every step,
   so this is one of the hottest structures in the repository. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ~dummy = { data = [||]; len = 0; dummy }

let make ~dummy n x =
  if n < 0 then invalid_arg "Vec.make";
  { data = Array.make (max n 1) x; len = n; dummy }

let length t = t.len

let is_empty t = t.len = 0

let clear t =
  (* Drop references so the GC can reclaim elements. *)
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let reset t =
  t.data <- [||];
  t.len <- 0

let ensure_capacity t n =
  let cap = Array.length t.data in
  if n > cap then begin
    let new_cap = max n (max 8 (2 * cap)) in
    let data = Array.make new_cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure_capacity t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty";
  t.len <- t.len - 1;
  let x = t.data.(t.len) in
  t.data.(t.len) <- t.dummy;
  x

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: out of bounds";
  t.data.(i) <- x

let last t =
  if t.len = 0 then invalid_arg "Vec.last: empty";
  t.data.(t.len - 1)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_array t = Array.sub t.data 0 t.len

let to_list t = Array.to_list (to_array t)

let of_array ~dummy arr =
  { data = Array.copy arr; len = Array.length arr; dummy }

let append ~into t =
  ensure_capacity into (into.len + t.len);
  Array.blit t.data 0 into.data into.len t.len;
  into.len <- into.len + t.len

let swap_remove t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.swap_remove: out of bounds";
  let x = t.data.(i) in
  t.len <- t.len - 1;
  t.data.(i) <- t.data.(t.len);
  t.data.(t.len) <- t.dummy;
  x

let sort cmp t =
  let arr = to_array t in
  Array.sort cmp arr;
  Array.blit arr 0 t.data 0 t.len
