(** Binary min-heap with the ordering fixed at creation. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> dummy:'a -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
val push : 'a t -> 'a -> unit

(** Smallest element without removing it. *)
val peek : 'a t -> 'a option

val peek_exn : 'a t -> 'a

(** Remove and return the smallest element. Raises on empty. *)
val pop : 'a t -> 'a

val pop_opt : 'a t -> 'a option

(** Non-destructive ascending drain, for tests. *)
val to_sorted_list : 'a t -> 'a list
