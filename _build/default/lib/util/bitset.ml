(* Fixed-capacity bitset over [0, n).

   Backing store is an int array (63 usable bits per word). Used for
   visited-vertex tracking in the reference interpreter and in the BSP
   engine's per-superstep frontier deduplication. *)

type t = { words : int array; capacity : int }

let bits_per_word = Sys.int_size

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((capacity + bits_per_word - 1) / bits_per_word) 0; capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of bounds"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

(* Set the bit and report whether it was previously clear: the common
   test-and-set idiom of deduplication. *)
let add_if_absent t i =
  check t i;
  let w = i / bits_per_word in
  let mask = 1 lsl (i mod bits_per_word) in
  if t.words.(w) land mask = 0 then begin
    t.words.(w) <- t.words.(w) lor mask;
    true
  end
  else false

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let count t =
  let popcount x =
    let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
    loop x 0
  in
  Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  for i = 0 to t.capacity - 1 do
    if mem t i then f i
  done
