(** Reference interpreter defining query semantics; the oracle that every
    distributed engine is tested against. *)

(** Execute a program and return its result rows in emission order. *)
val run : Graph.t -> Program.t -> Value.t array list
