lib/engine/bsp_engine.mli: Cluster Engine Graph Sim_time
