lib/engine/single_node_engine.ml: Async_engine Channel Cluster Engine Sim_time
