lib/engine/async_engine.mli: Channel Cluster Engine Graph Partition Sim_time
