lib/engine/exec.ml: Aggregate Array Cluster Graph List Memo Program Sim_time Step Traverser Value Weight
