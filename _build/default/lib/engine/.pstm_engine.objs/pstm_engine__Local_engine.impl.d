lib/engine/local_engine.ml: Aggregate Array Exec Graph List Memo Prng Program Queue Step Traverser Vec Weight
