lib/engine/engine.ml: Array Float Fmt List Metrics Option Program Sim_time Stats Value
