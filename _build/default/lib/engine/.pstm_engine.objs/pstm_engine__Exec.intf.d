lib/engine/exec.mli: Cluster Graph Memo Prng Program Sim_time Traverser Value Weight
