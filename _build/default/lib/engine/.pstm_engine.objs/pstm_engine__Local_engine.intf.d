lib/engine/local_engine.mli: Graph Program Value
