lib/engine/bsp_engine.ml: Aggregate Array Cluster Engine Exec Graph Lazy List Memo Metrics Netmodel Partition Prng Program Queue Seq Sim_time Step Traverser Value Vec Weight
