lib/engine/single_node_engine.mli: Cluster Engine Graph Sim_time
