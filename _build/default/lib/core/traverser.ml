(* Traversers: the 4-tuple (v, psi, pi, w) of §III-B.

   [vertex] is the current position, [step] the index of the next step to
   execute, [regs] the local-variable file (pi) and [weight] the
   progression weight used for termination detection. Registers are
   copy-on-write: spawning shares the parent's array unless the child
   writes. *)

type t = {
  vertex : int;
  step : int;
  weight : Weight.t;
  regs : Value.t array;
}

let make ~vertex ~step ~weight ~n_registers =
  { vertex; step; weight; regs = Array.make n_registers Value.Null }

let with_regs t regs = { t with regs }

let move t ~vertex ~step ~weight = { t with vertex; step; weight }

let at_step t step = { t with step }

let with_weight t weight = { t with weight }

let set_reg t reg value =
  let regs = Array.copy t.regs in
  regs.(reg) <- value;
  { t with regs }

(* Write several registers at once (join payload loading) with one copy. *)
let set_regs t pairs =
  let regs = Array.copy t.regs in
  List.iter (fun (reg, value) -> regs.(reg) <- value) pairs;
  { t with regs }

(* Estimated serialized size when the traverser migrates to another
   partition: vertex + step + weight + register payload. *)
let bytes t = 20 + Array.fold_left (fun acc v -> acc + Value.bytes v) 0 t.regs

let pp ppf t =
  Fmt.pf ppf "t(v=%d psi=%d %a [%a])" t.vertex t.step Weight.pp t.weight
    (Fmt.array ~sep:(Fmt.any ",") Value.pp)
    t.regs
