(** Partitionable partial-aggregate state (§III-C).

    Lifecycle: each worker {!create}s a partial in its memo, {!accumulate}s
    local traversers into it, and on subquery termination the coordinator
    {!merge}s all partials and {!finalize}s the combined value. *)

type t

val create : Step.agg -> t

(** Fold one traverser (evaluating the aggregation's expressions in its
    context) into the partial state. *)
val accumulate : Step.agg -> t -> Graph.t -> vertex:int -> regs:Value.t array -> unit

(** Combine [t] into [into]; commutative and associative. *)
val merge : into:t -> t -> unit

(** The aggregated value: [Int] for counts, [List] for top-k / collect /
    group results (group entries are [List [key; Int count]] sorted by
    key). *)
val finalize : t -> Value.t

(** Serialized size of the partial, for network accounting. *)
val bytes : t -> int
