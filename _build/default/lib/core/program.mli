(** Compiled PSTM programs with validated control flow and phase analysis.

    Aggregate steps are the only phase boundaries: each phase is the
    subquery feeding one aggregation (§III-C) and is termination-tracked
    independently by the engines. *)

type t

exception Invalid of string

(** Validate and analyze a program; raises {!Invalid} with a description
    on malformed control flow, out-of-range registers, unpaired join
    sides, or phase conflicts. *)
val make : name:string -> steps:Step.t array -> n_registers:int -> entries:int array -> t

val name : t -> string
val steps : t -> Step.t array
val step : t -> int -> Step.t
val n_steps : t -> int
val n_registers : t -> int

(** Indices of source steps; each spawns an initial traverser stream. *)
val entries : t -> int array

val n_phases : t -> int
val phase_of_step : t -> int -> int

(** The Aggregate step closing a phase, or [None] for the final phase. *)
val agg_of_phase : t -> int -> int option

(** The opposite side of a Join step; raises on non-join steps. *)
val join_partner : t -> int -> int

val pp : Format.formatter -> t -> unit
