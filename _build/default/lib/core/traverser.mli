(** Traversers: the (v, psi, pi, w) tuples that execute a PSTM program. *)

type t = {
  vertex : int; (** current position v *)
  step : int; (** index of the step to execute next (psi) *)
  weight : Weight.t; (** progression weight w *)
  regs : Value.t array; (** local variables pi; treat as immutable *)
}

val make : vertex:int -> step:int -> weight:Weight.t -> n_registers:int -> t
val with_regs : t -> Value.t array -> t
val move : t -> vertex:int -> step:int -> weight:Weight.t -> t
val at_step : t -> int -> t
val with_weight : t -> Weight.t -> t

(** Functional register write (copies the file). *)
val set_reg : t -> int -> Value.t -> t

val set_regs : t -> (int * Value.t) list -> t

(** Estimated serialized size for network accounting. *)
val bytes : t -> int

val pp : Format.formatter -> t -> unit
