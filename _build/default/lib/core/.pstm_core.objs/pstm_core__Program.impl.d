lib/core/program.ml: Array Fmt Hashtbl Int List Option Queue Step
