lib/core/traverser.mli: Format Value Weight
