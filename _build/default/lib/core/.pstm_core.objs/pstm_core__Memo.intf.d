lib/core/memo.mli: Aggregate Step Value
