lib/core/progress.mli: Weight
