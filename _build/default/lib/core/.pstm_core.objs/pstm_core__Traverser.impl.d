lib/core/traverser.ml: Array Fmt List Value Weight
