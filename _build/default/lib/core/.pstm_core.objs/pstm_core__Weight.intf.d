lib/core/weight.mli: Format Prng
