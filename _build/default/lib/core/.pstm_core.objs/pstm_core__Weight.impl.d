lib/core/weight.ml: Array Fmt Int Int64 Prng
