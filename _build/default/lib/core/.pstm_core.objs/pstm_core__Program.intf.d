lib/core/program.mli: Format Step
