lib/core/progress.ml: Hashtbl List Option Weight
