lib/core/aggregate.ml: Hashtbl List Option Step Topk Value
