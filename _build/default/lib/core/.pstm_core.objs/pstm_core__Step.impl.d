lib/core/step.ml: Array Fmt Graph Value
