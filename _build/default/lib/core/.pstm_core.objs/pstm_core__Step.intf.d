lib/core/step.mli: Format Graph Value
