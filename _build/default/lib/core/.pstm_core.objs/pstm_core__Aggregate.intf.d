lib/core/aggregate.mli: Graph Step Value
