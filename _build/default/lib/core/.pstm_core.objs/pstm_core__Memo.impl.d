lib/core/memo.ml: Aggregate Hashtbl Value
