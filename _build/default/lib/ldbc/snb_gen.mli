(** Scaled-down LDBC SNB-like dataset generator.

    Same schema, edge types and skew shape as the benchmark's datasets at
    a simulator-friendly size; [snb_s] stands in for SF300 and [snb_l]
    for SF1000 (see DESIGN.md). Deterministic in the scale's seed. *)

type scale = {
  name : string;
  paper_name : string;
  persons : int;
  seed : int;
}

val snb_s : scale
val snb_l : scale
val snb_tiny : scale

(** Date window of generated creationDate/birthday values (epoch days). *)
val date_lo : int

val date_hi : int
val first_names : string array
val last_names : string array

type t = {
  scale : scale;
  graph : Graph.t;
  persons : int array; (** vertex ids indexed by LDBC person id *)
  forums : int array;
  posts : int array;
  comments : int array;
  tags : int array;
  countries : int array;
}

(** Generate, bypassing the cache. *)
val generate : scale -> t

(** Generate or fetch the cached dataset for a scale. *)
val load : scale -> t

(** [(name, vertices, edges, bytes)] — a Table II row. *)
val row : scale -> string * int * int * int
