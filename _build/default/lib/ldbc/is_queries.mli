(** The 7 LDBC SNB Interactive Short queries: point lookups and one-hop
    reads — the low-latency half of the mixed workload. *)

val is1 : Snb_gen.t -> Prng.t -> Program.t
val is2 : Snb_gen.t -> Prng.t -> Program.t
val is3 : Snb_gen.t -> Prng.t -> Program.t
val is4 : Snb_gen.t -> Prng.t -> Program.t
val is5 : Snb_gen.t -> Prng.t -> Program.t
val is6 : Snb_gen.t -> Prng.t -> Program.t
val is7 : Snb_gen.t -> Prng.t -> Program.t
val all : (string * (Snb_gen.t -> Prng.t -> Program.t)) list
