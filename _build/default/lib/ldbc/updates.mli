(** LDBC SNB interactive update operations, executed against the
    transactional substrate (pstm_txn). *)

type kind =
  | Add_person
  | Add_friendship
  | Add_forum
  | Add_membership
  | Add_post
  | Add_comment
  | Add_like

val all_kinds : kind list
val kind_name : kind -> string

type outcome =
  | Committed
  | Aborted

(** [(vertex locks, edge appends)] performed by an update kind. *)
val footprint : kind -> int * int

(** Execute one update transaction (MV2PL no-wait: may abort). *)
val apply : Txn_graph.t -> Prng.t -> kind -> outcome

(** Simulated latency of one update under the §IV-C cost model: manager
    round trips, lock acquisitions, TEL appends, commit broadcast. *)
val simulated_latency : Netmodel.t -> Cluster.costs -> kind -> Sim_time.t

(** Transactional store seeded with (a subset of) a generated dataset's
    person population. *)
val store_of_data : Snb_gen.t -> n_nodes:int -> Txn_graph.t
