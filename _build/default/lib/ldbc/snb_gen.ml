(* Scaled-down LDBC SNB-like data generator.

   The real SF300 / SF1000 datasets are hundreds of gigabytes; these
   scales keep the same schema, the same edge types and the same skew
   shape (power-law friendships, Zipf forum sizes and tag popularity,
   reply trees) at a size the discrete-event simulator sweeps in seconds.
   [snb_s] plays the role of SF300 and [snb_l] of SF1000 throughout the
   benchmark harness.

   Everything is deterministic in the scale's seed. *)

type scale = {
  name : string;
  paper_name : string; (* the dataset this stands in for *)
  persons : int;
  seed : int;
}

let snb_s = { name = "SNB-S"; paper_name = "LDBC SNB SF300"; persons = 1_500; seed = 1300 }
let snb_l = { name = "SNB-L"; paper_name = "LDBC SNB SF1000"; persons = 6_000; seed = 1301 }
let snb_tiny = { name = "SNB-tiny"; paper_name = "(test fixture)"; persons = 200; seed = 1302 }

let first_names =
  [| "Jan"; "Wei"; "Otto"; "Ana"; "Ivan"; "Mia"; "Ken"; "Lea"; "Omar"; "Zoe"; "Raj"; "Sam" |]

let last_names =
  [| "Muller"; "Chen"; "Silva"; "Ito"; "Novak"; "Khan"; "Berg"; "Costa"; "Haas"; "Oduya" |]

let browsers = [| "Firefox"; "Chrome"; "Safari"; "Opera" |]
let languages = [| "en"; "zh"; "de"; "pt"; "hi" |]
let genders = [| "male"; "female" |]

(* Epoch days: the benchmark's 2010-2013 window. *)
let date_lo = 14_600
let date_hi = 16_000

type counts = {
  countries : int;
  cities : int;
  tagclasses : int;
  tags : int;
  companies : int;
  universities : int;
  forums : int;
  posts_per_forum_mean : int;
  comments_factor : float; (* comments = factor * posts *)
  likes_per_person : int;
  knows_mean_degree : int;
}

let counts_of scale =
  let p = scale.persons in
  {
    countries = 20;
    cities = 100;
    tagclasses = 12;
    tags = 300;
    companies = 120;
    universities = 60;
    forums = max 10 (p * 3 / 5);
    posts_per_forum_mean = 6;
    comments_factor = 1.5;
    likes_per_person = 4;
    knows_mean_degree = 18;
  }

(* Generated graph plus the id ranges the parameter curator draws from. *)
type t = {
  scale : scale;
  graph : Graph.t;
  persons : int array; (* vertex ids by label, index = LDBC id *)
  forums : int array;
  posts : int array;
  comments : int array;
  tags : int array;
  countries : int array;
}

let date prng = Prng.int_in_range prng ~lo:date_lo ~hi:date_hi

let generate scale =
  let c = counts_of scale in
  let prng = Prng.create scale.seed in
  let schema = Schema.create () in
  Snb_schema.register schema;
  let b = Builder.create ~schema () in
  let add_v label props = Builder.add_vertex b ~label ~props () in
  let add_e src label dst = ignore (Builder.add_edge b ~src ~label ~dst ()) in
  let iv n = Value.Int n in
  let sv s = Value.Str s in
  (* --- Places --- *)
  let countries =
    Array.init c.countries (fun i ->
        add_v Snb_schema.country [ ("id", iv i); ("name", sv (Fmt.str "Country_%d" i)) ])
  in
  let cities =
    Array.init c.cities (fun i ->
        let v = add_v Snb_schema.city [ ("id", iv i); ("name", sv (Fmt.str "City_%d" i)) ] in
        add_e v Snb_schema.is_part_of countries.(i mod c.countries);
        v)
  in
  (* --- Tags --- *)
  let tagclasses =
    Array.init c.tagclasses (fun i ->
        add_v Snb_schema.tagclass [ ("id", iv i); ("name", sv (Fmt.str "TagClass_%d" i)) ])
  in
  let tags =
    Array.init c.tags (fun i ->
        let v = add_v Snb_schema.tag [ ("id", iv i); ("name", sv (Fmt.str "Tag_%d" i)) ] in
        add_e v Snb_schema.has_type tagclasses.(i mod c.tagclasses);
        v)
  in
  let tag_zipf = Zipf.create ~n:c.tags ~exponent:0.9 in
  (* --- Organisations --- *)
  let companies =
    Array.init c.companies (fun i ->
        let v =
          add_v Snb_schema.company [ ("id", iv i); ("name", sv (Fmt.str "Company_%d" i)) ]
        in
        add_e v Snb_schema.is_located_in countries.(i mod c.countries);
        v)
  in
  let universities =
    Array.init c.universities (fun i ->
        let v =
          add_v Snb_schema.university [ ("id", iv i); ("name", sv (Fmt.str "University_%d" i)) ]
        in
        add_e v Snb_schema.is_located_in cities.(i mod c.cities);
        v)
  in
  (* --- Persons --- *)
  let persons =
    Array.init scale.persons (fun i ->
        let v =
          add_v Snb_schema.person
            [
              ("id", iv i);
              ("firstName", sv (Prng.pick prng first_names));
              ("lastName", sv (Prng.pick prng last_names));
              ("gender", sv (Prng.pick prng genders));
              ("birthday", iv (Prng.int_in_range prng ~lo:3_000 ~hi:12_000));
              ("creationDate", iv (date prng));
              ("browserUsed", sv (Prng.pick prng browsers));
            ]
        in
        add_e v Snb_schema.is_located_in cities.(Prng.int prng c.cities);
        if Prng.chance prng 0.6 then
          add_e v Snb_schema.study_at universities.(Prng.int prng c.universities);
        for _ = 1 to Prng.int prng 3 do
          add_e v Snb_schema.work_at companies.(Prng.int prng c.companies)
        done;
        for _ = 1 to 3 + Prng.int prng 7 do
          add_e v Snb_schema.has_interest tags.(Zipf.sample tag_zipf prng)
        done;
        v)
  in
  let person_zipf = Zipf.create ~n:scale.persons ~exponent:0.7 in
  (* --- knows: power-law friendship, stored in both directions --- *)
  let degrees =
    Zipf.degree_sequence prng ~n:scale.persons
      ~target_edges:(c.knows_mean_degree * scale.persons / 2)
      ~exponent:0.8
  in
  let knows_seen = Hashtbl.create (4 * scale.persons) in
  Array.iteri
    (fun i d ->
      for _ = 1 to d do
        let j = Zipf.sample person_zipf prng in
        if i <> j && not (Hashtbl.mem knows_seen (i, j)) then begin
          Hashtbl.add knows_seen (i, j) ();
          Hashtbl.add knows_seen (j, i) ();
          add_e persons.(i) Snb_schema.knows persons.(j);
          add_e persons.(j) Snb_schema.knows persons.(i)
        end
      done)
    degrees;
  (* --- Forums, posts, comments --- *)
  let forums =
    Array.init c.forums (fun i ->
        let v =
          add_v Snb_schema.forum
            [
              ("id", iv i);
              ("title", sv (Fmt.str "Forum_%d" i));
              ("creationDate", iv (date prng));
            ]
        in
        add_e v Snb_schema.has_moderator persons.(Zipf.sample person_zipf prng);
        v)
  in
  let forum_members = Array.make c.forums [||] in
  Array.iteri
    (fun i forum ->
      let size = 3 + Prng.int prng 40 in
      let members = Array.init size (fun _ -> Zipf.sample person_zipf prng) in
      forum_members.(i) <- members;
      Array.iter (fun m -> add_e forum Snb_schema.has_member persons.(m)) members)
    forums;
  let posts = Vec.create ~dummy:0 in
  let post_creators = Vec.create ~dummy:0 in
  Array.iteri
    (fun i forum ->
      let n_posts = Prng.int prng (2 * c.posts_per_forum_mean) in
      for _ = 1 to n_posts do
        let id = Vec.length posts in
        let creator_ldbc_id = Prng.pick prng forum_members.(i) in
        let v =
          add_v Snb_schema.post
            [
              ("id", iv id);
              ("creationDate", iv (date prng));
              ("language", sv (Prng.pick prng languages));
              ("length", iv (20 + Prng.int prng 500));
              ("content", sv (Fmt.str "post-%d" id));
            ]
        in
        add_e forum Snb_schema.container_of v;
        add_e v Snb_schema.has_creator persons.(creator_ldbc_id);
        add_e v Snb_schema.is_located_in countries.(Prng.int prng c.countries);
        for _ = 1 to 1 + Prng.int prng 3 do
          add_e v Snb_schema.has_tag tags.(Zipf.sample tag_zipf prng)
        done;
        Vec.push posts v;
        Vec.push post_creators creator_ldbc_id
      done)
    forums;
  let posts = Vec.to_array posts in
  let post_creators = Vec.to_array post_creators in
  let n_comments =
    int_of_float (c.comments_factor *. float_of_int (Array.length posts))
  in
  let comments = Vec.create ~dummy:0 in
  let messages = Vec.create ~dummy:0 in
  Array.iter (Vec.push messages) posts;
  for id = 0 to n_comments - 1 do
    if Vec.length messages > 0 then begin
      let parent = Vec.get messages (Prng.int prng (Vec.length messages)) in
      let creator =
        (* Replies usually come from the social neighborhood. *)
        if Prng.chance prng 0.7 && Array.length posts > 0 then
          post_creators.(Prng.int prng (Array.length posts))
        else Zipf.sample person_zipf prng
      in
      let v =
        add_v Snb_schema.comment
          [
            ("id", iv id);
            ("creationDate", iv (date prng));
            ("length", iv (5 + Prng.int prng 200));
            ("content", sv (Fmt.str "comment-%d" id));
          ]
      in
      add_e v Snb_schema.reply_of parent;
      add_e v Snb_schema.has_creator persons.(creator);
      if Prng.chance prng 0.4 then add_e v Snb_schema.has_tag tags.(Zipf.sample tag_zipf prng);
      Vec.push comments v;
      Vec.push messages v
    end
  done;
  let comments = Vec.to_array comments in
  (* --- likes --- *)
  let all_messages = Vec.to_array messages in
  for p = 0 to scale.persons - 1 do
    for _ = 1 to Prng.int prng (2 * c.likes_per_person) do
      if Array.length all_messages > 0 then
        add_e persons.(p) Snb_schema.likes all_messages.(Prng.int prng (Array.length all_messages))
    done
  done;
  let graph = Builder.build b in
  { scale; graph; persons; forums; posts; comments; tags; countries }

let cache : (string, t) Hashtbl.t = Hashtbl.create 4

let load scale =
  match Hashtbl.find_opt cache scale.name with
  | Some d -> d
  | None ->
    let d = generate scale in
    Hashtbl.add cache scale.name d;
    d

(* A Table II row: (name, vertices, edges, bytes). *)
let row scale =
  let d = load scale in
  (scale.name, Graph.n_vertices d.graph, Graph.n_edges d.graph, Graph.bytes d.graph)
