(* LDBC SNB schema: the vertex labels, edge labels and property keys of
   the Social Network Benchmark, as used by the generator and the query
   implementations. Names follow the LDBC specification so the query code
   reads like the benchmark definitions. *)

(* Vertex labels *)
let person = "Person"
let forum = "Forum"
let post = "Post"
let comment = "Comment"
let tag = "Tag"
let tagclass = "TagClass"
let city = "City"
let country = "Country"
let company = "Company"
let university = "University"

let vertex_labels =
  [ person; forum; post; comment; tag; tagclass; city; country; company; university ]

(* Edge labels (direction as in the LDBC schema) *)
let knows = "knows" (* Person -> Person, stored both ways *)
let has_interest = "hasInterest" (* Person -> Tag *)
let is_located_in = "isLocatedIn" (* Person -> City, Message -> Country, Org -> Place *)
let is_part_of = "isPartOf" (* City -> Country *)
let study_at = "studyAt" (* Person -> University *)
let work_at = "workAt" (* Person -> Company *)
let has_moderator = "hasModerator" (* Forum -> Person *)
let has_member = "hasMember" (* Forum -> Person *)
let container_of = "containerOf" (* Forum -> Post *)
let has_creator = "hasCreator" (* Message -> Person *)
let reply_of = "replyOf" (* Comment -> Message *)
let has_tag = "hasTag" (* Message -> Tag *)
let has_type = "hasType" (* Tag -> TagClass *)
let likes = "likes" (* Person -> Message *)

let edge_labels =
  [
    knows;
    has_interest;
    is_located_in;
    is_part_of;
    study_at;
    work_at;
    has_moderator;
    has_member;
    container_of;
    has_creator;
    reply_of;
    has_tag;
    has_type;
    likes;
  ]

(* Property keys *)
let k_id = "id"
let k_first_name = "firstName"
let k_last_name = "lastName"
let k_gender = "gender"
let k_birthday = "birthday" (* epoch day *)
let k_creation_date = "creationDate" (* epoch day *)
let k_browser = "browserUsed"
let k_content = "content"
let k_length = "length"
let k_language = "language"
let k_title = "title"
let k_name = "name"

let property_keys =
  [
    k_id;
    k_first_name;
    k_last_name;
    k_gender;
    k_birthday;
    k_creation_date;
    k_browser;
    k_content;
    k_length;
    k_language;
    k_title;
    k_name;
  ]

(* Pre-intern everything so compiled queries and the generator agree on
   ids regardless of insertion order. *)
let register schema =
  List.iter (fun l -> ignore (Schema.vertex_label schema l)) vertex_labels;
  List.iter (fun l -> ignore (Schema.edge_label schema l)) edge_labels;
  List.iter (fun k -> ignore (Schema.property_key schema k)) property_keys
