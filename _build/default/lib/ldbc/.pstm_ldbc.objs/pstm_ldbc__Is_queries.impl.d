lib/ldbc/is_queries.ml: Array Compile Dsl Prng Program Snb_gen Snb_schema
