lib/ldbc/is_queries.mli: Prng Program Snb_gen
