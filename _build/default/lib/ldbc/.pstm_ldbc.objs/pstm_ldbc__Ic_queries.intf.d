lib/ldbc/ic_queries.mli: Ast Prng Program Snb_gen
