lib/ldbc/updates.mli: Cluster Netmodel Prng Sim_time Snb_gen Txn_graph
