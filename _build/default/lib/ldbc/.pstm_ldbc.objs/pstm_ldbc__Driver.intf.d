lib/ldbc/driver.mli: Async_engine Bsp_engine Channel Cluster Engine Prng Program Sim_time Snb_gen Stats
