lib/ldbc/driver.ml: Array Async_engine Bsp_engine Channel Cluster Engine Float Hashtbl Ic_queries Is_queries List Netmodel Option Prng Program Sim_time Snb_gen Stats Updates Vec
