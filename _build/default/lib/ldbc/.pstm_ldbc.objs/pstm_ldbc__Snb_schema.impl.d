lib/ldbc/snb_schema.ml: List Schema
