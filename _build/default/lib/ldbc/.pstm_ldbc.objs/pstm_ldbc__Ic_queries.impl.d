lib/ldbc/ic_queries.ml: Array Ast Compile Dsl Fmt Graph Prng Program Schema Snb_gen Snb_schema Step Value
