lib/ldbc/snb_gen.mli: Graph
