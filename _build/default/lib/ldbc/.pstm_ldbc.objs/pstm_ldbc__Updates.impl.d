lib/ldbc/updates.ml: Array Cluster Netmodel Prng Sim_time Snb_gen Snb_schema Txn_graph Value
