lib/ldbc/snb_gen.ml: Array Builder Fmt Graph Hashtbl Prng Schema Snb_schema Value Vec Zipf
