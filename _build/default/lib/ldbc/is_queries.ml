(* The 7 LDBC SNB Interactive Short queries: point lookups and one-hop
   neighborhood reads. These are the low-latency half of Figure 7's mixed
   workload. *)

open Dsl

let person (d : Snb_gen.t) prng =
  v_lookup ~label:Snb_schema.person ~key:"id"
    (int (Prng.int prng (Array.length d.Snb_gen.persons)))

let message (d : Snb_gen.t) prng =
  (* Posts and comments share the message role; pick a post. *)
  v_lookup ~label:Snb_schema.post ~key:"id"
    (int (Prng.int prng (max 1 (Array.length d.Snb_gen.posts))))

let compile d name ast = Compile.compile ~name d.Snb_gen.graph ast

(* IS1: person profile. *)
let is1 d prng = compile d "IS1" (person d prng |> values "firstName" |> build)

(* IS2: person's recent messages. *)
let is2 d prng =
  compile d "IS2" (person d prng |> in_ Snb_schema.has_creator |> top_k "creationDate" 10 |> build)

(* IS3: person's friends. *)
let is3 d prng = compile d "IS3" (person d prng |> out_ Snb_schema.knows |> build)

(* IS4: message content. *)
let is4 d prng = compile d "IS4" (message d prng |> values "content" |> build)

(* IS5: message creator. *)
let is5 d prng = compile d "IS5" (message d prng |> out_ Snb_schema.has_creator |> build)

(* IS6: forum containing a message. *)
let is6 d prng = compile d "IS6" (message d prng |> in_ Snb_schema.container_of |> build)

(* IS7: replies to a message. *)
let is7 d prng = compile d "IS7" (message d prng |> in_ Snb_schema.reply_of |> build)

let all : (string * (Snb_gen.t -> Prng.t -> Program.t)) list =
  [ ("IS1", is1); ("IS2", is2); ("IS3", is3); ("IS4", is4); ("IS5", is5); ("IS6", is6); ("IS7", is7) ]
