(* LDBC SNB interactive update operations (UP), §V-A1.

   Updates run against the transactional substrate (pstm_txn): each takes
   timestamps from the centralized manager, acquires MV2PL locks, appends
   TEL versions and commits. [simulated_latency] prices one update for the
   mixed-workload report: a manager round trip for the timestamp, the
   lock/append work, and the commit round trip. *)

type kind =
  | Add_person
  | Add_friendship
  | Add_forum
  | Add_membership
  | Add_post
  | Add_comment
  | Add_like

let all_kinds =
  [ Add_person; Add_friendship; Add_forum; Add_membership; Add_post; Add_comment; Add_like ]

let kind_name = function
  | Add_person -> "UP-person"
  | Add_friendship -> "UP-friendship"
  | Add_forum -> "UP-forum"
  | Add_membership -> "UP-membership"
  | Add_post -> "UP-post"
  | Add_comment -> "UP-comment"
  | Add_like -> "UP-like"

type outcome =
  | Committed
  | Aborted

(* Number of vertex locks + edge appends an update performs; drives both
   the real store mutation and the latency model. *)
let footprint = function
  | Add_person -> (1, 2) (* new vertex, located-in + interest edges *)
  | Add_friendship -> (2, 2) (* both endpoints, knows in both directions *)
  | Add_forum -> (1, 1)
  | Add_membership -> (2, 1)
  | Add_post -> (2, 3) (* creator + forum; container/creator/tag edges *)
  | Add_comment -> (2, 2)
  | Add_like -> (2, 1)

let random_vertex store prng =
  let n = Txn_graph.n_vertices store in
  if n = 0 then None else Some (Prng.int prng n)

(* Execute one update transaction against the store. *)
let apply store prng kind =
  let txn = Txn_graph.begin_update store in
  try
    (match kind with
    | Add_person ->
      let v =
        Txn_graph.add_vertex txn ~label:Snb_schema.person
          ~props:[ ("firstName", Value.Str "New"); ("creationDate", Value.Int Snb_gen.date_hi) ]
          ()
      in
      (match random_vertex store prng with
      | Some u when u <> v -> Txn_graph.insert_edge txn ~src:v ~label:Snb_schema.knows ~dst:u
      | _ -> ())
    | Add_friendship -> begin
      match random_vertex store prng, random_vertex store prng with
      | Some a, Some b when a <> b ->
        Txn_graph.insert_edge txn ~src:a ~label:Snb_schema.knows ~dst:b;
        Txn_graph.insert_edge txn ~src:b ~label:Snb_schema.knows ~dst:a
      | _ -> ()
    end
    | Add_forum ->
      ignore
        (Txn_graph.add_vertex txn ~label:Snb_schema.forum
           ~props:[ ("title", Value.Str "NewForum") ]
           ())
    | Add_membership -> begin
      match random_vertex store prng, random_vertex store prng with
      | Some f, Some p when f <> p ->
        Txn_graph.insert_edge txn ~src:f ~label:Snb_schema.has_member ~dst:p
      | _ -> ()
    end
    | Add_post | Add_comment ->
      let label = if kind = Add_post then Snb_schema.post else Snb_schema.comment in
      let m =
        Txn_graph.add_vertex txn ~label
          ~props:[ ("creationDate", Value.Int Snb_gen.date_hi) ]
          ()
      in
      (match random_vertex store prng with
      | Some creator when creator <> m ->
        Txn_graph.insert_edge txn ~src:m ~label:Snb_schema.has_creator ~dst:creator
      | _ -> ())
    | Add_like -> begin
      match random_vertex store prng, random_vertex store prng with
      | Some p, Some m when p <> m ->
        Txn_graph.insert_edge txn ~src:p ~label:Snb_schema.likes ~dst:m
      | _ -> ()
    end);
    Txn_graph.commit txn;
    Committed
  with Txn_graph.Aborted _ -> Aborted

(* Simulated latency of one update: manager round trip for the timestamp,
   lock acquisitions and TEL appends, then the commit round trip. *)
let simulated_latency (net : Netmodel.t) (costs : Cluster.costs) kind =
  let locks, appends = footprint kind in
  let manager_rtt = 2 * Sim_time.to_ns net.Netmodel.wire_latency in
  Sim_time.ns
    ((2 * manager_rtt)
    + (locks * Sim_time.to_ns costs.Cluster.latch)
    + (appends * Sim_time.to_ns costs.Cluster.memo_op)
    + Sim_time.to_ns costs.Cluster.step_dispatch)

(* Seed a transactional store mirroring a generated SNB graph's person
   population, for workload runs. *)
let store_of_data (d : Snb_gen.t) ~n_nodes =
  let store = Txn_graph.create ~n_nodes () in
  let txn = Txn_graph.begin_update store in
  for i = 0 to min 499 (Array.length d.Snb_gen.persons - 1) do
    ignore
      (Txn_graph.add_vertex txn ~label:Snb_schema.person ~props:[ ("id", Value.Int i) ] ())
  done;
  Txn_graph.commit txn;
  store
