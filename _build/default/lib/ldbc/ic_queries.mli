(** The 14 LDBC SNB Interactive Complex queries, adapted to the PSTM
    operator set (multi-hop expansion, filters, dedup, join, aggregation,
    top-k). Each constructor draws its parameters deterministically from
    the generator's id spaces using the supplied PRNG. *)

val ic1 : Snb_gen.t -> Prng.t -> Program.t
val ic2 : Snb_gen.t -> Prng.t -> Program.t
val ic3 : Snb_gen.t -> Prng.t -> Program.t
val ic4 : Snb_gen.t -> Prng.t -> Program.t
val ic5 : Snb_gen.t -> Prng.t -> Program.t

(** The two partial paths and continuation of the IC6 / Figure 3 join
    pattern, for plan-comparison experiments. *)
val ic6_sides : Snb_gen.t -> Prng.t -> Ast.traversal * Ast.traversal * Ast.gstep list

val ic6 : Snb_gen.t -> Prng.t -> Program.t
val ic7 : Snb_gen.t -> Prng.t -> Program.t
val ic8 : Snb_gen.t -> Prng.t -> Program.t
val ic9 : Snb_gen.t -> Prng.t -> Program.t
val ic10 : Snb_gen.t -> Prng.t -> Program.t
val ic11 : Snb_gen.t -> Prng.t -> Program.t
val ic12 : Snb_gen.t -> Prng.t -> Program.t

(** Shortest path (hand-built on the step ISA: the Visit distance
    register is the answer). *)
val ic13 : Snb_gen.t -> Prng.t -> Program.t

val ic14 : Snb_gen.t -> Prng.t -> Program.t

(** All queries with their benchmark names, in order. *)
val all : (string * (Snb_gen.t -> Prng.t -> Program.t)) list
