(* Graph partitioning function H : V -> PartId (§II-C of the paper).

   One partition per worker; the PSTM engines route every traverser to the
   worker owning its current vertex. Hash partitioning is the paper's
   choice; block partitioning is kept as an ablation (it concentrates BFS
   frontiers on few workers and exposes the straggler effect even more). *)

type strategy =
  | Hash (* owner v = mix(v) mod n_parts; spreads hubs and frontiers *)
  | Mod (* owner v = v mod n_parts; kept as an ablation (hub clustering) *)
  | Block (* owner v = v / ceil(n/n_parts); contiguous ranges *)

type t = {
  strategy : strategy;
  n_parts : int;
  n_vertices : int;
  block_size : int;
}

let create ?(strategy = Hash) ~n_parts ~n_vertices () =
  if n_parts <= 0 then invalid_arg "Partition.create: n_parts must be positive";
  if n_vertices < 0 then invalid_arg "Partition.create: negative n_vertices";
  let block_size = max 1 ((n_vertices + n_parts - 1) / n_parts) in
  { strategy; n_parts; n_vertices; block_size }

let n_parts t = t.n_parts

(* Fibonacci-style multiplicative mixer: cheap and avalanching enough to
   decouple hub ids (which generators place at small ids) from workers. *)
let mix v =
  let h = v * 0x9E3779B97F4A7C1 in
  (h lxor (h lsr 29)) land max_int

let owner t v =
  match t.strategy with
  | Hash -> mix v mod t.n_parts
  | Mod -> v mod t.n_parts
  | Block -> min (t.n_parts - 1) (v / t.block_size)

(* Vertices owned by partition [p], in ascending order. *)
let members t p =
  if p < 0 || p >= t.n_parts then invalid_arg "Partition.members: bad partition";
  let out = Vec.create ~dummy:0 in
  (match t.strategy with
  | Hash ->
    for v = 0 to t.n_vertices - 1 do
      if mix v mod t.n_parts = p then Vec.push out v
    done
  | Mod ->
    let v = ref p in
    while !v < t.n_vertices do
      Vec.push out !v;
      v := !v + t.n_parts
    done
  | Block ->
    let lo = p * t.block_size in
    let hi = min t.n_vertices ((p + 1) * t.block_size) in
    let hi = if p = t.n_parts - 1 then t.n_vertices else hi in
    for v = lo to hi - 1 do
      Vec.push out v
    done);
  Vec.to_array out

let size_of t p = Array.length (members t p)

(* Max-over-mean partition size: 1.0 is perfectly balanced. *)
let imbalance t =
  if t.n_vertices = 0 then 1.0
  else begin
    let sizes = Array.init t.n_parts (size_of t) in
    let max_size = Array.fold_left max 0 sizes in
    float_of_int (max_size * t.n_parts) /. float_of_int t.n_vertices
  end
