(* Property values.

   The property graph model of the paper assigns key-value pairs to vertices
   and edges; traversers additionally carry local variables of the same
   type. [bytes] estimates the serialized size of a value, which the cluster
   simulator charges against network bandwidth when a traverser migrates. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Vertex of int
  | Edge of int
  | List of t list

let rec compare a b =
  match a, b with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Bool x, Bool y -> Bool.compare x y
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | Int x, Int y -> Int.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Float x, Float y -> Float.compare x y
  | Float _, _ -> -1
  | _, Float _ -> 1
  | Str x, Str y -> String.compare x y
  | Str _, _ -> -1
  | _, Str _ -> 1
  | Vertex x, Vertex y -> Int.compare x y
  | Vertex _, _ -> -1
  | _, Vertex _ -> 1
  | Edge x, Edge y -> Int.compare x y
  | Edge _, _ -> -1
  | _, Edge _ -> 1
  | List x, List y -> List.compare compare x y

let equal a b = compare a b = 0

let rec hash = function
  | Null -> 0
  | Bool b -> if b then 1 else 2
  | Int i -> Hashtbl.hash i
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s
  | Vertex v -> Hashtbl.hash (3, v)
  | Edge e -> Hashtbl.hash (4, e)
  | List l -> List.fold_left (fun acc v -> (acc * 31) + hash v) 7 l

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | Str s -> Fmt.pf ppf "%S" s
  | Vertex v -> Fmt.pf ppf "v[%d]" v
  | Edge e -> Fmt.pf ppf "e[%d]" e
  | List l -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any "; ") pp) l

let to_string v = Fmt.str "%a" pp v

let rec bytes = function
  | Null | Bool _ -> 1
  | Int _ | Float _ | Vertex _ | Edge _ -> 8
  | Str s -> 8 + String.length s
  | List l -> List.fold_left (fun acc v -> acc + bytes v) 8 l

let is_null = function Null -> true | _ -> false

let to_int = function
  | Int i -> Some i
  | Vertex v -> Some v
  | Edge e -> Some e
  | Bool b -> Some (if b then 1 else 0)
  | _ -> None

let to_int_exn v =
  match to_int v with
  | Some i -> i
  | None -> invalid_arg (Fmt.str "Value.to_int_exn: %a" pp v)

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_float_exn v =
  match to_float v with
  | Some f -> f
  | None -> invalid_arg (Fmt.str "Value.to_float_exn: %a" pp v)

let to_bool = function
  | Bool b -> Some b
  | Null -> Some false
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let vertex_exn = function
  | Vertex v -> v
  | v -> invalid_arg (Fmt.str "Value.vertex_exn: %a" pp v)

(* Arithmetic used by the Sum aggregation: integers stay integers, any
   float operand promotes the result. *)
let add a b =
  match a, b with
  | Null, x | x, Null -> x
  | Int x, Int y -> Int (x + y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float_exn a +. to_float_exn b)
  | _ -> invalid_arg "Value.add: non-numeric operands"

let max_v a b = if compare a b >= 0 then a else b
let min_v a b = if compare a b <= 0 then a else b
