(** Columnar property storage with typed columns and a [Null] default. *)

type column =
  | Ints of int array * Bitset.t
  | Floats of float array * Bitset.t
  | Strs of string array * Bitset.t
  | Mixed of Value.t array

type t

val create : size:int -> t

(** Number of rows (vertices or edges). *)
val size : t -> int

val has_key : t -> int -> bool
val keys : t -> int list

(** [get t ~key id] is the value at row [id], or [Null] when absent. *)
val get : t -> key:int -> int -> Value.t

(** Fast path for integer columns. *)
val get_int : t -> key:int -> int -> int option

val set_column : t -> key:int -> column -> unit

(** Build from sparse per-key (row, value) pair lists; homogeneous columns
    are specialized to unboxed arrays. *)
val of_sparse : size:int -> (int, (int * Value.t) Vec.t) Hashtbl.t -> t

(** Estimated memory footprint in bytes. *)
val bytes : t -> int
