(* Graph schema: interned vertex labels, edge labels and property keys.

   Label and key strings appear on every step of a compiled plan and on
   every adjacency scan, so they are interned to dense integer ids once at
   graph-build time and compared by id everywhere else. *)

module Interner = struct
  type t = {
    by_name : (string, int) Hashtbl.t;
    names : string Vec.t;
  }

  let create () = { by_name = Hashtbl.create 16; names = Vec.create ~dummy:"" }

  let intern t name =
    match Hashtbl.find_opt t.by_name name with
    | Some id -> id
    | None ->
      let id = Vec.length t.names in
      Hashtbl.add t.by_name name id;
      Vec.push t.names name;
      id

  let find_opt t name = Hashtbl.find_opt t.by_name name

  let find_exn t name =
    match find_opt t name with
    | Some id -> id
    | None -> invalid_arg (Printf.sprintf "Schema: unknown name %S" name)

  let name t id =
    if id < 0 || id >= Vec.length t.names then
      invalid_arg (Printf.sprintf "Schema: unknown id %d" id);
    Vec.get t.names id

  let count t = Vec.length t.names
end

open struct
  module I = Interner
end

type t = {
  vertex_labels : I.t;
  edge_labels : I.t;
  property_keys : I.t;
}

let create () =
  { vertex_labels = I.create (); edge_labels = I.create (); property_keys = I.create () }

let vertex_label t name = I.intern t.vertex_labels name
let edge_label t name = I.intern t.edge_labels name
let property_key t name = I.intern t.property_keys name

let vertex_label_opt t name = I.find_opt t.vertex_labels name
let edge_label_opt t name = I.find_opt t.edge_labels name
let property_key_opt t name = I.find_opt t.property_keys name

let vertex_label_exn t name = I.find_exn t.vertex_labels name
let edge_label_exn t name = I.find_exn t.edge_labels name
let property_key_exn t name = I.find_exn t.property_keys name

let vertex_label_name t id = I.name t.vertex_labels id
let edge_label_name t id = I.name t.edge_labels id
let property_key_name t id = I.name t.property_keys id

let vertex_label_count t = I.count t.vertex_labels
let edge_label_count t = I.count t.edge_labels
let property_key_count t = I.count t.property_keys
