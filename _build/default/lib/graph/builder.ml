(* Mutable graph builder.

   Vertices and edges are appended in any order with string labels and
   property association lists; [build] interns everything, materializes
   typed property columns and constructs both CSR directions. Edge ids are
   insertion order, which keeps the builder's returned handles stable. *)

type t = {
  schema : Schema.t;
  vertex_labels : int Vec.t;
  edge_srcs : int Vec.t;
  edge_dsts : int Vec.t;
  edge_labels : int Vec.t;
  vprops : (int, (int * Value.t) Vec.t) Hashtbl.t;
  eprops : (int, (int * Value.t) Vec.t) Hashtbl.t;
}

let create ?schema () =
  let schema = match schema with Some s -> s | None -> Schema.create () in
  {
    schema;
    vertex_labels = Vec.create ~dummy:0;
    edge_srcs = Vec.create ~dummy:0;
    edge_dsts = Vec.create ~dummy:0;
    edge_labels = Vec.create ~dummy:0;
    vprops = Hashtbl.create 16;
    eprops = Hashtbl.create 16;
  }

let schema t = t.schema
let n_vertices t = Vec.length t.vertex_labels
let n_edges t = Vec.length t.edge_srcs

let record_props table ~key_of id props =
  List.iter
    (fun (key, value) ->
      let key = key_of key in
      let pairs =
        match Hashtbl.find_opt table key with
        | Some pairs -> pairs
        | None ->
          let pairs = Vec.create ~dummy:(0, Value.Null) in
          Hashtbl.add table key pairs;
          pairs
      in
      Vec.push pairs (id, value))
    props

let add_vertex t ~label ?(props = []) () =
  let id = n_vertices t in
  Vec.push t.vertex_labels (Schema.vertex_label t.schema label);
  record_props t.vprops ~key_of:(Schema.property_key t.schema) id props;
  id

let set_vertex_prop t ~vertex ~key value =
  if vertex < 0 || vertex >= n_vertices t then invalid_arg "Builder.set_vertex_prop";
  record_props t.vprops ~key_of:(Schema.property_key t.schema) vertex [ (key, value) ]

let add_edge t ~src ~label ~dst ?(props = []) () =
  let n = n_vertices t in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Builder.add_edge: endpoint out of range";
  let id = n_edges t in
  Vec.push t.edge_srcs src;
  Vec.push t.edge_dsts dst;
  Vec.push t.edge_labels (Schema.edge_label t.schema label);
  record_props t.eprops ~key_of:(Schema.property_key t.schema) id props;
  id

let build t =
  let n = n_vertices t in
  let m = n_edges t in
  let sources = Vec.to_array t.edge_srcs in
  let targets = Vec.to_array t.edge_dsts in
  let labels = Vec.to_array t.edge_labels in
  let edge_ids = Array.init m Fun.id in
  let out_csr = Csr.build ~n_vertices:n ~sources ~targets ~labels ~edge_ids in
  let in_csr = Csr.build ~n_vertices:n ~sources:targets ~targets:sources ~labels ~edge_ids in
  Graph.make ~schema:t.schema ~n_vertices:n
    ~vertex_label:(Vec.to_array t.vertex_labels)
    ~out_csr ~in_csr
    ~vertex_props:(Props.of_sparse ~size:n t.vprops)
    ~edge_props:(Props.of_sparse ~size:m t.eprops)
    ~edge_src:sources ~edge_dst:targets ~edge_label_by_id:labels

(* Build a plain unlabeled graph from an edge array; entry point for the
   synthetic generators, which produce topology only. *)
let of_edges ?(vertex_label = "vertex") ?(edge_label = "link") ~n_vertices edges =
  let b = create () in
  for _ = 1 to n_vertices do
    ignore (add_vertex b ~label:vertex_label ())
  done;
  Array.iter (fun (src, dst) -> ignore (add_edge b ~src ~label:edge_label ~dst ())) edges;
  b
