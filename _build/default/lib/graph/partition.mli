(** The partitioning function [H : V -> PartId] of the partitioned stateful
    graph model. One partition per worker. *)

type strategy =
  | Hash (** mixed hash of the id — the paper's scheme *)
  | Mod (** [v mod n_parts] — ablation; clusters generator hubs *)
  | Block (** contiguous ranges — ablation *)

type t

val create : ?strategy:strategy -> n_parts:int -> n_vertices:int -> unit -> t
val n_parts : t -> int

(** Owning partition of a vertex. *)
val owner : t -> int -> int

(** Vertices owned by a partition, ascending. *)
val members : t -> int -> int array

val size_of : t -> int -> int

(** Max partition size over mean size; 1.0 is perfect balance. *)
val imbalance : t -> float
