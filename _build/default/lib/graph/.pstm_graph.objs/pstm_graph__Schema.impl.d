lib/graph/schema.ml: Hashtbl Printf Vec
