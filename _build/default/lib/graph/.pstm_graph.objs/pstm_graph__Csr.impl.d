lib/graph/csr.ml: Array Vec
