lib/graph/builder.ml: Array Csr Fun Graph Hashtbl List Props Schema Value Vec
