lib/graph/props.ml: Array Bitset Hashtbl String Value Vec
