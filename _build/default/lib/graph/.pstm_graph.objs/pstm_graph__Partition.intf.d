lib/graph/partition.mli:
