lib/graph/schema.mli:
