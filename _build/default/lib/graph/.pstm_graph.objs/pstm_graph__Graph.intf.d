lib/graph/graph.mli: Csr Format Hashtbl Props Schema Value Vec
