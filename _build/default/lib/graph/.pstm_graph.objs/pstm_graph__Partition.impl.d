lib/graph/partition.ml: Array Vec
