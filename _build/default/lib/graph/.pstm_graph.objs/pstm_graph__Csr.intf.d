lib/graph/csr.mli:
