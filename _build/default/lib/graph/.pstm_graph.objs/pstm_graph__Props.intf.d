lib/graph/props.mli: Bitset Hashtbl Value Vec
