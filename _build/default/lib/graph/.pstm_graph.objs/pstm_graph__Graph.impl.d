lib/graph/graph.ml: Array Csr Fmt Hashtbl Props Schema Value Vec
