lib/graph/builder.mli: Graph Schema Value
