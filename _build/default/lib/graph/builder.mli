(** Mutable builder producing an immutable {!Graph.t}. *)

type t

val create : ?schema:Schema.t -> unit -> t
val schema : t -> Schema.t
val n_vertices : t -> int
val n_edges : t -> int

(** Append a vertex; returns its dense id. *)
val add_vertex : t -> label:string -> ?props:(string * Value.t) list -> unit -> int

(** Set (or overwrite) one property of an existing vertex. *)
val set_vertex_prop : t -> vertex:int -> key:string -> Value.t -> unit

(** Append a directed edge; returns its edge id (insertion order). *)
val add_edge :
  t -> src:int -> label:string -> dst:int -> ?props:(string * Value.t) list -> unit -> int

val build : t -> Graph.t

(** Builder pre-loaded with [n_vertices] unlabeled vertices and the given
    topology; used by the synthetic graph generators. *)
val of_edges :
  ?vertex_label:string -> ?edge_label:string -> n_vertices:int -> (int * int) array -> t
