(** Schema: interned vertex labels, edge labels and property keys.

    Interning happens while loading or building the graph; the query
    compiler resolves names to ids once, and engines compare ids only. *)

type t

val create : unit -> t

(** Intern (registering if new). *)
val vertex_label : t -> string -> int

val edge_label : t -> string -> int
val property_key : t -> string -> int

(** Look up without registering. *)
val vertex_label_opt : t -> string -> int option

val edge_label_opt : t -> string -> int option
val property_key_opt : t -> string -> int option

(** Look up, raising [Invalid_argument] on unknown names. *)
val vertex_label_exn : t -> string -> int

val edge_label_exn : t -> string -> int
val property_key_exn : t -> string -> int

val vertex_label_name : t -> int -> string
val edge_label_name : t -> int -> string
val property_key_name : t -> int -> string
val vertex_label_count : t -> int
val edge_label_count : t -> int
val property_key_count : t -> int
