(** Compressed sparse row adjacency for one traversal direction. *)

type t

val n_vertices : t -> int
val n_edges : t -> int
val degree : t -> int -> int

(** Visit each adjacent position of [v], optionally restricted to one edge
    label. [edge_id] is the global edge id, valid in both directions. *)
val iter_neighbors :
  t -> ?label:int -> int -> (target:int -> edge_id:int -> label:int -> unit) -> unit

val fold_neighbors :
  t ->
  ?label:int ->
  int ->
  init:'acc ->
  f:('acc -> target:int -> edge_id:int -> label:int -> 'acc) ->
  'acc

(** Materialized neighbor array (allocates; prefer the iterators). *)
val neighbors : t -> ?label:int -> int -> int array

val degree_with_label : t -> int -> int -> int

(** Linear-time construction by counting sort on the source column. *)
val build :
  n_vertices:int ->
  sources:int array ->
  targets:int array ->
  labels:int array ->
  edge_ids:int array ->
  t

(** Estimated memory footprint in bytes. *)
val bytes : t -> int
