(** Property values carried by vertices, edges and traverser variables. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Vertex of int
  | Edge of int
  | List of t list

(** Total order: [Null] sorts first; [Int] and [Float] compare numerically
    against each other; other constructors compare within their own kind. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Estimated serialized size, charged against simulated network
    bandwidth when values cross partitions. *)
val bytes : t -> int

val is_null : t -> bool
val to_int : t -> int option
val to_int_exn : t -> int
val to_float : t -> float option
val to_float_exn : t -> float
val to_bool : t -> bool option
val to_string_opt : t -> string option
val vertex_exn : t -> int

(** Numeric addition with [Null] as identity. *)
val add : t -> t -> t

val max_v : t -> t -> t
val min_v : t -> t -> t
