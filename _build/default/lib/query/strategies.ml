(* Traversal strategies: semantics-preserving AST rewrites (§II-B).

   Mirrors Gremlin's compiler strategies: each pass rewrites a section of
   the traversal into an equivalent but cheaper form. [apply_all] runs the
   passes to a fixed point; the compiler invokes it before lowering. *)

(* IndexLookUpStrategy: a full vertex scan followed by an equality filter
   becomes an index lookup, shrinking the accessed data from |V| to the
   matching bucket. *)
let index_lookup (t : Ast.traversal) =
  match t.source, t.steps with
  | Ast.Scan_all label, Ast.Has (key, Ast.Eq value) :: rest ->
    Some { Ast.source = Ast.Lookup { label; key; value }; steps = rest }
  | _ -> None

(* Fold a leading hasLabel into the source. *)
let label_pushdown (t : Ast.traversal) =
  match t.source, t.steps with
  | Ast.Scan_all None, Ast.Has_label l :: rest ->
    Some { Ast.source = Ast.Scan_all (Some l); steps = rest }
  | Ast.Lookup { label = None; key; value }, Ast.Has_label l :: rest ->
    Some { Ast.source = Ast.Lookup { label = Some l; key; value }; steps = rest }
  | _ -> None

(* order().by(k, desc).limit(n) fuses into a distributed top-k aggregation
   instead of a global sort. *)
let rec fuse_order_limit = function
  | Ast.Order_by key :: Ast.Limit k :: rest -> Some (Ast.Top_k { key; k } :: rest)
  | s :: rest -> Option.map (fun rest -> s :: rest) (fuse_order_limit rest)
  | [] -> None

(* A dedup immediately after a memo-deduplicated repeat is redundant: the
   Visit step already emits each vertex at most once. *)
let rec drop_redundant_dedup = function
  | (Ast.Repeat _ as r) :: Ast.Dedup :: rest -> Some (r :: rest)
  | s :: rest -> Option.map (fun rest -> s :: rest) (drop_redundant_dedup rest)
  | [] -> None

(* Adjacent dedups collapse. *)
let rec collapse_dedup = function
  | Ast.Dedup :: Ast.Dedup :: rest -> Some (Ast.Dedup :: rest)
  | s :: rest -> Option.map (fun rest -> s :: rest) (collapse_dedup rest)
  | [] -> None

let step_passes = [ fuse_order_limit; drop_redundant_dedup; collapse_dedup ]
let source_passes = [ index_lookup; label_pushdown ]

let apply_traversal t =
  let t = ref t in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun pass ->
        match pass !t with
        | Some t' ->
          t := t';
          changed := true
        | None -> ())
      source_passes;
    List.iter
      (fun pass ->
        match pass !t.Ast.steps with
        | Some steps ->
          t := { !t with Ast.steps };
          changed := true
        | None -> ())
      step_passes
  done;
  !t

let apply = function
  | Ast.Traversal t -> Ast.Traversal (apply_traversal t)
  | Ast.Join_of { left; right; post } ->
    let post =
      let rec fixpoint steps =
        match fuse_order_limit steps with
        | Some steps -> fixpoint steps
        | None -> steps
      in
      fixpoint post
    in
    Ast.Join_of { left = apply_traversal left; right = apply_traversal right; post }
