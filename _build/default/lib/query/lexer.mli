(** Lexer for the textual Gremlin subset. *)

type token =
  | Ident of string
  | Str_lit of string
  | Int_lit of int
  | Float_lit of float
  | Dot
  | Lparen
  | Rparen
  | Comma
  | Eof

exception Error of string

val pp_token : Format.formatter -> token -> unit

(** Tokenize the whole input; the final token is always [Eof]. Raises
    {!Error} on malformed input. *)
val tokenize : string -> token array
