(* Recursive-descent parser for the textual Gremlin subset.

   Grammar (informally):

     query  ::= 'g' '.' 'V' '(' ')' step*
     step   ::= '.' name '(' args? ')'
     args   ::= arg (',' arg)*
     arg    ::= literal | predicate | nested-traversal
     pred   ::= ('eq'|'neq'|'lt'|'lte'|'gt'|'gte') '(' literal ')'
              | 'within' '(' literal (',' literal)* ')'

   Supported steps mirror the DSL: hasLabel, has, out, in, both, dedup,
   as, select, where(neq(x)), values, repeat(movement).times(k), count,
   sum, max, min, groupCount, order().by(key, desc), limit. The strategy
   pass fuses order+limit into a top-k. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type state = {
  tokens : Lexer.token array;
  mutable pos : int;
}

let peek st = st.tokens.(st.pos)

let advance st = st.pos <- st.pos + 1

let expect st token =
  if peek st = token then advance st
  else error "expected %a but found %a" Lexer.pp_token token Lexer.pp_token (peek st)

let expect_ident st =
  match peek st with
  | Lexer.Ident name ->
    advance st;
    name
  | t -> error "expected an identifier but found %a" Lexer.pp_token t

let expect_string st =
  match peek st with
  | Lexer.Str_lit s ->
    advance st;
    s
  | t -> error "expected a string literal but found %a" Lexer.pp_token t

let expect_int st =
  match peek st with
  | Lexer.Int_lit n ->
    advance st;
    n
  | t -> error "expected an integer but found %a" Lexer.pp_token t

let literal st =
  match peek st with
  | Lexer.Str_lit s ->
    advance st;
    Value.Str s
  | Lexer.Int_lit n ->
    advance st;
    Value.Int n
  | Lexer.Float_lit f ->
    advance st;
    Value.Float f
  | Lexer.Ident "true" ->
    advance st;
    Value.Bool true
  | Lexer.Ident "false" ->
    advance st;
    Value.Bool false
  | t -> error "expected a literal but found %a" Lexer.pp_token t

(* eq(v), neq(v), ..., within(v, ...) — or a bare literal meaning eq. *)
let predicate st =
  match peek st with
  | Lexer.Ident (("eq" | "neq" | "lt" | "lte" | "gt" | "gte") as op) ->
    advance st;
    expect st Lexer.Lparen;
    let v = literal st in
    expect st Lexer.Rparen;
    (match op with
    | "eq" -> Ast.Eq v
    | "neq" -> Ast.Ne v
    | "lt" -> Ast.Lt v
    | "lte" -> Ast.Le v
    | "gt" -> Ast.Gt v
    | "gte" -> Ast.Ge v
    | _ -> assert false)
  | Lexer.Ident "within" ->
    advance st;
    expect st Lexer.Lparen;
    let rec values acc =
      let v = literal st in
      match peek st with
      | Lexer.Comma ->
        advance st;
        values (v :: acc)
      | _ -> List.rev (v :: acc)
    in
    let vs = values [] in
    expect st Lexer.Rparen;
    Ast.Within vs
  | _ -> Ast.Eq (literal st)

(* A movement step inside repeat( ... ). *)
let movement st =
  let name = expect_ident st in
  expect st Lexer.Lparen;
  let label =
    match peek st with
    | Lexer.Rparen -> None
    | _ -> Some (expect_string st)
  in
  expect st Lexer.Rparen;
  match name with
  | "out" -> (Graph.Out, label)
  | "in" -> (Graph.In, label)
  | "both" -> (Graph.Both, label)
  | _ -> error "repeat() supports a single movement step, not %s()" name

let optional_label st =
  match peek st with
  | Lexer.Rparen -> None
  | _ -> Some (expect_string st)

(* One chained step after the source. Steps that fuse with a successor
   (repeat/times, order/by) consume it here. *)
let rec steps st acc =
  match peek st with
  | Lexer.Eof -> List.rev acc
  | Lexer.Dot ->
    advance st;
    let name = expect_ident st in
    expect st Lexer.Lparen;
    let step =
      match name with
      | "out" ->
        let l = optional_label st in
        expect st Lexer.Rparen;
        Ast.Out l
      | "in" ->
        let l = optional_label st in
        expect st Lexer.Rparen;
        Ast.In l
      | "both" ->
        let l = optional_label st in
        expect st Lexer.Rparen;
        Ast.Both l
      | "hasLabel" ->
        let l = expect_string st in
        expect st Lexer.Rparen;
        Ast.Has_label l
      | "has" ->
        let key = expect_string st in
        expect st Lexer.Comma;
        let p = predicate st in
        expect st Lexer.Rparen;
        Ast.Has (key, p)
      | "dedup" ->
        expect st Lexer.Rparen;
        Ast.Dedup
      | "as" ->
        let n = expect_string st in
        expect st Lexer.Rparen;
        Ast.As n
      | "select" ->
        let n = expect_string st in
        expect st Lexer.Rparen;
        Ast.Select n
      | "values" ->
        let k = expect_string st in
        expect st Lexer.Rparen;
        Ast.Values k
      | "where" ->
        (* where(neq('x')) *)
        (match expect_ident st with
        | "neq" -> ()
        | other -> error "where() supports neq(), not %s()" other);
        expect st Lexer.Lparen;
        let n = expect_string st in
        expect st Lexer.Rparen;
        expect st Lexer.Rparen;
        Ast.Where_neq n
      | "repeat" ->
        let dir, label = movement st in
        expect st Lexer.Rparen;
        expect st Lexer.Dot;
        (match expect_ident st with
        | "times" -> ()
        | other -> error "repeat() must be followed by times(), not %s()" other);
        expect st Lexer.Lparen;
        let times = expect_int st in
        expect st Lexer.Rparen;
        Ast.Repeat { dir; label; times }
      | "count" ->
        expect st Lexer.Rparen;
        Ast.Count
      | "sum" ->
        let k = expect_string st in
        expect st Lexer.Rparen;
        Ast.Sum_of k
      | "max" ->
        let k = expect_string st in
        expect st Lexer.Rparen;
        Ast.Max_of k
      | "min" ->
        let k = expect_string st in
        expect st Lexer.Rparen;
        Ast.Min_of k
      | "groupCount" ->
        let k = expect_string st in
        expect st Lexer.Rparen;
        Ast.Group_count k
      | "order" ->
        (* order().by('key', desc) *)
        expect st Lexer.Rparen;
        expect st Lexer.Dot;
        (match expect_ident st with
        | "by" -> ()
        | other -> error "order() must be followed by by(), not %s()" other);
        expect st Lexer.Lparen;
        let key = expect_string st in
        (match peek st with
        | Lexer.Comma -> begin
          advance st;
          match expect_ident st with
          | "desc" -> ()
          | other -> error "order().by supports desc ordering, not %s" other
        end
        | _ -> error "order().by requires an explicit desc ordering");
        expect st Lexer.Rparen;
        Ast.Order_by key
      | "limit" ->
        let n = expect_int st in
        expect st Lexer.Rparen;
        Ast.Limit n
      | other -> error "unsupported step %s()" other
    in
    steps st (step :: acc)
  | t -> error "expected '.' or end of query but found %a" Lexer.pp_token t

let parse_exn input =
  let st = { tokens = Lexer.tokenize input; pos = 0 } in
  (match expect_ident st with
  | "g" -> ()
  | other -> error "queries start with g.V(), found %s" other);
  expect st Lexer.Dot;
  (match expect_ident st with
  | "V" -> ()
  | other -> error "queries start with g.V(), found g.%s" other);
  expect st Lexer.Lparen;
  expect st Lexer.Rparen;
  let all_steps = steps st [] in
  Ast.Traversal { Ast.source = Ast.Scan_all None; steps = all_steps }

let parse input =
  match parse_exn input with
  | ast -> Ok ast
  | exception Error message -> Error message
  | exception Lexer.Error message -> Error message
