(** Fluent Gremlin-style query combinators.

    {[
      Dsl.(
        v ()
        |> has "id" (eq (int 42))
        |> repeat_out "knows" ~times:2
        |> has "id" (ne (int 42))
        |> top_k "weight" 10
        |> build "k-hop-influencers")
    ]}

    Pair the resulting AST with {!Compile.compile} to obtain a runnable
    program. *)

type t

(** {2 Values and predicates} *)

val int : int -> Value.t
val str : string -> Value.t
val float : float -> Value.t
val bool : bool -> Value.t
val eq : Value.t -> Ast.pred
val ne : Value.t -> Ast.pred
val lt : Value.t -> Ast.pred
val lte : Value.t -> Ast.pred
val gt : Value.t -> Ast.pred
val gte : Value.t -> Ast.pred
val within : Value.t list -> Ast.pred

(** {2 Sources} *)

(** [g.V()], optionally label-restricted. *)
val v : ?label:string -> unit -> t

(** Index lookup on a property value. *)
val v_lookup : ?label:string -> key:string -> Value.t -> t

(** {2 Steps} *)

val out : ?label:string -> unit -> t -> t
val out_ : string -> t -> t
val in_ : string -> t -> t
val both_ : string -> t -> t
val has_label : string -> t -> t
val has : string -> Ast.pred -> t -> t
val where_neq : string -> t -> t
val dedup : t -> t
val as_ : string -> t -> t
val select : string -> t -> t
val values : string -> t -> t

(** Memo-deduplicated multi-hop expansion (the Figure 1 k-hop). *)
val repeat : ?dir:Graph.direction -> ?label:string -> times:int -> unit -> t -> t

val repeat_out : string -> times:int -> t -> t
val repeat_both : string -> times:int -> t -> t
val count : t -> t
val sum : string -> t -> t
val max_of : string -> t -> t
val min_of : string -> t -> t
val group_count : string -> t -> t

(** Descending top-k by a property, ties by vertex id. *)
val top_k : string -> int -> t -> t

val limit : int -> t -> t

(** {2 Finishers} *)

val traversal : t -> Ast.traversal
val build : t -> Ast.t

(** Join two traversals at their final vertex; [post] continues from the
    join vertex. *)
val join : ?post:(t -> t) -> t -> t -> Ast.t
