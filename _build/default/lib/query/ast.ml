(* Surface syntax: a Gremlin-like traversal AST.

   This is what the DSL combinators and the textual parser produce, what
   the traversal strategies rewrite, and what the compiler lowers to PSTM
   steps. It deliberately mirrors the Gremlin steps used throughout the
   paper: source steps (V / index lookup), movement (out/in/both), filters
   (has / hasLabel / where), dedup, multi-hop repeat, and the aggregation
   tail (count / sum / top-k / group-count / limit). *)

type pred =
  | Eq of Value.t
  | Ne of Value.t
  | Lt of Value.t
  | Le of Value.t
  | Gt of Value.t
  | Ge of Value.t
  | Within of Value.t list

type gstep =
  | Out of string option (* out('knows'); None expands every label *)
  | In of string option
  | Both of string option
  | Has_label of string
  | Has of string * pred
  | Where_neq of string (* current vertex <> the one bound by as_ *)
  | Dedup
  | As of string
  | Select of string (* refocus on a bound vertex *)
  | Values of string (* project a property; terminal context *)
  | Repeat of { dir : Graph.direction; label : string option; times : int }
    (* memo-deduplicated multi-hop expansion: emits every vertex within
       [times] hops, exactly the Figure 1 k-hop pattern *)
  | Count
  | Sum_of of string
  | Max_of of string
  | Min_of of string
  | Group_count of string
  | Order_by of string (* descending by property; must be followed by Limit *)
  | Limit of int
  | Top_k of { key : string; k : int } (* fused Order_by + Limit *)

type source =
  | Scan_all of string option (* g.V() / g.V().hasLabel(l) *)
  | Lookup of { label : string option; key : string; value : Value.t }

type traversal = {
  source : source;
  steps : gstep list;
}

type t =
  | Traversal of traversal
  | Join_of of {
      left : traversal; (* both sides must end at the join vertex *)
      right : traversal;
      post : gstep list; (* continuation from the join vertex *)
    }

let pp_pred ppf = function
  | Eq v -> Fmt.pf ppf "eq(%a)" Value.pp v
  | Ne v -> Fmt.pf ppf "neq(%a)" Value.pp v
  | Lt v -> Fmt.pf ppf "lt(%a)" Value.pp v
  | Le v -> Fmt.pf ppf "lte(%a)" Value.pp v
  | Gt v -> Fmt.pf ppf "gt(%a)" Value.pp v
  | Ge v -> Fmt.pf ppf "gte(%a)" Value.pp v
  | Within vs -> Fmt.pf ppf "within(%a)" (Fmt.list ~sep:Fmt.comma Value.pp) vs

let pp_label ppf = function None -> () | Some l -> Fmt.pf ppf "'%s'" l

let pp_gstep ppf = function
  | Out l -> Fmt.pf ppf "out(%a)" pp_label l
  | In l -> Fmt.pf ppf "in(%a)" pp_label l
  | Both l -> Fmt.pf ppf "both(%a)" pp_label l
  | Has_label l -> Fmt.pf ppf "hasLabel('%s')" l
  | Has (k, p) -> Fmt.pf ppf "has('%s', %a)" k pp_pred p
  | Where_neq n -> Fmt.pf ppf "where(neq('%s'))" n
  | Dedup -> Fmt.string ppf "dedup()"
  | As n -> Fmt.pf ppf "as('%s')" n
  | Select n -> Fmt.pf ppf "select('%s')" n
  | Values k -> Fmt.pf ppf "values('%s')" k
  | Repeat { dir; label; times } ->
    Fmt.pf ppf "repeat(%a(%a)).times(%d)" Graph.pp_direction dir pp_label label times
  | Count -> Fmt.string ppf "count()"
  | Sum_of k -> Fmt.pf ppf "sum('%s')" k
  | Max_of k -> Fmt.pf ppf "max('%s')" k
  | Min_of k -> Fmt.pf ppf "min('%s')" k
  | Group_count k -> Fmt.pf ppf "groupCount('%s')" k
  | Order_by k -> Fmt.pf ppf "order().by('%s', desc)" k
  | Limit n -> Fmt.pf ppf "limit(%d)" n
  | Top_k { key; k } -> Fmt.pf ppf "order().by('%s', desc).limit(%d)" key k

let pp_source ppf = function
  | Scan_all None -> Fmt.string ppf "g.V()"
  | Scan_all (Some l) -> Fmt.pf ppf "g.V().hasLabel('%s')" l
  | Lookup { label; key; value } ->
    Fmt.pf ppf "g.V()%a.has('%s', %a)"
      (fun ppf -> function None -> () | Some l -> Fmt.pf ppf ".hasLabel('%s')" l)
      label key Value.pp value

let pp_traversal ppf t =
  pp_source ppf t.source;
  List.iter (fun s -> Fmt.pf ppf ".%a" pp_gstep s) t.steps

let pp ppf = function
  | Traversal t -> pp_traversal ppf t
  | Join_of { left; right; post } ->
    Fmt.pf ppf "join(%a, %a)" pp_traversal left pp_traversal right;
    List.iter (fun s -> Fmt.pf ppf ".%a" pp_gstep s) post
