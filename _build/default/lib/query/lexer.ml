(* Lexer for the textual Gremlin subset.

   Token stream for queries like

     g.V().hasLabel('Person').has('id', eq(42))
          .repeat(out('knows')).times(2)
          .order().by('weight', desc).limit(10)

   Strings accept single or double quotes; numbers are integers or floats;
   everything else is identifiers and punctuation. *)

type token =
  | Ident of string
  | Str_lit of string
  | Int_lit of int
  | Float_lit of float
  | Dot
  | Lparen
  | Rparen
  | Comma
  | Eof

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "identifier %S" s
  | Str_lit s -> Fmt.pf ppf "string %S" s
  | Int_lit n -> Fmt.pf ppf "integer %d" n
  | Float_lit f -> Fmt.pf ppf "float %g" f
  | Dot -> Fmt.string ppf "'.'"
  | Lparen -> Fmt.string ppf "'('"
  | Rparen -> Fmt.string ppf "')'"
  | Comma -> Fmt.string ppf "','"
  | Eof -> Fmt.string ppf "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Tokenize the whole input up front; queries are short. *)
let tokenize input =
  let n = String.length input in
  let tokens = Vec.create ~dummy:Eof in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let read_while p =
    let start = !pos in
    while !pos < n && p input.[!pos] do
      advance ()
    done;
    String.sub input start (!pos - start)
  in
  let read_string quote =
    advance () (* opening quote *);
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> error "unterminated string literal"
      | Some c when c = quote -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
        | None -> error "unterminated escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let rec loop () =
    match peek () with
    | None -> Vec.push tokens Eof
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      loop ()
    | Some '.' ->
      (* Disambiguate the chain dot from a leading-dot float: [.5] never
         appears in Gremlin chains, so dot is always a separator here. *)
      advance ();
      Vec.push tokens Dot;
      loop ()
    | Some '(' ->
      advance ();
      Vec.push tokens Lparen;
      loop ()
    | Some ')' ->
      advance ();
      Vec.push tokens Rparen;
      loop ()
    | Some ',' ->
      advance ();
      Vec.push tokens Comma;
      loop ()
    | Some (('\'' | '"') as quote) ->
      Vec.push tokens (Str_lit (read_string quote));
      loop ()
    | Some '-' ->
      advance ();
      let digits = read_while (fun c -> is_digit c || c = '.') in
      if digits = "" then error "dangling '-'";
      if String.contains digits '.' then
        Vec.push tokens (Float_lit (-.float_of_string digits))
      else Vec.push tokens (Int_lit (-int_of_string digits));
      loop ()
    | Some c when is_digit c ->
      let digits = read_while (fun c -> is_digit c || c = '.') in
      if String.contains digits '.' then Vec.push tokens (Float_lit (float_of_string digits))
      else Vec.push tokens (Int_lit (int_of_string digits));
      loop ()
    | Some c when is_ident_start c ->
      Vec.push tokens (Ident (read_while is_ident_char));
      loop ()
    | Some c -> error "unexpected character %C" c
  in
  loop ();
  Vec.to_array tokens
