(** Cost-based join planning (§III-A): choose between unidirectional
    expansion from either endpoint and a bidirectional double-pipelined
    join, minimizing estimated intermediate cardinality. *)

type plan =
  | Expand_left
  | Expand_right
  | Bidirectional

val plan_name : plan -> string

(** Per-edge-label statistics driving cardinality estimates. *)
type label_stats = {
  count : int;
  distinct_sources : int;
  distinct_targets : int;
}

val label_stats : Graph.t -> (int, label_stats) Hashtbl.t

(** Estimated branching factor of one step, when it moves. *)
val step_fanout : Graph.t -> Ast.gstep -> float option

(** Estimated keep-fraction of one step, when it filters. *)
val step_selectivity : Ast.gstep -> float option

val source_cardinality : Graph.t -> Ast.source -> float

(** [(total intermediate traversers, final cardinality)] of a traversal. *)
val traversal_cost : Graph.t -> Ast.traversal -> float * float

exception Not_reversible of string

(** Steps of the reversed path, starting from the join vertex and ending
    with the original source's constraints as filters. Raises
    {!Not_reversible} when the path has non-invertible steps. *)
val reverse_traversal : Ast.traversal -> Ast.gstep list

(** Pick the cheapest plan for a join pattern. *)
val choose : Graph.t -> left:Ast.traversal -> right:Ast.traversal -> plan

(** Rewrite the pattern under a plan (unidirectional plans flatten into a
    single traversal through the join vertex). *)
val apply_plan : plan -> Ast.traversal -> Ast.traversal -> Ast.gstep list -> Ast.t
