(** Compiler: Gremlin-like AST -> validated PSTM program.

    Pipeline: {!Strategies.apply} rewrites, {!Planner.choose} places joins,
    then lowering with explicit control-flow patching. *)

exception Error of string

(** Compile a query against a graph's schema. Unknown labels compile to
    programs that match nothing (as in Gremlin). Raises {!Error} on
    malformed traversals (movement after [values()], unbound [select],
    unfused [order().by()], ...). *)
val compile : ?name:string -> Graph.t -> Ast.t -> Program.t

(** Compile a join pattern under a forced plan (for plan-comparison
    experiments). *)
val compile_with_plan :
  ?name:string ->
  Graph.t ->
  plan:Planner.plan ->
  left:Ast.traversal ->
  right:Ast.traversal ->
  post:Ast.gstep list ->
  Program.t
