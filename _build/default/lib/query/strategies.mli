(** Traversal strategies: semantics-preserving rewrites applied before
    compilation (index lookups, label pushdown, top-k fusion, redundant
    dedup elimination). *)

val index_lookup : Ast.traversal -> Ast.traversal option
val label_pushdown : Ast.traversal -> Ast.traversal option
val fuse_order_limit : Ast.gstep list -> Ast.gstep list option
val drop_redundant_dedup : Ast.gstep list -> Ast.gstep list option
val collapse_dedup : Ast.gstep list -> Ast.gstep list option

(** Run every pass to a fixed point. *)
val apply : Ast.t -> Ast.t

val apply_traversal : Ast.traversal -> Ast.traversal
