(** Parser for the textual Gremlin subset.

    Example:
    {[
      Parser.parse
        "g.V().has('id', 42).repeat(out('knows')).times(2)\
         .has('id', neq(42)).order().by('weight', desc).limit(10)"
    ]}

    The resulting AST goes through the same strategies and compiler as
    DSL-built queries (the scan + has prefix becomes an index lookup). *)

exception Error of string

(** Parse; [Error message] describes the first syntax problem. *)
val parse : string -> (Ast.t, string) result

(** Parse, raising {!Error}. *)
val parse_exn : string -> Ast.t
