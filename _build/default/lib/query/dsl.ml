(* Fluent query-building combinators.

   A thin layer over the AST so applications read like Gremlin:

     Dsl.(
       v ()
       |> has "id" (eq (int 42))
       |> repeat_out "knows" ~times:2
       |> has "id" (ne (int 42))
       |> top_k "weight" 10
       |> build "k-hop-influencers")

   [build] returns the AST; pair it with {!Compile.compile} to obtain a
   runnable program. *)

type t = {
  source : Ast.source;
  rev_steps : Ast.gstep list;
}

(* --- Values and predicates --- *)

let int n = Value.Int n
let str s = Value.Str s
let float f = Value.Float f
let bool b = Value.Bool b
let eq v = Ast.Eq v
let ne v = Ast.Ne v
let lt v = Ast.Lt v
let lte v = Ast.Le v
let gt v = Ast.Gt v
let gte v = Ast.Ge v
let within vs = Ast.Within vs

(* --- Sources --- *)

let v ?label () = { source = Ast.Scan_all label; rev_steps = [] }

let v_lookup ?label ~key value = { source = Ast.Lookup { label; key; value }; rev_steps = [] }

(* --- Steps --- *)

let step s t = { t with rev_steps = s :: t.rev_steps }
let out ?label () = step (Ast.Out label)
let out_ label t = step (Ast.Out (Some label)) t
let in_ label t = step (Ast.In (Some label)) t
let both_ label t = step (Ast.Both (Some label)) t
let has_label l = step (Ast.Has_label l)
let has key pred = step (Ast.Has (key, pred))
let where_neq name = step (Ast.Where_neq name)
let dedup t = step Ast.Dedup t
let as_ name = step (Ast.As name)
let select name = step (Ast.Select name)
let values key = step (Ast.Values key)

let repeat ?(dir = Graph.Out) ?label ~times () = step (Ast.Repeat { dir; label; times })
let repeat_out label ~times t = step (Ast.Repeat { dir = Graph.Out; label = Some label; times }) t
let repeat_both label ~times t = step (Ast.Repeat { dir = Graph.Both; label = Some label; times }) t

let count t = step Ast.Count t
let sum key = step (Ast.Sum_of key)
let max_of key = step (Ast.Max_of key)
let min_of key = step (Ast.Min_of key)
let group_count key = step (Ast.Group_count key)
let top_k key k = step (Ast.Top_k { key; k })
let limit k = step (Ast.Limit k)

(* --- Finishers --- *)

let traversal t = { Ast.source = t.source; steps = List.rev t.rev_steps }
let build t = Ast.Traversal (traversal t)

(* Join two traversals at their final vertex; [post] continues from it. *)
let join ?(post = fun p -> p) left right =
  let post_t = post { source = Ast.Scan_all None; rev_steps = [] } in
  Ast.Join_of
    { left = traversal left; right = traversal right; post = List.rev post_t.rev_steps }
