lib/query/parser.ml: Array Ast Fmt Graph Lexer List Value
