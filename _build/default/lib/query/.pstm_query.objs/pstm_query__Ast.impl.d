lib/query/ast.ml: Fmt Graph List Value
