lib/query/strategies.mli: Ast
