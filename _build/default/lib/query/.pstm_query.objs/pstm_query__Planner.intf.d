lib/query/planner.mli: Ast Graph Hashtbl
