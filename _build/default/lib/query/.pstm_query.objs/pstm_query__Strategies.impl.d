lib/query/strategies.ml: Ast List Option
