lib/query/dsl.mli: Ast Graph Value
