lib/query/lexer.mli: Format
