lib/query/lexer.ml: Buffer Fmt String Vec
