lib/query/compile.mli: Ast Graph Planner Program
