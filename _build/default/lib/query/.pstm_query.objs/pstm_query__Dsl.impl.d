lib/query/dsl.ml: Ast Graph List Value
