lib/query/compile.ml: Array Ast Fmt Graph Hashtbl List Option Planner Program Schema Step Strategies Value Vec
