lib/query/planner.ml: Ast Float Fmt Fun Graph Hashtbl List Option Schema
