(* Network cost model.

   Packets leaving a node serialize through its NIC: each occupies the NIC
   for a per-packet overhead (this is what caps packet rate — the "message
   rate of the networking stack" the paper blames for asynchronous systems'
   small-message problem) plus the wire time of its bytes, then arrives
   after the propagation latency. Same-node transfers bypass the NIC via
   shared memory. The bandwidth and latency knobs drive the Figure 13
   hardware sweep. *)

type t = {
  bandwidth_gbps : float; (* per-node NIC line rate *)
  wire_latency : Sim_time.t; (* propagation + switch traversal *)
  per_packet : Sim_time.t; (* NIC + kernel cost per packet, caps IOPS *)
  packet_header_bytes : int; (* framing added to every packet *)
  shm_latency : Sim_time.t; (* same-node shared-memory handoff *)
}

(* Defaults approximate the paper's testbed: 200 Gbps network, ~1.5us
   end-to-end latency, ~600K packets/s/node through the kernel TCP stack. *)
let default =
  {
    bandwidth_gbps = 200.0;
    wire_latency = Sim_time.us 2;
    per_packet = Sim_time.ns 1_600;
    packet_header_bytes = 64;
    shm_latency = Sim_time.ns 300;
  }

let with_bandwidth t gbps =
  if gbps <= 0.0 then invalid_arg "Netmodel.with_bandwidth";
  { t with bandwidth_gbps = gbps }

(* Time the payload occupies the wire. *)
let wire_time t ~bytes =
  let bits = float_of_int ((bytes + t.packet_header_bytes) * 8) in
  Sim_time.of_float_ns (bits /. t.bandwidth_gbps)

(* Total NIC occupancy of one packet. *)
let nic_occupancy t ~bytes = Sim_time.add t.per_packet (wire_time t ~bytes)

let packets_per_second t = 1e9 /. float_of_int (Sim_time.to_ns t.per_packet)
