lib/sim/netmodel.mli: Sim_time
