lib/sim/metrics.ml: Array Fmt List
