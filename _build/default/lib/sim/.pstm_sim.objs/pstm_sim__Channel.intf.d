lib/sim/channel.mli: Cluster Metrics Sim_time
