lib/sim/channel.ml: Array Cluster Event_queue Metrics Sim_time Vec
