lib/sim/cluster.mli: Event_queue Metrics Netmodel Sim_time
