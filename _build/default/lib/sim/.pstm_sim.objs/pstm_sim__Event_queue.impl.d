lib/sim/event_queue.ml: Fmt Heap Int Sim_time
