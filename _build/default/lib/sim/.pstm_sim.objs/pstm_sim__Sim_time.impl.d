lib/sim/sim_time.ml: Float Fmt Int
