lib/sim/netmodel.ml: Sim_time
