lib/sim/cluster.ml: Array Event_queue Metrics Netmodel Sim_time
