(* Discrete-event scheduler.

   A binary heap of (time, sequence, thunk); the sequence number breaks
   ties in schedule order, which makes whole-cluster simulations fully
   deterministic. Engines drive the simulation by scheduling closures and
   calling [run_to_completion]. *)

type entry = {
  time : Sim_time.t;
  seq : int;
  action : unit -> unit;
}

type t = {
  heap : entry Heap.t;
  mutable now : Sim_time.t;
  mutable next_seq : int;
  mutable executed : int;
}

let dummy_entry = { time = 0; seq = 0; action = ignore }

let compare_entry a b =
  let c = Sim_time.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  { heap = Heap.create ~cmp:compare_entry ~dummy:dummy_entry; now = 0; next_seq = 0; executed = 0 }

let now t = t.now

let executed t = t.executed

let pending t = Heap.length t.heap

let schedule_at t ~time action =
  if Sim_time.compare time t.now < 0 then
    invalid_arg
      (Fmt.str "Event_queue.schedule_at: time %a is in the past (now %a)" Sim_time.pp time
         Sim_time.pp t.now);
  Heap.push t.heap { time; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1

let schedule_after t ~delay action = schedule_at t ~time:(Sim_time.add t.now delay) action

let step t =
  match Heap.pop_opt t.heap with
  | None -> false
  | Some entry ->
    t.now <- entry.time;
    t.executed <- t.executed + 1;
    entry.action ();
    true

(* Runs until the queue drains. [max_events] guards against engines that
   accidentally schedule forever. *)
let run_to_completion ?(max_events = 2_000_000_000) t =
  let budget = ref max_events in
  while step t do
    decr budget;
    if !budget <= 0 then failwith "Event_queue.run_to_completion: event budget exhausted"
  done

let run_until t ~time =
  let continue = ref true in
  while
    !continue
    &&
    match Heap.peek t.heap with
    | Some entry when Sim_time.compare entry.time time <= 0 -> true
    | _ -> false
  do
    continue := step t
  done;
  if Sim_time.compare t.now time < 0 then t.now <- time
