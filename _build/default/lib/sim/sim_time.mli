(** Simulated time in integer nanoseconds. *)

type t = int

val zero : t
val ns : int -> t
val us : int -> t
val ms : int -> t
val s : int -> t
val of_float_ns : float -> t
val to_ns : t -> int
val to_us : t -> float
val to_ms : t -> float
val to_s : t -> float
val add : t -> t -> t
val diff : t -> t -> t
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
