(** Network cost model: bandwidth, latency and per-packet (IOPS) costs. *)

type t = {
  bandwidth_gbps : float;
  wire_latency : Sim_time.t;
  per_packet : Sim_time.t;
  packet_header_bytes : int;
  shm_latency : Sim_time.t;
}

(** 200 Gbps, ~2us wire latency — the paper's testbed network. *)
val default : t

val with_bandwidth : t -> float -> t

(** Wire time of a payload of [bytes] (header included). *)
val wire_time : t -> bytes:int -> Sim_time.t

(** Total NIC occupancy of one packet: per-packet cost + wire time. *)
val nic_occupancy : t -> bytes:int -> Sim_time.t

(** Upper bound on packet rate implied by the per-packet cost. *)
val packets_per_second : t -> float
