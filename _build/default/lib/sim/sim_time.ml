(* Simulated time, in integer nanoseconds.

   All latency figures in the reproduction are simulated durations: the
   discrete-event simulator advances this clock, never the wall clock, so
   every experiment is deterministic. 63-bit nanoseconds cover ~146 years
   of simulated time. *)

type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000

let of_float_ns f = int_of_float (Float.round f)

let to_ns t = t
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_s t = float_of_int t /. 1e9

let add = ( + )
let diff = ( - )
let compare = Int.compare

let pp ppf t =
  if t < 1_000 then Fmt.pf ppf "%dns" t
  else if t < 1_000_000 then Fmt.pf ppf "%.2fus" (to_us t)
  else if t < 1_000_000_000 then Fmt.pf ppf "%.3fms" (to_ms t)
  else Fmt.pf ppf "%.3fs" (to_s t)
