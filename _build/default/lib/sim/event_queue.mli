(** Deterministic discrete-event scheduler. *)

type t

val create : unit -> t

(** Current simulated time; advances only while running events. *)
val now : t -> Sim_time.t

(** Number of events executed so far. *)
val executed : t -> int

(** Number of events still scheduled. *)
val pending : t -> int

(** Schedule a closure; raises if [time] is before [now]. Events at equal
    times fire in schedule order. *)
val schedule_at : t -> time:Sim_time.t -> (unit -> unit) -> unit

val schedule_after : t -> delay:Sim_time.t -> (unit -> unit) -> unit

(** Execute the next event; [false] when the queue is empty. *)
val step : t -> bool

(** Drain the queue; raises if [max_events] is exceeded. *)
val run_to_completion : ?max_events:int -> t -> unit

(** Run all events up to and including [time], then set the clock there. *)
val run_until : t -> time:Sim_time.t -> unit
