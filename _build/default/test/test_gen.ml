(* Tests for the synthetic graph generators. *)

open Pstm_gen

let qcheck = QCheck_alcotest.to_alcotest

let test_rmat_shape () =
  let params = { Rmat.default with Rmat.scale = 10; edge_factor = 8 } in
  let prng = Prng.create 1 in
  let edges = Rmat.generate ~params prng in
  let n = Rmat.n_vertices params in
  Alcotest.(check int) "vertex count" 1024 n;
  Alcotest.(check bool) "close to target edges" true
    (Array.length edges > (8 * n * 3 / 4) && Array.length edges <= 8 * n);
  Array.iter
    (fun (s, d) ->
      Alcotest.(check bool) "ids in range" true (s >= 0 && s < n && d >= 0 && d < n);
      Alcotest.(check bool) "no self loop" true (s <> d))
    edges;
  (* Deduplicated by default. *)
  let seen = Hashtbl.create (Array.length edges) in
  Array.iter
    (fun e ->
      Alcotest.(check bool) "no duplicate" false (Hashtbl.mem seen e);
      Hashtbl.add seen e ())
    edges

let test_rmat_skew () =
  (* The default parameters are skewed: the max degree far exceeds the
     mean. *)
  let prng = Prng.create 2 in
  let g = Rmat.graph ~params:{ Rmat.default with Rmat.scale = 11 } prng in
  let max_deg = ref 0 in
  Graph.iter_vertices g (fun v -> max_deg := max !max_deg (Graph.out_degree g v));
  let mean = float_of_int (Graph.n_edges g) /. float_of_int (Graph.n_vertices g) in
  Alcotest.(check bool) "hub exists" true (float_of_int !max_deg > 5.0 *. mean)

let test_rmat_deterministic () =
  let run () = Rmat.generate ~params:{ Rmat.default with Rmat.scale = 9 } (Prng.create 7) in
  Alcotest.(check bool) "same seed, same edges" true (run () = run ())

let test_er_shape () =
  let prng = Prng.create 3 in
  let edges = Er.generate prng ~n_vertices:100 ~n_edges:500 in
  Alcotest.(check int) "edge count exact" 500 (Array.length edges);
  Array.iter
    (fun (s, d) ->
      Alcotest.(check bool) "in range" true (s >= 0 && s < 100 && d >= 0 && d < 100);
      Alcotest.(check bool) "no self loop" true (s <> d))
    edges

let test_zipf_sampling () =
  let z = Zipf.create ~n:50 ~exponent:1.0 in
  let prng = Prng.create 4 in
  let counts = Array.make 50 0 in
  for _ = 1 to 20_000 do
    let i = Zipf.sample z prng in
    Alcotest.(check bool) "in range" true (i >= 0 && i < 50);
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "head heavier than tail" true (counts.(0) > 4 * counts.(40));
  (* Monotone-ish overall: first quartile outweighs the last. *)
  let sum a b = Array.fold_left ( + ) 0 (Array.sub counts a (b - a)) in
  Alcotest.(check bool) "quartile ordering" true (sum 0 12 > sum 38 50)

let test_zipf_degree_sequence () =
  let prng = Prng.create 5 in
  let degrees = Zipf.degree_sequence prng ~n:200 ~target_edges:2_000 ~exponent:0.8 in
  let total = Array.fold_left ( + ) 0 degrees in
  Alcotest.(check bool) "total near target" true (total > 1_500 && total < 2_600);
  Array.iter (fun d -> Alcotest.(check bool) "positive" true (d >= 1)) degrees

let test_datasets_deterministic_and_symmetric () =
  let g = Datasets.load Datasets.tiny in
  let g' = Datasets.build Datasets.tiny in
  Alcotest.(check int) "same vertex count" (Graph.n_vertices g) (Graph.n_vertices g');
  Alcotest.(check int) "same edge count" (Graph.n_edges g) (Graph.n_edges g');
  (* Symmetrized: out-degree equals in-degree everywhere. *)
  Graph.iter_vertices g (fun v ->
      Alcotest.(check int) "symmetric degrees" (Graph.out_degree g v) (Graph.in_degree g v));
  (* Every vertex has the id and weight properties. *)
  Graph.iter_vertices g (fun v ->
      Alcotest.(check bool) "id" true
        (Value.equal (Value.Int v) (Graph.vertex_prop_by_name g ~key:"id" v));
      Alcotest.(check bool) "weight" false
        (Value.is_null (Graph.vertex_prop_by_name g ~key:"weight" v)))

let test_snb_shape () =
  let d = Pstm_ldbc.Snb_gen.load Pstm_ldbc.Snb_gen.snb_tiny in
  let g = d.Pstm_ldbc.Snb_gen.graph in
  let schema = Graph.schema g in
  let count label =
    let l = Schema.vertex_label_exn schema label in
    let n = ref 0 in
    Graph.iter_vertices_with_label g l (fun _ -> incr n);
    !n
  in
  Alcotest.(check int) "persons" 200 (count Pstm_ldbc.Snb_schema.person);
  Alcotest.(check bool) "forums exist" true (count Pstm_ldbc.Snb_schema.forum > 0);
  Alcotest.(check bool) "posts exist" true (count Pstm_ldbc.Snb_schema.post > 0);
  Alcotest.(check bool) "comments exist" true (count Pstm_ldbc.Snb_schema.comment > 0);
  Alcotest.(check bool) "tags exist" true (count Pstm_ldbc.Snb_schema.tag > 0);
  (* knows is stored symmetrically. *)
  let knows = Schema.edge_label_exn schema Pstm_ldbc.Snb_schema.knows in
  Array.iter
    (fun p ->
      Graph.iter_adjacent g ~dir:Graph.Out ~label:knows p (fun ~target ~edge_id:_ ~label:_ ->
          let back = ref false in
          Graph.iter_adjacent g ~dir:Graph.Out ~label:knows target
            (fun ~target:t2 ~edge_id:_ ~label:_ -> if t2 = p then back := true);
          Alcotest.(check bool) "knows symmetric" true !back))
    d.Pstm_ldbc.Snb_gen.persons;
  (* Every post has a creator and a containing forum. *)
  let has_creator = Schema.edge_label_exn schema Pstm_ldbc.Snb_schema.has_creator in
  let container_of = Schema.edge_label_exn schema Pstm_ldbc.Snb_schema.container_of in
  let count_adjacent ~dir ~label v =
    let n = ref 0 in
    Graph.iter_adjacent g ~dir ~label v (fun ~target:_ ~edge_id:_ ~label:_ -> incr n);
    !n
  in
  Array.iter
    (fun post ->
      Alcotest.(check int) "one creator" 1 (count_adjacent ~dir:Graph.Out ~label:has_creator post);
      Alcotest.(check int) "one forum" 1 (count_adjacent ~dir:Graph.In ~label:container_of post))
    d.Pstm_ldbc.Snb_gen.posts

let test_table2_rows () =
  let name, v, e, bytes = Datasets.row Datasets.tiny in
  Alcotest.(check string) "name" "tiny" name;
  Alcotest.(check bool) "positive sizes" true (v > 0 && e > 0 && bytes > 0)

let test_loader_roundtrip () =
  let g = Datasets.load Datasets.tiny in
  let path = Filename.temp_file "pstm" ".edges" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Loader.save g path;
      let g' = Loader.load path in
      (* The edge-list format cannot represent isolated vertices; they are
         dropped by a round trip. *)
      let connected g =
        let n = ref 0 in
        Graph.iter_vertices g (fun v ->
            if Graph.out_degree g v > 0 || Graph.in_degree g v > 0 then incr n);
        !n
      in
      Alcotest.(check int) "connected vertices" (connected g) (Graph.n_vertices g');
      Alcotest.(check int) "edges" (Graph.n_edges g) (Graph.n_edges g');
      (* Degree sequences agree up to the id remapping; compare sorted,
         ignoring the isolated vertices. *)
      let degrees g =
        List.filter (fun d -> d > 0)
          (List.sort compare (List.init (Graph.n_vertices g) (Graph.out_degree g)))
      in
      Alcotest.(check (list int)) "degree sequence" (degrees g) (degrees g'))

let test_loader_parsing () =
  let parse text =
    let path = Filename.temp_file "pstm" ".edges" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Loader.load path)
  in
  let g = parse "# comment
1 2

2 3
42 1
" in
  Alcotest.(check int) "dense vertices" 4 (Graph.n_vertices g);
  Alcotest.(check int) "edges" 3 (Graph.n_edges g);
  let g2 = parse "5,6
6,5
" in
  Alcotest.(check int) "comma separated" 2 (Graph.n_edges g2);
  Alcotest.(check bool) "bad input raises" true
    (match parse "1 banana
" with
    | _ -> false
    | exception Loader.Parse_error _ -> true);
  let sym = 
    let path = Filename.temp_file "pstm" ".edges" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out path in
        output_string oc "0 1
";
        close_out oc;
        Loader.load ~symmetrize:true path)
  in
  Alcotest.(check int) "symmetrized" 2 (Graph.n_edges sym)

let snb_queries_deterministic =
  QCheck.Test.make ~name:"snb query parameters deterministic in seed" ~count:20 QCheck.small_int
    (fun seed ->
      let d = Pstm_ldbc.Snb_gen.load Pstm_ldbc.Snb_gen.snb_tiny in
      let once () =
        let prng = Prng.create seed in
        Fmt.str "%a" Pstm_core.Program.pp (Pstm_ldbc.Ic_queries.ic9 d prng)
      in
      once () = once ())

let () =
  Alcotest.run "gen"
    [
      ( "rmat",
        [
          Alcotest.test_case "shape" `Quick test_rmat_shape;
          Alcotest.test_case "skew" `Quick test_rmat_skew;
          Alcotest.test_case "deterministic" `Quick test_rmat_deterministic;
        ] );
      ("er", [ Alcotest.test_case "shape" `Quick test_er_shape ]);
      ( "zipf",
        [
          Alcotest.test_case "sampling" `Quick test_zipf_sampling;
          Alcotest.test_case "degree sequence" `Quick test_zipf_degree_sequence;
        ] );
      ( "datasets",
        [
          Alcotest.test_case "deterministic+symmetric" `Quick test_datasets_deterministic_and_symmetric;
          Alcotest.test_case "table2 rows" `Quick test_table2_rows;
        ] );
      ( "loader",
        [
          Alcotest.test_case "round trip" `Quick test_loader_roundtrip;
          Alcotest.test_case "parsing" `Quick test_loader_parsing;
        ] );
      ( "snb",
        [ Alcotest.test_case "shape" `Quick test_snb_shape; qcheck snb_queries_deterministic ] );
    ]
