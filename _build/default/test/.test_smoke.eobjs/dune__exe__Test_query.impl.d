test/test_query.ml: Alcotest Ast Compile Dsl Engine Fmt Graph Hashtbl List Local_engine Parser Planner Prng Pstm_engine Pstm_gen Pstm_ldbc Pstm_query QCheck QCheck_alcotest Schema Strategies Value
