test/test_gen.ml: Alcotest Array Datasets Er Filename Fmt Fun Graph Hashtbl List Loader Prng Pstm_core Pstm_gen Pstm_ldbc QCheck QCheck_alcotest Rmat Schema Sys Value Zipf
