test/test_util.ml: Alcotest Array Bitset Fun Heap Histogram Int List Prng QCheck QCheck_alcotest Set Stats Topk Vec
