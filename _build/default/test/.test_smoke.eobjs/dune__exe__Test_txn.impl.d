test/test_txn.ml: Alcotest Hashtbl List Lock_table Option Prng Pstm_ldbc Pstm_sim Pstm_txn QCheck QCheck_alcotest Tel Txn_graph Txn_manager Value
