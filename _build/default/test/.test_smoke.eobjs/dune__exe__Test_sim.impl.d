test/test_sim.ml: Alcotest Array Channel Cluster Event_queue Fmt Fun Gen Histogram List Metrics Netmodel QCheck QCheck_alcotest Sim_time Stats
