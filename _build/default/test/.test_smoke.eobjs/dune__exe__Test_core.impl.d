test/test_core.ml: Aggregate Alcotest Array Builder Fmt Graph Lazy List Memo Prng Program Progress QCheck QCheck_alcotest Queue Schema Step Traverser Value Weight
