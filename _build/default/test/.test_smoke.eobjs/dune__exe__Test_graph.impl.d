test/test_graph.ml: Alcotest Array Builder Csr Graph Hashtbl Int List Partition Props QCheck QCheck_alcotest Schema Value Vec
