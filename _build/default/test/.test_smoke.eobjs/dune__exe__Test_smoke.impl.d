test/test_smoke.ml: Alcotest Array Async_engine Builder Channel Cluster Compile Dsl Engine Fmt Graph Hashtbl List Local_engine Prng Program Pstm_engine Pstm_gen Pstm_query Schema Step Value
