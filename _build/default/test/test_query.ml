(* Tests for the query layer: strategies, parser, compiler and planner. *)

open Pstm_engine
open Pstm_query

let qcheck = QCheck_alcotest.to_alcotest

let show_rows rows =
  Fmt.str "%a" (Fmt.list ~sep:(Fmt.any "@.") (Fmt.array ~sep:(Fmt.any "|") Value.pp))
    (Engine.sorted_rows rows)

(* --- Strategies --- *)

let test_index_lookup_strategy () =
  let t =
    { Ast.source = Ast.Scan_all (Some "Person"); steps = [ Ast.Has ("id", Ast.Eq (Value.Int 5)); Ast.Count ] }
  in
  match Strategies.apply_traversal t with
  | { Ast.source = Ast.Lookup { label = Some "Person"; key = "id"; value = Value.Int 5 }; steps = [ Ast.Count ] } ->
    ()
  | other -> Alcotest.fail (Fmt.str "unexpected rewrite: %a" Ast.pp_traversal other)

let test_label_pushdown () =
  let t = { Ast.source = Ast.Scan_all None; steps = [ Ast.Has_label "Tag"; Ast.Count ] } in
  match Strategies.apply_traversal t with
  | { Ast.source = Ast.Scan_all (Some "Tag"); steps = [ Ast.Count ] } -> ()
  | other -> Alcotest.fail (Fmt.str "unexpected rewrite: %a" Ast.pp_traversal other)

let test_order_limit_fusion () =
  match Strategies.fuse_order_limit [ Ast.Out None; Ast.Order_by "w"; Ast.Limit 5 ] with
  | Some [ Ast.Out None; Ast.Top_k { key = "w"; k = 5 } ] -> ()
  | _ -> Alcotest.fail "expected top-k fusion"

let test_redundant_dedup_dropped () =
  let repeat = Ast.Repeat { dir = Graph.Out; label = None; times = 2 } in
  (match Strategies.drop_redundant_dedup [ repeat; Ast.Dedup; Ast.Count ] with
  | Some [ Ast.Repeat _; Ast.Count ] -> ()
  | _ -> Alcotest.fail "expected dedup removal");
  match Strategies.collapse_dedup [ Ast.Dedup; Ast.Dedup; Ast.Dedup ] with
  | Some [ Ast.Dedup; Ast.Dedup ] -> ()
  | _ -> Alcotest.fail "expected dedup collapse"

let test_strategy_fixpoint () =
  (* hasLabel then has(eq) collapses all the way into a labeled lookup. *)
  let ast =
    Ast.Traversal
      {
        Ast.source = Ast.Scan_all None;
        steps =
          [
            Ast.Has_label "Person";
            Ast.Has ("id", Ast.Eq (Value.Int 3));
            Ast.Order_by "w";
            Ast.Limit 2;
          ];
      }
  in
  match Strategies.apply ast with
  | Ast.Traversal
      { Ast.source = Ast.Lookup { label = Some "Person"; _ }; steps = [ Ast.Top_k _ ] } ->
    ()
  | other -> Alcotest.fail (Fmt.str "unexpected: %a" Ast.pp other)

(* Strategies preserve semantics on a real graph. *)
let test_strategies_preserve_semantics () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  (* Compile once with strategies (the default pipeline) and once from a
     hand-lowered unoptimized equivalent: a full scan with a filter. *)
  let optimized =
    Compile.compile ~name:"opt" graph
      (Ast.Traversal
         {
           Ast.source = Ast.Scan_all None;
           steps = [ Ast.Has ("id", Ast.Eq (Value.Int 9)); Ast.Out (Some "link"); Ast.Count ];
         })
  in
  let manual =
    Compile.compile ~name:"manual" graph
      (Ast.Traversal
         {
           Ast.source = Ast.Scan_all None;
           steps = [ Ast.Has ("id", Ast.Ne (Value.Int (-1))); Ast.Has ("id", Ast.Eq (Value.Int 9)); Ast.Out (Some "link"); Ast.Count ];
         })
  in
  Alcotest.(check string) "same answer"
    (show_rows (Local_engine.run graph optimized))
    (show_rows (Local_engine.run graph manual))

(* --- Parser --- *)

let test_parser_roundtrip_semantics () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let text =
    "g.V().has('id', 3).as('s').repeat(out('link')).times(2).where(neq('s'))\n\
     .order().by('weight', desc).limit(10)"
  in
  let parsed = Parser.parse_exn text in
  let dsl =
    Dsl.(
      v_lookup ~key:"id" (int 3)
      |> as_ "s"
      |> repeat_out "link" ~times:2
      |> where_neq "s"
      |> top_k "weight" 10
      |> build)
  in
  let rows_of ast = show_rows (Local_engine.run graph (Compile.compile graph ast)) in
  Alcotest.(check string) "parsed equals dsl" (rows_of dsl) (rows_of parsed)

let test_parser_steps () =
  (* Each supported construct parses. *)
  List.iter
    (fun text ->
      match Parser.parse text with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Fmt.str "%s: %s" text e))
    [
      "g.V().count()";
      "g.V().hasLabel('Person').out('knows').in('likes').both('x').dedup().count()";
      "g.V().has('age', gt(30)).has('age', lte(40)).has('name', within('a', 'b')).count()";
      "g.V().values('name')";
      "g.V().out().limit(3)";
      "g.V().groupCount('city')";
      "g.V().sum('w')";
      "g.V().max('w')";
      "g.V().min('w')";
      "g.V().has('pi', 3.14).count()";
      "g.V().has('neg', -5).count()";
      "g.V().has('flag', true).count()";
    ]

let test_parser_errors () =
  List.iter
    (fun text ->
      match Parser.parse text with
      | Ok _ -> Alcotest.fail (Fmt.str "expected error for %s" text)
      | Error _ -> ())
    [
      "";
      "h.V().count()";
      "g.E().count()";
      "g.V().frobnicate()";
      "g.V().has('k' 5)";
      "g.V().repeat(dedup()).times(2)";
      "g.V().repeat(out('x'))";
      "g.V().order().count()";
      "g.V().has('k', 'unterminated";
      "g.V().where(eq('x'))";
    ]

(* --- Compiler --- *)

let test_compile_errors () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let expect_error name ast =
    match Compile.compile ~name graph ast with
    | _ -> Alcotest.fail (name ^ ": expected Compile.Error")
    | exception Compile.Error _ -> ()
  in
  expect_error "movement after values"
    (Ast.Traversal { Ast.source = Ast.Scan_all None; steps = [ Ast.Values "w"; Ast.Out None ] });
  expect_error "unbound select"
    (Ast.Traversal { Ast.source = Ast.Scan_all None; steps = [ Ast.Select "nope" ] });
  expect_error "unbound where"
    (Ast.Traversal { Ast.source = Ast.Scan_all None; steps = [ Ast.Where_neq "nope" ] });
  expect_error "unfused order"
    (Ast.Traversal { Ast.source = Ast.Scan_all None; steps = [ Ast.Order_by "w"; Ast.Count ] });
  expect_error "zero-hop repeat"
    (Ast.Traversal
       { Ast.source = Ast.Scan_all None; steps = [ Ast.Repeat { dir = Graph.Out; label = None; times = 0 } ] })

let test_compile_unknown_labels_match_nothing () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let program =
    Compile.compile ~name:"ghost" graph
      Dsl.(v ~label:"Ghost" () |> out_ "spectral" |> count |> build)
  in
  match Local_engine.run graph program with
  | [ [| Value.Int 0 |] ] -> ()
  | rows -> Alcotest.fail (Fmt.str "expected count 0, got %s" (show_rows rows))

let test_select_moves_back () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  (* Walk away and select back: the count equals counting the start. *)
  let program =
    Compile.compile ~name:"select" graph
      Dsl.(
        v_lookup ~key:"id" (int 4)
        |> as_ "home"
        |> out_ "link"
        |> select "home"
        |> dedup
        |> count
        |> build)
  in
  match Local_engine.run graph program with
  | [ [| Value.Int n |] ] ->
    let expected = if Graph.out_degree graph 4 > 0 then 1 else 0 in
    Alcotest.(check int) "back home once" expected n
  | rows -> Alcotest.fail (Fmt.str "unexpected %s" (show_rows rows))

(* --- Planner --- *)

let test_reverse_traversal () =
  let t =
    {
      Ast.source = Ast.Lookup { label = Some "Tag"; key = "name"; value = Value.Str "t" };
      steps = [ Ast.In (Some "hasTag"); Ast.Has_label "Post" ];
    }
  in
  match Planner.reverse_traversal t with
  | [ Ast.Has_label "Post"; Ast.Out (Some "hasTag"); Ast.Has_label "Tag"; Ast.Has ("name", Ast.Eq (Value.Str "t")) ] ->
    ()
  | steps ->
    Alcotest.fail
      (Fmt.str "unexpected reversal: %a" (Fmt.list ~sep:(Fmt.any ".") Ast.pp_gstep) steps)

let test_reverse_rejects_stateful () =
  let t = { Ast.source = Ast.Scan_all None; steps = [ Ast.Out None; Ast.Dedup ] } in
  Alcotest.(check bool) "dedup not reversible" true
    (match Planner.reverse_traversal t with
    | _ -> false
    | exception Planner.Not_reversible _ -> true)

(* All feasible plans of a join pattern must give the same rows — the
   plan choice is a pure performance decision. *)
let test_join_plans_equivalent () =
  let data = Pstm_ldbc.Snb_gen.load Pstm_ldbc.Snb_gen.snb_tiny in
  let graph = data.Pstm_ldbc.Snb_gen.graph in
  let prng = Prng.create 3 in
  let left, right, post = Pstm_ldbc.Ic_queries.ic6_sides data prng in
  let results =
    List.filter_map
      (fun plan ->
        match Compile.compile_with_plan ~name:"plans" graph ~plan ~left ~right ~post with
        | exception Planner.Not_reversible _ -> None
        | program -> Some (Planner.plan_name plan, show_rows (Local_engine.run graph program)))
      [ Planner.Bidirectional; Planner.Expand_left; Planner.Expand_right ]
  in
  Alcotest.(check bool) "at least two feasible plans" true (List.length results >= 2);
  match results with
  | (_, first) :: rest ->
    List.iter (fun (name, rows) -> Alcotest.(check string) name first rows) rest
  | [] -> assert false

let test_label_stats () =
  let data = Pstm_ldbc.Snb_gen.load Pstm_ldbc.Snb_gen.snb_tiny in
  let graph = data.Pstm_ldbc.Snb_gen.graph in
  let stats = Planner.label_stats graph in
  let schema = Graph.schema graph in
  let knows = Schema.edge_label_exn schema Pstm_ldbc.Snb_schema.knows in
  (match Hashtbl.find_opt stats knows with
  | Some s ->
    Alcotest.(check bool) "counts positive" true (s.Planner.count > 0);
    Alcotest.(check bool) "distinct bounded by count" true
      (s.Planner.distinct_sources <= s.Planner.count)
  | None -> Alcotest.fail "knows label missing from stats");
  (* hasTag fans out much wider inward than outward. *)
  let fan_in = Planner.step_fanout graph (Ast.In (Some Pstm_ldbc.Snb_schema.has_tag)) in
  let fan_out = Planner.step_fanout graph (Ast.Out (Some Pstm_ldbc.Snb_schema.has_tag)) in
  match fan_in, fan_out with
  | Some i, Some o -> Alcotest.(check bool) "posts-per-tag > tags-per-post" true (i > o)
  | _ -> Alcotest.fail "expected fanouts"

(* Random traversals always produce equal rows whether compiled via the
   planner-flattened form or executed as a bidirectional join. *)
let join_vs_flatten =
  QCheck.Test.make ~name:"join plans agree on random tag patterns" ~count:20
    QCheck.(pair (int_range 0 199) (int_range 0 40))
    (fun (person, tag) ->
      let data = Pstm_ldbc.Snb_gen.load Pstm_ldbc.Snb_gen.snb_tiny in
      let graph = data.Pstm_ldbc.Snb_gen.graph in
      let left =
        Dsl.(
          v_lookup ~label:Pstm_ldbc.Snb_schema.person ~key:"id" (int person)
          |> out_ Pstm_ldbc.Snb_schema.knows
          |> in_ Pstm_ldbc.Snb_schema.has_creator
          |> has_label Pstm_ldbc.Snb_schema.post
          |> traversal)
      in
      let right =
        Dsl.(
          v_lookup ~label:Pstm_ldbc.Snb_schema.tag ~key:"name" (str (Fmt.str "Tag_%d" tag))
          |> in_ Pstm_ldbc.Snb_schema.has_tag
          |> has_label Pstm_ldbc.Snb_schema.post
          |> traversal)
      in
      let post = [ Ast.Count ] in
      let rows plan =
        match Compile.compile_with_plan ~name:"jf" graph ~plan ~left ~right ~post with
        | exception Planner.Not_reversible _ -> None
        | program -> Some (show_rows (Local_engine.run graph program))
      in
      match rows Planner.Bidirectional, rows Planner.Expand_left, rows Planner.Expand_right with
      | Some a, Some b, Some c -> a = b && b = c
      | Some a, Some b, None | Some a, None, Some b -> a = b
      | _ -> false)

let () =
  Alcotest.run "query"
    [
      ( "strategies",
        [
          Alcotest.test_case "index lookup" `Quick test_index_lookup_strategy;
          Alcotest.test_case "label pushdown" `Quick test_label_pushdown;
          Alcotest.test_case "order+limit fusion" `Quick test_order_limit_fusion;
          Alcotest.test_case "redundant dedup" `Quick test_redundant_dedup_dropped;
          Alcotest.test_case "fixpoint" `Quick test_strategy_fixpoint;
          Alcotest.test_case "semantics preserved" `Quick test_strategies_preserve_semantics;
        ] );
      ( "parser",
        [
          Alcotest.test_case "round-trip semantics" `Quick test_parser_roundtrip_semantics;
          Alcotest.test_case "all steps parse" `Quick test_parser_steps;
          Alcotest.test_case "errors rejected" `Quick test_parser_errors;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "errors" `Quick test_compile_errors;
          Alcotest.test_case "unknown labels" `Quick test_compile_unknown_labels_match_nothing;
          Alcotest.test_case "select moves back" `Quick test_select_moves_back;
        ] );
      ( "planner",
        [
          Alcotest.test_case "reverse traversal" `Quick test_reverse_traversal;
          Alcotest.test_case "rejects stateful" `Quick test_reverse_rejects_stateful;
          Alcotest.test_case "plans equivalent" `Quick test_join_plans_equivalent;
          Alcotest.test_case "label stats" `Quick test_label_stats;
          qcheck join_vs_flatten;
        ] );
    ]
