(* Unit and property tests for pstm_util. *)

let qcheck = QCheck_alcotest.to_alcotest

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Prng.next_int64 a <> Prng.next_int64 b)

let test_prng_split_independent () =
  let parent = Prng.create 7 in
  let child = Prng.split parent in
  Alcotest.(check bool) "child differs from parent" true
    (Prng.next_int64 child <> Prng.next_int64 parent)

let prng_int_in_bounds =
  QCheck.Test.make ~name:"prng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let prng = Prng.create seed in
      let x = Prng.int prng bound in
      x >= 0 && x < bound)

let prng_range_in_bounds =
  QCheck.Test.make ~name:"prng int_in_range inclusive" ~count:500
    QCheck.(triple small_int (int_range (-100) 100) (int_range 0 100))
    (fun (seed, lo, extent) ->
      let prng = Prng.create seed in
      let hi = lo + extent in
      let x = Prng.int_in_range prng ~lo ~hi in
      x >= lo && x <= hi)

let test_prng_shuffle_is_permutation () =
  let prng = Prng.create 3 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle_in_place prng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_prng_float_range () =
  let prng = Prng.create 9 in
  for _ = 1 to 1000 do
    let f = Prng.float prng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (f >= 0.0 && f < 2.5)
  done

let test_prng_exponential_positive () =
  let prng = Prng.create 4 in
  let total = ref 0.0 in
  for _ = 1 to 1000 do
    let x = Prng.exponential prng ~mean:5.0 in
    Alcotest.(check bool) "non-negative" true (x >= 0.0);
    total := !total +. x
  done;
  let mean = !total /. 1000.0 in
  Alcotest.(check bool) "mean near 5" true (mean > 4.0 && mean < 6.0)

(* --- Vec --- *)

let vec_model =
  QCheck.Test.make ~name:"vec push/to_list matches list model" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let v = Vec.create ~dummy:0 in
      List.iter (Vec.push v) xs;
      Vec.to_list v = xs && Vec.length v = List.length xs)

let test_vec_pop_lifo () =
  let v = Vec.create ~dummy:0 in
  List.iter (Vec.push v) [ 1; 2; 3 ];
  Alcotest.(check int) "pop 3" 3 (Vec.pop v);
  Alcotest.(check int) "pop 2" 2 (Vec.pop v);
  Vec.push v 9;
  Alcotest.(check int) "pop 9" 9 (Vec.pop v);
  Alcotest.(check int) "pop 1" 1 (Vec.pop v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Vec.pop v))

let test_vec_swap_remove () =
  let v = Vec.of_array ~dummy:0 [| 10; 20; 30; 40 |] in
  Alcotest.(check int) "removes index 1" 20 (Vec.swap_remove v 1);
  Alcotest.(check (list int)) "last moved into hole" [ 10; 40; 30 ] (Vec.to_list v)

let test_vec_append_clear () =
  let a = Vec.of_array ~dummy:0 [| 1; 2 |] in
  let b = Vec.of_array ~dummy:0 [| 3; 4; 5 |] in
  Vec.append ~into:a b;
  Alcotest.(check (list int)) "appended" [ 1; 2; 3; 4; 5 ] (Vec.to_list a);
  Vec.clear a;
  Alcotest.(check int) "cleared" 0 (Vec.length a);
  Alcotest.(check (list int)) "b untouched" [ 3; 4; 5 ] (Vec.to_list b)

let vec_sort_model =
  QCheck.Test.make ~name:"vec sort matches list sort" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let v = Vec.of_array ~dummy:0 (Array.of_list xs) in
      Vec.sort compare v;
      Vec.to_list v = List.sort compare xs)

let test_vec_bounds () =
  let v = Vec.of_array ~dummy:0 [| 1 |] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: out of bounds") (fun () ->
      ignore (Vec.get v 1))

(* --- Heap --- *)

let heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let h = Heap.create ~cmp:compare ~dummy:0 in
      List.iter (Heap.push h) xs;
      let rec drain acc = match Heap.pop_opt h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort compare xs)

let test_heap_peek () =
  let h = Heap.create ~cmp:compare ~dummy:0 in
  Alcotest.(check (option int)) "empty peek" None (Heap.peek h);
  Heap.push h 5;
  Heap.push h 2;
  Heap.push h 8;
  Alcotest.(check (option int)) "min on top" (Some 2) (Heap.peek h);
  Alcotest.(check int) "length" 3 (Heap.length h)

let test_heap_to_sorted_preserves () =
  let h = Heap.create ~cmp:compare ~dummy:0 in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "sorted view" [ 1; 2; 3 ] (Heap.to_sorted_list h);
  Alcotest.(check int) "heap intact" 3 (Heap.length h)

(* --- Topk --- *)

let topk_matches_sort =
  QCheck.Test.make ~name:"topk equals sort-take-k" ~count:300
    QCheck.(pair (int_range 0 10) (list small_int))
    (fun (k, xs) ->
      let t = Topk.create ~k ~cmp:compare ~dummy:0 in
      List.iter (Topk.add t) xs;
      let expected =
        List.filteri (fun i _ -> i < k) (List.sort (fun a b -> compare b a) xs)
      in
      Topk.to_sorted_list t = expected)

let test_topk_merge () =
  let a = Topk.create ~k:3 ~cmp:compare ~dummy:0 in
  let b = Topk.create ~k:3 ~cmp:compare ~dummy:0 in
  List.iter (Topk.add a) [ 1; 5; 3 ];
  List.iter (Topk.add b) [ 9; 2; 7 ];
  Topk.merge ~into:a b;
  Alcotest.(check (list int)) "merged top 3" [ 9; 7; 5 ] (Topk.to_sorted_list a)

(* --- Stats --- *)

let test_stats_percentiles () =
  let samples = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.001)) "p50" 50.0 (Stats.percentile samples 50.0);
  Alcotest.(check (float 0.001)) "p99" 99.0 (Stats.percentile samples 99.0);
  Alcotest.(check (float 0.001)) "p100" 100.0 (Stats.percentile samples 100.0);
  Alcotest.(check (float 0.001)) "mean" 50.5 (Stats.mean samples)

let test_stats_empty () =
  let s = Stats.summarize [||] in
  Alcotest.(check int) "count" 0 s.Stats.count;
  Alcotest.(check (float 0.0)) "mean" 0.0 s.Stats.mean

let test_stats_geomean () =
  Alcotest.(check (float 0.001)) "geomean" 2.0 (Stats.geomean [| 1.0; 4.0 |])

(* --- Histogram --- *)

let test_histogram_percentile_accuracy () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i /. 1000.0)
  done;
  let p50 = Histogram.percentile h 50.0 in
  Alcotest.(check bool) "p50 near 0.5" true (p50 > 0.38 && p50 < 0.65);
  Alcotest.(check int) "count" 1000 (Histogram.count h)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 1.0;
  Histogram.add b 2.0;
  Histogram.merge ~into:a b;
  Alcotest.(check int) "merged count" 2 (Histogram.count a);
  Alcotest.(check (float 0.001)) "merged mean" 1.5 (Histogram.mean a)

(* --- Bitset --- *)

let bitset_model =
  QCheck.Test.make ~name:"bitset matches set model" ~count:200
    QCheck.(list (int_range 0 199))
    (fun xs ->
      let bs = Bitset.create 200 in
      List.iter (Bitset.add bs) xs;
      let module S = Set.Make (Int) in
      let model = S.of_list xs in
      S.for_all (Bitset.mem bs) model
      && Bitset.count bs = S.cardinal model
      && List.for_all
           (fun i -> Bitset.mem bs i = S.mem i model)
           (List.init 200 Fun.id))

let test_bitset_add_if_absent () =
  let bs = Bitset.create 10 in
  Alcotest.(check bool) "first add" true (Bitset.add_if_absent bs 3);
  Alcotest.(check bool) "second add" false (Bitset.add_if_absent bs 3);
  Bitset.remove bs 3;
  Alcotest.(check bool) "after remove" true (Bitset.add_if_absent bs 3)

let test_bitset_bounds () =
  let bs = Bitset.create 8 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of bounds") (fun () ->
      Bitset.add bs 8)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_is_permutation;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "exponential" `Quick test_prng_exponential_positive;
          qcheck prng_int_in_bounds;
          qcheck prng_range_in_bounds;
        ] );
      ( "vec",
        [
          Alcotest.test_case "pop lifo" `Quick test_vec_pop_lifo;
          Alcotest.test_case "swap_remove" `Quick test_vec_swap_remove;
          Alcotest.test_case "append/clear" `Quick test_vec_append_clear;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          qcheck vec_model;
          qcheck vec_sort_model;
        ] );
      ( "heap",
        [
          Alcotest.test_case "peek/min" `Quick test_heap_peek;
          Alcotest.test_case "to_sorted preserves" `Quick test_heap_to_sorted_preserves;
          qcheck heap_sorts;
        ] );
      ( "topk",
        [ Alcotest.test_case "merge" `Quick test_topk_merge; qcheck topk_matches_sort ] );
      ( "stats",
        [
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "percentile accuracy" `Quick test_histogram_percentile_accuracy;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "add_if_absent" `Quick test_bitset_add_if_absent;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          qcheck bitset_model;
        ] );
    ]
