(* Tests for the transactional substrate: TEL visibility, MV2PL locking,
   the timestamp manager's LCT, rollback and crash recovery. *)

open Pstm_txn

let qcheck = QCheck_alcotest.to_alcotest

(* --- Tel --- *)

let test_tel_visibility () =
  let tel = Tel.create ~n_vertices:3 () in
  Tel.insert_edge tel ~src:0 ~label:1 ~dst:1 ~ts:10;
  Tel.insert_edge tel ~src:0 ~label:1 ~dst:2 ~ts:20;
  Alcotest.(check int) "before creation" 0 (Tel.degree tel ~src:0 ~ts:5);
  Alcotest.(check int) "after first" 1 (Tel.degree tel ~src:0 ~ts:10);
  Alcotest.(check int) "after both" 2 (Tel.degree tel ~src:0 ~ts:25);
  Alcotest.(check bool) "delete succeeds" true (Tel.delete_edge tel ~src:0 ~label:1 ~dst:1 ~ts:30);
  Alcotest.(check int) "old snapshot unaffected" 2 (Tel.degree tel ~src:0 ~ts:25);
  Alcotest.(check int) "new snapshot sees delete" 1 (Tel.degree tel ~src:0 ~ts:31);
  Alcotest.(check bool) "double delete fails" false
    (Tel.delete_edge tel ~src:0 ~label:1 ~dst:1 ~ts:40)

let test_tel_multiversion_same_edge () =
  let tel = Tel.create ~n_vertices:2 () in
  Tel.insert_edge tel ~src:0 ~label:0 ~dst:1 ~ts:1;
  ignore (Tel.delete_edge tel ~src:0 ~label:0 ~dst:1 ~ts:5);
  Tel.insert_edge tel ~src:0 ~label:0 ~dst:1 ~ts:9;
  Alcotest.(check bool) "first life" true (Tel.edge_exists tel ~src:0 ~label:0 ~dst:1 ~ts:3);
  Alcotest.(check bool) "gap" false (Tel.edge_exists tel ~src:0 ~label:0 ~dst:1 ~ts:7);
  Alcotest.(check bool) "second life" true (Tel.edge_exists tel ~src:0 ~label:0 ~dst:1 ~ts:9);
  Alcotest.(check int) "both versions in log" 2 (Tel.log_length tel ~src:0)

let test_tel_compact () =
  let tel = Tel.create ~n_vertices:2 () in
  Tel.insert_edge tel ~src:0 ~label:0 ~dst:1 ~ts:1;
  ignore (Tel.delete_edge tel ~src:0 ~label:0 ~dst:1 ~ts:5);
  Tel.insert_edge tel ~src:0 ~label:0 ~dst:1 ~ts:9;
  Alcotest.(check int) "one reclaimed" 1 (Tel.compact tel ~watermark:6);
  Alcotest.(check int) "log shrank" 1 (Tel.log_length tel ~src:0);
  Alcotest.(check bool) "live version survives" true
    (Tel.edge_exists tel ~src:0 ~label:0 ~dst:1 ~ts:10)

let test_tel_recovery () =
  let tel = Tel.create ~n_vertices:3 () in
  Tel.insert_edge tel ~src:0 ~label:0 ~dst:1 ~ts:5 (* committed *);
  Tel.insert_edge tel ~src:0 ~label:0 ~dst:2 ~ts:15 (* uncommitted *);
  ignore (Tel.delete_edge tel ~src:0 ~label:0 ~dst:1 ~ts:12) (* uncommitted delete *);
  let removed = Tel.truncate_after tel ~lct:10 in
  Alcotest.(check int) "uncommitted insert removed" 1 removed;
  Alcotest.(check bool) "committed edge resurrected" true
    (Tel.edge_exists tel ~src:0 ~label:0 ~dst:1 ~ts:20);
  Alcotest.(check bool) "uncommitted edge gone" false
    (Tel.edge_exists tel ~src:0 ~label:0 ~dst:2 ~ts:20)

let test_tel_rollback () =
  let tel = Tel.create ~n_vertices:2 () in
  Tel.insert_edge tel ~src:0 ~label:0 ~dst:1 ~ts:3;
  Alcotest.(check bool) "rollback insert" true (Tel.rollback_insert tel ~src:0 ~label:0 ~dst:1 ~ts:3);
  Alcotest.(check int) "log empty" 0 (Tel.log_length tel ~src:0);
  Tel.insert_edge tel ~src:0 ~label:0 ~dst:1 ~ts:4;
  ignore (Tel.delete_edge tel ~src:0 ~label:0 ~dst:1 ~ts:8);
  Alcotest.(check bool) "rollback delete" true (Tel.rollback_delete tel ~src:0 ~label:0 ~dst:1 ~ts:8);
  Alcotest.(check bool) "edge live again" true (Tel.edge_exists tel ~src:0 ~label:0 ~dst:1 ~ts:9)

(* Random histories: TEL agrees with a multigraph model (duplicate edges
   are distinct instances; a delete tombstones one of them). *)
let tel_matches_model =
  QCheck.Test.make ~name:"tel visibility matches a model" ~count:100
    QCheck.(list (pair (int_range 0 3) bool))
    (fun ops ->
      let tel = Tel.create ~n_vertices:4 () in
      let model = Hashtbl.create 16 in
      (* model: dst -> number of live edge instances. *)
      let live dst = Option.value ~default:0 (Hashtbl.find_opt model dst) in
      let ok = ref true in
      List.iteri
        (fun i (dst, insert) ->
          let ts = i + 1 in
          if insert then begin
            Tel.insert_edge tel ~src:0 ~label:0 ~dst ~ts;
            Hashtbl.replace model dst (live dst + 1)
          end
          else begin
            let was_live = live dst > 0 in
            let deleted = Tel.delete_edge tel ~src:0 ~label:0 ~dst ~ts in
            if deleted <> was_live then ok := false;
            if was_live then Hashtbl.replace model dst (live dst - 1)
          end;
          (* Compare visible set and degree at ts against the model. *)
          let total = ref 0 in
          for d = 0 to 3 do
            total := !total + live d;
            if Tel.edge_exists tel ~src:0 ~label:0 ~dst:d ~ts <> (live d > 0) then ok := false
          done;
          if Tel.degree tel ~src:0 ~ts <> !total then ok := false)
        ops;
      !ok)

(* --- Lock table --- *)

let test_lock_compatibility () =
  let locks = Lock_table.create () in
  Alcotest.(check bool) "s grant" true (Lock_table.acquire locks ~txn:1 ~vertex:0 Lock_table.Shared = Lock_table.Granted);
  Alcotest.(check bool) "s+s grant" true (Lock_table.acquire locks ~txn:2 ~vertex:0 Lock_table.Shared = Lock_table.Granted);
  Alcotest.(check bool) "s+x conflict" true (Lock_table.acquire locks ~txn:3 ~vertex:0 Lock_table.Exclusive = Lock_table.Conflict);
  Alcotest.(check bool) "x elsewhere" true (Lock_table.acquire locks ~txn:3 ~vertex:1 Lock_table.Exclusive = Lock_table.Granted);
  Alcotest.(check bool) "x+s conflict" true (Lock_table.acquire locks ~txn:1 ~vertex:1 Lock_table.Shared = Lock_table.Conflict);
  Alcotest.(check int) "conflicts counted" 2 (Lock_table.conflicts locks)

let test_lock_reentrancy_and_upgrade () =
  let locks = Lock_table.create () in
  ignore (Lock_table.acquire locks ~txn:1 ~vertex:0 Lock_table.Shared);
  Alcotest.(check bool) "reentrant" true (Lock_table.acquire locks ~txn:1 ~vertex:0 Lock_table.Shared = Lock_table.Granted);
  Alcotest.(check bool) "self upgrade" true (Lock_table.acquire locks ~txn:1 ~vertex:0 Lock_table.Exclusive = Lock_table.Granted);
  Alcotest.(check (option bool)) "holds exclusive" (Some true)
    (Option.map (fun m -> m = Lock_table.Exclusive) (Lock_table.holds locks ~txn:1 ~vertex:0));
  (* Upgrade blocked by another sharer. *)
  ignore (Lock_table.acquire locks ~txn:2 ~vertex:1 Lock_table.Shared);
  ignore (Lock_table.acquire locks ~txn:3 ~vertex:1 Lock_table.Shared);
  Alcotest.(check bool) "upgrade blocked" true
    (Lock_table.acquire locks ~txn:2 ~vertex:1 Lock_table.Exclusive = Lock_table.Conflict)

let test_lock_release () =
  let locks = Lock_table.create () in
  ignore (Lock_table.acquire locks ~txn:1 ~vertex:0 Lock_table.Exclusive);
  ignore (Lock_table.acquire locks ~txn:1 ~vertex:1 Lock_table.Exclusive);
  Lock_table.release_all locks ~txn:1;
  Alcotest.(check bool) "freed 0" true (Lock_table.acquire locks ~txn:2 ~vertex:0 Lock_table.Exclusive = Lock_table.Granted);
  Alcotest.(check bool) "freed 1" true (Lock_table.acquire locks ~txn:2 ~vertex:1 Lock_table.Exclusive = Lock_table.Granted)

(* --- Txn manager --- *)

let test_manager_lct () =
  let m = Txn_manager.create ~n_nodes:2 in
  let t1 = Txn_manager.begin_update m in
  let t2 = Txn_manager.begin_update m in
  let t3 = Txn_manager.begin_update m in
  Alcotest.(check int) "initial lct" 0 (Txn_manager.lct m);
  Txn_manager.commit m ~ts:t2;
  Alcotest.(check int) "gap holds lct" 0 (Txn_manager.lct m);
  Txn_manager.commit m ~ts:t1;
  Alcotest.(check int) "lct jumps over both" t2 (Txn_manager.lct m);
  Txn_manager.abort m ~ts:t3;
  Alcotest.(check int) "abort advances" t3 (Txn_manager.lct m);
  Alcotest.(check int) "broadcast to nodes" t3 (Txn_manager.read_timestamp m ~node:1);
  Alcotest.(check int) "stats" 3 (Txn_manager.started m)

(* --- Txn_graph --- *)

let test_txn_commit_visibility () =
  let store = Txn_graph.create ~n_nodes:1 () in
  let t = Txn_graph.begin_update store in
  let a = Txn_graph.add_vertex t ~label:"Account" ~props:[ ("id", Value.Int 0) ] () in
  let b = Txn_graph.add_vertex t ~label:"Account" () in
  Txn_graph.insert_edge t ~src:a ~label:"pays" ~dst:b;
  (* Before commit, a fresh snapshot does not see the edge. *)
  let before = Txn_graph.snapshot store ~node:0 in
  Alcotest.(check int) "invisible before commit" 0 (Txn_graph.degree before ~src:a);
  Txn_graph.commit t;
  let after = Txn_graph.snapshot store ~node:0 in
  Alcotest.(check int) "visible after commit" 1 (Txn_graph.degree after ~src:a);
  Alcotest.(check bool) "edge_exists" true (Txn_graph.edge_exists after ~src:a ~label:"pays" ~dst:b);
  (* The pre-commit snapshot is immutable. *)
  Alcotest.(check int) "old snapshot stable" 0 (Txn_graph.degree before ~src:a);
  Alcotest.(check bool) "props visible" true
    (Value.equal (Value.Int 0) (Txn_graph.vertex_prop after ~vertex:a ~key:"id"))

let test_txn_abort_rolls_back () =
  let store = Txn_graph.create ~n_nodes:1 () in
  let t0 = Txn_graph.begin_update store in
  let a = Txn_graph.add_vertex t0 ~label:"A" () in
  let b = Txn_graph.add_vertex t0 ~label:"A" () in
  Txn_graph.insert_edge t0 ~src:a ~label:"e" ~dst:b;
  Txn_graph.commit t0;
  let t1 = Txn_graph.begin_update store in
  Txn_graph.insert_edge t1 ~src:a ~label:"e" ~dst:b;
  ignore (Txn_graph.delete_edge t1 ~src:a ~label:"e" ~dst:b);
  Txn_graph.abort t1;
  let snap = Txn_graph.snapshot store ~node:0 in
  Alcotest.(check int) "exactly the committed edge" 1 (Txn_graph.degree snap ~src:a)

let test_txn_conflict_aborts () =
  let store = Txn_graph.create ~n_nodes:1 () in
  let t0 = Txn_graph.begin_update store in
  let a = Txn_graph.add_vertex t0 ~label:"A" () in
  let b = Txn_graph.add_vertex t0 ~label:"A" () in
  Txn_graph.commit t0;
  let t1 = Txn_graph.begin_update store in
  Txn_graph.insert_edge t1 ~src:a ~label:"e" ~dst:b;
  let t2 = Txn_graph.begin_update store in
  Alcotest.(check bool) "no-wait abort" true
    (match Txn_graph.insert_edge t2 ~src:a ~label:"e" ~dst:b with
    | () -> false
    | exception Txn_graph.Aborted _ -> true);
  (* The winner proceeds. *)
  Txn_graph.commit t1;
  let snap = Txn_graph.snapshot store ~node:0 in
  Alcotest.(check int) "winner's edge committed" 1 (Txn_graph.degree snap ~src:a);
  Alcotest.(check int) "abort recorded" 1 (Txn_manager.aborted (Txn_graph.manager store))

let test_txn_crash_recovery () =
  let store = Txn_graph.create ~n_nodes:1 () in
  let t0 = Txn_graph.begin_update store in
  let a = Txn_graph.add_vertex t0 ~label:"A" () in
  let b = Txn_graph.add_vertex t0 ~label:"A" () in
  Txn_graph.insert_edge t0 ~src:a ~label:"e" ~dst:b;
  Txn_graph.commit t0;
  (* A transaction that never commits before the "crash". *)
  let t1 = Txn_graph.begin_update store in
  Txn_graph.insert_edge t1 ~src:b ~label:"e" ~dst:a;
  let removed = Txn_graph.crash_recover store in
  Alcotest.(check int) "uncommitted versions dropped" 1 removed;
  let snap = Txn_graph.snapshot store ~node:0 in
  Alcotest.(check int) "committed survives" 1 (Txn_graph.degree snap ~src:a);
  Alcotest.(check int) "uncommitted gone" 0 (Txn_graph.degree snap ~src:b)

(* --- LDBC updates over the store --- *)

let test_updates_apply () =
  let data = Pstm_ldbc.Snb_gen.load Pstm_ldbc.Snb_gen.snb_tiny in
  let store = Pstm_ldbc.Updates.store_of_data data ~n_nodes:2 in
  let prng = Prng.create 12 in
  let committed = ref 0 in
  for _ = 1 to 50 do
    List.iter
      (fun kind ->
        match Pstm_ldbc.Updates.apply store prng kind with
        | Pstm_ldbc.Updates.Committed -> incr committed
        | Pstm_ldbc.Updates.Aborted -> ())
      Pstm_ldbc.Updates.all_kinds
  done;
  Alcotest.(check bool) "most updates commit" true (!committed > 300);
  Alcotest.(check int) "manager agrees" !committed
    (Txn_manager.committed (Txn_graph.manager store) - 1 (* minus the seeding txn *));
  (* Latency model gives positive costs for every kind. *)
  List.iter
    (fun kind ->
      let l =
        Pstm_ldbc.Updates.simulated_latency Pstm_sim.Netmodel.default Pstm_sim.Cluster.default_costs
          kind
      in
      Alcotest.(check bool) (Pstm_ldbc.Updates.kind_name kind) true (l > 0))
    Pstm_ldbc.Updates.all_kinds

let () =
  Alcotest.run "txn"
    [
      ( "tel",
        [
          Alcotest.test_case "visibility" `Quick test_tel_visibility;
          Alcotest.test_case "multiversion" `Quick test_tel_multiversion_same_edge;
          Alcotest.test_case "compact" `Quick test_tel_compact;
          Alcotest.test_case "recovery" `Quick test_tel_recovery;
          Alcotest.test_case "rollback" `Quick test_tel_rollback;
          qcheck tel_matches_model;
        ] );
      ( "locks",
        [
          Alcotest.test_case "compatibility" `Quick test_lock_compatibility;
          Alcotest.test_case "reentrancy/upgrade" `Quick test_lock_reentrancy_and_upgrade;
          Alcotest.test_case "release" `Quick test_lock_release;
        ] );
      ("manager", [ Alcotest.test_case "lct" `Quick test_manager_lct ]);
      ( "txn_graph",
        [
          Alcotest.test_case "commit visibility" `Quick test_txn_commit_visibility;
          Alcotest.test_case "abort rolls back" `Quick test_txn_abort_rolls_back;
          Alcotest.test_case "conflict aborts" `Quick test_txn_conflict_aborts;
          Alcotest.test_case "crash recovery" `Quick test_txn_crash_recovery;
        ] );
      ("updates", [ Alcotest.test_case "ldbc updates" `Quick test_updates_apply ]);
    ]
