(* Unit and property tests for pstm_core: weights, memoranda, traversers,
   aggregates, program validation and progress tracking. *)

let qcheck = QCheck_alcotest.to_alcotest

(* --- Weight --- *)

let weight_split_conserves =
  QCheck.Test.make ~name:"split shares sum to the parent" ~count:300
    QCheck.(pair small_int (int_range 1 20))
    (fun (seed, n) ->
      let prng = Prng.create seed in
      let w = Weight.random prng in
      let shares = Weight.split prng w ~n in
      Array.length shares = n
      && Weight.equal w (Array.fold_left Weight.add Weight.zero shares))

let weight_split2_conserves =
  QCheck.Test.make ~name:"split2 conserves" ~count:300 QCheck.small_int (fun seed ->
      let prng = Prng.create seed in
      let w = Weight.random prng in
      let a, b = Weight.split2 prng w in
      Weight.equal w (Weight.add a b))

(* Simulate a random spawn tree and check the §III-B invariant: active
   weights plus finished weights always sum to the root. *)
let weight_tree_invariant =
  QCheck.Test.make ~name:"spawn-tree invariant (Theorem 1 setting)" ~count:100 QCheck.small_int
    (fun seed ->
      let prng = Prng.create seed in
      let active = Queue.create () in
      Queue.add Weight.root active;
      let finished = ref Weight.zero in
      let steps = ref 0 in
      let ok = ref true in
      while (not (Queue.is_empty active)) && !steps < 500 do
        incr steps;
        let w = Queue.pop active in
        let n_children = Prng.int prng 4 in
        if n_children = 0 || !steps > 400 then finished := Weight.add !finished w
        else Array.iter (fun share -> Queue.add share active) (Weight.split prng w ~n:n_children);
        (* Invariant check at every step. *)
        let total = Queue.fold Weight.add !finished active in
        if not (Weight.equal total Weight.root) then ok := false
      done;
      (* Drain any remainder and verify exact completion. *)
      Queue.iter (fun w -> finished := Weight.add !finished w) active;
      !ok && Weight.equal !finished Weight.root)

let test_weight_basics () =
  Alcotest.(check bool) "zero is zero" true (Weight.is_zero Weight.zero);
  Alcotest.(check bool) "root nonzero" false (Weight.is_zero Weight.root);
  Alcotest.(check bool) "sub inverts add" true
    (let prng = Prng.create 5 in
     let a = Weight.random prng and b = Weight.random prng in
     Weight.equal a (Weight.sub (Weight.add a b) b))

(* --- Progress --- *)

let test_tracker_completes_exactly_once () =
  let prng = Prng.create 8 in
  let shares = Weight.split prng Weight.root ~n:5 in
  let t = Progress.tracker ~target:Weight.root in
  let completions = ref 0 in
  Array.iteri
    (fun i w ->
      match Progress.receive t w with
      | Progress.Complete ->
        incr completions;
        Alcotest.(check int) "only on last receipt" 4 i
      | Progress.Pending -> ())
    shares;
  Alcotest.(check int) "exactly one completion" 1 !completions;
  Alcotest.(check bool) "is_complete" true (Progress.is_complete t);
  Alcotest.(check int) "receipts counted" 5 (Progress.receipts t)

let test_coalescer_merges () =
  let c = Progress.coalescer () in
  let prng = Prng.create 9 in
  let w1 = Weight.random prng and w2 = Weight.random prng and w3 = Weight.random prng in
  Progress.coalesce c ~qid:1 ~phase:0 w1;
  Progress.coalesce c ~qid:1 ~phase:0 w2;
  Progress.coalesce c ~qid:2 ~phase:1 w3;
  Alcotest.(check int) "pending additions" 3 (Progress.pending_additions c);
  (match Progress.drain c with
  | [ (1, 0, merged); (2, 1, w3') ] ->
    Alcotest.(check bool) "merged weight" true (Weight.equal merged (Weight.add w1 w2));
    Alcotest.(check bool) "other query kept apart" true (Weight.equal w3 w3')
  | other -> Alcotest.fail (Fmt.str "unexpected drain of %d entries" (List.length other)));
  Alcotest.(check bool) "empty after drain" true (Progress.is_empty c);
  Alcotest.(check int) "pending reset" 0 (Progress.pending_additions c)

(* --- Traverser --- *)

let test_traverser_copy_on_write () =
  let t = Traverser.make ~vertex:3 ~step:0 ~weight:Weight.root ~n_registers:2 in
  let t' = Traverser.set_reg t 0 (Value.Int 42) in
  Alcotest.(check bool) "parent unchanged" true (Value.is_null t.Traverser.regs.(0));
  Alcotest.(check bool) "child updated" true
    (Value.equal (Value.Int 42) t'.Traverser.regs.(0));
  let t'' = Traverser.set_regs t' [ (0, Value.Int 1); (1, Value.Int 2) ] in
  Alcotest.(check bool) "multi write" true (Value.equal (Value.Int 2) t''.Traverser.regs.(1));
  Alcotest.(check bool) "bytes grow with payload" true (Traverser.bytes t'' >= Traverser.bytes t)

(* --- Memo --- *)

let test_memo_dedup () =
  let m = Memo.create () in
  Alcotest.(check bool) "first" true (Memo.add_if_absent m ~qid:1 ~label:0 (Value.Int 5));
  Alcotest.(check bool) "duplicate" false (Memo.add_if_absent m ~qid:1 ~label:0 (Value.Int 5));
  Alcotest.(check bool) "other label" true (Memo.add_if_absent m ~qid:1 ~label:1 (Value.Int 5));
  Alcotest.(check bool) "other query" true (Memo.add_if_absent m ~qid:2 ~label:0 (Value.Int 5));
  Memo.clear_query m 1;
  Alcotest.(check bool) "cleared" true (Memo.add_if_absent m ~qid:1 ~label:0 (Value.Int 5));
  Alcotest.(check bool) "query 2 survives" false (Memo.add_if_absent m ~qid:2 ~label:0 (Value.Int 5))

let test_memo_min_dist () =
  let m = Memo.create () in
  let v = Value.Vertex 7 in
  Alcotest.(check bool) "first visit" true (Memo.min_int_update m ~qid:0 ~label:2 v 5 = Memo.First_visit);
  Alcotest.(check bool) "improvement" true (Memo.min_int_update m ~qid:0 ~label:2 v 3 = Memo.Improved);
  Alcotest.(check bool) "equal not improved" true
    (Memo.min_int_update m ~qid:0 ~label:2 v 3 = Memo.Not_improved);
  Alcotest.(check bool) "worse not improved" true
    (Memo.min_int_update m ~qid:0 ~label:2 v 9 = Memo.Not_improved)

let test_memo_rows () =
  let m = Memo.create () in
  Memo.rows_add m ~qid:0 ~label:3 (Value.Int 1) [| Value.Str "a" |];
  Memo.rows_add m ~qid:0 ~label:3 (Value.Int 1) [| Value.Str "b" |];
  Alcotest.(check int) "two rows" 2 (List.length (Memo.rows_get m ~qid:0 ~label:3 (Value.Int 1)));
  Alcotest.(check int) "other key empty" 0
    (List.length (Memo.rows_get m ~qid:0 ~label:3 (Value.Int 2)))

let test_memo_accounting () =
  let m = Memo.create () in
  ignore (Memo.add_if_absent m ~qid:0 ~label:0 (Value.Int 1));
  ignore (Memo.add_if_absent m ~qid:0 ~label:0 (Value.Int 2));
  ignore (Memo.add_if_absent m ~qid:0 ~label:0 (Value.Int 2));
  Alcotest.(check int) "ops counted" 3 (Memo.ops m);
  Alcotest.(check int) "live entries" 2 (Memo.live_entries m);
  Alcotest.(check int) "peak" 2 (Memo.peak_entries m);
  Memo.clear_query m 0;
  Alcotest.(check int) "live after clear" 0 (Memo.live_entries m);
  Alcotest.(check int) "peak sticky" 2 (Memo.peak_entries m)

(* --- Aggregate --- *)

let dummy_graph =
  lazy (Builder.build (Builder.of_edges ~n_vertices:1 [||]))

let accumulate_ints agg values =
  let g = Lazy.force dummy_graph in
  let state = Aggregate.create agg in
  List.iter
    (fun v ->
      let regs = [| Value.Int v |] in
      Aggregate.accumulate agg state g ~vertex:0 ~regs)
    values;
  Aggregate.finalize state

let agg_count_matches =
  QCheck.Test.make ~name:"count aggregate" ~count:200
    QCheck.(list small_int)
    (fun xs -> accumulate_ints Step.Count xs = Value.Int (List.length xs))

let agg_sum_matches =
  QCheck.Test.make ~name:"sum aggregate" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      accumulate_ints (Step.Sum (Step.Reg 0)) xs = Value.Int (List.fold_left ( + ) 0 xs))

let agg_max_matches =
  QCheck.Test.make ~name:"max aggregate" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let result = accumulate_ints (Step.Max (Step.Reg 0)) xs in
      match xs with
      | [] -> Value.is_null result
      | _ -> result = Value.Int (List.fold_left max min_int xs))

let agg_merge_equals_concat =
  QCheck.Test.make ~name:"merge(a,b) = accumulate(a @ b)" ~count:200
    QCheck.(pair (list small_int) (list small_int))
    (fun (xs, ys) ->
      let g = Lazy.force dummy_graph in
      let agg = Step.Sum (Step.Reg 0) in
      let left = Aggregate.create agg and right = Aggregate.create agg in
      List.iter (fun v -> Aggregate.accumulate agg left g ~vertex:0 ~regs:[| Value.Int v |]) xs;
      List.iter (fun v -> Aggregate.accumulate agg right g ~vertex:0 ~regs:[| Value.Int v |]) ys;
      Aggregate.merge ~into:left right;
      Aggregate.finalize left = accumulate_ints agg (xs @ ys))

let test_agg_topk_ties_by_output () =
  let g = Lazy.force dummy_graph in
  let agg = Step.Topk { k = 2; score = Step.Reg 0; output = Step.Reg 1 } in
  let state = Aggregate.create agg in
  let feed score output =
    Aggregate.accumulate agg state g ~vertex:0 ~regs:[| Value.Int score; Value.Vertex output |]
  in
  feed 10 3;
  feed 10 1;
  feed 10 2;
  feed 5 9;
  match Aggregate.finalize state with
  | Value.List [ Value.Vertex a; Value.Vertex b ] ->
    (* Equal scores: smaller vertex id wins the tie; best first. *)
    Alcotest.(check (pair int int)) "tie break" (1, 2) (a, b)
  | other -> Alcotest.fail (Fmt.str "unexpected %a" Value.pp other)

let test_agg_group_count () =
  match accumulate_ints (Step.Group_count (Step.Reg 0)) [ 1; 2; 1; 1 ] with
  | Value.List [ Value.List [ Value.Int 1; Value.Int 3 ]; Value.List [ Value.Int 2; Value.Int 1 ] ]
    ->
    ()
  | other -> Alcotest.fail (Fmt.str "unexpected %a" Value.pp other)

let test_agg_collect_limit () =
  match accumulate_ints (Step.Collect { expr = Step.Reg 0; limit = Some 2 }) [ 5; 6; 7; 8 ] with
  | Value.List l -> Alcotest.(check int) "limited" 2 (List.length l)
  | other -> Alcotest.fail (Fmt.str "unexpected %a" Value.pp other)

(* --- Program validation --- *)

let filter_step next = { Step.op = Step.Filter Step.True; next }
let emit_step = { Step.op = Step.Emit [| Step.Vertex_id |]; next = -1 }
let source_step next = { Step.op = Step.Scan { vertex_label = None }; next }

let check_invalid name steps ~entries ~n_registers =
  Alcotest.test_case name `Quick (fun () ->
      match Program.make ~name ~steps ~n_registers ~entries with
      | _ -> Alcotest.fail "expected Program.Invalid"
      | exception Program.Invalid _ -> ())

let test_program_valid () =
  let p =
    Program.make ~name:"ok"
      ~steps:[| source_step 1; filter_step 2; emit_step |]
      ~n_registers:1 ~entries:[| 0 |]
  in
  Alcotest.(check int) "one phase" 1 (Program.n_phases p);
  Alcotest.(check int) "steps" 3 (Program.n_steps p)

let test_program_phases () =
  let p =
    Program.make ~name:"agg"
      ~steps:
        [|
          source_step 1;
          { Step.op = Step.Aggregate { agg = Step.Count; reg = 0 }; next = 2 };
          { Step.op = Step.Emit [| Step.Reg 0 |]; next = -1 };
        |]
      ~n_registers:1 ~entries:[| 0 |]
  in
  Alcotest.(check int) "two phases" 2 (Program.n_phases p);
  Alcotest.(check int) "source phase" 0 (Program.phase_of_step p 0);
  Alcotest.(check int) "emit phase" 1 (Program.phase_of_step p 2);
  Alcotest.(check (option int)) "agg of phase 0" (Some 1) (Program.agg_of_phase p 0);
  Alcotest.(check (option int)) "no agg in final phase" None (Program.agg_of_phase p 1)

let test_program_join_partner () =
  let join side cont =
    {
      Step.op =
        Step.Join
          { join_id = 0; side; key = Step.Vertex_id; store = [||]; load_regs = [||]; cont };
      next = -1;
    }
  in
  let p =
    Program.make ~name:"join"
      ~steps:[| source_step 1; join Step.Side_a 4; source_step 3; join Step.Side_b 4; emit_step |]
      ~n_registers:1 ~entries:[| 0; 2 |]
  in
  Alcotest.(check int) "partner of A" 3 (Program.join_partner p 1);
  Alcotest.(check int) "partner of B" 1 (Program.join_partner p 3)

let invalid_cases =
  [
    check_invalid "empty program" [||] ~entries:[| 0 |] ~n_registers:0;
    check_invalid "no entries" [| source_step 1; emit_step |] ~entries:[||] ~n_registers:0;
    check_invalid "entry not a source" [| filter_step 1; emit_step |] ~entries:[| 0 |] ~n_registers:0;
    check_invalid "unlisted source"
      [| source_step 1; { Step.op = Step.Scan { vertex_label = None }; next = 2 }; emit_step |]
      ~entries:[| 0 |] ~n_registers:0;
    check_invalid "next out of range" [| source_step 5 |] ~entries:[| 0 |] ~n_registers:0;
    check_invalid "emit with successor"
      [| source_step 1; { Step.op = Step.Emit [||]; next = 0 } |]
      ~entries:[| 0 |] ~n_registers:0;
    check_invalid "register out of range"
      [| source_step 1; { Step.op = Step.Set_reg { reg = 3; expr = Step.Vertex_id }; next = 2 }; emit_step |]
      ~entries:[| 0 |] ~n_registers:1;
    check_invalid "unreachable step"
      [| source_step 2; filter_step 2; emit_step |]
      ~entries:[| 0 |] ~n_registers:0;
    check_invalid "unpaired join"
      [|
        source_step 1;
        {
          Step.op =
            Step.Join
              {
                join_id = 0;
                side = Step.Side_a;
                key = Step.Vertex_id;
                store = [||];
                load_regs = [||];
                cont = 2;
              };
          next = -1;
        };
        emit_step;
      |]
      ~entries:[| 0 |] ~n_registers:0;
    check_invalid "visit cont out of range"
      [|
        source_step 1;
        { Step.op = Step.Set_reg { reg = 0; expr = Step.Const (Value.Int 0) }; next = 2 };
        { Step.op = Step.Visit { dist_reg = 0; max_hops = 2; cont = 9; emit_improved = false }; next = 3 };
        { Step.op = Step.Expand { dir = Graph.Out; edge_label = None }; next = 2 };
        emit_step;
      |]
      ~entries:[| 0 |] ~n_registers:1;
  ]

(* --- Step expression evaluation --- *)

let test_step_eval () =
  let b = Builder.create () in
  let v0 = Builder.add_vertex b ~label:"A" ~props:[ ("x", Value.Int 10) ] () in
  let v1 = Builder.add_vertex b ~label:"B" ~props:[ ("x", Value.Int 20) ] () in
  ignore (Builder.add_edge b ~src:v0 ~label:"e" ~dst:v1 ());
  let g = Builder.build b in
  let x = Schema.property_key_exn (Graph.schema g) "x" in
  let regs = [| Value.Vertex v1 |] in
  let eval e = Step.eval_expr g ~vertex:v0 ~regs e in
  Alcotest.(check bool) "vertex_id" true (Value.equal (Value.Vertex 0) (eval Step.Vertex_id));
  Alcotest.(check bool) "prop" true (Value.equal (Value.Int 10) (eval (Step.Prop x)));
  Alcotest.(check bool) "prop_of reg" true
    (Value.equal (Value.Int 20) (eval (Step.Prop_of { reg = 0; key = x })));
  Alcotest.(check bool) "add" true
    (Value.equal (Value.Int 11) (eval (Step.Add (Step.Prop x, Step.Const (Value.Int 1)))));
  Alcotest.(check bool) "label expr" true
    (Value.equal
       (Value.Int (Schema.vertex_label_exn (Graph.schema g) "A"))
       (eval Step.Vertex_label));
  let pred = Step.And (Step.Cmp (Step.Ge, Step.Prop x, Step.Const (Value.Int 10)), Step.Not (Step.Cmp (Step.Eq, Step.Vertex_id, Step.Reg 0))) in
  Alcotest.(check bool) "pred" true (Step.eval_pred g ~vertex:v0 ~regs pred)

let () =
  Alcotest.run "core"
    [
      ( "weight",
        [
          Alcotest.test_case "basics" `Quick test_weight_basics;
          qcheck weight_split_conserves;
          qcheck weight_split2_conserves;
          qcheck weight_tree_invariant;
        ] );
      ( "progress",
        [
          Alcotest.test_case "tracker completes once" `Quick test_tracker_completes_exactly_once;
          Alcotest.test_case "coalescer merges" `Quick test_coalescer_merges;
        ] );
      ("traverser", [ Alcotest.test_case "copy on write" `Quick test_traverser_copy_on_write ]);
      ( "memo",
        [
          Alcotest.test_case "dedup" `Quick test_memo_dedup;
          Alcotest.test_case "min dist" `Quick test_memo_min_dist;
          Alcotest.test_case "rows" `Quick test_memo_rows;
          Alcotest.test_case "accounting" `Quick test_memo_accounting;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "topk ties" `Quick test_agg_topk_ties_by_output;
          Alcotest.test_case "group count" `Quick test_agg_group_count;
          Alcotest.test_case "collect limit" `Quick test_agg_collect_limit;
          qcheck agg_count_matches;
          qcheck agg_sum_matches;
          qcheck agg_max_matches;
          qcheck agg_merge_equals_concat;
        ] );
      ( "program",
        [
          Alcotest.test_case "valid" `Quick test_program_valid;
          Alcotest.test_case "phases" `Quick test_program_phases;
          Alcotest.test_case "join partner" `Quick test_program_join_partner;
        ]
        @ invalid_cases );
      ("step", [ Alcotest.test_case "eval" `Quick test_step_eval ]);
    ]
