(* LDBC query correctness: every IC and IS query must produce the same
   result on the reference interpreter, the asynchronous engine and the
   BSP engine (row multisets; emission order is engine-specific). *)

open Pstm_engine
open Pstm_ldbc

let data = lazy (Snb_gen.load Snb_gen.snb_tiny)

let cluster_config = { Cluster.default_config with Cluster.n_nodes = 4; workers_per_node = 4 }

let show_rows rows =
  Fmt.str "%a" (Fmt.list ~sep:(Fmt.any "@.") (Fmt.array ~sep:(Fmt.any "|") Value.pp))
    (Engine.sorted_rows rows)

let check_query name make () =
  let data = Lazy.force data in
  let prng = Prng.create 77 in
  let program = make data prng in
  let expected = show_rows (Local_engine.run data.Snb_gen.graph program) in
  let async_report =
    Async_engine.run ~cluster_config ~channel_config:Channel.default_config
      ~graph:data.Snb_gen.graph
      [| Engine.submit program |]
  in
  Alcotest.(check bool) (name ^ " async completed") true (Engine.all_completed async_report);
  Alcotest.(check string)
    (name ^ " async rows")
    expected
    (show_rows async_report.Engine.queries.(0).Engine.rows);
  let bsp_report =
    Bsp_engine.run ~cluster_config ~graph:data.Snb_gen.graph [| Engine.submit program |]
  in
  Alcotest.(check string)
    (name ^ " bsp rows")
    expected
    (show_rows bsp_report.Engine.queries.(0).Engine.rows)

let query_cases =
  List.map
    (fun (name, make) -> Alcotest.test_case name `Quick (check_query name make))
    (Ic_queries.all @ Is_queries.all)

let test_dataset_shape () =
  let d = Lazy.force data in
  Alcotest.(check bool) "has persons" true (Array.length d.Snb_gen.persons = 200);
  Alcotest.(check bool) "has posts" true (Array.length d.Snb_gen.posts > 0);
  Alcotest.(check bool) "has comments" true (Array.length d.Snb_gen.comments > 0);
  Alcotest.(check bool) "has edges" true (Graph.n_edges d.Snb_gen.graph > 1000)

(* --- Driver --- *)

let test_schedule_shape () =
  let data = Lazy.force data in
  let duration = Sim_time.ms 40 in
  let subs = Driver.schedule data ~tcr:1.0 ~duration ~seed:5 in
  Alcotest.(check bool) "nonempty" true (Array.length subs > 0);
  (* Sorted by arrival, all within the window. *)
  let sorted = ref true and in_window = ref true in
  Array.iteri
    (fun i (s : Engine.submission) ->
      if i > 0 && Sim_time.compare subs.(i - 1).Engine.at s.Engine.at > 0 then sorted := false;
      if s.Engine.at < 0 || s.Engine.at >= Sim_time.to_ns duration then in_window := false)
    subs;
  Alcotest.(check bool) "sorted by arrival" true !sorted;
  Alcotest.(check bool) "inside the window" true !in_window;
  (* Short reads are issued more often than complex reads (LDBC mix). *)
  let count prefix =
    Array.fold_left
      (fun n (s : Engine.submission) ->
        if String.length (Program.name s.Engine.program) >= 2
           && String.sub (Program.name s.Engine.program) 0 2 = prefix
        then n + 1
        else n)
      0 subs
  in
  Alcotest.(check bool) "IS more frequent than IC" true (count "IS" > count "IC")

let test_schedule_deterministic () =
  let data = Lazy.force data in
  let once () =
    Array.map
      (fun (s : Engine.submission) -> (Program.name s.Engine.program, s.Engine.at))
      (Driver.schedule data ~tcr:1.0 ~duration:(Sim_time.ms 30) ~seed:9)
  in
  Alcotest.(check bool) "same seed, same schedule" true (once () = once ())

let test_mixed_run_small () =
  let data = Lazy.force data in
  let result =
    Driver.run_mixed_async ~cluster_config ~duration:(Sim_time.ms 30) ~tcr:2.0 ~seed:3 data
  in
  Alcotest.(check bool) "kept up at light load" true result.Driver.kept_up;
  Alcotest.(check int) "everything completed" result.Driver.issued result.Driver.completed;
  Alcotest.(check bool) "per-query stats exist" true (List.length result.Driver.per_query > 5);
  List.iter
    (fun (_, (s : Stats.summary)) ->
      Alcotest.(check bool) "latencies positive" true (s.Stats.mean >= 0.0))
    result.Driver.per_query

let test_throughput_helpers () =
  let data = Lazy.force data in
  let run subs =
    Pstm_engine.Async_engine.run ~cluster_config ~channel_config:Channel.default_config
      ~graph:data.Snb_gen.graph subs
  in
  let lat = Driver.sequential_latency ~run ~make:Ic_queries.ic2 ~repeats:2 ~seed:4 data in
  Alcotest.(check bool) "latency positive" true (lat > 0.0);
  let qps = Driver.max_throughput ~run ~make:Ic_queries.ic2 ~streams:4 ~seed:4 data in
  Alcotest.(check bool) "throughput positive" true (qps > 0.0)

let test_update_driver () =
  let data = Lazy.force data in
  let r = Driver.run_updates ~n_nodes:2 ~duration:(Sim_time.ms 20) ~tcr:1.0 ~seed:6 data in
  Alcotest.(check bool) "some updates ran" true (r.Driver.committed > 0);
  List.iter
    (fun (_, (s : Stats.summary)) ->
      Alcotest.(check bool) "update latency positive" true (s.Stats.mean > 0.0))
    r.Driver.per_kind

let () =
  Alcotest.run "ldbc"
    [
      ("dataset", [ Alcotest.test_case "shape" `Quick test_dataset_shape ]);
      ("queries", query_cases);
      ( "driver",
        [
          Alcotest.test_case "schedule shape" `Quick test_schedule_shape;
          Alcotest.test_case "schedule deterministic" `Quick test_schedule_deterministic;
          Alcotest.test_case "mixed run" `Quick test_mixed_run_small;
          Alcotest.test_case "latency/throughput helpers" `Quick test_throughput_helpers;
          Alcotest.test_case "updates" `Quick test_update_driver;
        ] );
    ]
