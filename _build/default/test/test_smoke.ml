(* End-to-end smoke test: a hand-assembled 2-hop count program must agree
   between the reference interpreter and the asynchronous engine. *)

open Pstm_engine

let khop_count_program graph ~start ~hops =
  let schema = Graph.schema graph in
  let id_key = Schema.property_key_exn schema "id" in
  let steps =
    [|
      { Step.op = Step.Index_lookup { vertex_label = None; key = id_key; value = Value.Int start }; next = 1 };
      { Step.op = Step.Set_reg { reg = 0; expr = Step.Const (Value.Int 0) }; next = 2 };
      { Step.op = Step.Visit { dist_reg = 0; max_hops = hops; cont = 4; emit_improved = false }; next = 3 };
      { Step.op = Step.Expand { dir = Graph.Out; edge_label = None }; next = 2 };
      { Step.op = Step.Aggregate { agg = Step.Count; reg = 1 }; next = 5 };
      { Step.op = Step.Emit [| Step.Reg 1 |]; next = -1 };
    |]
  in
  Program.make ~name:"khop-count" ~steps ~n_registers:2 ~entries:[| 0 |]

(* Ground truth by plain BFS. *)
let bfs_count graph ~start ~hops =
  let visited = Hashtbl.create 64 in
  Hashtbl.add visited start 0;
  let frontier = ref [ start ] in
  for d = 1 to hops do
    let next = ref [] in
    List.iter
      (fun v ->
        Graph.iter_adjacent graph ~dir:Graph.Out v (fun ~target ~edge_id:_ ~label:_ ->
            if not (Hashtbl.mem visited target) then begin
              Hashtbl.add visited target d;
              next := target :: !next
            end))
      !frontier;
    frontier := !next
  done;
  Hashtbl.length visited

let test_local_matches_bfs () =
  (* Build the fixture by hand so every vertex carries an id property. *)
  let b = Builder.create () in
  for _ = 1 to 200 do
    ignore (Builder.add_vertex b ~label:"vertex" ())
  done;
  let edge_prng = Prng.create 12 in
  for _ = 1 to 800 do
    let s = Prng.int edge_prng 200 and d = Prng.int edge_prng 200 in
    if s <> d then ignore (Builder.add_edge b ~src:s ~label:"link" ~dst:d ())
  done;
  for v = 0 to 199 do
    Builder.set_vertex_prop b ~vertex:v ~key:"id" (Value.Int v)
  done;
  let graph = Builder.build b in
  let program = khop_count_program graph ~start:7 ~hops:2 in
  let rows = Local_engine.run graph program in
  let expected = bfs_count graph ~start:7 ~hops:2 in
  Alcotest.(check int) "one row" 1 (List.length rows);
  (match rows with
  | [ [| Value.Int n |] ] -> Alcotest.(check int) "count" expected n
  | _ -> Alcotest.fail "unexpected row shape");
  (* Async engine agreement. *)
  let report =
    Async_engine.run
      ~cluster_config:{ Cluster.default_config with n_nodes = 4; workers_per_node = 4 }
      ~channel_config:Channel.default_config ~graph
      [| Engine.submit program |]
  in
  Alcotest.(check bool) "completed" true (Engine.all_completed report);
  (match report.Engine.queries.(0).Engine.rows with
  | [ [| Value.Int n |] ] -> Alcotest.(check int) "async count" expected n
  | _ -> Alcotest.fail "unexpected async row shape")

(* The Figure 1 query, built through the DSL and compiler. *)
let test_compiled_query () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let open Pstm_query in
  let ast =
    Dsl.(
      v_lookup ~key:"id" (int 3)
      |> repeat_out "link" ~times:2
      |> has "id" (ne (int 3))
      |> top_k "weight" 10
      |> build)
  in
  let program = Compile.compile ~name:"fig1" graph ast in
  let local_rows = Pstm_engine.Local_engine.run graph program in
  let report =
    Pstm_engine.Async_engine.run
      ~cluster_config:{ Cluster.default_config with n_nodes = 4; workers_per_node = 4 }
      ~channel_config:Channel.default_config ~graph
      [| Pstm_engine.Engine.submit program |]
  in
  let async_rows = report.Pstm_engine.Engine.queries.(0).Pstm_engine.Engine.rows in
  Alcotest.(check bool) "completed" true (Pstm_engine.Engine.all_completed report);
  Alcotest.(check int) "one row each" 1 (List.length local_rows);
  let show rows = Fmt.str "%a" (Fmt.list (Fmt.array Value.pp)) rows in
  Alcotest.(check string) "rows agree" (show local_rows) (show async_rows)

let test_bsp_agrees () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let open Pstm_query in
  let ast =
    Dsl.(v_lookup ~key:"id" (int 9) |> repeat_out "link" ~times:2 |> count |> build)
  in
  let program = Compile.compile ~name:"khop-count" graph ast in
  let local_rows = Pstm_engine.Local_engine.run graph program in
  let report =
    Pstm_engine.Bsp_engine.run
      ~cluster_config:{ Cluster.default_config with n_nodes = 4; workers_per_node = 4 }
      ~graph
      [| Pstm_engine.Engine.submit program |]
  in
  let bsp_rows = report.Pstm_engine.Engine.queries.(0).Pstm_engine.Engine.rows in
  let show rows = Fmt.str "%a" (Fmt.list (Fmt.array Value.pp)) rows in
  Alcotest.(check string) "rows agree" (show local_rows) (show bsp_rows)

let () =
  Alcotest.run "smoke"
    [
      ( "khop",
        [
          Alcotest.test_case "local/async agree with BFS" `Quick test_local_matches_bfs;
          Alcotest.test_case "compiled fig1 query agrees" `Quick test_compiled_query;
          Alcotest.test_case "bsp agrees" `Quick test_bsp_agrees;
        ] );
    ]
