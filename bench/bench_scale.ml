(* Fig 9 extension: scaling past the paper's 8 nodes.

   The paper's evaluation stops at 8 nodes; ROADMAP item 3 asks what
   serializes first at 64/128/256. The answer, measured here, is the
   flat §IV-A termination design: every worker's progress flush lands on
   the query coordinator, so the root tracker absorbs O(workers)
   messages per flush epoch while everything else about the traversal
   parallelizes. The headline table sweeps a concurrent k-hop batch
   across node counts with flat and hierarchical tracking side by side,
   reporting throughput next to the per-tier tracker load (root
   receipts, delegate merges and upward forwards) — the load the
   delegate tree is built to restructure.

   [smoke] runs a small hierarchical sweep over every registry engine
   with the sanitizer on and asserts flat and hierarchical tracking
   produce identical rows; it is wired into dune runtest via the
   @scale-smoke alias. *)

open Pstm_engine
open Harness
module J = Pstm_obs.Json

let hier_options fanout =
  { Async_engine.default_options with Async_engine.tracker_fanout = fanout }

(* A batch of concurrent k-hop queries, the Fig 9 workload shape: enough
   resident queries that every worker contributes finished weight to
   many coordinators at once. *)
let batch graph ~starts ~hops =
  Array.map (fun start -> Engine.submit (khop_program graph ~start ~hops)) starts

type cell = {
  c_makespan_ms : float;
  c_tps : float; (* traverser steps per simulated second *)
  c_root_rx : int; (* weight receipts at root trackers *)
  c_merges : int;
  c_forwards : int;
  c_progress_msgs : int;
}

let cell graph ~starts ~hops ~nodes ~workers ~fanout =
  let report =
    run_graphdance ~options:(hier_options fanout)
      ~config:(cluster ~nodes ~workers)
      graph (batch graph ~starts ~hops)
  in
  let m = report.Engine.metrics in
  let sim_s = Sim_time.to_s report.Engine.makespan in
  {
    c_makespan_ms = Sim_time.to_ms report.Engine.makespan;
    c_tps = fi (Metrics.steps m) /. sim_s;
    c_root_rx = Metrics.tracker_updates m;
    c_merges = Metrics.delegate_merges m;
    c_forwards = Metrics.delegate_forwards m;
    c_progress_msgs = Metrics.messages m Metrics.Progress_msg;
  }

let fanout = 32

let run () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.lj_like in
  let starts = khop_starts graph ~seed:23 ~n:8 in
  let hops = 4 in
  let workers = 4 in
  let base = ref None in
  let rows =
    List.concat_map
      (fun nodes ->
        let flat = cell graph ~starts ~hops ~nodes ~workers ~fanout:None in
        let hier = cell graph ~starts ~hops ~nodes ~workers ~fanout:(Some fanout) in
        if !base = None then base := Some (flat, nodes);
        let base_cell, base_nodes = Option.get !base in
        record_json
          (J.Obj
             [
               ("kind", J.Str "scale");
               ("nodes", J.Int nodes);
               ("workers_per_node", J.Int workers);
               ("fanout", J.Int fanout);
               ("flat_makespan_ms", J.Float flat.c_makespan_ms);
               ("hier_makespan_ms", J.Float hier.c_makespan_ms);
               ("flat_tps", J.Float flat.c_tps);
               ("hier_tps", J.Float hier.c_tps);
               ("flat_root_rx", J.Int flat.c_root_rx);
               ("hier_root_rx", J.Int hier.c_root_rx);
               ("hier_delegate_merges", J.Int hier.c_merges);
               ("hier_delegate_forwards", J.Int hier.c_forwards);
               ("flat_progress_msgs", J.Int flat.c_progress_msgs);
               ("hier_progress_msgs", J.Int hier.c_progress_msgs);
             ]);
        let speedup c =
          (* Scaling relative to the smallest flat configuration,
             normalized by the node ratio: 1.0 = perfectly linear. *)
          c.c_tps /. base_cell.c_tps /. (fi nodes /. fi base_nodes)
        in
        let row mode (c : cell) =
          [
            string_of_int nodes;
            mode;
            ms c.c_makespan_ms;
            Printf.sprintf "%.3e" c.c_tps;
            Printf.sprintf "%.2f" (speedup c);
            string_of_int c.c_root_rx;
            string_of_int c.c_forwards;
            string_of_int c.c_progress_msgs;
          ]
        in
        [ row "flat" flat; row (Printf.sprintf "tree/%d" fanout) hier ])
      [ 8; 64; 128; 256 ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "Fig 9 extension: %d concurrent %d-hop queries (lj-like, %d workers/node)"
         (Array.length starts) hops workers)
    ~headers:
      [
        "nodes"; "tracking"; "makespan ms"; "traversers/s"; "lin"; "root rx"; "deleg fwd";
        "progress msgs";
      ]
    rows

(* --- Smoke: hierarchical tracking over every registry engine ---------- *)

let smoke () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let config = cluster ~nodes:8 ~workers:4 in
  let checked = { Engine.Common.default with Engine.Common.check = true } in
  let start = (khop_starts graph ~seed:11 ~n:1).(0) in
  let subs () = [| Engine.submit (khop_program graph ~start ~hops:2) |] in
  let rows r = Fmt.str "%a" (Fmt.list (Fmt.array Value.pp)) (Engine.sorted_rows r) in
  (* Every engine runs under a fanout-3 registry with the sanitizer on;
     the non-async engines ignore the fanout, which is exactly the
     contract being smoked. *)
  let registry = Registry.make ~cluster_config:config ~tracker_fanout:3 () in
  let results =
    List.map
      (fun (name, (module E : Engine.S)) ->
        let report = E.run ~common:checked ~graph (subs ()) in
        let m = report.Engine.metrics in
        ( name,
          rows report.Engine.queries.(0).Engine.rows,
          Metrics.delegate_merges m + Metrics.delegate_forwards m ))
      registry
  in
  (* The async flavors must actually exercise the delegate tier; and the
     hierarchical rows must match the flat rows exactly. *)
  let flat =
    run_graphdance ~common:checked ~config graph (subs ())
  in
  let flat_rows = rows flat.Engine.queries.(0).Engine.rows in
  List.iter
    (fun (name, r, delegated) ->
      let is_async =
        List.mem name [ "graphdance"; "banyan-like"; "gaia-like" ]
      in
      if is_async && delegated = 0 then
        failwith (Printf.sprintf "scale smoke: %s never used the delegate tier" name);
      if name = "graphdance" && r <> flat_rows then
        failwith "scale smoke: hierarchical rows diverge from flat rows")
    results;
  print_table ~title:"Scale smoke: fanout-3 delegate tree, every engine (sanitizer on)"
    ~headers:[ "engine"; "rows == flat"; "delegate ops" ]
    (List.map
       (fun (name, r, delegated) ->
         [ name; (if r = flat_rows then "yes" else "n/a"); string_of_int delegated ])
       results);
  record_report ~label:"scale-smoke" flat
