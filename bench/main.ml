(* Benchmark harness entry point.

   Regenerates every table and figure of the paper's evaluation section
   on the simulated cluster. With no argument, runs everything in paper
   order; with an argument, runs one experiment:

     table1 table2 fig7 fig8 fig8l fig8sn fig9 fig10 fig11 fig12 fig13
     plan partition repartition khop critpath micro

   All latencies are simulated milliseconds on the 8-node cluster model;
   see DESIGN.md for the hardware substitution rationale and
   EXPERIMENTS.md for measured-vs-paper comparisons. *)

let experiments =
  [
    ("table1", "Table I: workload-class characteristics", Bench_tables.table1);
    ("table2", "Table II: dataset summaries", Bench_tables.table2);
    ("fig7", "Figure 7: mixed LDBC SNB workload", Bench_fig7.run);
    ( "fig8",
      "Figure 8: individual IC queries (SNB-S)",
      fun () -> Bench_fig8.run_scale Pstm_ldbc.Snb_gen.snb_s );
    ( "fig8l",
      "Figure 8: individual IC queries (SNB-L)",
      fun () -> Bench_fig8.run_scale Pstm_ldbc.Snb_gen.snb_l );
    ("fig8sn", "Section V-A3: single-node comparison", Bench_fig8.run_single_node);
    ("fig9", "Figure 9: scalability", Bench_fig9.run);
    ("fig10", "Figures 10-11: weight coalescing", Bench_breakdown.weight_coalescing);
    ("fig12", "Figure 12: two-tier I/O scheduler", Bench_breakdown.io_scheduler);
    ("fig13", "Figure 13: hardware impact", Bench_fig13.run);
    ("plan", "Figure 3 ablation: join plans", Bench_plan.run);
    ("partition", "Ablation: partition strategies", Bench_partition.run);
    ("repartition", "Ablation: adaptive repartitioning", Bench_repartition.run);
    ( "repartition-smoke",
      "Smoke: cold adaptive repartitioning with the sanitizer on",
      Bench_repartition.smoke );
    ("khop", "k-hop throughput: frontier batching and the plan cache", Bench_khop.run);
    ( "critpath",
      "EXPLAIN LATENCY: critical-path attribution at 1/8/32 nodes",
      Bench_critpath.run );
    ( "critpath-smoke",
      "Smoke: causal tracing + exact attribution across every registry engine",
      Bench_critpath.smoke );
    ( "batch-smoke",
      "Smoke: batched execution + plan-cache hit with the sanitizer on",
      Bench_khop.smoke );
    ( "mc-smoke",
      "Smoke: schedule exploration + protocol mutation catching",
      Bench_mc.smoke );
    ( "serve",
      "Service layer: open-loop load, admission control vs baseline",
      Bench_serve.run );
    ( "scale",
      "Fig 9 extension: flat vs hierarchical tracking at 8-256 nodes",
      Bench_scale.run );
    ( "scale-smoke",
      "Smoke: hierarchical progress tracking over every registry engine",
      Bench_scale.smoke );
    ( "serve-smoke",
      "Smoke: the query service over every registry engine, sanitizer on",
      Bench_serve.smoke );
    ("micro", "Microbenchmarks", Bench_micro.run);
    ("smoke", "Smoke: one tiny config through the result pipeline", Harness.smoke);
    ("faults", "Fault sweep: GraphDance under an unreliable network", Bench_faults.run);
  ]

(* "--faults" is accepted as a spelling of the faults experiment. *)
let aliases = [ ("fig11", "fig10"); ("--faults", "faults") ]

let run_one name =
  let name = Option.value ~default:name (List.assoc_opt name aliases) in
  match List.find_opt (fun (n, _, _) -> n = name) experiments with
  | Some (_, title, f) ->
    Harness.section title;
    let t0 = Sys.time () in
    f ();
    Printf.printf "  [%s done in %.1fs cpu]\n%!" name (Sys.time () -. t0)
  | None ->
    Printf.eprintf "unknown experiment %S; available: %s\n" name
      (String.concat " " (List.map (fun (n, _, _) -> n) experiments @ List.map fst aliases));
    exit 1

(* Pull [--json PATH] out of argv; everything else is experiment names. *)
let rec extract_json_path = function
  | [] -> (None, [])
  | "--json" :: path :: rest ->
    let _, names = extract_json_path rest in
    (Some path, names)
  | [ "--json" ] ->
    prerr_endline "--json requires a file argument";
    exit 1
  | name :: rest ->
    let path, names = extract_json_path rest in
    (path, name :: names)

let () =
  print_endline "GraphDance / PSTM benchmark harness";
  print_endline "(all latencies are simulated time on the modeled 8-node cluster)";
  let args = match Array.to_list Sys.argv with [] -> [] | _ :: rest -> rest in
  let json_path, names = extract_json_path args in
  Harness.json_enabled := json_path <> None;
  (match names with
  | [] ->
    (* Everything in paper order; the smoke entries and faults are CI
       fixtures, not figures. *)
    List.iter
      (fun (n, _, _) ->
        if
          n <> "smoke" && n <> "faults" && n <> "repartition-smoke" && n <> "batch-smoke"
          && n <> "mc-smoke" && n <> "critpath-smoke" && n <> "serve-smoke"
          && n <> "scale-smoke"
        then
          run_one n)
      experiments
  | names -> List.iter run_one names);
  match json_path with
  | None -> ()
  | Some path ->
    if !Harness.json_sink = [] then begin
      (* An experiment ran but recorded nothing: the mirroring in
         print_table / record_report has rotted. *)
      prerr_endline "--json given but no results were recorded";
      exit 1
    end;
    Harness.write_json path
