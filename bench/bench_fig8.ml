(* Figure 8: individual interactive complex queries.

   Minimum latency (sequential submission) and maximum throughput
   (concurrent streams) for every IC query on both SNB scales, comparing
   GraphDance, the BSP engine and the non-partitioned graph model. Also
   covers §V-A3: the single-node (GraphScope-role) comparison, including
   its collapse when the larger graph exceeds one node's memory. *)

open Pstm_engine
open Pstm_ldbc
open Harness

let repeats = 3
let streams = 64

let engines data =
  let graph = data.Snb_gen.graph in
  [
    ("GraphDance", fun subs -> run_graphdance graph subs);
    ("TigerGraph", fun subs -> run_bsp ~profile:Bsp_engine.Tigergraph_role graph subs);
    ("BSP-abl", fun subs -> run_bsp ~profile:Bsp_engine.Ablation graph subs);
    ("NonPart", fun subs -> run_non_partitioned graph subs);
  ]

let run_scale scale =
  let data = Snb_gen.load scale in
  let engines = engines data in
  let rows =
    List.map
      (fun (name, make) ->
        let lat_cells =
          List.map
            (fun (_, run) ->
              ms (Driver.sequential_latency ~run ~make ~repeats ~seed:91 data))
            engines
        in
        let tput_cells =
          List.map
            (fun (_, run) ->
              Printf.sprintf "%.0f" (Driver.max_throughput ~run ~make ~streams ~seed:92 data))
            engines
        in
        (name :: lat_cells) @ tput_cells)
      Ic_queries.all
  in
  let engine_names = List.map fst engines in
  let headers =
    ("Query" :: List.map (fun e -> e ^ " lat(ms)") engine_names)
    @ List.map (fun e -> e ^ " QPS") engine_names
  in
  print_table
    ~title:
      (Printf.sprintf "Figure 8 (%s): IC latency (sequential) and throughput (%d streams)"
         scale.Snb_gen.name streams)
    ~headers rows;
  (* Headline aggregates. *)
  let mean_of idx =
    let samples =
      List.map
        (fun row -> float_of_string (List.nth row idx))
        rows
    in
    Pstm_util.Stats.mean (Array.of_list samples)
  in
  let gd_lat = mean_of 1 and tg_lat = mean_of 2 and bsp_lat = mean_of 3 and np_lat = mean_of 4 in
  let gd_tput = mean_of 5 and tg_tput = mean_of 6 and np_tput = mean_of 8 in
  Printf.printf "  vs TigerGraph-role: %s lower latency, %.1fx higher throughput\n"
    (pct (100.0 *. (1.0 -. (gd_lat /. tg_lat))))
    (gd_tput /. Float.max tg_tput 1e-9);
  Printf.printf "  vs BSP execution (ablation): %s lower latency\n"
    (pct (100.0 *. (1.0 -. (gd_lat /. bsp_lat))));
  Printf.printf "  vs non-partitioned: %s lower latency, %.2fx higher throughput\n"
    (pct (100.0 *. (1.0 -. (gd_lat /. np_lat))))
    (gd_tput /. Float.max np_tput 1e-9)

(* §V-A3: single-node engine against the 8-node deployment. *)
let run_single_node () =
  let small = Snb_gen.load Snb_gen.snb_s in
  let large = Snb_gen.load Snb_gen.snb_l in
  (* One node comfortably fits the small graph but not the large one. *)
  let capacity = 2 * Graph.bytes small.Snb_gen.graph in
  (* Interactive time limit, scaled to our dataset size. *)
  let deadline = Pstm_sim.Sim_time.ms 4 in
  let timeouts = ref 0 in
  let rows =
    List.map
      (fun (qname, make) ->
        let cell data single =
          let prng = Pstm_util.Prng.create 17 in
          let program = make data prng in
          let report =
            if single then
              Single_node_engine.run
                ~common:(Engine.Common.with_deadline (Some deadline) Engine.Common.default)
                ~memory_capacity:capacity ~workers:32 ~base_config:paper_cluster
                ~graph:data.Snb_gen.graph
                [| Engine.submit program |]
            else
              run_graphdance data.Snb_gen.graph [| Engine.submit program |]
          in
          match Engine.latency report.Engine.queries.(0) with
          | Some l -> Printf.sprintf "%.3f" (Pstm_sim.Sim_time.to_ms l)
          | None ->
            incr timeouts;
            "TIMEOUT"
        in
        [
          qname;
          cell small true;
          cell small false;
          cell large true;
          cell large false;
        ])
      Ic_queries.all
  in
  print_table
    ~title:
      "Section V-A3: single-node (GraphScope-role) vs 8-node GraphDance, latency ms"
    ~headers:
      [ "Query"; "1-node SNB-S"; "8-node SNB-S"; "1-node SNB-L"; "8-node SNB-L" ]
    rows;
  Printf.printf
    "  %d of 14 IC queries exceeded the time limit on the single node at SNB-L\n\
    \  (paper: 9 of 14 for GraphScope on SF1000 — the graph exceeds one node's\n\
    \  memory; the single node wins on the small graph, having no network)\n"
    !timeouts
