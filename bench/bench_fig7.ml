(* Figure 7: mixed LDBC SNB interactive workload.

   Average and P99 latency per query type (IC1-14, IS1-7) at TCR 3, 0.3
   and 0.03, GraphDance vs the BSP (TigerGraph-role) engine. The paper's
   headline behaviour to reproduce: GraphDance is consistently faster,
   and the BSP engine cannot keep up at TCR 0.03. *)

open Pstm_ldbc
open Harness

let duration = Pstm_sim.Sim_time.ms 150

let run_one data ~tcr =
  let gd =
    Driver.run_mixed_async ~cluster_config:paper_cluster ~duration ~tcr ~seed:42 data
  in
  let bsp = Driver.run_mixed_bsp ~cluster_config:paper_cluster ~duration ~tcr ~seed:42 data in
  (gd, bsp)

let cell (summary : Pstm_util.Stats.summary option) ~kept_up =
  match summary with
  | _ when not kept_up -> "DNF"
  | None -> "-"
  | Some s -> Printf.sprintf "%.2f/%.2f" s.Pstm_util.Stats.mean s.Pstm_util.Stats.p99

let run () =
  let data = Snb_gen.load Snb_gen.snb_s in
  let tcrs = [ 3.0; 0.3; 0.03 ] in
  let results = List.map (fun tcr -> (tcr, run_one data ~tcr)) tcrs in
  List.iter
    (fun (tcr, ((gd : Driver.mixed_result), (bsp : Driver.mixed_result))) ->
      record_report ~label:(Printf.sprintf "fig7.gd.tcr%.2g" tcr) gd.Driver.report;
      record_report ~label:(Printf.sprintf "fig7.bsp.tcr%.2g" tcr) bsp.Driver.report)
    results;
  let names = List.map fst (Ic_queries.all @ Is_queries.all) in
  let find (r : Driver.mixed_result) name = List.assoc_opt name r.Driver.per_query in
  let rows =
    List.map
      (fun name ->
        name
        :: List.concat_map
             (fun (_, (gd, bsp)) ->
               [
                 cell (find gd name) ~kept_up:gd.Driver.kept_up;
                 cell (find bsp name) ~kept_up:bsp.Driver.kept_up;
               ])
             results)
      names
  in
  let headers =
    "Query"
    :: List.concat_map
         (fun tcr -> [ Printf.sprintf "GD tcr=%.2g" tcr; Printf.sprintf "BSP tcr=%.2g" tcr ])
         tcrs
  in
  print_table ~title:"Figure 7: mixed workload latency, avg/p99 ms (DNF = cannot keep up)"
    ~headers rows;
  (* Update operations run against the transactional substrate at the
     same compression ratios (not plotted in the paper's Figure 7, but
     part of the mixed workload). *)
  let upd = Driver.run_updates ~duration ~tcr:0.3 ~seed:43 data in
  print_table
    ~title:"Mixed workload update operations (TCR 0.3), transactional substrate"
    ~headers:[ "Update"; "mean (ms)"; "p99 (ms)"; "count" ]
    (List.map
       (fun (name, (s : Pstm_util.Stats.summary)) ->
         [ name; ms s.Pstm_util.Stats.mean; ms s.Pstm_util.Stats.p99; string_of_int s.Pstm_util.Stats.count ])
       upd.Driver.per_kind);
  Printf.printf "  updates: %d committed, %d aborted (MV2PL no-wait conflicts)
" upd.Driver.committed
    upd.Driver.aborted;
  (* Aggregate reduction, the paper's headline number. *)
  List.iter
    (fun (tcr, ((gd : Driver.mixed_result), (bsp : Driver.mixed_result))) ->
      if gd.Driver.kept_up && bsp.Driver.kept_up then begin
        let ratios =
          List.filter_map
            (fun name ->
              match find gd name, find bsp name with
              | Some g, Some b when b.Pstm_util.Stats.mean > 0.0 ->
                Some (1.0 -. (g.Pstm_util.Stats.mean /. b.Pstm_util.Stats.mean))
              | _ -> None)
            names
        in
        Printf.printf
          "  TCR %.2g: GraphDance mean latency reduction vs BSP across query types: %s\n" tcr
          (pct (100.0 *. Pstm_util.Stats.mean (Array.of_list ratios)))
      end
      else
        Printf.printf "  TCR %.2g: GraphDance kept up: %b; BSP kept up: %b\n" tcr
          gd.Driver.kept_up bsp.Driver.kept_up)
    results
