(* End-to-end k-hop throughput with frontier batching on and off: the
   Figure-1 query at 1 and 8 partitions, reported as traversers/sec of
   simulated time, plus the compiled-plan cache's amortization of
   host-side compile latency (hits observably skip re-verification). *)

open Pstm_engine
open Pstm_query
open Harness

let common ~batched = Engine.Common.with_batched batched Engine.Common.default

(* One (partitions, batched) cell: mean k-hop latency and aggregate
   traverser throughput over a few start vertices. *)
let cell graph ~starts ~hops ~nodes ~batched =
  let steps = ref 0 in
  let sim_s = ref 0.0 in
  let batches = ref 0 in
  let coalesced = ref 0 in
  let lats =
    Array.map
      (fun start ->
        let report =
          khop_report
            ~run:(run_graphdance ~common:(common ~batched) ~config:(cluster ~nodes ~workers:8))
            graph ~hops ~start
        in
        let m = report.Engine.metrics in
        steps := !steps + Metrics.steps m;
        sim_s := !sim_s +. Sim_time.to_s report.Engine.makespan;
        batches := !batches + Metrics.batches m;
        coalesced := !coalesced + Metrics.coalesced_msgs m;
        Engine.latency_ms report.Engine.queries.(0))
      starts
  in
  (Pstm_util.Stats.mean lats, fi !steps /. !sim_s, !batches, !coalesced)

let throughput graph =
  let starts = khop_starts graph ~seed:7 ~n:3 in
  let hops = 3 in
  let rows =
    List.concat_map
      (fun nodes ->
        let lat_off, tps_off, _, _ = cell graph ~starts ~hops ~nodes ~batched:false in
        let lat_on, tps_on, batches, coalesced = cell graph ~starts ~hops ~nodes ~batched:true in
        let row batched lat tps b c speedup =
          [
            string_of_int nodes;
            batched;
            ms lat;
            Printf.sprintf "%.3e" tps;
            string_of_int b;
            string_of_int c;
            speedup;
          ]
        in
        [
          row "off" lat_off tps_off 0 0 "1.00x";
          row "on" lat_on tps_on batches coalesced (Printf.sprintf "%.2fx" (tps_on /. tps_off));
        ])
      [ 1; 8 ]
  in
  print_table ~title:"k-hop throughput: frontier batching (lj-like, 3-hop, 8 workers/node)"
    ~headers:[ "partitions"; "batching"; "latency (ms)"; "traversers/s"; "batches"; "coalesced"; "speedup" ]
    rows

(* Plan cache: compile the k-hop family with 200 distinct start literals,
   cold (full pipeline every time) vs through the cache (one verification,
   199 binds). *)
let plan_cache graph =
  let ast start =
    Dsl.(
      v_lookup ~key:"id" (int start)
      |> repeat_out "link" ~times:3
      |> has "id" (ne (int start))
      |> top_k "weight" 10
      |> build)
  in
  let n = 200 in
  let starts = Array.init n (fun i -> i * 17 mod Graph.n_vertices graph) in
  let time f =
    let t0 = Sys.time () in
    f ();
    (Sys.time () -. t0) *. 1000.0
  in
  let cold_ms =
    time (fun () -> Array.iter (fun s -> ignore (Compile.compile ~name:"khop" graph (ast s))) starts)
  in
  let cache = Plan_cache.create ~graph in
  let warm_ms =
    time (fun () -> Array.iter (fun s -> ignore (Plan_cache.compile_ast ~name:"khop" cache (ast s))) starts)
  in
  let s = Plan_cache.stats cache in
  print_table
    ~title:(Printf.sprintf "Plan cache: %d compiles of one k-hop family (wall clock)" n)
    ~headers:[ "path"; "total (ms)"; "hits"; "misses"; "verifier runs"; "speedup" ]
    [
      [ "cold compile"; ms cold_ms; "-"; "-"; string_of_int n; "1.00x" ];
      [
        "plan cache";
        ms warm_ms;
        string_of_int s.Plan_cache.hits;
        string_of_int s.Plan_cache.misses;
        string_of_int s.Plan_cache.verifications;
        Printf.sprintf "%.2fx" (cold_ms /. warm_ms);
      ];
    ]

let run () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.lj_like in
  throughput graph;
  plan_cache graph

(* The @batch-smoke alias: a batched sanitizer-on run on tiny whose rows
   must equal the unbatched run's, with the program compiled twice
   through the plan cache (miss then hit) and the cache stats mirrored
   into the report's metrics so the JSON export path is exercised. *)
let smoke () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let config = cluster ~nodes:2 ~workers:4 in
  let start = (khop_starts graph ~seed:11 ~n:1).(0) in
  let ast =
    Dsl.(
      v_lookup ~key:"id" (int start)
      |> repeat_out "link" ~times:2
      |> has "id" (ne (int start))
      |> top_k "weight" 10
      |> build)
  in
  let cache = Plan_cache.create ~graph in
  ignore (Plan_cache.compile_ast ~name:"2-hop" cache ast);
  let program = Plan_cache.compile_ast ~name:"2-hop" cache ast (* the hit path *) in
  let run_with batched =
    run_graphdance
      ~common:{ (common ~batched) with Engine.Common.check = true }
      ~config graph
      [| Engine.submit program |]
  in
  let scalar = run_with false in
  let report = run_with true in
  let rows r = Fmt.str "%a" (Fmt.list (Fmt.array Value.pp)) (Engine.sorted_rows r) in
  if rows report.Engine.queries.(0).Engine.rows <> rows scalar.Engine.queries.(0).Engine.rows then
    failwith "batch smoke: batched rows diverge from scalar rows";
  let m = report.Engine.metrics in
  if Metrics.batches m = 0 then failwith "batch smoke: no batches recorded";
  let s = Plan_cache.stats cache in
  Metrics.add_plan_stats m ~hits:s.Plan_cache.hits ~misses:s.Plan_cache.misses
    ~verifications:s.Plan_cache.verifications;
  print_table ~title:"Batch smoke: batched 2-hop on tiny (sanitizer on, plan-cache hit)"
    ~headers:[ "latency (ms)"; "batches"; "travs/batch"; "coalesced"; "plan hits"; "verifier runs" ]
    [
      [
        ms (Engine.latency_ms report.Engine.queries.(0));
        string_of_int (Metrics.batches m);
        Printf.sprintf "%.1f" (fi (Metrics.batched_traversers m) /. fi (Metrics.batches m));
        string_of_int (Metrics.coalesced_msgs m);
        string_of_int (Metrics.plan_hits m);
        string_of_int (Metrics.plan_verifications m);
      ];
    ];
  record_report ~label:"batch-smoke" report
