(* Service-layer benchmark: open-loop load through saturation.

   The headline table sweeps a Poisson arrival rate from well under to
   well past the engine's saturation point, with the admission
   controller on and off. The claim under test is graceful degradation:
   past saturation the guarded service sheds a growing fraction of
   arrivals while the p99 of what it admits stays inside the SLO
   headroom — where the unguarded baseline queues without bound and its
   tail latency explodes with offered load.

   [smoke] runs a small multi-tenant mix (one impatient tenant, so
   scoped cancellation fires) over every registry engine with the
   sanitizer on; it is wired into dune runtest via the @serve-smoke
   alias, so the whole service plane is exercised on every test run. *)

open Pstm_engine
open Pstm_service
module J = Pstm_obs.Json

let slo = Sim_time.ms 1
let checked = { Engine.Common.default with Engine.Common.check = true }

let khop2 graph =
  (* The Figure 1 k-hop neighborhood query, the paper's running example. *)
  Harness.khop_program graph ~start:1 ~hops:2

let serve_result ~admission ~rate_qps ~horizon ~graph engine =
  (* Headroom 1.5 keeps the realized p99 of admitted queries inside 2x
     the SLO: the projection lags the queue by one service time, so the
     shed threshold needs slack below the bound being defended. *)
  let config =
    Service.config ~max_inflight:4 ~slo ~admission ~headroom:1.5 ~seed:0x5e12 ~horizon
      [| Service.tenant (Arrival.Poisson { rate_qps }) |]
  in
  Service.run engine ~graph ~config ~program:(fun ~tenant:_ ~seq:_ -> khop2 graph) ()

let run () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let registry = Registry.make ~cluster_config:Harness.paper_cluster () in
  let engine = Registry.find_exn ~registry "graphdance" in
  let horizon = Sim_time.ms 10 in
  let rates = [ 2_000.0; 8_000.0; 32_000.0; 64_000.0; 128_000.0; 256_000.0 ] in
  let rows =
    List.map
      (fun rate_qps ->
        let guarded = serve_result ~admission:true ~rate_qps ~horizon ~graph engine in
        let baseline = serve_result ~admission:false ~rate_qps ~horizon ~graph engine in
        Harness.record_json
          (J.Obj
             [
               ("kind", J.Str "serve");
               ("rate_qps", J.Float rate_qps);
               ("admission", Service.result_json guarded);
               ("baseline", Service.result_json baseline);
             ]);
        [
          Printf.sprintf "%.0f" rate_qps;
          string_of_int (Service.offered guarded);
          string_of_int (Service.admitted guarded);
          Harness.pct (100.0 *. Service.shed_rate guarded);
          Harness.ms (Service.p50_ms guarded);
          Harness.ms (Service.p99_ms guarded);
          Harness.ms (Service.p99_ms baseline);
        ])
      rates
  in
  Harness.print_table
    ~title:
      (Printf.sprintf "Open-loop service: admission control vs baseline (SLO p99 <= %.1f ms)"
         (Sim_time.to_ms slo))
    ~headers:
      [ "rate qps"; "offered"; "admitted"; "shed"; "p50 ms"; "p99 ms"; "p99 ms (no admission)" ]
    rows

(* --- Smoke: every registry engine under the service layer -------------- *)

let smoke () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let cluster = { Cluster.default_config with Cluster.n_nodes = 3; workers_per_node = 3 } in
  let registry = Registry.make ~cluster_config:cluster () in
  let horizon = Sim_time.ms 1 in
  let config =
    Service.config ~max_inflight:2 ~slo ~admission:true ~headroom:2.0 ~seed:0x5e12 ~horizon
      [|
        (* A patient bulk tenant and an impatient interactive one: the
           latter's abandonments drive scoped cancellation on engines
           slower than its patience. *)
        Service.tenant ~weight:1.0 (Arrival.Poisson { rate_qps = 5_000.0 });
        Service.tenant ~weight:2.0 ~priority:1 ~patience:(Sim_time.ms 1)
          (Arrival.Bursty
             { base_qps = 2_000.0; burst_qps = 20_000.0; mean_dwell = Sim_time.us 200 });
      |]
  in
  let rows =
    List.map
      (fun (name, engine) ->
        (* [checked]: a tracker or memo leaked by cancellation aborts the
           smoke run via Check_violation. *)
        let r =
          Service.run engine ~common:checked ~graph ~config
            ~program:(fun ~tenant:_ ~seq:_ -> khop2 graph)
            ()
        in
        if Service.offered r = 0 then failwith (name ^ ": serve-smoke saw no arrivals");
        if Service.completed r = 0 then failwith (name ^ ": serve-smoke completed nothing");
        Harness.record_json
          (J.Obj
             [ ("kind", J.Str "serve-smoke"); ("engine", J.Str name);
               ("result", Service.result_json r) ]);
        [
          name;
          string_of_int (Service.offered r);
          string_of_int (Service.admitted r);
          string_of_int (Service.shed r);
          string_of_int (Service.completed r);
          string_of_int (Service.cancelled r);
          Harness.ms (Service.p99_ms r);
        ])
      registry
  in
  Harness.print_table ~title:"serve-smoke: service layer over every registry engine"
    ~headers:[ "engine"; "offered"; "admitted"; "shed"; "completed"; "cancelled"; "p99 ms" ]
    rows
