(* Wall-clock microbenchmarks (Bechamel) of the hot primitives underneath
   the simulator's cost model: weight arithmetic, memo operations, top-k
   accumulation, CSR adjacency scans and single-step execution. *)

open Bechamel
open Toolkit

let weight_tests () =
  let prng = Pstm_util.Prng.create 1 in
  [
    Test.make ~name:"weight-split2"
      (Staged.stage (fun () -> ignore (Pstm_core.Weight.split2 prng Pstm_core.Weight.root)));
    Test.make ~name:"weight-add"
      (Staged.stage
         (let w = ref Pstm_core.Weight.zero in
          fun () -> w := Pstm_core.Weight.add !w Pstm_core.Weight.root));
    Test.make ~name:"prng-next"
      (Staged.stage (fun () -> ignore (Pstm_util.Prng.next_int64 prng)));
  ]

let memo_tests () =
  let memo = Pstm_core.Memo.create () in
  let prng = Pstm_util.Prng.create 2 in
  [
    Test.make ~name:"memo-dedup-probe"
      (Staged.stage (fun () ->
           ignore
             (Pstm_core.Memo.add_if_absent memo ~qid:0 ~label:1
                (Value.Int (Pstm_util.Prng.int prng 100_000)))));
    Test.make ~name:"memo-min-dist"
      (Staged.stage (fun () ->
           ignore
             (Pstm_core.Memo.min_int_update memo ~qid:0 ~label:2
                (Value.Vertex (Pstm_util.Prng.int prng 100_000))
                (Pstm_util.Prng.int prng 8))));
  ]

let structure_tests () =
  let prng = Pstm_util.Prng.create 3 in
  let topk =
    Pstm_util.Topk.create ~k:10
      ~cmp:(fun (a, _) (b, _) -> compare (a : int) b)
      ~dummy:(0, 0)
  in
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.lj_like in
  let n = Graph.n_vertices graph in
  [
    Test.make ~name:"topk-add"
      (Staged.stage (fun () ->
           Pstm_util.Topk.add topk (Pstm_util.Prng.int prng 1_000_000, Pstm_util.Prng.int prng n)));
    Test.make ~name:"csr-expand-scan"
      (Staged.stage (fun () ->
           let v = Pstm_util.Prng.int prng n in
           let acc = ref 0 in
           Graph.iter_adjacent graph ~dir:Graph.Out v (fun ~target ~edge_id:_ ~label:_ ->
               acc := !acc + target);
           ignore !acc));
    Test.make ~name:"value-compare"
      (Staged.stage (fun () ->
           ignore (Value.compare (Value.Int (Pstm_util.Prng.int prng 100)) (Value.Int 50))));
  ]

(* Fused frontier chain vs the scalar interpreter: the same
   Expand -> Filter chain over the same frontier, one [Batch_exec.run]
   vs one [Exec.exec] dispatch per traverser per step. This is the
   amortization the async engine's batched mode buys per (partition,
   step) group; the acceptance bar for the PR is a >= 2x speedup. *)
let fused_vs_scalar () =
  let open Pstm_engine in
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.lj_like in
  let program =
    Pstm_query.Compile.compile ~name:"frontier" graph
      Pstm_query.Dsl.(
        v_lookup ~key:"id" (int 0) |> out_ "link" |> has "weight" (gte (int 50)) |> count |> build)
  in
  (* Root the chain at the program's first fusable step (the Expand). *)
  let start =
    let rec find i =
      if i >= Program.n_steps program then failwith "no fusable step"
      else if Batch_exec.fusable program i then i
      else find (i + 1)
    in
    find 0
  in
  let exit_step = snd (Batch_exec.chain program start) in
  let n_registers = Program.n_registers program in
  let prng0 = Pstm_util.Prng.create 7 in
  (* A realistic frontier: the out-neighborhood of 256 seed vertices —
     what a (partition, step) group holds right after an expand. Hub
     vertices recur across seeds, which is the redundancy the batched
     filter memo amortizes and the scalar interpreter pays per
     traverser. *)
  let frontier =
    let csr = Graph.out_csr graph in
    let vertices = ref [] in
    let seeds = ref 0 in
    while !seeds < 256 do
      let v = Pstm_util.Prng.int prng0 (Graph.n_vertices graph) in
      if Graph.out_degree graph v > 0 then begin
        incr seeds;
        let lo, hi = Csr.slice csr v in
        for pos = lo to hi - 1 do
          vertices := Csr.target_at csr pos :: !vertices
        done
      end
    done;
    !vertices
    |> List.map (fun v -> Traverser.make ~vertex:v ~step:start ~weight:Weight.root ~n_registers)
    |> Array.of_list
  in
  let iters = 20 in
  let time f =
    let t0 = Sys.time () in
    for _ = 1 to iters do
      f ()
    done;
    Sys.time () -. t0
  in
  let scalar_s =
    let memo = Pstm_core.Memo.create () in
    let prng = Pstm_util.Prng.create 11 in
    let scan _ = [||] in
    time (fun () ->
        let queue = Queue.create () in
        Array.iter (fun t -> Queue.add t queue) frontier;
        while not (Queue.is_empty queue) do
          let t = Queue.pop queue in
          let o = Exec.exec ~graph ~memo ~prng ~qid:0 ~program ~scan t in
          List.iter
            (fun (c : Traverser.t) -> if c.Traverser.step <> exit_step then Queue.add c queue)
            o.Exec.spawns
        done)
  in
  let batched_s =
    let scratch = Batch_exec.scratch ~graph in
    let prng = Pstm_util.Prng.create 11 in
    (* Consume the spawns like the engine does, so the comparison covers
       materializing the surviving traversers, not just the sweep. *)
    let sink = ref 0 in
    time (fun () ->
        let o = Batch_exec.run ~graph ~scratch ~prng ~program ~step:start frontier in
        Batch_exec.iter_spawns o (fun ~parent:_ (c : Traverser.t) ->
            sink := !sink + c.Traverser.vertex))
  in
  let per t = t /. float_of_int iters *. 1e9 /. float_of_int (Array.length frontier) in
  Printf.printf "  %-20s %10.1f ns/traverser\n" "chain-scalar" (per scalar_s);
  Printf.printf "  %-20s %10.1f ns/traverser\n" "chain-batched" (per batched_s);
  Printf.printf "  %-20s %10.2fx\n" "fused-speedup" (scalar_s /. batched_s)

let run () =
  (* The fused-vs-scalar comparison runs first: Bechamel's allocation
     churn leaves the heap in a state that distorts Sys.time measurements
     taken after it in the same process. *)
  Printf.printf "\n== Frontier batching: fused chain vs scalar interpreter ==\n";
  fused_vs_scalar ();
  Printf.printf "\n== Microbenchmarks (wall clock, Bechamel OLS ns/op) ==\n";
  let tests = weight_tests () @ memo_tests () @ structure_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let stats = Analyze.all ols (List.hd instances) results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] -> Printf.printf "  %-20s %10.1f ns/op\n" name ns
          | _ -> Printf.printf "  %-20s (no estimate)\n" name)
        stats)
    tests
