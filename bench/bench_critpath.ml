(* EXPLAIN LATENCY at scale: causal tracing of the Figure-1 k-hop query
   as the cluster grows 1 -> 8 -> 32 nodes, reporting where each
   configuration's critical path actually went — compute, queue-wait,
   network, retransmit-recovery, barrier or tracker-coordination. The
   per-category segments are exact: they partition the end-to-end
   latency, and both entry points assert the equality. *)

open Pstm_engine
open Harness
module Causal = Pstm_obs.Causal

let category_headers = List.map Causal.category_name Causal.categories

(* Run one configuration with causal tracing on and return the report
   plus the (asserted-exact) attribution of query 0. *)
let attributed ~run graph ~hops ~start =
  let obs = Pstm_obs.Recorder.create ~causal:true () in
  let report =
    khop_report ~run:(run ~common:(Engine.Common.with_obs obs Engine.Common.default)) graph
      ~hops ~start
  in
  let causal = Pstm_obs.Recorder.causal obs in
  (report, causal, Causal.attribution causal ~qid:0)

let check_exact ~label report attr =
  let total = Causal.attribution_total attr in
  match Engine.latency report.Engine.queries.(0) with
  | Some l when Sim_time.compare l total = 0 -> ()
  | Some l ->
    failwith
      (Printf.sprintf "%s: critical-path segments sum to %dns but latency is %dns" label
         (Sim_time.to_ns total) (Sim_time.to_ns l))
  | None -> failwith (label ^ ": query did not complete")

let dominant_cell attr =
  let cat, t = Causal.dominant attr in
  let total = Causal.attribution_total attr in
  Printf.sprintf "%s (%.0f%%)" (Causal.category_name cat)
    (100.0 *. Sim_time.to_s t /. Float.max (Sim_time.to_s total) 1e-12)

let run () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.lj_like in
  let start = (khop_starts graph ~seed:7 ~n:1).(0) in
  let rows =
    List.map
      (fun nodes ->
        let label = Printf.sprintf "critpath@%d" nodes in
        let report, causal, attr =
          attributed
            ~run:(fun ~common graph subs ->
              run_graphdance ~common ~config:(cluster ~nodes ~workers:8) graph subs)
            graph ~hops:3 ~start
        in
        let attr =
          match attr with
          | Some a -> a
          | None -> failwith (label ^ ": no complete causal path")
        in
        check_exact ~label report attr;
        if nodes = 8 then record_report ~label report;
        record_json
          (J.Obj
             [
               ("kind", J.Str "critpath");
               ("nodes", J.Int nodes);
               ("causal", Causal.query_json causal ~qid:0);
             ]);
        (string_of_int nodes :: ms (Engine.latency_ms report.Engine.queries.(0))
        :: List.map (fun (_, t) -> ms (Sim_time.to_ms t)) attr)
        @ [ dominant_cell attr ])
      [ 1; 8; 32 ]
  in
  print_table
    ~title:
      "EXPLAIN LATENCY: 3-hop critical-path attribution (lj-like, 8 workers/node; \
       categories in ms, exact partition of latency)"
    ~headers:(("nodes" :: "latency (ms)" :: category_headers) @ [ "dominant" ])
    rows

(* The @critpath-smoke alias: causal tracing across every registry
   engine on tiny. The async family must yield a complete causal DAG
   whose critical-path segments sum to the latency exactly; engines
   that don't thread contexts (BSP profiles, the oracle) must simply
   leave the DAG empty rather than corrupt it. *)
let smoke () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let config = cluster ~nodes:2 ~workers:4 in
  let registry = Registry.make ~cluster_config:config () in
  let start = (khop_starts graph ~seed:11 ~n:1).(0) in
  let program = khop_program graph ~start ~hops:2 in
  let async_family = [ "graphdance"; "banyan-like"; "gaia-like"; "single-node" ] in
  let rows =
    List.map
      (fun name ->
        let (module E : Engine.S) = Registry.find_exn ~registry name in
        let obs = Pstm_obs.Recorder.create ~causal:true () in
        let common = Engine.Common.with_obs obs Engine.Common.default in
        let report = E.run ~common ~graph [| Engine.submit program |] in
        let causal = Pstm_obs.Recorder.causal obs in
        match Causal.attribution causal ~qid:0 with
        | Some attr ->
          check_exact ~label:name report attr;
          if name = "graphdance" then record_report ~label:"critpath-smoke" report;
          [
            name;
            ms (Engine.latency_ms report.Engine.queries.(0));
            string_of_int (List.length (Option.get (Causal.critical_path causal ~qid:0)));
            dominant_cell attr;
          ]
        | None ->
          if List.mem name async_family then
            failwith (name ^ ": async-family engine produced no complete causal path");
          if Causal.n_nodes causal > 0 then
            failwith (name ^ ": partial causal DAG without a complete path");
          [ name; ms (Engine.latency_ms report.Engine.queries.(0)); "-"; "no causal data" ])
      (Registry.names ~registry ())
  in
  print_table ~title:"Critpath smoke: 2-hop on tiny across every registry engine"
    ~headers:[ "engine"; "latency (ms)"; "path segments"; "dominant" ]
    rows
