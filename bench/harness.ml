(* Shared benchmark plumbing: table printing, engine runners and the
   Figure 1 k-hop query builder used throughout §V-B and §V-C. *)

open Pstm_engine
open Pstm_query

(* --- Machine-readable result sink ------------------------------------ *)

(* When main.ml sees [--json PATH], every figure's tables (mirrored
   automatically by [print_table]) and any engine reports recorded with
   [record_report] accumulate here and are written as one JSON document
   at exit. Human-readable table output is unchanged. *)

module J = Pstm_obs.Json

let json_sink : J.t list ref = ref []
let json_enabled = ref false

let record_json doc = if !json_enabled then json_sink := doc :: !json_sink

(* Mirror a printed table: same title, headers and cell strings. *)
let record_table ~title ~headers rows =
  record_json
    (J.Obj
       [
         ("kind", J.Str "table");
         ("title", J.Str title);
         ("headers", J.List (List.map (fun h -> J.Str h) headers));
         ( "rows",
           J.List (List.map (fun row -> J.List (List.map (fun c -> J.Str c) row)) rows) );
       ])

(* Record a full engine report (latency histogram, metrics, stragglers). *)
let record_report ~label report =
  record_json
    (J.Obj
       [ ("kind", J.Str "report"); ("label", J.Str label); ("report", Engine.report_json report) ])

let write_json path =
  J.write_file path (J.Obj [ ("results", J.List (List.rev !json_sink)) ]);
  Printf.printf "  [json results written to %s]\n%!" path

(* --- Plain-text table printer --- *)

let print_table ~title ~headers rows =
  record_table ~title ~headers rows;
  let all = headers :: rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map (fun _ -> 0) headers)
      all
  in
  let line c =
    print_string "+";
    List.iter (fun w -> print_string (String.make (w + 2) c ^ "+")) widths;
    print_newline ()
  in
  let print_row row =
    print_string "|";
    List.iter2 (fun w cell -> Printf.printf " %-*s |" w cell) widths row;
    print_newline ()
  in
  Printf.printf "\n== %s ==\n" title;
  line '-';
  print_row headers;
  line '=';
  List.iter print_row rows;
  line '-'

let ms v = Printf.sprintf "%.3f" v
let pct v = Printf.sprintf "%.1f%%" v
let fi = float_of_int

(* --- Cluster configurations --- *)

(* The paper's testbed: 8 nodes, many cores, 200 Gbps. *)
let paper_cluster = { Cluster.default_config with Cluster.n_nodes = 8; workers_per_node = 16 }

let cluster ~nodes ~workers =
  { Cluster.default_config with Cluster.n_nodes = nodes; workers_per_node = workers }

(* --- Engine runners (uniform closures over submissions) --- *)

let run_graphdance ?(options = Async_engine.default_options)
    ?(channel = Channel.default_config) ?common ?(config = paper_cluster) graph subs =
  Async_engine.run ~options ?common ~cluster_config:config ~channel_config:channel ~graph subs

let run_bsp ?profile ?common ?(config = paper_cluster) graph subs =
  Bsp_engine.run ?profile ?common ~cluster_config:config ~graph subs

let run_flavor flavor ?(config = paper_cluster) graph subs =
  Async_engine.run
    ~options:{ Async_engine.default_options with Async_engine.flavor }
    ~cluster_config:config ~channel_config:Channel.default_config ~graph subs

let run_non_partitioned ?(config = paper_cluster) graph subs =
  Async_engine.run
    ~options:{ Async_engine.default_options with Async_engine.shared_state = true }
    ~cluster_config:config ~channel_config:Channel.default_config ~graph subs

(* --- The Figure 1 k-hop query on a weighted dataset graph --- *)

let khop_program graph ~start ~hops =
  Compile.compile ~name:(Printf.sprintf "%d-hop" hops) graph
    Dsl.(
      v_lookup ~key:"id" (int start)
      |> repeat_out "link" ~times:hops
      |> has "id" (ne (int start))
      |> top_k "weight" 10
      |> build)

(* Deterministic start vertices, as the paper samples start vertices;
   isolated vertices are skipped (their k-hop query is empty). *)
let khop_starts graph ~seed ~n =
  let prng = Pstm_util.Prng.create seed in
  Array.init n (fun _ ->
      let rec pick () =
        let v = Pstm_util.Prng.int prng (Graph.n_vertices graph) in
        if Graph.out_degree graph v > 0 then v else pick ()
      in
      pick ())

(* Mean latency of the k-hop query over [starts] on a given runner. *)
let khop_latency ~run graph ~hops ~starts =
  let samples =
    Array.map
      (fun start ->
        let report = run graph [| Engine.submit (khop_program graph ~start ~hops) |] in
        Engine.latency_ms report.Engine.queries.(0))
      starts
  in
  Pstm_util.Stats.mean samples

(* Run once and hand back the full report (for metrics-based figures). *)
let khop_report ~run graph ~hops ~start =
  run graph [| Engine.submit (khop_program graph ~start ~hops) |]

let section name = Printf.printf "\n######## %s ########\n" name

(* --- Smoke figure (the @bench-smoke alias) ---------------------------- *)

(* One tiny k-hop config through the full pipeline — table, engine
   report, JSON sink — so CI catches result-plumbing rot in seconds. *)
let smoke () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let config = cluster ~nodes:2 ~workers:4 in
  let start = (khop_starts graph ~seed:11 ~n:1).(0) in
  let report = khop_report ~run:(run_graphdance ~config) graph ~hops:2 ~start in
  let q = report.Engine.queries.(0) in
  print_table ~title:"Smoke: 2-hop on tiny (2 nodes x 4 workers)"
    ~headers:[ "query"; "latency (ms)"; "rows"; "events" ]
    [
      [
        q.Engine.name;
        ms (Engine.latency_ms q);
        string_of_int (List.length q.Engine.rows);
        string_of_int report.Engine.events;
      ];
    ];
  record_report ~label:"smoke" report
