(* Adaptive repartitioning sweep (DESIGN.md "Adaptive repartitioning").

   Hash — the paper's H — spreads hubs but ignores traversal locality:
   on a power-law graph nearly every expansion crosses partitions. This
   sweep profiles the actual cross-partition traversal traffic of a
   k-hop workload, refines the owner table with the greedy
   label-propagation pass of [Repartition], and contrasts three
   strategies on the same submissions:

   - static Hash and Mod baselines;
   - Adaptive (cold): starts from the hash-mixed owner table and
     migrates vertices online, mid-workload, through the engine's
     costed migration protocol;
   - Adaptive (warm): starts from the refinement computed offline on
     the profiled Hash run — the steady state an online system reaches
     after enough rounds.

   Reported per config: cross-partition traverser bytes (the metric the
   refiner minimizes), p50/p99 latency, and migration counters. The
   refinement's own cut/imbalance accounting is printed alongside. *)

open Pstm_engine
open Harness

(* A smaller cluster than the paper testbed: 128 partitions over a
   ~30 K-vertex stand-in leaves < 300 vertices per partition, so even a
   perfect refinement keeps most edges remote. 4x8 matches the scale at
   which partition locality is measurable on the shrunken graphs. *)
let repart_cluster = cluster ~nodes:2 ~workers:8

(* The workload repeats the same start set in waves: the cold adaptive
   run migrates during the early waves and the later waves harvest the
   locality. *)
let submissions graph ~seed ~n_starts ~hops ~waves ~spacing_us =
  let starts = khop_starts graph ~seed ~n:n_starts in
  Array.init (waves * n_starts) (fun i ->
      let wave = i / n_starts and slot = i mod n_starts in
      let at = Sim_time.us ((wave * n_starts * spacing_us) + (slot * spacing_us)) in
      Engine.submit ~at (khop_program graph ~start:starts.(slot) ~hops))

let p50_latency_ms (r : Engine.report) =
  Stats.percentile (Array.map Engine.latency_ms r.Engine.queries) 50.0

let remote_trav_bytes (r : Engine.report) =
  Metrics.message_bytes r.Engine.metrics Metrics.Traverser_msg

let row ~label ~baseline report =
  let bytes = remote_trav_bytes report in
  let reduction =
    match baseline with
    | None -> "-"
    | Some base -> pct (100.0 *. (1.0 -. (fi bytes /. Float.max (fi base) 1.0)))
  in
  let m = report.Engine.metrics in
  [
    label;
    ms (p50_latency_ms report);
    ms (Engine.p99_latency_ms report);
    string_of_int bytes;
    reduction;
    string_of_int (Metrics.migrations m);
    string_of_int (Metrics.forwarded m);
  ]

let run_dataset ~name dataset =
  let graph = Pstm_gen.Datasets.load dataset in
  let subs = submissions graph ~seed:101 ~n_starts:8 ~hops:2 ~waves:12 ~spacing_us:12 in
  let n_parts =
    repart_cluster.Cluster.n_nodes * repart_cluster.Cluster.workers_per_node
  in
  let strategy partition = { Async_engine.default_options with Async_engine.partition } in
  (* Hash baseline, profiled: the recorder's traffic bag observes the
     remote dispatches without touching simulated time. *)
  let obs = Pstm_obs.Recorder.create () in
  let common = Engine.Common.with_obs obs Engine.Common.default in
  let hash =
    run_graphdance ~options:(strategy Partition.Hash) ~common ~config:repart_cluster graph subs
  in
  let profile =
    Array.map (fun (u, v, _count, bytes) -> (u, v, bytes))
      (Pstm_obs.Traffic.edges (Pstm_obs.Recorder.traffic obs))
  in
  let mod_ =
    run_graphdance ~options:(strategy Partition.Mod) ~config:repart_cluster graph subs
  in
  (* Offline refinement of the profiled Hash run: the warm-start owner
     table, plus the cut numbers for the record. *)
  let hash_assignment =
    Partition.to_assignment
      (Partition.create ~strategy:Partition.Hash ~n_parts
         ~n_vertices:(Graph.n_vertices graph) ())
  in
  let moves, stats =
    Repartition.refine ~max_imbalance:1.1 ~max_heat_imbalance:1.5 ~n_parts
      ~assignment:hash_assignment profile
  in
  ignore moves;
  let refined = Array.copy hash_assignment in
  List.iter (fun m -> refined.(m.Repartition.vertex) <- m.Repartition.dst) moves;
  let warm =
    (* Warm start: the refined table installed up front and online rounds
       disabled (min_traffic = max_int) — the steady state an online run
       converges to, without migration-protocol noise in the metrics. *)
    run_graphdance
      ~options:
        {
          (strategy Partition.Adaptive) with
          Async_engine.initial_assignment = Some refined;
          adaptive = { Async_engine.default_adaptive with Async_engine.min_traffic = max_int };
        }
      ~config:repart_cluster graph subs
  in
  let cold =
    run_graphdance ~options:(strategy Partition.Adaptive) ~config:repart_cluster graph subs
  in
  let base = Some (remote_trav_bytes hash) in
  print_table
    ~title:(Printf.sprintf "Adaptive repartitioning: %s 2-hop waves (2 nodes x 8 workers)" name)
    ~headers:
      [ "Config"; "p50 (ms)"; "p99 (ms)"; "remote trav B"; "vs hash"; "migr"; "fwd" ]
    [
      row ~label:"hash (paper H)" ~baseline:None hash;
      row ~label:"modulo" ~baseline:base mod_;
      row ~label:"adaptive cold" ~baseline:base cold;
      row ~label:"adaptive warm" ~baseline:base warm;
    ];
  Printf.printf
    "  refinement: cut %d -> %d of %d profiled bytes (%.1f%% cut reduction), %d moves, imbalance %.2f -> %.2f\n"
    stats.Repartition.cut_before stats.Repartition.cut_after stats.Repartition.total_weight
    (100.0
    *. (1.0 -. (fi stats.Repartition.cut_after /. Float.max (fi stats.Repartition.cut_before) 1.0)
       ))
    stats.Repartition.moves stats.Repartition.imbalance_before stats.Repartition.imbalance_after;
  record_report ~label:(Printf.sprintf "repartition-%s-hash" name) hash;
  record_report ~label:(Printf.sprintf "repartition-%s-adaptive-warm" name) warm;
  record_report ~label:(Printf.sprintf "repartition-%s-adaptive-cold" name) cold

let run () =
  run_dataset ~name:"lj-like" Pstm_gen.Datasets.lj_like;
  run_dataset ~name:"fs-like" Pstm_gen.Datasets.fs_like

(* The @repartition-smoke alias: one small cold-adaptive run with the
   sanitizer on, exercising profile -> refine -> migrate end to end. *)
let smoke () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let config = cluster ~nodes:2 ~workers:4 in
  let subs = submissions graph ~seed:11 ~n_starts:4 ~hops:2 ~waves:4 ~spacing_us:10 in
  let options =
    {
      Async_engine.default_options with
      Async_engine.partition = Partition.Adaptive;
      adaptive =
        {
          Async_engine.default_adaptive with
          Async_engine.refine_interval = Sim_time.us 5;
          min_traffic = 16;
        };
    }
  in
  let common = { Engine.Common.default with Engine.Common.check = true } in
  let report = run_graphdance ~options ~common ~config graph subs in
  let m = report.Engine.metrics in
  print_table ~title:"Repartition smoke: cold adaptive 2-hop waves on tiny (sanitizer on)"
    ~headers:[ "queries"; "p99 (ms)"; "migrations"; "rehomed"; "forwarded"; "stashed" ]
    [
      [
        string_of_int (Array.length report.Engine.queries);
        ms (Engine.p99_latency_ms report);
        string_of_int (Metrics.migrations m);
        string_of_int (Metrics.migrated_entries m);
        string_of_int (Metrics.forwarded m);
        string_of_int (Metrics.stashed m);
      ];
    ];
  record_report ~label:"repartition-smoke" report
