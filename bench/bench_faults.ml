(* Fault-injection sweep: GraphDance under an unreliable network.

   Sweeps the per-packet drop rate (plus one combined drop + duplicate +
   delay + straggler scenario) on the Figure 1 k-hop query with the
   sanitizer on. The claim being measured: the reliable channel absorbs
   every injected fault — all queries complete with exact results, at a
   bounded retransmission overhead — and the run stays deterministic in
   the fault seed. Run via `bench faults` (or `bench --faults`). *)

open Pstm_engine
open Harness

let scenario ~label ~spec graph ~config ~start =
  let common =
    { Engine.Common.default with Engine.Common.check = true; faults = Some spec }
  in
  let report =
    khop_report ~run:(run_graphdance ~common ~config) graph ~hops:2 ~start
  in
  let q = report.Engine.queries.(0) in
  let m = report.Engine.metrics in
  ( report,
    [
      label;
      (if Engine.is_completed q then "yes" else "TIMEOUT");
      ms (Engine.latency_ms q);
      string_of_int (Metrics.packets m);
      string_of_int (Metrics.fault_drops m);
      string_of_int (Metrics.fault_dups m);
      string_of_int (Metrics.fault_delays m);
      string_of_int (Metrics.retransmits m);
      string_of_int (Metrics.dup_dropped m);
      string_of_int (Metrics.abandoned m);
    ] )

let run () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let config = cluster ~nodes:2 ~workers:4 in
  let start = (khop_starts graph ~seed:11 ~n:1).(0) in
  let drop_rates = [ 0.0; 0.01; 0.05; 0.1; 0.2 ] in
  let rows = ref [] in
  let last_report = ref None in
  List.iter
    (fun drop ->
      let spec = { Faults.none with Faults.drop } in
      let report, row =
        scenario ~label:(Printf.sprintf "drop %.0f%%" (100.0 *. drop)) ~spec graph ~config
          ~start
      in
      last_report := Some report;
      rows := row :: !rows)
    drop_rates;
  (* Everything at once: lossy, duplicating, spiky network plus a 3x
     straggler node. *)
  let combined =
    {
      Faults.none with
      Faults.drop = 0.05;
      duplicate = 0.05;
      delay_prob = 0.1;
      delay = Pstm_sim.Sim_time.us 300;
      slow_nodes = [ (1, 3.0) ];
    }
  in
  let report, row = scenario ~label:"combined" ~spec:combined graph ~config ~start in
  rows := row :: !rows;
  print_table ~title:"Fault sweep: 2-hop on tiny (2 nodes x 4 workers, sanitizer on)"
    ~headers:
      [ "scenario"; "completed"; "latency (ms)"; "packets"; "drops"; "dups"; "delays";
        "retx"; "dedup"; "abandoned" ]
    (List.rev !rows);
  record_report ~label:"faults-combined" report;
  (* Same-seed determinism, asserted here too so the bench itself fails
     loudly if the fault plane regresses. *)
  let repeat () =
    let _, row = scenario ~label:"combined" ~spec:combined graph ~config ~start in
    row
  in
  if repeat () <> repeat () then failwith "fault sweep is not deterministic in the seed";
  match !last_report with
  | Some r when not (Engine.all_completed r) ->
    failwith "fault sweep: a query failed to complete despite reliable delivery"
  | _ -> ()
