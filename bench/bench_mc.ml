(* Model-checking smoke: the schedule explorer over every registry engine
   plus the mutation-catching table, with its counters mirrored into
   --json so CI pins the explorer's vital signs (schedules run,
   dependence classes seen, shrink effort).

   Small budgets on purpose: this is a rot detector for the conformance
   plane (monitors wired, choosers honored, mutants still caught), not a
   soundness proof — test/test_mc.ml and `graphdance mc` carry the full
   budgets. *)

open Pstm_engine
module Explore = Pstm_analysis.Explore
module Mc = Pstm_mc.Mc
open Harness

let budget = 16
let walks = 4

let smoke () =
  (* Every registry engine survives a small sweep of the default
     scenario. Engines without an event queue (bsp, local) contribute
     zero choice points — the sweep then just re-checks oracle equality
     schedule after schedule. *)
  let registry =
    Registry.make
      ~cluster_config:{ Cluster.default_config with Cluster.n_nodes = 3; workers_per_node = 3 }
      ()
  in
  let engine_rows =
    List.map
      (fun (name, e) ->
        let report =
          Explore.explore ~budget ~random_walks:walks
            ~run:(Mc.engine_runner e Mc.default)
            ()
        in
        let verdict =
          match report.Explore.counterexample with
          | None -> "clean"
          | Some cx -> "VIOLATION " ^ Explore.token_to_string cx.Explore.cx_token
        in
        (match report.Explore.counterexample with
        | None -> ()
        | Some cx ->
          Printf.eprintf "mc-smoke: %s violated: %s\n" name cx.Explore.cx_detail;
          exit 1);
        record_json
          (J.Obj
             [
               ("kind", J.Str "mc");
               ("label", J.Str ("engine:" ^ name));
               ("schedules", J.Int report.Explore.schedules);
               ("choice_points", J.Int report.Explore.choice_points);
               ("dependence_classes", J.Int report.Explore.max_classes);
             ]);
        [
          name;
          string_of_int report.Explore.schedules;
          string_of_int report.Explore.choice_points;
          string_of_int report.Explore.max_classes;
          verdict;
        ])
      registry
  in
  print_table ~title:"mc-smoke: unmutated conformance sweep (khop scenario)"
    ~headers:[ "Engine"; "Schedules"; "Choice points"; "Dep. classes"; "Verdict" ]
    engine_rows;
  (* Every protocol mutant is caught within the small budget. *)
  let mutant_rows =
    List.map
      (fun m ->
        let s = Mc.for_mutation m in
        let report =
          Explore.explore ~budget ~random_walks:walks ~run:(Mc.runner ~mutation:m s) ()
        in
        match report.Explore.counterexample with
        | None ->
          Printf.eprintf "mc-smoke: mutant %s escaped\n" (Mutation.name m);
          exit 1
        | Some cx ->
          let shrink_len = List.length cx.Explore.cx_token in
          record_json
            (J.Obj
               [
                 ("kind", J.Str "mc");
                 ("label", J.Str ("mutant:" ^ Mutation.name m));
                 ("scenario", J.Str (Mc.name s));
                 ("schedules", J.Int report.Explore.schedules);
                 ("dependence_classes", J.Int report.Explore.max_classes);
                 ("shrink_replays", J.Int cx.Explore.cx_shrink_tries);
                 ("token_length", J.Int shrink_len);
               ]);
          [
            Mutation.name m;
            Mc.name s;
            string_of_int report.Explore.schedules;
            Explore.token_to_string cx.Explore.cx_token;
            string_of_int shrink_len;
          ])
      Mutation.all
  in
  print_table ~title:"mc-smoke: mutation catching"
    ~headers:[ "Mutant"; "Scenario"; "Schedules to catch"; "Replay token"; "Token length" ]
    mutant_rows
