(** LDBC SNB interactive workload driver.

    Queries are issued at per-type frequencies compressed by the TCR
    (lower TCR = higher rate, §V-A1); a system "keeps up" with a TCR when
    ≥95% of queries complete with tail latency inside the ~50 ms
    interactive budget. *)

type arrival = {
  name : string;
  make : Snb_gen.t -> Prng.t -> Program.t;
  base_interval : Sim_time.t;
}

(** The IC + IS read mix with their relative frequencies. *)
val workload_mix : arrival list

type mixed_result = {
  tcr : float;
  per_query : (string * Stats.summary) list; (** latency (ms) by query type *)
  issued : int;
  completed : int;
  kept_up : bool;
  report : Engine.report;
}

(** Build the arrival schedule of a mixed run (sorted by arrival time;
    deterministic in the seed). *)
val schedule : Snb_gen.t -> tcr:float -> duration:Sim_time.t -> seed:int -> Engine.submission array

(** Run the read mix on the asynchronous (GraphDance) engine. [common]
    carries obs/check/seed/faults; its deadline is overridden with the
    run's own cutoff (duration + 500 ms). *)
val run_mixed_async :
  ?options:Async_engine.options ->
  ?channel:Channel.config ->
  ?common:Engine.Common.t ->
  cluster_config:Cluster.config ->
  duration:Sim_time.t ->
  tcr:float ->
  seed:int ->
  Snb_gen.t ->
  mixed_result

(** Run the read mix on the BSP engine (TigerGraph role by default);
    [common] as in {!run_mixed_async}. *)
val run_mixed_bsp :
  ?profile:Bsp_engine.profile ->
  ?common:Engine.Common.t ->
  cluster_config:Cluster.config ->
  duration:Sim_time.t ->
  tcr:float ->
  seed:int ->
  Snb_gen.t ->
  mixed_result

(** Minimum latency: queries one at a time, averaged over parameter
    draws; returns mean latency in ms. *)
val sequential_latency :
  run:(Engine.submission array -> Engine.report) ->
  make:(Snb_gen.t -> Prng.t -> Program.t) ->
  repeats:int ->
  seed:int ->
  Snb_gen.t ->
  float

(** Maximum throughput: a closed batch of [streams] concurrent instances;
    completed queries per simulated second. *)
val max_throughput :
  run:(Engine.submission array -> Engine.report) ->
  make:(Snb_gen.t -> Prng.t -> Program.t) ->
  streams:int ->
  seed:int ->
  Snb_gen.t ->
  float

type update_result = {
  per_kind : (string * Stats.summary) list;
  committed : int;
  aborted : int;
}

(** Run the update mix against the transactional substrate at the rate
    implied by [tcr]. *)
val run_updates :
  ?n_nodes:int -> duration:Sim_time.t -> tcr:float -> seed:int -> Snb_gen.t -> update_result
