(* LDBC SNB interactive workload driver.

   Mirrors the benchmark's load model: every query type is issued at its
   own predefined frequency, and the Time Compression Ratio (TCR) scales
   all inter-arrival intervals — a lower TCR issues queries faster and
   demands more throughput (§V-A1). A system "fails" a TCR when it cannot
   keep up with the issuance rate, which is what happens to the BSP
   baseline at TCR 0.03 in Figure 7.

   Update operations of the interactive workload run against the
   transactional substrate (pstm_txn) and are benchmarked separately; the
   mixed run here issues the IC and IS read mix, as plotted in Figure 7. *)

type arrival = {
  name : string;
  make : Snb_gen.t -> Prng.t -> Program.t;
  base_interval : Sim_time.t; (* inter-arrival at TCR = 1 *)
}

(* Complex reads are rarer than short reads, as in the LDBC frequency
   table. *)
let workload_mix : arrival list =
  List.map
    (fun (name, make) -> { name; make; base_interval = Sim_time.ms 50 })
    Ic_queries.all
  @ List.map
      (fun (name, make) -> { name; make; base_interval = Sim_time.ms 8 })
      Is_queries.all

type mixed_result = {
  tcr : float;
  per_query : (string * Stats.summary) list; (* latency in simulated ms *)
  issued : int;
  completed : int;
  kept_up : bool; (* LDBC-style on-time rule: 95% done AND p99 within 50 ms *)
  report : Engine.report;
}

(* Build the submission schedule for a mixed run of [duration]. *)
let schedule data ~tcr ~duration ~seed =
  let prng = Prng.create seed in
  let submissions = Vec.create ~dummy:(Engine.submit (Ic_queries.ic13 data prng)) in
  List.iter
    (fun a ->
      let interval = Float.max 1.0 (float_of_int (Sim_time.to_ns a.base_interval) *. tcr) in
      let t = ref (Prng.float prng interval) in
      while int_of_float !t < Sim_time.to_ns duration do
        let program = a.make data prng in
        Vec.push submissions (Engine.submit ~at:(Sim_time.of_float_ns !t) program);
        t := !t +. Prng.exponential prng ~mean:interval
      done)
    workload_mix;
  let arr = Vec.to_array submissions in
  (* Interleave deterministically by arrival time. *)
  Array.sort (fun a b -> Sim_time.compare a.Engine.at b.Engine.at) arr;
  arr

let summarize_mixed ~tcr report =
  let by_name = Hashtbl.create 32 in
  Array.iter
    (fun (q : Engine.query_report) ->
      let samples =
        match Hashtbl.find_opt by_name q.Engine.name with
        | Some s -> s
        | None ->
          let s = Vec.create ~dummy:0.0 in
          Hashtbl.add by_name q.Engine.name s;
          s
      in
      Vec.push samples (Engine.latency_ms q))
    report.Engine.queries;
  let names = List.map (fun a -> a.name) workload_mix in
  let per_query =
    List.filter_map
      (fun name ->
        Option.map
          (fun samples -> (name, Stats.summarize (Vec.to_array samples)))
          (Hashtbl.find_opt by_name name))
      names
  in
  let issued = Array.length report.Engine.queries in
  let completed =
    Array.fold_left
      (fun n (q : Engine.query_report) -> if Engine.is_completed q then n + 1 else n)
      0 report.Engine.queries
  in
  (* The paper cites the ~50 ms interactive budget (A1, SIGMOD'20): a
     system keeps up with a TCR only if nearly everything completes and
     tail latency stays inside that budget. *)
  let all_latencies =
    Array.map (fun q -> Engine.latency_ms q) report.Engine.queries
  in
  let p99 = Stats.percentile all_latencies 99.0 in
  {
    tcr;
    per_query;
    issued;
    completed;
    kept_up =
      issued = 0
      || (float_of_int completed >= 0.95 *. float_of_int issued && p99 <= 50.0);
    report;
  }

(* The mixed run stops shortly after issuance ends: whatever has not
   completed by then counts against the on-time rule. [common] carries
   the caller's obs/check/faults; its deadline is overridden here. *)
let mixed_common common ~duration =
  let common = Option.value common ~default:Engine.Common.default in
  { common with Engine.Common.deadline = Some (Sim_time.add duration (Sim_time.ms 500)) }

(* Run the mixed workload on the asynchronous (GraphDance) engine. *)
let run_mixed_async ?(options = Async_engine.default_options)
    ?(channel = Channel.default_config) ?common ~cluster_config ~duration ~tcr ~seed data =
  let submissions = schedule data ~tcr ~duration ~seed in
  let report =
    Async_engine.run ~options
      ~common:(mixed_common common ~duration)
      ~cluster_config ~channel_config:channel ~graph:data.Snb_gen.graph submissions
  in
  summarize_mixed ~tcr report

(* Run the mixed workload on the BSP engine (TigerGraph role by default,
   as in Figure 7). *)
let run_mixed_bsp ?(profile = Bsp_engine.Tigergraph_role) ?common ~cluster_config ~duration
    ~tcr ~seed data =
  let submissions = schedule data ~tcr ~duration ~seed in
  let report =
    Bsp_engine.run ~profile
      ~common:(mixed_common common ~duration)
      ~cluster_config ~graph:data.Snb_gen.graph submissions
  in
  summarize_mixed ~tcr report

(* --- Individual-query helpers (Figure 8) --- *)

(* Minimum latency: queries submitted one at a time, averaged over
   [repeats] parameter choices. *)
let sequential_latency ~run ~make ~repeats ~seed data =
  let prng = Prng.create seed in
  let samples =
    Array.init repeats (fun _ ->
        let program = make data prng in
        let report = run [| Engine.submit program |] in
        Engine.latency_ms report.Engine.queries.(0))
  in
  Stats.mean samples

(* Maximum throughput: a closed batch of [streams] concurrent instances;
   completed queries per simulated second. *)
let max_throughput ~run ~make ~streams ~seed data =
  let prng = Prng.create seed in
  let submissions = Array.init streams (fun _ -> Engine.submit (make data prng)) in
  let report = run submissions in
  Engine.throughput_qps report

(* --- Update operations (the UP side of the interactive workload) --- *)

type update_result = {
  per_kind : (string * Stats.summary) list; (* latency in simulated ms *)
  committed : int;
  aborted : int;
}

(* Run the update mix against the transactional substrate at the workload
   frequency implied by [tcr]; latencies come from the §IV-C cost model
   (manager round trips, locks, TEL appends), conflicts from the actual
   MV2PL lock table. *)
let run_updates ?(n_nodes = 8) ~duration ~tcr ~seed data =
  let store = Updates.store_of_data data ~n_nodes in
  let prng = Prng.create seed in
  let net = Netmodel.default in
  let costs = Cluster.default_costs in
  let base_interval = float_of_int (Sim_time.to_ns (Sim_time.ms 4)) in
  let interval = Float.max 1.0 (base_interval *. tcr) in
  let committed = ref 0 and aborted = ref 0 in
  let samples = Hashtbl.create 8 in
  let t = ref 0.0 in
  while int_of_float !t < Sim_time.to_ns duration do
    let kind = Prng.pick prng (Array.of_list Updates.all_kinds) in
    (match Updates.apply store prng kind with
    | Updates.Committed ->
      incr committed;
      let latency = Sim_time.to_ms (Updates.simulated_latency net costs kind) in
      let bucket =
        match Hashtbl.find_opt samples (Updates.kind_name kind) with
        | Some b -> b
        | None ->
          let b = Vec.create ~dummy:0.0 in
          Hashtbl.add samples (Updates.kind_name kind) b;
          b
      in
      Vec.push bucket latency
    | Updates.Aborted -> incr aborted);
    t := !t +. Prng.exponential prng ~mean:interval
  done;
  let per_kind =
    List.filter_map
      (fun kind ->
        let name = Updates.kind_name kind in
        Option.map
          (fun b -> (name, Stats.summarize (Vec.to_array b)))
          (Hashtbl.find_opt samples name))
      Updates.all_kinds
  in
  { per_kind; committed = !committed; aborted = !aborted }
