(* The 14 LDBC SNB Interactive Complex queries, adapted to the PSTM
   operator set.

   Each query keeps the defining operator mix of its LDBC original —
   multi-hop friendship expansion, filtering, deduplication, join,
   aggregation, top-k — expressed through the Gremlin-like DSL (IC13/IC14
   drive the core API directly, since shortest-path needs the Visit
   distance register). Parameters are drawn deterministically from the
   generated dataset by the supplied generator, mirroring LDBC's
   parameter curation. *)

open Dsl

let person_lookup (d : Snb_gen.t) prng =
  let pid = Prng.int prng (Array.length d.Snb_gen.persons) in
  (pid, v_lookup ~label:Snb_schema.person ~key:"id" (int pid))

let some_tag (d : Snb_gen.t) prng = Fmt.str "Tag_%d" (Prng.int prng (Array.length d.Snb_gen.tags))

let some_country (d : Snb_gen.t) prng =
  Fmt.str "Country_%d" (Prng.int prng (Array.length d.Snb_gen.countries))

let some_date prng = Prng.int_in_range prng ~lo:Snb_gen.date_lo ~hi:Snb_gen.date_hi

let compile d name ast = Compile.compile ~name d.Snb_gen.graph ast

(* IC1: friends (<=3 hops) with a given first name, ranked. *)
let ic1 d prng =
  let _, start = person_lookup d prng in
  let name = Prng.pick prng Snb_gen.first_names in
  compile d "IC1"
    (start |> as_ "p"
    |> repeat_out Snb_schema.knows ~times:3
    |> where_neq "p"
    |> has "firstName" (eq (str name))
    |> top_k "birthday" 20 |> build)

(* IC2: recent messages by direct friends, newest first. *)
let ic2 d prng =
  let _, start = person_lookup d prng in
  let date = some_date prng in
  compile d "IC2"
    (start
    |> out_ Snb_schema.knows
    |> in_ Snb_schema.has_creator
    |> has "creationDate" (lte (int date))
    |> top_k "creationDate" 20 |> build)

(* IC3: messages of 2-hop friends located in a given country. *)
let ic3 d prng =
  let _, start = person_lookup d prng in
  let country = some_country d prng in
  compile d "IC3"
    (start |> as_ "p"
    |> repeat_out Snb_schema.knows ~times:2
    |> where_neq "p"
    |> in_ Snb_schema.has_creator
    |> out_ Snb_schema.is_located_in
    |> has "name" (eq (str country))
    |> count |> build)

(* IC4: tags of friends' posts in a date window, with counts. *)
let ic4 d prng =
  let _, start = person_lookup d prng in
  let d1 = some_date prng in
  let d2 = min Snb_gen.date_hi (d1 + 200) in
  compile d "IC4"
    (start
    |> out_ Snb_schema.knows
    |> in_ Snb_schema.has_creator
    |> has_label Snb_schema.post
    |> has "creationDate" (gte (int d1))
    |> has "creationDate" (lte (int d2))
    |> out_ Snb_schema.has_tag
    |> group_count "name" |> build)

(* IC5: forums that 2-hop friends belong to, by membership count. *)
let ic5 d prng =
  let _, start = person_lookup d prng in
  compile d "IC5"
    (start |> as_ "p"
    |> repeat_out Snb_schema.knows ~times:2
    |> where_neq "p"
    |> in_ Snb_schema.has_member
    |> group_count "title" |> build)

(* IC6: tags co-occurring with a given tag on 2-hop friends' posts — the
   Figure 3 pattern; the cost-based planner decides between bidirectional
   join and unidirectional expansion. *)
let ic6_sides d prng =
  let _, start = person_lookup d prng in
  let tagname = some_tag d prng in
  let left =
    Dsl.traversal
      (start |> as_ "p"
      |> repeat_out Snb_schema.knows ~times:2
      |> where_neq "p"
      |> in_ Snb_schema.has_creator
      |> has_label Snb_schema.post)
  in
  let right =
    Dsl.traversal
      (v_lookup ~label:Snb_schema.tag ~key:"name" (str tagname)
      |> in_ Snb_schema.has_tag
      |> has_label Snb_schema.post)
  in
  let post_steps =
    [
      Ast.Out (Some Snb_schema.has_tag);
      Ast.Has ("name", Ast.Ne (Value.Str tagname));
      Ast.Group_count "name";
    ]
  in
  (left, right, post_steps)

let ic6 d prng =
  let left, right, post = ic6_sides d prng in
  compile d "IC6" (Ast.Join_of { left; right; post })

(* IC7: people who liked this person's messages, most recent first. *)
let ic7 d prng =
  let _, start = person_lookup d prng in
  compile d "IC7"
    (start
    |> in_ Snb_schema.has_creator
    |> in_ Snb_schema.likes
    |> top_k "creationDate" 20 |> build)

(* IC8: recent replies to this person's messages. *)
let ic8 d prng =
  let _, start = person_lookup d prng in
  compile d "IC8"
    (start
    |> in_ Snb_schema.has_creator
    |> in_ Snb_schema.reply_of
    |> top_k "creationDate" 20 |> build)

(* IC9: recent messages by friends within 2 hops before a date. *)
let ic9 d prng =
  let _, start = person_lookup d prng in
  let date = some_date prng in
  compile d "IC9"
    (start |> as_ "p"
    |> repeat_out Snb_schema.knows ~times:2
    |> where_neq "p"
    |> in_ Snb_schema.has_creator
    |> has "creationDate" (lt (int date))
    |> top_k "creationDate" 20 |> build)

(* IC10: friend-of-friend recommendation by birthday window. *)
let ic10 d prng =
  let _, start = person_lookup d prng in
  let b1 = Prng.int_in_range prng ~lo:3_000 ~hi:10_000 in
  compile d "IC10"
    (start |> as_ "p"
    |> repeat_out Snb_schema.knows ~times:2
    |> where_neq "p"
    |> has "birthday" (gte (int b1))
    |> has "birthday" (lte (int (b1 + 1_000)))
    |> top_k "creationDate" 10 |> build)

(* IC11: 2-hop friends working at companies in a given country. *)
let ic11 d prng =
  let _, start = person_lookup d prng in
  let country = some_country d prng in
  compile d "IC11"
    (start |> as_ "p"
    |> repeat_out Snb_schema.knows ~times:2
    |> where_neq "p"
    |> out_ Snb_schema.work_at
    |> out_ Snb_schema.is_located_in
    |> has "name" (eq (str country))
    |> count |> build)

(* IC12: expert search — tags of posts that friends commented on. *)
let ic12 d prng =
  let _, start = person_lookup d prng in
  compile d "IC12"
    (start
    |> out_ Snb_schema.knows
    |> in_ Snb_schema.has_creator
    |> has_label Snb_schema.comment
    |> out_ Snb_schema.reply_of
    |> out_ Snb_schema.has_tag
    |> group_count "name" |> build)

(* IC13: shortest path length between two persons. Built directly on the
   step ISA: the Visit distance register is the answer. *)
let ic13 d prng =
  let graph = d.Snb_gen.graph in
  let schema = Graph.schema graph in
  let p1 = Prng.int prng (Array.length d.Snb_gen.persons) in
  let p2 = Prng.int prng (Array.length d.Snb_gen.persons) in
  let id_key = Schema.property_key_exn schema "id" in
  let person_l = Schema.vertex_label_exn schema Snb_schema.person in
  let knows_l = Schema.edge_label_exn schema Snb_schema.knows in
  let steps =
    [|
      { Step.op =
          Step.Index_lookup { vertex_label = Some person_l; key = id_key; value = Value.Int p1 };
        next = 1 };
      { Step.op = Step.Set_reg { reg = 0; expr = Step.Const (Value.Int 0) }; next = 2 };
      { Step.op = Step.Visit { dist_reg = 0; max_hops = 4; cont = 4; emit_improved = true }; next = 3 };
      { Step.op = Step.Expand { dir = Graph.Out; edge_label = Some knows_l }; next = 2 };
      { Step.op =
          Step.Filter
            (Step.And
               ( Step.Cmp (Step.Eq, Step.Vertex_label, Step.Const (Value.Int person_l)),
                 Step.Cmp (Step.Eq, Step.Prop id_key, Step.Const (Value.Int p2)) ));
        next = 5 };
      { Step.op = Step.Aggregate { agg = Step.Min (Step.Reg 0); reg = 1 }; next = 6 };
      { Step.op = Step.Emit [| Step.Reg 1 |]; next = -1 };
    |]
  in
  (* Hand-built on the raw ISA, so run it through the static verifier the
     same way Compile.finish does for DSL-compiled programs. *)
  Pstm_analysis.Verify.program_exn (Program.make ~name:"IC13" ~steps ~n_registers:2 ~entries:[| 0 |])

(* IC14: interaction paths — 2-hop friends adjacent to the second person
   (a path count between the endpoints). *)
let ic14 d prng =
  let p1 = Prng.int prng (Array.length d.Snb_gen.persons) in
  let p2 = Prng.int prng (Array.length d.Snb_gen.persons) in
  compile d "IC14"
    (v_lookup ~label:Snb_schema.person ~key:"id" (int p1)
    |> as_ "p"
    |> repeat_out Snb_schema.knows ~times:2
    |> where_neq "p"
    |> out_ Snb_schema.knows
    |> has_label Snb_schema.person
    |> has "id" (eq (int p2))
    |> count |> build)

let all : (string * (Snb_gen.t -> Prng.t -> Program.t)) list =
  [
    ("IC1", ic1);
    ("IC2", ic2);
    ("IC3", ic3);
    ("IC4", ic4);
    ("IC5", ic5);
    ("IC6", ic6);
    ("IC7", ic7);
    ("IC8", ic8);
    ("IC9", ic9);
    ("IC10", ic10);
    ("IC11", ic11);
    ("IC12", ic12);
    ("IC13", ic13);
    ("IC14", ic14);
  ]
