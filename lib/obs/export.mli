(** JSON views of simulator counters, latency histograms, and sample
    summaries; field order fixed for byte-stable output. *)

val metrics_json : Metrics.t -> Json.t
val histogram_json : Histogram.t -> Json.t
val summary_json : Stats.summary -> Json.t
