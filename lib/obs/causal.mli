(** Causal DAG over sim-time hand-offs, with critical-path latency
    attribution (EXPLAIN LATENCY).

    The async engine registers a node per hand-off instant and edges from
    the events that caused it; each edge covers exactly the sim-time
    interval between its endpoints and carries a category. The engine
    adds incoming edges so the *last* one added is the binding cause, so
    walking binding edges from the tracker-release node back to the
    submit node yields abutting segments whose durations telescope to the
    end-to-end query latency exactly. *)

type category =
  | Compute  (** worker CPU executing steps, batches, flushes *)
  | Queue  (** hand-off waited in a queue or stash *)
  | Network  (** buffer dwell, combining window, NIC, wire, shm hop *)
  | Retransmit  (** delivery completed by a retransmitted copy *)
  | Barrier  (** waiting for a collective (aggregation partials, setup acks) *)
  | Tracker  (** progress-tracker coordination *)

(** Fixed presentation order. *)
val categories : category list

val category_name : category -> string

type t

(** The inert instance: every entry point returns immediately. *)
val disabled : t

(** [capacity] bounds the node store; past it, new nodes are refused (not
    wrapped) and counted in {!dropped}, so a truncated DAG reports itself
    instead of yielding a corrupted path. *)
val create : ?capacity:int -> unit -> t

val enabled : t -> bool
val n_nodes : t -> int
val n_edges : t -> int
val dropped : t -> int

(** [node t ~qid ~name ~ts] registers a hand-off instant and returns its
    id, or [-1] when disabled or truncated. [qid] is [-1] for nodes not
    owned by a query (migration protocol traffic). *)
val node : t -> qid:int -> name:string -> ts:Sim_time.t -> int

(** [edge t ~src ~dst cat] — caller must add the binding cause *last*.
    Ignored when either endpoint is [-1]. *)
val edge : t -> src:int -> dst:int -> category -> unit

(** Mark the query's root (submission instant) and terminal (tracker
    release) nodes. *)
val set_submit : t -> qid:int -> int -> unit

val set_release : t -> qid:int -> int -> unit

(** Queries with a registered release node, ascending. *)
val queries : t -> int list

type seg = {
  seg_cat : category;
  seg_src : string;  (** site label of the causing node *)
  seg_dst : string;
  seg_t0 : Sim_time.t;
  seg_t1 : Sim_time.t;
}

val seg_dur : seg -> Sim_time.t

(** Binding-edge chain from submit to release in time order, or [None]
    when the query never released, the store was truncated, or the chain
    does not reach the submit node. *)
val critical_path : t -> qid:int -> seg list option

(** Per-category critical-path time in {!categories} order; the sums
    partition the end-to-end latency exactly. *)
val attribution : t -> qid:int -> (category * Sim_time.t) list option

val attribution_total : (category * Sim_time.t) list -> Sim_time.t

(** Category with the largest share (ties keep the earlier category). *)
val dominant : (category * Sim_time.t) list -> category * Sim_time.t

(** The EXPLAIN LATENCY table for one query. *)
val pp_explain : Format.formatter -> t -> qid:int -> unit

(** Deterministic JSON: store totals plus one attribution object per
    released query. *)
val query_json : t -> qid:int -> Json.t

val to_json : t -> Json.t
