(* Causal DAG over sim-time hand-offs — the EXPLAIN LATENCY side of the
   observability layer.

   Every hand-off the async engine performs (seed injection, step
   execution, batched frontier execution, remote dispatch and delivery,
   retransmitted delivery, migration stash-drain, aggregation barrier,
   progress-tracker traffic, tracker release) registers a *node* (an
   instant in sim-time) and *edges* from the events that caused it. An
   edge [u -> v] covers exactly the interval [ts u, ts v] and carries a
   category saying what the query was doing (or waiting on) during it.

   Critical-path extraction exploits the determinism of the simulator:
   the engine adds incoming edges so that the *last* edge added into a
   node is the binding cause — the event that actually determined the
   node's time (e.g. a worker-occupancy edge is added after the
   queue-wait edge exactly when the worker was busy up to the execution
   instant). Walking binding edges from the tracker-release node back to
   the submit node therefore yields a chain of abutting intervals whose
   durations telescope to the end-to-end query latency *exactly* — the
   per-category attribution partitions the latency with no tolerance.

   The engine only ever adds binding edges within one query's chain (a
   task delayed by another query's compute is blamed as queue-wait, not
   walked into the other query's history), so the walk always terminates
   at the owning query's submit node. *)

type category =
  | Compute (* worker CPU executing steps, batches, flushes *)
  | Queue (* hand-off sat in a worker queue / stash while the worker was elsewhere *)
  | Network (* TLC buffer dwell, NLC window, NIC serialization, wire, shm hop *)
  | Retransmit (* delivery completed by a retransmitted copy: drop + timeout + resend *)
  | Barrier (* waiting for a collective: aggregation partials, setup acks *)
  | Tracker (* progress-tracker coordination: coalescer dwell, receipt, release *)

let categories = [ Compute; Queue; Network; Retransmit; Barrier; Tracker ]

let category_name = function
  | Compute -> "compute"
  | Queue -> "queue-wait"
  | Network -> "network"
  | Retransmit -> "retransmit-recovery"
  | Barrier -> "barrier"
  | Tracker -> "tracker-coordination"

let category_index = function
  | Compute -> 0
  | Queue -> 1
  | Network -> 2
  | Retransmit -> 3
  | Barrier -> 4
  | Tracker -> 5

type t = {
  enabled : bool;
  capacity : int;
  qids : int Vec.t; (* per node: owning query (-1 for system nodes) *)
  times : Sim_time.t Vec.t; (* per node: instant *)
  names : string Vec.t; (* per node: static site label *)
  incoming : (int * category) list Vec.t; (* per node: edges, binding cause first *)
  releases : (int, int) Hashtbl.t; (* qid -> release node *)
  submits : (int, int) Hashtbl.t; (* qid -> submit node *)
  mutable n_edges : int;
  mutable dropped : int; (* node requests refused after [capacity] *)
}

let disabled =
  {
    enabled = false;
    capacity = 0;
    qids = Vec.create ~dummy:0;
    times = Vec.create ~dummy:Sim_time.zero;
    names = Vec.create ~dummy:"";
    incoming = Vec.create ~dummy:[];
    releases = Hashtbl.create 1;
    submits = Hashtbl.create 1;
    n_edges = 0;
    dropped = 0;
  }

let create ?(capacity = 1 lsl 20) () =
  {
    enabled = true;
    capacity;
    qids = Vec.create ~dummy:0;
    times = Vec.create ~dummy:Sim_time.zero;
    names = Vec.create ~dummy:"";
    incoming = Vec.create ~dummy:[];
    releases = Hashtbl.create 16;
    submits = Hashtbl.create 16;
    n_edges = 0;
    dropped = 0;
  }

let enabled t = t.enabled
let n_nodes t = Vec.length t.times
let n_edges t = t.n_edges
let dropped t = t.dropped

(* Truncation refuses new nodes rather than wrapping: overwriting old
   nodes would sever every path through them, silently corrupting the
   attribution. A refused node returns -1, which [edge] ignores, so a
   truncated DAG stays internally consistent and reports itself via
   [dropped]. *)
let node t ~qid ~name ~ts =
  if not t.enabled then -1
  else if n_nodes t >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    -1
  end
  else begin
    let id = n_nodes t in
    Vec.push t.qids qid;
    Vec.push t.times ts;
    Vec.push t.names name;
    Vec.push t.incoming [];
    id
  end

let edge t ~src ~dst cat =
  if t.enabled && src >= 0 && dst >= 0 then begin
    Vec.set t.incoming dst ((src, cat) :: Vec.get t.incoming dst);
    t.n_edges <- t.n_edges + 1
  end

let set_submit t ~qid id = if t.enabled && id >= 0 then Hashtbl.replace t.submits qid id
let set_release t ~qid id = if t.enabled && id >= 0 then Hashtbl.replace t.releases qid id

let queries t =
  (* det-ok: fold order is erased by the sort on the int keys below *)
  let qids = Hashtbl.fold (fun qid _ acc -> qid :: acc) t.releases [] in
  List.sort Int.compare qids

type seg = {
  seg_cat : category;
  seg_src : string;
  seg_dst : string;
  seg_t0 : Sim_time.t;
  seg_t1 : Sim_time.t;
}

let seg_dur s = Sim_time.diff s.seg_t1 s.seg_t0

(* Walk binding edges (head of each incoming list) from the release node
   back to the root; segments come out in seed-to-release order. Returns
   [None] when the query never released, the DAG was truncated, or the
   walk does not terminate at this query's submit node (a broken chain —
   an instrumentation bug, not a property of the run). *)
let critical_path t ~qid =
  if not t.enabled || t.dropped > 0 then None
  else
    match Hashtbl.find_opt t.releases qid with
    | None -> None
    | Some release ->
      let submit = Hashtbl.find_opt t.submits qid in
      let rec walk v acc steps =
        if steps > n_nodes t then None (* cycle guard; cannot happen in a DAG *)
        else
          match Vec.get t.incoming v with
          | [] -> if submit = Some v then Some acc else None
          | (u, cat) :: _ ->
            let s =
              {
                seg_cat = cat;
                seg_src = Vec.get t.names u;
                seg_dst = Vec.get t.names v;
                seg_t0 = Vec.get t.times u;
                seg_t1 = Vec.get t.times v;
              }
            in
            walk u (s :: acc) (steps + 1)
      in
      walk release [] 0

(* Per-category sums over the critical path, in [categories] order. The
   segments abut, so the sums partition [release - submit] exactly. *)
let attribution t ~qid =
  match critical_path t ~qid with
  | None -> None
  | Some segs ->
    let sums = Array.make 6 Sim_time.zero in
    List.iter
      (fun s ->
        let i = category_index s.seg_cat in
        sums.(i) <- Sim_time.add sums.(i) (seg_dur s))
      segs;
    Some (List.map (fun c -> (c, sums.(category_index c))) categories)

let attribution_total a =
  List.fold_left (fun acc (_, d) -> Sim_time.add acc d) Sim_time.zero a

let dominant a =
  List.fold_left (fun (bc, bd) (c, d) -> if Sim_time.compare d bd > 0 then (c, d) else (bc, bd))
    (List.hd a) (List.tl a)

(* The EXPLAIN LATENCY table: one row per category, blame share against
   the exact end-to-end latency. *)
let pp_explain ppf t ~qid =
  match (attribution t ~qid, critical_path t ~qid) with
  | None, _ | _, None ->
    if t.dropped > 0 then
      Fmt.pf ppf "EXPLAIN LATENCY q%d: causal DAG truncated (%d nodes dropped)@." qid t.dropped
    else Fmt.pf ppf "EXPLAIN LATENCY q%d: no complete causal path (query not released?)@." qid
  | Some attr, Some segs ->
    let total = attribution_total attr in
    let total_f = float_of_int (Sim_time.to_ns total) in
    Fmt.pf ppf "EXPLAIN LATENCY q%d: critical path %.3f ms over %d segments@." qid
      (Sim_time.to_ms total) (List.length segs);
    Fmt.pf ppf "  %-21s %12s %7s@." "category" "time (ms)" "share";
    List.iter
      (fun (c, d) ->
        let share = if total_f = 0.0 then 0.0 else 100.0 *. float_of_int (Sim_time.to_ns d) /. total_f in
        Fmt.pf ppf "  %-21s %12.3f %6.1f%%@." (category_name c) (Sim_time.to_ms d) share)
      attr;
    let dc, dd = dominant attr in
    let share = if total_f = 0.0 then 0.0 else 100.0 *. float_of_int (Sim_time.to_ns dd) /. total_f in
    Fmt.pf ppf "  dominant: %s (%.1f%%)@." (category_name dc) share

(* Deterministic JSON: category order fixed, one object per query. *)
let query_json t ~qid =
  match attribution t ~qid with
  | None -> Json.Obj [ ("qid", Json.Int qid); ("complete", Json.Bool false) ]
  | Some attr ->
    let total = attribution_total attr in
    let dc, _ = dominant attr in
    Json.Obj
      [
        ("qid", Json.Int qid);
        ("complete", Json.Bool true);
        ("critical_path_ns", Json.Int (Sim_time.to_ns total));
        ( "attribution_ns",
          Json.Obj (List.map (fun (c, d) -> (category_name c, Json.Int (Sim_time.to_ns d))) attr) );
        ("dominant", Json.Str (category_name dc));
      ]

let to_json t =
  Json.Obj
    [
      ("nodes", Json.Int (n_nodes t));
      ("edges", Json.Int t.n_edges);
      ("dropped", Json.Int t.dropped);
      ("queries", Json.List (List.map (fun qid -> query_json t ~qid) (queries t)));
    ]
