(* Structured metrics sink: JSON views of the simulator counters and the
   shared latency histogram, shared by the bench harness, the CLI, and
   the engine report exporter. All field orders are fixed so the output
   is byte-stable across runs. *)

let opt_float = function None -> Json.Null | Some x -> Json.Float x

let histogram_json (h : Histogram.t) =
  let p50, p95, p99 = Histogram.quantiles h in
  Json.Obj
    [
      ("count", Json.Int (Histogram.count h));
      ("mean", Json.Float (Histogram.mean h));
      ("min", opt_float (Histogram.min_seen h));
      ("max", opt_float (Histogram.max_seen h));
      ("p50", Json.Float p50);
      ("p90", Json.Float (Histogram.quantile h 0.90));
      ("p95", Json.Float p95);
      ("p99", Json.Float p99);
    ]

let metrics_json (m : Metrics.t) =
  let per_kind f =
    Json.Obj (List.map (fun kind -> (Metrics.kind_name kind, Json.Int (f m kind))) Metrics.all_kinds)
  in
  Json.Obj
    [
      ("messages", per_kind Metrics.messages);
      ("message_bytes", per_kind Metrics.message_bytes);
      ("total_messages", Json.Int (Metrics.total_messages m));
      ("local_messages", Json.Int (Metrics.local_messages m));
      ("packets", Json.Int (Metrics.packets m));
      ("packet_bytes", Json.Int (Metrics.packet_bytes m));
      ("flushes", Json.Int (Metrics.flushes m));
      ("steps", Json.Int (Metrics.steps m));
      ("edges_scanned", Json.Int (Metrics.edges_scanned m));
      ("spawned", Json.Int (Metrics.spawned m));
      ("memo_ops", Json.Int (Metrics.memo_ops m));
      ("supersteps", Json.Int (Metrics.supersteps m));
      ("tracker_updates", Json.Int (Metrics.tracker_updates m));
      ("busy_ns", Json.Int (Metrics.busy_ns m));
      ("fault_drops", Json.Int (Metrics.fault_drops m));
      ("fault_dups", Json.Int (Metrics.fault_dups m));
      ("fault_delays", Json.Int (Metrics.fault_delays m));
      ("retransmits", Json.Int (Metrics.retransmits m));
      ("dup_dropped", Json.Int (Metrics.dup_dropped m));
      ("acks", Json.Int (Metrics.acks m));
      ("abandoned", Json.Int (Metrics.abandoned m));
      ("migrations", Json.Int (Metrics.migrations m));
      ("migrated_entries", Json.Int (Metrics.migrated_entries m));
      ("forwarded", Json.Int (Metrics.forwarded m));
      ("stashed", Json.Int (Metrics.stashed m));
      ("batches", Json.Int (Metrics.batches m));
      ("batched_traversers", Json.Int (Metrics.batched_traversers m));
      ("coalesced_msgs", Json.Int (Metrics.coalesced_msgs m));
      ("batch_sizes", histogram_json (Metrics.batch_sizes m));
      ("plan_hits", Json.Int (Metrics.plan_hits m));
      ("plan_misses", Json.Int (Metrics.plan_misses m));
      ("plan_verifications", Json.Int (Metrics.plan_verifications m));
      ("delegate_merges", Json.Int (Metrics.delegate_merges m));
      ("delegate_forwards", Json.Int (Metrics.delegate_forwards m));
      ("trace_dropped", Json.Int (Metrics.trace_dropped m));
    ]

let summary_json (s : Stats.summary) =
  Json.Obj
    [
      ("count", Json.Int s.Stats.count);
      ("mean", Json.Float s.Stats.mean);
      ("stddev", Json.Float s.Stats.stddev);
      ("min", Json.Float s.Stats.min);
      ("max", Json.Float s.Stats.max);
      ("p50", Json.Float s.Stats.p50);
      ("p90", Json.Float s.Stats.p90);
      ("p99", Json.Float s.Stats.p99);
    ]
