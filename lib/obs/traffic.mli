(** Cross-partition traversal traffic profile: a (src vertex, dst vertex)
    -> (count, bytes) counter bag fed by the async engine's remote
    dispatch path, consumed by the adaptive repartitioner and the JSON
    exporters. Vertices are plain ints (this layer is graph-agnostic). *)

type t

(** Shared no-op instance; [record] on it is a single flag check. *)
val disabled : t

val create : unit -> t
val enabled : t -> bool

(** Count one remote traverser hop from the partition of vertex [src]
    toward the partition keyed by vertex [dst], [bytes] on the wire. *)
val record : t -> src:int -> dst:int -> bytes:int -> unit

val total_count : t -> int
val total_bytes : t -> int
val distinct_edges : t -> int
val clear : t -> unit

(** Profiled edges as [(src, dst, count, bytes)], sorted by (src, dst). *)
val edges : t -> (int * int * int * int) array

val json : t -> Json.t
