(* Bundle of the three per-run collectors, threaded through engines as a
   single optional argument. The disabled bundle is a shared singleton
   whose components are each the no-op variant, so an engine can hold a
   recorder unconditionally and the per-step cost when observability is
   off is one flag check. *)

type t = {
  trace : Trace.t;
  flight : Flight.t;
  opstats : Opstats.t;
  traffic : Traffic.t;
  causal : Causal.t;
  enabled : bool;
}

let disabled =
  {
    trace = Trace.disabled;
    flight = Flight.disabled;
    opstats = Opstats.disabled;
    traffic = Traffic.disabled;
    causal = Causal.disabled;
    enabled = false;
  }

(* Causal tracing stays off by default even when the rest of the bundle
   is on: context threading allocates a DAG node per hand-off, which the
   span/flight consumers don't need to pay for. *)
let create ?trace_capacity ?flight_capacity ?(causal = false) ?causal_capacity () =
  {
    trace = Trace.create ?capacity:trace_capacity ();
    flight = Flight.create ?capacity:flight_capacity ();
    opstats = Opstats.create ();
    traffic = Traffic.create ();
    causal = (if causal then Causal.create ?capacity:causal_capacity () else Causal.disabled);
    enabled = true;
  }

let enabled t = t.enabled
let trace t = t.trace
let flight t = t.flight
let opstats t = t.opstats
let traffic t = t.traffic
let causal t = t.causal
