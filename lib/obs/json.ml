(* Minimal deterministic JSON tree and printer.

   The observability layer writes machine-readable artifacts (Chrome
   traces, bench results, flight-recorder dumps) that must be
   byte-identical across runs of the same seed, so serialization avoids
   anything locale- or hash-order-dependent: object fields print in the
   order they were built, floats through a fixed format, and non-finite
   floats degrade to null (JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Raw of string (* preformatted number, e.g. fixed-decimal timestamps *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Fixed float format: enough digits for stats, deterministic bytes. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Raw s -> Buffer.add_string buf s
  | Str s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf key;
        Buffer.add_char buf ':';
        emit buf value)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 4096 in
  emit buf t;
  Buffer.contents buf

let to_channel oc t = output_string oc (to_string t)

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      to_channel oc t;
      output_char oc '\n')
