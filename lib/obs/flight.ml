(* Per-query flight recorder: named time series sampled against the
   simulated clock (progression-weight trajectory, per-partition queue
   depth, in-flight traversers, memo footprint).

   Each series keeps at most [capacity] points. When full, the series is
   decimated in place — every other point is discarded and the sampling
   stride doubles — so a series bounds its memory while keeping an evenly
   thinned view of the whole run rather than just a prefix or suffix.

   Series are stored in a Vec and looked up linearly by name, never
   through a hash table, so registration and dump order are exactly
   creation order and the JSON dump is deterministic. Hot paths avoid the
   lookup entirely: [series] returns a handle once, and [sample] on a
   handle is a couple of array writes. *)

type series = {
  s_name : string;
  times : int Vec.t; (* Sim_time.t = int *)
  values : float Vec.t;
  capacity : int;
  mutable stride : int; (* record every [stride]-th offered sample *)
  mutable countdown : int; (* offers until the next recorded sample *)
  mutable seen : int; (* total samples offered, including thinned *)
}

type handle = series

type t = {
  enabled : bool;
  capacity : int;
  all : series Vec.t;
}

let dummy_series =
  {
    s_name = "";
    times = Vec.create ~dummy:0;
    values = Vec.create ~dummy:0.0;
    capacity = 0;
    stride = 1;
    countdown = 0;
    seen = 0;
  }

let disabled = { enabled = false; capacity = 0; all = Vec.create ~dummy:dummy_series }

let create ?(capacity = 512) () =
  if capacity < 4 then invalid_arg "Flight.create";
  { enabled = true; capacity; all = Vec.create ~dummy:dummy_series }

let enabled t = t.enabled

let series t name =
  if not t.enabled then dummy_series
  else begin
    let found = ref None in
    Vec.iter (fun s -> if !found = None && String.equal s.s_name name then found := Some s) t.all;
    match !found with
    | Some s -> s
    | None ->
      let s =
        {
          s_name = name;
          times = Vec.create ~dummy:0;
          values = Vec.create ~dummy:0.0;
          capacity = t.capacity;
          stride = 1;
          countdown = 0;
          seen = 0;
        }
      in
      Vec.push t.all s;
      s
  end

(* Halve the retained points (keep even indices) and double the stride. *)
let decimate s =
  let n = Vec.length s.times in
  let keep = (n + 1) / 2 in
  for i = 0 to keep - 1 do
    Vec.set s.times i (Vec.get s.times (2 * i));
    Vec.set s.values i (Vec.get s.values (2 * i))
  done;
  while Vec.length s.times > keep do
    ignore (Vec.pop s.times);
    ignore (Vec.pop s.values)
  done;
  s.stride <- s.stride * 2

let sample t (h : handle) ~time value =
  if t.enabled && h.capacity > 0 then begin
    h.seen <- h.seen + 1;
    if h.countdown > 0 then h.countdown <- h.countdown - 1
    else begin
      if Vec.length h.times >= h.capacity then decimate h;
      Vec.push h.times (Sim_time.to_ns time);
      Vec.push h.values value;
      h.countdown <- h.stride - 1
    end
  end

let n_series t = Vec.length t.all

let points h = Vec.length h.times
let seen h = h.seen

let samples h =
  List.map2 (fun t v -> (Sim_time.ns t, v)) (Vec.to_list h.times) (Vec.to_list h.values)

let series_json s =
  let n = Vec.length s.times in
  let v_min = ref infinity and v_max = ref neg_infinity and v_sum = ref 0.0 in
  Vec.iter
    (fun v ->
      if v < !v_min then v_min := v;
      if v > !v_max then v_max := v;
      v_sum := !v_sum +. v)
    s.values;
  let opt_float x = if n = 0 then Json.Null else Json.Float x in
  Json.Obj
    [
      ("name", Json.Str s.s_name);
      ("points", Json.Int n);
      ("seen", Json.Int s.seen);
      ("stride", Json.Int s.stride);
      ("t_first", if n = 0 then Json.Null else Json.Int (Vec.get s.times 0));
      ("t_last", if n = 0 then Json.Null else Json.Int (Vec.get s.times (n - 1)));
      ("v_min", opt_float !v_min);
      ("v_max", opt_float !v_max);
      ("v_mean", opt_float (if n = 0 then 0.0 else !v_sum /. float_of_int n));
      ("v_last", if n = 0 then Json.Null else Json.Float (Vec.last s.values));
      ("t", Json.List (Vec.to_list s.times |> List.map (fun ns -> Json.Int ns)));
      ("v", Json.List (Vec.to_list s.values |> List.map (fun v -> Json.Float v)));
    ]

let to_json t =
  let out = ref [] in
  Vec.iter (fun s -> out := series_json s :: !out) t.all;
  Json.Obj [ ("series", Json.List (List.rev !out)) ]
