(** Per-step operator statistics (EXPLAIN ANALYZE-style), aggregated
    across workers by compiled step index. *)

type t

(** Shared no-op collector. *)
val disabled : t

val create : unit -> t
val enabled : t -> bool

(** Record one traverser executed at [step]: [out] spawned continuations,
    [rows] result rows, whether the traverser retired, [edges] scanned,
    memo hits/misses, and simulated busy time. *)
val record :
  t ->
  step:int ->
  out:int ->
  rows:int ->
  finished:bool ->
  edges:int ->
  memo_hits:int ->
  memo_misses:int ->
  busy_ns:int ->
  unit

(** Count [k] traversers injected from outside any step (query entry
    seeds, phase-boundary continuations). *)
val seed : t -> int -> unit

val n_steps : t -> int
val seeds : t -> int
val total_in : t -> int
val total_out : t -> int
val total_finished : t -> int

(** [total_in = seeds + total_out] — every executed traverser was either
    injected or produced by a step. *)
val conserves : t -> bool

val pp_table : ?step_label:(int -> string) -> Format.formatter -> t -> unit
val to_json : ?step_label:(int -> string) -> t -> Json.t
