(** Per-query flight recorder: bounded named time series over simulated
    time, with stride-doubling decimation once a series fills. *)

type t

(** Opaque per-series handle; cheap to sample through. *)
type handle

(** Shared no-op recorder. *)
val disabled : t

(** [create ~capacity ()] bounds every series to [capacity] retained
    points (default 512, minimum 4). *)
val create : ?capacity:int -> unit -> t

val enabled : t -> bool

(** Find-or-create the series [name]; deterministic creation order.
    On the disabled recorder returns an inert handle. *)
val series : t -> string -> handle

(** Offer one observation; thinned by the series' current stride. *)
val sample : t -> handle -> time:Sim_time.t -> float -> unit

val n_series : t -> int

(** Retained points in the series. *)
val points : handle -> int

(** Total samples offered, including thinned ones. *)
val seen : handle -> int

(** Retained samples in recording order: (sim-time, value). *)
val samples : handle -> (Sim_time.t * float) list

(** All series (creation order) with summary stats and retained points. *)
val to_json : t -> Json.t
