(* Cross-partition traversal traffic profile.

   The async engine calls [record] from its remote-dispatch path whenever
   a traverser leaves its parent's worker: [src] is the vertex the parent
   executed at, [dst] the vertex (or routing key vertex) the child is
   heading to, [bytes] the message size on the wire. The accumulated
   (src, dst) -> (count, bytes) map is the workload's communication graph
   — exactly the signal the adaptive repartitioner minimizes (the "cut
   weight" of Loom-style streaming refinement).

   Vertices are plain ints here: lib/obs sits below lib/graph in the
   build, so this module knows nothing about graphs — it is a counter
   bag with a deterministic (sorted) export. The disabled instance makes
   every operation a single flag check, like the other collectors. *)

type cell = {
  mutable count : int;
  mutable bytes : int;
}

type t = {
  cells : (int * int, cell) Hashtbl.t;
  mutable total_count : int;
  mutable total_bytes : int;
  enabled : bool;
}

let disabled = { cells = Hashtbl.create 1; total_count = 0; total_bytes = 0; enabled = false }
let create () = { cells = Hashtbl.create 256; total_count = 0; total_bytes = 0; enabled = true }
let enabled t = t.enabled

let record t ~src ~dst ~bytes =
  if t.enabled then begin
    t.total_count <- t.total_count + 1;
    t.total_bytes <- t.total_bytes + bytes;
    match Hashtbl.find_opt t.cells (src, dst) with
    | Some cell ->
      cell.count <- cell.count + 1;
      cell.bytes <- cell.bytes + bytes
    | None -> Hashtbl.add t.cells (src, dst) { count = 1; bytes }
  end

let total_count t = t.total_count
let total_bytes t = t.total_bytes
let distinct_edges t = Hashtbl.length t.cells

let clear t =
  Hashtbl.reset t.cells;
  t.total_count <- 0;
  t.total_bytes <- 0

(* Profiled edges as (src, dst, count, bytes), sorted by (src, dst) so
   exports and the repartitioner see a deterministic order. *)
let edges t =
  (* det-ok: the collected quads are sorted below before use *)
  let out = Hashtbl.fold (fun (s, d) c acc -> (s, d, c.count, c.bytes) :: acc) t.cells [] in
  let arr = Array.of_list out in
  Array.sort
    (fun (s1, d1, _, _) (s2, d2, _, _) ->
      match Int.compare s1 s2 with 0 -> Int.compare d1 d2 | c -> c)
    arr;
  arr

let json t =
  let edge (s, d, count, bytes) =
    Json.Obj
      [ ("src", Json.Int s); ("dst", Json.Int d); ("count", Json.Int count); ("bytes", Json.Int bytes) ]
  in
  Json.Obj
    [
      ("total_count", Json.Int t.total_count);
      ("total_bytes", Json.Int t.total_bytes);
      ("distinct_edges", Json.Int (Hashtbl.length t.cells));
      ("edges", Json.List (Array.to_list (Array.map edge (edges t))));
    ]
