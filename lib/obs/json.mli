(** Minimal deterministic JSON tree: field order preserved, fixed float
    formatting, non-finite floats print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Raw of string  (** preformatted number, emitted verbatim *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_channel : out_channel -> t -> unit

(** Write [t] followed by a newline. *)
val write_file : string -> t -> unit
