(* Per-step operator statistics — the EXPLAIN ANALYZE side of the
   observability layer.

   Counters are indexed by compiled step index and aggregated across all
   workers, so after a run the table reads like a query plan annotated
   with actuals: traversers in/out, result rows, edges scanned, memo
   hits/misses, and simulated busy time per step.

   Conservation invariant (mirrors [Exec.conserves]): every traverser
   executed at a step was either seeded into the query or produced by
   some step, so [total_in = seeds + total_out] must hold for any engine
   that records faithfully. [test_obs] checks it on a real run. *)

type t = {
  enabled : bool;
  mutable n : int; (* number of step slots in use *)
  mutable t_in : int array; (* traversers executed at step i *)
  mutable t_out : int array; (* traversers spawned by step i *)
  mutable rows : int array;
  mutable finished : int array; (* traversers retired at step i *)
  mutable edges : int array;
  mutable hits : int array;
  mutable misses : int array;
  mutable busy_ns : int array;
  mutable seeds : int; (* traversers injected from outside any step *)
}

let disabled =
  {
    enabled = false;
    n = 0;
    t_in = [||];
    t_out = [||];
    rows = [||];
    finished = [||];
    edges = [||];
    hits = [||];
    misses = [||];
    busy_ns = [||];
    seeds = 0;
  }

let create () =
  {
    enabled = true;
    n = 0;
    t_in = Array.make 8 0;
    t_out = Array.make 8 0;
    rows = Array.make 8 0;
    finished = Array.make 8 0;
    edges = Array.make 8 0;
    hits = Array.make 8 0;
    misses = Array.make 8 0;
    busy_ns = Array.make 8 0;
    seeds = 0;
  }

let enabled t = t.enabled

let grow arr cap =
  let next = Array.make cap 0 in
  Array.blit arr 0 next 0 (Array.length arr);
  next

let ensure t step =
  if step >= Array.length t.t_in then begin
    let cap = max (step + 1) (2 * Array.length t.t_in) in
    t.t_in <- grow t.t_in cap;
    t.t_out <- grow t.t_out cap;
    t.rows <- grow t.rows cap;
    t.finished <- grow t.finished cap;
    t.edges <- grow t.edges cap;
    t.hits <- grow t.hits cap;
    t.misses <- grow t.misses cap;
    t.busy_ns <- grow t.busy_ns cap
  end;
  if step >= t.n then t.n <- step + 1

let record t ~step ~out ~rows ~finished ~edges ~memo_hits ~memo_misses ~busy_ns =
  if t.enabled && step >= 0 then begin
    ensure t step;
    t.t_in.(step) <- t.t_in.(step) + 1;
    t.t_out.(step) <- t.t_out.(step) + out;
    t.rows.(step) <- t.rows.(step) + rows;
    t.finished.(step) <- t.finished.(step) + (if finished then 1 else 0);
    t.edges.(step) <- t.edges.(step) + edges;
    t.hits.(step) <- t.hits.(step) + memo_hits;
    t.misses.(step) <- t.misses.(step) + memo_misses;
    t.busy_ns.(step) <- t.busy_ns.(step) + busy_ns
  end

let seed t k = if t.enabled then t.seeds <- t.seeds + k

let n_steps t = t.n
let seeds t = t.seeds

let sum arr n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + arr.(i)
  done;
  !acc

let total_in t = sum t.t_in t.n
let total_out t = sum t.t_out t.n
let total_finished t = sum t.finished t.n

(* Every traverser executed was injected or produced by a step. *)
let conserves t = total_in t = seeds t + total_out t

let pp_table ?(step_label = fun i -> Printf.sprintf "step %d" i) fmt t =
  let busy_total = sum t.busy_ns t.n in
  Format.fprintf fmt "%-4s %-34s %12s %12s %10s %12s %9s %9s %10s %6s@."
    "#" "operator" "trav-in" "trav-out" "rows" "edges" "memo-hit" "memo-miss" "busy-ms" "busy%";
  Format.fprintf fmt "%s@." (String.make 118 '-');
  for i = 0 to t.n - 1 do
    let pct =
      if busy_total = 0 then 0.0
      else 100.0 *. float_of_int t.busy_ns.(i) /. float_of_int busy_total
    in
    Format.fprintf fmt "%-4d %-34s %12d %12d %10d %12d %9d %9d %10.3f %5.1f%%@."
      i (step_label i) t.t_in.(i) t.t_out.(i) t.rows.(i) t.edges.(i) t.hits.(i) t.misses.(i)
      (float_of_int t.busy_ns.(i) /. 1e6)
      pct
  done;
  Format.fprintf fmt "%s@." (String.make 118 '-');
  Format.fprintf fmt "%-39s %12d %12d %10d %12d %9d %9d %10.3f@."
    (Printf.sprintf "total (seeds=%d, retired=%d)" t.seeds (total_finished t))
    (total_in t) (total_out t) (sum t.rows t.n) (sum t.edges t.n) (sum t.hits t.n)
    (sum t.misses t.n)
    (float_of_int busy_total /. 1e6)

let to_json ?(step_label = fun i -> Printf.sprintf "step %d" i) t =
  let steps = ref [] in
  for i = t.n - 1 downto 0 do
    steps :=
      Json.Obj
        [
          ("step", Json.Int i);
          ("operator", Json.Str (step_label i));
          ("traversers_in", Json.Int t.t_in.(i));
          ("traversers_out", Json.Int t.t_out.(i));
          ("rows", Json.Int t.rows.(i));
          ("finished", Json.Int t.finished.(i));
          ("edges_scanned", Json.Int t.edges.(i));
          ("memo_hits", Json.Int t.hits.(i));
          ("memo_misses", Json.Int t.misses.(i));
          ("busy_ns", Json.Int t.busy_ns.(i));
        ]
      :: !steps
  done;
  Json.Obj
    [
      ("seeds", Json.Int t.seeds);
      ("total_in", Json.Int (total_in t));
      ("total_out", Json.Int (total_out t));
      ("total_finished", Json.Int (total_finished t));
      ("conserves", Json.Bool (conserves t));
      ("steps", Json.List !steps);
    ]
