(* Query-scoped sim-time span/event recorder.

   Records per-worker spans (step execution, flushes, quanta, supersteps)
   and per-query instants (submit, partition first-touch, phase
   transitions, tracker receipts, completion) against the *simulated*
   clock — never the host clock, so a trace of a seeded run is
   byte-identical on every machine. Storage is a bounded ring: when the
   ring fills, the oldest events are overwritten and counted as dropped,
   which keeps the recorder usable on long runs without growing memory.

   The disabled recorder is a shared zero-capacity singleton; every
   recording entry point returns before touching any state, so engines
   can thread a tracer unconditionally and pay only a branch when tracing
   is off. *)

type arg =
  | I of int
  | S of string
  | F of float

type phase =
  | Span
  | Instant

type event = {
  ph : phase;
  name : string;
  cat : string;
  tid : int; (* track: worker id, or a synthetic query/NIC track *)
  ts : Sim_time.t;
  dur : Sim_time.t; (* zero for instants *)
  args : (string * arg) list;
}

type t = {
  enabled : bool;
  capacity : int;
  ring : event array;
  mutable start : int; (* index of the oldest retained event *)
  mutable len : int;
  mutable dropped : int;
}

let dummy_event =
  { ph = Instant; name = ""; cat = ""; tid = 0; ts = Sim_time.zero; dur = Sim_time.zero; args = [] }

let disabled =
  { enabled = false; capacity = 0; ring = [||]; start = 0; len = 0; dropped = 0 }

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Trace.create";
  { enabled = true; capacity; ring = Array.make capacity dummy_event; start = 0; len = 0; dropped = 0 }

let enabled t = t.enabled
let length t = t.len
let dropped t = t.dropped

let push t ev =
  if t.enabled then begin
    if t.len < t.capacity then begin
      t.ring.((t.start + t.len) mod t.capacity) <- ev;
      t.len <- t.len + 1
    end
    else begin
      (* Ring full: overwrite the oldest. *)
      t.ring.(t.start) <- ev;
      t.start <- (t.start + 1) mod t.capacity;
      t.dropped <- t.dropped + 1
    end
  end

let span t ?(cat = "worker") ?(args = []) ~tid ~name ~ts ~dur () =
  if t.enabled then push t { ph = Span; name; cat; tid; ts; dur; args }

let instant t ?(cat = "query") ?(args = []) ~tid ~name ~ts () =
  if t.enabled then push t { ph = Instant; name; cat; tid; ts; dur = Sim_time.zero; args }

(* Oldest-to-newest iteration. *)
let iter f t =
  for i = 0 to t.len - 1 do
    f t.ring.((t.start + i) mod t.capacity)
  done

let events t =
  let out = ref [] in
  iter (fun ev -> out := ev :: !out) t;
  List.rev !out

(* Spans on one track must nest: for any two, either disjoint or one
   contains the other. Sort by (track, start, -duration, insertion) and
   sweep with a stack of open-span end times. *)
let nesting_well_formed t =
  let spans = ref [] in
  let seq = ref 0 in
  iter
    (fun ev ->
      incr seq;
      if ev.ph = Span then spans := (ev.tid, ev.ts, ev.dur, !seq) :: !spans)
    t;
  let spans =
    List.sort
      (fun (tid_a, ts_a, dur_a, seq_a) (tid_b, ts_b, dur_b, seq_b) ->
        let c = Int.compare tid_a tid_b in
        if c <> 0 then c
        else
          let c = Sim_time.compare ts_a ts_b in
          if c <> 0 then c
          else
            let c = Sim_time.compare dur_b dur_a in
            if c <> 0 then c else Int.compare seq_a seq_b)
      !spans
  in
  let ok = ref true in
  let current_tid = ref min_int in
  let stack = ref [] in
  List.iter
    (fun (tid, ts, dur, _) ->
      if tid <> !current_tid then begin
        current_tid := tid;
        stack := []
      end;
      let finish = Sim_time.add ts dur in
      (* Pop spans that ended at or before this start. *)
      let rec pop () =
        match !stack with
        | top :: rest when Sim_time.compare top ts <= 0 ->
          stack := rest;
          pop ()
        | _ -> ()
      in
      pop ();
      (match !stack with
      | top :: _ when Sim_time.compare finish top > 0 -> ok := false (* partial overlap *)
      | _ -> ());
      stack := finish :: !stack)
    spans;
  !ok

(* --- Chrome trace-event export --- *)

(* Chrome's [ts]/[dur] fields are microseconds; simulated nanoseconds are
   emitted as fixed 3-decimal microseconds so no precision is lost and
   the byte output is deterministic. *)
let us_repr ns = Printf.sprintf "%d.%03d" (ns / 1000) (ns mod 1000)

let arg_json = function
  | I i -> Json.Int i
  | S s -> Json.Str s
  | F f -> Json.Float f

let event_json ev =
  let base =
    [
      ("name", Json.Str ev.name);
      ("cat", Json.Str ev.cat);
      ("ph", Json.Str (match ev.ph with Span -> "X" | Instant -> "i"));
      ("ts", Json.Raw (us_repr (Sim_time.to_ns ev.ts)));
    ]
  in
  let timing =
    match ev.ph with
    | Span -> [ ("dur", Json.Raw (us_repr (Sim_time.to_ns ev.dur))) ]
    | Instant -> [ ("s", Json.Str "t") ]
  in
  let tail =
    [ ("pid", Json.Int 0); ("tid", Json.Int ev.tid) ]
    @
    match ev.args with
    | [] -> []
    | args -> [ ("args", Json.Obj (List.map (fun (k, a) -> (k, arg_json a)) args)) ]
  in
  Json.Obj (base @ timing @ tail)

let to_chrome_json t =
  let events = ref [] in
  iter (fun ev -> events := event_json ev :: !events) t;
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          [
            ("clock", Json.Str "simulated");
            ("recorded", Json.Int t.len);
            ("dropped", Json.Int t.dropped);
          ] );
    ]
