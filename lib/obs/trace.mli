(** Sim-time span/event recorder with bounded-ring storage and a
    zero-cost disabled path; exports deterministic Chrome
    [trace_event] JSON. *)

type arg =
  | I of int
  | S of string
  | F of float

type phase =
  | Span
  | Instant

type event = {
  ph : phase;
  name : string;
  cat : string;
  tid : int;
  ts : Sim_time.t;
  dur : Sim_time.t;
  args : (string * arg) list;
}

type t

(** Shared no-op recorder: every entry point returns immediately. *)
val disabled : t

(** Ring recorder retaining the newest [capacity] events. *)
val create : ?capacity:int -> unit -> t

val enabled : t -> bool

(** Events currently retained. *)
val length : t -> int

(** Events overwritten after the ring filled. *)
val dropped : t -> int

(** Record a completed span [ts, ts+dur) on track [tid]. *)
val span :
  t ->
  ?cat:string ->
  ?args:(string * arg) list ->
  tid:int ->
  name:string ->
  ts:Sim_time.t ->
  dur:Sim_time.t ->
  unit ->
  unit

(** Record an instant event. *)
val instant :
  t ->
  ?cat:string ->
  ?args:(string * arg) list ->
  tid:int ->
  name:string ->
  ts:Sim_time.t ->
  unit ->
  unit

(** Oldest-to-newest iteration over retained events. *)
val iter : (event -> unit) -> t -> unit

val events : t -> event list

(** Spans on every track nest properly (no partial overlap). *)
val nesting_well_formed : t -> bool

(** Chrome [trace_event] document ({["traceEvents"]} array of "X"/"i"
    events; simulated nanoseconds emitted as fixed-point microseconds). *)
val to_chrome_json : t -> Json.t
