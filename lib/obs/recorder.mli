(** Per-run observability bundle: trace + flight recorder + operator
    stats, passed to engines as one optional argument. *)

type t

(** Shared no-op bundle; safe to thread everywhere by default. *)
val disabled : t

(** [causal] (default false) additionally threads causal contexts through
    every engine hand-off into a {!Causal.t} DAG for EXPLAIN LATENCY. *)
val create :
  ?trace_capacity:int -> ?flight_capacity:int -> ?causal:bool -> ?causal_capacity:int -> unit -> t

val enabled : t -> bool
val trace : t -> Trace.t
val flight : t -> Flight.t
val opstats : t -> Opstats.t
val traffic : t -> Traffic.t
val causal : t -> Causal.t
