(* Compiled-plan cache: run parse -> strategies -> planner -> verify once
   per query *family*, then bind parameters into the cached verified
   program on every later execution.

   A family is the query with its comparison values abstracted out: the
   normalizer walks the AST and replaces every predicate literal (the
   values of has(eq/neq/lt/...), the elements of within(), and the index
   lookup value) with a marker value recording its parameter index. The
   cache key is the printed marker AST plus the parameters' type
   signature; structural knobs — labels, repeat().times(), limit(),
   top-k's k, within() arity — stay part of the skeleton, because they
   change the compiled step graph.

   Soundness rests on the optimizer being value-oblivious: strategies and
   the join planner match on predicate *constructors* (an Eq is 10x
   selective whatever the literal), never on the literals themselves, so
   the marker program has exactly the shape the concrete program would.
   Binding parameters is then a pure structural map replacing marker
   constants inside the cached verified program — no re-lowering and, the
   point of the exercise, no re-verification. The result is byte-identical
   (structurally equal) to a cold compile of the concrete query, which
   the test suite asserts.

   Markers are strings carrying a NUL byte, which the lexer cannot
   produce — no user literal can collide with one. *)

type stats = {
  hits : int;
  misses : int;
  verifications : int; (* full verifier runs = cold compiles *)
}

type entry = {
  template : Program.t; (* verified program with marker constants *)
  arity : int;
}

type t = {
  graph : Graph.t;
  table : (Ast.t * string, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable verifications : int;
}

let create ~graph = { graph; table = Hashtbl.create 16; hits = 0; misses = 0; verifications = 0 }
let stats t = { hits = t.hits; misses = t.misses; verifications = t.verifications }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.verifications <- 0

(* --- Parameter holes --------------------------------------------------- *)

let marker i = Value.Str (Printf.sprintf "\x00param%d\x00" i)

let marker_index = function
  | Value.Str s
    when String.length s > 6
         && s.[0] = '\x00'
         && s.[String.length s - 1] = '\x00'
         && String.sub s 1 5 = "param" ->
    int_of_string_opt (String.sub s 6 (String.length s - 7))
  | _ -> None

type normalized = {
  skeleton : Ast.t; (* predicate literals replaced by markers *)
  params : Value.t array; (* in marker-index order *)
}

let normalize ast =
  let params = ref [] in
  let n = ref 0 in
  let hole v =
    let m = marker !n in
    incr n;
    params := v :: !params;
    m
  in
  let pred = function
    | Ast.Eq v -> Ast.Eq (hole v)
    | Ast.Ne v -> Ast.Ne (hole v)
    | Ast.Lt v -> Ast.Lt (hole v)
    | Ast.Le v -> Ast.Le (hole v)
    | Ast.Gt v -> Ast.Gt (hole v)
    | Ast.Ge v -> Ast.Ge (hole v)
    | Ast.Within vs -> Ast.Within (List.map hole vs)
  in
  let gstep = function
    | Ast.Has (key, p) -> Ast.Has (key, pred p)
    | ( Ast.Out _ | Ast.In _ | Ast.Both _ | Ast.Has_label _ | Ast.Where_neq _ | Ast.Dedup
      | Ast.As _ | Ast.Select _ | Ast.Values _ | Ast.Repeat _ | Ast.Count | Ast.Sum_of _
      | Ast.Max_of _ | Ast.Min_of _ | Ast.Group_count _ | Ast.Order_by _ | Ast.Limit _
      | Ast.Top_k _ ) as s ->
      s
  in
  let source = function
    | Ast.Scan_all _ as s -> s
    | Ast.Lookup { label; key; value } -> Ast.Lookup { label; key; value = hole value }
  in
  let traversal (tr : Ast.traversal) =
    { Ast.source = source tr.Ast.source; steps = List.map gstep tr.Ast.steps }
  in
  let skeleton =
    match ast with
    | Ast.Traversal tr -> Ast.Traversal (traversal tr)
    | Ast.Join_of { left; right; post } ->
      Ast.Join_of { left = traversal left; right = traversal right; post = List.map gstep post }
  in
  { skeleton; params = Array.of_list (List.rev !params) }

(* Cache key: the marker skeleton itself (compared and hashed
   structurally — printing the AST per lookup would cost more than the
   verification a hit saves) plus the parameters' runtime-type
   signature. Types cannot change the plan — the optimizer is
   value-oblivious — but families with differently-typed parameters are
   kept apart so the signature documents exactly what a cached plan was
   validated against. *)
let type_tag = function
  | Value.Null -> "0"
  | Value.Bool _ -> "b"
  | Value.Int _ -> "i"
  | Value.Float _ -> "f"
  | Value.Str _ -> "s"
  | Value.Vertex _ -> "v"
  | Value.Edge _ -> "e"
  | Value.List _ -> "l"

let key_of { skeleton; params } =
  let sig_ = String.concat "" (Array.to_list (Array.map type_tag params)) in
  (skeleton, sig_)

(* --- Parameter binding ------------------------------------------------- *)

let subst_value params v =
  match marker_index v with
  | Some i -> params.(i)
  | None -> v

let rec subst_expr params = function
  | Step.Const v -> Step.Const (subst_value params v)
  | (Step.Reg _ | Step.Vertex_id | Step.Vertex_label | Step.Prop _ | Step.Prop_of _) as e -> e
  | Step.Add (a, b) -> Step.Add (subst_expr params a, subst_expr params b)
  | Step.Pair (a, b) -> Step.Pair (subst_expr params a, subst_expr params b)

let rec subst_pred params = function
  | Step.True -> Step.True
  | Step.Cmp (c, a, b) -> Step.Cmp (c, subst_expr params a, subst_expr params b)
  | Step.And (p, q) -> Step.And (subst_pred params p, subst_pred params q)
  | Step.Or (p, q) -> Step.Or (subst_pred params p, subst_pred params q)
  | Step.Not p -> Step.Not (subst_pred params p)

let subst_agg params = function
  | Step.Count -> Step.Count
  | Step.Sum e -> Step.Sum (subst_expr params e)
  | Step.Max e -> Step.Max (subst_expr params e)
  | Step.Min e -> Step.Min (subst_expr params e)
  | Step.Topk { k; score; output } ->
    Step.Topk { k; score = subst_expr params score; output = subst_expr params output }
  | Step.Collect { expr; limit } -> Step.Collect { expr = subst_expr params expr; limit }
  | Step.Group_count e -> Step.Group_count (subst_expr params e)

let subst_op params = function
  | Step.Index_lookup { vertex_label; key; value } ->
    Step.Index_lookup { vertex_label; key; value = subst_value params value }
  | Step.Scan _ as op -> op
  | Step.Expand _ as op -> op
  | Step.Filter p -> Step.Filter (subst_pred params p)
  | Step.Set_reg { reg; expr } -> Step.Set_reg { reg; expr = subst_expr params expr }
  | Step.Move_to _ as op -> op
  | Step.Dedup { by } -> Step.Dedup { by = subst_expr params by }
  | Step.Visit _ as op -> op
  | Step.Join { join_id; side; key; store; load_regs; cont } ->
    Step.Join
      {
        join_id;
        side;
        key = subst_expr params key;
        store = Array.map (subst_expr params) store;
        load_regs;
        cont;
      }
  | Step.Aggregate { agg; reg } -> Step.Aggregate { agg = subst_agg params agg; reg }
  | Step.Emit exprs -> Step.Emit (Array.map (subst_expr params) exprs)

(* Bind concrete parameters into a cached template. [Program.make] re-runs
   the cheap structural validation (control flow, register ranges); the
   expensive dataflow verifier does NOT run — the template already passed
   it, and parameter binding cannot change anything it checks. *)
let bind ~name entry params =
  if Array.length params <> entry.arity then
    invalid_arg
      (Fmt.str "Plan_cache.bind: %d parameters for a template of arity %d" (Array.length params)
         entry.arity);
  let steps =
    Array.map
      (fun (s : Step.t) -> { s with Step.op = subst_op params s.Step.op })
      (Program.steps entry.template)
  in
  Program.make ~name ~steps
    ~n_registers:(Program.n_registers entry.template)
    ~entries:(Program.entries entry.template)

(* --- The cache --------------------------------------------------------- *)

let compile_ast t ?(name = "query") ast =
  let normalized = normalize ast in
  let key = key_of normalized in
  match Hashtbl.find_opt t.table key with
  | Some entry ->
    t.hits <- t.hits + 1;
    bind ~name entry normalized.params
  | None ->
    t.misses <- t.misses + 1;
    t.verifications <- t.verifications + 1;
    (* Cold path: compile (and verify) the marker skeleton once, cache
       it, then bind this call's parameters. *)
    let template = Compile.compile ~name t.graph normalized.skeleton in
    let entry = { template; arity = Array.length normalized.params } in
    Hashtbl.add t.table key entry;
    bind ~name entry normalized.params

let compile t ?name text =
  match Parser.parse text with
  | Error msg -> raise (Parser.Error msg)
  | Ok ast -> compile_ast t ?name ast

let size t = Hashtbl.length t.table
