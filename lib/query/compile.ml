(* Lowering: Gremlin-like AST -> PSTM step program.

   The pipeline is strategies (rewrites) -> planner (join placement) ->
   this lowering. Steps are appended sequentially, so each step's [next]
   defaults to its successor index; loop back-edges (Repeat) and join
   continuations are patched afterwards.

   The compiler tracks a *focus*: what a traverser "is" at this point of
   the traversal — the current vertex, or a projected value after
   [Values]/aggregation. Movement steps require vertex focus. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type focus =
  | F_vertex
  | F_value of Step.expr

type ctx = {
  schema : Schema.t;
  steps : Step.t Vec.t;
  regs : (string, int) Hashtbl.t; (* as_ bindings *)
  mutable n_regs : int;
  mutable next_join_id : int;
  mutable focus : focus;
}

let create_ctx schema =
  {
    schema;
    steps = Vec.create ~dummy:{ Step.op = Step.Emit [||]; next = -1 };
    regs = Hashtbl.create 8;
    n_regs = 0;
    next_join_id = 0;
    focus = F_vertex;
  }

let fresh_reg ctx =
  let r = ctx.n_regs in
  ctx.n_regs <- ctx.n_regs + 1;
  r

let binding ctx name =
  match Hashtbl.find_opt ctx.regs name with
  | Some r -> r
  | None ->
    let r = fresh_reg ctx in
    Hashtbl.add ctx.regs name r;
    r

let bound ctx name =
  match Hashtbl.find_opt ctx.regs name with
  | Some r -> r
  | None -> error "select/where refers to unbound name %S" name

(* Interning is used (rather than _exn lookups) so that queries mentioning
   labels absent from this graph compile to programs that simply match
   nothing, as Gremlin does. *)
let prop_key ctx name = Schema.property_key ctx.schema name
let edge_label ctx name = Schema.edge_label ctx.schema name
let vertex_label ctx name = Schema.vertex_label ctx.schema name

(* Append a step whose [next] is the following index (patched later when
   that is wrong). Returns the step's index. *)
let append ctx op =
  let i = Vec.length ctx.steps in
  Vec.push ctx.steps { Step.op; next = i + 1 };
  i

let patch_next ctx i next =
  let s = Vec.get ctx.steps i in
  Vec.set ctx.steps i { s with Step.next }

let patch_op ctx i op =
  let s = Vec.get ctx.steps i in
  Vec.set ctx.steps i { s with Step.op }

let focus_expr ctx =
  match ctx.focus with
  | F_vertex -> Step.Vertex_id
  | F_value e -> e

let require_vertex ctx what =
  match ctx.focus with
  | F_vertex -> ()
  | F_value _ -> error "%s requires a vertex context (after values()/aggregation use select())" what

let compile_pred ctx key (p : Ast.pred) =
  let prop = Step.Prop (prop_key ctx key) in
  let cmp op v = Step.Cmp (op, prop, Step.Const v) in
  match p with
  | Ast.Eq v -> cmp Step.Eq v
  | Ast.Ne v -> cmp Step.Ne v
  | Ast.Lt v -> cmp Step.Lt v
  | Ast.Le v -> cmp Step.Le v
  | Ast.Gt v -> cmp Step.Gt v
  | Ast.Ge v -> cmp Step.Ge v
  | Ast.Within [] -> Step.Not Step.True
  | Ast.Within (v :: vs) ->
    List.fold_left (fun acc v -> Step.Or (acc, cmp Step.Eq v)) (cmp Step.Eq v) vs

let compile_source ctx (s : Ast.source) =
  match s with
  | Ast.Scan_all label ->
    append ctx (Step.Scan { vertex_label = Option.map (vertex_label ctx) label })
  | Ast.Lookup { label; key; value } ->
    append ctx
      (Step.Index_lookup
         { vertex_label = Option.map (vertex_label ctx) label; key = prop_key ctx key; value })

let compile_agg ctx agg =
  let r = fresh_reg ctx in
  ignore (append ctx (Step.Aggregate { agg; reg = r }));
  ctx.focus <- F_value (Step.Reg r)

let compile_gstep ctx (s : Ast.gstep) =
  match s with
  | Ast.Out label ->
    require_vertex ctx "out()";
    ignore
      (append ctx (Step.Expand { dir = Graph.Out; edge_label = Option.map (edge_label ctx) label }))
  | Ast.In label ->
    require_vertex ctx "in()";
    ignore
      (append ctx (Step.Expand { dir = Graph.In; edge_label = Option.map (edge_label ctx) label }))
  | Ast.Both label ->
    require_vertex ctx "both()";
    ignore
      (append ctx
         (Step.Expand { dir = Graph.Both; edge_label = Option.map (edge_label ctx) label }))
  | Ast.Has_label l ->
    require_vertex ctx "hasLabel()";
    ignore
      (append ctx
         (Step.Filter
            (Step.Cmp (Step.Eq, Step.Vertex_label, Step.Const (Value.Int (vertex_label ctx l))))))
  | Ast.Has (key, pred) ->
    require_vertex ctx "has()";
    ignore (append ctx (Step.Filter (compile_pred ctx key pred)))
  | Ast.Where_neq name ->
    require_vertex ctx "where(neq())";
    ignore
      (append ctx (Step.Filter (Step.Cmp (Step.Ne, Step.Vertex_id, Step.Reg (bound ctx name)))))
  | Ast.Dedup -> ignore (append ctx (Step.Dedup { by = focus_expr ctx }))
  | Ast.As name ->
    require_vertex ctx "as()";
    ignore (append ctx (Step.Set_reg { reg = binding ctx name; expr = Step.Vertex_id }))
  | Ast.Select name ->
    ignore (append ctx (Step.Move_to { reg = bound ctx name }));
    ctx.focus <- F_vertex
  | Ast.Values key ->
    require_vertex ctx "values()";
    ctx.focus <- F_value (Step.Prop (prop_key ctx key))
  | Ast.Repeat { dir; label; times } ->
    require_vertex ctx "repeat()";
    if times < 1 then error "repeat().times(%d): need at least one hop" times;
    let dist = fresh_reg ctx in
    ignore (append ctx (Step.Set_reg { reg = dist; expr = Step.Const (Value.Int 0) }));
    let visit =
      append ctx (Step.Visit { dist_reg = dist; max_hops = times; cont = -1 (* patched *); emit_improved = false })
    in
    let expand =
      append ctx (Step.Expand { dir; edge_label = Option.map (edge_label ctx) label })
    in
    patch_next ctx expand visit;
    (* The continuation pipeline starts right after the expand. *)
    patch_op ctx visit
      (Step.Visit { dist_reg = dist; max_hops = times; cont = expand + 1; emit_improved = false })
  | Ast.Count -> compile_agg ctx Step.Count
  | Ast.Sum_of key -> compile_agg ctx (Step.Sum (Step.Prop (prop_key ctx key)))
  | Ast.Max_of key -> compile_agg ctx (Step.Max (Step.Prop (prop_key ctx key)))
  | Ast.Min_of key -> compile_agg ctx (Step.Min (Step.Prop (prop_key ctx key)))
  | Ast.Group_count key -> compile_agg ctx (Step.Group_count (Step.Prop (prop_key ctx key)))
  | Ast.Top_k { key; k } ->
    require_vertex ctx "order().by().limit()";
    compile_agg ctx (Step.Topk { k; score = Step.Prop (prop_key ctx key); output = Step.Vertex_id })
  | Ast.Limit k -> compile_agg ctx (Step.Collect { expr = focus_expr ctx; limit = Some k })
  | Ast.Order_by _ -> error "order().by() must be followed by limit() (fused to top-k)"

let finish ctx ~name ~entries =
  ignore (append ctx (Step.Emit [| focus_expr ctx |]));
  let last = Vec.length ctx.steps - 1 in
  patch_next ctx last (-1);
  (* Every compiled program passes the static verifier before it reaches
     an engine; a planner bug surfaces here as Program.Invalid rather
     than as a hung or wrong-answer simulation. *)
  Pstm_analysis.Verify.program_exn
    (Program.make ~name ~steps:(Vec.to_array ctx.steps) ~n_registers:(max 1 ctx.n_regs) ~entries)

(* Registers bound while running [f]; used to decide join payloads. *)
let regs_bound_during ctx f =
  (* det-ok: the difference is sorted below, so fold order cannot leak *)
  let before = Hashtbl.fold (fun _ r acc -> r :: acc) ctx.regs [] in
  f ();
  (* det-ok: the difference is sorted below, so fold order cannot leak *)
  let after = Hashtbl.fold (fun _ r acc -> r :: acc) ctx.regs [] in
  List.sort Int.compare (List.filter (fun r -> not (List.mem r before)) after)

let lower_traversal ctx (t : Ast.traversal) =
  let entry = compile_source ctx t.Ast.source in
  List.iter (compile_gstep ctx) t.Ast.steps;
  entry

let lower_join ctx left right post =
  let join_id = ctx.next_join_id in
  ctx.next_join_id <- join_id + 1;
  let compile_side side (t : Ast.traversal) =
    let entry = ref (-1) in
    let bound =
      regs_bound_during ctx (fun () ->
          entry := lower_traversal ctx t;
          require_vertex ctx "join()")
    in
    let join_step =
      append ctx
        (Step.Join
           {
             join_id;
             side;
             key = Step.Vertex_id;
             store = Array.of_list (List.map (fun r -> Step.Reg r) bound);
             load_regs = [||] (* patched once the other side's regs are known *);
             cont = -1 (* patched to the post pipeline *);
           })
    in
    (!entry, join_step, Array.of_list bound)
  in
  let entry_a, join_a, regs_a = compile_side Step.Side_a left in
  ctx.focus <- F_vertex;
  let entry_b, join_b, regs_b = compile_side Step.Side_b right in
  let cont = Vec.length ctx.steps in
  let repatch idx ~side ~store_regs ~load_regs =
    patch_op ctx idx
      (Step.Join
         {
           join_id;
           side;
           key = Step.Vertex_id;
           store = Array.map (fun r -> Step.Reg r) store_regs;
           load_regs;
           cont;
         })
  in
  repatch join_a ~side:Step.Side_a ~store_regs:regs_a ~load_regs:regs_b;
  repatch join_b ~side:Step.Side_b ~store_regs:regs_b ~load_regs:regs_a;
  ctx.focus <- F_vertex;
  List.iter (compile_gstep ctx) post;
  [| entry_a; entry_b |]

(* Full pipeline: strategies -> planner -> lowering. *)
let compile ?(name = "query") graph ast =
  let ast = Strategies.apply ast in
  let ast =
    match ast with
    | Ast.Traversal _ -> ast
    | Ast.Join_of { left; right; post } ->
      let plan = Planner.choose graph ~left ~right in
      Strategies.apply (Planner.apply_plan plan left right post)
  in
  let ctx = create_ctx (Graph.schema graph) in
  let entries =
    match ast with
    | Ast.Traversal t -> [| lower_traversal ctx t |]
    | Ast.Join_of { left; right; post } -> lower_join ctx left right post
  in
  finish ctx ~name ~entries

(* Compile forcing a specific join plan; the Fig. 3 style experiments use
   this to contrast bidirectional join with unidirectional expansion. *)
let compile_with_plan ?(name = "query") graph ~plan ~left ~right ~post =
  let ast = Strategies.apply (Planner.apply_plan plan left right post) in
  let ctx = create_ctx (Graph.schema graph) in
  let entries =
    match ast with
    | Ast.Traversal t -> [| lower_traversal ctx t |]
    | Ast.Join_of { left; right; post } -> lower_join ctx left right post
  in
  finish ctx ~name ~entries
