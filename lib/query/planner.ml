(* Cost-based join planning (§III-A).

   A path pattern can be evaluated by expanding from the left endpoint
   only, from the right endpoint only, or bidirectionally with a
   double-pipelined join at the meeting vertex. The planner estimates the
   number of partial-path instances each plan materializes from degree
   statistics and picks the cheapest — the paper's "join key that
   minimizes the estimated number of all matched partial paths". *)

type plan =
  | Expand_left (* run left's path, then the reverse of right's *)
  | Expand_right
  | Bidirectional (* the double-pipelined join *)

let plan_name = function
  | Expand_left -> "expand-left"
  | Expand_right -> "expand-right"
  | Bidirectional -> "bidirectional-join"

(* Per-edge-label degree statistics: edge count and the number of distinct
   sources/targets carrying the label. The conditional fanout of out('l')
   is count/distinct_sources — the mean out-degree among vertices that
   actually have such edges — which is the estimate that matters on a
   schema-typed graph, where the unconditional average over all vertices
   grossly underestimates (e.g. posts per tag). *)

type label_stats = {
  count : int;
  distinct_sources : int;
  distinct_targets : int;
}

let stats_cache : (int * int, (int, label_stats) Hashtbl.t) Hashtbl.t = Hashtbl.create 4

let label_stats graph =
  (* Key the cache on the graph's identity-ish shape. *)
  let key = (Graph.n_vertices graph, Graph.n_edges graph) in
  match Hashtbl.find_opt stats_cache key with
  | Some stats -> stats
  | None ->
    let sources = Hashtbl.create 64 and targets = Hashtbl.create 64 in
    let counts = Hashtbl.create 64 in
    let dsrc = Hashtbl.create 16 and dtgt = Hashtbl.create 16 in
    let bump table l = Hashtbl.replace table l (1 + Option.value ~default:0 (Hashtbl.find_opt table l)) in
    for e = 0 to Graph.n_edges graph - 1 do
      let l = Graph.edge_label graph e in
      bump counts l;
      let src = (l, Graph.edge_src graph e) in
      if not (Hashtbl.mem sources src) then begin
        Hashtbl.replace sources src ();
        bump dsrc l
      end;
      let dst = (l, Graph.edge_dst graph e) in
      if not (Hashtbl.mem targets dst) then begin
        Hashtbl.replace targets dst ();
        bump dtgt l
      end
    done;
    let stats = Hashtbl.create 16 in
    let labels =
      (* det-ok: labels sorted before use, so stats build in a fixed order *)
      List.sort Int.compare (Hashtbl.fold (fun l _ acc -> l :: acc) counts [])
    in
    List.iter
      (fun l ->
        Hashtbl.replace stats l
          {
            count = Option.value ~default:0 (Hashtbl.find_opt counts l);
            distinct_sources = max 1 (Option.value ~default:0 (Hashtbl.find_opt dsrc l));
            distinct_targets = max 1 (Option.value ~default:0 (Hashtbl.find_opt dtgt l));
          })
      labels;
    Hashtbl.add stats_cache key stats;
    stats

(* Expected branching factor of one movement step. *)
let step_fanout graph (s : Ast.gstep) =
  let schema = Graph.schema graph in
  let stats = label_stats graph in
  let deg dir label =
    match Option.bind label (Schema.edge_label_opt schema) with
    | None -> Graph.avg_degree graph ~dir:Graph.Out ()
    | Some l -> begin
      match Hashtbl.find_opt stats l with
      | None -> 0.0
      | Some s -> begin
        match dir with
        | `Out -> float_of_int s.count /. float_of_int s.distinct_sources
        | `In -> float_of_int s.count /. float_of_int s.distinct_targets
      end
    end
  in
  match s with
  | Ast.Out l -> Some (deg `Out l)
  | Ast.In l -> Some (deg `In l)
  | Ast.Both l -> Some (deg `Out l +. deg `In l)
  | Ast.Repeat { label; times; _ } ->
    (* Geometric growth capped by the vertex count. *)
    let d = deg `Out label in
    Some (Float.min (d ** float_of_int times) (float_of_int (Graph.n_vertices graph)))
  | _ -> None

(* A filter keeps roughly this fraction of traversers. *)
let step_selectivity = function
  | Ast.Has (_, Ast.Eq _) -> Some 0.1
  | Ast.Has _ -> Some 0.5
  | Ast.Has_label _ -> Some 0.3
  | Ast.Where_neq _ -> Some 0.95
  | _ -> None

let source_cardinality graph = function
  | Ast.Lookup _ -> 1.0
  | Ast.Scan_all None -> float_of_int (Graph.n_vertices graph)
  | Ast.Scan_all (Some label) -> begin
    match Schema.vertex_label_opt (Graph.schema graph) label with
    | None -> 0.0
    | Some l ->
      let count = ref 0 in
      Graph.iter_vertices_with_label graph l (fun _ -> incr count);
      float_of_int !count
  end

(* Total intermediate traversers materialized by a traversal: the sum of
   the running cardinality after every step. *)
let traversal_cost graph (t : Ast.traversal) =
  let running = ref (source_cardinality graph t.Ast.source) in
  let total = ref !running in
  List.iter
    (fun s ->
      (match step_fanout graph s with
      | Some f -> running := !running *. f
      | None -> ());
      (match step_selectivity s with
      | Some sel -> running := !running *. sel
      | None -> ());
      total := !total +. !running)
    t.Ast.steps;
  (!total, !running)

(* Reverse a pure path traversal so it can be appended to the other side:
   movement steps flip direction and order; each vertex's filters stay
   attached to it; the source constraint becomes a trailing filter. *)
exception Not_reversible of string

let reverse_movement = function
  | Ast.Out l -> Ast.In l
  | Ast.In l -> Ast.Out l
  | Ast.Both l -> Ast.Both l
  | s -> raise (Not_reversible (Fmt.str "%a is not a movement step" Ast.pp_gstep s))

let is_movement = function Ast.Out _ | Ast.In _ | Ast.Both _ -> true | _ -> false

let is_vertex_filter = function
  | Ast.Has _ | Ast.Has_label _ | Ast.Where_neq _ -> true
  | _ -> false

let reverse_traversal (t : Ast.traversal) =
  (* Split into alternating [filters; movement] groups walking forward,
     then emit them walking backward. *)
  let source_filters =
    match t.Ast.source with
    | Ast.Scan_all None -> []
    | Ast.Scan_all (Some l) -> [ Ast.Has_label l ]
    | Ast.Lookup { label; key; value } ->
      (match label with Some l -> [ Ast.Has_label l ] | None -> [])
      @ [ Ast.Has (key, Ast.Eq value) ]
  in
  let rec group acc current = function
    | [] -> List.rev ((None, List.rev current) :: acc)
    | s :: rest when is_movement s -> group ((Some s, List.rev current) :: acc) [] rest
    | s :: rest when is_vertex_filter s -> group acc (s :: current) rest
    | s :: _ -> raise (Not_reversible (Fmt.str "%a cannot appear on a join path" Ast.pp_gstep s))
  in
  (* groups: [(move_into_group_or_None_for_source, filters_at_that_vertex)] *)
  match group [] [] t.Ast.steps with
  | [] -> assert false
  | (first_move, first_filters) :: rest ->
    let groups = (first_move, first_filters) :: rest in
    (* Walking backward: for each group from last to first, emit its
       filters, then the reversed movement that *entered* it. *)
    let rec emit acc = function
      | [] -> acc
      | (move, filters) :: earlier ->
        let acc = acc @ filters in
        let acc =
          match move with
          | Some m -> acc @ [ reverse_movement m ]
          | None -> acc
        in
        emit acc earlier
    in
    let reversed_groups = List.rev groups in
    let steps = emit [] reversed_groups @ source_filters in
    (* The reversed traversal starts at the join vertex; its source is
       supplied by the side it is appended to, so only steps are returned. *)
    steps

(* Decide how to execute a join pattern. *)
let choose graph ~left ~right =
  let cost_left, card_left = traversal_cost graph left in
  let cost_right, card_right = traversal_cost graph right in
  (* Cost of continuing [card] traversers through a (reversed) step
     list: the same running-cardinality accumulation as traversal_cost. *)
  let continuation_cost steps ~card =
    let running = ref card in
    let total = ref 0.0 in
    List.iter
      (fun s ->
        (match step_fanout graph s with Some f -> running := !running *. f | None -> ());
        (match step_selectivity s with Some sel -> running := !running *. sel | None -> ());
        total := !total +. !running)
      steps;
    !total
  in
  let uni_left =
    match reverse_traversal right with
    | steps -> Some (cost_left +. continuation_cost steps ~card:card_left)
    | exception Not_reversible _ -> None
  in
  let uni_right =
    match reverse_traversal left with
    | steps -> Some (cost_right +. continuation_cost steps ~card:card_right)
    | exception Not_reversible _ -> None
  in
  let bidir = cost_left +. cost_right in
  let candidates =
    List.filter_map Fun.id
      [
        Some (Bidirectional, bidir);
        Option.map (fun c -> (Expand_left, c)) uni_left;
        Option.map (fun c -> (Expand_right, c)) uni_right;
      ]
  in
  let best =
    List.fold_left
      (fun (bp, bc) (p, c) -> if c < bc then (p, c) else (bp, bc))
      (Bidirectional, bidir) candidates
  in
  fst best

(* Rewrite a join pattern under the chosen plan. Unidirectional plans
   flatten into a single traversal that passes *through* the join vertex:
   it is bound there, the reversed far side verifies the rest of the
   pattern, and a select jumps back before the continuation runs. *)
let join_binding = "__join"

let apply_plan plan (left : Ast.traversal) (right : Ast.traversal) post =
  let flatten near far =
    Ast.Traversal
      {
        near with
        Ast.steps =
          near.Ast.steps
          @ (Ast.As join_binding :: reverse_traversal far)
          @ (Ast.Select join_binding :: post);
      }
  in
  match plan with
  | Bidirectional -> Ast.Join_of { left; right; post }
  | Expand_left -> flatten left right
  | Expand_right -> flatten right left
