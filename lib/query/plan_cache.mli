(** Compiled-plan cache: parse -> strategies -> planner -> verify runs
    once per query family; later executions bind parameters into the
    cached verified program.

    A family is the query with its predicate literals (has()/within()
    values, index-lookup values) abstracted into parameter holes; the
    cache key is the normalized AST plus the parameters' type signature.
    Structural knobs (labels, times, limit, k, within arity) stay in the
    skeleton. Binding is a structural map over the cached program, so a
    hit skips re-lowering and re-verification and returns a program
    structurally equal to a cold compile — observable via {!stats}.

    The cache is per-graph (plans depend on the schema and the planner's
    degree statistics). It is not an engine-side structure, so its stats
    are mirrored into [Metrics] by the harness, not here. *)

type t

val create : graph:Graph.t -> t

type stats = {
  hits : int;
  misses : int;
  verifications : int; (** full verifier runs, i.e. cold compiles *)
}

val stats : t -> stats
val reset_stats : t -> unit

(** Cached families currently resident. *)
val size : t -> int

(** Compile query text through the cache. Raises {!Parser.Error} on
    syntax errors and {!Compile.Error} on malformed traversals. *)
val compile : t -> ?name:string -> string -> Program.t

(** Same, from an already-parsed AST. *)
val compile_ast : t -> ?name:string -> Ast.t -> Program.t
