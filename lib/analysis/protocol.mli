(** Declarative protocol state machines with a static totality checker and
    compiled runtime conformance monitors.

    One [spec] yields two artifacts: {!check_spec} statically proves the
    machine total (every message handled or explicitly rejected in every
    reachable state, deterministic, no orphan states, no send declared
    from a terminal state), and {!compile}/{!monitor} turn it into a dense
    transition table the engines feed under [~check:true]. Hitting a
    reject entry at runtime is a protocol violation carrying the spec's
    own explanation. *)

(** A protocol state machine over string-named states and message kinds.
    [trans] are legal steps, [rejects] are explicitly-illegal steps with
    the reason they are illegal, and [emits] declares from which states
    the machine itself originates a message (sends). *)
type spec = {
  sp_name : string;
  states : string list;
  msgs : string list;
  initial : string;
  terminals : string list;
  trans : (string * string * string) list;  (** state, msg, next state *)
  rejects : (string * string * string) list;  (** state, msg, reason *)
  emits : (string * string) list;  (** state, msg *)
}

type defect = {
  d_spec : string;
  d_what : string;
}

val pp_defect : Format.formatter -> defect -> unit

(** Static well-formedness + totality check; [[]] means the spec is
    proven total over its reachable states. *)
val check_spec : spec -> defect list

(** Spec compiled to dense int tables. *)
type compiled

(** Raises [Invalid_argument] listing the defects if {!check_spec} finds
    any. *)
val compile : spec -> compiled

(** Resolve a message name to its dense id (raises on unknown names). *)
val msg : compiled -> string -> int

(** A per-run monitor: a map from instance key (link/seq pair, vertex id,
    (query, phase) pair — caller-encoded as an int) to machine state. *)
type monitor

val monitor : compiled -> monitor

val spec_name : monitor -> string

(** Feed one observed message to one instance. [None] means conformant;
    [Some why] is a violation description. Instances are created lazily
    in the initial state. *)
val step : monitor -> key:int -> msg:int -> string option

(** After the run drains: every touched instance must sit in a terminal
    state. Callers gate this on "no deadline truncation, nothing
    abandoned". Returns the lowest-keyed stuck instance, if any. *)
val finish : monitor -> string option

(** Number of instances touched so far. *)
val instances : monitor -> int

(** {2 The shipped specs} *)

(** Reliable channel delivery — one instance per (link, sequence number). *)
val channel_spec : spec

(** Mid-query vertex migration — one instance per migrated vertex. *)
val migration_spec : spec

(** Tracker lifecycle — one instance per (query, phase). *)
val tracker_spec : spec

val all_specs : spec list

val channel : compiled Lazy.t
val migration : compiled Lazy.t
val tracker : compiled Lazy.t
