(* Static protocol specifications and compiled conformance monitors.

   PRs 3-5 grew three interacting distributed protocols — reliable channel
   delivery, mid-query vertex migration, and the tracker lifecycle behind
   Theorem 1's termination rule. Their correctness arguments are state-
   machine arguments ("a sequence number is never delivered twice", "a
   stash is drained exactly once, after install"), so this module states
   each protocol as a declarative state machine and gets two artifacts out
   of one spec:

   - a *static checker* ([check_spec]) proving the spec total: every
     message kind is either handled or explicitly rejected in every
     reachable state, transitions are deterministic, no state is orphaned
     and no send is declared from a terminal state;

   - a *compiled runtime monitor* ([monitor]) — a dense int-indexed
     transition table plus a per-instance state map — that the engines
     feed under [~check:true]. A reject entry reached at runtime is a
     protocol violation with the spec's own explanation attached. With
     [~check:false] no monitor exists and the hooks stay [None], so the
     production path is untouched.

   The specs are data, not code: the checker proves properties about the
   protocol as specified, and the monitor guarantees the implementation
   agrees with that spec on every schedule the explorer tries. *)

type spec = {
  sp_name : string;
  states : string list;
  msgs : string list;
  initial : string;
  terminals : string list;
  trans : (string * string * string) list; (* state, msg -> next state *)
  rejects : (string * string * string) list; (* state, msg -> why illegal *)
  emits : (string * string) list; (* state may send msg *)
}

type defect = {
  d_spec : string;
  d_what : string;
}

let pp_defect ppf d = Fmt.pf ppf "[%s] %s" d.d_spec d.d_what

(* --- Static checker ---------------------------------------------------- *)

let check_spec s =
  let defects = ref [] in
  let bad fmt = Fmt.kstr (fun what -> defects := { d_spec = s.sp_name; d_what = what } :: !defects) fmt in
  let known_state st = List.mem st s.states in
  let known_msg m = List.mem m s.msgs in
  let dup l =
    let rec go seen = function
      | [] -> None
      | x :: rest -> if List.mem x seen then Some x else go (x :: seen) rest
    in
    go [] l
  in
  (match dup s.states with
  | Some st -> bad "state %S declared twice" st
  | None -> ());
  (match dup s.msgs with
  | Some m -> bad "message %S declared twice" m
  | None -> ());
  if not (known_state s.initial) then bad "initial state %S not declared" s.initial;
  List.iter (fun st -> if not (known_state st) then bad "terminal state %S not declared" st) s.terminals;
  List.iter
    (fun (st, m, st') ->
      if not (known_state st) then bad "transition from unknown state %S" st;
      if not (known_msg m) then bad "transition on unknown message %S" m;
      if not (known_state st') then bad "transition to unknown state %S" st')
    s.trans;
  List.iter
    (fun (st, m, _) ->
      if not (known_state st) then bad "reject in unknown state %S" st;
      if not (known_msg m) then bad "reject on unknown message %S" m)
    s.rejects;
  (* Determinism: each (state, msg) resolves one way. *)
  let handled = List.map (fun (st, m, _) -> (st, m)) s.trans @ List.map (fun (st, m, _) -> (st, m)) s.rejects in
  (match dup handled with
  | Some (st, m) -> bad "(%s, %s) handled more than once" st m
  | None -> ());
  (* Terminal closure: the terminal set is absorbing. Environmental
     events may still arrive there (a late delivery after an abandon),
     but they must land on another terminal state, never resurrect the
     instance. *)
  List.iter
    (fun (st, m, st') ->
      if List.mem st s.terminals && not (List.mem st' s.terminals) then
        bad "terminal state %S has transition on %S back to non-terminal %S" st m st')
    s.trans;
  (* Reachability from the initial state over trans. *)
  let reachable = Hashtbl.create 8 in
  let rec visit st =
    if not (Hashtbl.mem reachable st) then begin
      Hashtbl.replace reachable st ();
      List.iter (fun (src, _, dst) -> if String.equal src st then visit dst) s.trans
    end
  in
  if known_state s.initial then visit s.initial;
  List.iter
    (fun st -> if not (Hashtbl.mem reachable st) then bad "state %S is unreachable" st)
    s.states;
  (* Total coverage: every message is handled or rejected in every
     reachable state — the "every message kind handled in every reachable
     state" proof obligation. *)
  List.iter
    (fun st ->
      if Hashtbl.mem reachable st then
        List.iter
          (fun m -> if not (List.mem (st, m) handled) then bad "(%s, %s) is neither handled nor rejected" st m)
          s.msgs)
    s.states;
  (* No send from a terminal state, and every declared send is a legal
     transition of its own machine. *)
  List.iter
    (fun (st, m) ->
      if not (known_state st) then bad "emit from unknown state %S" st;
      if not (known_msg m) then bad "emit of unknown message %S" m;
      if List.mem st s.terminals then bad "terminal state %S declares a send of %S" st m;
      if not (List.exists (fun (st', m', _) -> String.equal st st' && String.equal m m') s.trans) then
        bad "emit (%s, %s) has no matching transition" st m)
    s.emits;
  List.rev !defects

(* --- Compilation -------------------------------------------------------

   States and messages become dense ints; the transition function becomes
   a [n_states * n_msgs] array of outcomes. An instance is one int. *)

type outcome =
  | Next of int
  | Reject of string

type compiled = {
  c_name : string;
  state_names : string array;
  msg_names : string array;
  c_initial : int;
  terminal : bool array;
  table : outcome array; (* state * n_msgs + msg *)
}

let compile s =
  (match check_spec s with
  | [] -> ()
  | ds ->
    invalid_arg
      (Fmt.str "Protocol.compile %s: %a" s.sp_name (Fmt.list ~sep:Fmt.semi pp_defect) ds));
  let state_names = Array.of_list s.states in
  let msg_names = Array.of_list s.msgs in
  let n_states = Array.length state_names in
  let n_msgs = Array.length msg_names in
  let state_id st =
    let rec go i = if String.equal state_names.(i) st then i else go (i + 1) in
    go 0
  in
  let msg_id m =
    let rec go i = if String.equal msg_names.(i) m then i else go (i + 1) in
    go 0
  in
  let table =
    Array.make (n_states * n_msgs)
      (Reject "unreachable state: statically proven never entered")
  in
  List.iter (fun (st, m, st') -> table.((state_id st * n_msgs) + msg_id m) <- Next (state_id st')) s.trans;
  List.iter (fun (st, m, why) -> table.((state_id st * n_msgs) + msg_id m) <- Reject why) s.rejects;
  let terminal = Array.map (fun st -> List.mem st s.terminals) state_names in
  { c_name = s.sp_name; state_names; msg_names; c_initial = state_id s.initial; terminal; table }

let msg c name =
  let rec go i =
    if i >= Array.length c.msg_names then invalid_arg (Fmt.str "Protocol.msg %s: unknown %S" c.c_name name)
    else if String.equal c.msg_names.(i) name then i
    else go (i + 1)
  in
  go 0

(* --- Runtime monitor ---------------------------------------------------- *)

type monitor = {
  compiled : compiled;
  instances : (int, int) Hashtbl.t; (* instance key -> state id *)
}

let monitor compiled = { compiled; instances = Hashtbl.create 64 }

let spec_name m = m.compiled.c_name

let step m ~key ~msg =
  let c = m.compiled in
  let state = match Hashtbl.find_opt m.instances key with Some st -> st | None -> c.c_initial in
  match c.table.((state * Array.length c.msg_names) + msg) with
  | Next st' ->
    Hashtbl.replace m.instances key st';
    None
  | Reject why ->
    Some
      (Fmt.str "%s: message %S in state %S — %s" c.c_name c.msg_names.(msg) c.state_names.(state)
         why)

(* All touched instances must sit in a terminal state once the run drains
   (callers gate this on "no deadline truncation, nothing abandoned"). *)
let finish m =
  let stuck =
    (* det-ok: fold result is sorted by key before the first is reported *)
    Hashtbl.fold
      (fun key st acc -> if m.compiled.terminal.(st) then acc else (key, st) :: acc)
      m.instances []
  in
  match List.sort (fun (k1, _) (k2, _) -> Int.compare k1 k2) stuck with
  | [] -> None
  | (key, st) :: rest ->
    Some
      (Fmt.str "%s: instance %d finished in non-terminal state %S (%d stuck in total)"
         m.compiled.c_name key
         m.compiled.state_names.(st)
         (List.length rest + 1))

let instances m = Hashtbl.length m.instances

(* --- The three protocol specs ------------------------------------------ *)

(* Reliable channel delivery, one instance per (link, sequence number).
   Mirrors lib/sim/channel.ml's fault-plane path: a packet is sent once,
   retransmitted on ack timeout, delivered exactly once (dedup window),
   acked every time it arrives, and abandoned after the retry budget.
   Late arrivals after an abandon are legal (the wire does not know the
   sender gave up); a second *delivery* never is. *)
let channel_spec =
  {
    sp_name = "channel";
    states = [ "start"; "inflight"; "delivered"; "acked"; "abandoned_sent"; "abandoned_dlv" ];
    msgs = [ "send"; "retransmit"; "deliver"; "dup"; "ack"; "abandon" ];
    initial = "start";
    terminals = [ "acked"; "abandoned_sent"; "abandoned_dlv" ];
    trans =
      [
        ("start", "send", "inflight");
        ("inflight", "retransmit", "inflight");
        ("inflight", "deliver", "delivered");
        ("inflight", "abandon", "abandoned_sent");
        ("delivered", "retransmit", "delivered"); (* ack lost, sender re-sends *)
        ("delivered", "dup", "delivered"); (* the re-send arrives, dedup holds *)
        ("delivered", "ack", "acked");
        ("delivered", "abandon", "abandoned_dlv"); (* all acks lost *)
        ("acked", "dup", "acked"); (* ghost duplicate trailing the ack *)
        ("acked", "ack", "acked"); (* dup's ack *)
        ("abandoned_sent", "deliver", "abandoned_dlv"); (* late arrival *)
        ("abandoned_dlv", "dup", "abandoned_dlv");
        ("abandoned_dlv", "ack", "abandoned_dlv");
      ];
    rejects =
      [
        ("start", "retransmit", "retransmit before first send");
        ("start", "deliver", "delivery of a never-sent sequence number");
        ("start", "dup", "duplicate of a never-sent sequence number");
        ("start", "ack", "ack of a never-sent sequence number");
        ("start", "abandon", "abandon of a never-sent sequence number");
        ("inflight", "send", "sequence number assigned twice");
        ("inflight", "dup", "duplicate verdict before any delivery: dedup state corrupt");
        ("inflight", "ack", "ack before any delivery");
        ("delivered", "send", "sequence number assigned twice");
        ("delivered", "deliver", "second delivery of one sequence number: dedup window bypassed");
        ("acked", "send", "sequence number assigned twice");
        ("acked", "retransmit", "retransmit after the ack came back");
        ("acked", "deliver", "delivery after ack: dedup window bypassed");
        ("acked", "abandon", "abandon after the ack came back");
        ("abandoned_sent", "send", "sequence number assigned twice");
        ("abandoned_sent", "retransmit", "retransmit after abandoning");
        ("abandoned_sent", "dup", "duplicate verdict before any delivery: dedup state corrupt");
        ("abandoned_sent", "ack", "ack before any delivery");
        ("abandoned_sent", "abandon", "abandoned twice");
        ("abandoned_dlv", "send", "sequence number assigned twice");
        ("abandoned_dlv", "retransmit", "retransmit after abandoning");
        ("abandoned_dlv", "deliver", "second delivery of one sequence number: dedup window bypassed");
        ("abandoned_dlv", "abandon", "abandoned twice");
      ];
    emits = [ ("start", "send"); ("inflight", "retransmit"); ("delivered", "retransmit") ];
  }

(* Mid-query vertex migration, one instance per migrated vertex. Mirrors
   the async engine's adaptive path: a refinement round orders the move,
   the old owner extracts memo entries into [P_migrate_data], racing
   traversers stash (at the old owner) or forward until the install, and
   the install drains the stash exactly once. *)
let migration_spec =
  {
    sp_name = "migration";
    states = [ "start"; "ordered"; "data_inflight"; "installed" ];
    msgs = [ "order"; "extract"; "stash"; "forward"; "install" ];
    initial = "start";
    terminals = [ "installed" ];
    trans =
      [
        ("start", "order", "ordered");
        ("ordered", "extract", "data_inflight");
        ("ordered", "stash", "ordered"); (* traverser raced the P_migrate *)
        ("ordered", "forward", "ordered");
        ("data_inflight", "stash", "data_inflight");
        ("data_inflight", "forward", "data_inflight");
        ("data_inflight", "install", "installed");
        ("installed", "forward", "installed"); (* post-install routing is plain dispatch *)
      ];
    rejects =
      [
        ("start", "extract", "memo extraction for a vertex never ordered to move");
        ("start", "stash", "stash for a vertex never ordered to move");
        ("start", "forward", "forward for a vertex never ordered to move");
        ("start", "install", "install for a vertex never ordered to move");
        ("ordered", "order", "vertex ordered to migrate twice: anti-thrash rule broken");
        ("ordered", "install", "install before the old owner extracted its entries");
        ("data_inflight", "order", "vertex ordered to migrate twice: anti-thrash rule broken");
        ("data_inflight", "extract", "memo entries extracted twice");
        ("installed", "order", "vertex ordered to migrate twice: anti-thrash rule broken");
        ("installed", "extract", "memo entries extracted after install");
        ("installed", "stash", "stash after the install drained it: that traverser is lost");
        ("installed", "install", "installed twice");
      ];
    emits = [ ("start", "order"); ("ordered", "extract") ];
  }

(* Tracker lifecycle, one instance per (query, phase). Mirrors Progress +
   the coordinator: the tracker registers at query launch, accumulates
   finished-weight receipts, completes exactly when Theorem 1's sum
   closes, and is released exactly once; a deadline may time it out from
   any live state. Under hierarchical tracking a "delegate" merge — an
   interior worker absorbing a subtree's coalesced weight on its way to
   the root — is only legal while the tracker is open: a merge after
   completion means some weight was double-counted, and a merge after
   release or timeout means the tree kept shipping weight for a query
   the coordinator already reclaimed. The delegate hop therefore extends
   register -> receive -> complete -> release without weakening it. *)
let tracker_spec =
  {
    sp_name = "tracker";
    states = [ "start"; "open"; "complete"; "released"; "timedout" ];
    msgs = [ "register"; "receive"; "delegate"; "complete"; "release"; "timeout" ];
    initial = "start";
    terminals = [ "released"; "timedout" ];
    trans =
      [
        ("start", "register", "open");
        ("start", "timeout", "timedout"); (* deadline before launch *)
        ("open", "receive", "open");
        ("open", "delegate", "open");
        ("open", "complete", "complete");
        ("open", "timeout", "timedout");
        ("complete", "release", "released");
        ("complete", "timeout", "timedout"); (* deadline between completion and reclaim *)
      ];
    rejects =
      [
        ("start", "receive", "weight receipt before the tracker registered");
        ("start", "delegate", "delegate merge before the tracker registered");
        ("start", "complete", "completion before the tracker registered");
        ("start", "release", "release before the tracker registered");
        ("open", "register", "tracker registered twice");
        ("open", "release", "release before Theorem 1's conservation sum closed");
        ("complete", "register", "tracker registered twice");
        ("complete", "receive", "weight receipt after completion: some weight was double-counted");
        ("complete", "delegate", "delegate merge after completion: subtree weight double-counted");
        ("complete", "complete", "completed twice");
        ("released", "register", "tracker registered twice");
        ("released", "receive", "weight receipt after release");
        ("released", "delegate", "delegate merge after release");
        ("released", "complete", "completion after release");
        ("released", "release", "released twice");
        ("released", "timeout", "timeout after release");
        ("timedout", "register", "tracker registered after timing out");
        ("timedout", "receive", "weight receipt after timing out");
        ("timedout", "delegate", "delegate merge after timing out");
        ("timedout", "complete", "completion after timing out");
        ("timedout", "release", "release after timing out");
        ("timedout", "timeout", "timed out twice");
      ];
    emits = [ ("open", "receive"); ("open", "delegate") ];
  }

let all_specs = [ channel_spec; migration_spec; tracker_spec ]

let channel = lazy (compile channel_spec)
let migration = lazy (compile migration_spec)
let tracker = lazy (compile tracker_spec)
