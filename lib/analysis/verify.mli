(** Static program verifier: dataflow analyses over compiled PSTM step
    arrays.

    Checks the static shadows of the engines' dynamic invariants —
    progression-weight conservation (Theorem 1), memo lifetime (§III-B/C),
    phase consistency, and register def-before-use — and reports every
    violation as a structured {!Diagnostic.t} instead of stopping at the
    first, as {!Program.make} does. *)

(** A program candidate. {!Program.t} values are always structurally valid
    (construction raises otherwise), so tests feed raw step arrays here to
    exercise the rejection paths. *)
type target = {
  name : string;
  steps : Step.t array;
  n_registers : int;
  entries : int array;
}

val of_program : Program.t -> target

(** Run every analysis; diagnostics come out in deterministic order
    (structure, registers, reachability/phases, joins, aggregates,
    cycles, def-before-use; step order within each). *)
val check : target -> Diagnostic.t list

val check_program : Program.t -> Diagnostic.t list

val errors : Diagnostic.t list -> Diagnostic.t list
val is_clean : Diagnostic.t list -> bool
val pp_report : Format.formatter -> Diagnostic.t list -> unit

(** Gate for program-construction sites: returns the program unchanged
    when error-free, raises {!Program.Invalid} with the full report
    otherwise. *)
val program_exn : Program.t -> Program.t
