(** Bounded DPOR-style schedule exploration over {!Event_queue}
    same-timestamp tie-breaks.

    A schedule is identified by a replay token — the list of (choice
    point, rank) decisions where it deviates from the default insertion
    order. The systematic phase breadth-first extends the empty token one
    decision at a time, deviating only where a tied entry would overtake
    an earlier entry of its own dependence class (other reorderings
    commute); seeded random walks cover deeper interleavings. Every
    schedule must terminate without a sanitizer/monitor violation and
    produce the same result fingerprint as schedule 0; a failing schedule
    is shrunk to a minimal token. *)

(** What one schedule produced: a canonical result digest and, if the run
    failed (sanitizer, monitor, non-termination, oracle mismatch — the
    caller decides), a description of the violation. *)
type outcome = {
  fingerprint : string;
  violation : string option;
}

type decision = {
  at : int;  (** choice-point index within the run *)
  rank : int;  (** which tied entry fires first; 0 is the default order *)
}

type token = decision list

(** ["default"] for the empty token, else ["12=1,40=2"]. *)
val token_to_string : token -> string

val token_of_string : string -> (token, string) result

(** Runs one engine execution under the given chooser and reports its
    outcome. Must be deterministic for a fixed chooser. *)
type runner = Event_queue.chooser option -> outcome

(** Re-run the exact schedule a token describes. *)
val replay : run:runner -> token -> outcome

type counterexample = {
  cx_token : token;  (** shrunk to a locally-minimal failing token *)
  cx_raw : token;  (** the failing token as first discovered *)
  cx_detail : string;
  cx_shrink_tries : int;
}

type report = {
  schedules : int;  (** engine runs performed, including shrink replays *)
  choice_points : int;  (** max choice points observed in one schedule *)
  max_classes : int;  (** max distinct dependence classes at one tie *)
  counterexample : counterexample option;
}

(** [explore ~run ()] searches up to [budget] schedules ([random_walks]
    of them seeded random walks, the rest systematic), deviating only
    within the first [horizon] choice points, and stops at the first
    violation. *)
val explore :
  ?budget:int ->
  ?random_walks:int ->
  ?horizon:int ->
  ?seed:int ->
  ?walk_bias:float ->
  run:runner ->
  unit ->
  report
