(* Bounded schedule exploration over event-queue tie-breaks.

   The DES normally collapses the scheduling freedom of a real
   asynchronous cluster into one canonical order: ties at a timestamp fire
   in insertion order. Every entry now carries a dependence tag (directed
   link / node / worker, from [Cluster]), and [Event_queue.set_chooser]
   lets us pick which tied entry fires first — so one engine run under one
   chooser is one admissible schedule, and this module enumerates them.

   The exploration is DPOR-flavored: reordering two tied entries from
   *different* dependence classes commutes (they touch disjoint protocol
   state), so the systematic phase only deviates where a tied entry would
   jump ahead of an *earlier entry of its own class* — a real protocol
   race (two arrivals on one link, a retransmit timer vs. the ack it
   races, two deliveries into one worker). Each such (choice point, rank)
   pair seeds a child schedule; children are explored breadth-first under
   a schedule budget, and seeded random walks cover the tail the
   systematic frontier does not reach.

   Every schedule asserts the same three things (via the caller-supplied
   [run] function): no sanitizer/monitor violation, termination, and a
   result fingerprint equal to schedule 0's (which the caller separately
   pins to the sequential oracle). A failing schedule is shrunk by greedy
   decision deletion to a minimal token — a printable "12=1,40=2" string
   that [replay] turns back into the exact failing schedule. *)

type outcome = {
  fingerprint : string;
  violation : string option;
}

type decision = {
  at : int; (* choice-point index within the run *)
  rank : int; (* which tied entry fires first (0 = default) *)
}

type token = decision list

let token_to_string = function
  | [] -> "default"
  | ds -> String.concat "," (List.map (fun d -> Printf.sprintf "%d=%d" d.at d.rank) ds)

let token_of_string s =
  let s = String.trim s in
  if String.equal s "" || String.equal s "default" then Ok []
  else
    try
      let ds =
        List.map
          (fun part ->
            match String.split_on_char '=' (String.trim part) with
            | [ p; r ] -> { at = int_of_string p; rank = int_of_string r }
            | _ -> failwith "part")
          (String.split_on_char ',' s)
      in
      let sorted = List.sort (fun a b -> Int.compare a.at b.at) ds in
      let rec dup = function
        | a :: (b :: _ as rest) -> if a.at = b.at then true else dup rest
        | _ -> false
      in
      if dup sorted then Error (Printf.sprintf "replay token %S repeats a choice point" s)
      else if List.exists (fun d -> d.at < 0 || d.rank < 0) sorted then
        Error (Printf.sprintf "replay token %S has a negative component" s)
      else Ok sorted
    with _ -> Error (Printf.sprintf "cannot parse replay token %S (want \"12=1,40=2\")" s)

(* --- Per-run recording -------------------------------------------------- *)

type recording = {
  mutable points : int; (* choice points hit *)
  mutable max_classes : int; (* most distinct dependence classes at one tie *)
  mutable alts : (int * int list) list; (* point -> meaningful ranks, reversed *)
}

let fresh_recording () = { points = 0; max_classes = 0; alts = [] }

(* Ranks whose entry would jump ahead of an earlier tied entry of its own
   dependence class — the only reorderings that do not commute. *)
let meaningful_ranks (choices : Event_queue.choice array) =
  let n = Array.length choices in
  let out = ref [] in
  for r = n - 1 downto 1 do
    let tag = choices.(r).Event_queue.c_tag in
    let conflicts = ref false in
    for j = 0 to r - 1 do
      if choices.(j).Event_queue.c_tag = tag then conflicts := true
    done;
    if !conflicts then out := r :: !out
  done;
  !out

let distinct_classes (choices : Event_queue.choice array) =
  let n = Array.length choices in
  let count = ref 0 in
  for i = 0 to n - 1 do
    let tag = choices.(i).Event_queue.c_tag in
    let first = ref true in
    for j = 0 to i - 1 do
      if choices.(j).Event_queue.c_tag = tag then first := false
    done;
    if !first then incr count
  done;
  !count

(* Build the chooser for one schedule. [token] pins decisions; [record]
   collects stats + alternatives; [rng] (random-walk mode) deviates at
   unpinned points and appends its picks to [picked]. *)
let make_chooser ?record ?rng ?(walk_bias = 0.3) ~horizon token picked =
  let pinned = Hashtbl.create 8 in
  List.iter (fun d -> Hashtbl.replace pinned d.at d.rank) token;
  let point = ref (-1) in
  fun choices ->
    incr point;
    let p = !point in
    (match record with
    | None -> ()
    | Some r ->
      r.points <- r.points + 1;
      let classes = distinct_classes choices in
      if classes > r.max_classes then r.max_classes <- classes;
      if p < horizon then begin
        match meaningful_ranks choices with
        | [] -> ()
        | ranks -> r.alts <- (p, ranks) :: r.alts
      end);
    match Hashtbl.find_opt pinned p with
    | Some r -> r
    | None -> begin
      match rng with
      | Some rng when p < horizon ->
        (* Walks deviate to *any* rank, not just same-class conflicts:
           they are the coverage net for reorderings the systematic
           phase's commutativity argument prunes away. *)
        let n = Array.length choices in
        if n > 1 && Prng.chance rng walk_bias then begin
          let r = 1 + Prng.int rng (n - 1) in
          picked := { at = p; rank = r } :: !picked;
          r
        end
        else 0
      | _ -> 0
    end

(* --- Exploration -------------------------------------------------------- *)

type counterexample = {
  cx_token : token; (* shrunk *)
  cx_raw : token; (* as first found *)
  cx_detail : string;
  cx_shrink_tries : int;
}

type report = {
  schedules : int; (* engine runs, including shrink replays *)
  choice_points : int; (* max choice points in any one schedule *)
  max_classes : int; (* max distinct dependence classes at one tie *)
  counterexample : counterexample option;
}

type runner = Event_queue.chooser option -> outcome

let run_token ?record ?rng ?walk_bias ~horizon (run : runner) token =
  let picked = ref [] in
  let chooser = make_chooser ?record ?rng ?walk_bias ~horizon token picked in
  let outcome = try run (Some chooser) with exn -> { fingerprint = ""; violation = Some (Printexc.to_string exn) } in
  (outcome, List.rev !picked)

let replay ~run token =
  fst (run_token ~horizon:0 run token)

(* Greedy decision deletion to a locally-minimal failing token. [fails]
   judges a replay (violation or fingerprint divergence). *)
let shrink ~fails ~budget token =
  let tries = ref 0 in
  let still_fails t =
    if !tries >= budget then false
    else begin
      incr tries;
      fails t <> None
    end
  in
  let rec pass t =
    let n = List.length t in
    let rec try_drop i =
      if i >= n then t
      else
        let t' = List.filteri (fun j _ -> j <> i) t in
        if still_fails t' then pass t' else try_drop (i + 1)
    in
    if n = 0 then t else try_drop 0
  in
  let minimal = pass token in
  (minimal, !tries)

let explore ?(budget = 64) ?(random_walks = 16) ?(horizon = 5000) ?(seed = 0x90c) ?walk_bias
    ~(run : runner) () =
  let schedules = ref 0 in
  let choice_points = ref 0 in
  let max_classes = ref 0 in
  let reference = ref None in
  let counterexample = ref None in
  let systematic_budget = max 1 (budget - random_walks) in
  let note_record (r : recording) =
    if r.points > !choice_points then choice_points := r.points;
    if r.max_classes > !max_classes then max_classes := r.max_classes
  in
  let judge token raw outcome =
    match outcome.violation with
    | Some detail -> Some (token, raw, detail)
    | None -> begin
      match !reference with
      | None ->
        reference := Some outcome.fingerprint;
        None
      | Some fp when String.equal fp outcome.fingerprint -> None
      | Some fp ->
        Some
          ( token,
            raw,
            Printf.sprintf "schedule-dependent result: fingerprint %S differs from schedule 0's %S"
              outcome.fingerprint fp )
    end
  in
  let fails token =
    let outcome = replay ~run token in
    incr schedules;
    match outcome.violation with
    | Some d -> Some d
    | None -> begin
      match !reference with
      | Some fp when not (String.equal fp outcome.fingerprint) ->
        Some "schedule-dependent result fingerprint"
      | _ -> None
    end
  in
  let found (token, raw, detail) =
    let shrink_budget = max 8 (budget / 2) in
    let minimal, tries = shrink ~fails ~budget:shrink_budget token in
    counterexample :=
      Some { cx_token = minimal; cx_raw = raw; cx_detail = detail; cx_shrink_tries = tries }
  in
  (* Systematic phase: BFS over single-decision extensions. *)
  let queue = Queue.create () in
  Queue.add [] queue;
  let enqueued = ref 1 in
  while !counterexample = None && !schedules < systematic_budget && not (Queue.is_empty queue) do
    let token = Queue.pop queue in
    let record = fresh_recording () in
    let outcome, _ = run_token ~record ~horizon run token in
    incr schedules;
    note_record record;
    match judge token token outcome with
    | Some cx -> found cx
    | None ->
      (* Extend only past the last pinned point, so each child is a new
         schedule, not a re-exploration of an ancestor's prefix. *)
      let frontier = List.fold_left (fun acc d -> max acc (d.at + 1)) 0 token in
      List.iter
        (fun (p, ranks) ->
          if p >= frontier then
            List.iter
              (fun r ->
                if !enqueued < budget * 8 then begin
                  incr enqueued;
                  Queue.add (token @ [ { at = p; rank = r } ]) queue
                end)
              ranks)
        (List.rev record.alts)
  done;
  (* Random-walk phase: seeded deviations with their picks recorded, so a
     failing walk replays from its token alone. *)
  let walk = ref 0 in
  while !counterexample = None && !walk < random_walks && !schedules < budget do
    let rng = Prng.create (seed + (0x9e3779b9 * !walk)) in
    let record = fresh_recording () in
    let outcome, picked = run_token ~record ~rng ?walk_bias ~horizon run [] in
    incr schedules;
    incr walk;
    note_record record;
    match judge picked picked outcome with
    | Some cx -> found cx
    | None -> ()
  done;
  {
    schedules = !schedules;
    choice_points = !choice_points;
    max_classes = !max_classes;
    counterexample = !counterexample;
  }
