(* Structured verifier diagnostics.

   Every finding names the invariant class it violates, the offending step
   (when one exists) and a human-readable explanation, so planner and
   engine bugs surface as actionable compile-time reports instead of
   nondeterministic hangs in the simulator. *)

type severity =
  | Error (* the program would hang, drop weight, or corrupt memo state *)
  | Warning (* suspicious but executable *)

type kind =
  | Malformed (* structural: bad entries, bad successor targets, register ranges *)
  | Unreachable_step (* dead code: no entry reaches the step *)
  | Phase_conflict (* a step reachable both before and after an aggregate *)
  | Dropped_weight (* a traverser's weight can vanish without being finished *)
  | Unbounded_repeat (* a control-flow cycle with no Visit memo bound *)
  | Use_before_def (* a register read on a path where nothing defined it *)
  | Orphan_join (* a double-pipelined join side with no partner *)
  | Join_mismatch (* partnered sides whose payload arities or phases disagree *)
  | Unclosed_partial (* a partial aggregate no phase boundary ever combines *)

type t = {
  severity : severity;
  kind : kind;
  step : int option; (* offending step index, when the finding has one *)
  message : string;
}

let kind_name = function
  | Malformed -> "malformed"
  | Unreachable_step -> "unreachable-step"
  | Phase_conflict -> "phase-conflict"
  | Dropped_weight -> "dropped-weight"
  | Unbounded_repeat -> "unbounded-repeat"
  | Use_before_def -> "use-before-def"
  | Orphan_join -> "orphan-join"
  | Join_mismatch -> "join-mismatch"
  | Unclosed_partial -> "unclosed-partial"

let severity_name = function Error -> "error" | Warning -> "warning"

let error ?step kind fmt =
  Fmt.kstr (fun message -> { severity = Error; kind; step; message }) fmt

let warning ?step kind fmt =
  Fmt.kstr (fun message -> { severity = Warning; kind; step; message }) fmt

let is_error d = d.severity = Error

let pp ppf d =
  Fmt.pf ppf "%s[%s]%a: %s" (severity_name d.severity) (kind_name d.kind)
    (fun ppf -> function None -> () | Some i -> Fmt.pf ppf " step %d" i)
    d.step d.message
