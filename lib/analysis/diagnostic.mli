(** Structured findings of the program verifier ({!Verify}).

    A diagnostic names the violated invariant class, the offending step
    index (when one exists) and an explanation. *)

type severity =
  | Error
  | Warning

type kind =
  | Malformed  (** structural: bad entries, successor targets, register ranges *)
  | Unreachable_step
  | Phase_conflict  (** step reachable in two different phases *)
  | Dropped_weight  (** progression weight can vanish unfinished (Theorem 1) *)
  | Unbounded_repeat  (** control-flow cycle with no Visit memo bound *)
  | Use_before_def  (** register read on a path where nothing defined it *)
  | Orphan_join  (** double-pipelined join side with no partner (§III-B) *)
  | Join_mismatch  (** partnered sides with mismatched payloads or phases *)
  | Unclosed_partial  (** partial aggregate no phase boundary combines *)

type t = {
  severity : severity;
  kind : kind;
  step : int option;
  message : string;
}

val kind_name : kind -> string
val severity_name : severity -> string
val error : ?step:int -> kind -> ('a, Format.formatter, unit, t) format4 -> 'a
val warning : ?step:int -> kind -> ('a, Format.formatter, unit, t) format4 -> 'a
val is_error : t -> bool
val pp : Format.formatter -> t -> unit
