(** Determinism lint: scans OCaml sources for constructs that make a
    discrete-event-simulation run depend on hash order, global random
    state or the host clock.

    Justified sites carry a same-line [(* det-ok: reason *)] marker; the
    reason must be non-empty for the marker to suppress. *)

type hazard =
  | Unordered_iteration  (** Hashtbl.iter/fold/to_seq: bucket order *)
  | Polymorphic_compare  (** structural compare on unconstrained values *)
  | Float_compare  (** bare [compare] on a float-bearing line: NaN order *)
  | Raw_random  (** Random.* outside the seeded Prng (self_init worst) *)
  | Wall_clock  (** Unix.gettimeofday / Unix.time / Sys.time *)

type finding = {
  file : string;
  line : int;  (** 1-based *)
  hazard : hazard;
  excerpt : string;  (** trimmed source line *)
}

val hazard_name : hazard -> string
val hazard_hint : hazard -> string

(** Scan one source text (exposed for tests). *)
val scan : file:string -> string -> finding list

val scan_file : string -> finding list

(** Every [.ml] under the given roots, sorted. *)
val ml_files_under : string list -> string list

(** Scan every [.ml] under the given roots, in sorted file order. *)
val scan_roots : string list -> finding list

val pp_finding : Format.formatter -> finding -> unit
