(* Static program verifier: dataflow analyses over compiled PSTM step
   arrays.

   The paper's correctness argument leans on two invariants that are only
   observable dynamically — progression-weight conservation (Theorem 1:
   finished weights must sum exactly back to Weight.root, or termination
   detection hangs or fires early) and query-scoped memo hygiene (§III-B:
   join-side row buckets must be probed by their partner, partial
   aggregates must be combined by their phase boundary). Both reduce to
   checkable properties of the step graph, so a whole class of
   planner/compiler bugs can be rejected before a traverser ever runs:

   - structure: entry steps are sources, successor targets are in range,
     non-terminal steps have successors (a missing successor IS a dropped
     weight: the interpreter would finish the traverser's share without
     the step semantics asking for it);
   - reachability and phase consistency: every step is reachable from an
     entry in exactly one phase (Aggregate steps are the only phase
     boundaries);
   - weight flow: every control-flow cycle passes through a Visit step,
     whose memo min-distance bound is the only thing that makes loops
     terminate — a cycle without one lets traversers multiply forever and
     the phase's tracker never completes;
   - memo lifetime: each double-pipelined join side has exactly one
     partner with matching payload arity in the same phase, and each
     phase closes at most one partial aggregate (a second Aggregate in
     the same phase writes partials that the phase-completion pull never
     combines);
   - registers: def-before-use — a forward must-be-defined dataflow over
     the step graph; reading a register no path has written evaluates
     Null and silently corrupts predicates and join keys.

   Unlike Program.make, which raises on the first violation, the verifier
   collects every finding as a structured Diagnostic so tooling (the
   `graphdance verify` subcommand, tests) can report them all at once. *)

type target = {
  name : string;
  steps : Step.t array;
  n_registers : int;
  entries : int array;
}

let of_program p =
  {
    name = Program.name p;
    steps = Program.steps p;
    n_registers = Program.n_registers p;
    entries = Program.entries p;
  }

(* Successor edges of a step; `Bump marks the phase boundary after an
   aggregation. Out-of-range targets are kept (the structural check
   reports them) and filtered by each analysis. *)
let successors (s : Step.t) =
  match s.Step.op with
  | Step.Emit _ -> []
  | Step.Visit { cont; _ } -> [ (s.Step.next, `Same); (cont, `Same) ]
  | Step.Join { cont; _ } -> [ (cont, `Same) ]
  | Step.Aggregate _ -> [ (s.Step.next, `Bump) ]
  | Step.Index_lookup _ | Step.Scan _ | Step.Expand _ | Step.Filter _ | Step.Set_reg _
  | Step.Move_to _ | Step.Dedup _ ->
    [ (s.Step.next, `Same) ]

let in_range tg i = i >= 0 && i < Array.length tg.steps

(* --- Structure: entries, successor targets, register ranges ----------- *)

let check_structure tg add =
  let n = Array.length tg.steps in
  if n = 0 then add (Diagnostic.error Diagnostic.Malformed "program has no steps");
  if Array.length tg.entries = 0 then
    add (Diagnostic.error Diagnostic.Malformed "program has no entry steps");
  if tg.n_registers < 0 then
    add (Diagnostic.error Diagnostic.Malformed "negative register count");
  Array.iter
    (fun e ->
      if not (in_range tg e) then
        add (Diagnostic.error Diagnostic.Malformed "entry index %d out of range" e)
      else if not (Step.is_source tg.steps.(e).Step.op) then
        add
          (Diagnostic.error ~step:e Diagnostic.Malformed "entry step is %s, not a source"
             (Step.op_name tg.steps.(e).Step.op)))
    tg.entries;
  Array.iteri
    (fun i s ->
      if Step.is_source s.Step.op && not (Array.exists (Int.equal i) tg.entries) then
        add
          (Diagnostic.error ~step:i Diagnostic.Malformed
             "source step is not listed as an entry: it would never spawn traversers"))
    tg.steps;
  Array.iteri
    (fun i s ->
      let check_target what t =
        if not (in_range tg t) then
          add (Diagnostic.error ~step:i Diagnostic.Malformed "%s target %d out of range" what t)
      in
      match s.Step.op with
      | Step.Emit _ ->
        if s.Step.next <> -1 then
          add (Diagnostic.error ~step:i Diagnostic.Malformed "emit must be terminal (next = -1)")
      | Step.Visit { cont; max_hops; _ } ->
        check_target "next" s.Step.next;
        check_target "cont" cont;
        if max_hops < 1 then
          add
            (Diagnostic.warning ~step:i Diagnostic.Malformed
               "visit with max_hops %d never takes its loop edge" max_hops)
      | Step.Join { cont; _ } -> check_target "cont" cont
      | Step.Aggregate _ ->
        if s.Step.next = -1 then
          add
            (Diagnostic.error ~step:i Diagnostic.Dropped_weight
               "aggregate closes the final phase with nowhere to continue: the \
                continuation's root weight would vanish")
        else check_target "next" s.Step.next
      | Step.Index_lookup _ | Step.Scan _ | Step.Expand _ | Step.Filter _ | Step.Set_reg _
      | Step.Move_to _ | Step.Dedup _ ->
        if s.Step.next = -1 then
          add
            (Diagnostic.error ~step:i Diagnostic.Dropped_weight
               "%s has no successor: the interpreter would finish its traversers' weight \
                without the step semantics asking for it"
               (Step.op_name s.Step.op))
        else check_target "next" s.Step.next)
    tg.steps

let check_registers tg add =
  let nr = tg.n_registers in
  Array.iteri
    (fun i s ->
      let reg r =
        if r < 0 || r >= nr then
          add
            (Diagnostic.error ~step:i Diagnostic.Malformed
               "register %d out of range (program declares %d)" r nr)
      in
      let expr e = Step.iter_regs_expr reg e in
      let pred p = Step.iter_regs_pred reg p in
      match s.Step.op with
      | Step.Index_lookup _ | Step.Scan _ | Step.Expand _ -> ()
      | Step.Filter p -> pred p
      | Step.Set_reg { reg = r; expr = e } ->
        reg r;
        expr e
      | Step.Move_to { reg = r } -> reg r
      | Step.Dedup { by } -> expr by
      | Step.Visit { dist_reg; _ } -> reg dist_reg
      | Step.Join { key; store; load_regs; _ } ->
        expr key;
        Array.iter expr store;
        Array.iter reg load_regs
      | Step.Aggregate { agg; reg = r } ->
        reg r;
        Step.iter_regs_agg reg agg
      | Step.Emit exprs -> Array.iter expr exprs)
    tg.steps

(* --- Reachability and phase assignment -------------------------------- *)

(* BFS from the entries; returns the phase of each step, -1 when
   unreachable. Steps reachable in two phases are Phase_conflict errors:
   the same step would run both before and after a phase boundary, and
   its finished weight would be charged to the wrong tracker. *)
let compute_phases tg add =
  let n = Array.length tg.steps in
  let phase = Array.make n (-1) in
  let queue = Queue.create () in
  Array.iter
    (fun e ->
      if in_range tg e && phase.(e) = -1 then begin
        phase.(e) <- 0;
        Queue.add e queue
      end)
    tg.entries;
  let conflicted = Hashtbl.create 4 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    List.iter
      (fun (j, bump) ->
        if in_range tg j then begin
          let q = phase.(i) + (match bump with `Bump -> 1 | `Same -> 0) in
          if phase.(j) = -1 then begin
            phase.(j) <- q;
            Queue.add j queue
          end
          else if phase.(j) <> q && not (Hashtbl.mem conflicted j) then begin
            Hashtbl.add conflicted j ();
            add
              (Diagnostic.error ~step:j Diagnostic.Phase_conflict
                 "step reachable in phases %d and %d: its finished weight would be charged \
                  to the wrong termination tracker"
                 phase.(j) q)
          end
        end)
      (successors tg.steps.(i))
  done;
  Array.iteri
    (fun i p ->
      if p = -1 then
        add
          (Diagnostic.error ~step:i Diagnostic.Unreachable_step "step %d (%s) is unreachable from the entries"
             i
             (Step.op_name tg.steps.(i).Step.op)))
    phase;
  phase

(* --- Memo lifetime: join pairing and partial aggregates ---------------- *)

let check_joins tg phase add =
  let sides = Hashtbl.create 4 in
  Array.iteri
    (fun i s ->
      match s.Step.op with
      | Step.Join { join_id; side; store; load_regs; _ } ->
        let a, b = Option.value ~default:(None, None) (Hashtbl.find_opt sides join_id) in
        let entry = Some (i, Array.length store, Array.length load_regs) in
        (match side with
        | Step.Side_a -> begin
          match a with
          | Some (prev, _, _) ->
            add
              (Diagnostic.error ~step:i Diagnostic.Join_mismatch
                 "join %d has two A sides (steps %d and %d)" join_id prev i)
          | None -> Hashtbl.replace sides join_id (entry, b)
        end
        | Step.Side_b -> begin
          match b with
          | Some (prev, _, _) ->
            add
              (Diagnostic.error ~step:i Diagnostic.Join_mismatch
                 "join %d has two B sides (steps %d and %d)" join_id prev i)
          | None -> Hashtbl.replace sides join_id (a, entry)
        end)
      | _ -> ())
    tg.steps;
  let ids =
    (* det-ok: ids sorted before use, so diagnostics come out in join order *)
    List.sort Int.compare (Hashtbl.fold (fun id _ acc -> id :: acc) sides [])
  in
  List.iter
    (fun join_id ->
      match Hashtbl.find sides join_id with
      | Some (ia, store_a, load_a), Some (ib, store_b, load_b) ->
        if store_a <> load_b then
          add
            (Diagnostic.error ~step:ia Diagnostic.Join_mismatch
               "join %d: side A stores %d values but side B loads %d" join_id store_a load_b);
        if store_b <> load_a then
          add
            (Diagnostic.error ~step:ib Diagnostic.Join_mismatch
               "join %d: side B stores %d values but side A loads %d" join_id store_b load_a);
        if phase.(ia) >= 0 && phase.(ib) >= 0 && phase.(ia) <> phase.(ib) then
          add
            (Diagnostic.error ~step:ib Diagnostic.Join_mismatch
               "join %d: sides in phases %d and %d — one side's rows outlive the \
                subquery that should probe them"
               join_id phase.(ia) phase.(ib))
      | Some (ia, _, _), None ->
        add
          (Diagnostic.error ~step:ia Diagnostic.Orphan_join
             "join %d side A has no B side: its memo rows are written but never probed, \
              and its probes never match"
             join_id)
      | None, Some (ib, _, _) ->
        add
          (Diagnostic.error ~step:ib Diagnostic.Orphan_join
             "join %d side B has no A side: its memo rows are written but never probed, \
              and its probes never match"
             join_id)
      | None, None -> ())
    ids

let check_aggregates tg phase add =
  let closer = Hashtbl.create 4 in
  Array.iteri
    (fun i s ->
      match s.Step.op with
      | Step.Aggregate _ when phase.(i) >= 0 -> begin
        match Hashtbl.find_opt closer phase.(i) with
        | None -> Hashtbl.replace closer phase.(i) i
        | Some first ->
          add
            (Diagnostic.error ~step:i Diagnostic.Unclosed_partial
               "phase %d is already closed by the aggregate at step %d: the partial \
                written at step %d is never combined and leaks until clear_query"
               phase.(i) first i)
      end
      | _ -> ())
    tg.steps

(* --- Weight flow: every cycle must be Visit-bounded -------------------- *)

(* The Visit step's memo min-distance update is the only mechanism that
   bounds a loop: a traverser re-entering a visited vertex without an
   improved distance dies there. A cycle avoiding every Visit step can
   multiply traversers forever — the phase's finished weight never sums
   to the root and the query hangs. Detected by DFS on the subgraph
   induced on non-Visit steps. *)
let check_cycles tg phase add =
  let n = Array.length tg.steps in
  let is_visit i = match tg.steps.(i).Step.op with Step.Visit _ -> true | _ -> false in
  let color = Array.make n 0 in
  let rec dfs i =
    color.(i) <- 1;
    List.iter
      (fun (j, _) ->
        if in_range tg j && phase.(j) >= 0 && not (is_visit j) then begin
          if color.(j) = 1 then
            add
              (Diagnostic.error ~step:j Diagnostic.Unbounded_repeat
                 "step %d loops back to step %d without passing a Visit bound: traversers \
                  can cycle forever and the phase's weight never finishes"
                 i j)
          else if color.(j) = 0 then dfs j
        end)
      (successors tg.steps.(i));
    color.(i) <- 2
  in
  for i = 0 to n - 1 do
    if phase.(i) >= 0 && (not (is_visit i)) && color.(i) = 0 then dfs i
  done

(* --- Registers: def-before-use ----------------------------------------- *)

(* Forward must-be-defined analysis. A register is defined along an edge
   if every path from an entry to that edge writes it: Set_reg defines
   its target, a Join's cont edge defines its load_regs, and an
   Aggregate's continuation edge RESETS the set to the aggregate's result
   register — the continuation is a fresh traverser whose other
   registers are Null again. Reads outside the defined set evaluate Null
   and silently corrupt predicates, join keys and routing. *)
let check_use_before_def tg phase add =
  let n = Array.length tg.steps in
  let nr = tg.n_registers in
  if n = 0 || nr <= 0 then ()
  else begin
    let in_defs = Array.make n None in
    let worklist = Queue.create () in
    let meet i defs =
      match in_defs.(i) with
      | None ->
        in_defs.(i) <- Some (Array.copy defs);
        Queue.add i worklist
      | Some cur ->
        let changed = ref false in
        for r = 0 to nr - 1 do
          if cur.(r) && not defs.(r) then begin
            cur.(r) <- false;
            changed := true
          end
        done;
        if !changed then Queue.add i worklist
    in
    let empty = Array.make nr false in
    Array.iter (fun e -> if in_range tg e then meet e empty) tg.entries;
    while not (Queue.is_empty worklist) do
      let i = Queue.pop worklist in
      match in_defs.(i) with
      | None -> ()
      | Some defs ->
        let s = tg.steps.(i) in
        List.iter
          (fun (j, _) ->
            if in_range tg j then begin
              let out =
                match s.Step.op with
                | Step.Set_reg { reg; _ } when reg >= 0 && reg < nr ->
                  let d = Array.copy defs in
                  d.(reg) <- true;
                  d
                | Step.Join { load_regs; cont; _ } when j = cont ->
                  let d = Array.copy defs in
                  Array.iter (fun r -> if r >= 0 && r < nr then d.(r) <- true) load_regs;
                  d
                | Step.Aggregate { reg; _ } ->
                  let d = Array.make nr false in
                  if reg >= 0 && reg < nr then d.(reg) <- true;
                  d
                | _ -> defs
              in
              meet j out
            end)
          (successors s)
    done;
    Array.iteri
      (fun i s ->
        if phase.(i) >= 0 then
          match in_defs.(i) with
          | None -> ()
          | Some defs ->
            let reported = Hashtbl.create 2 in
            let read r =
              if r >= 0 && r < nr && (not defs.(r)) && not (Hashtbl.mem reported r) then begin
                Hashtbl.add reported r ();
                add
                  (Diagnostic.error ~step:i Diagnostic.Use_before_def
                     "step %d (%s) reads register %d, but some path from an entry \
                      reaches it with the register undefined"
                     i (Step.op_name s.Step.op) r)
              end
            in
            let expr e = Step.iter_regs_expr read e in
            (match s.Step.op with
            | Step.Index_lookup _ | Step.Scan _ | Step.Expand _ -> ()
            | Step.Filter p -> Step.iter_regs_pred read p
            | Step.Set_reg { expr = e; _ } -> expr e
            | Step.Move_to { reg } -> read reg
            | Step.Dedup { by } -> expr by
            | Step.Visit { dist_reg; _ } -> read dist_reg
            | Step.Join { key; store; _ } ->
              expr key;
              Array.iter expr store
            | Step.Aggregate { agg; _ } -> Step.iter_regs_agg read agg
            | Step.Emit exprs -> Array.iter expr exprs))
      tg.steps
  end

(* --- Entry points ------------------------------------------------------- *)

let check tg =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  check_structure tg add;
  check_registers tg add;
  let phase = compute_phases tg add in
  check_joins tg phase add;
  check_aggregates tg phase add;
  check_cycles tg phase add;
  check_use_before_def tg phase add;
  List.rev !diags

let check_program p = check (of_program p)

let errors diags = List.filter Diagnostic.is_error diags
let is_clean diags = errors diags = []

let pp_report ppf = function
  | [] -> Fmt.pf ppf "ok"
  | diags -> Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Diagnostic.pp) diags

(* Gate for program-construction sites (the compiler, hand-built LDBC
   programs): verification failures surface as Program.Invalid, the same
   exception construction errors already raise. *)
let program_exn p =
  match errors (check_program p) with
  | [] -> p
  | errs ->
    raise
      (Program.Invalid
         (Fmt.str "@[<v>program %s fails verification:@,%a@]" (Program.name p) pp_report errs))
