(* Determinism lint for the DES codebase.

   The simulator is a discrete-event machine whose whole value is exact
   replayability: the same seed must produce the same event trace,
   metrics and result rows on every run. Four source-level hazard classes
   silently break that:

   - [Unordered_iteration]: Hashtbl.iter/fold/to_seq enumerate buckets in
     hash order, which depends on insertion history and (under
     [Hashtbl.randomize]) the process seed — any order-sensitive consumer
     becomes run-dependent;
   - [Polymorphic_compare]: Stdlib.compare on values containing floats,
     functional values or cyclic structure can diverge or order
     inconsistently with intended domain order;
   - [Raw_random]: Random.* outside the seeded {!Prng} draws from global
     state other call sites also advance;
   - [Wall_clock]: Unix.gettimeofday/Unix.time/Sys.time leak host time
     into simulated behaviour.

   The scan is line-based over comment-stripped source. Sites that are
   genuinely order-insensitive (commutative folds, collections sorted
   before use) carry a same-line [(* det-ok: reason *)] marker; a marker
   with no reason does not suppress. *)

type hazard =
  | Unordered_iteration
  | Polymorphic_compare
  | Float_compare
  | Raw_random
  | Wall_clock

type finding = {
  file : string;
  line : int; (* 1-based *)
  hazard : hazard;
  excerpt : string;
}

let hazard_name = function
  | Unordered_iteration -> "unordered-iteration"
  | Polymorphic_compare -> "polymorphic-compare"
  | Float_compare -> "float-compare"
  | Raw_random -> "raw-random"
  | Wall_clock -> "wall-clock"

let hazard_hint = function
  | Unordered_iteration ->
    "Hashtbl enumeration order is unspecified; sort the keys or justify with (* det-ok: ... *)"
  | Polymorphic_compare ->
    "polymorphic compare is fragile; use a domain compare or justify with (* det-ok: ... *)"
  | Float_compare ->
    "bare [compare] next to floats: NaN breaks its order; use Float.compare or justify with (* det-ok: ... *)"
  | Raw_random -> "global Random state is unseeded; draw from Prng instead"
  | Wall_clock -> "wall-clock reads leak host time into the simulation; use Sim time"

(* Pattern table: hazard, needles searched as substrings of the
   comment-stripped line. Substring match keeps the lint honest and
   simple; the allowlist absorbs the few justified sites. *)
let detectors =
  [
    (Unordered_iteration, [ "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq" ]);
    (Polymorphic_compare, [ "List.sort compare"; "Array.sort compare"; "Stdlib.compare" ]);
    (* Random.self_init is listed on its own even though "Random." already
       matches it: it is the worst member of the class (seeds from the
       host environment, so no marker can ever justify it). *)
    (Raw_random, [ "Random.self_init"; "Random." ]);
    (Wall_clock, [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]);
  ]

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn > 0 && go 0

(* Float-bearing polymorphic compare: [compare] as a bare identifier (not
   [Module.compare], not part of a longer name) on a line that also
   mentions floats. Structural compare orders every NaN above/below
   inconsistently with IEEE, so domain order silently diverges; the
   heuristic is deliberately narrow — cross-line cases are left to the
   broader [Polymorphic_compare] needles and review. *)
let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '\''

let bare_compare line =
  let needle = "compare" in
  let nh = String.length line and nn = String.length needle in
  let rec go i =
    i + nn <= nh
    && ((String.sub line i nn = needle
        && (i = 0 || ((not (is_ident_char line.[i - 1])) && line.[i - 1] <> '.'))
        && (i + nn = nh || not (is_ident_char line.[i + nn])))
       || go (i + 1))
  in
  go 0

let float_compare_hazard line =
  bare_compare line && (contains line "float" || contains line "Float")

(* Blank out (* ... *) comments and "..." string literals, preserving
   newlines so line numbers survive. Handles nested comments and quotes
   inside comments the way the OCaml lexer does not need us to: close
   enough for a pattern lint. *)
let strip_comments src =
  let buf = Buffer.create (String.length src) in
  let n = String.length src in
  let depth = ref 0 and in_string = ref false in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if !in_string then begin
      if c = '\\' && !i + 1 < n then begin
        Buffer.add_char buf ' ';
        Buffer.add_char buf (if src.[!i + 1] = '\n' then '\n' else ' ');
        incr i
      end
      else begin
        if c = '"' then in_string := false;
        Buffer.add_char buf (if c = '\n' then '\n' else ' ')
      end
    end
    else if !depth > 0 then begin
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        incr depth;
        Buffer.add_string buf "  ";
        incr i
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        decr depth;
        Buffer.add_string buf "  ";
        incr i
      end
      else Buffer.add_char buf (if c = '\n' then '\n' else ' ')
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      depth := 1;
      Buffer.add_string buf "  ";
      incr i
    end
    else if c = '"' then begin
      in_string := true;
      Buffer.add_char buf ' '
    end
    else Buffer.add_char buf c;
    incr i
  done;
  Buffer.contents buf

(* A line carries the allowlist marker when its RAW text has "det-ok:"
   followed by a non-empty justification (before any closing "*)"). *)
let allowlisted raw =
  let marker = "det-ok:" in
  let nh = String.length raw and nn = String.length marker in
  let rec find i = if i + nn > nh then None else if String.sub raw i nn = marker then Some (i + nn) else find (i + 1) in
  match find 0 with
  | None -> false
  | Some start ->
    let rest = String.sub raw start (nh - start) in
    let rest =
      match String.index_opt rest '*' with
      | Some j when j + 1 < String.length rest && rest.[j + 1] = ')' -> String.sub rest 0 j
      | _ -> rest
    in
    String.trim rest <> ""

let scan ~file src =
  let stripped = Array.of_list (String.split_on_char '\n' (strip_comments src)) in
  let raw = Array.of_list (String.split_on_char '\n' src) in
  let findings = ref [] in
  Array.iteri
    (fun idx line ->
      let raw_line = raw.(idx) in
      (* The marker suppresses its own line and the one below it, so a
         justification can sit on the hazard line or just above it. *)
      let suppressed =
        allowlisted raw_line || (idx > 0 && allowlisted raw.(idx - 1))
      in
      if not suppressed then begin
        List.iter
          (fun (hazard, needles) ->
            if List.exists (contains line) needles then
              findings :=
                { file; line = idx + 1; hazard; excerpt = String.trim raw_line } :: !findings)
          detectors;
        if float_compare_hazard line then
          findings :=
            { file; line = idx + 1; hazard = Float_compare; excerpt = String.trim raw_line }
            :: !findings
      end)
    stripped;
  List.rev !findings

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_file path = scan ~file:path (read_file path)

(* Collect .ml files under the roots, sorted, and scan them all. .mli
   files only declare — hazards live in implementations. *)
let ml_files_under roots =
  let rec walk acc path =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc entry -> walk acc (Filename.concat path entry))
        acc (Sys.readdir path)
    else if Filename.check_suffix path ".ml" then path :: acc
    else acc
  in
  List.sort String.compare (List.fold_left walk [] roots)

let scan_roots roots = List.concat_map scan_file (ml_files_under roots)

let pp_finding ppf f =
  Fmt.pf ppf "%s:%d: [%s] %s@,  %s" f.file f.line (hazard_name f.hazard) f.excerpt
    (hazard_hint f.hazard)
