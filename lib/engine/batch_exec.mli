(** Frontier-batched execution of fusable step chains (Expand / Filter /
    Set_reg), used by engines that opt into [Engine.Common.batched].

    A batch of traversers resident at one (partition, step) executes the
    maximal fusable chain breadth-first: CSR-range scans over the frontier
    with a bitset memo for register-free filter verdicts. Weight is split
    per-batch over each parent's surviving leaves, so Theorem 1 holds
    exactly ({!conserves} asserts it). *)

(** Per-worker reusable scratch state (bitset verdict memo). *)
type scratch

val scratch : graph:Graph.t -> scratch

(** Is the op at this step eligible for fusion? *)
val fusable : Program.t -> int -> bool

(** Maximal fusable chain starting at a step: the chain's step indices in
    execution order, and the exit step surviving leaves land on. *)
val chain : Program.t -> int -> int list * int

(** Surviving leaves at the exit step, unmaterialized: traversers are
    constructed on demand by {!iter_spawns}, so large batches never
    push records through the GC write barrier twice. A view into the
    scratch's reusable buffers (and the input batch array): valid until
    the next {!run} on the same scratch — consume before executing
    another batch. *)
type spawns

type outcome = {
  spawns : spawns;
  n_spawns : int; (** number of surviving leaves *)
  finished : Weight.t; (** weight of pruned / childless branches *)
  edges_scanned : int;
  prop_reads : int;
}

val n_spawns : outcome -> int

(** [iter_spawns o f] calls [f ~parent child] for each surviving leaf,
    in frontier order, where [parent] is the batch index of the input
    traverser the leaf descends from. *)
val iter_spawns : outcome -> (parent:int -> Traverser.t -> unit) -> unit

(** Run the fusable chain rooted at [step] over the whole batch. All of
    [travs] must sit at [step], which must satisfy {!fusable}. *)
val run :
  graph:Graph.t ->
  scratch:scratch ->
  prng:Prng.t ->
  program:Program.t ->
  step:int ->
  Traverser.t array ->
  outcome

(** Batch-granularity weight conservation: inflow = spawns + finished. *)
val conserves : Traverser.t array -> outcome -> bool
