(* Frontier-batched execution of fusable step chains.

   The scalar interpreter ([Exec.exec]) pays one dispatch per traverser
   per step. When many traversers are resident at the same (partition,
   step) — the common case for frontier-shaped traversals — the engine
   can instead run them as one batch: a maximal chain of side-effect-free
   steps (Expand / Filter / Set_reg) is executed breadth-first over the
   whole frontier, sweeping CSR adjacency ranges directly via
   {!Csr.slice} / {!Csr.target_at} and memoizing register-free filter
   verdicts per vertex in a bitset pair.

   Chains without a Set_reg (the hot case) run on a packed frontier: one
   int per element, parent batch index in the high bits and vertex in
   the low bits, so the whole sweep allocates nothing per element and
   every intermediate buffer is reused from the scratch across batches.
   Chains with a Set_reg fall back to a record frontier carrying a
   per-element register file.

   Weight handling is per-batch but exact: each parent's weight is split
   over its *surviving* leaves only (a parent with no survivors finishes
   its whole weight at the batch), so Theorem 1's conservation identity

     sum(parent weights) = sum(leaf weights) + rows + finished

   holds bit for bit — the engines' [~check:true] sanitizer asserts it
   per batch via {!conserves}. The split uses different PRNG draws than
   the scalar order would, so batched runs are weight-*conserving* but
   not weight-*identical* to unbatched runs; results and invariants
   match, packet traces differ.

   Stateful ops (Dedup, Visit, Join, Aggregate), sources and Emit are
   never fused: their memo effects are order-sensitive per element and
   they stay on the scalar interpreter (the engine still amortizes their
   dispatch cost per batch). *)

(* Record frontier element, for Set_reg chains only. *)
type entry = { parent : int; vertex : int; regs : Value.t array }

let dummy_entry = { parent = 0; vertex = 0; regs = [||] }

(* Packed frontier element: parent batch index in the high bits, vertex
   in the low [vbits]. *)
let vbits = 31
let vmask = (1 lsl vbits) - 1

(* Reusable per-worker scratch: the bitset pair memoizing register-free
   predicate verdicts per vertex within one chain position ([undo] lists
   the touched vertices so the reset is proportional to the frontier,
   not |V|), plus every intermediate buffer, so steady-state batches
   allocate only their result traversers. *)
type scratch = {
  pred_seen : Bitset.t;
  pred_true : Bitset.t;
  undo : int Vec.t;
  packed_a : int Vec.t; (* packed frontier double-buffer *)
  packed_b : int Vec.t;
  entries_a : entry Vec.t; (* record frontier double-buffer *)
  entries_b : entry Vec.t;
  out_shares : Weight.t Vec.t; (* per-leaf weight shares, in leaf order *)
  mutable shares : Weight.t array; (* split buffer, grown as needed *)
}

let scratch ~graph =
  let n = Graph.n_vertices graph in
  {
    pred_seen = Bitset.create n;
    pred_true = Bitset.create n;
    undo = Vec.create ~dummy:0;
    packed_a = Vec.create ~dummy:0;
    packed_b = Vec.create ~dummy:0;
    entries_a = Vec.create ~dummy:dummy_entry;
    entries_b = Vec.create ~dummy:dummy_entry;
    out_shares = Vec.create ~dummy:Weight.zero;
    shares = Array.make 64 Weight.zero;
  }

let shares_buffer s n =
  if Array.length s.shares < n then
    s.shares <- Array.make (max n (2 * Array.length s.shares)) Weight.zero;
  s.shares

let reset_memo s =
  Vec.iter
    (fun v ->
      Bitset.remove s.pred_seen v;
      Bitset.remove s.pred_true v)
    s.undo;
  Vec.clear s.undo

(* A step op is fusable when it neither touches the partition memo nor
   produces rows: its only effects are spawning children and finishing
   weight, both of which the per-batch split reproduces exactly. *)
let fusable_op = function
  | Step.Expand _ | Step.Filter _ | Step.Set_reg _ -> true
  | Step.Index_lookup _ | Step.Scan _ | Step.Move_to _ | Step.Dedup _ | Step.Visit _
  | Step.Join _ | Step.Aggregate _ | Step.Emit _ ->
    false

let fusable program step = fusable_op (Program.step program step).Step.op

(* Maximal fusable chain starting at [step]: the run of fusable steps
   linked by [next]. Returns the chain (in execution order) and the exit
   step every surviving leaf lands on. Cycles cannot occur — [next]
   always moves forward through a validated program — but the loop is
   bounded by [n_steps] anyway. *)
let chain program step =
  let steps = ref [] in
  let count = ref 0 in
  let idx = ref step in
  let n = Program.n_steps program in
  let continue = ref true in
  while !continue && !count < n && !idx >= 0 && fusable program !idx do
    steps := !idx :: !steps;
    incr count;
    let next = (Program.step program !idx).Step.next in
    if next < 0 then continue := false else idx := next
  done;
  (List.rev !steps, !idx)

(* Surviving leaves, unmaterialized. The executor never builds spawn
   traversers itself: the final frontier buffer plus a parallel share
   vector determine every spawn, and [iter_spawns] constructs each
   traverser on demand at the consumer. This matters for large batches:
   the frontier and share buffers are unboxed int vectors (immediate
   stores skip the GC write barrier), whereas pushing hundreds of
   thousands of fresh records into a reused major-heap vector would pay
   [caml_modify] plus a promotion per element. *)
type spawns =
  | Packed of {
      leaves : int Vec.t;
      shares : Weight.t Vec.t;
      travs : Traverser.t array;
      exit_step : int;
    }
  | Entries of { leaves : entry Vec.t; shares : Weight.t Vec.t; exit_step : int }

type outcome = {
  spawns : spawns;
  n_spawns : int;
  finished : Weight.t; (* weight of pruned / childless branches *)
  edges_scanned : int;
  prop_reads : int;
}

let n_spawns o = o.n_spawns

let iter_spawns o f =
  match o.spawns with
  | Packed { leaves; shares; travs; exit_step } ->
    Vec.iteri
      (fun i e ->
        let parent = e lsr vbits in
        f ~parent
          (Traverser.move travs.(parent) ~vertex:(e land vmask) ~step:exit_step
             ~weight:(Vec.get shares i)))
      leaves
  | Entries { leaves; shares; exit_step } ->
    Vec.iteri
      (fun i e ->
        f ~parent:e.parent
          { Traverser.vertex = e.vertex; step = exit_step; weight = Vec.get shares i; regs = e.regs })
      leaves

(* Split each parent's weight over its surviving leaves (a parent with
   none finishes its whole weight). The sweeps are order-preserving, so
   each parent's survivors form one contiguous run of [leaves] and
   parents appear in increasing order: one run-length walk writes the
   per-leaf shares (in leaf order) into the scratch's share vector with
   no per-parent allocation ([split_into] reuses one buffer). *)
let settle ~prng ~(travs : Traverser.t array) ~leaves_len ~s ~parent_at =
  Vec.clear s.out_shares;
  let finished = ref Weight.zero in
  let next_parent = ref 0 in
  let skip_until parent =
    while !next_parent < parent do
      finished := Weight.add !finished travs.(!next_parent).Traverser.weight;
      incr next_parent
    done
  in
  let i = ref 0 in
  while !i < leaves_len do
    let parent = parent_at !i in
    skip_until parent;
    let j = ref (!i + 1) in
    while !j < leaves_len && parent_at !j = parent do
      incr j
    done;
    let n = !j - !i in
    let w = travs.(parent).Traverser.weight in
    if n = 1 then Vec.push s.out_shares w
    else begin
      let buf = shares_buffer s n in
      Weight.split_into prng w buf ~n;
      for k = 0 to n - 1 do
        Vec.push s.out_shares buf.(k)
      done
    end;
    next_parent := parent + 1;
    i := !j
  done;
  skip_until (Array.length travs);
  !finished

(* --- Packed fast path: chains without Set_reg ------------------------- *)

let run_packed ~graph ~scratch:s ~prng ~program ~chain_steps ~exit_step
    (travs : Traverser.t array) =
  let frontier = s.packed_a in
  Vec.clear frontier;
  Array.iteri
    (fun parent (t : Traverser.t) -> Vec.push frontier ((parent lsl vbits) lor t.Traverser.vertex))
    travs;
  let edges = ref 0 in
  let reads = ref 0 in
  let current = ref frontier in
  let spare = ref s.packed_b in
  List.iter
    (fun idx ->
      let out = !spare in
      Vec.clear out;
      (match (Program.step program idx).Step.op with
      | Step.Expand { dir; edge_label } ->
        (* The scalar interpreter charges the full adjacency range even
           under a label restriction (every position is examined); the
           slice width matches that accounting. *)
        let scan csr pbits v =
          let lo, hi = Csr.slice csr v in
          edges := !edges + (hi - lo);
          match edge_label with
          | None ->
            for pos = lo to hi - 1 do
              Vec.push out (pbits lor Csr.target_at csr pos)
            done
          | Some l ->
            for pos = lo to hi - 1 do
              if Csr.label_at csr pos = l then Vec.push out (pbits lor Csr.target_at csr pos)
            done
        in
        Vec.iter
          (fun e ->
            let v = e land vmask in
            let pbits = e lxor v in
            match dir with
            | Graph.Out -> scan (Graph.out_csr graph) pbits v
            | Graph.In -> scan (Graph.in_csr graph) pbits v
            | Graph.Both ->
              scan (Graph.out_csr graph) pbits v;
              scan (Graph.in_csr graph) pbits v)
          !current
      | Step.Filter pred ->
        let reads_per_eval = Step.pred_prop_reads pred in
        (* Register-free predicates depend only on the vertex, so one
           verdict per distinct vertex serves the whole frontier. *)
        let memoizable = Step.max_reg_pred pred < 0 in
        Vec.iter
          (fun e ->
            let v = e land vmask in
            let verdict =
              if memoizable && Bitset.mem s.pred_seen v then Bitset.mem s.pred_true v
              else begin
                reads := !reads + reads_per_eval;
                let regs = travs.(e lsr vbits).Traverser.regs in
                let r = Step.eval_pred graph ~vertex:v ~regs pred in
                if memoizable then begin
                  Bitset.add s.pred_seen v;
                  if r then Bitset.add s.pred_true v;
                  Vec.push s.undo v
                end;
                r
              end
            in
            if verdict then Vec.push out e)
          !current;
        if memoizable then reset_memo s
      | _ -> assert false);
      spare := !current;
      current := out)
    chain_steps;
  let leaves = !current in
  let finished =
    settle ~prng ~travs ~leaves_len:(Vec.length leaves) ~s
      ~parent_at:(fun i -> Vec.get leaves i lsr vbits)
  in
  {
    spawns = Packed { leaves; shares = s.out_shares; travs; exit_step };
    n_spawns = Vec.length leaves;
    finished;
    edges_scanned = !edges;
    prop_reads = !reads;
  }

(* --- Record path: chains containing Set_reg --------------------------- *)

let run_entries ~graph ~scratch:s ~prng ~program ~chain_steps ~exit_step
    (travs : Traverser.t array) =
  let frontier = s.entries_a in
  Vec.clear frontier;
  Array.iteri
    (fun parent (t : Traverser.t) ->
      Vec.push frontier { parent; vertex = t.Traverser.vertex; regs = t.Traverser.regs })
    travs;
  let edges = ref 0 in
  let reads = ref 0 in
  let current = ref frontier in
  let spare = ref s.entries_b in
  List.iter
    (fun idx ->
      let out = !spare in
      Vec.clear out;
      (match (Program.step program idx).Step.op with
      | Step.Expand { dir; edge_label } ->
        let scan csr e =
          let lo, hi = Csr.slice csr e.vertex in
          edges := !edges + (hi - lo);
          Csr.fold_neighbors_range csr ?label:edge_label ~lo ~hi ~init:() ~f:(fun () ~pos ->
              Vec.push out { e with vertex = Csr.target_at csr pos })
        in
        Vec.iter
          (fun e ->
            match dir with
            | Graph.Out -> scan (Graph.out_csr graph) e
            | Graph.In -> scan (Graph.in_csr graph) e
            | Graph.Both ->
              scan (Graph.out_csr graph) e;
              scan (Graph.in_csr graph) e)
          !current
      | Step.Filter pred ->
        let reads_per_eval = Step.pred_prop_reads pred in
        let memoizable = Step.max_reg_pred pred < 0 in
        Vec.iter
          (fun e ->
            let verdict =
              if memoizable && Bitset.mem s.pred_seen e.vertex then Bitset.mem s.pred_true e.vertex
              else begin
                reads := !reads + reads_per_eval;
                let r = Step.eval_pred graph ~vertex:e.vertex ~regs:e.regs pred in
                if memoizable then begin
                  Bitset.add s.pred_seen e.vertex;
                  if r then Bitset.add s.pred_true e.vertex;
                  Vec.push s.undo e.vertex
                end;
                r
              end
            in
            if verdict then Vec.push out e)
          !current;
        if memoizable then reset_memo s
      | Step.Set_reg { reg; expr } ->
        let reads_per_eval = Step.expr_prop_reads expr in
        Vec.iter
          (fun e ->
            reads := !reads + reads_per_eval;
            let value = Step.eval_expr graph ~vertex:e.vertex ~regs:e.regs expr in
            let regs = Array.copy e.regs in
            regs.(reg) <- value;
            Vec.push out { e with regs })
          !current
      | _ -> assert false);
      spare := !current;
      current := out)
    chain_steps;
  let leaves = !current in
  let finished =
    settle ~prng ~travs ~leaves_len:(Vec.length leaves) ~s
      ~parent_at:(fun i -> (Vec.get leaves i).parent)
  in
  {
    spawns = Entries { leaves; shares = s.out_shares; exit_step };
    n_spawns = Vec.length leaves;
    finished;
    edges_scanned = !edges;
    prop_reads = !reads;
  }

(* Execute the fusable chain rooted at [step] over the whole batch.
   [travs] must all sit at [step]. *)
let run ~graph ~scratch ~prng ~program ~step (travs : Traverser.t array) =
  let chain_steps, exit_step = chain program step in
  assert (chain_steps <> []);
  let has_set_reg =
    List.exists
      (fun i -> match (Program.step program i).Step.op with Step.Set_reg _ -> true | _ -> false)
      chain_steps
  in
  if has_set_reg || Graph.n_vertices graph > vmask then
    run_entries ~graph ~scratch ~prng ~program ~chain_steps ~exit_step travs
  else run_packed ~graph ~scratch ~prng ~program ~chain_steps ~exit_step travs

(* Theorem 1 at batch granularity, for the sanitizer. *)
let conserves (travs : Traverser.t array) outcome =
  let inflow =
    Array.fold_left (fun acc (t : Traverser.t) -> Weight.add acc t.Traverser.weight) Weight.zero travs
  in
  let shares =
    match outcome.spawns with Packed { shares; _ } | Entries { shares; _ } -> shares
  in
  let outflow = Vec.fold (fun acc w -> Weight.add acc w) outcome.finished shares in
  Weight.equal inflow outflow
