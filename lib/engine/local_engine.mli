(** Reference interpreter defining query semantics; the oracle that every
    distributed engine is tested against. *)

(** Execute a program and return its result rows in emission order.
    [common.check] enables the sanitizer: per-step weight conservation
    and a per-phase weight ledger, raising {!Engine.Check_violation} on
    the first broken invariant. [common.obs] records per-step operator
    stats (the oracle has no clock, so trace/flight stay empty);
    deadline, seed and faults do not apply to the oracle. *)
val run : ?common:Engine.Common.t -> Graph.t -> Program.t -> Value.t array list
