(** Reference interpreter defining query semantics; the oracle that every
    distributed engine is tested against. *)

(** Execute a program and return its result rows in emission order.
    [check] enables the sanitizer: per-step weight conservation and a
    per-phase weight ledger, raising {!Engine.Check_violation} on the
    first broken invariant. [obs] records per-step operator stats (the
    oracle has no clock, so trace/flight stay empty). *)
val run :
  ?obs:Pstm_obs.Recorder.t -> ?check:bool -> Graph.t -> Program.t -> Value.t array list
