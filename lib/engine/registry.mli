(** Engine registry: the four runtimes (plus comparison flavors) wrapped
    as first-class {!Engine.S} modules, keyed by name. The CLI and
    benchmarks dispatch through this instead of hand-written matches. *)

(** Build a registry with the given topology baked into each engine.
    Entries: ["graphdance"], ["banyan-like"], ["gaia-like"], ["bsp"],
    ["tigergraph-role"], ["single-node"], ["local"].

    [tracker_fanout] turns on hierarchical progress tracking in the
    async flavors (see {!Async_engine.options}); the other engines
    ignore it. *)
val make :
  ?cluster_config:Cluster.config ->
  ?channel_config:Channel.config ->
  ?tracker_fanout:int ->
  unit ->
  (string * (module Engine.S)) list

(** [make ()] with default topology. *)
val default : (string * (module Engine.S)) list

val names : ?registry:(string * (module Engine.S)) list -> unit -> string list

(** ["async"] resolves to ["graphdance"]. *)
val find : ?registry:(string * (module Engine.S)) list -> string -> (module Engine.S) option

(** Like {!find} but raises [Invalid_argument] listing the valid names. *)
val find_exn : ?registry:(string * (module Engine.S)) list -> string -> (module Engine.S)
