(* Common engine-facing types: query submissions and run reports.

   Every engine (asynchronous PSTM, BSP, dataflow flavors, single-node)
   consumes the same submissions and produces the same report shape, so
   the benchmark harness swaps engines freely. *)

(* Sanitizer mode: engines run with [~check:true] assert the verifier's
   dynamic counterparts (weight conservation per exec, tracker sanity,
   memo hygiene at termination) and raise on the first violation. *)
exception Check_violation of string

let check_fail fmt = Fmt.kstr (fun s -> raise (Check_violation s)) fmt

type submission = {
  program : Program.t;
  at : Sim_time.t; (* arrival time of the query *)
}

let submit ?(at = Sim_time.zero) program = { program; at }

(* --- Common run options ------------------------------------------------

   Every engine takes the same cross-cutting knobs — tracing, sanitizer
   mode, wall-clock deadline, placement seed and (optionally) a fault
   schedule — so they live in one record passed as [?common] instead of
   a copy-pasted [?obs ?check ?deadline] triple per engine. *)

module Common = struct
  type t = {
    obs : Pstm_obs.Recorder.t; (* trace/flight/opstats sink *)
    check : bool; (* dynamic sanitizer (Check_violation on failure) *)
    deadline : Sim_time.t option; (* stop the run at this simulated time *)
    seed : int; (* placement / tie-break randomness *)
    faults : Faults.spec option; (* deterministic fault schedule *)
    batched : bool; (* frontier-batched execution (engines may ignore it) *)
    chooser : Event_queue.chooser option;
        (* same-timestamp tie chooser installed on the engine's event
           queue; the schedule explorer's entry point *)
    mutation : Mutation.t option;
        (* seeded protocol mutant, for checker validation only *)
  }

  let default =
    {
      obs = Pstm_obs.Recorder.disabled;
      check = false;
      deadline = None;
      seed = 0x5157;
      faults = None;
      batched = false;
      chooser = None;
      mutation = None;
    }

  let with_obs obs t = { t with obs }
  let with_check check t = { t with check }
  let with_deadline deadline t = { t with deadline }
  let with_seed seed t = { t with seed }
  let with_faults faults t = { t with faults }
  let with_batched batched t = { t with batched }
  let with_chooser chooser t = { t with chooser }
  let with_mutation mutation t = { t with mutation }
end

type query_report = {
  qid : int;
  name : string;
  submitted : Sim_time.t;
  completed : Sim_time.t option; (* None: timed out / not finished *)
  rows : Value.t array list;
}

let latency q = Option.map (fun c -> Sim_time.diff c q.submitted) q.completed

let latency_ms q =
  match latency q with
  | Some l -> Sim_time.to_ms l
  | None -> Float.infinity

type report = {
  engine : string;
  queries : query_report array;
  makespan : Sim_time.t; (* last completion (or deadline) *)
  metrics : Metrics.t;
  events : int; (* simulator events executed *)
  worker_busy : Sim_time.t array; (* per-worker CPU time, for straggler analysis *)
}

let all_completed r = Array.for_all (fun q -> q.completed <> None) r.queries

let mean_latency_ms r =
  let ls = Array.map latency_ms r.queries in
  Stats.mean ls

let p99_latency_ms r =
  let ls = Array.map latency_ms r.queries in
  Stats.percentile ls 99.0

(* Completed queries per simulated second. *)
let throughput_qps r =
  let completed = Array.fold_left (fun n q -> if q.completed <> None then n + 1 else n) 0 r.queries in
  let span = Sim_time.to_s r.makespan in
  if span <= 0.0 then 0.0 else float_of_int completed /. span

(* Canonical row order, for comparing engines in tests. *)
let sorted_rows rows =
  List.sort (fun a b -> Value.compare (Value.List (Array.to_list a)) (Value.List (Array.to_list b))) rows

let pp_query ppf q =
  Fmt.pf ppf "%s: %s, %d rows" q.name
    (match latency q with Some l -> Fmt.str "%a" Sim_time.pp l | None -> "TIMEOUT")
    (List.length q.rows)

(* --- Engine interface --------------------------------------------------

   The uniform surface every engine implements; {!Registry} wraps the
   concrete engines as first-class modules against this signature so the
   CLI and benchmarks dispatch by name instead of hand-written matches. *)

module type S = sig
  val name : string
  val run : ?common:Common.t -> graph:Graph.t -> submission array -> report
end

(* --- Observability ---------------------------------------------------- *)

(* Trace track (Chrome "tid") conventions shared by all engines: workers
   use their worker id; per-query events and NIC activity get synthetic
   tracks well above any plausible worker count. *)
let query_track qid = 1_000_000 + qid
let nic_track node = 900_000 + node
let superstep_track = 800_000

let report_json (r : report) =
  let module J = Pstm_obs.Json in
  let hist = Histogram.create () in
  Array.iter
    (fun q ->
      let l = latency_ms q in
      if Float.is_finite l then Histogram.add hist l)
    r.queries;
  let busy_ns = Array.map Sim_time.to_ns r.worker_busy in
  let busy_mean = Stats.mean (Array.map float_of_int busy_ns) in
  let busy_max = Array.fold_left max 0 busy_ns in
  let straggler = if busy_mean <= 0.0 then 1.0 else float_of_int busy_max /. busy_mean in
  let query_json q =
    J.Obj
      [
        ("qid", J.Int q.qid);
        ("name", J.Str q.name);
        ("submitted_ns", J.Int (Sim_time.to_ns q.submitted));
        ( "completed_ns",
          match q.completed with None -> J.Null | Some c -> J.Int (Sim_time.to_ns c) );
        ( "latency_ms",
          let l = latency_ms q in
          if Float.is_finite l then J.Float l else J.Null );
        ("rows", J.Int (List.length q.rows));
      ]
  in
  J.Obj
    [
      ("engine", J.Str r.engine);
      ("makespan_ns", J.Int (Sim_time.to_ns r.makespan));
      ("events", J.Int r.events);
      ("completed", J.Int (Array.fold_left (fun n q -> if q.completed <> None then n + 1 else n) 0 r.queries));
      ("queries", J.List (Array.to_list (Array.map query_json r.queries)));
      ("latency_ms", Pstm_obs.Export.histogram_json hist);
      ("throughput_qps", J.Float (throughput_qps r));
      ("metrics", Pstm_obs.Export.metrics_json r.metrics);
      ("worker_busy_ns", J.List (Array.to_list (Array.map (fun b -> J.Int b) busy_ns)));
      ("straggler_ratio", J.Float straggler);
    ]
