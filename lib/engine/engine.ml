(* Common engine-facing types: query submissions and run reports.

   Every engine (asynchronous PSTM, BSP, dataflow flavors, single-node)
   consumes the same submissions and produces the same report shape, so
   the benchmark harness swaps engines freely. *)

(* Sanitizer mode: engines run with [~check:true] assert the verifier's
   dynamic counterparts (weight conservation per exec, tracker sanity,
   memo hygiene at termination) and raise on the first violation. *)
exception Check_violation of string

let check_fail fmt = Fmt.kstr (fun s -> raise (Check_violation s)) fmt

(* A submission carries per-query identity on top of the program: which
   tenant issued it, how urgent it is, and how long it is allowed to
   run. The smart constructor defaults every new field, so pre-service
   call sites stay one-line [Engine.submit program] calls. *)
type submission = {
  program : Program.t;
  at : Sim_time.t; (* arrival time of the query *)
  tenant : int; (* issuing tenant (service-layer identity; 0 = default) *)
  priority : int; (* scheduling urgency, higher first (service layer) *)
  deadline : Sim_time.t option;
      (* per-query latency budget, relative to [at]: the engine cancels
         the query with [Timed_out] once simulated time passes
         [at + deadline]. [None] = no per-query limit (the run-level
         [Common.deadline] may still cut the whole run short). *)
}

let submit ?(at = Sim_time.zero) ?(tenant = 0) ?(priority = 0) ?deadline program =
  { program; at; tenant; priority; deadline }

(* --- Common run options ------------------------------------------------

   Every engine takes the same cross-cutting knobs — tracing, sanitizer
   mode, wall-clock deadline, placement seed and (optionally) a fault
   schedule — so they live in one record passed as [?common] instead of
   a copy-pasted [?obs ?check ?deadline] triple per engine. *)

module Common = struct
  type t = {
    obs : Pstm_obs.Recorder.t; (* trace/flight/opstats sink *)
    check : bool; (* dynamic sanitizer (Check_violation on failure) *)
    deadline : Sim_time.t option; (* stop the run at this simulated time *)
    seed : int; (* placement / tie-break randomness *)
    faults : Faults.spec option; (* deterministic fault schedule *)
    batched : bool; (* frontier-batched execution (engines may ignore it) *)
    chooser : Event_queue.chooser option;
        (* same-timestamp tie chooser installed on the engine's event
           queue; the schedule explorer's entry point *)
    mutation : Mutation.t option;
        (* seeded protocol mutant, for checker validation only *)
  }

  let default =
    {
      obs = Pstm_obs.Recorder.disabled;
      check = false;
      deadline = None;
      seed = 0x5157;
      faults = None;
      batched = false;
      chooser = None;
      mutation = None;
    }

  let with_obs obs t = { t with obs }
  let with_check check t = { t with check }
  let with_deadline deadline t = { t with deadline }
  let with_seed seed t = { t with seed }
  let with_faults faults t = { t with faults }
  let with_batched batched t = { t with batched }
  let with_chooser chooser t = { t with chooser }
  let with_mutation mutation t = { t with mutation }
end

(* How a query's life ended. This replaces the old
   [completed : Sim_time.t option] — a service distinguishes a query
   that ran out of time from one its client abandoned from one the
   admission controller refused, and the old encoding collapsed all
   three into [None]. *)
type outcome =
  | Completed of Sim_time.t (* finished; the time is the release instant *)
  | Timed_out (* run deadline or the query's own [deadline] hit mid-run *)
  | Cancelled (* scoped cancellation: client abandoned / service shut down *)
  | Shed (* refused at admission; never consumed an engine event *)

let outcome_name = function
  | Completed _ -> "completed"
  | Timed_out -> "timed_out"
  | Cancelled -> "cancelled"
  | Shed -> "shed"

type query_report = {
  qid : int;
  name : string;
  tenant : int;
  priority : int;
  submitted : Sim_time.t;
  outcome : outcome;
  rows : Value.t array list;
}

let completed_at q = match q.outcome with Completed c -> Some c | _ -> None
let is_completed q = match q.outcome with Completed _ -> true | _ -> false
let latency q = Option.map (fun c -> Sim_time.diff c q.submitted) (completed_at q)

let latency_ms q =
  match latency q with
  | Some l -> Sim_time.to_ms l
  | None -> Float.infinity

type report = {
  engine : string;
  queries : query_report array;
  makespan : Sim_time.t; (* last completion (or deadline) *)
  metrics : Metrics.t;
  events : int; (* simulator events executed *)
  worker_busy : Sim_time.t array; (* per-worker CPU time, for straggler analysis *)
}

let all_completed r = Array.for_all is_completed r.queries
let n_completed r = Array.fold_left (fun n q -> if is_completed q then n + 1 else n) 0 r.queries

(* Queries that never produced a result (timed out / cancelled / shed).
   Latency aggregates below skip these and report them separately —
   averaging [Float.infinity] into a mean silently poisons it. *)
let n_unfinished r = Array.length r.queries - n_completed r

let completed_latencies_ms r =
  let ls = Vec.create ~dummy:0.0 in
  Array.iter
    (fun q -> match latency q with Some l -> Vec.push ls (Sim_time.to_ms l) | None -> ())
    r.queries;
  Vec.to_array ls

let mean_latency_ms r = Stats.mean (completed_latencies_ms r)
let p50_latency_ms r = Stats.percentile (completed_latencies_ms r) 50.0
let p99_latency_ms r = Stats.percentile (completed_latencies_ms r) 99.0

(* Completed queries per simulated second. *)
let throughput_qps r =
  let completed = n_completed r in
  let span = Sim_time.to_s r.makespan in
  if span <= 0.0 then 0.0 else float_of_int completed /. span

(* Canonical row order, for comparing engines in tests. *)
let sorted_rows rows =
  List.sort (fun a b -> Value.compare (Value.List (Array.to_list a)) (Value.List (Array.to_list b))) rows

let pp_query ppf q =
  Fmt.pf ppf "%s: %s, %d rows" q.name
    (match q.outcome with
    | Completed _ -> Fmt.str "%a" Sim_time.pp (Option.get (latency q))
    | Timed_out -> "TIMEOUT"
    | Cancelled -> "CANCELLED"
    | Shed -> "SHED")
    (List.length q.rows)

(* --- Engine interface --------------------------------------------------

   The uniform surface every engine implements; {!Registry} wraps the
   concrete engines as first-class modules against this signature so the
   CLI and benchmarks dispatch by name instead of hand-written matches. *)

(* An open engine session, for callers that need feedback while the
   simulation runs — the query service layer (lib/service) schedules,
   sheds and cancels against this surface instead of the closed
   [run]-over-an-array call. All times are the engine's simulated time.

   Contract: [submit] may be called before or during [drive]; a
   submission whose [at] is already in the past launches immediately
   (latency still measures from [at], so queue wait counts). [cancel]
   schedules a scoped cancellation: if the query is still live at that
   instant the engine reclaims its trackers, memos and in-flight
   traversers and reports [Cancelled]. [at_time] schedules an arbitrary
   caller event in engine time (engines with coarse clocks — BSP — may
   fire it at the next barrier). [on_terminal] registers the completion
   callback: invoked once per query, with its final outcome, the moment
   it leaves the engine. [drive ~until:None] runs to the run-level
   deadline (if any) else to completion; [finish] runs the end-of-run
   reclaim + sanitizer and builds the report (call it exactly once). *)
type service_handle = {
  sh_name : string;
  sh_submit : submission -> int; (* returns the engine qid *)
  sh_cancel : qid:int -> at:Sim_time.t -> unit;
  sh_at : Sim_time.t -> (unit -> unit) -> unit;
  sh_now : unit -> Sim_time.t;
  sh_on_terminal : (int -> outcome -> unit) -> unit;
  sh_drive : until:Sim_time.t option -> unit;
  sh_finish : unit -> report;
}

module type S = sig
  val name : string
  val run : ?common:Common.t -> graph:Graph.t -> submission array -> report

  (** Open a service session on this engine (see {!service_handle}). *)
  val start : ?common:Common.t -> graph:Graph.t -> unit -> service_handle
end

(* [run] expressed over the service surface; engines whose [start] is
   primary use this to keep the two entry points semantically aligned. *)
let run_via_start start ?common ~graph (submissions : submission array) =
  let h = start ?common ~graph () in
  Array.iter (fun s -> ignore (h.sh_submit s)) submissions;
  h.sh_drive ~until:None;
  h.sh_finish ()

(* --- Observability ---------------------------------------------------- *)

(* Trace track (Chrome "tid") conventions shared by all engines: workers
   use their worker id; per-query events and NIC activity get synthetic
   tracks well above any plausible worker count. *)
let query_track qid = 1_000_000 + qid
let nic_track node = 900_000 + node
let superstep_track = 800_000

let report_json (r : report) =
  let module J = Pstm_obs.Json in
  let hist = Histogram.create () in
  Array.iter
    (fun q ->
      let l = latency_ms q in
      if Float.is_finite l then Histogram.add hist l)
    r.queries;
  let busy_ns = Array.map Sim_time.to_ns r.worker_busy in
  let busy_mean = Stats.mean (Array.map float_of_int busy_ns) in
  let busy_max = Array.fold_left max 0 busy_ns in
  let straggler = if busy_mean <= 0.0 then 1.0 else float_of_int busy_max /. busy_mean in
  let query_json q =
    J.Obj
      [
        ("qid", J.Int q.qid);
        ("name", J.Str q.name);
        ("tenant", J.Int q.tenant);
        ("priority", J.Int q.priority);
        ("submitted_ns", J.Int (Sim_time.to_ns q.submitted));
        ("outcome", J.Str (outcome_name q.outcome));
        ( "completed_ns",
          match completed_at q with None -> J.Null | Some c -> J.Int (Sim_time.to_ns c) );
        ( "latency_ms",
          let l = latency_ms q in
          if Float.is_finite l then J.Float l else J.Null );
        ("rows", J.Int (List.length q.rows));
      ]
  in
  let count_outcome pred =
    Array.fold_left (fun n q -> if pred q.outcome then n + 1 else n) 0 r.queries
  in
  J.Obj
    [
      ("engine", J.Str r.engine);
      ("makespan_ns", J.Int (Sim_time.to_ns r.makespan));
      ("events", J.Int r.events);
      ("completed", J.Int (n_completed r));
      ("unfinished", J.Int (n_unfinished r));
      ("timed_out", J.Int (count_outcome (fun o -> o = Timed_out)));
      ("cancelled", J.Int (count_outcome (fun o -> o = Cancelled)));
      ("shed", J.Int (count_outcome (fun o -> o = Shed)));
      ("queries", J.List (Array.to_list (Array.map query_json r.queries)));
      ("latency_ms", Pstm_obs.Export.histogram_json hist);
      ("throughput_qps", J.Float (throughput_qps r));
      ("metrics", Pstm_obs.Export.metrics_json r.metrics);
      ("worker_busy_ns", J.List (Array.to_list (Array.map (fun b -> J.Int b) busy_ns)));
      ("straggler_ratio", J.Float straggler);
    ]
