(* Bulk-synchronous-parallel engine — the execution model of the paper's
   TigerGraph baseline and the Fig. 8 "BSP execution" ablation.

   The same compiled programs and the same per-step semantics (Exec) run
   here, but orchestration is synchronous: a superstep lets every worker
   drain its local work (chaining same-worker successors, as real vertex-
   centric systems do), then all cross-worker traversers are exchanged in
   bulk and a global barrier closes the step. The two BSP pathologies the
   paper calls out emerge directly from this arithmetic:

   - stragglers: a superstep lasts as long as its slowest worker, so
     skewed frontiers leave most workers idle (Fig. 2b);
   - phase separation: computation and communication never overlap — the
     NIC is idle while CPUs run and vice versa.

   Multiple in-flight queries share supersteps; a query arriving between
   barriers waits for the next one, which is also faithful to synchronous
   engines. Timing is closed-form per superstep (max compute + bulk
   transfer + barrier), so no event queue is needed. *)

type query_state = {
  qid : int;
  program : Program.t;
  coordinator : int;
  submitted : Sim_time.t;
  mutable completed : Sim_time.t option;
  mutable live : int; (* traversers of this query in frontiers *)
  mutable phase : int;
  rows : Value.t array Vec.t;
  mutable started : bool;
  touched : Bitset.t; (* workers that executed a traverser (first-touch) *)
}

type task = {
  t_qid : int;
  trav : Traverser.t;
}

(* Two roles for this engine, matching the paper's evaluation:

   - [Ablation]: "BSP Execution" of Fig. 8 — GraphDance's own costs under
     synchronous orchestration, isolating the execution-model effect.
   - [Tigergraph_role]: the commercial-baseline stand-in — an interpreted
     GSQL-style engine re-dispatches every active query's plan at each
     superstep and runs markedly heavier per-step code. *)
type profile =
  | Ablation
  | Tigergraph_role

let profile_name = function Ablation -> "bsp-ablation" | Tigergraph_role -> "tigergraph-role"

let run ?(profile = Ablation) ?(common = Engine.Common.default) ~cluster_config ~graph
    (submissions : Engine.submission array) =
  let obs = common.Engine.Common.obs in
  let check = common.Engine.Common.check in
  let deadline = common.Engine.Common.deadline in
  (* Fault plane: only the schedule-driven faults apply here. The bulk
     exchange is closed-form (one reliable transfer per superstep, no
     per-packet events), so drop/duplicate/delay verdicts have nothing to
     attach to; stragglers scale a node's compute and a paused node
     stalls the barrier until its release — which is exactly the BSP
     pathology the paper highlights. *)
  let faults = Option.map Faults.create common.Engine.Common.faults in
  let cluster = Cluster.create cluster_config in
  let obs_on = Pstm_obs.Recorder.enabled obs in
  let trace = Pstm_obs.Recorder.trace obs in
  let flight = Pstm_obs.Recorder.flight obs in
  let opstats = Pstm_obs.Recorder.opstats obs in
  let metrics = Cluster.metrics cluster in
  let costs = Cluster.costs cluster in
  let net = Cluster.net cluster in
  let n_workers = Cluster.n_workers cluster in
  let n_nodes = Cluster.n_nodes cluster in
  let partition = Partition.create ~n_parts:n_workers ~n_vertices:(Graph.n_vertices graph) () in
  let prng = Prng.create 0x6c9 in
  let memos = Array.init n_workers (fun _ -> Memo.create ()) in
  let members = Array.init n_workers (fun w -> lazy (Partition.members partition w)) in
  let frontier = Array.init n_workers (fun _ -> Queue.create ()) in
  let next_frontier = Array.init n_workers (fun _ -> Queue.create ()) in
  let queries =
    Array.mapi
      (fun qid (s : Engine.submission) ->
        {
          qid;
          program = s.Engine.program;
          coordinator = qid mod n_workers;
          submitted = s.Engine.at;
          completed = None;
          live = 0;
          phase = 0;
          rows = Vec.create ~dummy:[||];
          started = false;
          touched = Bitset.create (Cluster.n_workers cluster);
        })
      submissions
  in
  let fl_frontier =
    Array.init n_workers (fun i -> Pstm_obs.Flight.series flight (Printf.sprintf "worker%d.queue" i))
  in
  let fl_memo =
    Array.init n_workers (fun i -> Pstm_obs.Flight.series flight (Printf.sprintf "worker%d.memo" i))
  in
  let fl_live = Pstm_obs.Flight.series flight "inflight" in
  let clock = ref Sim_time.zero in
  let route q (trav : Traverser.t) =
    let step = Program.step q.program trav.step in
    match Step.routing step.Step.op with
    | Step.By_coordinator -> q.coordinator
    | Step.By_vertex -> Partition.owner partition trav.vertex
    | Step.By_key e -> begin
      match Step.eval_expr graph ~vertex:trav.vertex ~regs:trav.regs e with
      | Value.Vertex v -> Partition.owner partition v
      | v -> Value.hash v mod n_workers
    end
  in
  let admit_pending () =
    Array.iter
      (fun q ->
        if (not q.started) && Sim_time.compare q.submitted !clock <= 0 then begin
          q.started <- true;
          if obs_on then
            Pstm_obs.Trace.instant trace ~tid:(Engine.query_track q.qid) ~name:"submit"
              ~ts:q.submitted
              ~args:[ ("query", Pstm_obs.Trace.S (Program.name q.program)) ]
              ();
          Array.iter
            (fun entry ->
              let root =
                Traverser.make ~vertex:0 ~step:entry ~weight:Weight.root
                  ~n_registers:(Program.n_registers q.program)
              in
              match (Program.step q.program entry).Step.op with
              | Step.Scan _ ->
                Pstm_obs.Opstats.seed opstats n_workers;
                for w = 0 to n_workers - 1 do
                  Queue.add { t_qid = q.qid; trav = root } frontier.(w);
                  q.live <- q.live + 1
                done
              | _ ->
                Pstm_obs.Opstats.seed opstats 1;
                Queue.add { t_qid = q.qid; trav = root } frontier.(q.coordinator);
                q.live <- q.live + 1)
            (Program.entries q.program)
        end)
      queries
  in
  let next_arrival () =
    Array.fold_left
      (fun acc q ->
        if q.started then acc
        else match acc with None -> Some q.submitted | Some t -> Some (min t q.submitted))
      None queries
  in
  let frontiers_empty () = Array.for_all Queue.is_empty frontier in
  (* One superstep. Returns unit; advances [clock]. *)
  (* Synchronous engines re-instantiate and re-schedule every active
     query's plan operators at each superstep; this per-superstep tax is
     what makes the TigerGraph-role baseline collapse under high issue
     rates (Figure 7, TCR 0.03). *)
  let interpretation_scale = match profile with Ablation -> 1 | Tigergraph_role -> 4 in
  let per_query_sched =
    match profile with
    | Ablation -> costs.Cluster.operator_sched
    | Tigergraph_role -> Sim_time.us 6
  in
  let scheduling_overhead () =
    let live_ops =
      Array.fold_left
        (fun acc q ->
          if q.started && q.completed = None then acc + Program.n_steps q.program else acc)
        0 queries
    in
    match profile with
    | Ablation -> live_ops * costs.Cluster.operator_sched
    | Tigergraph_role ->
      let live_queries =
        Array.fold_left
          (fun acc q -> if q.started && q.completed = None then acc + 1 else acc)
          0 queries
      in
      live_queries * per_query_sched
  in
  let busy_total = Array.make n_workers Sim_time.zero in
  let superstep_idx = ref 0 in
  let superstep () =
    Metrics.count_superstep metrics;
    let clock0 = !clock in
    if obs_on then begin
      let live = Array.fold_left (fun acc q -> acc + q.live) 0 queries in
      Pstm_obs.Flight.sample flight fl_live ~time:clock0 (float_of_int live);
      for w = 0 to n_workers - 1 do
        Pstm_obs.Flight.sample flight fl_frontier.(w) ~time:clock0
          (float_of_int (Queue.length frontier.(w)));
        Pstm_obs.Flight.sample flight fl_memo.(w) ~time:clock0
          (float_of_int (Memo.live_entries memos.(w)))
      done
    end;
    let msg_bytes = Array.make_matrix n_nodes n_nodes 0 in
    let compute = Array.make n_workers (scheduling_overhead ()) in
    for w = 0 to n_workers - 1 do
      let memo = memos.(w) in
      let scan label =
        let mine = Lazy.force members.(w) in
        match label with
        | None -> mine
        | Some l -> Array.of_seq (Seq.filter (Graph.has_vertex_label graph ~label:l) (Array.to_seq mine))
      in
      let elapsed = ref compute.(w) in
      while not (Queue.is_empty frontier.(w)) do
        let { t_qid; trav } = Queue.pop frontier.(w) in
        let q = queries.(t_qid) in
        q.live <- q.live - 1;
        if obs_on && Bitset.add_if_absent q.touched w then
          Pstm_obs.Trace.instant trace ~tid:(Engine.query_track t_qid) ~name:"first_touch"
            ~ts:clock0
            ~args:[ ("worker", Pstm_obs.Trace.I w) ]
            ();
        Metrics.count_step metrics;
        let outcome = Exec.exec ~graph ~memo ~prng ~qid:t_qid ~program:q.program ~scan trav in
        if check && not (Exec.conserves trav outcome) then
          Engine.check_fail "bsp: query %d step %d (%s) broke weight conservation" t_qid
            trav.Traverser.step
            (Step.op_name (Program.step q.program trav.Traverser.step).Step.op);
        Metrics.count_edges metrics outcome.Exec.edges_scanned;
        let step_cost = interpretation_scale * Exec.cost costs outcome in
        if obs_on then
          Pstm_obs.Opstats.record opstats ~step:trav.Traverser.step
            ~out:(List.length outcome.Exec.spawns)
            ~rows:(List.length outcome.Exec.rows)
            ~finished:(not (Weight.is_zero outcome.Exec.finished))
            ~edges:outcome.Exec.edges_scanned ~memo_hits:outcome.Exec.memo_hits
            ~memo_misses:outcome.Exec.memo_misses ~busy_ns:(Sim_time.to_ns step_cost);
        elapsed := Sim_time.add !elapsed step_cost;
        List.iter
          (fun child ->
            Metrics.count_spawn metrics;
            q.live <- q.live + 1;
            let dst = route q child in
            if dst = w then
              (* Same worker: keep chaining inside this superstep. *)
              Queue.add { t_qid; trav = child } frontier.(w)
            else begin
              let kind =
                match (Program.step q.program child.Traverser.step).Step.op with
                | Step.Emit _ -> Metrics.Result_msg
                | _ -> Metrics.Traverser_msg
              in
              let bytes = 8 + Traverser.bytes child in
              Metrics.count_message metrics kind bytes;
              let sn = Cluster.node_of_worker cluster w in
              let dn = Cluster.node_of_worker cluster dst in
              if sn = dn then Metrics.count_local_message metrics
              else msg_bytes.(sn).(dn) <- msg_bytes.(sn).(dn) + bytes;
              Queue.add { t_qid; trav = child } next_frontier.(dst)
            end)
          outcome.Exec.spawns;
        List.iter (fun (row, _weight) -> Vec.push q.rows row) outcome.Exec.rows
      done;
      compute.(w) <- !elapsed;
      if obs_on && Sim_time.compare !elapsed Sim_time.zero > 0 then
        Pstm_obs.Trace.span trace ~tid:w ~name:"compute" ~ts:clock0 ~dur:!elapsed
          ~args:[ ("superstep", Pstm_obs.Trace.I !superstep_idx) ]
          ();
      busy_total.(w) <- Sim_time.add busy_total.(w) !elapsed
    done;
    (* Superstep timing: barrier at max worker compute, then bulk exchange
       (computation and communication strictly separated). *)
    let node_compute = Array.make n_nodes Sim_time.zero in
    for w = 0 to n_workers - 1 do
      let node = Cluster.node_of_worker cluster w in
      node_compute.(node) <- max node_compute.(node) compute.(w)
    done;
    (match faults with
    | None -> ()
    | Some f ->
      (* A straggler node stretches its compute; a paused node cannot
         start until its window releases. Either way the barrier waits. *)
      for node = 0 to n_nodes - 1 do
        let stall = Sim_time.diff (Faults.release f ~node ~at:clock0) clock0 in
        node_compute.(node) <- Sim_time.add stall (Faults.scale f ~node node_compute.(node))
      done);
    let all_compute = Array.fold_left max Sim_time.zero node_compute in
    let comm_end = ref all_compute in
    for src = 0 to n_nodes - 1 do
      let serialization = ref Sim_time.zero in
      for dst = 0 to n_nodes - 1 do
        if msg_bytes.(src).(dst) > 0 then begin
          Metrics.count_packet metrics msg_bytes.(src).(dst);
          serialization :=
            Sim_time.add !serialization (Netmodel.nic_occupancy net ~bytes:msg_bytes.(src).(dst))
        end
      done;
      if Sim_time.compare !serialization Sim_time.zero > 0 then
        comm_end :=
          max !comm_end
            (Sim_time.add all_compute (Sim_time.add !serialization net.Netmodel.wire_latency))
    done;
    (* Barrier: every worker reports to the coordinator and is released —
       a gather/broadcast over the wire on top of the fixed sync cost. *)
    for _ = 1 to 2 * n_workers do
      Metrics.count_message metrics Metrics.Control_msg 16
    done;
    let barrier =
      Sim_time.add costs.Cluster.barrier (2 * net.Netmodel.wire_latency)
    in
    clock := Sim_time.add !clock (Sim_time.add !comm_end barrier);
    if obs_on then begin
      Pstm_obs.Trace.span trace ~cat:"sched" ~tid:Engine.superstep_track ~name:"superstep"
        ~ts:clock0
        ~dur:(Sim_time.diff !clock clock0)
        ~args:[ ("index", Pstm_obs.Trace.I !superstep_idx) ]
        ();
      (* The barrier tail of the superstep: everything past peak compute. *)
      Pstm_obs.Trace.span trace ~cat:"sched" ~tid:Engine.superstep_track ~name:"barrier"
        ~ts:(Sim_time.add clock0 all_compute)
        ~dur:(Sim_time.diff !clock (Sim_time.add clock0 all_compute))
        ~args:[ ("index", Pstm_obs.Trace.I !superstep_idx) ]
        ()
    end;
    incr superstep_idx;
    (* Swap frontiers. *)
    for w = 0 to n_workers - 1 do
      Queue.transfer next_frontier.(w) frontier.(w)
    done
  in
  (* Phase transitions happen at barriers: a query whose traversers all
     died either combines its pending aggregate or is complete. *)
  let handle_phase_boundaries () =
    Array.iter
      (fun q ->
        if q.started && q.completed = None && q.live = 0 then begin
          match Program.agg_of_phase q.program q.phase with
          | Some agg_step ->
            let step = Program.step q.program agg_step in
            let agg, reg =
              match step.Step.op with
              | Step.Aggregate { agg; reg } -> (agg, reg)
              | _ -> assert false
            in
            let acc = Aggregate.create agg in
            Array.iter
              (fun memo ->
                Metrics.count_message metrics Metrics.Control_msg 16;
                match Memo.partial_opt memo ~qid:q.qid ~label:agg_step with
                | Some p -> Aggregate.merge ~into:acc p
                | None -> ())
              memos;
            let cont =
              Traverser.set_reg
                (Traverser.make ~vertex:0 ~step:step.Step.next ~weight:Weight.root
                   ~n_registers:(Program.n_registers q.program))
                reg (Aggregate.finalize acc)
            in
            if obs_on then
              Pstm_obs.Trace.instant trace ~tid:(Engine.query_track q.qid) ~name:"phase_complete"
                ~ts:!clock
                ~args:[ ("phase", Pstm_obs.Trace.I q.phase) ]
                ();
            Pstm_obs.Opstats.seed opstats 1;
            q.phase <- q.phase + 1;
            q.live <- 1;
            Queue.add { t_qid = q.qid; trav = cont } frontier.(route q cont)
          | None ->
            q.completed <- Some !clock;
            if obs_on then
              Pstm_obs.Trace.instant trace ~tid:(Engine.query_track q.qid) ~name:"complete"
                ~ts:!clock
                ~args:
                  [
                    ("rows", Pstm_obs.Trace.I (Vec.length q.rows));
                    ("workers_touched", Pstm_obs.Trace.I (Bitset.count q.touched));
                  ]
                ();
            Array.iter (fun memo -> Memo.clear_query memo q.qid) memos
        end)
      queries
  in
  let past_deadline () =
    match deadline with None -> false | Some d -> Sim_time.compare !clock d > 0
  in
  let all_done () = Array.for_all (fun q -> q.completed <> None) queries in
  admit_pending ();
  let continue = ref true in
  while !continue do
    if past_deadline () then continue := false
    else if not (frontiers_empty ()) then begin
      superstep ();
      admit_pending ();
      handle_phase_boundaries ()
    end
    else if all_done () then continue := false
    else begin
      (* Idle: jump to the next query arrival. *)
      match next_arrival () with
      | Some t ->
        clock := max !clock t;
        admit_pending ();
        handle_phase_boundaries ()
      | None -> continue := false
    end
  done;
  (* Sanitizer post-conditions (only when the run was not deadline-cut):
     every query drained its frontiers, and query-scoped memos were
     cleared at completion. *)
  if check && deadline = None then begin
    Array.iter
      (fun q ->
        if q.completed = None then
          Engine.check_fail "bsp: query %d never terminated (live count wedged at %d)" q.qid
            q.live)
      queries;
    Array.iteri
      (fun w memo ->
        let n = Memo.live_entries memo in
        if n > 0 then
          Engine.check_fail "bsp: worker %d holds %d memo entries after all queries completed" w
            n)
      memos
  end;
  (* Surface ring truncation: a trace that silently dropped events would
     otherwise read as a complete record. *)
  if obs_on then Metrics.set_trace_dropped metrics (Pstm_obs.Trace.dropped trace);
  let reports =
    Array.map
      (fun q ->
        {
          Engine.qid = q.qid;
          name = Program.name q.program;
          submitted = q.submitted;
          completed = q.completed;
          rows = Vec.to_list q.rows;
        })
      queries
  in
  {
    Engine.engine = profile_name profile;
    queries = reports;
    makespan = !clock;
    metrics;
    events = Metrics.supersteps metrics;
    worker_busy = busy_total;
  }
