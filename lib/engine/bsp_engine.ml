(* Bulk-synchronous-parallel engine — the execution model of the paper's
   TigerGraph baseline and the Fig. 8 "BSP execution" ablation.

   The same compiled programs and the same per-step semantics (Exec) run
   here, but orchestration is synchronous: a superstep lets every worker
   drain its local work (chaining same-worker successors, as real vertex-
   centric systems do), then all cross-worker traversers are exchanged in
   bulk and a global barrier closes the step. The two BSP pathologies the
   paper calls out emerge directly from this arithmetic:

   - stragglers: a superstep lasts as long as its slowest worker, so
     skewed frontiers leave most workers idle (Fig. 2b);
   - phase separation: computation and communication never overlap — the
     NIC is idle while CPUs run and vice versa.

   Multiple in-flight queries share supersteps; a query arriving between
   barriers waits for the next one, which is also faithful to synchronous
   engines. Timing is closed-form per superstep (max compute + bulk
   transfer + barrier), so no event queue is needed — which means the
   service surface (submit/cancel/at) runs at barrier granularity: a
   caller event scheduled for time [t] fires at the first barrier whose
   clock is past [t], exactly like a query arriving between barriers. *)

type query_state = {
  qid : int;
  program : Program.t;
  coordinator : int;
  tenant : int;
  priority : int;
  submitted : Sim_time.t;
  deadline_at : Sim_time.t option; (* absolute: submitted + per-query budget *)
  mutable outcome : Engine.outcome option;
  mutable live : int; (* traversers of this query in frontiers *)
  mutable phase : int;
  rows : Value.t array Vec.t;
  mutable started : bool;
  touched : Bitset.t; (* workers that executed a traverser (first-touch) *)
}

type task = {
  t_qid : int;
  trav : Traverser.t;
}

(* Two roles for this engine, matching the paper's evaluation:

   - [Ablation]: "BSP Execution" of Fig. 8 — GraphDance's own costs under
     synchronous orchestration, isolating the execution-model effect.
   - [Tigergraph_role]: the commercial-baseline stand-in — an interpreted
     GSQL-style engine re-dispatches every active query's plan at each
     superstep and runs markedly heavier per-step code. *)
type profile =
  | Ablation
  | Tigergraph_role

let profile_name = function Ablation -> "bsp-ablation" | Tigergraph_role -> "tigergraph-role"

let create ?(profile = Ablation) ?(common = Engine.Common.default) ~cluster_config ~graph () =
  let obs = common.Engine.Common.obs in
  let check = common.Engine.Common.check in
  let deadline = common.Engine.Common.deadline in
  (* Fault plane: only the schedule-driven faults apply here. The bulk
     exchange is closed-form (one reliable transfer per superstep, no
     per-packet events), so drop/duplicate/delay verdicts have nothing to
     attach to; stragglers scale a node's compute and a paused node
     stalls the barrier until its release — which is exactly the BSP
     pathology the paper highlights. *)
  let faults = Option.map Faults.create common.Engine.Common.faults in
  let cluster = Cluster.create cluster_config in
  let obs_on = Pstm_obs.Recorder.enabled obs in
  let trace = Pstm_obs.Recorder.trace obs in
  let flight = Pstm_obs.Recorder.flight obs in
  let opstats = Pstm_obs.Recorder.opstats obs in
  let metrics = Cluster.metrics cluster in
  let costs = Cluster.costs cluster in
  let net = Cluster.net cluster in
  let n_workers = Cluster.n_workers cluster in
  let n_nodes = Cluster.n_nodes cluster in
  let partition = Partition.create ~n_parts:n_workers ~n_vertices:(Graph.n_vertices graph) () in
  let prng = Prng.create 0x6c9 in
  let memos = Array.init n_workers (fun _ -> Memo.create ()) in
  let members = Array.init n_workers (fun w -> lazy (Partition.members partition w)) in
  let frontier = Array.init n_workers (fun _ -> Queue.create ()) in
  let next_frontier = Array.init n_workers (fun _ -> Queue.create ()) in
  let queries : (int, query_state) Hashtbl.t = Hashtbl.create 64 in
  let next_qid = ref 0 in
  let query qid =
    match Hashtbl.find_opt queries qid with
    | Some q -> q
    | None -> Fmt.invalid_arg "bsp: unknown query %d" qid
  in
  let iter_queries f =
    for qid = 0 to !next_qid - 1 do
      f (query qid)
    done
  in
  let on_terminal : (int -> Engine.outcome -> unit) ref = ref (fun _ _ -> ()) in
  let fl_frontier =
    Array.init n_workers (fun i -> Pstm_obs.Flight.series flight (Printf.sprintf "worker%d.queue" i))
  in
  let fl_memo =
    Array.init n_workers (fun i -> Pstm_obs.Flight.series flight (Printf.sprintf "worker%d.memo" i))
  in
  let fl_live = Pstm_obs.Flight.series flight "inflight" in
  let clock = ref Sim_time.zero in
  (* Caller events (service layer arrivals / cancellations / timers),
     kept sorted by (time, insertion seq) for determinism and fired at
     barrier granularity. *)
  let sv_seq = ref 0 in
  let sv_events : (Sim_time.t * int * (unit -> unit)) list ref = ref [] in
  let sv_add t f =
    let t = max t !clock in
    let e = (t, !sv_seq, f) in
    incr sv_seq;
    let rec ins = function
      | [] -> [ e ]
      | ((t', _, _) as hd) :: tl ->
        if Sim_time.compare t t' < 0 then e :: hd :: tl else hd :: ins tl
    in
    sv_events := ins !sv_events
  in
  let fire_service () =
    let rec go () =
      match !sv_events with
      | (t, _, f) :: tl when Sim_time.compare t !clock <= 0 ->
        sv_events := tl;
        f ();
        go ()
      | _ -> ()
    in
    go ()
  in
  let route q (trav : Traverser.t) =
    let step = Program.step q.program trav.step in
    match Step.routing step.Step.op with
    | Step.By_coordinator -> q.coordinator
    | Step.By_vertex -> Partition.owner partition trav.vertex
    | Step.By_key e -> begin
      match Step.eval_expr graph ~vertex:trav.vertex ~regs:trav.regs e with
      | Value.Vertex v -> Partition.owner partition v
      | v -> Value.hash v mod n_workers
    end
  in
  (* Scoped termination: the query stops consuming supersteps (its
     remaining frontier tasks are skipped on pop) and its memo entries
     are reclaimed immediately, so the end-of-run memo-emptiness
     invariant holds through mid-flight cancellation. *)
  let terminate qid outcome =
    let q = query qid in
    if q.outcome = None then begin
      q.outcome <- Some outcome;
      Array.iter (fun memo -> Memo.clear_query memo qid) memos;
      if obs_on then
        Pstm_obs.Trace.instant trace ~tid:(Engine.query_track qid)
          ~name:(Engine.outcome_name outcome) ~ts:!clock ();
      !on_terminal qid outcome
    end
  in
  let admit_pending () =
    iter_queries (fun q ->
        if (not q.started) && q.outcome = None && Sim_time.compare q.submitted !clock <= 0
        then begin
          q.started <- true;
          if obs_on then
            Pstm_obs.Trace.instant trace ~tid:(Engine.query_track q.qid) ~name:"submit"
              ~ts:q.submitted
              ~args:[ ("query", Pstm_obs.Trace.S (Program.name q.program)) ]
              ();
          Array.iter
            (fun entry ->
              let root =
                Traverser.make ~vertex:0 ~step:entry ~weight:Weight.root
                  ~n_registers:(Program.n_registers q.program)
              in
              match (Program.step q.program entry).Step.op with
              | Step.Scan _ ->
                Pstm_obs.Opstats.seed opstats n_workers;
                for w = 0 to n_workers - 1 do
                  Queue.add { t_qid = q.qid; trav = root } frontier.(w);
                  q.live <- q.live + 1
                done
              | _ ->
                Pstm_obs.Opstats.seed opstats 1;
                Queue.add { t_qid = q.qid; trav = root } frontier.(q.coordinator);
                q.live <- q.live + 1)
            (Program.entries q.program)
        end)
  in
  (* Per-query latency budgets expire at barrier granularity too: the
     first barrier past [submitted + deadline] cuts the query off. *)
  let expire_deadlines () =
    iter_queries (fun q ->
        match q.deadline_at with
        | Some t when q.outcome = None && Sim_time.compare t !clock <= 0 ->
          terminate q.qid Engine.Timed_out
        | _ -> ())
  in
  let next_wake () =
    let acc = ref None in
    let consider t =
      match !acc with None -> acc := Some t | Some t' -> acc := Some (min t t')
    in
    iter_queries (fun q -> if (not q.started) && q.outcome = None then consider q.submitted);
    (match !sv_events with [] -> () | (t, _, _) :: _ -> consider t);
    !acc
  in
  let frontiers_empty () = Array.for_all Queue.is_empty frontier in
  (* One superstep. Returns unit; advances [clock]. *)
  (* Synchronous engines re-instantiate and re-schedule every active
     query's plan operators at each superstep; this per-superstep tax is
     what makes the TigerGraph-role baseline collapse under high issue
     rates (Figure 7, TCR 0.03). *)
  let interpretation_scale = match profile with Ablation -> 1 | Tigergraph_role -> 4 in
  let per_query_sched =
    match profile with
    | Ablation -> costs.Cluster.operator_sched
    | Tigergraph_role -> Sim_time.us 6
  in
  let scheduling_overhead () =
    let live_ops = ref 0 in
    let live_queries = ref 0 in
    iter_queries (fun q ->
        if q.started && q.outcome = None then begin
          live_ops := !live_ops + Program.n_steps q.program;
          incr live_queries
        end);
    match profile with
    | Ablation -> !live_ops * costs.Cluster.operator_sched
    | Tigergraph_role -> !live_queries * per_query_sched
  in
  let busy_total = Array.make n_workers Sim_time.zero in
  let superstep_idx = ref 0 in
  let superstep () =
    Metrics.count_superstep metrics;
    let clock0 = !clock in
    if obs_on then begin
      let live = ref 0 in
      iter_queries (fun q -> live := !live + q.live);
      Pstm_obs.Flight.sample flight fl_live ~time:clock0 (float_of_int !live);
      for w = 0 to n_workers - 1 do
        Pstm_obs.Flight.sample flight fl_frontier.(w) ~time:clock0
          (float_of_int (Queue.length frontier.(w)));
        Pstm_obs.Flight.sample flight fl_memo.(w) ~time:clock0
          (float_of_int (Memo.live_entries memos.(w)))
      done
    end;
    let msg_bytes = Array.make_matrix n_nodes n_nodes 0 in
    let compute = Array.make n_workers (scheduling_overhead ()) in
    for w = 0 to n_workers - 1 do
      let memo = memos.(w) in
      let scan label =
        let mine = Lazy.force members.(w) in
        match label with
        | None -> mine
        | Some l -> Array.of_seq (Seq.filter (Graph.has_vertex_label graph ~label:l) (Array.to_seq mine))
      in
      let elapsed = ref compute.(w) in
      while not (Queue.is_empty frontier.(w)) do
        let { t_qid; trav } = Queue.pop frontier.(w) in
        let q = query t_qid in
        q.live <- q.live - 1;
        (* Tasks of a cancelled / timed-out query die here: popped but
           not executed, so a terminated query consumes no more steps. *)
        if q.outcome = None then begin
          if obs_on && Bitset.add_if_absent q.touched w then
            Pstm_obs.Trace.instant trace ~tid:(Engine.query_track t_qid) ~name:"first_touch"
              ~ts:clock0
              ~args:[ ("worker", Pstm_obs.Trace.I w) ]
              ();
          Metrics.count_step metrics;
          let outcome = Exec.exec ~graph ~memo ~prng ~qid:t_qid ~program:q.program ~scan trav in
          if check && not (Exec.conserves trav outcome) then
            Engine.check_fail "bsp: query %d step %d (%s) broke weight conservation" t_qid
              trav.Traverser.step
              (Step.op_name (Program.step q.program trav.Traverser.step).Step.op);
          Metrics.count_edges metrics outcome.Exec.edges_scanned;
          let step_cost = interpretation_scale * Exec.cost costs outcome in
          if obs_on then
            Pstm_obs.Opstats.record opstats ~step:trav.Traverser.step
              ~out:(List.length outcome.Exec.spawns)
              ~rows:(List.length outcome.Exec.rows)
              ~finished:(not (Weight.is_zero outcome.Exec.finished))
              ~edges:outcome.Exec.edges_scanned ~memo_hits:outcome.Exec.memo_hits
              ~memo_misses:outcome.Exec.memo_misses ~busy_ns:(Sim_time.to_ns step_cost);
          elapsed := Sim_time.add !elapsed step_cost;
          List.iter
            (fun child ->
              Metrics.count_spawn metrics;
              q.live <- q.live + 1;
              let dst = route q child in
              if dst = w then
                (* Same worker: keep chaining inside this superstep. *)
                Queue.add { t_qid; trav = child } frontier.(w)
              else begin
                let kind =
                  match (Program.step q.program child.Traverser.step).Step.op with
                  | Step.Emit _ -> Metrics.Result_msg
                  | _ -> Metrics.Traverser_msg
                in
                let bytes = 8 + Traverser.bytes child in
                Metrics.count_message metrics kind bytes;
                let sn = Cluster.node_of_worker cluster w in
                let dn = Cluster.node_of_worker cluster dst in
                if sn = dn then Metrics.count_local_message metrics
                else msg_bytes.(sn).(dn) <- msg_bytes.(sn).(dn) + bytes;
                Queue.add { t_qid; trav = child } next_frontier.(dst)
              end)
            outcome.Exec.spawns;
          List.iter (fun (row, _weight) -> Vec.push q.rows row) outcome.Exec.rows
        end
      done;
      compute.(w) <- !elapsed;
      if obs_on && Sim_time.compare !elapsed Sim_time.zero > 0 then
        Pstm_obs.Trace.span trace ~tid:w ~name:"compute" ~ts:clock0 ~dur:!elapsed
          ~args:[ ("superstep", Pstm_obs.Trace.I !superstep_idx) ]
          ();
      busy_total.(w) <- Sim_time.add busy_total.(w) !elapsed
    done;
    (* Superstep timing: barrier at max worker compute, then bulk exchange
       (computation and communication strictly separated). *)
    let node_compute = Array.make n_nodes Sim_time.zero in
    for w = 0 to n_workers - 1 do
      let node = Cluster.node_of_worker cluster w in
      node_compute.(node) <- max node_compute.(node) compute.(w)
    done;
    (match faults with
    | None -> ()
    | Some f ->
      (* A straggler node stretches its compute; a paused node cannot
         start until its window releases. Either way the barrier waits. *)
      for node = 0 to n_nodes - 1 do
        let stall = Sim_time.diff (Faults.release f ~node ~at:clock0) clock0 in
        node_compute.(node) <- Sim_time.add stall (Faults.scale f ~node node_compute.(node))
      done);
    let all_compute = Array.fold_left max Sim_time.zero node_compute in
    let comm_end = ref all_compute in
    for src = 0 to n_nodes - 1 do
      let serialization = ref Sim_time.zero in
      for dst = 0 to n_nodes - 1 do
        if msg_bytes.(src).(dst) > 0 then begin
          Metrics.count_packet metrics msg_bytes.(src).(dst);
          serialization :=
            Sim_time.add !serialization (Netmodel.nic_occupancy net ~bytes:msg_bytes.(src).(dst))
        end
      done;
      if Sim_time.compare !serialization Sim_time.zero > 0 then
        comm_end :=
          max !comm_end
            (Sim_time.add all_compute (Sim_time.add !serialization net.Netmodel.wire_latency))
    done;
    (* Barrier: every worker reports to the coordinator and is released —
       a gather/broadcast over the wire on top of the fixed sync cost. *)
    for _ = 1 to 2 * n_workers do
      Metrics.count_message metrics Metrics.Control_msg 16
    done;
    let barrier =
      Sim_time.add costs.Cluster.barrier (2 * net.Netmodel.wire_latency)
    in
    clock := Sim_time.add !clock (Sim_time.add !comm_end barrier);
    if obs_on then begin
      Pstm_obs.Trace.span trace ~cat:"sched" ~tid:Engine.superstep_track ~name:"superstep"
        ~ts:clock0
        ~dur:(Sim_time.diff !clock clock0)
        ~args:[ ("index", Pstm_obs.Trace.I !superstep_idx) ]
        ();
      (* The barrier tail of the superstep: everything past peak compute. *)
      Pstm_obs.Trace.span trace ~cat:"sched" ~tid:Engine.superstep_track ~name:"barrier"
        ~ts:(Sim_time.add clock0 all_compute)
        ~dur:(Sim_time.diff !clock (Sim_time.add clock0 all_compute))
        ~args:[ ("index", Pstm_obs.Trace.I !superstep_idx) ]
        ()
    end;
    incr superstep_idx;
    (* Swap frontiers. *)
    for w = 0 to n_workers - 1 do
      Queue.transfer next_frontier.(w) frontier.(w)
    done
  in
  (* Phase transitions happen at barriers: a query whose traversers all
     died either combines its pending aggregate or is complete. *)
  let handle_phase_boundaries () =
    iter_queries (fun q ->
        if q.started && q.outcome = None && q.live = 0 then begin
          match Program.agg_of_phase q.program q.phase with
          | Some agg_step ->
            let step = Program.step q.program agg_step in
            let agg, reg =
              match step.Step.op with
              | Step.Aggregate { agg; reg } -> (agg, reg)
              | _ -> assert false
            in
            let acc = Aggregate.create agg in
            Array.iter
              (fun memo ->
                Metrics.count_message metrics Metrics.Control_msg 16;
                match Memo.partial_opt memo ~qid:q.qid ~label:agg_step with
                | Some p -> Aggregate.merge ~into:acc p
                | None -> ())
              memos;
            let cont =
              Traverser.set_reg
                (Traverser.make ~vertex:0 ~step:step.Step.next ~weight:Weight.root
                   ~n_registers:(Program.n_registers q.program))
                reg (Aggregate.finalize acc)
            in
            if obs_on then
              Pstm_obs.Trace.instant trace ~tid:(Engine.query_track q.qid) ~name:"phase_complete"
                ~ts:!clock
                ~args:[ ("phase", Pstm_obs.Trace.I q.phase) ]
                ();
            Pstm_obs.Opstats.seed opstats 1;
            q.phase <- q.phase + 1;
            q.live <- 1;
            Queue.add { t_qid = q.qid; trav = cont } frontier.(route q cont)
          | None ->
            q.outcome <- Some (Engine.Completed !clock);
            if obs_on then
              Pstm_obs.Trace.instant trace ~tid:(Engine.query_track q.qid) ~name:"complete"
                ~ts:!clock
                ~args:
                  [
                    ("rows", Pstm_obs.Trace.I (Vec.length q.rows));
                    ("workers_touched", Pstm_obs.Trace.I (Bitset.count q.touched));
                  ]
                ();
            Array.iter (fun memo -> Memo.clear_query memo q.qid) memos;
            !on_terminal q.qid (Engine.Completed !clock)
        end)
  in
  let submit_sub (s : Engine.submission) =
    let qid = !next_qid in
    incr next_qid;
    Hashtbl.add queries qid
      {
        qid;
        program = s.Engine.program;
        coordinator = qid mod n_workers;
        tenant = s.Engine.tenant;
        priority = s.Engine.priority;
        submitted = s.Engine.at;
        deadline_at = Option.map (fun d -> Sim_time.add s.Engine.at d) s.Engine.deadline;
        outcome = None;
        live = 0;
        phase = 0;
        rows = Vec.create ~dummy:[||];
        started = false;
        touched = Bitset.create n_workers;
      };
    qid
  in
  let drive ~until =
    let stop =
      match (until, deadline) with
      | None, None -> None
      | (None, Some t | Some t, None) -> Some t
      | Some t, Some d -> Some (min t d)
    in
    let past_stop () =
      match stop with None -> false | Some d -> Sim_time.compare !clock d > 0
    in
    fire_service ();
    admit_pending ();
    expire_deadlines ();
    let continue = ref true in
    while !continue do
      if past_stop () then continue := false
      else if not (frontiers_empty ()) then begin
        superstep ();
        fire_service ();
        admit_pending ();
        expire_deadlines ();
        handle_phase_boundaries ()
      end
      else begin
        (* Idle: jump to the next query arrival or caller event. *)
        match next_wake () with
        | Some t when (match stop with None -> true | Some s -> Sim_time.compare t s <= 0) ->
          clock := max !clock t;
          fire_service ();
          admit_pending ();
          expire_deadlines ();
          handle_phase_boundaries ()
        | _ -> continue := false
      end
    done
  in
  let finish () =
    (* A run cut short by the run-level deadline leaves queries
       unfinished: they report TIMEOUT with their memos reclaimed, the
       same graceful degradation as the async engine. *)
    if deadline <> None then
      iter_queries (fun q ->
          if q.outcome = None then begin
            q.outcome <- Some Engine.Timed_out;
            Array.iter (fun memo -> Memo.clear_query memo q.qid) memos;
            !on_terminal q.qid Engine.Timed_out
          end);
    (* Sanitizer post-conditions (only when the run was not deadline-cut):
       every query reached a terminal outcome, and query-scoped memos
       were cleared at each terminal transition. *)
    if check && deadline = None then begin
      iter_queries (fun q ->
          if q.outcome = None then
            Engine.check_fail "bsp: query %d never terminated (live count wedged at %d)" q.qid
              q.live);
      Array.iteri
        (fun w memo ->
          let n = Memo.live_entries memo in
          if n > 0 then
            Engine.check_fail "bsp: worker %d holds %d memo entries after all queries completed"
              w n)
        memos
    end;
    (* Surface ring truncation: a trace that silently dropped events would
       otherwise read as a complete record. *)
    if obs_on then Metrics.set_trace_dropped metrics (Pstm_obs.Trace.dropped trace);
    let reports =
      Array.init !next_qid (fun qid ->
          let q = query qid in
          {
            Engine.qid = q.qid;
            name = Program.name q.program;
            tenant = q.tenant;
            priority = q.priority;
            submitted = q.submitted;
            outcome = (match q.outcome with Some o -> o | None -> Engine.Timed_out);
            rows = Vec.to_list q.rows;
          })
    in
    {
      Engine.engine = profile_name profile;
      queries = reports;
      makespan = !clock;
      metrics;
      events = Metrics.supersteps metrics;
      worker_busy = busy_total;
    }
  in
  {
    Engine.sh_name = profile_name profile;
    sh_submit = submit_sub;
    sh_cancel = (fun ~qid ~at -> sv_add at (fun () -> terminate qid Engine.Cancelled));
    sh_at = sv_add;
    sh_now = (fun () -> !clock);
    sh_on_terminal = (fun f -> on_terminal := f);
    sh_drive = drive;
    sh_finish = finish;
  }

let start ?profile ?common ~cluster_config ~graph () =
  create ?profile ?common ~cluster_config ~graph ()

let run ?profile ?common ~cluster_config ~graph (submissions : Engine.submission array) =
  Engine.run_via_start
    (fun ?common ~graph () -> create ?profile ?common ~cluster_config ~graph ())
    ?common ~graph submissions
