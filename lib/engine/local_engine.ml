(* Reference interpreter: the semantic oracle.

   Executes a program directly on the graph with a single memo and a plain
   FIFO — no partitioning, no simulated time, no weights consulted. Phase
   p runs to quiescence, then the phase's aggregate (if any) finalizes and
   its continuation seeds phase p+1. Every distributed engine is tested to
   produce the same rows as this one on the deterministic query fragment
   (see test/test_engines.ml). *)

let run ?(common = Engine.Common.default) graph program =
  let obs = common.Engine.Common.obs in
  let check = common.Engine.Common.check in
  (* No cluster, no clock: deadline, seed and faults cannot apply here —
     the oracle is the fault-free semantic ground truth. *)
  (* The oracle has no simulated clock, so only operator stats are
     recorded (busy time stays zero); trace and flight need timestamps. *)
  let obs_on = Pstm_obs.Recorder.enabled obs in
  let opstats = Pstm_obs.Recorder.opstats obs in
  let memo = Memo.create () in
  let prng = Prng.create 1 in
  let qid = 0 in
  let rows = ref [] in
  let scan label =
    let out = Vec.create ~dummy:0 in
    (match label with
    | None -> Graph.iter_vertices graph (Vec.push out)
    | Some l -> Graph.iter_vertices_with_label graph l (Vec.push out));
    Vec.to_array out
  in
  let n_phases = Program.n_phases program in
  let queues = Array.init n_phases (fun _ -> Queue.create ()) in
  let push (t : Traverser.t) = Queue.add t queues.(Program.phase_of_step program t.step) in
  (* Sanitizer ledger (check mode): spawns stay inside their phase, so the
     weight seeded into a phase must resurface, exactly, as finished and
     row weights by the time the phase drains (Theorem 1, locally). *)
  let seeded = Array.make n_phases Weight.zero in
  let drained = Array.make n_phases Weight.zero in
  let seed (t : Traverser.t) =
    let p = Program.phase_of_step program t.step in
    seeded.(p) <- Weight.add seeded.(p) t.Traverser.weight;
    Pstm_obs.Opstats.seed opstats 1;
    push t
  in
  (* Seed the entry sources with one root traverser each. *)
  Array.iter
    (fun e ->
      seed
        (Traverser.make ~vertex:0 ~step:e ~weight:Weight.root
           ~n_registers:(Program.n_registers program)))
    (Program.entries program);
  for phase = 0 to n_phases - 1 do
    let queue = queues.(phase) in
    while not (Queue.is_empty queue) do
      let t = Queue.pop queue in
      let outcome = Exec.exec ~graph ~memo ~prng ~qid ~program ~scan t in
      if obs_on then
        Pstm_obs.Opstats.record opstats ~step:t.Traverser.step
          ~out:(List.length outcome.Exec.spawns)
          ~rows:(List.length outcome.Exec.rows)
          ~finished:(not (Weight.is_zero outcome.Exec.finished))
          ~edges:outcome.Exec.edges_scanned ~memo_hits:outcome.Exec.memo_hits
          ~memo_misses:outcome.Exec.memo_misses ~busy_ns:0;
      if check then begin
        if not (Exec.conserves t outcome) then
          Engine.check_fail "local: step %d (%s) broke weight conservation" t.Traverser.step
            (Step.op_name (Program.step program t.Traverser.step).Step.op);
        drained.(phase) <-
          List.fold_left
            (fun acc (_, w) -> Weight.add acc w)
            (Weight.add drained.(phase) outcome.Exec.finished)
            outcome.Exec.rows
      end;
      List.iter push outcome.Exec.spawns;
      List.iter (fun (row, _w) -> rows := row :: !rows) outcome.Exec.rows
    done;
    if check && not (Weight.equal seeded.(phase) drained.(phase)) then
      Engine.check_fail "local: phase %d weight ledger broken: seeded %a, drained %a" phase
        Weight.pp seeded.(phase) Weight.pp drained.(phase);
    match Program.agg_of_phase program phase with
    | None -> ()
    | Some agg_step ->
      let step = Program.step program agg_step in
      let agg, reg =
        match step.Step.op with
        | Step.Aggregate { agg; reg } -> (agg, reg)
        | _ -> assert false
      in
      let partial =
        match Memo.partial_opt memo ~qid ~label:agg_step with
        | Some p -> p
        | None -> Aggregate.create agg (* no input traversers: empty aggregate *)
      in
      let value = Aggregate.finalize partial in
      let cont =
        Traverser.set_reg
          (Traverser.make ~vertex:0 ~step:step.Step.next ~weight:Weight.root
             ~n_registers:(Program.n_registers program))
          reg value
      in
      seed cont
  done;
  List.rev !rows
