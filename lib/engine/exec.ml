(* Single-step interpreter shared by all engines.

   [exec] runs one traverser through one step, mutating only the supplied
   partition memo, and returns what happened: children to route, result
   rows, and the weight that terminated here. Engines differ in *where*
   and *when* they call this — the async engine routes children through
   the simulated cluster, the BSP engine between supersteps, the local
   reference engine on a plain queue — but the semantics (and hence the
   query answers) are defined once, here.

   Weight conservation invariant (property-tested in the suite):

     t.weight = sum of spawned weights + sum of row weights + finished. *)

type outcome = {
  spawns : Traverser.t list;
  rows : (Value.t array * Weight.t) list;
  finished : Weight.t;
  edges_scanned : int;
  prop_reads : int;
  memo_ops : int;
  memo_hits : int;
  memo_misses : int;
}

let no_effect =
  {
    spawns = [];
    rows = [];
    finished = Weight.zero;
    edges_scanned = 0;
    prop_reads = 0;
    memo_ops = 0;
    memo_hits = 0;
    memo_misses = 0;
  }

(* Split [weight] over [children] (traversers built without weights). *)
let distribute prng weight children k =
  match children with
  | [] -> { no_effect with finished = weight }
  | [ child ] -> k [ Traverser.with_weight child weight ]
  | _ ->
    let n = List.length children in
    let shares = Weight.split prng weight ~n in
    k (List.mapi (fun i child -> Traverser.with_weight child shares.(i)) children)

let exec ~graph ~memo ~prng ~qid ~program ~scan (t : Traverser.t) =
  let step = Program.step program t.step in
  let eval e = Step.eval_expr graph ~vertex:t.vertex ~regs:t.regs e in
  match step.Step.op with
  | Step.Index_lookup { vertex_label; key; value } ->
    let vertices = Graph.index_lookup graph ?vertex_label ~key value in
    let children =
      Array.to_list
        (Array.map (fun v -> Traverser.move t ~vertex:v ~step:step.next ~weight:Weight.zero) vertices)
    in
    let hit = if Array.length vertices > 0 then 1 else 0 in
    distribute prng t.weight children (fun spawns ->
        { no_effect with spawns; memo_ops = 1; prop_reads = 1; memo_hits = hit; memo_misses = 1 - hit })
  | Step.Scan { vertex_label } ->
    let vertices = scan vertex_label in
    let children =
      Array.to_list
        (Array.map (fun v -> Traverser.move t ~vertex:v ~step:step.next ~weight:Weight.zero) vertices)
    in
    distribute prng t.weight children (fun spawns ->
        { no_effect with spawns; edges_scanned = Array.length vertices })
  | Step.Expand { dir; edge_label } ->
    let children = ref [] in
    Graph.iter_adjacent graph ~dir ?label:edge_label t.vertex
      (fun ~target ~edge_id:_ ~label:_ ->
        children := Traverser.move t ~vertex:target ~step:step.next ~weight:Weight.zero :: !children);
    let scanned = Graph.degree graph ~dir t.vertex in
    distribute prng t.weight (List.rev !children) (fun spawns ->
        { no_effect with spawns; edges_scanned = scanned })
  | Step.Filter pred ->
    let reads = Step.pred_prop_reads pred in
    if Step.eval_pred graph ~vertex:t.vertex ~regs:t.regs pred then
      { no_effect with spawns = [ Traverser.at_step t step.next ]; prop_reads = reads }
    else { no_effect with finished = t.weight; prop_reads = reads }
  | Step.Set_reg { reg; expr } ->
    let t' = Traverser.set_reg t reg (eval expr) in
    {
      no_effect with
      spawns = [ Traverser.at_step t' step.next ];
      prop_reads = Step.expr_prop_reads expr;
    }
  | Step.Move_to { reg } ->
    let target = Value.vertex_exn t.regs.(reg) in
    { no_effect with spawns = [ Traverser.move t ~vertex:target ~step:step.next ~weight:t.weight ] }
  | Step.Dedup { by } ->
    let key = eval by in
    let fresh = Memo.add_if_absent memo ~qid ~label:t.step key in
    let reads = Step.expr_prop_reads by in
    if fresh then
      {
        no_effect with
        spawns = [ Traverser.at_step t step.next ];
        prop_reads = reads;
        memo_ops = 1;
        memo_misses = 1;
      }
    else { no_effect with finished = t.weight; prop_reads = reads; memo_ops = 1; memo_hits = 1 }
  | Step.Visit { dist_reg; max_hops; cont; emit_improved } ->
    let d = Value.to_int_exn t.regs.(dist_reg) in
    let loop_child () =
      Traverser.at_step (Traverser.set_reg t dist_reg (Value.Int (d + 1))) step.next
    in
    let outcome = Memo.min_int_update memo ~qid ~label:t.step (Value.Vertex t.vertex) d in
    let children =
      match outcome with
      | Memo.First_visit ->
        let cont_child = Traverser.at_step t cont in
        if d < max_hops then [ cont_child; loop_child () ] else [ cont_child ]
      | Memo.Improved ->
        (* Under asynchronous order a vertex can be first reached through a
           longer path; when the continuation aggregates distances (min /
           max), improvements must re-emit or the result would be stale.
           Set-semantics continuations keep the exactly-once emission. *)
        let base = if d < max_hops then [ loop_child () ] else [] in
        if emit_improved then Traverser.at_step t cont :: base else base
      | Memo.Not_improved -> []
    in
    let hit = match outcome with Memo.First_visit -> 0 | Memo.Improved | Memo.Not_improved -> 1 in
    distribute prng t.weight children (fun spawns ->
        { no_effect with spawns; memo_ops = 1; memo_hits = hit; memo_misses = 1 - hit })
  | Step.Join { key; store; load_regs; cont; _ } ->
    let key_value = eval key in
    let payload = Array.map eval store in
    let partner = Program.join_partner program t.step in
    Memo.rows_add memo ~qid ~label:t.step key_value payload;
    let matches = Memo.rows_get memo ~qid ~label:partner key_value in
    let children =
      List.map
        (fun row ->
          let pairs = List.mapi (fun i reg -> (reg, row.(i))) (Array.to_list load_regs) in
          Traverser.at_step (Traverser.set_regs t pairs) cont)
        matches
    in
    let reads = Step.expr_prop_reads key + Array.fold_left (fun a e -> a + Step.expr_prop_reads e) 0 store in
    let n_matches = List.length matches in
    distribute prng t.weight children (fun spawns ->
        {
          no_effect with
          spawns;
          prop_reads = reads;
          memo_ops = 2;
          memo_hits = n_matches;
          memo_misses = (if n_matches = 0 then 1 else 0);
        })
  | Step.Aggregate { agg; reg = _ } ->
    let partial = Memo.partial memo ~qid ~label:t.step agg in
    Aggregate.accumulate agg partial graph ~vertex:t.vertex ~regs:t.regs;
    {
      no_effect with
      finished = t.weight;
      prop_reads = Step.agg_prop_reads agg;
      memo_ops = 1;
    }
  | Step.Emit exprs ->
    let row = Array.map eval exprs in
    {
      no_effect with
      rows = [ (row, t.weight) ];
      prop_reads = Array.fold_left (fun a e -> a + Step.expr_prop_reads e) 0 exprs;
    }

(* The header's conservation identity as a runtime predicate, for the
   engines' sanitizer (check) mode. *)
let conserves (t : Traverser.t) outcome =
  let total =
    List.fold_left
      (fun acc (c : Traverser.t) -> Weight.add acc c.Traverser.weight)
      outcome.finished outcome.spawns
  in
  let total = List.fold_left (fun acc (_, w) -> Weight.add acc w) total outcome.rows in
  Weight.equal total t.Traverser.weight

(* CPU time of one [exec] outcome under a cluster cost table. *)
let cost (costs : Cluster.costs) outcome =
  let open Sim_time in
  add costs.Cluster.step_dispatch
    (add
       (outcome.edges_scanned * costs.Cluster.per_edge)
       (add
          (outcome.prop_reads * costs.Cluster.per_property)
          (outcome.memo_ops * costs.Cluster.memo_op)))
