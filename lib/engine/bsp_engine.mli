(** Bulk-synchronous-parallel engine: the TigerGraph-role baseline and the
    Figure 8 "BSP execution" ablation. Same programs, same step semantics,
    synchronous orchestration with global barriers. *)

type profile =
  | Ablation (** GraphDance costs under synchronous orchestration *)
  | Tigergraph_role (** interpreted commercial-baseline stand-in *)

val profile_name : profile -> string

(** [common.check] enables the runtime sanitizer (per-exec weight
    conservation; termination and memo emptiness when no deadline
    applies); violations raise {!Engine.Check_violation}. [common.obs]
    attaches a query-scoped recorder (per-worker compute and
    superstep/barrier spans, per-query instants, frontier-depth flight
    series, per-step operator stats). Of [common.faults], only the
    schedule-driven faults apply: stragglers stretch a node's compute
    and pauses stall the barrier; the bulk exchange is closed-form, so
    the per-packet drop/duplicate/delay verdicts have no effect. *)
val run :
  ?profile:profile ->
  ?common:Engine.Common.t ->
  cluster_config:Cluster.config ->
  graph:Graph.t ->
  Engine.submission array ->
  Engine.report

(** Open a service session (see {!Engine.service_handle}). The BSP
    engine has no event queue, so caller events — submissions landing
    mid-run, cancellations, [sh_at] timers — take effect at barrier
    granularity: the first barrier whose clock passes the event time.
    [run] is [create] + submit-all + drive + finish. *)
val create :
  ?profile:profile ->
  ?common:Engine.Common.t ->
  cluster_config:Cluster.config ->
  graph:Graph.t ->
  unit ->
  Engine.service_handle

val start :
  ?profile:profile ->
  ?common:Engine.Common.t ->
  cluster_config:Cluster.config ->
  graph:Graph.t ->
  unit ->
  Engine.service_handle
