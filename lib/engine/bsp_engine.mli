(** Bulk-synchronous-parallel engine: the TigerGraph-role baseline and the
    Figure 8 "BSP execution" ablation. Same programs, same step semantics,
    synchronous orchestration with global barriers. *)

type profile =
  | Ablation (** GraphDance costs under synchronous orchestration *)
  | Tigergraph_role (** interpreted commercial-baseline stand-in *)

val profile_name : profile -> string

(** [check] enables the runtime sanitizer (per-exec weight conservation;
    termination and memo emptiness when no deadline applies); violations
    raise {!Engine.Check_violation}. [obs] attaches a query-scoped
    recorder (per-worker compute and superstep/barrier spans, per-query
    instants, frontier-depth flight series, per-step operator stats). *)
val run :
  ?profile:profile ->
  ?obs:Pstm_obs.Recorder.t ->
  ?check:bool ->
  ?deadline:Sim_time.t ->
  cluster_config:Cluster.config ->
  graph:Graph.t ->
  Engine.submission array ->
  Engine.report
