(** Single-node engine (the GraphScope role): the async runtime on one
    node with a hand-optimized-plugin cost discount and a per-node memory
    capacity that triggers swapping when the graph no longer fits. *)

val run :
  ?common:Engine.Common.t ->
  ?memory_capacity:int ->
  workers:int ->
  base_config:Cluster.config ->
  graph:Graph.t ->
  Engine.submission array ->
  Engine.report

(** Open a service session (see {!Engine.service_handle}); the async
    handle with the single-node topology and cost discount applied. *)
val start :
  ?common:Engine.Common.t ->
  ?memory_capacity:int ->
  workers:int ->
  base_config:Cluster.config ->
  graph:Graph.t ->
  unit ->
  Engine.service_handle
