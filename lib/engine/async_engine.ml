(* The asynchronous PSTM runtime — GraphDance's execution engine (§IV).

   One single-threaded worker per graph partition, each with its own memo
   and weight coalescer. Traversers route to the worker that owns their
   next step's partition key (the h_psi of §III-A), execute there through
   the shared step interpreter, and spawn children asynchronously — no
   global barriers. Termination per phase is detected by the weight
   tracker on the query's coordinator worker; aggregation phases combine
   per-partition partials on demand (§III-C).

   The same runtime also hosts the paper's comparison systems, exactly the
   way the paper itself implemented Banyan "on GraphDance's codebase":

   - [Banyan_like]: per-operator instantiation in every worker, charged as
     a scheduling overhead per quantum proportional to the number of live
     operators (the cause of its limited scaling in Fig. 9), with no
     per-traverser progress cost.
   - [Gaia_like]: the same dataflow overhead plus centralized execution of
     the stateful operators (dedup / join / aggregation run on worker 0),
     GAIA's scalability ceiling in Fig. 9.
   - [shared_state]: the non-partitioned graph model of Fig. 8 — memos are
     shared per node, so every access pays a latch whose cost grows with
     the number of contending workers, and data access loses locality.
   - [weight_coalescing = false]: the Fig. 10/11 ablation — every finished
     weight becomes its own message to the tracker. *)

module Protocol = Pstm_analysis.Protocol

type flavor =
  | Graphdance
  | Banyan_like
  | Gaia_like

let flavor_name = function
  | Graphdance -> "graphdance"
  | Banyan_like -> "banyan-like"
  | Gaia_like -> "gaia-like"

(* Online repartitioning knobs, consulted when [partition = Adaptive].
   Rounds trigger lazily off the remote-dispatch path: once at least
   [min_traffic] remote hops have been profiled since the last round and
   [refine_interval] has elapsed, the directory refines the owner table
   and the moved vertices migrate (memo entries ride the channel as
   costed messages; see the migration payloads below). *)
type adaptive_options = {
  refine_interval : Sim_time.t; (* min sim-time between refinement rounds *)
  min_traffic : int; (* profiled remote hops before a round may trigger *)
  max_imbalance : float; (* per-partition size cap, max over mean *)
  max_heat_imbalance : float; (* per-partition profiled-traffic cap *)
  max_moves : int; (* vertex moves per refinement round *)
}

(* A round needs a substantial fresh profile before it may fire:
   refining on a few hundred early observations chases noise — thousands
   of vertices migrate toward a local optimum of a sample that does not
   resemble the workload, and the next round drags them back. *)
let default_adaptive =
  {
    refine_interval = Sim_time.us 50;
    min_traffic = 4096;
    max_imbalance = 1.1;
    max_heat_imbalance = 1.5;
    max_moves = 1024;
  }

type options = {
  flavor : flavor;
  weight_coalescing : bool;
  shared_state : bool;
  quantum : int; (* tasks per worker scheduling quantum *)
  memory_capacity : int option; (* per-node memory, for the single-node study *)
  swap_penalty : int; (* data-access multiplier when the graph exceeds memory *)
  partition : Partition.strategy; (* the H of the partitioned graph model *)
  adaptive : adaptive_options; (* online repartitioning (Adaptive only) *)
  initial_assignment : int array option; (* warm-start owner table (Adaptive only) *)
  tracker_fanout : int option;
      (* hierarchical progress tracking: workers form a [fanout]-ary
         delegate tree rooted at each query's coordinator, and coalesced
         weights climb the tree one merged message per hop instead of
         all landing on the coordinator. [None] (the default) keeps the
         paper's flat design. *)
  delegate_hold : Sim_time.t;
      (* hierarchical tracking only: how long a delegate accumulates
         subtree weight before shipping it one hop up. The hold window is
         what makes the tree pay off — without it every flush epoch
         forwards immediately and each weight just takes depth hops
         instead of one. Termination detection lags by at most
         depth x hold per phase. *)
}

let default_options =
  {
    flavor = Graphdance;
    weight_coalescing = true;
    shared_state = false;
    quantum = 64;
    memory_capacity = None;
    swap_penalty = 40;
    partition = Partition.Hash;
    adaptive = default_adaptive;
    initial_assignment = None;
    tracker_fanout = None;
    delegate_hold = Sim_time.us 16;
  }

(* Every payload that can sit on a query's causal chain carries a causal
   context [cz]: the id of the {!Pstm_obs.Causal} DAG node that produced
   it (-1 when causal tracing is off). The field is mutable because
   delivery rewrites it to the arrival node, so the consumer's edge
   covers only the queue wait, not the network hop again. [cz] is pure
   metadata: [payload_bytes] ignores it, so the simulated byte counts
   and costs are untouched whether tracing is on or off. *)
type payload =
  | P_trav of { qid : int; trav : Traverser.t; mutable cz : int }
  | P_trav_batch of { qid : int; travs : Traverser.t list; mutable cz : int }
    (* Frontier batching ([Engine.Common.batched]): one coalesced message
       per (destination, step) group instead of one packet per traverser.
       Each traverser still carries its own step and weight, so reliable
       delivery (ack / retransmit / dedup) treats the batch like any
       other payload and conservation is untouched. *)
  | P_progress of { qid : int; phase : int; weight : Weight.t; mutable cz : int }
  | P_progress_up of { qid : int; phase : int; weight : Weight.t; mutable cz : int }
    (* Hierarchical tracking: a subtree's merged finished weight climbing
       one hop toward the root tracker. Same wire shape as [P_progress];
       the distinct constructor routes it through the delegate tier
       instead of straight into the tracker. *)
  | P_delegate_flush
    (* Hierarchical tracking: the hold-window timer. A worker self-posts
       this when its delegate first absorbs weight; processing it drains
       the delegate one hop up the tree. Never crosses the channel. *)
  | P_agg_flush of { qid : int; agg_step : int; mutable cz : int }
  | P_agg_partial of { qid : int; agg_step : int; partial : Aggregate.t option; mutable cz : int }
  | P_cleanup of { qid : int }
  | P_setup of { qid : int; mutable cz : int } (* dataflow flavors: instantiate operators *)
  | P_setup_ack of { qid : int; mutable cz : int }
  (* Vertex migration (adaptive repartitioning). The order goes to the
     old owner, which extracts the vertex's memo entries and ships them
     to the new owner as one costed data message. *)
  | P_migrate of { vertex : int; dst : int; mutable cz : int }
  | P_migrate_data of { vertex : int; entries : (int * int * Memo.entry) list; mutable cz : int }

let payload_bytes = function
  | P_trav { trav; _ } -> 8 + Traverser.bytes trav
  | P_trav_batch { travs; _ } ->
    (* One header amortized over the batch; elements pay only their own
       serialized size, not a per-message frame. *)
    List.fold_left (fun acc t -> acc + Traverser.bytes t) 16 travs
  | P_progress _ | P_progress_up _ -> 8 + Weight.bytes + 8
  | P_delegate_flush -> 0 (* local self-task, never serialized *)
  | P_agg_flush _ -> 16
  | P_agg_partial { partial; _ } ->
    16 + (match partial with None -> 0 | Some p -> Aggregate.bytes p)
  | P_cleanup _ -> 8
  | P_setup _ | P_setup_ack _ -> 16
  | P_migrate _ -> 16
  | P_migrate_data { entries; _ } ->
    List.fold_left (fun acc (_, _, e) -> acc + 16 + Memo.entry_bytes e) 16 entries

type query_state = {
  qid : int;
  program : Program.t;
  coordinator : int;
  tenant : int;
  priority : int;
  submitted : Sim_time.t;
  mutable outcome : Engine.outcome option; (* None while still live *)
  mutable launched : bool; (* the submit event ran (trackers registered) *)
  trackers : Progress.tracker array; (* one per phase *)
  touched : Bitset.t; (* workers that executed a traverser (first-touch) *)
  fl_weight : Pstm_obs.Flight.handle array; (* per-phase weight trajectory *)
  mutable combine_step : int; (* aggregate step being combined, or -1 *)
  mutable combine_expected : int;
  mutable combine_received : int;
  mutable combine_acc : Aggregate.t option;
  rows : Value.t array Vec.t;
  mutable active : bool;
  mutable setup_acks : int; (* dataflow deployment acks outstanding *)
}

type worker = {
  id : int;
  memo : Memo.t; (* private, or node-shared under [shared_state] *)
  tasks : payload Queue.t;
  coalescer : Progress.coalescer;
  delegate : Progress.delegate; (* subtree merge tier (hierarchical tracking) *)
  prng : Prng.t;
  mutable busy_until : Sim_time.t;
  mutable busy_total : Sim_time.t; (* accumulated CPU time *)
  mutable awake : bool; (* a quantum event is scheduled *)
  members : int array Lazy.t; (* owned vertices, for Scan sources *)
  scratch : Batch_exec.scratch Lazy.t; (* batched-mode bitset verdict memo *)
  (* Causal worker chain: the last execution node on this worker and its
     query, valid only while the worker has been continuously busy since
     (invalidated at every idle gap). When the chain is live and owned by
     the same query, the next execution's binding cause is the previous
     execution — worker occupancy — rather than its own queue wait. *)
  mutable cz_last : int;
  mutable cz_last_qid : int;
  (* Per-(qid, phase) causal node of the last execution that contributed
     finished weight to the coalescer since its last drain; the flushed
     progress message inherits it, so coalescer dwell is attributable. *)
  cz_coalesce : (int * int, int) Hashtbl.t;
  (* Same discipline for the delegate tier: the causal node of the last
     subtree merge per (qid, phase), inherited by the upward message. *)
  cz_delegate : (int * int, int) Hashtbl.t;
  (* A hold-window flush is pending ([P_delegate_flush] scheduled);
     absorbing into a non-empty window must not arm a second timer. *)
  mutable delegate_armed : bool;
}

(* Build an open engine session ({!Engine.service_handle}): all state is
   captured in the returned closures, so [run] below is a thin
   submit-all/drive/finish wrapper and the service layer can drive the
   same machinery with feedback (incremental submission, scoped
   cancellation) instead of a closed submission array. *)
let create ?(options = default_options) ?(common = Engine.Common.default) ~cluster_config
    ~channel_config ~graph () =
  let obs = common.Engine.Common.obs in
  let check = common.Engine.Common.check in
  let deadline = common.Engine.Common.deadline in
  (* Frontier batching is opt-in; everything it touches is gated on this
     flag so the unbatched path stays byte-identical. *)
  let batched = common.Engine.Common.batched in
  let mutation = common.Engine.Common.mutation in
  let cluster = Cluster.create cluster_config in
  (* Fault plane (if any) attaches before the channel is created, so the
     channel sees it and switches to reliable delivery. *)
  let faults = Option.map Faults.create common.Engine.Common.faults in
  Cluster.set_faults cluster faults;
  Cluster.set_mutation cluster mutation;
  let events = Cluster.events cluster in
  (* Schedule exploration: an installed chooser permutes same-timestamp
     ties; [None] (the default) keeps canonical insertion order. *)
  Event_queue.set_chooser events common.Engine.Common.chooser;
  let metrics = Cluster.metrics cluster in
  let costs = Cluster.costs cluster in
  let n_workers = Cluster.n_workers cluster in
  (* Straggler injection: scale a worker's CPU costs by its node's factor.
     Pause injection: defer a worker's quanta past the window's end. Both
     are identity when no fault plane is attached. *)
  let fault_scale w cost =
    match faults with
    | None -> cost
    | Some f -> Faults.scale f ~node:(Cluster.node_of_worker cluster w) cost
  in
  let fault_release w time =
    match faults with
    | None -> time
    | Some f -> Faults.release f ~node:(Cluster.node_of_worker cluster w) ~at:time
  in
  (* Protocol conformance monitors: compiled from the declarative state
     machines in [Pstm_analysis.Protocol] and fed from the channel's
     protocol hook (reliable delivery), the migration path and the
     tracker lifecycle. They exist only under [check]; otherwise every
     hook stays [None] and the production path is untouched. *)
  let mon_channel, mon_migration, mon_tracker =
    if check then
      ( Some (Protocol.monitor (Lazy.force Protocol.channel)),
        Some (Protocol.monitor (Lazy.force Protocol.migration)),
        Some (Protocol.monitor (Lazy.force Protocol.tracker)) )
    else (None, None, None)
  in
  (match mon_channel with
  | None -> ()
  | Some mon ->
    let compiled = Lazy.force Protocol.channel in
    let m_send = Protocol.msg compiled "send" in
    let m_retransmit = Protocol.msg compiled "retransmit" in
    let m_deliver = Protocol.msg compiled "deliver" in
    let m_dup = Protocol.msg compiled "dup" in
    let m_ack = Protocol.msg compiled "ack" in
    let m_abandon = Protocol.msg compiled "abandon" in
    let n_nodes = Cluster.n_nodes cluster in
    Cluster.set_protocol_hook cluster
      (Some
         (fun ev ->
           let msg =
             match ev.Cluster.pkt_ev with
             | Cluster.Pkt_send -> m_send
             | Cluster.Pkt_retransmit -> m_retransmit
             | Cluster.Pkt_deliver -> m_deliver
             | Cluster.Pkt_dup -> m_dup
             | Cluster.Pkt_ack -> m_ack
             | Cluster.Pkt_abandon -> m_abandon
           in
           (* One instance per (link, seq); per-link sequence numbers stay
              far below 2^24 in any run we simulate. *)
           let key =
             (((ev.Cluster.ev_src * n_nodes) + ev.Cluster.ev_dst) lsl 24)
             lor (ev.Cluster.ev_seq land 0xFFFFFF)
           in
           match Protocol.step mon ~key ~msg with
           | None -> ()
           | Some why ->
             Engine.check_fail "async: link %d->%d seq %d: %s" ev.Cluster.ev_src
               ev.Cluster.ev_dst ev.Cluster.ev_seq why)));
  let mig_event name vertex =
    match mon_migration with
    | None -> ()
    | Some mon -> begin
      match
        Protocol.step mon ~key:vertex ~msg:(Protocol.msg (Lazy.force Protocol.migration) name)
      with
      | None -> ()
      | Some why -> Engine.check_fail "async: migration of vertex %d: %s" vertex why
    end
  in
  let tracker_event name ~qid ~phase =
    match mon_tracker with
    | None -> ()
    | Some mon -> begin
      match
        Protocol.step mon
          ~key:((qid * 1024) + phase)
          ~msg:(Protocol.msg (Lazy.force Protocol.tracker) name)
      with
      | None -> ()
      | Some why -> Engine.check_fail "async: tracker of query %d phase %d: %s" qid phase why
    end
  in
  (* Observability: every emission site is guarded by [obs_on] (or the
     recorder's own enabled flag), so the disabled path costs one branch. *)
  let obs_on = Pstm_obs.Recorder.enabled obs in
  let trace = Pstm_obs.Recorder.trace obs in
  let flight = Pstm_obs.Recorder.flight obs in
  let opstats = Pstm_obs.Recorder.opstats obs in
  (* Causal tracing (EXPLAIN LATENCY): every hand-off registers a DAG
     node; the producing context rides the payload's [cz] field. All
     sites are guarded by [cz_on], so the default path pays nothing. *)
  let causal = Pstm_obs.Recorder.causal obs in
  let cz_on = Pstm_obs.Causal.enabled causal in
  let inflight = ref 0 in
  (* dispatched but not yet executed traversers *)
  (* Service callback: fired once per query at its terminal transition
     (completion, per-query timeout, or scoped cancellation). *)
  let on_terminal : (int -> Engine.outcome -> unit) ref = ref (fun _ _ -> ()) in
  if obs_on then
    Cluster.set_packet_hook cluster
      (Some
         (fun (p : Cluster.packet_info) ->
           (* Span covers NIC serialization only (packets on one NIC are
              disjoint by construction); arrival is carried as an arg. *)
           let occupancy_end =
             Sim_time.diff p.Cluster.arrival (Cluster.net cluster).Netmodel.wire_latency
           in
           Pstm_obs.Trace.span trace ~cat:"net"
             ~tid:(Engine.nic_track p.Cluster.src_node)
             ~name:"packet" ~ts:p.Cluster.nic_start
             ~dur:(Sim_time.diff occupancy_end p.Cluster.nic_start)
             ~args:
               [
                 ("dst_node", Pstm_obs.Trace.I p.Cluster.dst_node);
                 ("bytes", Pstm_obs.Trace.I p.Cluster.bytes);
                 ("arrival_ns", Pstm_obs.Trace.I (Sim_time.to_ns p.Cluster.arrival));
               ]
             ()));
  let workers_per_node = cluster_config.Cluster.workers_per_node in
  let adaptive_on = options.partition = Partition.Adaptive in
  let partition =
    Partition.create ~strategy:options.partition ?assignment:options.initial_assignment
      ~n_parts:n_workers ~n_vertices:(Graph.n_vertices graph) ()
  in
  let seed_prng = Prng.create common.Engine.Common.seed in
  (* Node-shared memos for the non-partitioned ablation. *)
  let node_memos = Array.init (Cluster.n_nodes cluster) (fun _ -> Memo.create ()) in
  let workers =
    Array.init n_workers (fun id ->
        {
          id;
          memo =
            (if options.shared_state then node_memos.(Cluster.node_of_worker cluster id)
             else Memo.create ());
          tasks = Queue.create ();
          coalescer = Progress.coalescer ();
          delegate = Progress.delegate ();
          prng = Prng.split seed_prng;
          busy_until = Sim_time.zero;
          busy_total = Sim_time.zero;
          awake = false;
          cz_last = -1;
          cz_last_qid = -1;
          cz_coalesce = Hashtbl.create 4;
          cz_delegate = Hashtbl.create 4;
          delegate_armed = false;
          members =
            (* Under adaptive repartitioning the owner table mutates at
               runtime; Scan sources partition the vertex set by the
               launch-time assignment, so membership is frozen eagerly
               (each vertex scanned exactly once no matter what moves). *)
            (if adaptive_on then Lazy.from_val (Partition.members partition id)
             else lazy (Partition.members partition id));
          scratch = lazy (Batch_exec.scratch ~graph);
        })
  in
  (* Flight-recorder series handles, resolved once (lookup is linear). *)
  let fl_queue =
    Array.init n_workers (fun i -> Pstm_obs.Flight.series flight (Printf.sprintf "worker%d.queue" i))
  in
  let fl_memo =
    Array.init n_workers (fun i -> Pstm_obs.Flight.series flight (Printf.sprintf "worker%d.memo" i))
  in
  let fl_inflight = Pstm_obs.Flight.series flight "inflight" in
  let queries : (int, query_state) Hashtbl.t = Hashtbl.create 64 in
  let query qid =
    match Hashtbl.find_opt queries qid with
    | Some q -> q
    | None -> invalid_arg (Fmt.str "Async_engine: unknown query %d" qid)
  in
  (* Total live operator instances; the dataflow flavors pay a scheduling
     tax proportional to this every quantum. *)
  let active_op_count = ref 0 in
  (* Queries concurrently resident (launched, not yet completed): the
     contention axis of the non-partitioned ablation's latch model. *)
  let n_active = ref 0 in
  (* --- Adaptive repartitioning state ----------------------------------- *)
  (* Two traffic sinks: the observability recorder's (export only, on
     whenever tracing is) and the engine's own profile feeding online
     refinement (on only under Adaptive). Both count remote dispatches
     keyed by the (parent vertex, routing vertex) pair. *)
  let obs_traffic = Pstm_obs.Recorder.traffic obs in
  let traffic_on = Pstm_obs.Traffic.enabled obs_traffic in
  let profile =
    if adaptive_on then Pstm_obs.Traffic.create () else Pstm_obs.Traffic.disabled
  in
  (* Vertices whose memo entries are in flight to their new owner; the
     stash parks traversers that arrive at the new owner early. *)
  let migrating : (int, payload list ref) Hashtbl.t = Hashtbl.create 64 in
  (* Each vertex migrates at most once per run: successive rounds refine
     against an evolving profile, and letting them re-home the same
     vertices chases every intermediate local optimum — the migration
     and forwarding churn costs more than the cut it recovers. *)
  let migrated_ever : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let next_round = ref Sim_time.zero in
  let profiled_at_round = ref 0 in
  (* The vertex whose owner the dispatch target is, if any: By_vertex
     routes by the traverser's vertex, By_key by the key's vertex when
     the key is one. Coordinator-routed and hash-routed steps (and
     Gaia's centralized stateful ops) have none. *)
  let routed_vertex q (trav : Traverser.t) =
    let step = Program.step q.program trav.step in
    let centralized =
      match (options.flavor, step.Step.op) with
      | Gaia_like, (Step.Dedup _ | Step.Visit _ | Step.Join _ | Step.Aggregate _) -> true
      | _ -> false
    in
    if centralized then None
    else begin
      match Step.routing step.Step.op with
      | Step.By_coordinator -> None
      | Step.By_vertex -> Some trav.Traverser.vertex
      | Step.By_key e -> begin
        match
          Step.eval_expr graph ~vertex:trav.Traverser.vertex ~regs:trav.Traverser.regs e
        with
        | Value.Vertex v -> Some v
        | _ -> None
      end
    end
  in
  (* The vertex whose memo entries this traverser's step reads or
     writes, if any. Only Dedup / Visit / Join key memo records by a
     value — when that value is a vertex, migration re-homes the
     records, so stale arrivals must chase the new owner and early
     arrivals must wait for the entries. Stateless steps (Expand,
     Filter, ...) execute wherever they land; a stale arrival there is
     only a locality miss, never a correctness hazard. *)
  let stateful_key_vertex q (trav : Traverser.t) =
    if options.flavor = Gaia_like then None
    else begin
      match (Program.step q.program trav.Traverser.step).Step.op with
      | Step.Visit _ -> Some trav.Traverser.vertex
      | Step.Dedup { by } | Step.Join { key = by; _ } -> begin
        match
          Step.eval_expr graph ~vertex:trav.Traverser.vertex ~regs:trav.Traverser.regs by
        with
        | Value.Vertex v -> Some v
        | _ -> None
      end
      | _ -> None
    end
  in
  (* --- Cost model ----------------------------------------------------- *)
  let swapping =
    match options.memory_capacity with
    | Some capacity -> Graph.bytes graph > capacity * Cluster.n_nodes cluster
    | None -> false
  in
  (* Under the non-partitioned model every step touches node-shared
     state: the graph storage latch plus query-state synchronization.
     Contention has two axes — the worker fan-in per node (static,
     §V-A2) and the number of queries concurrently resident in the
     shared structures: a latch queue grows with every query whose
     state hangs off it, so the per-acquisition cost scales with live
     concurrency. With one resident query the factor is 1 and the model
     reduces to the uncontended latch. The partitioned model pays none
     of this — each worker owns its data. *)
  (* Latch contention grows with the number of concurrently resident
     queries, but sublinearly: colliding critical sections are short, so
     only a fraction of the other residents is ever queued on the same
     latch. A lone query pays exactly the uncontended cost, keeping
     single-query runs byte-identical to the static model. *)
  let contention () = 1 + (2 * (max 1 !n_active - 1) / 5) in
  let shared_step_penalty () =
    if options.shared_state then
      costs.Cluster.latch * (1 + ((workers_per_node - 1) / 5)) * contention ()
    else Sim_time.zero
  in
  let memo_op_cost () =
    if options.shared_state then
      Sim_time.add costs.Cluster.memo_op (costs.Cluster.latch * contention ())
    else costs.Cluster.memo_op
  in
  let exec_cost (o : Exec.outcome) =
    let data =
      (o.Exec.edges_scanned * costs.Cluster.per_edge)
      + (o.Exec.prop_reads * costs.Cluster.per_property)
    in
    let data = if options.shared_state then data + (data / 2) else data in
    let base =
      costs.Cluster.step_dispatch + shared_step_penalty () + data
      + (o.Exec.memo_ops * memo_op_cost ())
    in
    (* Memory thrashing faults the whole access path, not just the data
       columns (§V-A3: GraphScope on SF1000). *)
    if swapping then base * options.swap_penalty else base
  in
  (* --- Channel and routing -------------------------------------------- *)
  let channel_ref = ref None in
  let channel () = Option.get !channel_ref in
  (* Arrival interception: when a context-carrying payload lands on a
     worker's queue, register an arrival node at the delivery instant and
     rewrite the payload's [cz] to it, so the consumer's edge covers only
     the queue wait from here on. The hop edge is Network, or Retransmit
     when the reliable channel is delivering a retransmitted copy — that
     edge *is* the recovery stall. Same-worker sends bypass this (no hop:
     the consumer binds straight to the producer). *)
  let cz_arrive_payload p =
    let hop =
      match !channel_ref with
      | Some ch when Channel.delivering_retransmitted ch -> Pstm_obs.Causal.Retransmit
      | _ -> Pstm_obs.Causal.Network
    in
    let ts = Cluster.now cluster in
    let arrive ~qid ~name cz =
      if cz < 0 then -1
      else begin
        let a = Pstm_obs.Causal.node causal ~qid ~name ~ts in
        Pstm_obs.Causal.edge causal ~src:cz ~dst:a hop;
        a
      end
    in
    match p with
    | P_trav ({ qid; _ } as r) -> r.cz <- arrive ~qid ~name:"arrive" r.cz
    | P_trav_batch ({ qid; _ } as r) -> r.cz <- arrive ~qid ~name:"arrive-batch" r.cz
    | P_progress ({ qid; _ } as r) -> r.cz <- arrive ~qid ~name:"arrive-progress" r.cz
    | P_progress_up ({ qid; _ } as r) -> r.cz <- arrive ~qid ~name:"arrive-progress-up" r.cz
    | P_agg_flush ({ qid; _ } as r) -> r.cz <- arrive ~qid ~name:"arrive-agg" r.cz
    | P_agg_partial ({ qid; _ } as r) -> r.cz <- arrive ~qid ~name:"arrive-partial" r.cz
    | P_setup ({ qid; _ } as r) -> r.cz <- arrive ~qid ~name:"arrive-setup" r.cz
    | P_setup_ack ({ qid; _ } as r) -> r.cz <- arrive ~qid ~name:"arrive-ack" r.cz
    | P_migrate ({ vertex = _; _ } as r) -> r.cz <- arrive ~qid:(-1) ~name:"arrive-migrate" r.cz
    | P_migrate_data ({ vertex = _; _ } as r) ->
      r.cz <- arrive ~qid:(-1) ~name:"arrive-mdata" r.cz
    | P_cleanup _ | P_delegate_flush -> ()
  in
  (* --- Hierarchical progress tracking ---------------------------------
     Workers form a [fanout]-ary tree per query, laid out heap-style in
     coordinator-relative rank order: worker [w]'s rank is its offset
     from the coordinator modulo [n_workers], rank 0 is the root (the
     coordinator itself, so the root tier stays sharded across workers
     by qid), and rank r's parent is rank (r-1)/fanout.

     Each delegate accumulates its subtree's weight for a hold window
     ([options.delegate_hold]) before shipping one merged message per
     (qid, phase) up the tree. The window is load-bearing: flush epochs
     are much shorter than the hold, so many of them (own coalescer
     drains plus child deliveries) merge into a single upward message —
     without it, every weight would take depth hops instead of one and
     the tree would *add* traffic. The timer is a self-posted
     [P_delegate_flush] task, so a sleeping worker still drains its
     delegate and termination cannot wedge; detection lags by at most
     depth x hold per phase. *)
  let hier_on = options.tracker_fanout <> None in
  let delegate_parent ~coordinator wid =
    match options.tracker_fanout with
    | None -> None
    | Some f ->
      let f = max 1 f in
      let rank = (wid - coordinator + n_workers) mod n_workers in
      if rank = 0 then None else Some ((((rank - 1) / f) + coordinator) mod n_workers)
  in
  let rec wake w =
    if not w.awake then begin
      w.awake <- true;
      let time = max (Cluster.now cluster) w.busy_until in
      let time = fault_release w.id time in
      Event_queue.schedule_at events ~time ~tag:(Cluster.worker_tag cluster w.id) (fun () ->
          quantum w)
    end
  (* ---- Message / task processing ------------------------------------- *)
  and deliver dst payload =
    if cz_on then cz_arrive_payload payload;
    let w = workers.(dst) in
    Queue.add payload w.tasks;
    wake w
  and send ~at ~src ~dst ~kind payload =
    if src = dst then begin
      (* Same worker: a plain queue push, no messaging machinery. The wake
         is a no-op while the worker's own quantum is running, but matters
         when the sender is the submission path or a network-thread
         event acting on the worker's behalf. *)
      Queue.add payload workers.(dst).tasks;
      wake workers.(dst);
      Sim_time.zero
    end
    else
      Channel.send (channel ()) ~at ~src_worker:src ~dst_worker:dst ~kind
        ~bytes:(payload_bytes payload) payload
  (* Route a traverser about to execute [step_idx]. *)
  and route q (trav : Traverser.t) =
    let step = Program.step q.program trav.step in
    let centralized =
      match options.flavor, step.Step.op with
      | Gaia_like, (Step.Dedup _ | Step.Visit _ | Step.Join _ | Step.Aggregate _) -> true
      | _ -> false
    in
    if centralized then 0
    else begin
      match Step.routing step.Step.op with
      | Step.By_coordinator -> q.coordinator
      | Step.By_vertex -> Partition.owner partition trav.vertex
      | Step.By_key e -> begin
        match Step.eval_expr graph ~vertex:trav.vertex ~regs:trav.regs e with
        | Value.Vertex v -> Partition.owner partition v
        | v -> Value.hash v mod n_workers
      end
    end
  and dispatch_trav ~at ~src ?src_vertex ?(cz = -1) q trav =
    if obs_on then incr inflight;
    let dst = route q trav in
    let step = Program.step q.program trav.step in
    let kind =
      match step.Step.op with
      | Step.Emit _ -> Metrics.Result_msg
      | _ -> Metrics.Traverser_msg
    in
    let cost = send ~at ~src ~dst ~kind (P_trav { qid = q.qid; trav; cz }) in
    (* Traffic profiling: every remote dispatch whose target is decided
       by a vertex's owner is an edge of the workload's communication
       graph — the signal the adaptive repartitioner minimizes. *)
    if (traffic_on || adaptive_on) && dst <> src then begin
      match src_vertex with
      | None -> cost
      | Some u -> begin
        match routed_vertex q trav with
        | None -> cost
        | Some v ->
          let bytes = 8 + Traverser.bytes trav in
          Pstm_obs.Traffic.record obs_traffic ~src:u ~dst:v ~bytes;
          Pstm_obs.Traffic.record profile ~src:u ~dst:v ~bytes;
          if adaptive_on then Sim_time.add cost (maybe_adapt ~at ~src ~cz ()) else cost
      end
    end
    else cost
  (* Refinement round, triggered lazily off the remote-dispatch path once
     enough fresh traffic has been profiled and the interval elapsed.
     Refinement itself runs on the partition directory off the critical
     path (uncosted); what is costed is the migration itself — the order
     to each old owner and the memo-entry data message it sends on. The
     owner table flips immediately: traversers already in flight toward
     the old owner get forwarded on arrival, and arrivals at the new
     owner park until the entries land, so no memo state is ever read
     half-moved and Theorem 1's weight conservation is untouched. *)
  and maybe_adapt ~at ~src ?(cz = -1) () =
    let ao = options.adaptive in
    if
      Pstm_obs.Traffic.total_count profile - !profiled_at_round >= ao.min_traffic
      && Sim_time.compare at !next_round >= 0
    then begin
      next_round := Sim_time.add at ao.refine_interval;
      profiled_at_round := Pstm_obs.Traffic.total_count profile;
      let edges =
        Array.map (fun (u, v, _count, bytes) -> (u, v, bytes)) (Pstm_obs.Traffic.edges profile)
      in
      let assignment = Partition.to_assignment partition in
      let moves, _stats =
        Repartition.refine ~max_imbalance:ao.max_imbalance
          ~max_heat_imbalance:ao.max_heat_imbalance ~max_moves:ao.max_moves
          ~n_parts:n_workers ~assignment edges
      in
      let cost = ref Sim_time.zero in
      List.iter
        (fun { Repartition.vertex; src = old_owner; dst = new_owner } ->
          (* A vertex whose previous migration is still in flight stays
             put this round: its entries are not at the "old owner" the
             refiner sees, so a second hop now would lose them. *)
          if not (Hashtbl.mem migrating vertex) && not (Hashtbl.mem migrated_ever vertex)
          then begin
            Hashtbl.add migrated_ever vertex ();
            Partition.set_owner partition vertex new_owner;
            Hashtbl.add migrating vertex (ref []);
            mig_event "order" vertex;
            Metrics.count_migration metrics;
            cost :=
              Sim_time.add !cost
                (send ~at ~src ~dst:old_owner ~kind:Metrics.Control_msg
                   (P_migrate { vertex; dst = new_owner; cz }))
          end)
        moves;
      !cost
    end
    else Sim_time.zero
  (* ---- Progress tracking ---------------------------------------------- *)
  and tracker_receive ~at ?(cz = -1) w q phase weight =
    Metrics.count_tracker_update metrics;
    let cz =
      if not cz_on then -1
      else begin
        let r = Pstm_obs.Causal.node causal ~qid:q.qid ~name:"tracker" ~ts:at in
        Pstm_obs.Causal.edge causal ~src:cz ~dst:r Pstm_obs.Causal.Tracker;
        r
      end
    in
    if not (Weight.is_zero weight) then tracker_event "receive" ~qid:q.qid ~phase;
    if obs_on then begin
      let acc = Weight.add (Progress.accumulated q.trackers.(phase)) weight in
      Pstm_obs.Trace.instant trace ~cat:"progress" ~tid:(Engine.query_track q.qid)
        ~name:"tracker_receive" ~ts:at
        ~args:
          [
            ("phase", Pstm_obs.Trace.I phase);
            ("receipts", Pstm_obs.Trace.I (Progress.receipts q.trackers.(phase) + 1));
            ("accumulated", Pstm_obs.Trace.I (acc :> int));
          ]
        ();
      Pstm_obs.Flight.sample flight q.fl_weight.(phase) ~time:at (float_of_int (acc :> int))
    end;
    (* Sanitizer: the tracker fires exactly when finished weights sum back
       to the root. Weight arriving afterwards means some share was
       counted twice — termination was detected early. *)
    if check && Progress.is_complete q.trackers.(phase) && not (Weight.is_zero weight) then
      Engine.check_fail "async: query %d phase %d received weight %a after completion" q.qid
        phase Weight.pp weight;
    match Progress.receive q.trackers.(phase) weight with
    | Progress.Complete ->
      tracker_event "complete" ~qid:q.qid ~phase;
      Sim_time.add costs.Cluster.progress_add (phase_complete ~at ~cz w q phase)
    | Progress.Pending ->
      if
        mutation = Some Mutation.Early_tracker_release
        && (not (Progress.is_complete q.trackers.(phase)))
        && Progress.receipts q.trackers.(phase) >= 2
      then begin
        (* Mutant: declare the phase done before Theorem 1's conservation
           sum closes. *)
        Progress.force_complete q.trackers.(phase);
        Sim_time.add costs.Cluster.progress_add (phase_complete ~at ~cz w q phase)
      end
      else costs.Cluster.progress_add
  and finish_weight ~at ?(cz = -1) w q phase weight =
    if Weight.is_zero weight then Sim_time.zero
    else begin
      let coalescing = options.weight_coalescing || options.flavor <> Graphdance in
      if coalescing then begin
        Progress.coalesce w.coalescer ~qid:q.qid ~phase weight;
        (* The coalescer merges weights from many executions; the flushed
           message inherits the context of the *last* contributor, which
           is the one the tracker was actually waiting on. *)
        if cz_on then Hashtbl.replace w.cz_coalesce (q.qid, phase) cz;
        (* The "slightly higher per-traverser progress tracking overhead"
           of §V-B: the weight addition plus the local hash merge. The
           dataflow flavors track progress per operator scope instead and
           pay nothing per traverser. *)
        if options.flavor = Graphdance then
          Sim_time.add costs.Cluster.progress_add costs.Cluster.progress_coalesce
        else Sim_time.zero
      end
      else if q.coordinator = w.id then tracker_receive ~at ~cz w q phase weight
      else
        send ~at ~src:w.id ~dst:q.coordinator ~kind:Metrics.Progress_msg
          (P_progress { qid = q.qid; phase; weight; cz })
    end
  (* Start the hold window: the first absorb into an empty window posts
     the flush task [delegate_hold] in the future; later absorbs ride
     the same window. The task is self-queued (not sent), so it costs
     nothing on the wire and wakes the worker if it went to sleep. *)
  and delegate_arm ~at w =
    if not w.delegate_armed then begin
      w.delegate_armed <- true;
      Event_queue.schedule_at events
        ~time:(Sim_time.add at options.delegate_hold)
        ~tag:(Cluster.worker_tag cluster w.id)
        (fun () ->
          w.delegate_armed <- false;
          Queue.add P_delegate_flush w.tasks;
          wake w)
    end
  and flush_progress ~at w =
    let cost = ref Sim_time.zero in
    (* Tier 1: locally coalesced weights. Flat tracking ships them
       straight to the coordinator; hierarchical tracking folds them
       into this worker's delegate accumulator first, so they climb the
       tree merged with whatever its subtree already delivered. *)
    if not (Progress.is_empty w.coalescer) then
      List.iter
        (fun (qid, phase, weight) ->
          match Hashtbl.find_opt queries qid with
          | None -> if cz_on then Hashtbl.remove w.cz_coalesce (qid, phase)
          | Some q when not q.active ->
            (* Cancelled: the weight is reclaimed, not tracked — and its
               parked causal entry goes with it, or the (qid, phase) key
               would outlive the query for the rest of the run. *)
            if cz_on then Hashtbl.remove w.cz_coalesce (qid, phase)
          | Some q ->
            (* Coalescer dwell shows up as a Tracker segment: the flush
               node sits between the last contributing execution and the
               tracker receive (local) or the progress message (remote). *)
            let cz =
              if not cz_on then -1
              else begin
                match Hashtbl.find_opt w.cz_coalesce (qid, phase) with
                | None -> -1
                | Some src ->
                  Hashtbl.remove w.cz_coalesce (qid, phase);
                  let f = Pstm_obs.Causal.node causal ~qid ~name:"progress-flush" ~ts:at in
                  Pstm_obs.Causal.edge causal ~src ~dst:f Pstm_obs.Causal.Tracker;
                  f
              end
            in
            if hier_on then begin
              Metrics.count_delegate_merge metrics;
              Progress.delegate_absorb w.delegate ~qid ~phase weight;
              if cz >= 0 then Hashtbl.replace w.cz_delegate (qid, phase) cz;
              delegate_arm ~at w;
              cost := Sim_time.add !cost costs.Cluster.progress_coalesce
            end
            else if q.coordinator = w.id then
              cost := Sim_time.add !cost (tracker_receive ~at ~cz w q phase weight)
            else
              cost :=
                Sim_time.add !cost
                  (send ~at ~src:w.id ~dst:q.coordinator ~kind:Metrics.Progress_msg
                     (P_progress { qid; phase; weight; cz })))
        (Progress.drain w.coalescer);
    !cost
  (* Tier 2 (hierarchical only), run when the hold-window timer's
     [P_delegate_flush] task fires: merged subtree weights go one hop up
     the delegate tree — into the tracker at the root, or as a single
     [P_progress_up] per (qid, phase) otherwise. *)
  and flush_delegate ~at w =
    let cost = ref Sim_time.zero in
    if hier_on && not (Progress.delegate_is_empty w.delegate) then
      List.iter
        (fun (qid, phase, weight) ->
          match Hashtbl.find_opt queries qid with
          | None -> if cz_on then Hashtbl.remove w.cz_delegate (qid, phase)
          | Some q when not q.active -> if cz_on then Hashtbl.remove w.cz_delegate (qid, phase)
          | Some q ->
            let cz =
              if not cz_on then -1
              else begin
                match Hashtbl.find_opt w.cz_delegate (qid, phase) with
                | None -> -1
                | Some src ->
                  Hashtbl.remove w.cz_delegate (qid, phase);
                  let f = Pstm_obs.Causal.node causal ~qid ~name:"delegate-flush" ~ts:at in
                  Pstm_obs.Causal.edge causal ~src ~dst:f Pstm_obs.Causal.Tracker;
                  f
              end
            in
            match delegate_parent ~coordinator:q.coordinator w.id with
            | None -> cost := Sim_time.add !cost (tracker_receive ~at ~cz w q phase weight)
            | Some parent ->
              Metrics.count_delegate_forward metrics;
              cost :=
                Sim_time.add !cost
                  (send ~at ~src:w.id ~dst:parent ~kind:Metrics.Progress_msg
                     (P_progress_up { qid; phase; weight; cz })))
        (Progress.delegate_drain w.delegate);
    !cost
  (* ---- Phase transitions ----------------------------------------------- *)
  and phase_complete ~at ?(cz = -1) w q phase =
    tracker_event "release" ~qid:q.qid ~phase;
    if obs_on then
      Pstm_obs.Trace.instant trace ~tid:(Engine.query_track q.qid) ~name:"phase_complete" ~ts:at
        ~args:[ ("phase", Pstm_obs.Trace.I phase) ]
        ();
    match Program.agg_of_phase q.program phase with
    | Some agg_step ->
      (* Pull the per-partition partials in (§III-C). Under the shared
         (non-partitioned) model one worker per node answers for the
         node-wide memo. *)
      q.combine_step <- agg_step;
      q.combine_received <- 0;
      q.combine_acc <- None;
      let responders =
        if options.shared_state then
          Array.init (Cluster.n_nodes cluster) (fun node -> node * workers_per_node)
        else Array.init n_workers Fun.id
      in
      q.combine_expected <- Array.length responders;
      let cz =
        if not cz_on then -1
        else begin
          let p = Pstm_obs.Causal.node causal ~qid:q.qid ~name:"phase-complete" ~ts:at in
          Pstm_obs.Causal.edge causal ~src:cz ~dst:p Pstm_obs.Causal.Tracker;
          p
        end
      in
      let cost = ref Sim_time.zero in
      Array.iter
        (fun dst ->
          cost :=
            Sim_time.add !cost
              (send ~at ~src:w.id ~dst ~kind:Metrics.Control_msg
                 (P_agg_flush { qid = q.qid; agg_step; cz })))
        responders;
      !cost
    | None -> complete_query ~at ~cz w q
  and complete_query ~at ?(cz = -1) w q =
    let released_at = max at (Cluster.now cluster) in
    q.outcome <- Some (Engine.Completed released_at);
    q.active <- false;
    if cz_on then begin
      (* Terminal node: the walk back from here along binding edges is the
         query's critical path, and its segments sum to the latency. *)
      let z = Pstm_obs.Causal.node causal ~qid:q.qid ~name:"release" ~ts:released_at in
      Pstm_obs.Causal.edge causal ~src:cz ~dst:z Pstm_obs.Causal.Tracker;
      Pstm_obs.Causal.set_release causal ~qid:q.qid z
    end;
    if obs_on then
      Pstm_obs.Trace.instant trace ~tid:(Engine.query_track q.qid) ~name:"complete" ~ts:at
        ~args:
          [
            ("rows", Pstm_obs.Trace.I (Vec.length q.rows));
            ("workers_touched", Pstm_obs.Trace.I (Bitset.count q.touched));
          ]
        ();
    active_op_count := !active_op_count - Program.n_steps q.program;
    n_active := !n_active - 1;
    (* Memos are query-scoped: broadcast the automatic clear of §III-B. *)
    let cost = ref Sim_time.zero in
    for dst = 0 to n_workers - 1 do
      cost :=
        Sim_time.add !cost
          (send ~at ~src:w.id ~dst ~kind:Metrics.Control_msg (P_cleanup { qid = q.qid }))
    done;
    !on_terminal q.qid (Engine.Completed released_at);
    !cost
  (* ---- Task execution --------------------------------------------------- *)
  and process w ~at payload =
    match payload with
    | P_trav { qid; trav; cz } -> begin
      if obs_on then decr inflight;
      match Hashtbl.find_opt queries qid with
      | None -> Sim_time.zero
      | Some q when not q.active -> Sim_time.zero
      | Some q -> begin
        match (if adaptive_on then stateful_key_vertex q trav else None) with
        | Some v when Partition.owner partition v <> w.id ->
          (* The vertex migrated while this traverser was in flight:
             chase the new owner. The traverser is forwarded wholesale,
             so its progression weight is conserved bit for bit. *)
          Metrics.count_forwarded metrics;
          mig_event "forward" v;
          if obs_on then incr inflight;
          let cz =
            if not cz_on then -1
            else begin
              let f = Pstm_obs.Causal.node causal ~qid ~name:"forward" ~ts:at in
              Pstm_obs.Causal.edge causal ~src:cz ~dst:f Pstm_obs.Causal.Queue;
              f
            end
          in
          send ~at ~src:w.id ~dst:(Partition.owner partition v) ~kind:Metrics.Traverser_msg
            (P_trav { qid; trav; cz })
        | Some v when Hashtbl.mem migrating v ->
          (* We are the new owner but the memo entries are still in
             flight: park the traverser until P_migrate_data lands, so
             dedup / visit / join state is never consulted half-moved.
             The context parks with it; the stash wait reads as Queue. *)
          Metrics.count_stashed metrics;
          mig_event "stash" v;
          let stash = Hashtbl.find migrating v in
          stash := P_trav { qid; trav; cz } :: !stash;
          Sim_time.zero
        | _ ->
        if obs_on && Bitset.add_if_absent q.touched w.id then
          Pstm_obs.Trace.instant trace ~tid:(Engine.query_track qid) ~name:"first_touch" ~ts:at
            ~args:[ ("worker", Pstm_obs.Trace.I w.id) ]
            ();
        let scan label =
          let mine = Lazy.force w.members in
          match label with
          | None -> mine
          | Some l -> Array.of_seq (Seq.filter (Graph.has_vertex_label graph ~label:l) (Array.to_seq mine))
        in
        Metrics.count_step metrics;
        (* Execution node. Incoming edges, binding last: the arrival /
           producer context first (its span is the queue wait), then —
           when this worker has run continuously and its previous
           execution belonged to the same query — the worker chain
           (the span is serial compute occupancy). *)
        let cz_exec =
          if not cz_on then -1
          else begin
            let s =
              Pstm_obs.Causal.node causal ~qid
                ~name:(Step.op_name (Program.step q.program trav.Traverser.step).Step.op)
                ~ts:at
            in
            Pstm_obs.Causal.edge causal ~src:cz ~dst:s Pstm_obs.Causal.Queue;
            if w.cz_last_qid = qid then
              Pstm_obs.Causal.edge causal ~src:w.cz_last ~dst:s Pstm_obs.Causal.Compute;
            w.cz_last <- s;
            w.cz_last_qid <- qid;
            s
          end
        in
        let outcome =
          Exec.exec ~graph ~memo:w.memo ~prng:w.prng ~qid ~program:q.program ~scan trav
        in
        if check && not (Exec.conserves trav outcome) then
          Engine.check_fail "async: query %d step %d (%s) broke weight conservation" qid
            trav.Traverser.step
            (Step.op_name (Program.step q.program trav.Traverser.step).Step.op);
        Metrics.count_edges metrics outcome.Exec.edges_scanned;
        let base_cost = exec_cost outcome in
        if obs_on then
          Pstm_obs.Opstats.record opstats ~step:trav.Traverser.step
            ~out:(List.length outcome.Exec.spawns)
            ~rows:(List.length outcome.Exec.rows)
            ~finished:(not (Weight.is_zero outcome.Exec.finished))
            ~edges:outcome.Exec.edges_scanned ~memo_hits:outcome.Exec.memo_hits
            ~memo_misses:outcome.Exec.memo_misses ~busy_ns:(Sim_time.to_ns base_cost);
        let cost = ref base_cost in
        List.iter
          (fun child ->
            Metrics.count_spawn metrics;
            cost :=
              Sim_time.add !cost
                (dispatch_trav ~at ~src:w.id ~src_vertex:trav.Traverser.vertex ~cz:cz_exec q
                   child))
          outcome.Exec.spawns;
        (* Rows are only produced by Emit, which routes to the coordinator
           first — so they land here, at the coordinator itself. *)
        List.iter
          (fun (row, weight) ->
            assert (w.id = q.coordinator);
            Vec.push q.rows row;
            cost :=
              Sim_time.add !cost
                (tracker_receive ~at ~cz:cz_exec w q
                   (Program.phase_of_step q.program trav.step)
                   weight))
          outcome.Exec.rows;
        if not (Weight.is_zero outcome.Exec.finished) then
          cost :=
            Sim_time.add !cost
              (finish_weight ~at ~cz:cz_exec w q (Program.phase_of_step q.program trav.step)
                 outcome.Exec.finished);
        if obs_on then
          Pstm_obs.Trace.span trace ~tid:w.id
            ~name:(Step.op_name (Program.step q.program trav.Traverser.step).Step.op)
            ~ts:at ~dur:!cost
            ~args:[ ("qid", Pstm_obs.Trace.I qid); ("step", Pstm_obs.Trace.I trav.Traverser.step) ]
            ();
        !cost
      end
    end
    | P_trav_batch { qid; travs; cz } ->
      (* Only the batched drain produces these, and it also consumes them;
         if one reaches the scalar path anyway, unpack and run in order. *)
      List.fold_left
        (fun acc trav -> Sim_time.add acc (process w ~at (P_trav { qid; trav; cz })))
        Sim_time.zero travs
    | P_progress { qid; phase; weight; cz } -> begin
      match Hashtbl.find_opt queries qid with
      | None -> Sim_time.zero
      (* A cancelled / timed-out query's straggling weight is dropped:
         its trackers are already released (timeout), so feeding them
         would re-trigger completion machinery on a dead query. *)
      | Some q when not q.active -> Sim_time.zero
      | Some q -> tracker_receive ~at ~cz w q phase weight
    end
    | P_progress_up { qid; phase; weight; cz } -> begin
      match Hashtbl.find_opt queries qid with
      | None -> Sim_time.zero
      | Some q when not q.active -> Sim_time.zero (* dropped, like straggling P_progress *)
      | Some q ->
        if q.coordinator = w.id then tracker_receive ~at ~cz w q phase weight
        else begin
          (* Interior delegate: absorb the subtree's merged weight; it
             ships one hop further up when this worker's hold window
             closes. *)
          if not (Weight.is_zero weight) then tracker_event "delegate" ~qid ~phase;
          Metrics.count_delegate_merge metrics;
          Progress.delegate_absorb w.delegate ~qid ~phase weight;
          if cz_on && cz >= 0 then begin
            let d = Pstm_obs.Causal.node causal ~qid ~name:"delegate-merge" ~ts:at in
            Pstm_obs.Causal.edge causal ~src:cz ~dst:d Pstm_obs.Causal.Tracker;
            Hashtbl.replace w.cz_delegate (qid, phase) d
          end;
          delegate_arm ~at w;
          costs.Cluster.progress_coalesce
        end
    end
    | P_delegate_flush -> flush_delegate ~at w
    | P_agg_flush { qid; agg_step; cz } -> begin
      match Hashtbl.find_opt queries qid with
      | None -> Sim_time.zero
      | Some q when not q.active -> Sim_time.zero
      | Some q ->
        let partial = Memo.partial_opt w.memo ~qid ~label:agg_step in
        let cz =
          if not cz_on then -1
          else begin
            (* Collective leg: the coordinator waits for every partial, so
               the flush and partial hops classify as Barrier. *)
            let a = Pstm_obs.Causal.node causal ~qid ~name:"agg-flush" ~ts:at in
            Pstm_obs.Causal.edge causal ~src:cz ~dst:a Pstm_obs.Causal.Barrier;
            a
          end
        in
        Sim_time.add (memo_op_cost ())
          (send ~at ~src:w.id ~dst:q.coordinator ~kind:Metrics.Control_msg
             (P_agg_partial { qid; agg_step; partial; cz }))
    end
    | P_agg_partial { qid; agg_step; partial; cz } -> begin
      match Hashtbl.find_opt queries qid with
      | None -> Sim_time.zero
      | Some q when not q.active -> Sim_time.zero
      | Some q ->
        assert (q.combine_step = agg_step);
        (match partial, q.combine_acc with
        | None, _ -> ()
        | Some p, None -> q.combine_acc <- Some p
        | Some p, Some acc -> Aggregate.merge ~into:acc p);
        q.combine_received <- q.combine_received + 1;
        if q.combine_received < q.combine_expected then memo_op_cost ()
        else begin
          (* All partials in: finalize and start the next phase. *)
          let step = Program.step q.program agg_step in
          let agg, reg =
            match step.Step.op with
            | Step.Aggregate { agg; reg } -> (agg, reg)
            | _ -> assert false
          in
          let value =
            Aggregate.finalize
              (match q.combine_acc with Some acc -> acc | None -> Aggregate.create agg)
          in
          q.combine_step <- -1;
          let cont =
            Traverser.set_reg
              (Traverser.make ~vertex:0 ~step:step.Step.next ~weight:Weight.root
                 ~n_registers:(Program.n_registers q.program))
              reg value
          in
          Metrics.count_spawn metrics;
          (* The continuation enters the next phase from outside any step. *)
          Pstm_obs.Opstats.seed opstats 1;
          let cz =
            if not cz_on then -1
            else begin
              (* The combine binds to the last partial in: the barrier
                 wait is exactly what the straggling responder cost. *)
              let c = Pstm_obs.Causal.node causal ~qid ~name:"agg-combine" ~ts:at in
              Pstm_obs.Causal.edge causal ~src:cz ~dst:c Pstm_obs.Causal.Barrier;
              c
            end
          in
          Sim_time.add (memo_op_cost ()) (dispatch_trav ~at ~src:w.id ~cz q cont)
        end
    end
    | P_cleanup { qid } ->
      Memo.clear_query w.memo qid;
      memo_op_cost ()
    | P_setup { qid; cz } -> begin
      (* Dataflow flavors instantiate every operator of the query's plan
         (plus its channels) in this worker before execution can start. *)
      match Hashtbl.find_opt queries qid with
      | None -> Sim_time.zero
      | Some q when not q.active -> Sim_time.zero
      | Some q ->
        let instantiate = 8 * Program.n_steps q.program * costs.Cluster.operator_sched in
        let cz =
          if not cz_on then -1
          else begin
            let s = Pstm_obs.Causal.node causal ~qid ~name:"setup" ~ts:at in
            Pstm_obs.Causal.edge causal ~src:cz ~dst:s Pstm_obs.Causal.Compute;
            s
          end
        in
        Sim_time.add instantiate
          (send ~at ~src:w.id ~dst:q.coordinator ~kind:Metrics.Control_msg
             (P_setup_ack { qid; cz }))
    end
    | P_setup_ack { qid; cz } -> begin
      match Hashtbl.find_opt queries qid with
      | None -> Sim_time.zero
      | Some q when not q.active -> Sim_time.zero
      | Some q ->
        q.setup_acks <- q.setup_acks - 1;
        if q.setup_acks = 0 then begin
          (* Deployment barrier: launch binds to the last ack in. *)
          let cz =
            if not cz_on then -1
            else begin
              let l = Pstm_obs.Causal.node causal ~qid ~name:"launch" ~ts:at in
              Pstm_obs.Causal.edge causal ~src:cz ~dst:l Pstm_obs.Causal.Barrier;
              l
            end
          in
          launch_entries ~at ~cz q;
          costs.Cluster.operator_sched * Program.n_steps q.program
        end
        else costs.Cluster.operator_sched
    end
    | P_migrate { vertex; dst; cz } ->
      (* Old owner: pull the vertex's records out of the local memo (all
         queries, deterministic order) and ship them as one costed data
         message. Any traverser for the vertex still queued behind this
         order re-routes on arrival via the forwarding path above. *)
      let entries = Memo.extract_for_key w.memo (Value.Vertex vertex) in
      mig_event "extract" vertex;
      Metrics.count_migrated_entries metrics (List.length entries);
      let cz =
        if not cz_on then -1
        else begin
          let e = Pstm_obs.Causal.node causal ~qid:(-1) ~name:"migrate-extract" ~ts:at in
          Pstm_obs.Causal.edge causal ~src:cz ~dst:e Pstm_obs.Causal.Queue;
          e
        end
      in
      Sim_time.add
        (memo_op_cost () * (1 + List.length entries))
        (send ~at ~src:w.id ~dst ~kind:Metrics.Control_msg
           (P_migrate_data { vertex; entries; cz }))
    | P_migrate_data { vertex; entries; cz } ->
      (* New owner: install the records — entries of queries that
         completed while the message was in flight are dropped (their
         cleanup broadcast already passed) — then release any parked
         traversers in arrival order. *)
      List.iter
        (fun (qid, label, entry) ->
          match Hashtbl.find_opt queries qid with
          | Some q when q.active -> Memo.set w.memo ~qid ~label (Value.Vertex vertex) entry
          | Some _ | None -> ())
        entries;
      mig_event "install" vertex;
      (match Hashtbl.find_opt migrating vertex with
      | Some stash ->
        Hashtbl.remove migrating vertex;
        if mutation <> Some Mutation.Drop_stash_drain then
          List.iter
            (fun p ->
              if obs_on then incr inflight;
              (* Each parked traverser resumes through a drain node. The
                 install context comes in first (for DAG completeness);
                 the traverser's own parked context binds last, so the
                 walk stays within its query and the whole stash wait
                 reads as Queue. *)
              (if cz_on then begin
                 match p with
                 | P_trav ({ qid; _ } as r) when r.cz >= 0 ->
                   let d = Pstm_obs.Causal.node causal ~qid ~name:"stash-drain" ~ts:at in
                   Pstm_obs.Causal.edge causal ~src:cz ~dst:d Pstm_obs.Causal.Queue;
                   Pstm_obs.Causal.edge causal ~src:r.cz ~dst:d Pstm_obs.Causal.Queue;
                   r.cz <- d
                 | _ -> ()
               end);
              Queue.add p w.tasks)
            (List.rev !stash)
      | None -> ());
      memo_op_cost () * (1 + List.length entries)
  (* ---- Worker scheduling loop ------------------------------------------- *)
  and launch_entries ~at ?(cz = -1) q =
    let entries = Program.entries q.program in
    let shares = Weight.split seed_prng Weight.root ~n:(Array.length entries) in
    Array.iteri
      (fun i entry ->
        let root =
          Traverser.make ~vertex:0 ~step:entry ~weight:shares.(i)
            ~n_registers:(Program.n_registers q.program)
        in
        match (Program.step q.program entry).Step.op with
        | Step.Scan _ ->
          (* Scans start everywhere: one seed per worker, each scanning
             its own partition. *)
          let seeds = Weight.split seed_prng shares.(i) ~n:n_workers in
          Pstm_obs.Opstats.seed opstats n_workers;
          if obs_on then inflight := !inflight + n_workers;
          Array.iteri
            (fun dst seed ->
              ignore
                (send ~at ~src:q.coordinator ~dst ~kind:Metrics.Control_msg
                   (P_trav { qid = q.qid; trav = Traverser.with_weight root seed; cz })))
            seeds
        | _ ->
          Pstm_obs.Opstats.seed opstats 1;
          if obs_on then incr inflight;
          deliver q.coordinator (P_trav { qid = q.qid; trav = root; cz }))
      entries
  (* ---- Frontier batching ([Engine.Common.batched]) ---------------------
     The quantum drains its task queue into per-(qid, step) frontier
     groups (first-seen order) and executes each group once: fusable
     chains run through {!Batch_exec} as CSR-range scans, everything else
     runs the scalar interpreter with the dispatch cost amortized over
     the batch. Staging is strictly intra-quantum — every staged group
     executes before the quantum ends — so no weight is ever parked
     across quanta and termination detection is untouched. *)
  and drain_batched w local budget =
    (* Each group carries the distinct causal contexts of the payloads
       that fed it (consecutive-dedup: a batch contributes one context
       for all its elements), so the batch node can record every arrival
       it coalesced. *)
    let groups : (int * int, Traverser.t Vec.t * int Vec.t) Hashtbl.t = Hashtbl.create 8 in
    let order = ref [] in
    let stage ~cz qid (trav : Traverser.t) =
      if obs_on then decr inflight;
      let key = (qid, trav.Traverser.step) in
      match Hashtbl.find_opt groups key with
      | Some (bucket, czs) ->
        Vec.push bucket trav;
        if cz >= 0 && (Vec.length czs = 0 || Vec.get czs (Vec.length czs - 1) <> cz) then
          Vec.push czs cz
      | None ->
        let bucket = Vec.create ~dummy:trav in
        let czs = Vec.create ~dummy:(-1) in
        Vec.push bucket trav;
        if cz >= 0 then Vec.push czs cz;
        Hashtbl.add groups key (bucket, czs);
        order := key :: !order
    in
    while !budget > 0 && not (Queue.is_empty w.tasks) do
      match Queue.pop w.tasks with
      | P_trav { qid; trav; cz } ->
        decr budget;
        stage ~cz qid trav
      | P_trav_batch { qid; travs; cz } ->
        (* Each element charges the budget: a batch is cheaper to execute,
           not free to schedule. *)
        List.iter
          (fun trav ->
            decr budget;
            stage ~cz qid trav)
          travs
      | payload ->
        decr budget;
        local := Sim_time.add !local (fault_scale w.id (process w ~at:!local payload))
    done;
    List.iter
      (fun (qid, step_idx) ->
        let bucket, czs = Hashtbl.find groups (qid, step_idx) in
        let travs = Vec.to_array bucket in
        local :=
          Sim_time.add !local
            (fault_scale w.id (exec_batch w ~at:!local ~qid ~step_idx ~czs travs)))
      (List.rev !order)
  and exec_batch w ~at ~qid ~step_idx ~czs travs_all =
    ignore (czs : int Vec.t);
    match Hashtbl.find_opt queries qid with
    | None -> Sim_time.zero
    | Some q when not q.active -> Sim_time.zero
    | Some q ->
      (* One execution node per frontier group, created before the
         migration gate so forwarded / stashed elements inherit it.
         Incoming: every coalesced context (Queue) first, the worker
         chain (Compute) last when it binds. *)
      let cz_b =
        if not cz_on then -1
        else begin
          let s =
            Pstm_obs.Causal.node causal ~qid
              ~name:(Step.op_name (Program.step q.program step_idx).Step.op)
              ~ts:at
          in
          Vec.iter
            (fun c -> Pstm_obs.Causal.edge causal ~src:c ~dst:s Pstm_obs.Causal.Queue)
            czs;
          if w.cz_last_qid = qid then
            Pstm_obs.Causal.edge causal ~src:w.cz_last ~dst:s Pstm_obs.Causal.Compute;
          w.cz_last <- s;
          w.cz_last_qid <- qid;
          s
        end
      in
      let cost = ref Sim_time.zero in
      (* The migration gate reruns at execution time: the owner table may
         have flipped while the group sat staged, and a stale execution
         of a stateful step would read half-moved memo state. *)
      let runnable =
        if not adaptive_on then travs_all
        else
          Array.of_list
            (List.filter
               (fun trav ->
                 match stateful_key_vertex q trav with
                 | Some v when Partition.owner partition v <> w.id ->
                   Metrics.count_forwarded metrics;
                   mig_event "forward" v;
                   if obs_on then incr inflight;
                   cost :=
                     Sim_time.add !cost
                       (send ~at ~src:w.id ~dst:(Partition.owner partition v)
                          ~kind:Metrics.Traverser_msg (P_trav { qid; trav; cz = cz_b }));
                   false
                 | Some v when Hashtbl.mem migrating v ->
                   Metrics.count_stashed metrics;
                   mig_event "stash" v;
                   let stash = Hashtbl.find migrating v in
                   stash := P_trav { qid; trav; cz = cz_b } :: !stash;
                   false
                 | _ -> true)
               (Array.to_list travs_all))
      in
      let n = Array.length runnable in
      if n = 0 then !cost
      else begin
        if obs_on && Bitset.add_if_absent q.touched w.id then
          Pstm_obs.Trace.instant trace ~tid:(Engine.query_track qid) ~name:"first_touch" ~ts:at
            ~args:[ ("worker", Pstm_obs.Trace.I w.id) ]
            ();
        Metrics.count_batch metrics ~traversers:n;
        for _ = 1 to n do
          Metrics.count_step metrics
        done;
        (* Execute: fused chain over the whole frontier, or the scalar
           interpreter per element with the dispatch amortized. Children
           are paired with their parent's vertex for traffic profiling. *)
        let spawns : (int * Traverser.t) Vec.t = Vec.create ~dummy:(0, runnable.(0)) in
        let rows = ref [] in
        let finished = ref Weight.zero in
        let edges = ref 0 in
        let reads = ref 0 in
        let memo_ops = ref 0 in
        let memo_hits = ref 0 in
        let memo_misses = ref 0 in
        if Batch_exec.fusable q.program step_idx then begin
          let o =
            Batch_exec.run ~graph ~scratch:(Lazy.force w.scratch) ~prng:w.prng
              ~program:q.program ~step:step_idx runnable
          in
          if check && not (Batch_exec.conserves runnable o) then
            Engine.check_fail "async: query %d batch at step %d (%s) broke weight conservation"
              qid step_idx
              (Step.op_name (Program.step q.program step_idx).Step.op);
          Batch_exec.iter_spawns o (fun ~parent child ->
              Vec.push spawns (runnable.(parent).Traverser.vertex, child));
          finished := o.Batch_exec.finished;
          edges := o.Batch_exec.edges_scanned;
          reads := o.Batch_exec.prop_reads
        end
        else begin
          let scan label =
            let mine = Lazy.force w.members in
            match label with
            | None -> mine
            | Some l ->
              Array.of_seq
                (Seq.filter (Graph.has_vertex_label graph ~label:l) (Array.to_seq mine))
          in
          Array.iter
            (fun (trav : Traverser.t) ->
              let o = Exec.exec ~graph ~memo:w.memo ~prng:w.prng ~qid ~program:q.program ~scan trav in
              if check && not (Exec.conserves trav o) then
                Engine.check_fail "async: query %d step %d (%s) broke weight conservation" qid
                  trav.Traverser.step
                  (Step.op_name (Program.step q.program trav.Traverser.step).Step.op);
              List.iter (fun c -> Vec.push spawns (trav.Traverser.vertex, c)) o.Exec.spawns;
              rows := List.rev_append o.Exec.rows !rows;
              finished := Weight.add !finished o.Exec.finished;
              edges := !edges + o.Exec.edges_scanned;
              reads := !reads + o.Exec.prop_reads;
              memo_ops := !memo_ops + o.Exec.memo_ops;
              memo_hits := !memo_hits + o.Exec.memo_hits;
              memo_misses := !memo_misses + o.Exec.memo_misses)
            runnable;
          rows := List.rev !rows
        end;
        Metrics.count_edges metrics !edges;
        (* Per-batch cost: ONE dispatch plus the data/memo volume — the
           amortization the batching exists for. *)
        let data = (!edges * costs.Cluster.per_edge) + (!reads * costs.Cluster.per_property) in
        let data = if options.shared_state then data + (data / 2) else data in
        let base_cost =
          costs.Cluster.step_dispatch + shared_step_penalty () + data
          + (!memo_ops * memo_op_cost ())
        in
        let base_cost = if swapping then base_cost * options.swap_penalty else base_cost in
        if obs_on then
          Pstm_obs.Opstats.record opstats ~step:step_idx ~out:(Vec.length spawns)
            ~rows:(List.length !rows)
            ~finished:(not (Weight.is_zero !finished))
            ~edges:!edges ~memo_hits:!memo_hits ~memo_misses:!memo_misses
            ~busy_ns:(Sim_time.to_ns base_cost);
        cost := Sim_time.add !cost base_cost;
        (* Coalesced dispatch: group children by (destination, kind) and
           ship one P_trav_batch per group. *)
        let buckets : (int * Metrics.msg_kind, (int * Traverser.t) Vec.t) Hashtbl.t =
          Hashtbl.create 8
        in
        let bucket_order = ref [] in
        Vec.iter
          (fun (parent_vertex, (child : Traverser.t)) ->
            Metrics.count_spawn metrics;
            let dst = route q child in
            let kind =
              match (Program.step q.program child.Traverser.step).Step.op with
              | Step.Emit _ -> Metrics.Result_msg
              | _ -> Metrics.Traverser_msg
            in
            let key = (dst, kind) in
            match Hashtbl.find_opt buckets key with
            | Some b -> Vec.push b (parent_vertex, child)
            | None ->
              let b = Vec.create ~dummy:(parent_vertex, child) in
              Vec.push b (parent_vertex, child);
              Hashtbl.add buckets key b;
              bucket_order := key :: !bucket_order)
          spawns;
        List.iter
          (fun (dst, kind) ->
            let children = Hashtbl.find buckets (dst, kind) in
            if obs_on then inflight := !inflight + Vec.length children;
            if dst <> w.id then Metrics.count_coalesced_msg metrics;
            let travs = List.map snd (Vec.to_list children) in
            cost :=
              Sim_time.add !cost
                (send ~at ~src:w.id ~dst ~kind (P_trav_batch { qid; travs; cz = cz_b }));
            if (traffic_on || adaptive_on) && dst <> w.id then
              Vec.iter
                (fun (parent_vertex, child) ->
                  match routed_vertex q child with
                  | None -> ()
                  | Some v ->
                    let bytes = 8 + Traverser.bytes child in
                    Pstm_obs.Traffic.record obs_traffic ~src:parent_vertex ~dst:v ~bytes;
                    Pstm_obs.Traffic.record profile ~src:parent_vertex ~dst:v ~bytes)
                children)
          (List.rev !bucket_order);
        if adaptive_on then cost := Sim_time.add !cost (maybe_adapt ~at ~src:w.id ~cz:cz_b ());
        (* Rows land here at the coordinator (Emit routes there first);
           their weight reaches the tracker as one per-batch merge. *)
        if !rows <> [] then begin
          assert (w.id = q.coordinator);
          let row_weight = ref Weight.zero in
          List.iter
            (fun (row, weight) ->
              Vec.push q.rows row;
              row_weight := Weight.add !row_weight weight)
            !rows;
          cost :=
            Sim_time.add !cost
              (tracker_receive ~at ~cz:cz_b w q
                 (Program.phase_of_step q.program step_idx)
                 !row_weight)
        end;
        if not (Weight.is_zero !finished) then
          cost :=
            Sim_time.add !cost
              (finish_weight ~at ~cz:cz_b w q (Program.phase_of_step q.program step_idx)
                 !finished);
        if obs_on then
          Pstm_obs.Trace.span trace ~tid:w.id
            ~name:("batch:" ^ Step.op_name (Program.step q.program step_idx).Step.op)
            ~ts:at ~dur:!cost
            ~args:
              [
                ("qid", Pstm_obs.Trace.I qid);
                ("step", Pstm_obs.Trace.I step_idx);
                ("size", Pstm_obs.Trace.I n);
              ]
            ();
        !cost
      end
  and quantum w =
    (* [awake] stays true while the quantum runs: self-sends and deferred
       events need no extra wakeup, and the tail of this function either
       reschedules (staying awake) or goes to sleep explicitly. *)
    w.awake <- true;
    let quantum_start = max (Cluster.now cluster) w.busy_until in
    let released = fault_release w.id quantum_start in
    if Sim_time.compare released quantum_start > 0 then
      (* Paused node: the whole quantum defers to the window's end.
         [awake] stays true so no duplicate quantum gets scheduled. *)
      Event_queue.schedule_at events ~time:released ~tag:(Cluster.worker_tag cluster w.id)
        (fun () -> quantum w)
    else run_quantum w quantum_start
  and run_quantum w quantum_start =
    (* An idle gap breaks the worker chain: the next execution's wait is
       genuinely its own queue/arrival time, not serial occupancy. *)
    if cz_on && Sim_time.compare quantum_start w.busy_until > 0 then begin
      w.cz_last <- -1;
      w.cz_last_qid <- -1
    end;
    let local = ref quantum_start in
    if obs_on then begin
      Pstm_obs.Flight.sample flight fl_queue.(w.id) ~time:quantum_start
        (float_of_int (Queue.length w.tasks));
      Pstm_obs.Flight.sample flight fl_memo.(w.id) ~time:quantum_start
        (float_of_int (Memo.live_entries w.memo));
      Pstm_obs.Flight.sample flight fl_inflight ~time:quantum_start (float_of_int !inflight)
    end;
    (* Dataflow flavors poll every live operator instance each quantum. *)
    if options.flavor <> Graphdance && !active_op_count > 0 then
      local :=
        Sim_time.add !local
          (fault_scale w.id (costs.Cluster.operator_sched * !active_op_count));
    let budget = ref options.quantum in
    if batched then drain_batched w local budget
    else
      while !budget > 0 && not (Queue.is_empty w.tasks) do
        decr budget;
        let payload = Queue.pop w.tasks in
        local := Sim_time.add !local (fault_scale w.id (process w ~at:!local payload))
      done;
    (* Coalesced weights ship when the worker idles or once enough have
       merged locally to justify a message (§IV-A: they ride along with
       buffer flushes, not with every death). *)
    if Queue.is_empty w.tasks || Progress.pending_additions w.coalescer >= 256 then begin
      let flush_at = !local in
      let flush_cost = fault_scale w.id (flush_progress ~at:flush_at w) in
      if obs_on && Sim_time.compare flush_cost Sim_time.zero > 0 then
        Pstm_obs.Trace.span trace ~tid:w.id ~name:"flush_progress" ~ts:flush_at ~dur:flush_cost ();
      local := Sim_time.add !local flush_cost
    end;
    if Queue.is_empty w.tasks then begin
      (* Out of work: flush the tier-1 buffers before sleeping (§IV-B). *)
      w.awake <- false;
      let flush_at = !local in
      let flush_cost = fault_scale w.id (Channel.flush_worker (channel ()) ~at:flush_at ~worker:w.id) in
      if obs_on && Sim_time.compare flush_cost Sim_time.zero > 0 then
        Pstm_obs.Trace.span trace ~tid:w.id ~name:"flush_channel" ~ts:flush_at ~dur:flush_cost ();
      local := Sim_time.add !local flush_cost
    end
    else begin
      w.awake <- true;
      Event_queue.schedule_at events ~time:!local ~tag:(Cluster.worker_tag cluster w.id)
        (fun () -> quantum w)
    end;
    let consumed = Sim_time.diff !local quantum_start in
    if obs_on && Sim_time.compare consumed Sim_time.zero > 0 then
      Pstm_obs.Trace.span trace ~cat:"sched" ~tid:w.id ~name:"quantum" ~ts:quantum_start
        ~dur:consumed ();
    Metrics.count_busy metrics consumed;
    w.busy_total <- Sim_time.add w.busy_total consumed;
    w.busy_until <- !local
  in
  channel_ref :=
    Some (Channel.create cluster channel_config ~dummy:(P_cleanup { qid = -1 }) ~deliver);
  (* --- Scoped cancellation ---------------------------------------------
     The per-query generalization of the PR 3 deadline path: instead of
     "the whole run hit its deadline", "this query is done now". The
     query flips inactive (in-flight traversers die on arrival, straggler
     weights drop at flush), incomplete phase trackers time out, and
     every worker's memo entries for the query are reclaimed — so the
     end-of-run sanitizer's memo-emptiness invariant holds through
     mid-flight cancellation. *)
  let terminate ~at qid outcome =
    let q = query qid in
    if q.outcome = None then begin
      q.outcome <- Some outcome;
      q.active <- false;
      if q.launched then begin
        active_op_count := !active_op_count - Program.n_steps q.program;
        n_active := !n_active - 1;
        Array.iteri
          (fun phase tr ->
            if not (Progress.is_complete tr) then tracker_event "timeout" ~qid ~phase)
          q.trackers
      end;
      Array.iter (fun w -> Memo.clear_query w.memo qid) workers;
      (* The scoped reclaim also covers progress bookkeeping: weight
         merged but not yet flushed will never reach a tracker, and the
         (qid, phase) causal entries parked beside it would otherwise
         strand in the worker hashtables for the rest of the run — the
         drain path only reclaims them when a flush happens to visit the
         dead query. *)
      Array.iter
        (fun w ->
          Progress.discard_query w.coalescer ~qid;
          Progress.delegate_discard_query w.delegate ~qid;
          if cz_on then
            for phase = 0 to Program.n_phases q.program - 1 do
              Hashtbl.remove w.cz_coalesce (qid, phase);
              Hashtbl.remove w.cz_delegate (qid, phase)
            done)
        workers;
      if obs_on then
        Pstm_obs.Trace.instant trace ~tid:(Engine.query_track qid)
          ~name:(Engine.outcome_name outcome) ~ts:at ();
      !on_terminal qid outcome
    end
  in
  (* --- Submission ------------------------------------------------------ *)
  let next_qid = ref 0 in
  let submit_sub (s : Engine.submission) =
    let qid = !next_qid in
    incr next_qid;
    let program = s.Engine.program in
    let q =
      {
        qid;
        program;
        coordinator = qid mod n_workers;
        tenant = s.Engine.tenant;
        priority = s.Engine.priority;
        submitted = s.Engine.at;
        outcome = None;
        launched = false;
        trackers =
          Array.init (Program.n_phases program) (fun _ -> Progress.tracker ~target:Weight.root);
        touched = Bitset.create n_workers;
        fl_weight =
          Array.init (Program.n_phases program) (fun phase ->
              Pstm_obs.Flight.series flight (Printf.sprintf "q%d.phase%d.weight" qid phase));
        combine_step = -1;
        combine_expected = 0;
        combine_received = 0;
        combine_acc = None;
        rows = Vec.create ~dummy:[||];
        active = true;
        setup_acks = 0;
      }
    in
    Hashtbl.add queries qid q;
    (* A submission whose arrival is already in the past (a service
       dispatching a queued query) launches immediately; latency still
       measures from [s.at], so queue wait counts against the SLO. *)
    let launch_at = max (Event_queue.now events) s.Engine.at in
    Event_queue.schedule_at events ~time:launch_at (fun () ->
        if q.outcome <> None then () (* cancelled before it ever launched *)
        else begin
          q.launched <- true;
          if obs_on then
            Pstm_obs.Trace.instant trace ~tid:(Engine.query_track qid) ~name:"submit"
              ~ts:launch_at
              ~args:
                [
                  ("query", Pstm_obs.Trace.S (Program.name program));
                  ("coordinator", Pstm_obs.Trace.I q.coordinator);
                ]
              ();
          active_op_count := !active_op_count + Program.n_steps program;
          n_active := !n_active + 1;
          for phase = 0 to Program.n_phases program - 1 do
            tracker_event "register" ~qid ~phase
          done;
          let cz_sub =
            if not cz_on then -1
            else begin
              let s0 = Pstm_obs.Causal.node causal ~qid ~name:"submit" ~ts:launch_at in
              Pstm_obs.Causal.set_submit causal ~qid s0;
              s0
            end
          in
          match options.flavor with
          | Graphdance ->
            (* PSTM programs need no deployment: traversers carry their
               step index and workers interpret the shared plan. *)
            launch_entries ~at:launch_at ~cz:cz_sub q
          | Banyan_like | Gaia_like ->
            (* Dataflow engines deploy the operator graph to every worker
               and wait for acknowledgements before execution begins —
               the per-worker instantiation the paper blames for their
               limited scaling. *)
            q.setup_acks <- n_workers;
            for dst = 0 to n_workers - 1 do
              deliver dst (P_setup { qid; cz = cz_sub })
            done
        end);
    (match s.Engine.deadline with
    | None -> ()
    | Some d ->
      (* The query's own latency budget: past [at + d] it is cut off as
         Timed_out — the scoped form of the run-level deadline. *)
      let t = max launch_at (Sim_time.add s.Engine.at d) in
      Event_queue.schedule_at events ~time:t (fun () -> terminate ~at:t qid Engine.Timed_out));
    qid
  in
  (* --- Drive / finish --------------------------------------------------- *)
  let drive ~until =
    match (until, deadline) with
    | None, None -> Event_queue.run_to_completion events
    | None, Some t | Some t, None -> Event_queue.run_until events ~time:t
    | Some t, Some d -> Event_queue.run_until events ~time:(min t d)
  in
  let finish () =
    let n_queries = !next_qid in
    (* Graceful degradation: when delivery was cut short — a deadline
       truncated the run, or the reliable channel abandoned a packet after
       max retries — some queries end unfinished and some in-flight
       P_cleanup broadcasts never land. Those queries report TIMEOUT; here
       the coordinator reclaims their state so nothing wedges the tracker
       or leaks memo entries into the next run. The loop walks qids in
       order (not the hashtable) to stay deterministic. *)
    let abandoned = Metrics.abandoned metrics > 0 in
    if deadline <> None || abandoned then
      for qid = 0 to n_queries - 1 do
        let q = query qid in
        if q.outcome = None then begin
          q.outcome <- Some Engine.Timed_out;
          q.active <- false;
          Array.iteri
            (fun phase tr ->
              if not (Progress.is_complete tr) then tracker_event "timeout" ~qid ~phase)
            q.trackers;
          !on_terminal qid Engine.Timed_out
        end;
        Array.iter (fun w -> Memo.clear_query w.memo qid) workers
      done;
    (* Sanitizer post-conditions. Termination of every query only holds
       when delivery ran to completion (no deadline, nothing abandoned) —
       the reliable channel makes it hold even under drop/dup/delay
       faults; queries cancelled or timed out per-query are terminal by
       construction. Memo emptiness holds always, thanks to the scoped
       reclaim at each terminal transition. *)
    if check then begin
      if deadline = None && not abandoned then begin
        for qid = 0 to n_queries - 1 do
          let q = query qid in
          if q.outcome = None then
            Engine.check_fail "async: query %d never terminated (weight lost or tracker wedged)"
              qid
        done;
        (* Every protocol-monitor instance must have reached a terminal
           state: packets acked, migrations installed, trackers released. *)
        List.iter
          (fun mon ->
            match mon with
            | None -> ()
            | Some mon -> begin
              match Protocol.finish mon with
              | None -> ()
              | Some why -> Engine.check_fail "async: %s" why
            end)
          [ mon_channel; mon_migration; mon_tracker ];
        (* No weight may be stranded mid-tree and no causal bookkeeping
           may outlive its query: parked state here means some
           (qid, phase) escaped both the flush path and the scoped
           reclaim at its terminal transition. *)
        Array.iter
          (fun w ->
            if not (Progress.is_empty w.coalescer) then
              Engine.check_fail "async: worker %d holds unflushed coalesced weight at finish"
                w.id;
            if not (Progress.delegate_is_empty w.delegate) then
              Engine.check_fail "async: worker %d holds undelivered delegate weight at finish"
                w.id;
            let n = Hashtbl.length w.cz_coalesce in
            if n > 0 then
              Engine.check_fail "async: worker %d strands %d coalescer causal entries" w.id n;
            let n = Hashtbl.length w.cz_delegate in
            if n > 0 then
              Engine.check_fail "async: worker %d strands %d delegate causal entries" w.id n)
          workers
      end;
      Array.iter
        (fun w ->
          let n = Memo.live_entries w.memo in
          if n > 0 then
            Engine.check_fail
              "async: worker %d holds %d memo entries after all queries completed" w.id n)
        workers
    end;
    (* Surface ring truncation: a trace that silently dropped events would
       otherwise read as a complete record. *)
    if obs_on then Metrics.set_trace_dropped metrics (Pstm_obs.Trace.dropped trace);
    let reports =
      Array.init n_queries (fun qid ->
          let q = query qid in
          {
            Engine.qid;
            name = Program.name q.program;
            tenant = q.tenant;
            priority = q.priority;
            submitted = q.submitted;
            outcome = (match q.outcome with Some o -> o | None -> Engine.Timed_out);
            rows = Vec.to_list q.rows;
          })
    in
    {
      Engine.engine = flavor_name options.flavor;
      queries = reports;
      makespan = Cluster.now cluster;
      metrics;
      events = Event_queue.executed events;
      worker_busy = Array.map (fun w -> w.busy_total) workers;
    }
  in
  {
    Engine.sh_name = flavor_name options.flavor;
    sh_submit = submit_sub;
    sh_cancel =
      (fun ~qid ~at ->
        let t = max at (Event_queue.now events) in
        Event_queue.schedule_at events ~time:t (fun () -> terminate ~at:t qid Engine.Cancelled));
    sh_at =
      (fun t f -> Event_queue.schedule_at events ~time:(max t (Event_queue.now events)) f);
    sh_now = (fun () -> Event_queue.now events);
    sh_on_terminal = (fun f -> on_terminal := f);
    sh_drive = drive;
    sh_finish = finish;
  }

let start ?options ?common ~cluster_config ~channel_config ~graph () =
  create ?options ?common ~cluster_config ~channel_config ~graph ()

let run ?options ?common ~cluster_config ~channel_config ~graph
    (submissions : Engine.submission array) =
  Engine.run_via_start
    (fun ?common ~graph () -> create ?options ?common ~cluster_config ~channel_config ~graph ())
    ?common ~graph submissions
