(** Single-step interpreter: the shared operational semantics of PSTM
    steps. Engines differ only in where and when they call {!exec}. *)

type outcome = {
  spawns : Traverser.t list; (** children, to be routed by the caller *)
  rows : (Value.t array * Weight.t) list; (** emitted result rows *)
  finished : Weight.t; (** weight that terminated at this step *)
  edges_scanned : int;
  prop_reads : int;
  memo_ops : int;
  memo_hits : int;  (** memo probes answered from existing state *)
  memo_misses : int;  (** memo probes that created or missed state *)
}

(** Execute one traverser through its current step against the partition
    memo of the worker it is on. [scan] supplies the vertex domain of Scan
    sources (the whole graph for the reference engine, the partition
    members for distributed workers). Maintains weight conservation:
    input weight = spawned + row + finished weights. *)
val exec :
  graph:Graph.t ->
  memo:Memo.t ->
  prng:Prng.t ->
  qid:int ->
  program:Program.t ->
  scan:(int option -> int array) ->
  Traverser.t ->
  outcome

(** Does the outcome conserve the input traverser's weight
    (spawned + rows + finished = input)? Used by the engines' sanitizer
    ([~check:true]) mode. *)
val conserves : Traverser.t -> outcome -> bool

(** CPU time of an outcome under a cluster cost table. *)
val cost : Cluster.costs -> outcome -> Sim_time.t
