(* Single-node engine — the GraphScope role of §V-A3.

   GraphScope's audited LDBC numbers come from hand-optimized single-node
   C++ plugins, so this configuration runs the asynchronous runtime on one
   node (no network at all: every message takes the shared-memory path)
   with a discounted CPU cost table standing in for the specialized
   plugins. The flip side the paper demonstrates on SF1000 — the dataset
   no longer fits one machine's DRAM — is modeled by the per-node memory
   capacity: once the graph exceeds it, data accesses pay the swap
   penalty, and queries blow through their deadline exactly as 9 of 14 IC
   queries did in the paper. *)

(* Hand-tuned plugins run leaner per-step code than a general engine. *)
let plugin_discount t = Sim_time.of_float_ns (float_of_int (Sim_time.to_ns t) *. 0.6)

let cluster_config ~workers ~(base : Cluster.config) =
  let c = base.Cluster.costs in
  {
    base with
    Cluster.n_nodes = 1;
    workers_per_node = workers;
    costs =
      {
        c with
        Cluster.step_dispatch = plugin_discount c.Cluster.step_dispatch;
        per_edge = plugin_discount c.Cluster.per_edge;
        per_property = plugin_discount c.Cluster.per_property;
        memo_op = plugin_discount c.Cluster.memo_op;
      };
  }

let options ~memory_capacity =
  {
    Async_engine.default_options with
    Async_engine.memory_capacity = Some memory_capacity;
    swap_penalty = 60;
  }

let run ?common ?(memory_capacity = 384 * 1024 * 1024) ~workers ~base_config ~graph
    submissions =
  let report =
    Async_engine.run ~options:(options ~memory_capacity) ?common
      ~cluster_config:(cluster_config ~workers ~base:base_config)
      ~channel_config:Channel.default_config ~graph submissions
  in
  { report with Engine.engine = "single-node" }

let start ?common ?(memory_capacity = 384 * 1024 * 1024) ~workers ~base_config ~graph () =
  let h =
    Async_engine.create ~options:(options ~memory_capacity) ?common
      ~cluster_config:(cluster_config ~workers ~base:base_config)
      ~channel_config:Channel.default_config ~graph ()
  in
  {
    h with
    Engine.sh_name = "single-node";
    sh_finish = (fun () -> { (h.Engine.sh_finish ()) with Engine.engine = "single-node" });
  }
