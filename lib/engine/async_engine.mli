(** The asynchronous PSTM runtime (GraphDance's engine), plus the paper's
    comparison systems implemented on the same codebase:

    - {!Banyan_like}: dataflow with per-operator instantiation in every
      worker (scheduling overhead grows with live operators).
    - {!Gaia_like}: the same, plus centralized stateful operators.
    - [shared_state]: the non-partitioned graph model of Figure 8.
    - [weight_coalescing = false]: the Figure 10/11 ablation. *)

type flavor =
  | Graphdance
  | Banyan_like
  | Gaia_like

val flavor_name : flavor -> string

type options = {
  flavor : flavor;
  weight_coalescing : bool;
  shared_state : bool;
  quantum : int;
  seed : int;
  mem_capacity : int option;
      (** per-node memory budget; a graph exceeding the cluster total
          makes data access pay [swap_penalty] (the single-node study) *)
  swap_penalty : int;
  partition : Partition.strategy; (** the H of the partitioned graph model *)
}

val default_options : options

(** Run the submissions to completion (or until [deadline]) on a simulated
    cluster; returns latencies, rows, and channel metrics.

    [check] enables the runtime sanitizer: per-exec weight conservation,
    tracker overshoot detection, and (when no deadline cuts the run
    short) termination of every query plus memo emptiness at the end;
    the first violated invariant raises {!Engine.Check_violation}.

    [obs] attaches a query-scoped recorder (trace spans per step /
    flush / quantum, per-query instants, flight-recorder series, and
    per-step operator stats); the default disabled recorder costs one
    branch per emission site. *)
val run :
  ?options:options ->
  ?obs:Pstm_obs.Recorder.t ->
  ?check:bool ->
  ?deadline:Sim_time.t ->
  cluster_config:Cluster.config ->
  channel_config:Channel.config ->
  graph:Graph.t ->
  Engine.submission array ->
  Engine.report
