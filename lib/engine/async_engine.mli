(** The asynchronous PSTM runtime (GraphDance's engine), plus the paper's
    comparison systems implemented on the same codebase:

    - {!Banyan_like}: dataflow with per-operator instantiation in every
      worker (scheduling overhead grows with live operators).
    - {!Gaia_like}: the same, plus centralized stateful operators.
    - [shared_state]: the non-partitioned graph model of Figure 8.
    - [weight_coalescing = false]: the Figure 10/11 ablation. *)

type flavor =
  | Graphdance
  | Banyan_like
  | Gaia_like

val flavor_name : flavor -> string

(** Knobs of the online repartitioner (only read when
    [partition = Partition.Adaptive]). Refinement rounds are triggered
    lazily from the remote-dispatch path: a round fires when at least
    [min_traffic] cross-partition traversals have been profiled since the
    last round and [refine_interval] simulated time has elapsed. *)
type adaptive_options = {
  refine_interval : Sim_time.t;  (** minimum spacing between refinement rounds *)
  min_traffic : int;  (** fresh profiled traversals needed to consider a round *)
  max_imbalance : float;  (** per-partition size cap, as a factor of the mean *)
  max_heat_imbalance : float;
      (** per-partition profiled-traffic cap, as a factor of the mean —
          bounds how much hot work co-location may concentrate *)
  max_moves : int;  (** migration budget per refinement round *)
}

val default_adaptive : adaptive_options

type options = {
  flavor : flavor;
  weight_coalescing : bool;
  shared_state : bool;
  quantum : int;
  memory_capacity : int option;
      (** per-node memory budget; a graph exceeding the cluster total
          makes data access pay [swap_penalty] (the single-node study) *)
  swap_penalty : int;
  partition : Partition.strategy; (** the H of the partitioned graph model *)
  adaptive : adaptive_options;
      (** online-repartitioning knobs, read only under [Partition.Adaptive] *)
  initial_assignment : int array option;
      (** warm-start vertex→partition map for [Partition.Adaptive] (e.g. a
          refinement computed offline from a profiled run) *)
  tracker_fanout : int option;
      (** hierarchical progress tracking: workers form a fanout-ary
          delegate tree rooted at each query's coordinator (so the root
          tier stays sharded across workers by qid), and coalesced
          finished weights climb the tree one merged message per hop.
          [None] (the default) keeps the paper's flat design, in which
          the coordinator absorbs O(workers) progress messages per flush
          epoch. *)
  delegate_hold : Sim_time.t;
      (** hierarchical tracking only: how long a delegate accumulates
          subtree weight before forwarding one merged message up the
          tree. Larger holds merge more flush epochs per message (less
          progress traffic) but delay termination detection by up to
          tree-depth x hold per phase. Ignored when [tracker_fanout] is
          [None]. *)
}

val default_options : options

(** Run the submissions to completion (or until [common.deadline]) on a
    simulated cluster; returns latencies, rows, and channel metrics.

    [common] carries the cross-cutting knobs shared by every engine
    ({!Engine.Common}): recorder, sanitizer mode, deadline, placement
    seed and an optional fault schedule.

    [common.check] enables the runtime sanitizer: per-exec weight
    conservation, tracker overshoot detection, and (when neither a
    deadline nor an abandoned packet cut delivery short) termination of
    every query plus memo emptiness at the end; the first violated
    invariant raises {!Engine.Check_violation}.

    [common.faults] attaches a deterministic fault plane: packets can
    drop, duplicate or take delay spikes, nodes can run slow or pause —
    and the channel switches to sequence-numbered reliable delivery so
    completed queries still return exact results. Queries that cannot
    finish (a partition paused past the deadline, a packet abandoned
    after max retries) degrade to TIMEOUT with their memos reclaimed
    rather than wedging the tracker. *)
val run :
  ?options:options ->
  ?common:Engine.Common.t ->
  cluster_config:Cluster.config ->
  channel_config:Channel.config ->
  graph:Graph.t ->
  Engine.submission array ->
  Engine.report

(** Open a service session on the engine (see {!Engine.service_handle}):
    the query service layer submits, cancels and observes completions
    while the simulation runs, instead of handing over a closed array.
    [run] is [create] + submit-all + drive-to-completion + finish, so the
    two entry points cannot drift. *)
val create :
  ?options:options ->
  ?common:Engine.Common.t ->
  cluster_config:Cluster.config ->
  channel_config:Channel.config ->
  graph:Graph.t ->
  unit ->
  Engine.service_handle

val start :
  ?options:options ->
  ?common:Engine.Common.t ->
  cluster_config:Cluster.config ->
  channel_config:Channel.config ->
  graph:Graph.t ->
  unit ->
  Engine.service_handle
