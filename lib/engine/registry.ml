(* Engine registry: every engine behind the uniform {!Engine.S} surface.

   The concrete engines keep richer native signatures (async options,
   BSP profiles, topology configs); the registry wraps each as a
   first-class module with the topology fixed at [make] time, so the CLI
   and benchmarks dispatch purely by name. This module sits outside
   engine.ml because the engines themselves depend on Engine. *)

let local_report (s : Engine.submission array) rows_of =
  (* The oracle has no clock or cluster; synthesize a report so it fits
     the common surface (zero metrics, instant completion). *)
  {
    Engine.engine = "local";
    queries =
      Array.mapi
        (fun qid (sub : Engine.submission) ->
          {
            Engine.qid;
            name = Program.name sub.Engine.program;
            submitted = sub.Engine.at;
            completed = Some sub.Engine.at;
            rows = rows_of sub;
          })
        s;
    makespan =
      Array.fold_left (fun acc (sub : Engine.submission) -> max acc sub.Engine.at) Sim_time.zero s;
    metrics = Metrics.create ();
    events = 0;
    worker_busy = [| Sim_time.zero |];
  }

let make ?(cluster_config = Cluster.default_config)
    ?(channel_config = Channel.default_config) () : (string * (module Engine.S)) list =
  let async_flavor flavor : (module Engine.S) =
    (module struct
      let name = Async_engine.flavor_name flavor

      let run ?common ~graph submissions =
        let options = { Async_engine.default_options with Async_engine.flavor } in
        Async_engine.run ~options ?common ~cluster_config ~channel_config ~graph submissions
    end)
  in
  let bsp profile : (module Engine.S) =
    (module struct
      let name = Bsp_engine.profile_name profile

      let run ?common ~graph submissions =
        Bsp_engine.run ~profile ?common ~cluster_config ~graph submissions
    end)
  in
  let single_node : (module Engine.S) =
    (module struct
      let name = "single-node"

      let run ?common ~graph submissions =
        Single_node_engine.run ?common
          ~workers:(cluster_config.Cluster.n_nodes * cluster_config.Cluster.workers_per_node)
          ~base_config:cluster_config ~graph submissions
    end)
  in
  let local : (module Engine.S) =
    (module struct
      let name = "local"

      let run ?common ~graph submissions =
        local_report submissions (fun (sub : Engine.submission) ->
            Local_engine.run ?common graph sub.Engine.program)
    end)
  in
  [
    ("graphdance", async_flavor Async_engine.Graphdance);
    ("banyan-like", async_flavor Async_engine.Banyan_like);
    ("gaia-like", async_flavor Async_engine.Gaia_like);
    ("bsp", bsp Bsp_engine.Ablation);
    ("tigergraph-role", bsp Bsp_engine.Tigergraph_role);
    ("single-node", single_node);
    ("local", local);
  ]

let default = make ()

let names ?(registry = default) () = List.map fst registry

(* "async" survives as an alias for the flagship engine. *)
let resolve_name name = match name with "async" -> "graphdance" | n -> n

let find ?(registry = default) name =
  List.assoc_opt (resolve_name name) registry

let find_exn ?(registry = default) name =
  match find ~registry name with
  | Some e -> e
  | None ->
    invalid_arg
      (Fmt.str "unknown engine %S (expected one of: %s)" name
         (String.concat ", " (names ~registry ())))
