(* Engine registry: every engine behind the uniform {!Engine.S} surface.

   The concrete engines keep richer native signatures (async options,
   BSP profiles, topology configs); the registry wraps each as a
   first-class module with the topology fixed at [make] time, so the CLI
   and benchmarks dispatch purely by name. This module sits outside
   engine.ml because the engines themselves depend on Engine. *)

(* The oracle has no clock or cluster; its service handle runs a private
   event queue where every query completes the instant it launches
   (zero metrics, queue wait still counts from [at]). A cancellation can
   therefore only catch a query whose arrival lies in the future; the
   per-query [deadline] never fires (nothing outlives its own instant). *)
let local_start ?common ~graph () =
  let events = Event_queue.create () in
  let queries : (int, Engine.query_report) Hashtbl.t = Hashtbl.create 16 in
  let next_qid = ref 0 in
  let on_terminal : (int -> Engine.outcome -> unit) ref = ref (fun _ _ -> ()) in
  let query qid =
    match Hashtbl.find_opt queries qid with
    | Some q -> q
    | None -> Fmt.invalid_arg "local: unknown query %d" qid
  in
  let set_outcome qid outcome =
    let q = query qid in
    if q.Engine.outcome = Engine.Timed_out then begin
      Hashtbl.replace queries qid { q with Engine.outcome };
      !on_terminal qid outcome
    end
  in
  let submit (sub : Engine.submission) =
    let qid = !next_qid in
    incr next_qid;
    (* Pending state is encoded as [Timed_out] until the launch event
       flips it; only the final state ever leaves this handle. *)
    Hashtbl.add queries qid
      {
        Engine.qid;
        name = Program.name sub.Engine.program;
        tenant = sub.Engine.tenant;
        priority = sub.Engine.priority;
        submitted = sub.Engine.at;
        outcome = Engine.Timed_out;
        rows = [];
      };
    let at = max sub.Engine.at (Event_queue.now events) in
    Event_queue.schedule_at events ~time:at (fun () ->
        let q = query qid in
        if q.Engine.outcome = Engine.Timed_out then begin
          let rows = Local_engine.run ?common graph sub.Engine.program in
          Hashtbl.replace queries qid
            { q with Engine.outcome = Engine.Completed at; rows };
          !on_terminal qid (Engine.Completed at)
        end);
    qid
  in
  {
    Engine.sh_name = "local";
    sh_submit = submit;
    sh_cancel =
      (fun ~qid ~at ->
        let t = max at (Event_queue.now events) in
        Event_queue.schedule_at events ~time:t (fun () -> set_outcome qid Engine.Cancelled));
    sh_at = (fun t f -> Event_queue.schedule_at events ~time:(max t (Event_queue.now events)) f);
    sh_now = (fun () -> Event_queue.now events);
    sh_on_terminal = (fun f -> on_terminal := f);
    sh_drive =
      (fun ~until ->
        match until with
        | None -> Event_queue.run_to_completion events
        | Some t -> Event_queue.run_until events ~time:t);
    sh_finish =
      (fun () ->
        let reports = Array.init !next_qid query in
        let makespan =
          Array.fold_left
            (fun acc q ->
              match Engine.completed_at q with None -> acc | Some c -> max acc c)
            Sim_time.zero reports
        in
        {
          Engine.engine = "local";
          queries = reports;
          makespan;
          metrics = Metrics.create ();
          events = 0;
          worker_busy = [| Sim_time.zero |];
        })
  }

let make ?(cluster_config = Cluster.default_config)
    ?(channel_config = Channel.default_config) ?tracker_fanout () :
    (string * (module Engine.S)) list =
  let async_flavor flavor : (module Engine.S) =
    (module struct
      let name = Async_engine.flavor_name flavor

      let options =
        { Async_engine.default_options with Async_engine.flavor; tracker_fanout }

      let run ?common ~graph submissions =
        Async_engine.run ~options ?common ~cluster_config ~channel_config ~graph submissions

      let start ?common ~graph () =
        Async_engine.create ~options ?common ~cluster_config ~channel_config ~graph ()
    end)
  in
  let bsp profile : (module Engine.S) =
    (module struct
      let name = Bsp_engine.profile_name profile

      let run ?common ~graph submissions =
        Bsp_engine.run ~profile ?common ~cluster_config ~graph submissions

      let start ?common ~graph () = Bsp_engine.create ~profile ?common ~cluster_config ~graph ()
    end)
  in
  let single_node : (module Engine.S) =
    (module struct
      let name = "single-node"
      let workers = cluster_config.Cluster.n_nodes * cluster_config.Cluster.workers_per_node

      let run ?common ~graph submissions =
        Single_node_engine.run ?common ~workers ~base_config:cluster_config ~graph submissions

      let start ?common ~graph () =
        Single_node_engine.start ?common ~workers ~base_config:cluster_config ~graph ()
    end)
  in
  let local : (module Engine.S) =
    (module struct
      let name = "local"
      let start = local_start
      let run ?common ~graph submissions = Engine.run_via_start start ?common ~graph submissions
    end)
  in
  [
    ("graphdance", async_flavor Async_engine.Graphdance);
    ("banyan-like", async_flavor Async_engine.Banyan_like);
    ("gaia-like", async_flavor Async_engine.Gaia_like);
    ("bsp", bsp Bsp_engine.Ablation);
    ("tigergraph-role", bsp Bsp_engine.Tigergraph_role);
    ("single-node", single_node);
    ("local", local);
  ]

let default = make ()

let names ?(registry = default) () = List.map fst registry

(* "async" survives as an alias for the flagship engine. *)
let resolve_name name = match name with "async" -> "graphdance" | n -> n

let find ?(registry = default) name =
  List.assoc_opt (resolve_name name) registry

let find_exn ?(registry = default) name =
  match find ~registry name with
  | Some e -> e
  | None ->
    invalid_arg
      (Fmt.str "unknown engine %S (expected one of: %s)" name
         (String.concat ", " (names ~registry ())))
