(* Query memoranda (§III-B): per-partition temporary key-value stores.

   One memo per partition; only the worker owning the partition touches
   it, so no synchronization is needed (that absence is precisely the
   benefit the partitioned model buys in Figure 8's non-partitioned
   ablation). Records are scoped to the creating query — keyed by query id
   first — and [clear_query] drops a query's whole footprint when it
   terminates, as the model prescribes.

   Keys within a query are (label, value) pairs, where the label is a
   user- or compiler-chosen discriminator (Distance, Seen, JoinA#3, ...)
   and the value is an arbitrary property value. Entries hold either a
   scalar, a partitionable partial aggregate, or the row lists of a
   double-pipelined join side. *)

type entry =
  | Scalar of Value.t
  | Partial of Aggregate.t
  | Rows of Value.t array list

module Key = struct
  type t = int * Value.t (* label, key value *)

  let equal (l1, v1) (l2, v2) = l1 = l2 && Value.equal v1 v2
  let hash (l, v) = (l * 31) + Value.hash v
end

module Table = Hashtbl.Make (Key)

type t = {
  queries : (int, entry Table.t) Hashtbl.t; (* query id -> its records *)
  mutable ops : int; (* probe/update count, for CPU accounting *)
  mutable peak_entries : int;
  mutable live_entries : int;
}

let create () = { queries = Hashtbl.create 8; ops = 0; peak_entries = 0; live_entries = 0 }

let ops t = t.ops
let peak_entries t = t.peak_entries
let live_entries t = t.live_entries

let table t ~qid =
  match Hashtbl.find_opt t.queries qid with
  | Some table -> table
  | None ->
    let table = Table.create 64 in
    Hashtbl.add t.queries qid table;
    table

let grew t =
  t.live_entries <- t.live_entries + 1;
  if t.live_entries > t.peak_entries then t.peak_entries <- t.live_entries

let find_opt t ~qid ~label key =
  t.ops <- t.ops + 1;
  Table.find_opt (table t ~qid) (label, key)

let set t ~qid ~label key entry =
  t.ops <- t.ops + 1;
  let table = table t ~qid in
  if not (Table.mem table (label, key)) then grew t;
  Table.replace table (label, key) entry

(* Test-and-set for deduplication: true iff the key was absent. *)
let add_if_absent t ~qid ~label key =
  t.ops <- t.ops + 1;
  let table = table t ~qid in
  if Table.mem table (label, key) then false
  else begin
    grew t;
    Table.replace table (label, key) (Scalar Value.Null);
    true
  end

(* Minimum-distance update for the Visit step. *)
type visit_outcome =
  | First_visit
  | Improved
  | Not_improved

let min_int_update t ~qid ~label key d =
  t.ops <- t.ops + 1;
  let table = table t ~qid in
  match Table.find_opt table (label, key) with
  | None ->
    grew t;
    Table.replace table (label, key) (Scalar (Value.Int d));
    First_visit
  | Some (Scalar (Value.Int best)) when d < best ->
    Table.replace table (label, key) (Scalar (Value.Int d));
    Improved
  | Some _ -> Not_improved

(* Fetch-or-create the partial aggregate of step [label]. *)
let partial t ~qid ~label agg =
  t.ops <- t.ops + 1;
  let table = table t ~qid in
  match Table.find_opt table (label, Value.Null) with
  | Some (Partial p) -> p
  | Some _ -> invalid_arg "Memo.partial: label holds a non-aggregate entry"
  | None ->
    grew t;
    let p = Aggregate.create agg in
    Table.replace table (label, Value.Null) (Partial p);
    p

let partial_opt t ~qid ~label =
  t.ops <- t.ops + 1;
  match Table.find_opt (table t ~qid) (label, Value.Null) with
  | Some (Partial p) -> Some p
  | Some _ -> invalid_arg "Memo.partial_opt: label holds a non-aggregate entry"
  | None -> None

(* Append a row to a join side's bucket and return the opposite bucket. *)
let rows_add t ~qid ~label key row =
  t.ops <- t.ops + 1;
  let table = table t ~qid in
  match Table.find_opt table (label, key) with
  | Some (Rows rows) -> Table.replace table (label, key) (Rows (row :: rows))
  | Some _ -> invalid_arg "Memo.rows_add: label holds a non-rows entry"
  | None ->
    grew t;
    Table.replace table (label, key) (Rows [ row ])

let rows_get t ~qid ~label key =
  t.ops <- t.ops + 1;
  match Table.find_opt (table t ~qid) (label, key) with
  | Some (Rows rows) -> rows
  | Some _ -> invalid_arg "Memo.rows_get: label holds a non-rows entry"
  | None -> []

(* Wire size of an entry, for costing migration messages. *)
let entry_bytes = function
  | Scalar v -> 16 + Value.bytes v
  | Partial p -> 16 + Aggregate.bytes p
  | Rows rows ->
    List.fold_left
      (fun acc row -> acc + 8 + Array.fold_left (fun a v -> a + Value.bytes v) 0 row)
      16 rows

(* Remove and return every record keyed by [key] — any label, any query —
   for re-homing when the key's vertex migrates to another partition.
   Aggregate partials are keyed by Value.Null, so they never match a
   vertex key and stay put (they are pulled from all workers anyway).
   Output is sorted by (qid, label): the order entries serialize into a
   migration message must not depend on hash-bucket layout. *)
let extract_for_key t key =
  (* det-ok: the qids are sorted right below *)
  let qids = Hashtbl.fold (fun qid _ acc -> qid :: acc) t.queries [] in
  let qids = List.sort Int.compare qids in
  List.concat_map
    (fun qid ->
      let table = Hashtbl.find t.queries qid in
      let matches =
        Table.fold
          (fun (label, k) entry acc ->
            if Value.equal k key then (label, entry) :: acc else acc)
          table []
      in
      let matches = List.sort (fun (l1, _) (l2, _) -> Int.compare l1 l2) matches in
      t.ops <- t.ops + 1 + List.length matches;
      List.iter
        (fun (label, _) ->
          Table.remove table (label, key);
          t.live_entries <- t.live_entries - 1)
        matches;
      List.map (fun (label, entry) -> (qid, label, entry)) matches)
    qids

(* Drop a terminated query's records (automatic clearing of §III-B). *)
let clear_query t qid =
  match Hashtbl.find_opt t.queries qid with
  | None -> ()
  | Some table ->
    t.live_entries <- t.live_entries - Table.length table;
    Hashtbl.remove t.queries qid
