(** The PSTM step ISA: the compiled form of a traversal program.

    Control flow is explicit (each step names its successors by index), so
    multi-hop loops and double-pipelined joins execute on a flat array
    interpreter in every engine. *)

type expr =
  | Const of Value.t
  | Reg of int
  | Vertex_id
  | Vertex_label
  | Prop of int
  | Prop_of of { reg : int; key : int }
  | Add of expr * expr
  | Pair of expr * expr

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type pred =
  | True
  | Cmp of cmp * expr * expr
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

val eval_expr : Graph.t -> vertex:int -> regs:Value.t array -> expr -> Value.t
val eval_pred : Graph.t -> vertex:int -> regs:Value.t array -> pred -> bool

(** Property-column reads performed by an expression (charged CPU time). *)
val expr_prop_reads : expr -> int

val pred_prop_reads : pred -> int

(** Highest register index used, or -1. *)
val max_reg_expr : expr -> int

val max_reg_pred : pred -> int

(** Apply [f] to every register an expression/predicate reads (with
    repetitions); drives the verifier's def-before-use analysis. *)
val iter_regs_expr : (int -> unit) -> expr -> unit

val iter_regs_pred : (int -> unit) -> pred -> unit

type agg =
  | Count
  | Sum of expr
  | Max of expr
  | Min of expr
  | Topk of { k : int; score : expr; output : expr }
      (** best [k] by descending score; ties broken by ascending output *)
  | Collect of { expr : expr; limit : int option }
  | Group_count of expr

val agg_prop_reads : agg -> int
val iter_regs_agg : (int -> unit) -> agg -> unit

type side =
  | Side_a
  | Side_b

type op =
  | Index_lookup of { vertex_label : int option; key : int; value : Value.t }
  | Scan of { vertex_label : int option }
  | Expand of { dir : Graph.direction; edge_label : int option }
  | Filter of pred
  | Set_reg of { reg : int; expr : expr }
  | Move_to of { reg : int }
  | Dedup of { by : expr }
  | Visit of { dist_reg : int; max_hops : int; cont : int; emit_improved : bool }
  | Join of {
      join_id : int;
      side : side;
      key : expr;
      store : expr array;
      load_regs : int array;
      cont : int;
    }
  | Aggregate of { agg : agg; reg : int }
  | Emit of expr array

type t = {
  op : op;
  next : int; (** successor step index; -1 when terminal *)
}

val is_source : op -> bool

(** Partition-routing discipline of an op (the h_psi of §III-A). *)
type routing =
  | By_vertex
  | By_key of expr
  | By_coordinator

val routing : op -> routing
val op_name : op -> string

(** [op_name] plus the plan-relevant parameters, for EXPLAIN-style
    operator tables. *)
val op_summary : op -> string
val pp : Format.formatter -> t -> unit
