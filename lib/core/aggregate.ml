(* Partial-aggregate state (§III-C).

   Aggregations with commutative, associative combine functions are
   partitionable: each worker folds its local traversers into a partial
   state held in the partition memo, and when the feeding subquery
   terminates the partials are combined at the coordinator. [accumulate],
   [merge] and [finalize] are exactly that lifecycle. *)

type t =
  | Count_st of { mutable n : int }
  | Sum_st of { mutable total : Value.t }
  | Max_st of { mutable best : Value.t }
  | Min_st of { mutable best : Value.t }
  | Topk_st of { k : int; acc : (Value.t * Value.t) Topk.t }
  | Collect_st of { limit : int option; mutable items : Value.t list; mutable n : int }
  | Group_st of { counts : (Value.t, int) Hashtbl.t }

(* Descending score, ties broken by ascending output (the paper's k-hop
   example: "10 most weighted ... ties broken by vertex id"). *)
let topk_cmp (s1, o1) (s2, o2) =
  let c = Value.compare s1 s2 in
  if c <> 0 then c else Value.compare o2 o1

let create (agg : Step.agg) =
  match agg with
  | Count -> Count_st { n = 0 }
  | Sum _ -> Sum_st { total = Value.Null }
  | Max _ -> Max_st { best = Value.Null }
  | Min _ -> Min_st { best = Value.Null }
  | Topk { k; _ } ->
    Topk_st { k; acc = Topk.create ~k ~cmp:topk_cmp ~dummy:(Value.Null, Value.Null) }
  | Collect { limit; _ } -> Collect_st { limit; items = []; n = 0 }
  | Group_count _ -> Group_st { counts = Hashtbl.create 16 }

(* Fold one traverser into the partial state. The expressions of [agg]
   are evaluated in the traverser's context. *)
let accumulate (agg : Step.agg) t graph ~vertex ~regs =
  let eval e = Step.eval_expr graph ~vertex ~regs e in
  match agg, t with
  | Count, Count_st st -> st.n <- st.n + 1
  | Sum e, Sum_st st -> st.total <- Value.add st.total (eval e)
  | Max e, Max_st st ->
    let v = eval e in
    if Value.is_null st.best || Value.compare v st.best > 0 then st.best <- v
  | Min e, Min_st st ->
    let v = eval e in
    if Value.is_null st.best || Value.compare v st.best < 0 then st.best <- v
  | Topk { score; output; _ }, Topk_st st -> Topk.add st.acc (eval score, eval output)
  | Collect { expr; limit }, Collect_st st ->
    let keep = match limit with None -> true | Some l -> st.n < l in
    if keep then begin
      st.items <- eval expr :: st.items;
      st.n <- st.n + 1
    end
  | Group_count e, Group_st st ->
    let key = eval e in
    let n = Option.value ~default:0 (Hashtbl.find_opt st.counts key) in
    Hashtbl.replace st.counts key (n + 1)
  | _ -> invalid_arg "Aggregate.accumulate: state does not match aggregation"

let merge ~into t =
  match into, t with
  | Count_st a, Count_st b -> a.n <- a.n + b.n
  | Sum_st a, Sum_st b -> a.total <- Value.add a.total b.total
  | Max_st a, Max_st b ->
    if (not (Value.is_null b.best)) && (Value.is_null a.best || Value.compare b.best a.best > 0)
    then a.best <- b.best
  | Min_st a, Min_st b ->
    if (not (Value.is_null b.best)) && (Value.is_null a.best || Value.compare b.best a.best < 0)
    then a.best <- b.best
  | Topk_st a, Topk_st b -> Topk.merge ~into:a.acc b.acc
  | Collect_st a, Collect_st b ->
    let keep = match a.limit with None -> max_int | Some l -> max 0 (l - a.n) in
    let taken = List.filteri (fun i _ -> i < keep) (List.rev b.items) in
    a.items <- List.rev_append taken a.items;
    a.n <- a.n + List.length taken
  | Group_st a, Group_st b ->
    (* [finalize] sorts the groups with Value.compare before emitting, so
       iteration order here is unobservable. *)
    (* det-ok: per-key counter addition is commutative across merge order *)
    Hashtbl.iter
      (fun key n ->
        let m = Option.value ~default:0 (Hashtbl.find_opt a.counts key) in
        Hashtbl.replace a.counts key (m + n))
      b.counts
  | _ -> invalid_arg "Aggregate.merge: mismatched partial states"

let finalize = function
  | Count_st st -> Value.Int st.n
  | Sum_st st -> (match st.total with Value.Null -> Value.Int 0 | v -> v)
  | Max_st st -> st.best
  | Min_st st -> st.best
  | Topk_st st -> Value.List (List.map snd (Topk.to_sorted_list st.acc))
  | Collect_st st -> Value.List (List.rev st.items)
  | Group_st st ->
    (* det-ok: pairs sorted by Value.compare on the next line *)
    let pairs = Hashtbl.fold (fun k n acc -> (k, n) :: acc) st.counts [] in
    let pairs = List.sort (fun (a, _) (b, _) -> Value.compare a b) pairs in
    Value.List (List.map (fun (k, n) -> Value.List [ k; Value.Int n ]) pairs)

(* Serialized size of a partial state: charged when partials travel to the
   coordinator for the final combine. *)
let bytes = function
  | Count_st _ -> 8
  | Sum_st st -> Value.bytes st.total
  | Max_st st -> Value.bytes st.best
  | Min_st st -> Value.bytes st.best
  | Topk_st st ->
    List.fold_left
      (fun acc (s, o) -> acc + Value.bytes s + Value.bytes o)
      8 (Topk.to_sorted_list st.acc)
  | Collect_st st -> List.fold_left (fun acc v -> acc + Value.bytes v) 8 st.items
  | Group_st st ->
    (* det-ok: commutative sum over entries *)
    Hashtbl.fold (fun k _ acc -> acc + Value.bytes k + 8) st.counts 8
