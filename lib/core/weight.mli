(** Progression weights: elements of the finite abelian group Z/2^63.

    Implements the paper's weight-throwing termination detection without
    floating-point underflow (Theorem 1): splits are uniform random group
    elements whose sum is exactly the parent weight, and the query has
    terminated exactly when the finished weights accumulate back to
    {!root}, up to a false-positive probability of at most (n-1)/2^63. *)

type t = private int

val zero : t

(** Initial weight of a query's root traverser. *)
val root : t

(** The group operation (wrapping 63-bit addition). *)
val add : t -> t -> t

val sub : t -> t -> t
val equal : t -> t -> bool
val is_zero : t -> bool

(** Uniform random group element. *)
val random : Prng.t -> t

(** Split into two shares summing to the input. *)
val split2 : Prng.t -> t -> t * t

(** Split into [n] shares summing to the input; each share uniform. *)
val split : Prng.t -> t -> n:int -> t array

(** Like {!split}, but writes the [n] shares into [out.(0 .. n-1)]
    (which must be at least [n] long) — the allocation-free form for the
    batched executor's hot path. *)
val split_into : Prng.t -> t -> t array -> n:int -> unit

(** Serialized size of a weight in a progress message, in bytes. *)
val bytes : int

val pp : Format.formatter -> t -> unit
