(* Compiled PSTM programs: a step array plus the static analysis every
   engine relies on.

   The analysis assigns each step to a *phase*. Aggregate steps are the
   only phase boundaries: everything feeding an aggregation belongs to one
   subquery (§III-C) whose termination is tracked separately, and the
   aggregation's continuation starts the next phase with a fresh root
   weight. Validation rejects malformed control flow up front so the
   engines can interpret steps without defensive checks. *)

type t = {
  name : string;
  steps : Step.t array;
  n_registers : int;
  entries : int array; (* indices of source steps, started in parallel *)
  phase_of_step : int array;
  n_phases : int;
  agg_of_phase : int option array; (* the Aggregate step closing each phase *)
  join_partner : int array; (* for Join steps, the opposite side's index *)
}

exception Invalid of string

let invalid fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

let successors step index =
  match step.Step.op with
  | Step.Emit _ -> []
  | Step.Visit { cont; _ } -> [ (step.Step.next, `Same); (cont, `Same) ]
  | Step.Join { cont; _ } -> [ (cont, `Same) ]
  | Step.Aggregate _ -> [ (step.Step.next, `Bump) ]
  | Step.Index_lookup _ | Step.Scan _ | Step.Expand _ | Step.Filter _ | Step.Set_reg _
  | Step.Move_to _ | Step.Dedup _ ->
    if step.Step.next = -1 then invalid "step %d (%s) has no successor" index (Step.op_name step.Step.op)
    else [ (step.Step.next, `Same) ]

let check_registers steps n_registers =
  let check_reg ctx r =
    if r < 0 || r >= n_registers then invalid "%s: register %d out of range" ctx r
  in
  let check_expr ctx e =
    let m = Step.max_reg_expr e in
    if m >= n_registers then invalid "%s: register %d out of range" ctx m
  in
  let check_pred ctx p =
    let m = Step.max_reg_pred p in
    if m >= n_registers then invalid "%s: register %d out of range" ctx m
  in
  Array.iteri
    (fun i step ->
      let ctx = Fmt.str "step %d (%s)" i (Step.op_name step.Step.op) in
      match step.Step.op with
      | Step.Index_lookup _ | Step.Scan _ | Step.Expand _ -> ()
      | Step.Filter p -> check_pred ctx p
      | Step.Set_reg { reg; expr } ->
        check_reg ctx reg;
        check_expr ctx expr
      | Step.Move_to { reg } -> check_reg ctx reg
      | Step.Dedup { by } -> check_expr ctx by
      | Step.Visit { dist_reg; _ } -> check_reg ctx dist_reg
      | Step.Join { key; store; load_regs; _ } ->
        check_expr ctx key;
        Array.iter (check_expr ctx) store;
        Array.iter (check_reg ctx) load_regs
      | Step.Aggregate { agg; reg } ->
        check_reg ctx reg;
        (match agg with
        | Step.Count -> ()
        | Step.Sum e | Step.Max e | Step.Min e
        | Step.Collect { expr = e; _ }
        | Step.Group_count e ->
          check_expr ctx e
        | Step.Topk { score; output; _ } ->
          check_expr ctx score;
          check_expr ctx output)
      | Step.Emit exprs -> Array.iter (check_expr ctx) exprs)
    steps

(* Pair up the two sides of each join; returns the partner array. *)
let check_join_pairing steps phase_of_step =
  let join_partner = Array.make (Array.length steps) (-1) in
  let sides = Hashtbl.create 4 in
  Array.iteri
    (fun i step ->
      match step.Step.op with
      | Step.Join { join_id; side; store; load_regs; _ } ->
        let a, b = Option.value ~default:(None, None) (Hashtbl.find_opt sides join_id) in
        let entry = Some (i, Array.length store, Array.length load_regs) in
        (match side with
        | Step.Side_a ->
          if a <> None then invalid "join %d has two A sides" join_id;
          Hashtbl.replace sides join_id (entry, b)
        | Step.Side_b ->
          if b <> None then invalid "join %d has two B sides" join_id;
          Hashtbl.replace sides join_id (a, entry))
      | _ -> ())
    steps;
  let ids =
    (* det-ok: ids sorted before use, so the first error reported is stable *)
    List.sort Int.compare (Hashtbl.fold (fun id _ acc -> id :: acc) sides [])
  in
  List.iter
    (fun join_id ->
      match Hashtbl.find sides join_id with
      | Some (ia, store_a, load_a), Some (ib, store_b, load_b) ->
        if store_a <> load_b then
          invalid "join %d: side A stores %d values but side B loads %d" join_id store_a load_b;
        if store_b <> load_a then
          invalid "join %d: side B stores %d values but side A loads %d" join_id store_b load_a;
        if phase_of_step.(ia) <> phase_of_step.(ib) then
          invalid "join %d: sides in different phases" join_id;
        join_partner.(ia) <- ib;
        join_partner.(ib) <- ia
      | _ -> invalid "join %d is missing a side" join_id)
    ids;
  join_partner

let make ~name ~steps ~n_registers ~entries =
  let n = Array.length steps in
  if n = 0 then invalid "empty program";
  if Array.length entries = 0 then invalid "program has no entry steps";
  if n_registers < 0 then invalid "negative register count";
  Array.iter
    (fun e ->
      if e < 0 || e >= n then invalid "entry index %d out of range" e;
      if not (Step.is_source steps.(e).Step.op) then
        invalid "entry step %d (%s) is not a source" e (Step.op_name steps.(e).Step.op))
    entries;
  Array.iteri
    (fun i step ->
      if Step.is_source step.Step.op && not (Array.exists (Int.equal i) entries) then
        invalid "source step %d is not listed as an entry" i)
    steps;
  (* Range-check successor indices. *)
  Array.iteri
    (fun i step ->
      let check_target ctx target =
        if target < 0 || target >= n then invalid "step %d: %s target %d out of range" i ctx target
      in
      (match step.Step.op with
      | Step.Emit _ ->
        if step.Step.next <> -1 then invalid "step %d: emit must be terminal" i
      | Step.Visit { cont; _ } ->
        check_target "next" step.Step.next;
        check_target "cont" cont
      | Step.Join { cont; _ } -> check_target "cont" cont
      | _ -> check_target "next" step.Step.next))
    steps;
  check_registers steps n_registers;
  (* Phase assignment by BFS from the entries. *)
  let phase_of_step = Array.make n (-1) in
  let queue = Queue.create () in
  Array.iter
    (fun e ->
      phase_of_step.(e) <- 0;
      Queue.add e queue)
    entries;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    let p = phase_of_step.(i) in
    List.iter
      (fun (j, bump) ->
        let q = match bump with `Same -> p | `Bump -> p + 1 in
        if phase_of_step.(j) = -1 then begin
          phase_of_step.(j) <- q;
          Queue.add j queue
        end
        else if phase_of_step.(j) <> q then
          invalid "step %d reachable in phases %d and %d" j phase_of_step.(j) q)
      (successors steps.(i) i)
  done;
  Array.iteri
    (fun i p -> if p = -1 then invalid "step %d (%s) is unreachable" i (Step.op_name steps.(i).Step.op))
    phase_of_step;
  let n_phases = 1 + Array.fold_left max 0 phase_of_step in
  let agg_of_phase = Array.make n_phases None in
  Array.iteri
    (fun i step ->
      match step.Step.op with
      | Step.Aggregate _ ->
        let p = phase_of_step.(i) in
        (match agg_of_phase.(p) with
        | None -> agg_of_phase.(p) <- Some i
        | Some other -> invalid "phase %d has two aggregate steps (%d and %d)" p other i)
      | _ -> ())
    steps;
  if agg_of_phase.(n_phases - 1) <> None then
    invalid "final phase ends in an aggregate with nowhere to continue";
  let join_partner = check_join_pairing steps phase_of_step in
  { name; steps; n_registers; entries; phase_of_step; n_phases; agg_of_phase; join_partner }

let name t = t.name
let steps t = t.steps
let step t i = t.steps.(i)
let n_steps t = Array.length t.steps
let n_registers t = t.n_registers
let entries t = t.entries
let n_phases t = t.n_phases
let phase_of_step t i = t.phase_of_step.(i)
let agg_of_phase t p = t.agg_of_phase.(p)

let join_partner t i =
  let p = t.join_partner.(i) in
  if p = -1 then invalid_arg "Program.join_partner: step is not a join side";
  p

let pp ppf t =
  Fmt.pf ppf "@[<v>program %s (%d regs, %d phases)@," t.name t.n_registers t.n_phases;
  Array.iteri
    (fun i step -> Fmt.pf ppf "  %2d [p%d] %a@," i t.phase_of_step.(i) Step.pp step)
    t.steps;
  Fmt.pf ppf "@]"
