(* The PSTM step ISA.

   A compiled traversal program is an array of steps; each traverser
   carries the index of the step it is about to execute (its psi in the
   paper's formalization) plus a register file holding its local variables
   (pi). The ISA is deliberately small: the Gremlin-level surface language
   (lib/query) compiles Has/Out/Values/Order/... down to these ops.

   Control flow is explicit: every step names its successor(s) by index, so
   loops (multi-hop traversals through [Visit]) and joins need no special
   interpreter machinery. *)

(* --- Expressions over a traverser's context --- *)

type expr =
  | Const of Value.t
  | Reg of int (* local variable *)
  | Vertex_id (* the traverser's current vertex, as Value.Vertex *)
  | Vertex_label (* label id of the current vertex, as Value.Int *)
  | Prop of int (* property of the current vertex *)
  | Prop_of of { reg : int; key : int } (* property of a vertex held in a register *)
  | Add of expr * expr
  | Pair of expr * expr (* 2-element list; composite keys *)

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type pred =
  | True
  | Cmp of cmp * expr * expr
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

let rec eval_expr graph ~vertex ~regs = function
  | Const v -> v
  | Reg r -> regs.(r)
  | Vertex_id -> Value.Vertex vertex
  | Vertex_label -> Value.Int (Graph.vertex_label graph vertex)
  | Prop key -> Graph.vertex_prop graph ~key vertex
  | Prop_of { reg; key } -> Graph.vertex_prop graph ~key (Value.vertex_exn regs.(reg))
  | Add (a, b) -> Value.add (eval_expr graph ~vertex ~regs a) (eval_expr graph ~vertex ~regs b)
  | Pair (a, b) ->
    Value.List [ eval_expr graph ~vertex ~regs a; eval_expr graph ~vertex ~regs b ]

let eval_cmp cmp a b =
  let c = Value.compare a b in
  match cmp with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec eval_pred graph ~vertex ~regs = function
  | True -> true
  | Cmp (cmp, a, b) ->
    eval_cmp cmp (eval_expr graph ~vertex ~regs a) (eval_expr graph ~vertex ~regs b)
  | And (p, q) -> eval_pred graph ~vertex ~regs p && eval_pred graph ~vertex ~regs q
  | Or (p, q) -> eval_pred graph ~vertex ~regs p || eval_pred graph ~vertex ~regs q
  | Not p -> not (eval_pred graph ~vertex ~regs p)

(* Number of property-column reads an expression performs; the simulator
   charges CPU time per read. *)
let rec expr_prop_reads = function
  | Const _ | Reg _ | Vertex_id | Vertex_label -> 0
  | Prop _ | Prop_of _ -> 1
  | Add (a, b) | Pair (a, b) -> expr_prop_reads a + expr_prop_reads b

let rec pred_prop_reads = function
  | True -> 0
  | Cmp (_, a, b) -> expr_prop_reads a + expr_prop_reads b
  | And (p, q) | Or (p, q) -> pred_prop_reads p + pred_prop_reads q
  | Not p -> pred_prop_reads p

let rec max_reg_expr = function
  | Const _ | Vertex_id | Vertex_label | Prop _ -> -1
  | Reg r | Prop_of { reg = r; _ } -> r
  | Add (a, b) | Pair (a, b) -> max (max_reg_expr a) (max_reg_expr b)

let rec max_reg_pred = function
  | True -> -1
  | Cmp (_, a, b) -> max (max_reg_expr a) (max_reg_expr b)
  | And (p, q) | Or (p, q) -> max (max_reg_pred p) (max_reg_pred q)
  | Not p -> max_reg_pred p

(* Register reads, for the static verifier's def-before-use analysis. *)
let rec iter_regs_expr f = function
  | Const _ | Vertex_id | Vertex_label | Prop _ -> ()
  | Reg r | Prop_of { reg = r; _ } -> f r
  | Add (a, b) | Pair (a, b) ->
    iter_regs_expr f a;
    iter_regs_expr f b

let rec iter_regs_pred f = function
  | True -> ()
  | Cmp (_, a, b) ->
    iter_regs_expr f a;
    iter_regs_expr f b
  | And (p, q) | Or (p, q) ->
    iter_regs_pred f p;
    iter_regs_pred f q
  | Not p -> iter_regs_pred f p

(* --- Aggregations (§III-C) --- *)

type agg =
  | Count
  | Sum of expr
  | Max of expr
  | Min of expr
  | Topk of { k : int; score : expr; output : expr } (* ties: smaller output wins *)
  | Collect of { expr : expr; limit : int option }
  | Group_count of expr

let agg_prop_reads = function
  | Count -> 0
  | Sum e | Max e | Min e | Collect { expr = e; _ } | Group_count e -> expr_prop_reads e
  | Topk { score; output; _ } -> expr_prop_reads score + expr_prop_reads output

let iter_regs_agg f = function
  | Count -> ()
  | Sum e | Max e | Min e | Collect { expr = e; _ } | Group_count e -> iter_regs_expr f e
  | Topk { score; output; _ } ->
    iter_regs_expr f score;
    iter_regs_expr f output

(* --- Steps --- *)

type side =
  | Side_a
  | Side_b

type op =
  (* Sources: spawn the initial traversers of a query. *)
  | Index_lookup of { vertex_label : int option; key : int; value : Value.t }
  | Scan of { vertex_label : int option }
  (* Movement: spawn one child per matching adjacent vertex. *)
  | Expand of { dir : Graph.direction; edge_label : int option }
  (* Per-traverser transforms. *)
  | Filter of pred
  | Set_reg of { reg : int; expr : expr }
  (* Stateful partitioned operators, backed by the partition memo. *)
  | Move_to of { reg : int }
    (* jump to the vertex held in a register (Gremlin's select of a bound
       vertex); the successor executes at that vertex's owner *)
  | Dedup of { by : expr }
  | Visit of { dist_reg : int; max_hops : int; cont : int; emit_improved : bool }
    (* memo-assisted multi-hop visit (Fig. 5): on first visit, emit a
       continuation traverser to [cont]; if the traversed distance improves
       the recorded one and is below [max_hops], loop to [next] (Expand). *)
  | Join of { join_id : int; side : side; key : expr; store : expr array; load_regs : int array; cont : int }
    (* double-pipelined join: insert [store] under [key] on this side's
       table, probe the other side's table, and for each match continue at
       [cont] with the matched payload written into [load_regs]. *)
  (* Phase boundary: fold traversers into a partitioned partial aggregate;
     when the phase terminates, the combined value lands in [reg] of a
     fresh continuation traverser starting at [next]. *)
  | Aggregate of { agg : agg; reg : int }
  (* Terminal: deliver a result row to the query coordinator. *)
  | Emit of expr array

type t = {
  op : op;
  next : int; (* successor step index; -1 when the op is terminal *)
}

let is_source = function Index_lookup _ | Scan _ -> true | _ -> false

(* Where a traverser must execute this op: at the owner of its current
   vertex (data locality) or at the owner of a computed key (the
   partitionable-property routing h_psi of §III-A). *)
type routing =
  | By_vertex
  | By_key of expr
  | By_coordinator (* results and aggregation continuations *)

let routing = function
  | Dedup { by } -> By_key by
  | Join { key; _ } -> By_key key
  | Emit _ -> By_coordinator
  | Index_lookup _ | Scan _ | Expand _ | Filter _ | Set_reg _ | Move_to _ | Visit _
  | Aggregate _ ->
    By_vertex

let op_name = function
  | Index_lookup _ -> "index_lookup"
  | Scan _ -> "scan"
  | Expand _ -> "expand"
  | Filter _ -> "filter"
  | Set_reg _ -> "set_reg"
  | Move_to _ -> "move_to"
  | Dedup _ -> "dedup"
  | Visit _ -> "visit"
  | Join _ -> "join"
  | Aggregate _ -> "aggregate"
  | Emit _ -> "emit"

(* Human-readable operator label for EXPLAIN-style output: op name plus
   the parameters that matter when reading a plan. *)
let op_summary op =
  let opt_label = function None -> "*" | Some l -> string_of_int l in
  match op with
  | Index_lookup { vertex_label; key; value } ->
    Printf.sprintf "index_lookup(label=%s, prop%d=%s)" (opt_label vertex_label) key
      (Fmt.str "%a" Value.pp value)
  | Scan { vertex_label } -> Printf.sprintf "scan(label=%s)" (opt_label vertex_label)
  | Expand { dir; edge_label } ->
    let dir_name = match dir with Graph.Out -> "out" | Graph.In -> "in" | Graph.Both -> "both" in
    Printf.sprintf "expand(%s, edge=%s)" dir_name (opt_label edge_label)
  | Filter _ -> "filter"
  | Set_reg { reg; _ } -> Printf.sprintf "set_reg(r%d)" reg
  | Move_to { reg } -> Printf.sprintf "move_to(r%d)" reg
  | Dedup _ -> "dedup"
  | Visit { dist_reg; max_hops; cont; emit_improved } ->
    Printf.sprintf "visit(r%d, max_hops=%d, cont=%d%s)" dist_reg max_hops cont
      (if emit_improved then ", emit_improved" else "")
  | Join { join_id; side; cont; _ } ->
    Printf.sprintf "join(#%d, %s, cont=%d)" join_id
      (match side with Side_a -> "a" | Side_b -> "b")
      cont
  | Aggregate { agg; reg } ->
    let agg_name =
      match agg with
      | Count -> "count"
      | Sum _ -> "sum"
      | Max _ -> "max"
      | Min _ -> "min"
      | Topk { k; _ } -> Printf.sprintf "top%d" k
      | Collect _ -> "collect"
      | Group_count _ -> "group_count"
    in
    Printf.sprintf "aggregate(%s -> r%d)" agg_name reg
  | Emit exprs -> Printf.sprintf "emit(%d cols)" (Array.length exprs)

let pp ppf t = Fmt.pf ppf "%s -> %d" (op_name t.op) t.next
