(* Distributed progress tracking (§IV-A).

   Two halves: the per-phase [tracker] living on the query coordinator,
   which accumulates finished weights and fires exactly when they sum back
   to the root weight; and the per-worker [coalescer], which implements
   weight coalescing — finished weights are merged locally (one integer
   addition each) and shipped to the tracker only when the worker flushes
   its message buffers, slashing the tracker's message load (Figure 11). *)

type tracker = {
  target : Weight.t;
  mutable acc : Weight.t;
  mutable receipts : int;
  mutable complete : bool;
}

let tracker ~target = { target; acc = Weight.zero; receipts = 0; complete = false }

type receipt =
  | Complete
  | Pending

(* Accumulate one (possibly coalesced) finished weight. Returns [Complete]
   exactly once, on the receipt that closes the phase. *)
let receive t w =
  if t.complete then Pending
  else begin
    t.acc <- Weight.add t.acc w;
    t.receipts <- t.receipts + 1;
    if Weight.equal t.acc t.target then begin
      t.complete <- true;
      Complete
    end
    else Pending
  end

(* Mark the tracker complete regardless of the accumulated weight. Only
   the Early_tracker_release protocol mutant calls this; it exists so the
   checker layer can prove it would notice a tracker that stops counting
   before Theorem 1's conservation sum closes. *)
let force_complete t = t.complete <- true

let is_complete t = t.complete
let receipts t = t.receipts
let accumulated t = t.acc
let target t = t.target

(* --- Worker-local weight coalescing --- *)

type coalescer = {
  pending : (int * int, Weight.t) Hashtbl.t; (* (query, phase) -> merged weight *)
  mutable additions : int; (* total weight additions performed locally *)
  mutable pending_adds : int; (* additions since the last drain *)
}

let coalescer () = { pending = Hashtbl.create 8; additions = 0; pending_adds = 0 }

let coalesce c ~qid ~phase w =
  c.additions <- c.additions + 1;
  c.pending_adds <- c.pending_adds + 1;
  let key = (qid, phase) in
  let acc = Option.value ~default:Weight.zero (Hashtbl.find_opt c.pending key) in
  Hashtbl.replace c.pending key (Weight.add acc w)

let is_empty c = Hashtbl.length c.pending = 0

(* How many finished weights are merged but not yet shipped; workers flush
   when idle or when this passes their batching threshold, mirroring the
   "ship with the next buffer flush" rule of §IV-A. *)
let pending_additions c = c.pending_adds

(* Remove and return all merged weights, ready to be sent to trackers. *)
let drain c =
  (* det-ok: the collected triples are sorted below before shipping *)
  let out = Hashtbl.fold (fun (qid, phase) w acc -> (qid, phase, w) :: acc) c.pending [] in
  Hashtbl.reset c.pending;
  c.pending_adds <- 0;
  (* Deterministic shipping order: (qid, phase) is a unique key, so the
     weight never participates in the comparison. *)
  List.sort
    (fun (q1, p1, _) (q2, p2, _) ->
      match Int.compare q1 q2 with
      | 0 -> Int.compare p1 p2
      | c -> c)
    out

let additions c = c.additions
