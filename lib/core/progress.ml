(* Distributed progress tracking (§IV-A).

   Three tiers: the per-phase [tracker] living on the query coordinator,
   which accumulates finished weights and fires exactly when they sum back
   to the root weight; the per-worker [coalescer], which implements
   weight coalescing — finished weights are merged locally (one integer
   addition each) and shipped upward only when the worker flushes its
   message buffers, slashing the tracker's message load (Figure 11); and
   the optional per-worker [delegate], the interior tier of hierarchical
   tracking — it merges the already-coalesced weights of an entire
   subtree of workers and ships one message per (query, phase) to its
   parent, so the root tracker absorbs O(fanout) messages per flush epoch
   instead of O(workers). Because every tier only ever *adds* weights and
   each weight travels exactly one path to the root, the conservation sum
   of Theorem 1 is preserved through any tree shape. *)

type tracker = {
  target : Weight.t;
  mutable acc : Weight.t;
  mutable receipts : int;
  mutable complete : bool;
}

let tracker ~target = { target; acc = Weight.zero; receipts = 0; complete = false }

type receipt =
  | Complete
  | Pending

(* Accumulate one (possibly coalesced) finished weight. Returns [Complete]
   exactly once, on the receipt that closes the phase. *)
let receive t w =
  if t.complete then Pending
  else begin
    t.acc <- Weight.add t.acc w;
    t.receipts <- t.receipts + 1;
    if Weight.equal t.acc t.target then begin
      t.complete <- true;
      Complete
    end
    else Pending
  end

(* Mark the tracker complete regardless of the accumulated weight. Only
   the Early_tracker_release protocol mutant calls this; it exists so the
   checker layer can prove it would notice a tracker that stops counting
   before Theorem 1's conservation sum closes. *)
let force_complete t = t.complete <- true

let is_complete t = t.complete
let receipts t = t.receipts
let accumulated t = t.acc
let target t = t.target

(* --- Worker-local weight coalescing --- *)

type coalescer = {
  pending : (int * int, Weight.t) Hashtbl.t; (* (query, phase) -> merged weight *)
  mutable additions : int; (* total weight additions performed locally *)
  mutable pending_adds : int; (* additions since the last drain *)
}

let coalescer () = { pending = Hashtbl.create 8; additions = 0; pending_adds = 0 }

let coalesce c ~qid ~phase w =
  c.additions <- c.additions + 1;
  c.pending_adds <- c.pending_adds + 1;
  let key = (qid, phase) in
  let acc = Option.value ~default:Weight.zero (Hashtbl.find_opt c.pending key) in
  Hashtbl.replace c.pending key (Weight.add acc w)

let is_empty c = Hashtbl.length c.pending = 0

(* How many finished weights are merged but not yet shipped; workers flush
   when idle or when this passes their batching threshold, mirroring the
   "ship with the next buffer flush" rule of §IV-A. *)
let pending_additions c = c.pending_adds

(* Remove and return all merged weights, ready to be sent to trackers. *)
let drain c =
  (* det-ok: the collected triples are sorted below before shipping *)
  let out = Hashtbl.fold (fun (qid, phase) w acc -> (qid, phase, w) :: acc) c.pending [] in
  Hashtbl.reset c.pending;
  c.pending_adds <- 0;
  (* Deterministic shipping order: (qid, phase) is a unique key, so the
     weight never participates in the comparison. *)
  List.sort
    (fun (q1, p1, _) (q2, p2, _) ->
      match Int.compare q1 q2 with
      | 0 -> Int.compare p1 p2
      | c -> c)
    out

let additions c = c.additions

(* Drop any weight still parked for [qid]: the query was cancelled or
   timed out, so the weight will never reach a tracker and must not
   linger as keyed state for the rest of the run. [pending_adds] is left
   alone — it is only a flush heuristic, and resetting it here would
   change when unrelated queries flush. *)
let discard_keys tbl ~qid =
  let doomed =
    (* det-ok: fold order is erased by the sort on the int pairs below *)
    Hashtbl.fold (fun (q, p) _ acc -> if q = qid then (q, p) :: acc else acc) tbl []
    |> List.sort (fun (q1, p1) (q2, p2) ->
           match Int.compare q1 q2 with 0 -> Int.compare p1 p2 | c -> c)
  in
  List.iter (Hashtbl.remove tbl) doomed

let discard_query c ~qid = discard_keys c.pending ~qid

(* --- Subtree delegate (hierarchical tracking's interior tier) --- *)

(* Same merge-then-drain discipline as the coalescer, but fed by whole
   subtrees rather than local task completions, and with its own receipt
   accounting so the per-tier load split is observable. *)
type delegate = {
  d_pending : (int * int, Weight.t) Hashtbl.t; (* (query, phase) -> merged subtree weight *)
  mutable merges : int; (* subtree weights absorbed *)
  mutable forwards : int; (* merged messages shipped upward *)
}

let delegate () = { d_pending = Hashtbl.create 8; merges = 0; forwards = 0 }

let delegate_absorb d ~qid ~phase w =
  d.merges <- d.merges + 1;
  let key = (qid, phase) in
  let acc = Option.value ~default:Weight.zero (Hashtbl.find_opt d.d_pending key) in
  Hashtbl.replace d.d_pending key (Weight.add acc w)

let delegate_is_empty d = Hashtbl.length d.d_pending = 0

let delegate_drain d =
  (* det-ok: the collected triples are sorted below before shipping *)
  let out = Hashtbl.fold (fun (qid, phase) w acc -> (qid, phase, w) :: acc) d.d_pending [] in
  Hashtbl.reset d.d_pending;
  d.forwards <- d.forwards + List.length out;
  List.sort
    (fun (q1, p1, _) (q2, p2, _) ->
      match Int.compare q1 q2 with
      | 0 -> Int.compare p1 p2
      | c -> c)
    out

let delegate_discard_query d ~qid = discard_keys d.d_pending ~qid

let delegate_merges d = d.merges
let delegate_forwards d = d.forwards
