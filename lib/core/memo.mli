(** Per-partition query memoranda (§III-B).

    Records are scoped to the creating query and dropped wholesale when it
    terminates. Only the owning worker accesses a memo, so operations are
    synchronization-free. *)

type entry =
  | Scalar of Value.t
  | Partial of Aggregate.t
  | Rows of Value.t array list

type t

val create : unit -> t

(** Cumulative probe/update count (for CPU-time accounting). *)
val ops : t -> int

val peak_entries : t -> int
val live_entries : t -> int
val find_opt : t -> qid:int -> label:int -> Value.t -> entry option
val set : t -> qid:int -> label:int -> Value.t -> entry -> unit

(** Deduplication test-and-set: [true] iff the key was absent. *)
val add_if_absent : t -> qid:int -> label:int -> Value.t -> bool

type visit_outcome =
  | First_visit
  | Improved
  | Not_improved

(** Record [d] as the distance of [key] if it improves the stored one. *)
val min_int_update : t -> qid:int -> label:int -> Value.t -> int -> visit_outcome

(** Fetch-or-create the partial aggregate stored under [label]. *)
val partial : t -> qid:int -> label:int -> Step.agg -> Aggregate.t

val partial_opt : t -> qid:int -> label:int -> Aggregate.t option

(** Double-pipelined join buckets. *)
val rows_add : t -> qid:int -> label:int -> Value.t -> Value.t array -> unit

val rows_get : t -> qid:int -> label:int -> Value.t -> Value.t array list

(** Wire size of an entry, for costing migration messages. *)
val entry_bytes : entry -> int

(** Remove and return every record keyed by [key] (any label, any query),
    as [(qid, label, entry)] sorted by (qid, label) — the re-homing side
    of vertex migration. Aggregate partials (keyed by [Value.Null]) never
    match a vertex key and stay put. *)
val extract_for_key : t -> Value.t -> (int * int * entry) list

(** Drop every record of a terminated query. *)
val clear_query : t -> int -> unit
