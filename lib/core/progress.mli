(** Weight-based progress tracking and termination detection (§IV-A). *)

type tracker

(** Tracker for one phase of one query; fires when finished weights sum to
    [target]. *)
val tracker : target:Weight.t -> tracker

type receipt =
  | Complete
  | Pending

(** Accumulate a finished weight; [Complete] is returned exactly once. *)
val receive : tracker -> Weight.t -> receipt

val is_complete : tracker -> bool

(** Mark the tracker complete regardless of accumulated weight. For the
    [Early_tracker_release] protocol mutant only — never called on a
    healthy path. *)
val force_complete : tracker -> unit

(** Number of weight receipts processed (Figure 11's tracker load). *)
val receipts : tracker -> int

(** Finished weight accumulated so far (reaches the root weight exactly
    at phase completion — Theorem 1). *)
val accumulated : tracker -> Weight.t

(** The root weight the tracker is waiting to see returned. *)
val target : tracker -> Weight.t

(** Worker-local weight coalescing: finished weights merge locally and
    ship only on buffer flush. *)
type coalescer

val coalescer : unit -> coalescer
val coalesce : coalescer -> qid:int -> phase:int -> Weight.t -> unit
val is_empty : coalescer -> bool

(** Finished weights merged since the last {!drain}. *)
val pending_additions : coalescer -> int

(** Remove all merged weights as [(qid, phase, weight)] triples in a
    deterministic order. *)
val drain : coalescer -> (int * int * Weight.t) list

(** Total local weight additions (each costs one integer add). *)
val additions : coalescer -> int

(** Drop any weight still parked for a cancelled or timed-out query; its
    weight will never reach a tracker. *)
val discard_query : coalescer -> qid:int -> unit

(** Subtree delegate: the interior tier of hierarchical progress
    tracking. Merges the coalesced weights of a whole worker subtree and
    ships one message per (query, phase) toward the root tracker. *)
type delegate

val delegate : unit -> delegate
val delegate_absorb : delegate -> qid:int -> phase:int -> Weight.t -> unit
val delegate_is_empty : delegate -> bool

(** Remove all merged subtree weights as [(qid, phase, weight)] triples
    in a deterministic order, counting one forward per triple. *)
val delegate_drain : delegate -> (int * int * Weight.t) list

(** Drop parked subtree weight for a terminated query. *)
val delegate_discard_query : delegate -> qid:int -> unit

(** Subtree weights absorbed / merged messages shipped upward (the
    per-tier load split of the Fig 9 extension). *)
val delegate_merges : delegate -> int

val delegate_forwards : delegate -> int
