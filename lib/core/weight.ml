(* Progression weights (§III-B and §IV-A of the paper).

   Every traverser carries a weight w; the root traverser starts with the
   whole query weight, spawning splits a parent's weight among children and
   a traverser that dies reports its weight as finished. The invariant

     sum of active weights + finished weight = root weight

   makes termination detection a single comparison at the tracker.

   Floating-point shares underflow, so, following the paper's Theorem 1,
   weights are elements of a finite abelian group: here Z/2^63, i.e. native
   OCaml ints under wrapping addition. A split of w draws the first n-1
   shares uniformly at random and sets the last to w minus their sum, so
   the shares always sum to w while each individual share is uniform. A
   false positive (a strict subset of weights summing to the root) occurs
   with probability at most (n-1)/2^63 — negligible. *)

type t = int

let zero = 0

(* Any nonzero group element works as the root; 1 matches the paper. *)
let root = 1

let add = ( + ) (* native int addition wraps mod 2^63: the group operation *)
let sub = ( - )
let equal = Int.equal
let is_zero w = w = 0

(* Uniform group element: all 63 bits of the generator draw. *)
let random prng = Int64.to_int (Prng.next_int64 prng)

let split2 prng w =
  let r = random prng in
  (r, w - r)

(* Same split written into a caller-owned buffer: the batched executor
   splits once per frontier parent and reuses one buffer across them.
   The draws come from [Prng.fill_int63] — the same stream as repeated
   [random] calls, minus the per-draw Int64 boxing. *)
let split_into prng w out ~n =
  if n <= 0 then invalid_arg "Weight.split_into: n must be positive";
  if Array.length out < n then invalid_arg "Weight.split_into: buffer too small";
  Prng.fill_int63 prng out ~n:(n - 1);
  let remaining = ref w in
  for i = 0 to n - 2 do
    remaining := !remaining - out.(i)
  done;
  out.(n - 1) <- !remaining

let split prng w ~n =
  if n <= 0 then invalid_arg "Weight.split: n must be positive";
  let shares = Array.make n 0 in
  let remaining = ref w in
  for i = 0 to n - 2 do
    let r = random prng in
    shares.(i) <- r;
    remaining := !remaining - r
  done;
  shares.(n - 1) <- !remaining;
  shares

(* Serialized size of one weight in a progress message. *)
let bytes = 8

let pp ppf w = Fmt.pf ppf "w#%x" (w land 0xffffff)
