(* Summary statistics for latency samples.

   The LDBC driver reports average and P99 latency (Figure 7) and the
   scalability studies report means over repeated runs, so percentiles use
   the nearest-rank method on a sorted copy of the sample. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean samples =
  let n = Array.length samples in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 samples /. float_of_int n

let stddev samples =
  let n = Array.length samples in
  if n < 2 then 0.0
  else begin
    let m = mean samples in
    let sum_sq = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 samples in
    sqrt (sum_sq /. float_of_int (n - 1))
  end

(* Nearest-rank percentile on an already sorted array. *)
let percentile_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else if q <= 0.0 then sorted.(0)
  else if q >= 100.0 then sorted.(n - 1)
  else begin
    let rank = int_of_float (ceil (q /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let percentile samples q =
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  percentile_sorted sorted q

let summarize samples =
  let n = Array.length samples in
  if n = 0 then
    { count = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; p50 = 0.; p90 = 0.; p99 = 0. }
  else begin
    let sorted = Array.copy samples in
    Array.sort Float.compare sorted;
    {
      count = n;
      mean = mean samples;
      stddev = stddev samples;
      min = sorted.(0);
      max = sorted.(n - 1);
      p50 = percentile_sorted sorted 50.0;
      p90 = percentile_sorted sorted 90.0;
      p99 = percentile_sorted sorted 99.0;
    }
  end

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.3f p50=%.3f p99=%.3f min=%.3f max=%.3f" s.count s.mean s.p50 s.p99
    s.min s.max

(* Geometric mean of ratios, used when averaging speedups across queries. *)
let geomean samples =
  let n = Array.length samples in
  if n = 0 then 0.0
  else begin
    let sum_log = Array.fold_left (fun acc x -> acc +. log (max x 1e-300)) 0.0 samples in
    exp (sum_log /. float_of_int n)
  end
