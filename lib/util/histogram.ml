(* Logarithmically bucketed histogram.

   Streams latency observations without retaining every sample; the driver
   uses it for long mixed-workload runs where keeping raw samples per query
   type would dominate memory. Buckets grow geometrically so that relative
   error is bounded across the microsecond-to-second range. *)

type t = {
  base : float; (* lower bound of bucket 0 *)
  growth : float; (* bucket width ratio *)
  counts : int array;
  mutable total : int;
  mutable sum : float;
  mutable min_seen : float;
  mutable max_seen : float;
}

let create ?(base = 1e-6) ?(growth = 1.2) ?(buckets = 128) () =
  if base <= 0.0 || growth <= 1.0 || buckets < 2 then invalid_arg "Histogram.create";
  {
    base;
    growth;
    counts = Array.make buckets 0;
    total = 0;
    sum = 0.0;
    min_seen = infinity;
    max_seen = neg_infinity;
  }

let bucket_of t x =
  if x < t.base then 0
  else begin
    let i = 1 + int_of_float (log (x /. t.base) /. log t.growth) in
    min i (Array.length t.counts - 1)
  end

(* Representative value (geometric midpoint) of bucket [i]. *)
let bucket_value t i =
  if i = 0 then t.base
  else t.base *. (t.growth ** (float_of_int (i - 1) +. 0.5))

let add t x =
  let i = bucket_of t x in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. x;
  if x < t.min_seen then t.min_seen <- x;
  if x > t.max_seen then t.max_seen <- x

let count t = t.total

let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

let sum t = t.sum
let min_seen t = if t.total = 0 then None else Some t.min_seen
let max_seen t = if t.total = 0 then None else Some t.max_seen

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile";
  (* An empty histogram has no quantiles; 0.0 is the contract (rather
     than an option) so idle-engine metrics print as zeros instead of
     whatever the bucket walk would invent from infinity extrema. *)
  if t.total = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int t.total)) in
    let rank = max 1 (min t.total rank) in
    let rec walk i seen =
      let seen = seen + t.counts.(i) in
      if seen >= rank then
        (* Clamp the bucket estimate by the actually observed extrema. *)
        Float.min t.max_seen (Float.max t.min_seen (bucket_value t i))
      else walk (i + 1) seen
    in
    walk 0 0
  end

let percentile t q = quantile t (q /. 100.0)

let quantiles t = (quantile t 0.50, quantile t 0.95, quantile t 0.99)

let merge ~into t =
  if Array.length into.counts <> Array.length t.counts || into.base <> t.base
     || into.growth <> t.growth
  then invalid_arg "Histogram.merge: incompatible layouts";
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
  into.total <- into.total + t.total;
  into.sum <- into.sum +. t.sum;
  if t.min_seen < into.min_seen then into.min_seen <- t.min_seen;
  if t.max_seen > into.max_seen then into.max_seen <- t.max_seen
