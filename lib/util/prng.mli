(** Deterministic SplitMix64 pseudo-random generator.

    All randomized components (graph generators, weight splitting, workload
    drivers) draw from an explicit [t] so that experiments are reproducible. *)

type t

(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)
val create : int -> t

(** Independent copy sharing no future state with the original. *)
val copy : t -> t

(** Derive an independent child generator; advances the parent. *)
val split : t -> t

(** Next raw 64-bit value. *)
val next_int64 : t -> int64

(** Uniform non-negative integer (62 bits). *)
val next_int : t -> int

(** [fill_int63 t out ~n] writes [n] consecutive draws into
    [out.(0 .. n-1)] as native ints — the same values as [n] successive
    [Int64.to_int (next_int64 t)] calls, without boxing each draw. *)
val fill_int63 : t -> int array -> n:int -> unit

(** [int t bound] is uniform in [0, bound). Raises on [bound <= 0]. *)
val int : t -> int -> int

(** [int_in_range t ~lo ~hi] is uniform in [lo, hi] inclusive. *)
val int_in_range : t -> lo:int -> hi:int -> int

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

val bool : t -> bool

(** [chance t p] is true with probability [p]. *)
val chance : t -> float -> bool

(** Exponentially distributed value with the given mean. *)
val exponential : t -> mean:float -> float

val shuffle_in_place : t -> 'a array -> unit

(** Uniform element of a non-empty array. *)
val pick : t -> 'a array -> 'a
