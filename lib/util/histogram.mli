(** Streaming log-bucketed histogram for latency distributions. *)

type t

(** [create ()] covers [base, base * growth^buckets) with geometric
    buckets; observations outside clamp to the edge buckets. *)
val create : ?base:float -> ?growth:float -> ?buckets:int -> unit -> t

val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val sum : t -> float

(** Smallest observation, or [None] when empty. *)
val min_seen : t -> float option

(** Largest observation, or [None] when empty. *)
val max_seen : t -> float option

(** Approximate percentile ([q] in [0,100]); bounded relative error given
    by the bucket growth ratio. *)
val percentile : t -> float -> float

(** Merge [t] into [into]; layouts must match. *)
val merge : into:t -> t -> unit
