(** Streaming log-bucketed histogram for latency distributions. *)

type t

(** [create ()] covers [base, base * growth^buckets) with geometric
    buckets; observations outside clamp to the edge buckets. *)
val create : ?base:float -> ?growth:float -> ?buckets:int -> unit -> t

val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val sum : t -> float

(** Smallest observation, or [None] when empty. *)
val min_seen : t -> float option

(** Largest observation, or [None] when empty. *)
val max_seen : t -> float option

(** Approximate quantile ([q] in [0,1]); bounded relative error given by
    the bucket growth ratio, clamped by the observed extrema. Returns
    [0.0] on an empty histogram — a defined value, so metrics printed
    from an idle engine read as zeros rather than bucket-walk garbage. *)
val quantile : t -> float -> float

(** [(p50, p95, p99)] in one call — the summary triple the metrics
    pretty-printer and the benchmark JSON export share. [(0., 0., 0.)]
    on an empty histogram. *)
val quantiles : t -> float * float * float

(** Approximate percentile ([q] in [0,100]); [quantile] scaled. *)
val percentile : t -> float -> float

(** Merge [t] into [into]; layouts must match. *)
val merge : into:t -> t -> unit
