(* SplitMix64 pseudo-random generator.

   Deterministic, seedable and splittable: every component of the simulator
   and every data generator takes an explicit [Prng.t] so that each figure of
   the paper is reproduced bit-for-bit across runs. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

(* A non-negative 62-bit integer. *)
let next_int t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(* [n] consecutive draws written as native ints, identical to [n] calls
   of [Int64.to_int (next_int64 t)]. The state round-trips through a
   local ref so the int64 arithmetic stays unboxed inside the loop —
   this is the batched weight-splitter's hot path. *)
let fill_int63 t out ~n =
  let s = ref t.state in
  for i = 0 to n - 1 do
    s := Int64.add !s golden_gamma;
    let z = !s in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    out.(i) <- Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31))
  done;
  t.state <- !s

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  next_int t mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in_range: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 random bits scaled to [0, 1). *)
  x /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p = float t 1.0 < p

(* Exponentially distributed value with the given mean, for inter-arrival
   times in the workload driver. *)
let exponential t ~mean =
  let u = float t 1.0 in
  -. mean *. log (1.0 -. u)

let shuffle_in_place t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))
