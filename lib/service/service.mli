(** Concurrent query service layer over an open engine session.

    Turns any registry engine ({!Engine.S}) into a multi-tenant query
    service facing open-loop traffic: per-tenant queues under
    weighted-fair scheduling with strict priority classes, admission
    control that sheds at enqueue when the projected latency would blow
    the p99 SLO, client abandonment (patience) via scoped cancellation,
    and optional per-query deadlines. Runs are deterministic: all
    randomness comes from the seeded arrival generators, all time is the
    engine's simulated time. *)

type tenant_config = {
  weight : float;  (** weighted-fair share, > 0 *)
  priority : int;  (** strict class: higher always dispatches first *)
  arrivals : Arrival.process;
  patience : Sim_time.t option;
      (** the client abandons the query (queued: silently; mid-flight:
          scoped engine cancellation) once this much time passes *)
}

val tenant :
  ?weight:float -> ?priority:int -> ?patience:Sim_time.t -> Arrival.process -> tenant_config

type config = {
  tenants : tenant_config array;
  horizon : Sim_time.t;  (** arrivals stop here; queued work still drains *)
  max_inflight : int;  (** dispatch window into the engine *)
  slo : Sim_time.t;  (** target p99 latency for admitted queries *)
  admission : bool;  (** load shedding on/off *)
  headroom : float;  (** shed when projected latency > headroom x SLO *)
  deadline_factor : float option;  (** per-query engine deadline, x SLO *)
  seed : int;
}

val config :
  ?max_inflight:int ->
  ?slo:Sim_time.t ->
  ?admission:bool ->
  ?headroom:float ->
  ?deadline_factor:float ->
  ?seed:int ->
  horizon:Sim_time.t ->
  tenant_config array ->
  config

(** One query's life as the service saw it. [Shed] queries never reached
    the engine; [Cancelled] covers both queue abandonment and mid-flight
    scoped cancellation. *)
type query = {
  q_tenant : int;
  q_priority : int;
  q_arrived : Sim_time.t;
  q_outcome : Engine.outcome;
  q_latency_ms : float option;  (** arrival to completion, completed only *)
}

type tenant_stats = {
  ts_offered : int;
  ts_admitted : int;
  ts_shed : int;
  ts_completed : int;
  ts_cancelled : int;
  ts_timed_out : int;
  ts_mean_ms : float;
  ts_p50_ms : float;
  ts_p99_ms : float;
}

type result = {
  r_engine : string;
  r_report : Engine.report;  (** admitted queries only, from the engine *)
  r_queries : query array;  (** every offered query, in arrival order *)
  r_per_tenant : tenant_stats array;
  r_duration : Sim_time.t;
}

(** Drive the whole service to completion: generate arrivals up to the
    horizon, schedule/shed/cancel against the engine session, drain, and
    aggregate. [program ~tenant ~seq] supplies the [seq]-th query of a
    tenant. *)
val run :
  (module Engine.S) ->
  ?common:Engine.Common.t ->
  graph:Graph.t ->
  config:config ->
  program:(tenant:int -> seq:int -> Program.t) ->
  unit ->
  result

val offered : result -> int
val admitted : result -> int
val shed : result -> int
val completed : result -> int
val cancelled : result -> int
val timed_out : result -> int
val shed_rate : result -> float

(** Latency aggregates over completed queries (arrival to completion). *)
val latencies_ms : result -> float array

val mean_ms : result -> float
val p50_ms : result -> float
val p99_ms : result -> float

(** Stable digest of a run (every query's life + engine event count),
    for determinism tests. *)
val fingerprint : result -> string

val result_json : result -> Pstm_obs.Json.t
