(* Concurrent query service layer.

   This is the Banyan-style layer the ROADMAP names: the engines expose
   an open session ({!Engine.service_handle}); this module turns one into
   a multi-tenant query service facing open-loop traffic —

   - per-tenant FIFO queues under weighted-fair scheduling (start-time
     virtual clocks: each dispatch advances the tenant's vtime by
     1/weight; the backlogged tenant with the smallest vtime goes next)
     within strict priority classes;
   - admission control: at enqueue — never mid-run — a query is shed
     when its projected latency (queue depth ahead of it times the
     observed service-time estimate) would blow the p99 SLO. Shed
     queries never touch the engine: no events, no state, no cleanup;
   - scoped cancellation: a client abandons a query once its patience
     runs out. Still queued, it just leaves the queue; mid-flight, the
     engine's scoped cancellation reclaims trackers, memos, and
     in-flight traversers under [~check:true];
   - optional per-query deadlines ([deadline_factor] x SLO), handed to
     the engine so a straggler is cut off as [Timed_out] even when the
     client is patient.

   Everything runs in the engine's simulated time through the handle's
   [sh_at]/[sh_on_terminal] callbacks, and all randomness comes from the
   seeded arrival generators — a run is a pure function of
   (config, workload, seed). *)

type tenant_config = {
  weight : float; (* weighted-fair share, > 0 *)
  priority : int; (* strict class: higher always dispatches first *)
  arrivals : Arrival.process;
  patience : Sim_time.t option; (* client abandons the query after this *)
}

let tenant ?(weight = 1.0) ?(priority = 0) ?patience arrivals =
  if weight <= 0.0 then invalid_arg "Service.tenant: weight must be positive";
  { weight; priority; arrivals; patience }

type config = {
  tenants : tenant_config array;
  horizon : Sim_time.t; (* arrivals stop here; queued work still drains *)
  max_inflight : int; (* dispatch window into the engine *)
  slo : Sim_time.t; (* target p99 latency for admitted queries *)
  admission : bool; (* load shedding on/off (off = every query queues) *)
  headroom : float; (* shed when projected latency > headroom x SLO *)
  deadline_factor : float option; (* per-query engine deadline, x SLO *)
  seed : int;
}

let config ?(max_inflight = 4) ?(slo = Sim_time.ms 50) ?(admission = true) ?(headroom = 2.0)
    ?deadline_factor ?(seed = 0x53ff) ~horizon tenants =
  if Array.length tenants = 0 then invalid_arg "Service.config: no tenants";
  if max_inflight <= 0 then invalid_arg "Service.config: max_inflight must be positive";
  { tenants; horizon; max_inflight; slo; admission; headroom; deadline_factor; seed }

(* One query's life as the service saw it. *)
type query = {
  q_tenant : int;
  q_priority : int;
  q_arrived : Sim_time.t;
  q_outcome : Engine.outcome;
  q_latency_ms : float option; (* arrival -> completion, completed only *)
}

type tenant_stats = {
  ts_offered : int;
  ts_admitted : int;
  ts_shed : int;
  ts_completed : int;
  ts_cancelled : int;
  ts_timed_out : int;
  ts_mean_ms : float;
  ts_p50_ms : float;
  ts_p99_ms : float;
}

type result = {
  r_engine : string;
  r_report : Engine.report; (* admitted queries only, from the engine *)
  r_queries : query array; (* every offered query, in arrival order *)
  r_per_tenant : tenant_stats array;
  r_duration : Sim_time.t;
}

(* --- Internal state ---------------------------------------------------- *)

type status =
  | Queued
  | Dispatched of { qid : int; at : Sim_time.t }
  | Terminal of Engine.outcome

type squery = {
  sq_tenant : int;
  sq_priority : int;
  sq_arrived : Sim_time.t;
  sq_program : Program.t;
  mutable sq_status : status;
}

type tstate = {
  t_cfg : tenant_config;
  t_queue : squery Queue.t;
  mutable t_vtime : float;
  mutable t_seq : int; (* arrivals generated so far *)
}

let run (module E : Engine.S) ?common ~graph ~(config : config)
    ~(program : tenant:int -> seq:int -> Program.t) () =
  let h = E.start ?common ~graph () in
  let slo_ns = float_of_int (Sim_time.to_ns config.slo) in
  let deadline =
    Option.map (fun f -> Sim_time.of_float_ns (f *. slo_ns)) config.deadline_factor
  in
  let tenants =
    Array.map
      (fun t_cfg -> { t_cfg; t_queue = Queue.create (); t_vtime = 0.0; t_seq = 0 })
      config.tenants
  in
  let offered : squery list ref = ref [] in (* reverse arrival order *)
  let by_qid : (int, squery) Hashtbl.t = Hashtbl.create 64 in
  let inflight = ref 0 in
  let queued = ref 0 in
  (* Service-time estimate (dispatch -> completion, ns): EWMA over
     completions, seeded at SLO/2 so an empty service admits freely. *)
  let svc_est = ref (slo_ns /. 2.0) in
  let observe_service ns = svc_est := (0.8 *. !svc_est) +. (0.2 *. ns) in
  (* Projected latency of a query admitted now: the work ahead of it
     (everything queued or running) drains in windows of [max_inflight],
     each taking about one service time, plus its own. *)
  let projected_ns () =
    let waiting = float_of_int (!queued + !inflight) in
    ((waiting /. float_of_int config.max_inflight) +. 1.0) *. !svc_est
  in
  let backlogged t = not (Queue.is_empty t.t_queue) in
  (* Weighted-fair pick: highest priority class first, then smallest
     virtual time, then lowest tenant index — all deterministic. *)
  let pick_tenant () =
    let best = ref None in
    Array.iter
      (fun t ->
        if backlogged t then
          match !best with
          | None -> best := Some t
          | Some b ->
            if
              t.t_cfg.priority > b.t_cfg.priority
              || (t.t_cfg.priority = b.t_cfg.priority && t.t_vtime < b.t_vtime)
            then best := Some t)
      tenants;
    !best
  in
  let rec try_dispatch () =
    if !inflight < config.max_inflight then
      match pick_tenant () with
      | None -> ()
      | Some t -> begin
        match Queue.pop t.t_queue with
        | sq when sq.sq_status <> Queued ->
          (* Abandoned while waiting: already terminal, just discard. *)
          try_dispatch ()
        | sq ->
          decr queued;
          t.t_vtime <- t.t_vtime +. (1.0 /. t.t_cfg.weight);
          let now = h.Engine.sh_now () in
          let qid =
            h.Engine.sh_submit
              (Engine.submit ~at:sq.sq_arrived ~tenant:sq.sq_tenant ~priority:sq.sq_priority
                 ?deadline sq.sq_program)
          in
          sq.sq_status <- Dispatched { qid; at = now };
          Hashtbl.replace by_qid qid sq;
          incr inflight;
          try_dispatch ()
        | exception Queue.Empty -> assert false
      end
  in
  h.Engine.sh_on_terminal (fun qid outcome ->
      match Hashtbl.find_opt by_qid qid with
      | None -> ()
      | Some sq ->
        (match sq.sq_status with
        | Dispatched { at; _ } ->
          sq.sq_status <- Terminal outcome;
          decr inflight;
          (match outcome with
          | Engine.Completed c ->
            observe_service (float_of_int (Sim_time.to_ns (Sim_time.diff c at)))
          | Engine.Timed_out | Engine.Cancelled ->
            (* A query that died mid-flight still held a slot for its
               whole residency; feeding the elapsed time (terminal fires
               at the simulated instant of the cut, so this is
               deterministic) keeps the estimate honest under overload.
               Fed only completions, the EWMA goes stale exactly when
               most queries time out — and admission turns permissive
               when it most needs to shed. The elapsed time
               under-reports the service the query *would* have needed,
               so the estimate stays conservative. *)
            observe_service
              (float_of_int (Sim_time.to_ns (Sim_time.diff (h.Engine.sh_now ()) at)))
          | Engine.Shed -> () (* never dispatched; unreachable here *))
        | Queued | Terminal _ -> ());
        try_dispatch ());
  (* When a tenant comes back from idle its virtual clock must not let
     it claim the whole backlog it "saved up"; re-sync to the smallest
     backlogged vtime, standard WFQ practice. *)
  let resync_vtime t =
    let vmin = ref None in
    Array.iter
      (fun t' ->
        if t' != t && backlogged t' then
          match !vmin with
          | None -> vmin := Some t'.t_vtime
          | Some v -> vmin := Some (min v t'.t_vtime))
      tenants;
    match !vmin with None -> () | Some v -> t.t_vtime <- max t.t_vtime v
  in
  let arrive tenant_idx at =
    let t = tenants.(tenant_idx) in
    let sq =
      {
        sq_tenant = tenant_idx;
        sq_priority = t.t_cfg.priority;
        sq_arrived = at;
        sq_program = program ~tenant:tenant_idx ~seq:t.t_seq;
        sq_status = Queued;
      }
    in
    t.t_seq <- t.t_seq + 1;
    offered := sq :: !offered;
    if config.admission && projected_ns () > config.headroom *. slo_ns then
      (* Shed at the door: the query never touches the engine. *)
      sq.sq_status <- Terminal Engine.Shed
    else begin
      if not (backlogged t) then resync_vtime t;
      Queue.add sq t.t_queue;
      incr queued;
      (match t.t_cfg.patience with
      | None -> ()
      | Some p ->
        h.Engine.sh_at (Sim_time.add at p) (fun () ->
            match sq.sq_status with
            | Queued ->
              (* Still waiting: leaves the queue without ever reaching
                 the engine (discarded lazily on pop). *)
              sq.sq_status <- Terminal Engine.Cancelled;
              decr queued
            | Dispatched { qid; _ } ->
              (* Mid-flight: scoped cancellation inside the engine. *)
              h.Engine.sh_cancel ~qid ~at:(h.Engine.sh_now ())
            | Terminal _ -> ()));
      try_dispatch ()
    end
  in
  (* Open-loop sources: one seeded generator per tenant, self-scheduling
     through the handle until the horizon. *)
  Array.iteri
    (fun idx t ->
      let gen = Arrival.create ~seed:(config.seed + (0x9e37 * (idx + 1))) t.t_cfg.arrivals in
      let rec schedule_next () =
        let at = Arrival.next gen in
        if Sim_time.compare at config.horizon <= 0 then
          h.Engine.sh_at at (fun () ->
              arrive idx at;
              schedule_next ())
      in
      schedule_next ())
    tenants;
  h.Engine.sh_drive ~until:None;
  let report = h.Engine.sh_finish () in
  (* --- Aggregate -------------------------------------------------------- *)
  let queries =
    Array.map
      (fun sq ->
        let outcome =
          match sq.sq_status with
          | Terminal o -> o
          | Dispatched { qid; _ } ->
            (* The engine finished first (run deadline): its report has
               the authoritative outcome. *)
            report.Engine.queries.(qid).Engine.outcome
          | Queued -> Engine.Cancelled
        in
        {
          q_tenant = sq.sq_tenant;
          q_priority = sq.sq_priority;
          q_arrived = sq.sq_arrived;
          q_outcome = outcome;
          q_latency_ms =
            (match outcome with
            | Engine.Completed c -> Some (Sim_time.to_ms (Sim_time.diff c sq.sq_arrived))
            | _ -> None);
        })
      (Array.of_list (List.rev !offered))
  in
  let tenant_stats idx =
    let mine = Array.to_list (Array.of_seq (Seq.filter (fun q -> q.q_tenant = idx) (Array.to_seq queries))) in
    let count p = List.fold_left (fun n q -> if p q.q_outcome then n + 1 else n) 0 mine in
    let lats =
      Array.of_list (List.filter_map (fun q -> q.q_latency_ms) mine)
    in
    {
      ts_offered = List.length mine;
      ts_admitted = count (fun o -> o <> Engine.Shed);
      ts_shed = count (fun o -> o = Engine.Shed);
      ts_completed = count (function Engine.Completed _ -> true | _ -> false);
      ts_cancelled = count (fun o -> o = Engine.Cancelled);
      ts_timed_out = count (fun o -> o = Engine.Timed_out);
      ts_mean_ms = Stats.mean lats;
      ts_p50_ms = Stats.percentile lats 50.0;
      ts_p99_ms = Stats.percentile lats 99.0;
    }
  in
  {
    r_engine = report.Engine.engine;
    r_report = report;
    r_queries = queries;
    r_per_tenant = Array.init (Array.length tenants) tenant_stats;
    r_duration = report.Engine.makespan;
  }

(* --- Whole-service aggregates ------------------------------------------ *)

let count r p = Array.fold_left (fun n q -> if p q.q_outcome then n + 1 else n) 0 r.r_queries
let offered r = Array.length r.r_queries
let admitted r = count r (fun o -> o <> Engine.Shed)
let shed r = count r (fun o -> o = Engine.Shed)
let completed r = count r (function Engine.Completed _ -> true | _ -> false)
let cancelled r = count r (fun o -> o = Engine.Cancelled)
let timed_out r = count r (fun o -> o = Engine.Timed_out)
let shed_rate r = if offered r = 0 then 0.0 else float_of_int (shed r) /. float_of_int (offered r)

let latencies_ms r =
  Array.of_list (List.filter_map (fun q -> q.q_latency_ms) (Array.to_list r.r_queries))

let mean_ms r = Stats.mean (latencies_ms r)
let p50_ms r = Stats.percentile (latencies_ms r) 50.0
let p99_ms r = Stats.percentile (latencies_ms r) 99.0

(* Stable digest of a whole run, for determinism tests: every query's
   life plus the engine's event count. *)
let fingerprint r =
  Fmt.str "%s|events=%d|%a" r.r_engine r.r_report.Engine.events
    (Fmt.array ~sep:(Fmt.any ";") (fun ppf q ->
         Fmt.pf ppf "%d:%d:%d:%s:%s" q.q_tenant q.q_priority (Sim_time.to_ns q.q_arrived)
           (Engine.outcome_name q.q_outcome)
           (match q.q_latency_ms with None -> "-" | Some l -> Fmt.str "%.3f" l)))
    r.r_queries

let result_json r =
  let module J = Pstm_obs.Json in
  let tenant_json idx ts =
    J.Obj
      [
        ("tenant", J.Int idx);
        ("offered", J.Int ts.ts_offered);
        ("admitted", J.Int ts.ts_admitted);
        ("shed", J.Int ts.ts_shed);
        ("completed", J.Int ts.ts_completed);
        ("cancelled", J.Int ts.ts_cancelled);
        ("timed_out", J.Int ts.ts_timed_out);
        ("mean_ms", J.Float ts.ts_mean_ms);
        ("p50_ms", J.Float ts.ts_p50_ms);
        ("p99_ms", J.Float ts.ts_p99_ms);
      ]
  in
  J.Obj
    [
      ("engine", J.Str r.r_engine);
      ("duration_ns", J.Int (Sim_time.to_ns r.r_duration));
      ("offered", J.Int (offered r));
      ("admitted", J.Int (admitted r));
      ("shed", J.Int (shed r));
      ("completed", J.Int (completed r));
      ("cancelled", J.Int (cancelled r));
      ("timed_out", J.Int (timed_out r));
      ("shed_rate", J.Float (shed_rate r));
      ("mean_ms", J.Float (mean_ms r));
      ("p50_ms", J.Float (p50_ms r));
      ("p99_ms", J.Float (p99_ms r));
      ("per_tenant", J.List (Array.to_list (Array.mapi tenant_json r.r_per_tenant)));
      ("engine_events", J.Int r.r_report.Engine.events);
    ]
