(* Open-loop arrival processes.

   Unlike the closed TCR loop of the paper's Figure 7 — where a fixed
   client pool issues the next query only after the previous one returns,
   so the system can never be offered more load than it absorbs — an
   open-loop source keeps emitting on its own schedule. Overload is then
   a real state the service must handle, which is the whole point of the
   admission-control layer built on top.

   Both processes are memoryless, so generation is a simple state
   machine over exponential draws; everything comes from one seeded
   {!Prng.t}, making a workload a pure function of its seed. *)

type process =
  | Poisson of { rate_qps : float }
      (* constant-rate Poisson: exponential inter-arrivals, mean 1/rate *)
  | Bursty of {
      base_qps : float;
      burst_qps : float;
      mean_dwell : Sim_time.t; (* mean sojourn in each state *)
    }
      (* 2-state MMPP: a background rate with exponentially-distributed
         excursions to a burst rate — the canonical bursty-traffic model *)

type state =
  | Steady
  | Mmpp of {
      mutable burst : bool;
      mutable until : Sim_time.t; (* current state's dwell expires here *)
    }

type t = {
  process : process;
  prng : Prng.t;
  state : state;
  mutable clock : Sim_time.t; (* last emitted arrival *)
}

let interval prng ~rate_qps =
  if rate_qps <= 0.0 then invalid_arg "Arrival: rate must be positive";
  Sim_time.of_float_ns (Prng.exponential prng ~mean:(1e9 /. rate_qps))

let dwell prng ~mean = Sim_time.of_float_ns (Prng.exponential prng ~mean:(float_of_int mean))

let create ?(seed = 0x0a51) process =
  let prng = Prng.create seed in
  let state =
    match process with
    | Poisson _ -> Steady
    | Bursty { mean_dwell; _ } -> Mmpp { burst = false; until = dwell prng ~mean:mean_dwell }
  in
  { process; prng; state; clock = Sim_time.zero }

(* Next arrival instant, strictly advancing. Memorylessness makes the
   MMPP exact with redraw-at-boundary: an exponential conditioned on
   exceeding the remaining dwell restarts fresh in the next state. *)
let rec next t =
  match (t.process, t.state) with
  | Poisson { rate_qps }, _ ->
    t.clock <- Sim_time.add t.clock (interval t.prng ~rate_qps);
    t.clock
  | Bursty { base_qps; burst_qps; mean_dwell }, Mmpp m ->
    let rate_qps = if m.burst then burst_qps else base_qps in
    let candidate = Sim_time.add t.clock (interval t.prng ~rate_qps) in
    if Sim_time.compare candidate m.until <= 0 then begin
      t.clock <- candidate;
      t.clock
    end
    else begin
      t.clock <- m.until;
      m.burst <- not m.burst;
      m.until <- Sim_time.add m.until (dwell t.prng ~mean:mean_dwell);
      next t
    end
  | Bursty _, Steady -> assert false

(* All arrivals up to the horizon, for offline workload construction. *)
let take t ~horizon =
  let out = Vec.create ~dummy:Sim_time.zero in
  let rec go () =
    let at = next t in
    if Sim_time.compare at horizon <= 0 then begin
      Vec.push out at;
      go ()
    end
  in
  go ();
  Vec.to_array out
