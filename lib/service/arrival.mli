(** Open-loop arrival processes: seeded, deterministic in simulated time.

    The paper only ever drives PSTM with a closed TCR loop; the service
    layer needs open-loop sources, where offered load is independent of
    completions and overload actually happens. *)

type process =
  | Poisson of { rate_qps : float }  (** constant-rate Poisson stream *)
  | Bursty of {
      base_qps : float;
      burst_qps : float;
      mean_dwell : Sim_time.t;
    }
      (** 2-state MMPP: exponentially-dwelling excursions from
          [base_qps] to [burst_qps] *)

type t

(** Equal seeds and process yield equal arrival sequences. *)
val create : ?seed:int -> process -> t

(** The next arrival instant; strictly increasing across calls. *)
val next : t -> Sim_time.t

(** Every arrival up to (and including) [horizon]. *)
val take : t -> horizon:Sim_time.t -> Sim_time.t array
