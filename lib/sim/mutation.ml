(* Seeded protocol mutants.

   Each constructor disables exactly one safety mechanism of a distributed
   protocol grown in PRs 3-5. They exist to validate the conformance
   monitors and the schedule explorer: a checker that cannot catch these
   within a bounded schedule budget is not checking anything. The gates
   are threaded through [Engine.Common] so production paths never branch
   on them unless a mutant is explicitly installed. *)

type t =
  | Skip_dedup  (** channel receiver treats every packet as fresh *)
  | No_retransmit  (** retransmit timers fire but send nothing *)
  | Drop_stash_drain  (** migration data install never drains the stash *)
  | Early_tracker_release  (** coordinator completes a phase after 2 receipts *)

let all = [ Skip_dedup; No_retransmit; Drop_stash_drain; Early_tracker_release ]

let name = function
  | Skip_dedup -> "skip-dedup"
  | No_retransmit -> "no-retransmit"
  | Drop_stash_drain -> "drop-stash-drain"
  | Early_tracker_release -> "early-tracker-release"

let of_string s =
  match List.find_opt (fun m -> String.equal (name m) s) all with
  | Some m -> Some m
  | None -> None

let describe = function
  | Skip_dedup -> "receiver dedup window bypassed: retransmitted packets are applied twice"
  | No_retransmit -> "retransmit timer disabled: a dropped packet is lost forever"
  | Drop_stash_drain -> "P_migrate_data installs entries but never releases stashed traversers"
  | Early_tracker_release -> "progress tracker force-completed after two receipts"
