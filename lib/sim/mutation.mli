(** Seeded protocol mutants used to validate the conformance monitors and
    the schedule explorer. Installing one deliberately breaks a protocol
    safety mechanism; the analysis layer must catch each within a bounded
    schedule budget. *)

type t =
  | Skip_dedup  (** channel receiver treats every packet as fresh *)
  | No_retransmit  (** retransmit timers fire but send nothing *)
  | Drop_stash_drain  (** migration data install never drains the stash *)
  | Early_tracker_release  (** coordinator completes a phase after 2 receipts *)

val all : t list

val name : t -> string

val of_string : string -> t option

(** One-line human description of what the mutant breaks. *)
val describe : t -> string
