(* Run metrics.

   Figure 11 of the paper counts progress-tracking messages against other
   message types with and without weight coalescing, so messages are
   counted by kind at the channel layer. The remaining counters feed the
   performance-breakdown discussions (packets sent, flushes, traverser
   steps executed, superstep count for the BSP engine). *)

type msg_kind =
  | Traverser_msg (* a traverser migrating to a remote partition *)
  | Progress_msg (* finished weight reported to the progress tracker *)
  | Control_msg (* barriers, subquery start/finish, aggregation pulls *)
  | Result_msg (* result rows returned to the query coordinator *)

let all_kinds = [ Traverser_msg; Progress_msg; Control_msg; Result_msg ]

let kind_name = function
  | Traverser_msg -> "traverser"
  | Progress_msg -> "progress"
  | Control_msg -> "control"
  | Result_msg -> "result"

let kind_index = function
  | Traverser_msg -> 0
  | Progress_msg -> 1
  | Control_msg -> 2
  | Result_msg -> 3

type t = {
  messages : int array; (* by kind *)
  bytes : int array; (* by kind *)
  mutable packets : int;
  mutable packet_bytes : int;
  mutable local_messages : int; (* same-node shared-memory shortcut *)
  mutable flushes : int; (* worker buffer flushes *)
  mutable steps : int; (* traverser steps executed *)
  mutable edges_scanned : int; (* adjacency positions examined *)
  mutable spawned : int; (* traversers created *)
  mutable memo_ops : int;
  mutable supersteps : int; (* BSP only *)
  mutable tracker_updates : int; (* weight receipts at the progress tracker *)
  mutable busy_ns : int; (* total worker CPU time consumed *)
  (* Fault plane (all zero when no faults are injected): *)
  mutable fault_drops : int; (* packets lost to injected link faults *)
  mutable fault_dups : int; (* packets duplicated by injected link faults *)
  mutable fault_delays : int; (* delay spikes applied to packets *)
  mutable retransmits : int; (* ack timeouts that fired and resent a packet *)
  mutable dup_dropped : int; (* received packets discarded by the dedup window *)
  mutable acks : int; (* acknowledgement packets sent *)
  mutable abandoned : int; (* packets given up after max_retries *)
  (* Adaptive repartitioning (all zero when migration is off): *)
  mutable migrations : int; (* vertex migrations started *)
  mutable migrated_entries : int; (* memo entries re-homed *)
  mutable forwarded : int; (* traversers forwarded to a vertex's new owner *)
  mutable stashed : int; (* traversers parked awaiting migration data *)
  (* Frontier batching (all zero when batching is off): *)
  mutable batches : int; (* frontier batches executed *)
  mutable batched_traversers : int; (* traversers carried by those batches *)
  mutable coalesced_msgs : int; (* remote traverser-batch messages *)
  mutable batch_sizes : Histogram.t; (* traversers-per-batch distribution *)
  (* Compiled-plan cache (mirrored from Plan_cache by the harness): *)
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable plan_verifications : int; (* full verifier runs (cold compiles) *)
  (* Hierarchical progress tracking (all zero when fanout is unset): *)
  mutable delegate_merges : int; (* subtree weights absorbed at interior delegates *)
  mutable delegate_forwards : int; (* merged progress messages shipped up the tree *)
  (* Observability self-diagnostics (mirrored from the recorder ring): *)
  mutable trace_dropped : int; (* trace events overwritten in the bounded ring *)
}

let create () =
  {
    messages = Array.make 4 0;
    bytes = Array.make 4 0;
    packets = 0;
    packet_bytes = 0;
    local_messages = 0;
    flushes = 0;
    steps = 0;
    edges_scanned = 0;
    spawned = 0;
    memo_ops = 0;
    supersteps = 0;
    tracker_updates = 0;
    busy_ns = 0;
    fault_drops = 0;
    fault_dups = 0;
    fault_delays = 0;
    retransmits = 0;
    dup_dropped = 0;
    acks = 0;
    abandoned = 0;
    migrations = 0;
    migrated_entries = 0;
    forwarded = 0;
    stashed = 0;
    batches = 0;
    batched_traversers = 0;
    coalesced_msgs = 0;
    batch_sizes = Histogram.create ~base:1.0 ();
    plan_hits = 0;
    plan_misses = 0;
    plan_verifications = 0;
    delegate_merges = 0;
    delegate_forwards = 0;
    trace_dropped = 0;
  }

let reset t =
  Array.fill t.messages 0 4 0;
  Array.fill t.bytes 0 4 0;
  t.packets <- 0;
  t.packet_bytes <- 0;
  t.local_messages <- 0;
  t.flushes <- 0;
  t.steps <- 0;
  t.edges_scanned <- 0;
  t.spawned <- 0;
  t.memo_ops <- 0;
  t.supersteps <- 0;
  t.tracker_updates <- 0;
  t.busy_ns <- 0;
  t.fault_drops <- 0;
  t.fault_dups <- 0;
  t.fault_delays <- 0;
  t.retransmits <- 0;
  t.dup_dropped <- 0;
  t.acks <- 0;
  t.abandoned <- 0;
  t.migrations <- 0;
  t.migrated_entries <- 0;
  t.forwarded <- 0;
  t.stashed <- 0;
  t.batches <- 0;
  t.batched_traversers <- 0;
  t.coalesced_msgs <- 0;
  t.batch_sizes <- Histogram.create ~base:1.0 ();
  t.plan_hits <- 0;
  t.plan_misses <- 0;
  t.plan_verifications <- 0;
  t.delegate_merges <- 0;
  t.delegate_forwards <- 0;
  t.trace_dropped <- 0

let count_message t kind bytes =
  let i = kind_index kind in
  t.messages.(i) <- t.messages.(i) + 1;
  t.bytes.(i) <- t.bytes.(i) + bytes

let count_local_message t = t.local_messages <- t.local_messages + 1

let count_packet t bytes =
  t.packets <- t.packets + 1;
  t.packet_bytes <- t.packet_bytes + bytes

let count_flush t = t.flushes <- t.flushes + 1
let count_step t = t.steps <- t.steps + 1
let count_edges t n = t.edges_scanned <- t.edges_scanned + n
let count_spawn t = t.spawned <- t.spawned + 1
let count_memo_op t = t.memo_ops <- t.memo_ops + 1
let count_superstep t = t.supersteps <- t.supersteps + 1
let count_tracker_update t = t.tracker_updates <- t.tracker_updates + 1
let count_busy t ns = t.busy_ns <- t.busy_ns + ns
let count_fault_drop t = t.fault_drops <- t.fault_drops + 1
let count_fault_dup t = t.fault_dups <- t.fault_dups + 1
let count_fault_delay t = t.fault_delays <- t.fault_delays + 1
let count_retransmit t = t.retransmits <- t.retransmits + 1
let count_dup_dropped t = t.dup_dropped <- t.dup_dropped + 1
let count_ack t = t.acks <- t.acks + 1
let count_abandoned t = t.abandoned <- t.abandoned + 1
let count_migration t = t.migrations <- t.migrations + 1
let count_migrated_entries t n = t.migrated_entries <- t.migrated_entries + n
let count_forwarded t = t.forwarded <- t.forwarded + 1
let count_stashed t = t.stashed <- t.stashed + 1

let count_batch t ~traversers =
  t.batches <- t.batches + 1;
  t.batched_traversers <- t.batched_traversers + traversers;
  Histogram.add t.batch_sizes (float_of_int traversers)

let count_coalesced_msg t = t.coalesced_msgs <- t.coalesced_msgs + 1
let count_plan_hit t = t.plan_hits <- t.plan_hits + 1
let count_plan_miss t = t.plan_misses <- t.plan_misses + 1
let count_plan_verification t = t.plan_verifications <- t.plan_verifications + 1
let count_delegate_merge t = t.delegate_merges <- t.delegate_merges + 1
let count_delegate_forward t = t.delegate_forwards <- t.delegate_forwards + 1

let set_trace_dropped t n = t.trace_dropped <- n

let add_plan_stats t ~hits ~misses ~verifications =
  t.plan_hits <- t.plan_hits + hits;
  t.plan_misses <- t.plan_misses + misses;
  t.plan_verifications <- t.plan_verifications + verifications

let messages t kind = t.messages.(kind_index kind)
let message_bytes t kind = t.bytes.(kind_index kind)
let total_messages t = Array.fold_left ( + ) 0 t.messages
let packets t = t.packets
let packet_bytes t = t.packet_bytes
let local_messages t = t.local_messages
let flushes t = t.flushes
let steps t = t.steps
let edges_scanned t = t.edges_scanned
let spawned t = t.spawned
let memo_ops t = t.memo_ops
let supersteps t = t.supersteps
let tracker_updates t = t.tracker_updates
let busy_ns t = t.busy_ns
let fault_drops t = t.fault_drops
let fault_dups t = t.fault_dups
let fault_delays t = t.fault_delays
let retransmits t = t.retransmits
let dup_dropped t = t.dup_dropped
let acks t = t.acks
let abandoned t = t.abandoned
let migrations t = t.migrations
let migrated_entries t = t.migrated_entries
let forwarded t = t.forwarded
let stashed t = t.stashed

let batches t = t.batches
let batched_traversers t = t.batched_traversers
let coalesced_msgs t = t.coalesced_msgs
let batch_sizes t = t.batch_sizes
let plan_hits t = t.plan_hits
let plan_misses t = t.plan_misses
let plan_verifications t = t.plan_verifications
let delegate_merges t = t.delegate_merges
let delegate_forwards t = t.delegate_forwards
let trace_dropped t = t.trace_dropped

let migration_seen t = t.migrations + t.migrated_entries + t.forwarded + t.stashed > 0

let batching_seen t = t.batches + t.coalesced_msgs > 0
let hierarchy_seen t = t.delegate_merges + t.delegate_forwards > 0
let plan_cache_seen t = t.plan_hits + t.plan_misses > 0

let faults_seen t =
  t.fault_drops + t.fault_dups + t.fault_delays + t.retransmits + t.dup_dropped + t.acks
  + t.abandoned
  > 0

let pp ppf t =
  Fmt.pf ppf "steps=%d spawned=%d packets=%d local=%d" t.steps t.spawned t.packets
    t.local_messages;
  List.iter
    (fun kind ->
      Fmt.pf ppf " %s=%d/%dB" (kind_name kind) (messages t kind) (message_bytes t kind))
    all_kinds;
  (* Fault counters only appear when the fault plane was active, so
     fault-free output is unchanged. *)
  if faults_seen t then
    Fmt.pf ppf " drops=%d dups=%d delays=%d retx=%d dedup=%d acks=%d abandoned=%d" t.fault_drops
      t.fault_dups t.fault_delays t.retransmits t.dup_dropped t.acks t.abandoned;
  (* Likewise, migration counters only appear once a vertex has moved, so
     static-partition output is unchanged. *)
  if migration_seen t then
    Fmt.pf ppf " migrations=%d rehomed=%d forwarded=%d stashed=%d" t.migrations
      t.migrated_entries t.forwarded t.stashed;
  (* Batch counters only appear when frontier batching ran, so the
     unbatched output is unchanged. *)
  if batching_seen t then begin
    Fmt.pf ppf " batches=%d batched_travs=%d coalesced=%d" t.batches t.batched_traversers
      t.coalesced_msgs;
    if Histogram.count t.batch_sizes > 0 then begin
      let p50, p95, p99 = Histogram.quantiles t.batch_sizes in
      Fmt.pf ppf " batch_p50/p95/p99=%.0f/%.0f/%.0f" p50 p95 p99
    end
  end;
  if plan_cache_seen t then
    Fmt.pf ppf " plan_hits=%d plan_misses=%d verified=%d" t.plan_hits t.plan_misses
      t.plan_verifications;
  (* Delegate-tier counters only appear under hierarchical tracking, so
     flat-tracking output is unchanged. *)
  if hierarchy_seen t then
    Fmt.pf ppf " delegate_merges=%d delegate_fwds=%d root_receipts=%d" t.delegate_merges
      t.delegate_forwards t.tracker_updates;
  (* A truncated trace ring must be visible wherever metrics are read, so
     a partial trace is never mistaken for a complete one. *)
  if t.trace_dropped > 0 then Fmt.pf ppf " trace_dropped=%d" t.trace_dropped
