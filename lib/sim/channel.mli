(** Two-tier message-passing channel (§IV-B).

    Tier 1: per-worker per-destination-node buffers flushing at a byte
    threshold or when the worker idles (thread-level combining, TLC).
    Tier 2: per-node combining of concurrent flushes to the same
    destination into one packet (node-level combining, NLC). Same-node
    messages bypass both tiers via shared memory. Each tier toggles
    independently for the Figure 12 ablation.

    When the cluster carries a fault plane ({!Cluster.set_faults}),
    tier-2 packets switch to sequence-numbered reliable delivery:
    receivers dedup and ack every packet, senders retransmit on ack
    timeout with capped exponential backoff and abandon after the
    spec's [max_retries]. Without faults the state is never allocated
    and the send path is unchanged. *)

type config = {
  tlc : bool;
  nlc : bool;
  flush_bytes : int; (** tier-1 flush threshold; 8 KB in the paper *)
  nlc_window : Sim_time.t; (** tier-2 combining window *)
}

(** Full system: TLC + NLC, 8 KB threshold. *)
val default_config : config

(** Every message is a packet (the Figure 12 baseline). *)
val no_batching : config

(** Thread-level combining without node-level combining. *)
val tlc_only : config

type 'a t

(** [create cluster config ~dummy ~deliver] — [deliver dst_worker payload]
    runs at simulated arrival time for every message. *)
val create : Cluster.t -> config -> dummy:'a -> deliver:(int -> 'a -> unit) -> 'a t

val config : 'a t -> config

(** Send one message at logical time [at]; returns the CPU time the
    sending worker spent (append, flush hand-off or syscall). *)
val send :
  'a t ->
  at:Sim_time.t ->
  src_worker:int ->
  dst_worker:int ->
  kind:Metrics.msg_kind ->
  bytes:int ->
  'a ->
  Sim_time.t

(** True exactly while [deliver] runs for a packet whose delivering copy
    was a retransmission; the causal tracer reads this from inside the
    deliver callback to classify the hop as retransmit-recovery time.
    Always false outside deliver callbacks and on fault-free runs. *)
val delivering_retransmitted : 'a t -> bool

(** Whether any tier-1 buffer of the worker holds messages. *)
val has_buffered : 'a t -> worker:int -> bool

(** Flush all tier-1 buffers of a worker (called before it sleeps);
    returns the CPU time spent. *)
val flush_worker : 'a t -> at:Sim_time.t -> worker:int -> Sim_time.t
