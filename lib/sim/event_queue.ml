(* Discrete-event scheduler.

   A binary heap of (time, sequence, thunk); the insertion sequence number
   is the explicit tie-break key: events scheduled at equal times fire in
   schedule order, which makes whole-cluster simulations fully
   deterministic. Engines drive the simulation by scheduling closures and
   calling [run_to_completion].

   Same-timestamp ties are the only scheduling freedom a real asynchronous
   cluster has that the DES normally collapses; [set_chooser] re-opens it.
   When a chooser is installed, [step] gathers every entry sharing the
   minimum timestamp (in insertion order), presents their (seq, tag) pairs
   and lets the chooser pick which fires first. The rest are pushed back
   untouched — their sequence numbers are preserved, so declining to
   reorder reproduces the default schedule exactly. *)

type entry = {
  time : Sim_time.t;
  seq : int;
  tag : int;
  action : unit -> unit;
}

type choice = {
  c_seq : int;
  c_tag : int;
}

type chooser = choice array -> int

type t = {
  heap : entry Heap.t;
  mutable now : Sim_time.t;
  mutable next_seq : int;
  mutable executed : int;
  mutable chooser : chooser option;
}

let dummy_entry = { time = 0; seq = 0; tag = 0; action = ignore }

let compare_entry a b =
  let c = Sim_time.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    heap = Heap.create ~cmp:compare_entry ~dummy:dummy_entry;
    now = 0;
    next_seq = 0;
    executed = 0;
    chooser = None;
  }

let now t = t.now

let executed t = t.executed

let pending t = Heap.length t.heap

let next_seq t = t.next_seq

let set_chooser t chooser = t.chooser <- chooser

let schedule_at ?(tag = 0) t ~time action =
  if Sim_time.compare time t.now < 0 then
    invalid_arg
      (Fmt.str "Event_queue.schedule_at: time %a is in the past (now %a)" Sim_time.pp time
         Sim_time.pp t.now);
  Heap.push t.heap { time; seq = t.next_seq; tag; action };
  t.next_seq <- t.next_seq + 1

let schedule_after ?tag t ~delay action = schedule_at ?tag t ~time:(Sim_time.add t.now delay) action

let exec t entry =
  t.now <- entry.time;
  t.executed <- t.executed + 1;
  entry.action ()

let step t =
  match Heap.pop_opt t.heap with
  | None -> false
  | Some entry -> begin
    match t.chooser with
    | None ->
      exec t entry;
      true
    | Some choose ->
      (* Successive pops at one timestamp arrive in ascending seq, so the
         tied batch is already in insertion order. *)
      let tied = ref [ entry ] in
      let n = ref 1 in
      let more = ref true in
      while !more do
        match Heap.peek t.heap with
        | Some e when Sim_time.compare e.time entry.time = 0 ->
          ignore (Heap.pop_opt t.heap);
          tied := e :: !tied;
          incr n
        | _ -> more := false
      done;
      if !n = 1 then begin
        exec t entry;
        true
      end
      else begin
        let batch = Array.make !n dummy_entry in
        List.iteri (fun i e -> batch.(!n - 1 - i) <- e) !tied;
        let choices = Array.map (fun e -> { c_seq = e.seq; c_tag = e.tag }) batch in
        let pick = choose choices in
        let pick = if pick < 0 || pick >= !n then 0 else pick in
        Array.iteri (fun i e -> if i <> pick then Heap.push t.heap e) batch;
        exec t batch.(pick);
        true
      end
  end

(* Runs until the queue drains. [max_events] guards against engines that
   accidentally schedule forever. *)
let run_to_completion ?(max_events = 2_000_000_000) t =
  let budget = ref max_events in
  while step t do
    decr budget;
    if !budget <= 0 then failwith "Event_queue.run_to_completion: event budget exhausted"
  done

let run_until t ~time =
  let continue = ref true in
  while
    !continue
    &&
    match Heap.peek t.heap with
    | Some entry when Sim_time.compare entry.time time <= 0 -> true
    | _ -> false
  do
    continue := step t
  done;
  if Sim_time.compare t.now time < 0 then t.now <- time
