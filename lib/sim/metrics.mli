(** Per-run counters: messages by kind (Figure 11), packets, steps,
    supersteps, tracker load. *)

type msg_kind =
  | Traverser_msg
  | Progress_msg
  | Control_msg
  | Result_msg

val all_kinds : msg_kind list
val kind_name : msg_kind -> string

type t

val create : unit -> t
val reset : t -> unit
val count_message : t -> msg_kind -> int -> unit
val count_local_message : t -> unit
val count_packet : t -> int -> unit
val count_flush : t -> unit
val count_step : t -> unit
val count_edges : t -> int -> unit
val count_spawn : t -> unit
val count_memo_op : t -> unit
val count_superstep : t -> unit
val count_tracker_update : t -> unit
val count_busy : t -> int -> unit
val count_fault_drop : t -> unit
val count_fault_dup : t -> unit
val count_fault_delay : t -> unit
val count_retransmit : t -> unit
val count_dup_dropped : t -> unit
val count_ack : t -> unit
val count_abandoned : t -> unit
val count_migration : t -> unit
val count_migrated_entries : t -> int -> unit
val count_forwarded : t -> unit
val count_stashed : t -> unit
val count_batch : t -> traversers:int -> unit
val count_coalesced_msg : t -> unit
val count_plan_hit : t -> unit
val count_plan_miss : t -> unit
val count_plan_verification : t -> unit
val count_delegate_merge : t -> unit
val count_delegate_forward : t -> unit

(** Fold plan-cache statistics in bulk; used to mirror
    [Pstm_query.Plan_cache.stats] (which cannot depend on this library)
    into the run report. *)
val add_plan_stats : t -> hits:int -> misses:int -> verifications:int -> unit

(** Mirror the trace ring's overwrite count into the run metrics (set, not
    added: the ring keeps the authoritative count). *)
val set_trace_dropped : t -> int -> unit
val messages : t -> msg_kind -> int
val message_bytes : t -> msg_kind -> int
val total_messages : t -> int
val packets : t -> int
val packet_bytes : t -> int
val local_messages : t -> int
val flushes : t -> int
val steps : t -> int
val edges_scanned : t -> int
val spawned : t -> int
val memo_ops : t -> int
val supersteps : t -> int
val tracker_updates : t -> int
val busy_ns : t -> int

(** Fault-plane counters; all zero on fault-free runs. *)
val fault_drops : t -> int

val fault_dups : t -> int
val fault_delays : t -> int
val retransmits : t -> int
val dup_dropped : t -> int
val acks : t -> int
val abandoned : t -> int

(** Adaptive-repartitioning counters; all zero with static partitioning. *)
val migrations : t -> int

val migrated_entries : t -> int
val forwarded : t -> int
val stashed : t -> int

(** Frontier-batching counters; all zero when batching is off. *)
val batches : t -> int

val batched_traversers : t -> int
val coalesced_msgs : t -> int

(** Traversers-per-batch distribution. *)
val batch_sizes : t -> Histogram.t

(** Compiled-plan-cache counters; all zero when no cache is used. *)
val plan_hits : t -> int

val plan_misses : t -> int
val plan_verifications : t -> int

(** Hierarchical-tracking tier counters; all zero when fanout is unset.
    [delegate_merges] counts subtree weights absorbed at interior
    delegates, [delegate_forwards] the merged messages they ship upward;
    root-tier receipts are {!tracker_updates}. *)
val delegate_merges : t -> int

val delegate_forwards : t -> int

(** Trace events overwritten in the bounded recorder ring; zero when the
    trace is complete (or tracing is off). *)
val trace_dropped : t -> int

(** Whether any migration counter is non-zero. *)
val migration_seen : t -> bool

(** Whether any batching counter is non-zero. *)
val batching_seen : t -> bool

(** Whether any delegate-tier counter is non-zero. *)
val hierarchy_seen : t -> bool

(** Whether any plan-cache counter is non-zero. *)
val plan_cache_seen : t -> bool

(** Whether any fault-plane counter is non-zero. *)
val faults_seen : t -> bool

val pp : Format.formatter -> t -> unit
