(* Simulated cluster: topology, CPU cost model and NIC resources.

   The cluster mirrors the paper's testbed shape — [n_nodes] machines, each
   running [workers_per_node] single-threaded workers (one graph partition
   per worker, §IV). CPU work is charged from the [costs] table; outgoing
   packets serialize through a per-node NIC whose occupancy models both
   bandwidth and packet-rate limits. *)

type costs = {
  step_dispatch : Sim_time.t; (* per traverser step: dequeue + dispatch *)
  per_edge : Sim_time.t; (* adjacency-scan cost per edge *)
  per_property : Sim_time.t; (* property column read *)
  memo_op : Sim_time.t; (* memo hash probe or update *)
  progress_add : Sim_time.t; (* one weight addition (§IV-A: one integer add) *)
  progress_coalesce : Sim_time.t; (* hash-merge of a finished weight into the local memo *)
  buffer_append : Sim_time.t; (* tier-1 append under TLC *)
  flush_handoff : Sim_time.t; (* worker-to-network-thread synchronization *)
  direct_send : Sim_time.t; (* per-message syscall without TLC *)
  recv_message : Sim_time.t; (* deserialize one incoming message *)
  latch : Sim_time.t; (* base latch cost in the non-partitioned model *)
  barrier : Sim_time.t; (* BSP global barrier fixed cost *)
  operator_sched : Sim_time.t; (* dataflow per-operator scheduling overhead *)
}

let default_costs =
  {
    step_dispatch = Sim_time.ns 60;
    per_edge = Sim_time.ns 6;
    per_property = Sim_time.ns 12;
    memo_op = Sim_time.ns 45;
    progress_add = Sim_time.ns 3;
    progress_coalesce = Sim_time.ns 10;
    buffer_append = Sim_time.ns 18;
    flush_handoff = Sim_time.ns 350;
    direct_send = Sim_time.ns 1_800;
    recv_message = Sim_time.ns 25;
    latch = Sim_time.ns 110;
    barrier = Sim_time.us 40;
    operator_sched = Sim_time.ns 90;
  }

type config = {
  n_nodes : int;
  workers_per_node : int;
  net : Netmodel.t;
  costs : costs;
}

let default_config =
  { n_nodes = 8; workers_per_node = 16; net = Netmodel.default; costs = default_costs }

type packet_info = {
  src_node : int;
  dst_node : int;
  bytes : int;
  nic_start : Sim_time.t;
  arrival : Sim_time.t;
}

type pkt_event =
  | Pkt_send
  | Pkt_retransmit
  | Pkt_deliver
  | Pkt_dup
  | Pkt_ack
  | Pkt_abandon

type protocol_event = {
  pkt_ev : pkt_event;
  ev_src : int;
  ev_dst : int;
  ev_seq : int;
}

type t = {
  config : config;
  events : Event_queue.t;
  metrics : Metrics.t;
  nic_busy : Sim_time.t array; (* per-node NIC free-at time *)
  mutable on_packet : (packet_info -> unit) option;
      (* observability hook; the sim layer cannot depend on lib/obs, so
         tracing subscribes through this plain callback *)
  mutable on_protocol : (protocol_event -> unit) option;
      (* conformance hook; the analysis layer's compiled monitors
         subscribe here under ~check:true, [None] costs nothing *)
  mutable faults : Faults.t option;
      (* fault-injection plane; [None] (the default) is the perfect
         network and leaves every code path untouched *)
  mutable mutation : Mutation.t option;
      (* seeded protocol mutant; [None] (always, outside checker
         validation) leaves every protocol intact *)
}

let create config =
  if config.n_nodes <= 0 || config.workers_per_node <= 0 then
    invalid_arg "Cluster.create: need at least one node and one worker";
  {
    config;
    events = Event_queue.create ();
    metrics = Metrics.create ();
    nic_busy = Array.make config.n_nodes Sim_time.zero;
    on_packet = None;
    on_protocol = None;
    faults = None;
    mutation = None;
  }

let set_packet_hook t hook = t.on_packet <- hook
let set_protocol_hook t hook = t.on_protocol <- hook
let set_faults t faults = t.faults <- faults
let faults t = t.faults
let set_mutation t m = t.mutation <- m
let mutation t = t.mutation

let emit_protocol t ev ~src ~dst ~seq =
  match t.on_protocol with
  | None -> ()
  | Some hook -> hook { pkt_ev = ev; ev_src = src; ev_dst = dst; ev_seq = seq }

(* Dependence tags for the schedule explorer: events that touch the same
   (directed link | node | worker) commute with nothing in their class and
   with everything outside it, so tags partition same-timestamp ties into
   meaningful reorderings. Tag 0 is "untagged" (never reordered against
   its own class). The ranges are disjoint by construction. *)
let link_tag t ~src_node ~dst_node = 1 + (src_node * t.config.n_nodes) + dst_node
let node_tag t node = 1 + (t.config.n_nodes * t.config.n_nodes) + node
let worker_tag t w = 1 + (t.config.n_nodes * (t.config.n_nodes + 1)) + w

let config t = t.config
let events t = t.events
let metrics t = t.metrics
let costs t = t.config.costs
let net t = t.config.net
let n_nodes t = t.config.n_nodes
let n_workers t = t.config.n_nodes * t.config.workers_per_node
let node_of_worker t w = w / t.config.workers_per_node
let same_node t w1 w2 = node_of_worker t w1 = node_of_worker t w2
let now t = Event_queue.now t.events

let workers_of_node t node =
  Array.init t.config.workers_per_node (fun i -> (node * t.config.workers_per_node) + i)

(* Serialize a packet through the source node's NIC and invoke [arrive] at
   the destination-side arrival time. [at] is the logical hand-off time
   (>= now modulo in-quantum skew, which we clamp). *)
let send_packet t ~at ~src_node ~dst_node ~bytes arrive =
  assert (src_node <> dst_node);
  let at = max at (now t) in
  let start = max at t.nic_busy.(src_node) in
  let occupancy = Netmodel.nic_occupancy t.config.net ~bytes in
  t.nic_busy.(src_node) <- Sim_time.add start occupancy;
  Metrics.count_packet t.metrics bytes;
  let arrival = Sim_time.add (Sim_time.add start occupancy) t.config.net.Netmodel.wire_latency in
  (match t.on_packet with
  | None -> ()
  | Some hook -> hook { src_node; dst_node; bytes; nic_start = start; arrival });
  let tag = link_tag t ~src_node ~dst_node in
  match t.faults with
  | None -> Event_queue.schedule_at ~tag t.events ~time:arrival arrive
  | Some f ->
    (* The sender always pays NIC serialization (the loss is on the
       wire); what varies is whether — and when — the receiver side runs.
       A paused destination defers processing to its release time. *)
    let verdict = Faults.packet_verdict f in
    if verdict.Faults.dropped then Metrics.count_fault_drop t.metrics
    else begin
      let arrival =
        if Sim_time.compare verdict.Faults.extra_delay Sim_time.zero > 0 then begin
          Metrics.count_fault_delay t.metrics;
          Sim_time.add arrival verdict.Faults.extra_delay
        end
        else arrival
      in
      let arrival = Faults.release f ~node:dst_node ~at:arrival in
      Event_queue.schedule_at ~tag t.events ~time:arrival arrive;
      if verdict.Faults.duplicated then begin
        Metrics.count_fault_dup t.metrics;
        (* The ghost copy trails by one wire latency; receivers dedup by
           sequence number, so it only costs a discarded arrival. *)
        Event_queue.schedule_at ~tag t.events
          ~time:(Sim_time.add arrival t.config.net.Netmodel.wire_latency)
          arrive
      end
    end

(* Same-node shared-memory handoff (the §IV-B shortcut). *)
let send_local ?tag t ~at arrive =
  let at = max at (now t) in
  Metrics.count_local_message t.metrics;
  let arrival = Sim_time.add at t.config.net.Netmodel.shm_latency in
  Event_queue.schedule_at ?tag t.events ~time:arrival arrive
