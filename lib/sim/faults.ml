(* Deterministic fault-injection plane.

   The spec is pure data; the runtime holds one seeded PRNG that every
   probabilistic decision draws from. Decisions are requested at
   deterministic points (Cluster.send_packet, which runs in event-queue
   order), so a (spec, workload) pair replays byte-identically — the
   property the chaos suite asserts.

   Slowdown and pauses are schedule-only (no randomness): a straggler
   factor scales whatever CPU cost the engine charges on that node, and
   a pause window defers both packet processing and worker quanta to the
   window's end. *)

type pause = {
  pause_node : int;
  pause_from : Sim_time.t;
  pause_until : Sim_time.t;
}

type spec = {
  seed : int;
  drop : float;
  duplicate : float;
  delay_prob : float;
  delay : Sim_time.t;
  slow_nodes : (int * float) list;
  pauses : pause list;
  retry_timeout : Sim_time.t;
  max_retries : int;
}

let none =
  {
    seed = 0xFA01;
    drop = 0.0;
    duplicate = 0.0;
    delay_prob = 0.0;
    delay = Sim_time.us 200;
    slow_nodes = [];
    pauses = [];
    retry_timeout = Sim_time.us 50;
    max_retries = 16;
  }

let pause ~node ~from_ ~until = { pause_node = node; pause_from = from_; pause_until = until }

type t = {
  spec : spec;
  prng : Prng.t;
}

let check_probability name p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Fmt.str "Faults.create: %s probability %g outside [0, 1]" name p)

let create spec =
  check_probability "drop" spec.drop;
  check_probability "duplicate" spec.duplicate;
  check_probability "delay" spec.delay_prob;
  List.iter
    (fun (node, factor) ->
      if factor < 1.0 then
        invalid_arg (Fmt.str "Faults.create: node %d slowdown %g below 1.0" node factor))
    spec.slow_nodes;
  List.iter
    (fun p ->
      if Sim_time.compare p.pause_until p.pause_from < 0 then
        invalid_arg
          (Fmt.str "Faults.create: node %d pause window ends (%a) before it starts (%a)"
             p.pause_node Sim_time.pp p.pause_until Sim_time.pp p.pause_from))
    spec.pauses;
  if spec.max_retries < 0 then invalid_arg "Faults.create: negative max_retries";
  if Sim_time.compare spec.retry_timeout Sim_time.zero <= 0 then
    invalid_arg "Faults.create: retry_timeout must be positive";
  { spec; prng = Prng.create spec.seed }

let spec t = t.spec

type verdict = {
  dropped : bool;
  duplicated : bool;
  extra_delay : Sim_time.t;
}

(* Each decision consumes exactly one draw so the stream stays aligned
   whatever the probabilities are. *)
let decide prng p = if p <= 0.0 then false else Prng.chance prng p

let packet_verdict t =
  let s = t.spec in
  let dropped = decide t.prng s.drop in
  if dropped then { dropped = true; duplicated = false; extra_delay = Sim_time.zero }
  else
    let duplicated = decide t.prng s.duplicate in
    let spiked = decide t.prng s.delay_prob in
    { dropped = false; duplicated; extra_delay = (if spiked then s.delay else Sim_time.zero) }

let slowdown t ~node =
  match List.assoc_opt node t.spec.slow_nodes with
  | Some factor -> factor
  | None -> 1.0

let scale t ~node cost =
  let factor = slowdown t ~node in
  if factor = 1.0 then cost
  else Sim_time.of_float_ns (float_of_int (Sim_time.to_ns cost) *. factor)

(* Overlapping or back-to-back windows chain: moving to one window's end
   may land inside another, so iterate to a fixpoint (the list is tiny
   and windows are finite, so this terminates). *)
let release t ~node ~at =
  let step at =
    List.fold_left
      (fun acc p ->
        if
          p.pause_node = node
          && Sim_time.compare p.pause_from acc <= 0
          && Sim_time.compare acc p.pause_until < 0
        then max acc p.pause_until
        else acc)
      at t.spec.pauses
  in
  let rec fix at =
    let next = step at in
    if Sim_time.compare next at = 0 then at else fix next
  in
  fix at

let paused t ~node ~at = Sim_time.compare (release t ~node ~at) at > 0
