(* Two-tier message-passing channel (§IV-B of the paper).

   Tier 1 (thread-level combining, TLC): every worker keeps one buffer per
   destination node; messages stash there and the buffer flushes to tier 2
   when it exceeds [flush_bytes] (8 KB in the paper) or when the worker
   runs out of work. Tier 2 (node-level combining, NLC): a per-node network
   thread merges flushed buffers headed to the same destination node within
   a short window and emits one packet. Same-node messages short-cut
   through shared memory.

   Both tiers are independently toggleable, which is exactly the Figure 12
   ablation: no batching at all (every message is a packet and pays a
   syscall), TLC only (each flush is a packet), or TLC + NLC (full system).

   [send] and [flush_worker] return the CPU time the *calling worker*
   spent, which the engine adds to that worker's busy time. *)

type config = {
  tlc : bool;
  nlc : bool;
  flush_bytes : int;
  nlc_window : Sim_time.t;
}

let default_config = { tlc = true; nlc = true; flush_bytes = 8192; nlc_window = Sim_time.us 3 }

let no_batching = { default_config with tlc = false; nlc = false }
let tlc_only = { default_config with nlc = false }

type 'a message = {
  dst_worker : int;
  payload : 'a;
  bytes : int;
}

(* --- Reliable delivery (active only under a fault plane) -------------

   With faults attached to the cluster, packets can be lost, duplicated
   or delayed, so tier-2 output switches to a per-link sequence-numbered
   protocol: every data packet carries (link, seq); the receiver
   delivers a seq exactly once (dedup window = a low watermark plus the
   out-of-order set above it) and always acks; the sender retransmits on
   ack timeout with exponential backoff and abandons after
   [max_retries]. Weight conservation under retransmission is free:
   the traverser/progress payloads travel with the packet, and the dedup
   window guarantees the payloads run exactly once, so no weight is ever
   double-counted. Without faults none of this state exists and the
   send path is byte-identical to the unreliable build. *)

type 'a packet = {
  p_src : int;
  p_dst : int;
  p_seq : int;
  p_messages : 'a message Vec.t;
  p_bytes : int;
}

type 'a reliable = {
  timeout : Sim_time.t; (* base ack timeout *)
  max_retries : int;
  next_seq : int array array; (* [src_node].(dst_node) *)
  outstanding : (int, 'a packet) Hashtbl.t array array; (* [src].(dst): unacked seqs *)
  recv_low : int array array; (* [dst].(src): all seqs below are delivered *)
  recv_seen : (int, unit) Hashtbl.t array array; (* [dst].(src): delivered >= low *)
}

let seq_header_bytes = 8
let ack_bytes = 16
let max_backoff_doublings = 6

type 'a t = {
  cluster : Cluster.t;
  config : config;
  deliver : int -> 'a -> unit; (* dst worker, payload; runs at arrival time *)
  buffers : 'a message Vec.t array array; (* tier 1: [worker].(dst_node) *)
  buffer_bytes : int array array;
  pending : 'a message Vec.t array array; (* tier 2: [src_node].(dst_node) *)
  pending_bytes : int array array;
  window_open : bool array array;
  reliable : 'a reliable option;
  (* True exactly while [deliver] runs for a packet whose delivering copy
     was a retransmission (attempt > 0). Observers (the causal tracer)
     read it from inside the deliver callback to classify the hop as
     retransmit-recovery rather than plain network time. *)
  mutable delivering_retx : bool;
}

let create cluster config ~dummy ~deliver =
  let n_workers = Cluster.n_workers cluster in
  let n_nodes = Cluster.n_nodes cluster in
  let dummy_message = { dst_worker = -1; payload = dummy; bytes = 0 } in
  let buffer_matrix rows =
    Array.init rows (fun _ -> Array.init n_nodes (fun _ -> Vec.create ~dummy:dummy_message))
  in
  let reliable =
    match Cluster.faults cluster with
    | None -> None
    | Some faults ->
      let spec = Faults.spec faults in
      let table () = Array.init n_nodes (fun _ -> Array.init n_nodes (fun _ -> Hashtbl.create 16)) in
      Some
        {
          timeout = spec.Faults.retry_timeout;
          max_retries = spec.Faults.max_retries;
          next_seq = Array.make_matrix n_nodes n_nodes 0;
          outstanding = table ();
          recv_low = Array.make_matrix n_nodes n_nodes 0;
          recv_seen = table ();
        }
  in
  {
    cluster;
    config;
    deliver;
    buffers = buffer_matrix n_workers;
    buffer_bytes = Array.make_matrix n_workers n_nodes 0;
    pending = buffer_matrix n_nodes;
    pending_bytes = Array.make_matrix n_nodes n_nodes 0;
    window_open = Array.make_matrix n_nodes n_nodes false;
    reliable;
    delivering_retx = false;
  }

let config t = t.config

let costs t = Cluster.costs t.cluster

(* Hand a list of messages to the destination node: charge per-message
   receive cost is the engine's business; here we just run [deliver] for
   each at arrival order. *)
let deliver_all t messages = Vec.iter (fun m -> t.deliver m.dst_worker m.payload) messages

(* Exponential backoff, capped so a long outage retries every few ms
   instead of going silent. *)
let backoff r ~attempt = r.timeout * (1 lsl min attempt max_backoff_doublings)

let rec transmit t r ~at ~attempt pkt =
  let events = Cluster.events t.cluster in
  let metrics = Cluster.metrics t.cluster in
  let at = max at (Cluster.now t.cluster) in
  Cluster.send_packet t.cluster ~at ~src_node:pkt.p_src ~dst_node:pkt.p_dst
    ~bytes:(pkt.p_bytes + seq_header_bytes)
    (fun () -> receive_data t r ~retx:(attempt > 0) pkt);
  (* Arm the ack timer: on expiry, retransmit iff still unacked. The
     timer shares the link's dependence class — whether it fires before
     or after a same-time ack arrival is a real protocol race. *)
  Event_queue.schedule_at events
    ~tag:(Cluster.link_tag t.cluster ~src_node:pkt.p_src ~dst_node:pkt.p_dst)
    ~time:(Sim_time.add at (backoff r ~attempt))
    (fun () ->
      if Hashtbl.mem r.outstanding.(pkt.p_src).(pkt.p_dst) pkt.p_seq then
        if Cluster.mutation t.cluster = Some Mutation.No_retransmit then
          (* Mutant: the timer fires but neither retransmits nor abandons,
             so a dropped packet is simply lost. *)
          ()
        else if attempt >= r.max_retries then begin
          (* Permanently lost: the sender stops; affected queries
             degrade to TIMEOUT instead of wedging the simulation. *)
          Metrics.count_abandoned metrics;
          Cluster.emit_protocol t.cluster Cluster.Pkt_abandon ~src:pkt.p_src ~dst:pkt.p_dst
            ~seq:pkt.p_seq;
          Hashtbl.remove r.outstanding.(pkt.p_src).(pkt.p_dst) pkt.p_seq
        end
        else begin
          Metrics.count_retransmit metrics;
          Cluster.emit_protocol t.cluster Cluster.Pkt_retransmit ~src:pkt.p_src ~dst:pkt.p_dst
            ~seq:pkt.p_seq;
          transmit t r ~at:(Event_queue.now events) ~attempt:(attempt + 1) pkt
        end)

and receive_data t r ~retx pkt =
  let metrics = Cluster.metrics t.cluster in
  let seen = r.recv_seen.(pkt.p_dst).(pkt.p_src) in
  let fresh = pkt.p_seq >= r.recv_low.(pkt.p_dst).(pkt.p_src) && not (Hashtbl.mem seen pkt.p_seq) in
  let fresh =
    (* Mutant: the dedup window is bypassed and every arrival — including
       retransmits of already-delivered packets — is applied. *)
    fresh || Cluster.mutation t.cluster = Some Mutation.Skip_dedup
  in
  if fresh then begin
    Hashtbl.replace seen pkt.p_seq ();
    (* Advance the low watermark over the contiguous prefix, shrinking
       the dedup window. *)
    let low = ref r.recv_low.(pkt.p_dst).(pkt.p_src) in
    while Hashtbl.mem seen !low do
      Hashtbl.remove seen !low;
      incr low
    done;
    r.recv_low.(pkt.p_dst).(pkt.p_src) <- !low;
    Cluster.emit_protocol t.cluster Cluster.Pkt_deliver ~src:pkt.p_src ~dst:pkt.p_dst
      ~seq:pkt.p_seq;
    t.delivering_retx <- retx;
    deliver_all t pkt.p_messages;
    t.delivering_retx <- false
  end
  else begin
    Metrics.count_dup_dropped metrics;
    Cluster.emit_protocol t.cluster Cluster.Pkt_dup ~src:pkt.p_src ~dst:pkt.p_dst ~seq:pkt.p_seq
  end;
  (* Always ack — including duplicates, so a lost ack cannot cause an
     endless retransmit of an already-delivered packet. *)
  Metrics.count_ack metrics;
  Cluster.send_packet t.cluster
    ~at:(Cluster.now t.cluster)
    ~src_node:pkt.p_dst ~dst_node:pkt.p_src ~bytes:ack_bytes
    (fun () ->
      Cluster.emit_protocol t.cluster Cluster.Pkt_ack ~src:pkt.p_src ~dst:pkt.p_dst
        ~seq:pkt.p_seq;
      Hashtbl.remove r.outstanding.(pkt.p_src).(pkt.p_dst) pkt.p_seq)

let emit_packet t ~at ~src_node ~dst_node messages bytes =
  match t.reliable with
  | None ->
    Cluster.send_packet t.cluster ~at ~src_node ~dst_node ~bytes (fun () ->
        deliver_all t messages)
  | Some r ->
    let seq = r.next_seq.(src_node).(dst_node) in
    r.next_seq.(src_node).(dst_node) <- seq + 1;
    let pkt = { p_src = src_node; p_dst = dst_node; p_seq = seq; p_messages = messages; p_bytes = bytes } in
    Hashtbl.replace r.outstanding.(src_node).(dst_node) seq pkt;
    Cluster.emit_protocol t.cluster Cluster.Pkt_send ~src:src_node ~dst:dst_node ~seq;
    transmit t r ~at ~attempt:0 pkt

(* Tier-2 entry: either open/extend an NLC window or emit immediately. *)
let to_combiner t ~at ~src_node ~dst_node messages bytes =
  Metrics.count_flush (Cluster.metrics t.cluster);
  if t.config.nlc then begin
    let pending = t.pending.(src_node).(dst_node) in
    Vec.append ~into:pending messages;
    t.pending_bytes.(src_node).(dst_node) <- t.pending_bytes.(src_node).(dst_node) + bytes;
    if not t.window_open.(src_node).(dst_node) then begin
      t.window_open.(src_node).(dst_node) <- true;
      let fire_at = Sim_time.add (max at (Cluster.now t.cluster)) t.config.nlc_window in
      Event_queue.schedule_at (Cluster.events t.cluster)
        ~tag:(Cluster.link_tag t.cluster ~src_node ~dst_node)
        ~time:fire_at
        (fun () ->
          t.window_open.(src_node).(dst_node) <- false;
          let batch = t.pending.(src_node).(dst_node) in
          if not (Vec.is_empty batch) then begin
            let copy = Vec.of_array ~dummy:(Vec.get batch 0) (Vec.to_array batch) in
            let batch_bytes = t.pending_bytes.(src_node).(dst_node) in
            Vec.clear batch;
            t.pending_bytes.(src_node).(dst_node) <- 0;
            emit_packet t ~at:fire_at ~src_node ~dst_node copy batch_bytes
          end)
    end
  end
  else emit_packet t ~at ~src_node ~dst_node messages bytes

let delivering_retransmitted t = t.delivering_retx

let has_buffered t ~worker =
  Array.exists (fun buffer -> not (Vec.is_empty buffer)) t.buffers.(worker)

let flush_buffer t ~at ~worker ~dst_node =
  let buffer = t.buffers.(worker).(dst_node) in
  if Vec.is_empty buffer then Sim_time.zero
  else begin
    let messages = Vec.of_array ~dummy:(Vec.get buffer 0) (Vec.to_array buffer) in
    let bytes = t.buffer_bytes.(worker).(dst_node) in
    Vec.clear buffer;
    t.buffer_bytes.(worker).(dst_node) <- 0;
    let src_node = Cluster.node_of_worker t.cluster worker in
    to_combiner t ~at ~src_node ~dst_node messages bytes;
    (costs t).Cluster.flush_handoff
  end

(* Send one message; returns the sender's CPU cost. *)
let send t ~at ~src_worker ~dst_worker ~kind ~bytes payload =
  let metrics = Cluster.metrics t.cluster in
  if Cluster.same_node t.cluster src_worker dst_worker then begin
    (* Shared-memory shortcut: no NIC, no batching. *)
    Metrics.count_message metrics kind bytes;
    Cluster.send_local t.cluster
      ~tag:(Cluster.worker_tag t.cluster dst_worker)
      ~at
      (fun () -> t.deliver dst_worker payload);
    (costs t).Cluster.buffer_append
  end
  else begin
    Metrics.count_message metrics kind bytes;
    let dst_node = Cluster.node_of_worker t.cluster dst_worker in
    let message = { dst_worker; payload; bytes } in
    if t.config.tlc then begin
      let buffer = t.buffers.(src_worker).(dst_node) in
      Vec.push buffer message;
      t.buffer_bytes.(src_worker).(dst_node) <- t.buffer_bytes.(src_worker).(dst_node) + bytes;
      let append_cost = (costs t).Cluster.buffer_append in
      if t.buffer_bytes.(src_worker).(dst_node) >= t.config.flush_bytes then
        Sim_time.add append_cost (flush_buffer t ~at ~worker:src_worker ~dst_node)
      else append_cost
    end
    else begin
      (* No batching: the message is its own packet and pays a syscall. *)
      Metrics.count_flush metrics;
      let src_node = Cluster.node_of_worker t.cluster src_worker in
      let singleton = Vec.of_array ~dummy:message [| message |] in
      emit_packet t ~at ~src_node ~dst_node singleton bytes;
      (costs t).Cluster.direct_send
    end
  end

(* Flush every buffer of [worker] — called before the worker sleeps, as in
   §IV-B ("if there are no more traversers ready ... flush all buffers"). *)
let flush_worker t ~at ~worker =
  let total = ref Sim_time.zero in
  Array.iteri
    (fun dst_node _ -> total := Sim_time.add !total (flush_buffer t ~at ~worker ~dst_node))
    t.buffers.(worker);
  !total
