(** Deterministic fault-injection plane for the simulated cluster.

    A {!spec} declares the faults of a run: per-link packet drop /
    duplication / delay-spike probabilities, per-node slowdown factors
    (stragglers), and scheduled node pause windows. A runtime {!t} draws
    every probabilistic decision from one seeded {!Prng}, and decisions
    are requested in event-queue order, so equal seeds produce
    byte-identical runs — chaos experiments replay exactly.

    The plane only injects faults; surviving them (retry, dedup,
    degradation) is the engines' business. When a cluster carries a
    fault plane, the channel layer switches to sequence-numbered
    delivery with ack/timeout/retransmit, whose protocol constants also
    live in the spec. *)

(** One scheduled pause: the node freezes (no quantum runs, no packet is
    processed) for [\[from_ns, until_ns)] of simulated time. *)
type pause = {
  pause_node : int;
  pause_from : Sim_time.t;
  pause_until : Sim_time.t;
}

type spec = {
  seed : int;  (** seeds the fault PRNG; same seed, same fault schedule *)
  drop : float;  (** per-packet loss probability on every cross-node link *)
  duplicate : float;  (** per-packet duplication probability *)
  delay_prob : float;  (** per-packet probability of a delay spike *)
  delay : Sim_time.t;  (** extra latency added by one delay spike *)
  slow_nodes : (int * float) list;  (** straggler factors (>= 1.0) by node *)
  pauses : pause list;
  retry_timeout : Sim_time.t;  (** base ack timeout of the reliable channel *)
  max_retries : int;  (** retransmissions before a packet is abandoned *)
}

(** All-quiet spec: no faults, default protocol constants. Build real
    specs with [{ Faults.none with drop = 0.05; ... }]. *)
val none : spec

(** [pause ~node ~from_ ~until] — convenience constructor. *)
val pause : node:int -> from_:Sim_time.t -> until:Sim_time.t -> pause

type t

(** Validates probabilities, factors and windows; raises
    [Invalid_argument] on a malformed spec. *)
val create : spec -> t

val spec : t -> spec

(** Per-packet decision; consumes the fault PRNG. [dropped] subsumes the
    other fields (a dropped packet neither duplicates nor delays). *)
type verdict = {
  dropped : bool;
  duplicated : bool;
  extra_delay : Sim_time.t;  (** zero when no spike fired *)
}

val packet_verdict : t -> verdict

(** Straggler factor of a node; 1.0 when the node is not slowed. *)
val slowdown : t -> node:int -> float

(** Scale a CPU cost by the node's straggler factor (identity at 1.0). *)
val scale : t -> node:int -> Sim_time.t -> Sim_time.t

(** Earliest time at or after [at] when the node is not paused; [at]
    itself when no pause window covers it. *)
val release : t -> node:int -> at:Sim_time.t -> Sim_time.t

val paused : t -> node:int -> at:Sim_time.t -> bool
