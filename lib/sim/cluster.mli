(** Simulated cluster: topology, CPU cost table and per-node NIC resources. *)

type costs = {
  step_dispatch : Sim_time.t;
  per_edge : Sim_time.t;
  per_property : Sim_time.t;
  memo_op : Sim_time.t;
  progress_add : Sim_time.t;
  progress_coalesce : Sim_time.t;
  buffer_append : Sim_time.t;
  flush_handoff : Sim_time.t;
  direct_send : Sim_time.t;
  recv_message : Sim_time.t;
  latch : Sim_time.t;
  barrier : Sim_time.t;
  operator_sched : Sim_time.t;
}

val default_costs : costs

type config = {
  n_nodes : int;
  workers_per_node : int;
  net : Netmodel.t;
  costs : costs;
}

(** The paper's testbed shape: 8 nodes, 16 workers each, 200 Gbps. *)
val default_config : config

type packet_info = {
  src_node : int;
  dst_node : int;
  bytes : int;
  nic_start : Sim_time.t;  (** when the packet began serializing on the NIC *)
  arrival : Sim_time.t;
}

(** One step of the reliable-channel protocol, as observed on a directed
    link. Emitted through {!set_protocol_hook} by {!Channel} whenever the
    fault plane (and hence sequence-numbered delivery) is active. *)
type pkt_event =
  | Pkt_send  (** sequence number assigned, first transmission *)
  | Pkt_retransmit  (** ack timeout expired, packet sent again *)
  | Pkt_deliver  (** receiver accepted the packet as fresh *)
  | Pkt_dup  (** receiver discarded a duplicate *)
  | Pkt_ack  (** ack arrived back at the sender *)
  | Pkt_abandon  (** retry budget exhausted, sender gave up *)

type protocol_event = {
  pkt_ev : pkt_event;
  ev_src : int;  (** source node of the data packet *)
  ev_dst : int;  (** destination node of the data packet *)
  ev_seq : int;  (** per-link sequence number *)
}

type t

val create : config -> t

(** Observability hook invoked for every cross-node packet as it is
    scheduled; [None] (the default) disables it. *)
val set_packet_hook : t -> (packet_info -> unit) option -> unit

(** Conformance hook: the analysis layer's compiled protocol monitors
    subscribe here under [~check:true]; [None] (the default) costs
    nothing. *)
val set_protocol_hook : t -> (protocol_event -> unit) option -> unit

(** Invoke the protocol hook, if any. Used by {!Channel}. *)
val emit_protocol : t -> pkt_event -> src:int -> dst:int -> seq:int -> unit

(** Install a seeded protocol mutant ([None] = intact protocols). Only
    checker-validation paths ever set this. *)
val set_mutation : t -> Mutation.t option -> unit

val mutation : t -> Mutation.t option

(** Dependence tags for {!Event_queue} choosers. Each directed link, each
    node and each worker gets its own class; the ranges are disjoint and
    never 0 (the untagged class). *)
val link_tag : t -> src_node:int -> dst_node:int -> int

val node_tag : t -> int -> int
val worker_tag : t -> int -> int

(** Attach a fault-injection plane; [None] (the default) is the perfect
    network and leaves every code path byte-identical to a fault-free
    build. With a plane attached, {!send_packet} consults it for
    drop/duplicate/delay verdicts and defers arrivals at paused nodes;
    {!Channel} switches to sequence-numbered reliable delivery. *)
val set_faults : t -> Faults.t option -> unit

val faults : t -> Faults.t option
val config : t -> config
val events : t -> Event_queue.t
val metrics : t -> Metrics.t
val costs : t -> costs
val net : t -> Netmodel.t
val n_nodes : t -> int
val n_workers : t -> int
val node_of_worker : t -> int -> int
val same_node : t -> int -> int -> bool
val now : t -> Sim_time.t
val workers_of_node : t -> int -> int array

(** Serialize a packet through the source NIC; [arrive] fires at the
    destination at the computed arrival time. *)
val send_packet :
  t -> at:Sim_time.t -> src_node:int -> dst_node:int -> bytes:int -> (unit -> unit) -> unit

(** Same-node shared-memory handoff. [tag] labels the arrival's
    dependence class for choosers. *)
val send_local : ?tag:int -> t -> at:Sim_time.t -> (unit -> unit) -> unit
