(** Simulated cluster: topology, CPU cost table and per-node NIC resources. *)

type costs = {
  step_dispatch : Sim_time.t;
  per_edge : Sim_time.t;
  per_property : Sim_time.t;
  memo_op : Sim_time.t;
  progress_add : Sim_time.t;
  progress_coalesce : Sim_time.t;
  buffer_append : Sim_time.t;
  flush_handoff : Sim_time.t;
  direct_send : Sim_time.t;
  recv_message : Sim_time.t;
  latch : Sim_time.t;
  barrier : Sim_time.t;
  operator_sched : Sim_time.t;
}

val default_costs : costs

type config = {
  n_nodes : int;
  workers_per_node : int;
  net : Netmodel.t;
  costs : costs;
}

(** The paper's testbed shape: 8 nodes, 16 workers each, 200 Gbps. *)
val default_config : config

type packet_info = {
  src_node : int;
  dst_node : int;
  bytes : int;
  nic_start : Sim_time.t;  (** when the packet began serializing on the NIC *)
  arrival : Sim_time.t;
}

type t

val create : config -> t

(** Observability hook invoked for every cross-node packet as it is
    scheduled; [None] (the default) disables it. *)
val set_packet_hook : t -> (packet_info -> unit) option -> unit

(** Attach a fault-injection plane; [None] (the default) is the perfect
    network and leaves every code path byte-identical to a fault-free
    build. With a plane attached, {!send_packet} consults it for
    drop/duplicate/delay verdicts and defers arrivals at paused nodes;
    {!Channel} switches to sequence-numbered reliable delivery. *)
val set_faults : t -> Faults.t option -> unit

val faults : t -> Faults.t option
val config : t -> config
val events : t -> Event_queue.t
val metrics : t -> Metrics.t
val costs : t -> costs
val net : t -> Netmodel.t
val n_nodes : t -> int
val n_workers : t -> int
val node_of_worker : t -> int -> int
val same_node : t -> int -> int -> bool
val now : t -> Sim_time.t
val workers_of_node : t -> int -> int array

(** Serialize a packet through the source NIC; [arrive] fires at the
    destination at the computed arrival time. *)
val send_packet :
  t -> at:Sim_time.t -> src_node:int -> dst_node:int -> bytes:int -> (unit -> unit) -> unit

(** Same-node shared-memory handoff. *)
val send_local : t -> at:Sim_time.t -> (unit -> unit) -> unit
