(** Deterministic discrete-event scheduler.

    The tie-break key for events scheduled at the same simulated time is
    the insertion sequence number — an explicit, monotonically increasing
    counter assigned by [schedule_at] — never implicit heap order. Equal
    times therefore fire in schedule order, and the whole simulation is a
    pure function of the schedule calls. *)

type t

(** One schedulable alternative at a tied timestamp, identified by its
    insertion sequence number and the scheduler-supplied dependence tag. *)
type choice = {
  c_seq : int;  (** insertion sequence — the deterministic tie-break key *)
  c_tag : int;  (** dependence class (link / worker / query); 0 = untagged *)
}

(** A chooser picks which of the tied entries fires first, by index into
    the array. Out-of-range picks fall back to index 0 (the default
    schedule order). The array always has at least two elements and is in
    ascending [c_seq] order. *)
type chooser = choice array -> int

val create : unit -> t

(** Current simulated time; advances only while running events. *)
val now : t -> Sim_time.t

(** Number of events executed so far. *)
val executed : t -> int

(** Number of events still scheduled. *)
val pending : t -> int

(** The sequence number the next scheduled event will receive. *)
val next_seq : t -> int

(** Install (or remove) a same-timestamp tie chooser. With [None] (the
    default) ties fire in insertion order; the explorer installs a chooser
    to permute commuting deliveries. Entries not picked are pushed back
    with their sequence numbers intact, so a chooser that always returns 0
    reproduces the default schedule exactly. *)
val set_chooser : t -> chooser option -> unit

(** Schedule a closure; raises if [time] is before [now]. Events at equal
    times fire in schedule order. [tag] labels the event's dependence
    class for choosers; it does not affect default ordering. *)
val schedule_at : ?tag:int -> t -> time:Sim_time.t -> (unit -> unit) -> unit

val schedule_after : ?tag:int -> t -> delay:Sim_time.t -> (unit -> unit) -> unit

(** Execute the next event; [false] when the queue is empty. *)
val step : t -> bool

(** Drain the queue; raises if [max_events] is exceeded. *)
val run_to_completion : ?max_events:int -> t -> unit

(** Run all events up to and including [time], then set the clock there. *)
val run_until : t -> time:Sim_time.t -> unit
