(** Model-checking harness: canonical engine workloads wired to
    {!Pstm_analysis.Explore}.

    A {!scenario} packages a cluster shape, a fault plane, engine options
    and a submission batch together with the sequential oracle's expected
    rows. {!runner} turns one into the [Explore.runner] the schedule
    explorer drives: each schedule runs the async engine under
    [~check:true] (sanitizers + protocol monitors live), then the harness
    additionally asserts termination and oracle-equal rows. The optional
    [mutation] seeds a protocol mutant ({!Pstm_sim.Mutation}) so tests and
    the CLI can demonstrate that the checkers catch each one. *)

type scenario

val scenarios : scenario list
val name : scenario -> string
val describe : scenario -> string
val find : string -> scenario option

(** Single k-hop query on the tiny dataset, no faults. *)
val default : scenario

(** The scenario whose workload provokes the given mutant's protocol
    machinery (dedup/retransmit need faults, stash draining needs
    migration waves, ...). *)
val for_mutation : Mutation.t -> scenario

(** Canonical result digest: per query, name + completion status + sorted
    rows. Deliberately excludes timing and traffic counters — those may
    legitimately differ across schedules; results may not. *)
val fingerprint : Pstm_engine.Engine.report -> string

(** Explorer entry point over the async engine. *)
val runner : ?mutation:Mutation.t -> scenario -> Pstm_analysis.Explore.runner

(** Same, for an arbitrary registry engine (the scenario contributes its
    workload and oracle; the engine brings its own cluster). Engines
    without an event queue simply expose zero choice points. *)
val engine_runner :
  ?mutation:Mutation.t -> (module Pstm_engine.Engine.S) -> scenario -> Pstm_analysis.Explore.runner
