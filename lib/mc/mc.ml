(* Canonical workloads for the schedule explorer.

   Each scenario is small enough that one engine run takes well under a
   millisecond of wall clock — the explorer runs dozens to hundreds of
   them — yet still exercises the protocol machinery its mutants corrupt:
   the chaos scenario's drop/duplicate faults force retransmission and
   dedup traffic, the migration scenario's aggressive refine interval
   forces mid-query vertex moves with stashed traversers.

   The graph, compiled programs and oracle rows are computed lazily once
   per scenario and shared across schedules: engines treat the graph as
   read-only, and the oracle has no clock, so sharing cannot leak state
   between runs. *)

open Pstm_engine
open Pstm_query
module Explore = Pstm_analysis.Explore

type scenario = {
  sc_name : string;
  sc_describe : string;
  sc_cluster : Cluster.config;
  sc_faults : Faults.spec option;
  sc_options : Async_engine.options;
  sc_graph : Graph.t Lazy.t;
  sc_subs : Engine.submission array Lazy.t;
  sc_oracle : string array Lazy.t; (* expected sorted rows, per query *)
}

let name s = s.sc_name
let describe s = s.sc_describe

let show_rows rows =
  Fmt.str "%a"
    (Fmt.list ~sep:(Fmt.any "@.") (Fmt.array ~sep:(Fmt.any "|") Value.pp))
    (Engine.sorted_rows rows)

let fingerprint (r : Engine.report) =
  Fmt.str "%a"
    (Fmt.array ~sep:(Fmt.any ";") (fun ppf (q : Engine.query_report) ->
         Fmt.pf ppf "%d:%s:%s:[%s]" q.Engine.qid q.Engine.name
           (match q.Engine.outcome with
           | Engine.Completed _ -> "ok"
           | o -> String.uppercase_ascii (Engine.outcome_name o))
           (show_rows q.Engine.rows)))
    r.Engine.queries

(* --- Scenario definitions ----------------------------------------------- *)

let tiny = lazy (Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny)

let khop graph ~start ~hops =
  Compile.compile ~name:"khop" graph
    Dsl.(v_lookup ~key:"id" (int start) |> repeat ~dir:Graph.Out ~times:hops () |> count |> build)

let oracle_of graph subs =
  lazy
    (Array.map
       (fun (s : Engine.submission) ->
         show_rows (Local_engine.run (Lazy.force graph) s.Engine.program))
       (Lazy.force subs))

let make ~name ~describe ?faults ?(options = Async_engine.default_options) ~cluster subs =
  {
    sc_name = name;
    sc_describe = describe;
    sc_cluster = cluster;
    sc_faults = faults;
    sc_options = options;
    sc_graph = tiny;
    sc_subs = subs;
    sc_oracle = oracle_of tiny subs;
  }

let small_cluster = { Cluster.default_config with Cluster.n_nodes = 3; workers_per_node = 3 }

let khop_scenario =
  make ~name:"khop" ~describe:"single 3-hop count on the tiny dataset, no faults"
    ~cluster:small_cluster
    (lazy [| Engine.submit (khop (Lazy.force tiny) ~start:1 ~hops:3) |])

let chaos_scenario =
  make ~name:"chaos"
    ~describe:"3-hop count under drop/duplicate/delay faults (retransmit + dedup traffic)"
    ~cluster:small_cluster
    ~faults:
      {
        Faults.none with
        Faults.seed = 0xC0DE;
        drop = 0.1;
        duplicate = 0.15;
        delay_prob = 0.2;
        delay = Sim_time.us 150;
      }
    (lazy [| Engine.submit (khop (Lazy.force tiny) ~start:1 ~hops:3) |])

let migration_cluster = { Cluster.default_config with Cluster.n_nodes = 2; workers_per_node = 4 }

(* Aggressive knobs so refinement rounds fire mid-query on the tiny
   workload (mirrors the repartition chaos suite). *)
let aggressive_adaptive =
  {
    Async_engine.default_options with
    Async_engine.partition = Partition.Adaptive;
    adaptive =
      {
        Async_engine.default_adaptive with
        Async_engine.refine_interval = Sim_time.us 5;
        min_traffic = 16;
      };
  }

let migration_scenario =
  let starts = [| 1; 2; 3; 5 |] in
  let waves = 3 in
  make ~name:"migration"
    ~describe:"k-hop waves under aggressive adaptive repartitioning (mid-query vertex moves)"
    ~cluster:migration_cluster ~options:aggressive_adaptive
    (lazy
      (Array.init
         (waves * Array.length starts)
         (fun i ->
           Engine.submit ~at:(Sim_time.us (i * 10))
             (khop (Lazy.force tiny) ~start:starts.(i mod Array.length starts) ~hops:2))))

let scenarios = [ khop_scenario; chaos_scenario; migration_scenario ]
let default = khop_scenario

let find n = List.find_opt (fun s -> String.equal s.sc_name n) scenarios

let for_mutation = function
  | Mutation.Skip_dedup | Mutation.No_retransmit -> chaos_scenario
  | Mutation.Drop_stash_drain -> migration_scenario
  | Mutation.Early_tracker_release -> khop_scenario

(* --- Runners ------------------------------------------------------------- *)

let common ?mutation s chooser =
  {
    Engine.Common.default with
    Engine.Common.check = true;
    faults = s.sc_faults;
    chooser;
    mutation;
  }

(* Beyond the engine's own sanitizers and monitors (which raise
   [Check_violation] mid-run), the harness asserts the two end-to-end
   properties of ISSUE Theorem 1: every query terminates, and its rows
   equal the sequential oracle's. *)
let judge s (report : Engine.report) =
  let oracle = Lazy.force s.sc_oracle in
  let violation = ref None in
  Array.iteri
    (fun i (q : Engine.query_report) ->
      if !violation = None then
        match Engine.completed_at q with
        | None ->
          violation := Some (Fmt.str "query %d (%s) did not complete" i q.Engine.name)
        | Some _ ->
          let got = show_rows q.Engine.rows in
          if not (String.equal got oracle.(i)) then
            violation :=
              Some
                (Fmt.str "query %d (%s) diverged from the oracle: got [%s], want [%s]" i
                   q.Engine.name got oracle.(i)))
    report.Engine.queries;
  { Explore.fingerprint = fingerprint report; violation = !violation }

let runner ?mutation s : Explore.runner =
 fun chooser ->
  match
    Async_engine.run ~options:s.sc_options
      ~common:(common ?mutation s chooser)
      ~cluster_config:s.sc_cluster ~channel_config:Channel.default_config
      ~graph:(Lazy.force s.sc_graph) (Lazy.force s.sc_subs)
  with
  | report -> judge s report
  | exception Engine.Check_violation msg -> { Explore.fingerprint = ""; violation = Some msg }

let engine_runner ?mutation (module E : Engine.S) s : Explore.runner =
 fun chooser ->
  match
    E.run ~common:(common ?mutation s chooser) ~graph:(Lazy.force s.sc_graph)
      (Lazy.force s.sc_subs)
  with
  | report -> judge s report
  | exception Engine.Check_violation msg -> { Explore.fingerprint = ""; violation = Some msg }
