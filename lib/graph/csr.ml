(* Compressed sparse row adjacency.

   One instance per direction: the out-CSR is built in edge-id order, so
   its [edge_ids] are the identity; the in-CSR is a permutation of the same
   edges and stores the original edge id at each position so that edge
   properties (keyed by edge id) remain reachable when traversing inward. *)

type t = {
  offsets : int array; (* length n_vertices + 1 *)
  targets : int array; (* neighbor vertex at each position *)
  labels : int array; (* edge label at each position *)
  edge_ids : int array; (* global edge id at each position *)
}

let n_vertices t = Array.length t.offsets - 1
let n_edges t = Array.length t.targets

let degree t v = t.offsets.(v + 1) - t.offsets.(v)

(* Adjacency slice of [v] as a half-open index range into the position
   arrays. Batch scans iterate [lo, hi) directly through the [*_at]
   accessors, so a frontier sweep costs no per-edge closure. *)
let slice t v = (t.offsets.(v), t.offsets.(v + 1))

let target_at t pos = t.targets.(pos)
let label_at t pos = t.labels.(pos)
let edge_id_at t pos = t.edge_ids.(pos)

let fold_neighbors_range t ?label ~lo ~hi ~init ~f =
  let acc = ref init in
  (match label with
  | None ->
    for pos = lo to hi - 1 do
      acc := f !acc ~pos
    done
  | Some l ->
    for pos = lo to hi - 1 do
      if t.labels.(pos) = l then acc := f !acc ~pos
    done);
  !acc

let iter_neighbors t ?label v f =
  let lo = t.offsets.(v) and hi = t.offsets.(v + 1) in
  match label with
  | None ->
    for pos = lo to hi - 1 do
      f ~target:t.targets.(pos) ~edge_id:t.edge_ids.(pos) ~label:t.labels.(pos)
    done
  | Some l ->
    for pos = lo to hi - 1 do
      if t.labels.(pos) = l then
        f ~target:t.targets.(pos) ~edge_id:t.edge_ids.(pos) ~label:l
    done

let fold_neighbors t ?label v ~init ~f =
  let acc = ref init in
  iter_neighbors t ?label v (fun ~target ~edge_id ~label ->
      acc := f !acc ~target ~edge_id ~label);
  !acc

let neighbors t ?label v =
  let out = Vec.create ~dummy:0 in
  iter_neighbors t ?label v (fun ~target ~edge_id:_ ~label:_ -> Vec.push out target);
  Vec.to_array out

let degree_with_label t label v =
  let lo, hi = slice t v in
  fold_neighbors_range t ~label ~lo ~hi ~init:0 ~f:(fun acc ~pos:_ -> acc + 1)

(* Build from parallel edge arrays. [edge_ids] gives the global id of each
   input edge; counting sort by source keeps construction linear. *)
let build ~n_vertices ~sources ~targets ~labels ~edge_ids =
  let m = Array.length sources in
  if Array.length targets <> m || Array.length labels <> m || Array.length edge_ids <> m then
    invalid_arg "Csr.build: array length mismatch";
  let offsets = Array.make (n_vertices + 1) 0 in
  for i = 0 to m - 1 do
    let s = sources.(i) in
    if s < 0 || s >= n_vertices then invalid_arg "Csr.build: source out of range";
    offsets.(s + 1) <- offsets.(s + 1) + 1
  done;
  for v = 1 to n_vertices do
    offsets.(v) <- offsets.(v) + offsets.(v - 1)
  done;
  let cursor = Array.copy offsets in
  let out_targets = Array.make m 0 in
  let out_labels = Array.make m 0 in
  let out_edge_ids = Array.make m 0 in
  for i = 0 to m - 1 do
    let s = sources.(i) in
    let pos = cursor.(s) in
    cursor.(s) <- pos + 1;
    out_targets.(pos) <- targets.(i);
    out_labels.(pos) <- labels.(i);
    out_edge_ids.(pos) <- edge_ids.(i)
  done;
  { offsets; targets = out_targets; labels = out_labels; edge_ids = out_edge_ids }

(* Memory footprint estimate, reported in the Table II "raw size" column. *)
let bytes t =
  8 * (Array.length t.offsets + (3 * Array.length t.targets))
