(** The partitioning function [H : V -> PartId] of the partitioned stateful
    graph model. One partition per worker. *)

type strategy =
  | Hash (** mixed hash of the id — the paper's scheme *)
  | Mod (** [v mod n_parts] — ablation; clusters generator hubs *)
  | Block (** contiguous ranges — ablation *)
  | Adaptive (** explicit per-vertex table, rewritable at runtime *)

type t

(** [assignment] seeds the explicit table of an [Adaptive] partition (it
    is copied); omitted, Adaptive starts from the Hash placement. Passing
    it with a static strategy is an error. *)
val create :
  ?strategy:strategy -> ?assignment:int array -> n_parts:int -> n_vertices:int -> unit -> t

val n_parts : t -> int

(** Owning partition of a vertex. *)
val owner : t -> int -> int

(** Rewrite a vertex's owner. Only valid on [Adaptive] partitions. *)
val set_owner : t -> int -> int -> unit

(** Snapshot of the current owner table (a fresh array). *)
val to_assignment : t -> int array

(** Vertices owned by a partition, ascending. *)
val members : t -> int -> int array

val size_of : t -> int -> int

(** Max partition size over mean size; 1.0 is perfect balance. Defined as
    1.0 when there are no vertices or more partitions than vertices. *)
val imbalance : t -> float
