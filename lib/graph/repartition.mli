(** Query-aware partition refinement: greedy label propagation over a
    profile of observed cross-partition traversal traffic, under a
    per-partition size cap. Pure table manipulation — the engine applies
    the returned moves through its migration protocol. *)

type move = {
  vertex : int;
  src : int; (** owner before refinement *)
  dst : int; (** proposed owner *)
}

type stats = {
  cut_before : int; (** profiled weight crossing partitions, before *)
  cut_after : int;
  total_weight : int; (** total profiled weight (cut + internal) *)
  moves : int;
  imbalance_before : float;
  imbalance_after : float;
  passes : int;
}

(** [refine ~n_parts ~assignment edges] proposes vertex moves minimizing
    the cut weight of the profiled [edges] — [(u, v, weight)] traversal
    traffic — starting from the owner table [assignment] (not mutated).
    No partition grows past [max_imbalance] times the mean vertex count
    (but always at least the ceiling perfect balance needs); when
    [max_heat_imbalance] is given, no partition accumulates more than
    that factor times the mean profiled traffic either, so co-location
    cannot serialize a hot workload onto a few workers. Moves are
    returned in ascending vertex order; deterministic for equal input. *)
val refine :
  ?max_imbalance:float ->
  ?max_heat_imbalance:float ->
  ?max_passes:int ->
  ?max_moves:int ->
  n_parts:int ->
  assignment:int array ->
  (int * int * int) array ->
  move list * stats

(** Profiled weight whose endpoints live in different partitions. *)
val cut_weight : assignment:int array -> (int * int * int) array -> int

(** Max-over-mean of explicit per-partition vertex counts (1.0 when
    there is nothing to balance). *)
val imbalance_of : n_vertices:int -> int array -> float
