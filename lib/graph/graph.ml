(* The assembled property graph G = (V, E, lambda).

   Immutable after construction (transactional updates live in the separate
   [pstm_txn] substrate). Both traversal directions are materialized as CSR
   structures sharing global edge ids, so edge properties are reachable
   either way. A registry of hash indexes backs the IndexLookup step. *)

type direction =
  | Out
  | In
  | Both

let pp_direction ppf = function
  | Out -> Fmt.string ppf "out"
  | In -> Fmt.string ppf "in"
  | Both -> Fmt.string ppf "both"

type t = {
  schema : Schema.t;
  n_vertices : int;
  vertex_label : int array;
  out_csr : Csr.t;
  in_csr : Csr.t;
  vertex_props : Props.t;
  edge_props : Props.t;
  edge_src : int array; (* endpoints by global edge id: the _src key *)
  edge_dst : int array; (* and the _dest key of the paper's model *)
  edge_label_by_id : int array;
  indexes : (int option * int, (Value.t, int Vec.t) Hashtbl.t) Hashtbl.t;
}

let schema t = t.schema
let n_vertices t = t.n_vertices
let n_edges t = Array.length t.edge_src

let check_vertex t v =
  if v < 0 || v >= t.n_vertices then invalid_arg "Graph: vertex out of range"

let vertex_label t v =
  check_vertex t v;
  t.vertex_label.(v)

let has_vertex_label t ~label v = vertex_label t v = label

let edge_src t e = t.edge_src.(e)
let edge_dst t e = t.edge_dst.(e)
let edge_label t e = t.edge_label_by_id.(e)

let out_degree t v =
  check_vertex t v;
  Csr.degree t.out_csr v

let in_degree t v =
  check_vertex t v;
  Csr.degree t.in_csr v

let degree t ~dir v =
  match dir with
  | Out -> out_degree t v
  | In -> in_degree t v
  | Both -> out_degree t v + in_degree t v

let iter_adjacent t ~dir ?label v f =
  check_vertex t v;
  match dir with
  | Out -> Csr.iter_neighbors t.out_csr ?label v f
  | In -> Csr.iter_neighbors t.in_csr ?label v f
  | Both ->
    Csr.iter_neighbors t.out_csr ?label v f;
    Csr.iter_neighbors t.in_csr ?label v f

let out_csr t = t.out_csr
let in_csr t = t.in_csr

let adjacent t ~dir ?label v =
  let out = Vec.create ~dummy:0 in
  iter_adjacent t ~dir ?label v (fun ~target ~edge_id:_ ~label:_ -> Vec.push out target);
  Vec.to_array out

let vertex_prop t ~key v =
  check_vertex t v;
  Props.get t.vertex_props ~key v

let vertex_prop_by_name t ~key v =
  match Schema.property_key_opt t.schema key with
  | None -> Value.Null
  | Some k -> vertex_prop t ~key:k v

let edge_prop t ~key e = Props.get t.edge_props ~key e

let iter_vertices t f =
  for v = 0 to t.n_vertices - 1 do
    f v
  done

let iter_vertices_with_label t label f =
  for v = 0 to t.n_vertices - 1 do
    if t.vertex_label.(v) = label then f v
  done

(* Average out-degree restricted to an edge label; the cost-based join
   planner uses it to estimate expansion cardinalities. *)
let avg_degree t ~dir ?label () =
  if t.n_vertices = 0 then 0.0
  else begin
    match label with
    | None -> float_of_int (n_edges t) /. float_of_int t.n_vertices
    | Some l ->
      let count = ref 0 in
      Array.iter (fun el -> if el = l then incr count) t.edge_label_by_id;
      ignore dir;
      float_of_int !count /. float_of_int t.n_vertices
  end

(* --- Index registry (backs the IndexLookup traversal strategy) --- *)

let ensure_index t ?vertex_label:vl ~key () =
  let id = (vl, key) in
  match Hashtbl.find_opt t.indexes id with
  | Some idx -> idx
  | None ->
    let idx = Hashtbl.create 1024 in
    let consider v =
      let value = Props.get t.vertex_props ~key v in
      if not (Value.is_null value) then begin
        let bucket =
          match Hashtbl.find_opt idx value with
          | Some b -> b
          | None ->
            let b = Vec.create ~dummy:0 in
            Hashtbl.add idx value b;
            b
        in
        Vec.push bucket v
      end
    in
    (match vl with
    | None -> iter_vertices t consider
    | Some l -> iter_vertices_with_label t l consider);
    Hashtbl.add t.indexes id idx;
    idx

let index_lookup t ?vertex_label:vl ~key value =
  let idx = ensure_index t ?vertex_label:vl ~key () in
  match Hashtbl.find_opt idx value with
  | None -> [||]
  | Some bucket -> Vec.to_array bucket

(* --- Size accounting for Table II --- *)

let bytes t =
  Csr.bytes t.out_csr + Csr.bytes t.in_csr + Props.bytes t.vertex_props
  + Props.bytes t.edge_props
  + (8 * (t.n_vertices + (3 * n_edges t)))

let make ~schema ~n_vertices ~vertex_label ~out_csr ~in_csr ~vertex_props ~edge_props
    ~edge_src ~edge_dst ~edge_label_by_id =
  {
    schema;
    n_vertices;
    vertex_label;
    out_csr;
    in_csr;
    vertex_props;
    edge_props;
    edge_src;
    edge_dst;
    edge_label_by_id;
    indexes = Hashtbl.create 8;
  }
