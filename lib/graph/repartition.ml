(* Query-aware partition refinement (Loom-style greedy label propagation).

   Input: the current owner table and a profile of cross-partition
   traversal traffic — weighted (u, v) edges counting how often a
   traverser hopped between the two vertices' partitions during real
   query execution. Output: a list of vertex moves that greedily reduces
   the profiled cut weight (traffic whose endpoints live in different
   partitions) under a per-partition size cap.

   The pass visits the profiled vertices hottest-first; each vertex is
   pulled toward the partition its profiled neighbors exchange the most
   weight with, exactly the label-propagation heuristic of streaming
   repartitioners (Loom, Fennel): cheap, deterministic, and effective on
   the skewed traffic that skewed graphs + skewed workloads produce.
   Multiple passes run until a pass stops improving (or limits hit).

   Everything here is pure table manipulation: the engine applies the
   returned moves through its migration protocol, the CLI and benches
   use the stats to report cut reduction. *)

type move = {
  vertex : int;
  src : int; (* owner before refinement *)
  dst : int; (* proposed owner *)
}

type stats = {
  cut_before : int; (* profiled weight crossing partitions, before *)
  cut_after : int;
  total_weight : int; (* total profiled weight (cut + internal) *)
  moves : int;
  imbalance_before : float; (* max/mean over the full vertex set *)
  imbalance_after : float;
  passes : int;
}

(* Max-over-mean of explicit per-partition counts. *)
let imbalance_of ~n_vertices sizes =
  let n_parts = Array.length sizes in
  if n_vertices = 0 || n_parts > n_vertices then 1.0
  else
    float_of_int (Array.fold_left max 0 sizes * n_parts) /. float_of_int n_vertices

let cut_weight ~assignment edges =
  Array.fold_left
    (fun acc (u, v, w) -> if assignment.(u) <> assignment.(v) then acc + w else acc)
    0 edges

let refine ?(max_imbalance = 1.1) ?max_heat_imbalance ?(max_passes = 8) ?(max_moves = max_int)
    ~n_parts ~(assignment : int array) (edges : (int * int * int) array) =
  let n_vertices = Array.length assignment in
  Array.iter
    (fun (u, v, w) ->
      if u < 0 || u >= n_vertices || v < 0 || v >= n_vertices then
        invalid_arg "Repartition.refine: profile edge endpoint out of range";
      if w < 0 then invalid_arg "Repartition.refine: negative profile weight")
    edges;
  let before = Array.copy assignment in
  let owner = Array.copy assignment in
  let sizes = Array.make n_parts 0 in
  Array.iter (fun p -> sizes.(p) <- sizes.(p) + 1) owner;
  (* Size cap: the imbalance bound, but never below what perfect balance
     itself requires (ceil n/parts), or nothing could ever move. *)
  let cap =
    max
      ((n_vertices + n_parts - 1) / n_parts)
      (int_of_float (max_imbalance *. float_of_int n_vertices /. float_of_int n_parts))
  in
  (* Adjacency over the profile (symmetrized: traffic hurts whichever
     side is remote), CSR-packed for cache-friendly passes. *)
  let deg = Array.make n_vertices 0 in
  Array.iter
    (fun (u, v, _) ->
      if u <> v then begin
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1
      end)
    edges;
  let offsets = Array.make (n_vertices + 1) 0 in
  for v = 0 to n_vertices - 1 do
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let nbr = Array.make (max 1 offsets.(n_vertices)) 0 in
  let nbr_w = Array.make (max 1 offsets.(n_vertices)) 0 in
  let fill = Array.copy offsets in
  Array.iter
    (fun (u, v, w) ->
      if u <> v then begin
        nbr.(fill.(u)) <- v;
        nbr_w.(fill.(u)) <- w;
        fill.(u) <- fill.(u) + 1;
        nbr.(fill.(v)) <- u;
        nbr_w.(fill.(v)) <- w;
        fill.(v) <- fill.(v) + 1
      end)
    edges;
  (* Hottest-first visiting order over the vertices the profile touched. *)
  let heat = Array.make n_vertices 0 in
  for v = 0 to n_vertices - 1 do
    for i = offsets.(v) to offsets.(v + 1) - 1 do
      heat.(v) <- heat.(v) + nbr_w.(i)
    done
  done;
  (* Optional heat cap: bounds the profiled traffic a partition may
     accumulate, so co-locating hot communities cannot serialize the
     workload onto a few workers (the communication/parallelism
     trade-off of any locality-maximizing partitioner). *)
  let total_heat = Array.fold_left ( + ) 0 heat in
  let heat_cap =
    match max_heat_imbalance with
    | None -> max_int
    | Some f -> int_of_float (f *. float_of_int total_heat /. float_of_int n_parts)
  in
  let part_heat = Array.make n_parts 0 in
  for v = 0 to n_vertices - 1 do
    part_heat.(owner.(v)) <- part_heat.(owner.(v)) + heat.(v)
  done;
  let touched =
    Array.of_seq
      (Seq.filter (fun v -> heat.(v) > 0) (Seq.init n_vertices Fun.id))
  in
  Array.sort
    (fun a b -> match Int.compare heat.(b) heat.(a) with 0 -> Int.compare a b | c -> c)
    touched;
  (* Per-partition weight scratchpad, reset per vertex via a dirty list. *)
  let part_w = Array.make n_parts 0 in
  let dirty = Array.make n_parts 0 in
  let moved = ref 0 in
  let passes = ref 0 in
  let continue = ref (Array.length touched > 0 && max_moves > 0) in
  while !continue && !passes < max_passes do
    incr passes;
    let pass_gain = ref 0 in
    Array.iter
      (fun v ->
        if !moved < max_moves then begin
          let n_dirty = ref 0 in
          for i = offsets.(v) to offsets.(v + 1) - 1 do
            let p = owner.(nbr.(i)) in
            if part_w.(p) = 0 then begin
              dirty.(!n_dirty) <- p;
              incr n_dirty
            end;
            part_w.(p) <- part_w.(p) + nbr_w.(i)
          done;
          let cur = owner.(v) in
          let here = part_w.(cur) in
          (* Best candidate: most profiled weight, room under the cap;
             ties break toward the smallest partition id. *)
          let best = ref cur in
          let best_w = ref here in
          for i = 0 to !n_dirty - 1 do
            let p = dirty.(i) in
            if
              (part_w.(p) > !best_w || (part_w.(p) = !best_w && p < !best))
              && (p = cur || (sizes.(p) < cap && part_heat.(p) + heat.(v) <= heat_cap))
            then begin
              best := p;
              best_w := part_w.(p)
            end
          done;
          if !best <> cur && !best_w > here then begin
            owner.(v) <- !best;
            sizes.(cur) <- sizes.(cur) - 1;
            sizes.(!best) <- sizes.(!best) + 1;
            part_heat.(cur) <- part_heat.(cur) - heat.(v);
            part_heat.(!best) <- part_heat.(!best) + heat.(v);
            pass_gain := !pass_gain + (!best_w - here);
            (* Net moved vertices: a vertex returning home in a later
               pass un-counts itself. *)
            if cur = before.(v) then incr moved
            else if !best = before.(v) then decr moved
          end;
          for i = 0 to !n_dirty - 1 do
            part_w.(dirty.(i)) <- 0
          done
        end)
      touched;
    if !pass_gain = 0 || !moved >= max_moves then continue := false
  done;
  let moves = ref [] in
  for v = n_vertices - 1 downto 0 do
    if owner.(v) <> before.(v) then moves := { vertex = v; src = before.(v); dst = owner.(v) } :: !moves
  done;
  let sizes_before = Array.make n_parts 0 in
  Array.iter (fun p -> sizes_before.(p) <- sizes_before.(p) + 1) before;
  let total_weight = Array.fold_left (fun acc (_, _, w) -> acc + w) 0 edges in
  ( !moves,
    {
      cut_before = cut_weight ~assignment:before edges;
      cut_after = cut_weight ~assignment:owner edges;
      total_weight;
      moves = List.length !moves;
      imbalance_before = imbalance_of ~n_vertices sizes_before;
      imbalance_after = imbalance_of ~n_vertices sizes;
      passes = !passes;
    } )
