(* Columnar property storage.

   Properties are stored per key as a column over all vertices (or all
   edges). Homogeneous columns are specialized to unboxed int/float/string
   arrays with a validity bitset; heterogeneous or sparse columns fall back
   to a boxed [Value.t] array. Missing entries read as [Value.Null]. *)

type column =
  | Ints of int array * Bitset.t
  | Floats of float array * Bitset.t
  | Strs of string array * Bitset.t
  | Mixed of Value.t array

type t = {
  size : int; (* number of rows (vertices or edges) *)
  columns : (int, column) Hashtbl.t; (* keyed by interned property-key id *)
}

let create ~size = { size; columns = Hashtbl.create 16 }

let size t = t.size

let has_key t key = Hashtbl.mem t.columns key

let keys t =
  (* det-ok: keys sorted so callers see a stable enumeration *)
  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.columns [])

let get t ~key id =
  if id < 0 || id >= t.size then invalid_arg "Props.get: row out of range";
  match Hashtbl.find_opt t.columns key with
  | None -> Value.Null
  | Some (Ints (data, valid)) -> if Bitset.mem valid id then Value.Int data.(id) else Value.Null
  | Some (Floats (data, valid)) ->
    if Bitset.mem valid id then Value.Float data.(id) else Value.Null
  | Some (Strs (data, valid)) -> if Bitset.mem valid id then Value.Str data.(id) else Value.Null
  | Some (Mixed data) -> data.(id)

let get_int t ~key id =
  match Hashtbl.find_opt t.columns key with
  | Some (Ints (data, valid)) when Bitset.mem valid id -> Some data.(id)
  | Some _ -> Value.to_int (get t ~key id)
  | None -> None

(* Materialize a column from sparse (row, value) pairs. The column is
   specialized when every present value has the same primitive shape. *)
let column_of_pairs ~size pairs =
  let all p = not (Vec.exists (fun (_, v) -> not (p v)) pairs) in
  let is_int = function Value.Int _ -> true | _ -> false in
  let is_float = function Value.Float _ -> true | _ -> false in
  let is_str = function Value.Str _ -> true | _ -> false in
  if Vec.is_empty pairs then Mixed (Array.make size Value.Null)
  else if all is_int then begin
    let data = Array.make size 0 and valid = Bitset.create size in
    Vec.iter
      (fun (id, v) ->
        data.(id) <- Value.to_int_exn v;
        Bitset.add valid id)
      pairs;
    Ints (data, valid)
  end
  else if all is_float then begin
    let data = Array.make size 0.0 and valid = Bitset.create size in
    Vec.iter
      (fun (id, v) ->
        data.(id) <- Value.to_float_exn v;
        Bitset.add valid id)
      pairs;
    Floats (data, valid)
  end
  else if all is_str then begin
    let data = Array.make size "" and valid = Bitset.create size in
    Vec.iter
      (fun (id, v) ->
        (match v with Value.Str s -> data.(id) <- s | _ -> assert false);
        Bitset.add valid id)
      pairs;
    Strs (data, valid)
  end
  else begin
    let data = Array.make size Value.Null in
    Vec.iter (fun (id, v) -> data.(id) <- v) pairs;
    Mixed data
  end

let set_column t ~key column = Hashtbl.replace t.columns key column

let of_sparse ~size sparse =
  let t = create ~size in
  (* Keys are distinct and each key's column is built independently into
     its own slot, so no output depends on visit order. *)
  (* det-ok: independent per-key column builds; order cannot matter *)
  Hashtbl.iter (fun key pairs -> set_column t ~key (column_of_pairs ~size pairs)) sparse;
  t

let column_bytes = function
  | Ints (data, _) -> 8 * Array.length data
  | Floats (data, _) -> 8 * Array.length data
  | Strs (data, _) -> Array.fold_left (fun acc s -> acc + 16 + String.length s) 0 data
  | Mixed data -> Array.fold_left (fun acc v -> acc + 8 + Value.bytes v) 0 data

(* det-ok: commutative sum over columns *)
let bytes t = Hashtbl.fold (fun _ col acc -> acc + column_bytes col) t.columns 0
