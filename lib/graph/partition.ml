(* Graph partitioning function H : V -> PartId (§II-C of the paper).

   One partition per worker; the PSTM engines route every traverser to the
   worker owning its current vertex. Hash partitioning is the paper's
   choice; block partitioning is kept as an ablation (it concentrates BFS
   frontiers on few workers and exposes the straggler effect even more).

   [Adaptive] keeps an explicit per-vertex assignment table (seeded from
   the same hash) that the engine may rewrite at runtime: the adaptive
   repartitioner moves vertices toward the partitions they exchange the
   most traversal traffic with (Loom-style), so H becomes a function of
   the observed workload instead of the vertex id alone. *)

type strategy =
  | Hash (* owner v = mix(v) mod n_parts; spreads hubs and frontiers *)
  | Mod (* owner v = v mod n_parts; kept as an ablation (hub clustering) *)
  | Block (* owner v = v / ceil(n/n_parts); contiguous ranges *)
  | Adaptive (* explicit assignment table, rewritable at runtime *)

type t = {
  strategy : strategy;
  n_parts : int;
  n_vertices : int;
  block_size : int;
  assignment : int array; (* per-vertex owner; only populated for Adaptive *)
  sizes : int array; (* per-partition vertex count; only for Adaptive *)
}

(* Fibonacci-style multiplicative mixer: cheap and avalanching enough to
   decouple hub ids (which generators place at small ids) from workers. *)
let mix v =
  let h = v * 0x9E3779B97F4A7C1 in
  (h lxor (h lsr 29)) land max_int

let create ?(strategy = Hash) ?assignment ~n_parts ~n_vertices () =
  if n_parts <= 0 then invalid_arg "Partition.create: n_parts must be positive";
  if n_vertices < 0 then invalid_arg "Partition.create: negative n_vertices";
  let block_size = max 1 ((n_vertices + n_parts - 1) / n_parts) in
  let assignment, sizes =
    match strategy with
    | Hash | Mod | Block ->
      if assignment <> None then
        invalid_arg "Partition.create: explicit assignment requires the Adaptive strategy";
      ([||], [||])
    | Adaptive ->
      let assignment =
        match assignment with
        | None -> Array.init n_vertices (fun v -> mix v mod n_parts)
        | Some a ->
          if Array.length a <> n_vertices then
            invalid_arg "Partition.create: assignment length must equal n_vertices";
          if not (Array.for_all (fun p -> p >= 0 && p < n_parts) a) then
            invalid_arg "Partition.create: assignment entry out of range";
          Array.copy a
      in
      let sizes = Array.make n_parts 0 in
      Array.iter (fun p -> sizes.(p) <- sizes.(p) + 1) assignment;
      (assignment, sizes)
  in
  { strategy; n_parts; n_vertices; block_size; assignment; sizes }

let n_parts t = t.n_parts

let owner t v =
  match t.strategy with
  | Hash -> mix v mod t.n_parts
  | Mod -> v mod t.n_parts
  | Block -> min (t.n_parts - 1) (v / t.block_size)
  | Adaptive -> t.assignment.(v)

(* Rewrite a vertex's owner (adaptive repartitioning only). Size counters
   track the move so [imbalance] stays O(n_parts). *)
let set_owner t v p =
  if t.strategy <> Adaptive then invalid_arg "Partition.set_owner: strategy is not Adaptive";
  if p < 0 || p >= t.n_parts then invalid_arg "Partition.set_owner: bad partition";
  let old = t.assignment.(v) in
  if old <> p then begin
    t.assignment.(v) <- p;
    t.sizes.(old) <- t.sizes.(old) - 1;
    t.sizes.(p) <- t.sizes.(p) + 1
  end

(* Current owner table as a plain array (a copy, safe to mutate). *)
let to_assignment t = Array.init t.n_vertices (owner t)

(* Vertices owned by partition [p], in ascending order. *)
let members t p =
  if p < 0 || p >= t.n_parts then invalid_arg "Partition.members: bad partition";
  let out = Vec.create ~dummy:0 in
  (match t.strategy with
  | Hash ->
    for v = 0 to t.n_vertices - 1 do
      if mix v mod t.n_parts = p then Vec.push out v
    done
  | Mod ->
    let v = ref p in
    while !v < t.n_vertices do
      Vec.push out !v;
      v := !v + t.n_parts
    done
  | Block ->
    let lo = p * t.block_size in
    let hi = min t.n_vertices ((p + 1) * t.block_size) in
    let hi = if p = t.n_parts - 1 then t.n_vertices else hi in
    for v = lo to hi - 1 do
      Vec.push out v
    done
  | Adaptive ->
    for v = 0 to t.n_vertices - 1 do
      if t.assignment.(v) = p then Vec.push out v
    done);
  Vec.to_array out

let size_of t p =
  match t.strategy with
  | Adaptive ->
    if p < 0 || p >= t.n_parts then invalid_arg "Partition.size_of: bad partition";
    t.sizes.(p)
  | Hash | Mod | Block -> Array.length (members t p)

(* Max-over-mean partition size: 1.0 is perfectly balanced. With no
   vertices — or more partitions than vertices, where the mean drops
   below one vertex — there is nothing meaningful to balance, so the
   ratio is defined as the perfect 1.0 instead of dividing by a
   (near-)zero mean. *)
let imbalance t =
  if t.n_vertices = 0 || t.n_parts > t.n_vertices then 1.0
  else begin
    let sizes = Array.init t.n_parts (size_of t) in
    let max_size = Array.fold_left max 0 sizes in
    float_of_int (max_size * t.n_parts) /. float_of_int t.n_vertices
  end
