(** The property graph [G = (V, E, lambda)], immutable after construction.

    Vertices and edges are dense integer ids. Both directions are
    materialized; edge ids are shared so edge properties are reachable when
    traversing inward as well. *)

type direction =
  | Out
  | In
  | Both

val pp_direction : Format.formatter -> direction -> unit

type t

val schema : t -> Schema.t
val n_vertices : t -> int
val n_edges : t -> int
val vertex_label : t -> int -> int

(** [has_vertex_label t ~label v] — does vertex [v] carry [label]? *)
val has_vertex_label : t -> label:int -> int -> bool

(** Edge endpoints: the special [_src] / [_dest] keys of the paper. *)
val edge_src : t -> int -> int

val edge_dst : t -> int -> int
val edge_label : t -> int -> int
val out_degree : t -> int -> int
val in_degree : t -> int -> int
val degree : t -> dir:direction -> int -> int

(** Visit adjacent vertices; [target] is the far endpoint regardless of
    direction. *)
val iter_adjacent :
  t ->
  dir:direction ->
  ?label:int ->
  int ->
  (target:int -> edge_id:int -> label:int -> unit) ->
  unit

val adjacent : t -> dir:direction -> ?label:int -> int -> int array

(** Direct CSR handles for one traversal direction ([Both] has no single
    CSR). Batch frontier scans use these with {!Csr.slice} /
    {!Csr.fold_neighbors_range} to sweep adjacency ranges closure-free. *)
val out_csr : t -> Csr.t

val in_csr : t -> Csr.t
val vertex_prop : t -> key:int -> int -> Value.t

(** Convenience lookup by property-key name; [Null] when the key or value
    is absent. *)
val vertex_prop_by_name : t -> key:string -> int -> Value.t

val edge_prop : t -> key:int -> int -> Value.t
val iter_vertices : t -> (int -> unit) -> unit
val iter_vertices_with_label : t -> int -> (int -> unit) -> unit

(** Mean out-degree (optionally per edge label); feeds planner cardinality
    estimates. *)
val avg_degree : t -> dir:direction -> ?label:int -> unit -> float

(** Build (or reuse) a hash index on a vertex property and look a value up.
    Backs the IndexLookup step. *)
val index_lookup : t -> ?vertex_label:int -> key:int -> Value.t -> int array

val ensure_index :
  t -> ?vertex_label:int -> key:int -> unit -> (Value.t, int Vec.t) Hashtbl.t

(** Estimated in-memory size in bytes (Table II's "raw size"). *)
val bytes : t -> int

(** Assemble a graph; used by {!Builder}. *)
val make :
  schema:Schema.t ->
  n_vertices:int ->
  vertex_label:int array ->
  out_csr:Csr.t ->
  in_csr:Csr.t ->
  vertex_props:Props.t ->
  edge_props:Props.t ->
  edge_src:int array ->
  edge_dst:int array ->
  edge_label_by_id:int array ->
  t
