(** Compressed sparse row adjacency for one traversal direction. *)

type t

val n_vertices : t -> int
val n_edges : t -> int
val degree : t -> int -> int

(** Adjacency slice of a vertex as a half-open [lo, hi) index range into
    the position arrays; pair with the [*_at] accessors or
    {!fold_neighbors_range} for closure-free batch scans. *)
val slice : t -> int -> int * int

val target_at : t -> int -> int
val label_at : t -> int -> int
val edge_id_at : t -> int -> int

(** Fold over positions in [lo, hi), optionally restricted to one edge
    label. Unlike {!fold_neighbors}, the callback receives only the
    position; callers read columns via the [*_at] accessors, avoiding
    per-edge tuple/closure allocation on the batch hot path. *)
val fold_neighbors_range :
  t -> ?label:int -> lo:int -> hi:int -> init:'acc -> f:('acc -> pos:int -> 'acc) -> 'acc

(** Visit each adjacent position of [v], optionally restricted to one edge
    label. [edge_id] is the global edge id, valid in both directions. *)
val iter_neighbors :
  t -> ?label:int -> int -> (target:int -> edge_id:int -> label:int -> unit) -> unit

val fold_neighbors :
  t ->
  ?label:int ->
  int ->
  init:'acc ->
  f:('acc -> target:int -> edge_id:int -> label:int -> 'acc) ->
  'acc

(** Materialized neighbor array (allocates; prefer the iterators). *)
val neighbors : t -> ?label:int -> int -> int array

val degree_with_label : t -> int -> int -> int

(** Linear-time construction by counting sort on the source column. *)
val build :
  n_vertices:int ->
  sources:int array ->
  targets:int array ->
  labels:int array ->
  edge_ids:int array ->
  t

(** Estimated memory footprint in bytes. *)
val bytes : t -> int
