(* Unit and property tests for pstm_sim: clock, event queue, network
   model, cluster NIC serialization and the two-tier channel. *)

let qcheck = QCheck_alcotest.to_alcotest

(* --- Sim_time --- *)

let test_time_conversions () =
  Alcotest.(check int) "us" 1_000 (Sim_time.us 1);
  Alcotest.(check int) "ms" 1_000_000 (Sim_time.ms 1);
  Alcotest.(check (float 0.0001)) "to_ms" 1.5 (Sim_time.to_ms (Sim_time.us 1_500));
  Alcotest.(check string) "pp us" "1.50us" (Fmt.str "%a" Sim_time.pp (Sim_time.ns 1_500));
  Alcotest.(check string) "pp ms" "2.000ms" (Fmt.str "%a" Sim_time.pp (Sim_time.ms 2))

(* --- Event_queue --- *)

let test_event_order () =
  let q = Event_queue.create () in
  let log = ref [] in
  Event_queue.schedule_at q ~time:30 (fun () -> log := 3 :: !log);
  Event_queue.schedule_at q ~time:10 (fun () -> log := 1 :: !log);
  Event_queue.schedule_at q ~time:20 (fun () -> log := 2 :: !log);
  Event_queue.run_to_completion q;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Event_queue.now q)

let test_event_tie_break_fifo () =
  let q = Event_queue.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Event_queue.schedule_at q ~time:7 (fun () -> log := i :: !log)
  done;
  Event_queue.run_to_completion q;
  Alcotest.(check (list int)) "fifo at equal times" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_event_chooser_permutes_ties () =
  (* A chooser sees each same-timestamp batch as (insertion seq, tag)
     choices and picks which entry fires first; unpicked entries keep
     their seqs, so the remaining order stays stable. *)
  let q = Event_queue.create () in
  let log = ref [] in
  let seen = ref [] in
  for i = 1 to 4 do
    Event_queue.schedule_at q ~time:7 ~tag:i (fun () -> log := i :: !log)
  done;
  Event_queue.set_chooser q
    (Some
       (fun choices ->
         seen := Array.to_list (Array.map (fun c -> c.Event_queue.c_tag) choices) :: !seen;
         Array.length choices - 1));
  Event_queue.run_to_completion q;
  Alcotest.(check (list int)) "always picks the youngest tied entry" [ 4; 3; 2; 1 ]
    (List.rev !log);
  (match List.rev !seen with
  | [ 1; 2; 3; 4 ] :: _ -> ()
  | _ -> Alcotest.fail "first batch should expose all four tags in insertion order");
  (* Out-of-range picks clamp to the default order. *)
  let q = Event_queue.create () in
  let log = ref [] in
  for i = 1 to 3 do
    Event_queue.schedule_at q ~time:7 (fun () -> log := i :: !log)
  done;
  Event_queue.set_chooser q (Some (fun _ -> 99));
  Event_queue.run_to_completion q;
  Alcotest.(check (list int)) "clamped to fifo" [ 1; 2; 3 ] (List.rev !log)

let test_event_seq_monotonic () =
  let q = Event_queue.create () in
  let a = Event_queue.next_seq q in
  Event_queue.schedule_at q ~time:1 ignore;
  let b = Event_queue.next_seq q in
  Alcotest.(check bool) "insertion seq advances" true (b > a)

let test_event_cascade () =
  let q = Event_queue.create () in
  let count = ref 0 in
  let rec step n = if n > 0 then Event_queue.schedule_after q ~delay:5 (fun () ->
      incr count;
      step (n - 1))
  in
  step 10;
  Event_queue.run_to_completion q;
  Alcotest.(check int) "all fired" 10 !count;
  Alcotest.(check int) "clock" 50 (Event_queue.now q)

let test_event_past_rejected () =
  let q = Event_queue.create () in
  Event_queue.schedule_at q ~time:10 ignore;
  ignore (Event_queue.step q);
  Alcotest.(check bool) "raises on past" true
    (try
       Event_queue.schedule_at q ~time:5 ignore;
       false
     with Invalid_argument _ -> true)

let test_event_run_until () =
  let q = Event_queue.create () in
  let fired = ref [] in
  List.iter (fun t -> Event_queue.schedule_at q ~time:t (fun () -> fired := t :: !fired)) [ 5; 15; 25 ];
  Event_queue.run_until q ~time:15;
  Alcotest.(check (list int)) "only up to 15" [ 5; 15 ] (List.rev !fired);
  Alcotest.(check int) "clock moved" 15 (Event_queue.now q);
  Alcotest.(check int) "one pending" 1 (Event_queue.pending q)

let test_event_budget () =
  let q = Event_queue.create () in
  let rec forever () = Event_queue.schedule_after q ~delay:1 forever in
  forever ();
  Alcotest.(check bool) "budget enforced" true
    (try
       Event_queue.run_to_completion ~max_events:100 q;
       false
     with Failure _ -> true)

(* --- Netmodel --- *)

let test_netmodel_costs () =
  let net = Netmodel.default in
  let t1 = Netmodel.nic_occupancy net ~bytes:100 in
  let t2 = Netmodel.nic_occupancy net ~bytes:10_000 in
  Alcotest.(check bool) "monotone in bytes" true (t2 > t1);
  let slow = Netmodel.with_bandwidth net 50.0 in
  let wire_fast = Netmodel.wire_time net ~bytes:100_000 in
  let wire_slow = Netmodel.wire_time slow ~bytes:100_000 in
  Alcotest.(check bool) "4x bandwidth ratio" true
    (abs (wire_slow - (4 * wire_fast)) <= 4);
  Alcotest.(check bool) "per-packet floor" true (t1 >= net.Netmodel.per_packet)

(* --- Cluster --- *)

let test_cluster_topology () =
  let c = Cluster.create { Cluster.default_config with Cluster.n_nodes = 3; workers_per_node = 4 } in
  Alcotest.(check int) "workers" 12 (Cluster.n_workers c);
  Alcotest.(check int) "node of 5" 1 (Cluster.node_of_worker c 5);
  Alcotest.(check bool) "same node" true (Cluster.same_node c 4 7);
  Alcotest.(check bool) "different node" false (Cluster.same_node c 3 4);
  Alcotest.(check (array int)) "workers of node" [| 8; 9; 10; 11 |] (Cluster.workers_of_node c 2)

let test_cluster_nic_serializes () =
  let c = Cluster.create { Cluster.default_config with Cluster.n_nodes = 2; workers_per_node = 1 } in
  let arrivals = ref [] in
  (* Two packets from node 0 at the same instant must serialize through
     the NIC: the second arrives later. *)
  Cluster.send_packet c ~at:0 ~src_node:0 ~dst_node:1 ~bytes:8_000 (fun () ->
      arrivals := ("a", Cluster.now c) :: !arrivals);
  Cluster.send_packet c ~at:0 ~src_node:0 ~dst_node:1 ~bytes:8_000 (fun () ->
      arrivals := ("b", Cluster.now c) :: !arrivals);
  Event_queue.run_to_completion (Cluster.events c);
  match List.rev !arrivals with
  | [ ("a", ta); ("b", tb) ] ->
    Alcotest.(check bool) "second later" true (tb > ta);
    let occupancy = Netmodel.nic_occupancy (Cluster.net c) ~bytes:8_000 in
    Alcotest.(check int) "gap is one occupancy" occupancy (tb - ta)
  | _ -> Alcotest.fail "expected two arrivals in order"

(* --- Channel --- *)

let make_channel ?(config = Channel.default_config) ~n_nodes ~workers () =
  let cluster =
    Cluster.create { Cluster.default_config with Cluster.n_nodes = n_nodes; workers_per_node = workers }
  in
  let received = ref [] in
  let chan =
    Channel.create cluster config ~dummy:(-1) ~deliver:(fun dst payload ->
        received := (dst, payload, Cluster.now cluster) :: !received)
  in
  (cluster, chan, received)

let test_channel_delivers_everything () =
  let cluster, chan, received = make_channel ~n_nodes:2 ~workers:2 () in
  for i = 0 to 99 do
    ignore
      (Channel.send chan ~at:0 ~src_worker:0 ~dst_worker:(i mod 4) ~kind:Metrics.Traverser_msg
         ~bytes:40 i)
  done;
  ignore (Channel.flush_worker chan ~at:0 ~worker:0);
  Event_queue.run_to_completion (Cluster.events cluster);
  Alcotest.(check int) "all delivered" 100 (List.length !received);
  let payloads = List.sort compare (List.map (fun (_, p, _) -> p) !received) in
  Alcotest.(check (list int)) "each exactly once" (List.init 100 Fun.id) payloads;
  (* Destination correctness. *)
  List.iter (fun (dst, p, _) -> Alcotest.(check int) "routed correctly" (p mod 4) dst) !received

let test_channel_same_node_is_local () =
  let cluster, chan, received = make_channel ~n_nodes:2 ~workers:2 () in
  ignore (Channel.send chan ~at:0 ~src_worker:0 ~dst_worker:1 ~kind:Metrics.Control_msg ~bytes:16 7);
  Event_queue.run_to_completion (Cluster.events cluster);
  Alcotest.(check int) "delivered" 1 (List.length !received);
  Alcotest.(check int) "no packets" 0 (Metrics.packets (Cluster.metrics cluster));
  Alcotest.(check int) "counted local" 1 (Metrics.local_messages (Cluster.metrics cluster))

let test_channel_threshold_flush () =
  let config = { Channel.default_config with Channel.flush_bytes = 100; nlc = false } in
  let cluster, chan, received = make_channel ~config ~n_nodes:2 ~workers:1 () in
  (* 3 x 40 bytes crosses the 100-byte threshold: flushes without an
     explicit flush_worker call. *)
  for i = 0 to 2 do
    ignore (Channel.send chan ~at:0 ~src_worker:0 ~dst_worker:1 ~kind:Metrics.Traverser_msg ~bytes:40 i)
  done;
  Event_queue.run_to_completion (Cluster.events cluster);
  Alcotest.(check int) "delivered on threshold" 3 (List.length !received);
  Alcotest.(check int) "single packet" 1 (Metrics.packets (Cluster.metrics cluster))

let test_channel_no_batching_packet_per_message () =
  let cluster, chan, received = make_channel ~config:Channel.no_batching ~n_nodes:2 ~workers:1 () in
  for i = 0 to 9 do
    ignore (Channel.send chan ~at:0 ~src_worker:0 ~dst_worker:1 ~kind:Metrics.Traverser_msg ~bytes:40 i)
  done;
  Event_queue.run_to_completion (Cluster.events cluster);
  Alcotest.(check int) "delivered" 10 (List.length !received);
  Alcotest.(check int) "one packet per message" 10 (Metrics.packets (Cluster.metrics cluster))

let test_channel_nlc_combines () =
  (* Two workers on node 0 each flush to node 1 within one NLC window:
     one packet total. *)
  let cluster, chan, received = make_channel ~n_nodes:2 ~workers:2 () in
  ignore (Channel.send chan ~at:0 ~src_worker:0 ~dst_worker:2 ~kind:Metrics.Traverser_msg ~bytes:40 0);
  ignore (Channel.send chan ~at:0 ~src_worker:1 ~dst_worker:3 ~kind:Metrics.Traverser_msg ~bytes:40 1);
  ignore (Channel.flush_worker chan ~at:0 ~worker:0);
  ignore (Channel.flush_worker chan ~at:0 ~worker:1);
  Event_queue.run_to_completion (Cluster.events cluster);
  Alcotest.(check int) "delivered" 2 (List.length !received);
  Alcotest.(check int) "one combined packet" 1 (Metrics.packets (Cluster.metrics cluster))

let channel_random_traffic =
  QCheck.Test.make ~name:"channel delivers arbitrary traffic exactly once" ~count:50
    QCheck.(list (pair (int_range 0 7) (int_range 0 7)))
    (fun sends ->
      let cluster, chan, received = make_channel ~n_nodes:4 ~workers:2 () in
      List.iteri
        (fun i (src, dst) ->
          ignore
            (Channel.send chan ~at:0 ~src_worker:src ~dst_worker:dst ~kind:Metrics.Traverser_msg
               ~bytes:30 i))
        sends;
      for w = 0 to 7 do
        ignore (Channel.flush_worker chan ~at:0 ~worker:w)
      done;
      Event_queue.run_to_completion (Cluster.events cluster);
      List.sort compare (List.map (fun (_, p, _) -> p) !received)
      = List.init (List.length sends) Fun.id)

(* Random schedules execute in nondecreasing time order regardless of
   insertion order. *)
let event_order_random =
  QCheck.Test.make ~name:"random schedules run in time order" ~count:200
    QCheck.(list (int_range 0 1000))
    (fun times ->
      let q = Event_queue.create () in
      let log = ref [] in
      List.iter (fun t -> Event_queue.schedule_at q ~time:t (fun () -> log := t :: !log)) times;
      Event_queue.run_to_completion q;
      List.rev !log = List.sort compare times)

(* Histogram percentiles track exact percentiles within bucket error. *)
let histogram_tracks_exact =
  QCheck.Test.make ~name:"histogram percentile near exact" ~count:100
    QCheck.(list_of_size (Gen.int_range 50 300) (float_range 0.001 10.0))
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) samples;
      let arr = Array.of_list samples in
      List.for_all
        (fun q ->
          let exact = Stats.percentile arr q in
          let approx = Histogram.percentile h q in
          approx <= exact *. 1.25 +. 1e-9 && approx >= exact /. 1.25 -. 1e-9)
        [ 50.0; 90.0; 99.0 ])

(* --- Metrics --- *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.count_message m Metrics.Progress_msg 24;
  Metrics.count_message m Metrics.Traverser_msg 40;
  Metrics.count_message m Metrics.Traverser_msg 40;
  Alcotest.(check int) "by kind" 1 (Metrics.messages m Metrics.Progress_msg);
  Alcotest.(check int) "bytes by kind" 80 (Metrics.message_bytes m Metrics.Traverser_msg);
  Alcotest.(check int) "total" 3 (Metrics.total_messages m);
  (* pp reports both counts and bytes per kind. *)
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
    at 0
  in
  let rendered = Fmt.str "%a" Metrics.pp m in
  List.iter
    (fun kind ->
      let expected =
        Printf.sprintf "%s=%d/%dB" (Metrics.kind_name kind) (Metrics.messages m kind)
          (Metrics.message_bytes m kind)
      in
      Alcotest.(check bool)
        (Printf.sprintf "pp shows %s" expected)
        true (contains rendered expected))
    Metrics.all_kinds;
  Metrics.count_packet m 128;
  Metrics.count_flush m;
  Metrics.count_step m;
  Metrics.count_edges m 7;
  Metrics.count_spawn m;
  Metrics.count_memo_op m;
  Metrics.count_superstep m;
  Metrics.count_tracker_update m;
  Metrics.count_busy m 99;
  Metrics.count_local_message m;
  Metrics.reset m;
  Alcotest.(check int) "reset messages" 0 (Metrics.total_messages m);
  List.iter
    (fun kind ->
      Alcotest.(check int) "reset kind bytes" 0 (Metrics.message_bytes m kind))
    Metrics.all_kinds;
  Alcotest.(check int) "reset packets" 0 (Metrics.packets m);
  Alcotest.(check int) "reset packet bytes" 0 (Metrics.packet_bytes m);
  Alcotest.(check int) "reset flushes" 0 (Metrics.flushes m);
  Alcotest.(check int) "reset steps" 0 (Metrics.steps m);
  Alcotest.(check int) "reset edges" 0 (Metrics.edges_scanned m);
  Alcotest.(check int) "reset spawned" 0 (Metrics.spawned m);
  Alcotest.(check int) "reset memo ops" 0 (Metrics.memo_ops m);
  Alcotest.(check int) "reset supersteps" 0 (Metrics.supersteps m);
  Alcotest.(check int) "reset tracker updates" 0 (Metrics.tracker_updates m);
  Alcotest.(check int) "reset busy" 0 (Metrics.busy_ns m);
  Alcotest.(check int) "reset local" 0 (Metrics.local_messages m)

let () =
  Alcotest.run "sim"
    [
      ("time", [ Alcotest.test_case "conversions" `Quick test_time_conversions ]);
      ( "events",
        [
          Alcotest.test_case "order" `Quick test_event_order;
          Alcotest.test_case "fifo ties" `Quick test_event_tie_break_fifo;
          Alcotest.test_case "chooser permutes ties" `Quick test_event_chooser_permutes_ties;
          Alcotest.test_case "insertion seq" `Quick test_event_seq_monotonic;
          Alcotest.test_case "cascade" `Quick test_event_cascade;
          Alcotest.test_case "past rejected" `Quick test_event_past_rejected;
          Alcotest.test_case "run_until" `Quick test_event_run_until;
          Alcotest.test_case "budget" `Quick test_event_budget;
        ] );
      ("netmodel", [ Alcotest.test_case "costs" `Quick test_netmodel_costs ]);
      ( "cluster",
        [
          Alcotest.test_case "topology" `Quick test_cluster_topology;
          Alcotest.test_case "nic serializes" `Quick test_cluster_nic_serializes;
        ] );
      ( "more-properties",
        [ qcheck event_order_random; qcheck histogram_tracks_exact ] );
      ( "channel",
        [
          Alcotest.test_case "delivers everything" `Quick test_channel_delivers_everything;
          Alcotest.test_case "same-node local" `Quick test_channel_same_node_is_local;
          Alcotest.test_case "threshold flush" `Quick test_channel_threshold_flush;
          Alcotest.test_case "no batching" `Quick test_channel_no_batching_packet_per_message;
          Alcotest.test_case "nlc combines" `Quick test_channel_nlc_combines;
          qcheck channel_random_traffic;
        ] );
      ("metrics", [ Alcotest.test_case "counters" `Quick test_metrics_counters ]);
    ]
