(* Static verifier and determinism lint tests.

   Every malformed-program class the verifier exists for is constructed
   as a raw step array (Program.make would reject most of them before the
   verifier could see them) and must be rejected with the expected
   diagnostic kind at the expected step. Every seed program — the
   hand-built k-hop example, the compiled DSL queries, and the full LDBC
   IC/IS suite — must verify clean, and the engines must run them with
   the runtime sanitizer on without tripping an invariant. *)

open Pstm_engine
open Pstm_analysis

(* --- Step construction helpers ----------------------------------------- *)

let scan next = { Step.op = Step.Scan { vertex_label = None }; next }
let filter ?(pred = Step.True) next = { Step.op = Step.Filter pred; next }
let set_reg reg expr next = { Step.op = Step.Set_reg { reg; expr }; next }
let emit ?(exprs = [| Step.Vertex_id |]) () = { Step.op = Step.Emit exprs; next = -1 }
let count_agg ~reg next = { Step.op = Step.Aggregate { agg = Step.Count; reg }; next }

let join ~join_id ~side ~store ~load_regs ~cont =
  { Step.op = Step.Join { join_id; side; key = Step.Vertex_id; store; load_regs; cont };
    next = -1 }

let target ?(name = "t") ?(n_registers = 1) ~entries steps =
  { Verify.name; steps = Array.of_list steps; n_registers; entries = Array.of_list entries }

let pp_diags diags = Fmt.str "%a" Verify.pp_report diags

(* --- Rejection: one test per malformed-program class -------------------- *)

let expect_reject name tg kind ~step =
  Alcotest.test_case name `Quick (fun () ->
      let diags = Verify.check tg in
      let hit =
        List.exists
          (fun d ->
            d.Diagnostic.kind = kind && d.Diagnostic.step = Some step && Diagnostic.is_error d)
          diags
      in
      if not hit then
        Alcotest.fail
          (Fmt.str "expected %s error at step %d; verifier said:@ %s" (Diagnostic.kind_name kind)
             step (pp_diags diags)))

let dropped_weight =
  (* A non-terminal step with no successor: its traversers' weight would
     be finished without the semantics asking for it. *)
  target ~entries:[ 0 ] [ scan 1; filter (-1) ]

let orphan_join =
  (* Side A writes memo rows no B side ever probes. *)
  target ~entries:[ 0 ]
    [ scan 1; join ~join_id:0 ~side:Step.Side_a ~store:[||] ~load_regs:[||] ~cont:2; emit () ]

let use_before_def =
  (* Reads register 0 on the entry path before anything defines it. *)
  target ~entries:[ 0 ]
    [
      scan 1;
      filter ~pred:(Step.Cmp (Step.Eq, Step.Reg 0, Step.Const (Value.Int 1))) 2;
      emit ();
    ]

let unreachable =
  target ~entries:[ 0 ] [ scan 2; filter 2; emit () ]

let unclosed_partial =
  (* Two aggregates in one phase: only one closes the phase; the other's
     partial is never combined. *)
  target ~n_registers:1 ~entries:[ 0; 2 ]
    [ scan 1; count_agg ~reg:0 4; scan 3; count_agg ~reg:0 4; emit () ]

let phase_conflict =
  (* Step 2 is reachable both directly from an entry (phase 0) and
     through the aggregate boundary (phase 1). *)
  target ~n_registers:1 ~entries:[ 0; 3 ]
    [ scan 1; count_agg ~reg:0 2; emit (); scan 2 ]

let unbounded_repeat =
  (* A control-flow cycle that avoids every Visit step: traversers can
     multiply forever and the phase never terminates. *)
  target ~entries:[ 0 ] [ scan 1; filter 2; filter 1 ]

let join_mismatch =
  (* Side A stores one value; side B loads none. *)
  target ~entries:[ 0; 2 ]
    [
      scan 1;
      join ~join_id:0 ~side:Step.Side_a ~store:[| Step.Vertex_id |] ~load_regs:[||] ~cont:4;
      scan 3;
      join ~join_id:0 ~side:Step.Side_b ~store:[||] ~load_regs:[||] ~cont:4;
      emit ();
    ]

let register_out_of_range =
  target ~n_registers:1 ~entries:[ 0 ]
    [ scan 1; set_reg 3 (Step.Const (Value.Int 0)) 2; emit () ]

let reject_tests =
  [
    expect_reject "dropped weight" dropped_weight Diagnostic.Dropped_weight ~step:1;
    expect_reject "orphan join side" orphan_join Diagnostic.Orphan_join ~step:1;
    expect_reject "use before def" use_before_def Diagnostic.Use_before_def ~step:1;
    expect_reject "unreachable step" unreachable Diagnostic.Unreachable_step ~step:1;
    expect_reject "unclosed partial" unclosed_partial Diagnostic.Unclosed_partial ~step:3;
    expect_reject "phase conflict" phase_conflict Diagnostic.Phase_conflict ~step:2;
    expect_reject "unbounded repeat" unbounded_repeat Diagnostic.Unbounded_repeat ~step:1;
    expect_reject "join arity mismatch" join_mismatch Diagnostic.Join_mismatch ~step:1;
    expect_reject "register out of range" register_out_of_range Diagnostic.Malformed ~step:1;
  ]

(* --- Acceptance: every seed program verifies clean ----------------------- *)

let check_clean name program =
  let diags = Verify.check_program program in
  if not (Verify.is_clean diags) then
    Alcotest.fail (Fmt.str "%s rejected by verifier:@ %s" name (pp_diags diags))

(* The hand-assembled k-hop count of test_smoke, as a raw target: the
   Visit loop is the one legitimate cycle shape. *)
let khop_target =
  target ~name:"khop" ~n_registers:2 ~entries:[ 0 ]
    [
      { Step.op = Step.Index_lookup { vertex_label = None; key = 0; value = Value.Int 7 };
        next = 1 };
      set_reg 0 (Step.Const (Value.Int 0)) 2;
      { Step.op = Step.Visit { dist_reg = 0; max_hops = 2; cont = 4; emit_improved = false };
        next = 3 };
      { Step.op = Step.Expand { dir = Graph.Out; edge_label = None }; next = 2 };
      count_agg ~reg:1 5;
      emit ~exprs:[| Step.Reg 1 |] ();
    ]

let test_khop_accepted () =
  let diags = Verify.check khop_target in
  if not (Verify.is_clean diags) then
    Alcotest.fail (Fmt.str "khop rejected:@ %s" (pp_diags diags))

let test_ldbc_suite_accepted () =
  let data = Pstm_ldbc.Snb_gen.load Pstm_ldbc.Snb_gen.snb_tiny in
  let prng = Prng.create 7 in
  List.iter
    (fun (name, make) -> check_clean name (make data prng))
    (Pstm_ldbc.Ic_queries.all @ Pstm_ldbc.Is_queries.all)

let test_compiled_queries_accepted () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let open Pstm_query in
  let compile name ast = Compile.compile ~name graph ast in
  List.iter
    (fun (name, ast) -> check_clean name (compile name ast))
    [
      ("fig1", Dsl.(v_lookup ~key:"id" (int 3) |> repeat_out "link" ~times:2
                    |> has "id" (ne (int 3)) |> top_k "weight" 10 |> build));
      ("count", Dsl.(v_lookup ~key:"id" (int 9) |> repeat_out "link" ~times:2 |> count |> build));
      ("scan", Dsl.(v () |> out_ "link" |> dedup |> count |> build));
    ]

(* --- Runtime sanitizer: engines with ~check:true on good programs -------- *)

let fixture_graph () =
  let b = Builder.create () in
  for _ = 1 to 120 do
    ignore (Builder.add_vertex b ~label:"vertex" ())
  done;
  let edge_prng = Prng.create 12 in
  for _ = 1 to 500 do
    let s = Prng.int edge_prng 120 and d = Prng.int edge_prng 120 in
    if s <> d then ignore (Builder.add_edge b ~src:s ~label:"link" ~dst:d ())
  done;
  for v = 0 to 119 do
    Builder.set_vertex_prop b ~vertex:v ~key:"id" (Value.Int v)
  done;
  Builder.build b

let fixture_program graph =
  let open Pstm_query in
  Compile.compile ~name:"sanitized" graph
    Dsl.(v_lookup ~key:"id" (int 7) |> repeat_out "link" ~times:2 |> count |> build)

let test_local_check () =
  let graph = fixture_graph () in
  let program = fixture_program graph in
  let plain = Local_engine.run graph program in
  let checked =
    Local_engine.run ~common:(Engine.Common.with_check true Engine.Common.default) graph program
  in
  Alcotest.(check int) "same rows" (List.length plain) (List.length checked)

let test_async_check () =
  let graph = fixture_graph () in
  let program = fixture_program graph in
  let report =
    Async_engine.run
      ~common:(Engine.Common.with_check true Engine.Common.default)
      ~cluster_config:{ Cluster.default_config with n_nodes = 4; workers_per_node = 4 }
      ~channel_config:Channel.default_config ~graph
      [| Engine.submit program |]
  in
  Alcotest.(check bool) "completed under sanitizer" true (Engine.all_completed report);
  let local = Local_engine.run graph program in
  let show rows = Fmt.str "%a" (Fmt.list (Fmt.array Value.pp)) (Engine.sorted_rows rows) in
  Alcotest.(check string) "rows agree" (show local)
    (show report.Engine.queries.(0).Engine.rows)

let test_bsp_check () =
  let graph = fixture_graph () in
  let program = fixture_program graph in
  let report =
    Bsp_engine.run
      ~common:(Engine.Common.with_check true Engine.Common.default)
      ~cluster_config:{ Cluster.default_config with n_nodes = 4; workers_per_node = 4 }
      ~graph
      [| Engine.submit program |]
  in
  Alcotest.(check bool) "completed under sanitizer" true (Engine.all_completed report)

(* --- Determinism lint ---------------------------------------------------- *)

let findings src = Source_lint.scan ~file:"test.ml" src

let hazards src = List.map (fun f -> f.Source_lint.hazard) (findings src)

let test_lint_detects () =
  Alcotest.(check int) "hashtbl iter flagged" 1
    (List.length (findings "let () = Hashtbl.iter f t\n"));
  (match hazards "let () = Hashtbl.iter f t\n" with
  | [ Source_lint.Unordered_iteration ] -> ()
  | _ -> Alcotest.fail "expected unordered-iteration");
  (match hazards "let xs = List.sort compare xs\n" with
  | [ Source_lint.Polymorphic_compare ] -> ()
  | _ -> Alcotest.fail "expected polymorphic-compare");
  (match hazards "let x = Random.int 5\n" with
  | [ Source_lint.Raw_random ] -> ()
  | _ -> Alcotest.fail "expected raw-random");
  (match hazards "let t = Sys.time ()\n" with
  | [ Source_lint.Wall_clock ] -> ()
  | _ -> Alcotest.fail "expected wall-clock");
  (* Line numbers are 1-based and survive comment stripping. *)
  match findings "(* a\n   comment *)\nlet () = Hashtbl.fold f t []\n" with
  | [ f ] -> Alcotest.(check int) "line" 3 f.Source_lint.line
  | fs -> Alcotest.fail (Fmt.str "expected 1 finding, got %d" (List.length fs))

let test_lint_float_compare () =
  (match hazards "let c = compare (x : float) y\n" with
  | [ Source_lint.Float_compare ] -> ()
  | _ -> Alcotest.fail "expected float-compare");
  (* Bare [compare] near floats is flagged even without a sort needle;
     the sort needle stacks a second finding when both apply. *)
  (match hazards "let xs = List.sort compare float_scores\n" with
  | [ Source_lint.Polymorphic_compare; Source_lint.Float_compare ]
  | [ Source_lint.Float_compare; Source_lint.Polymorphic_compare ] -> ()
  | _ -> Alcotest.fail "expected polymorphic-compare + float-compare");
  (* Module-qualified compares and non-float lines are fine. *)
  Alcotest.(check int) "Float.compare is the fix, not a hazard" 0
    (List.length (findings "let c = Float.compare x y\n"));
  Alcotest.(check int) "bare compare without floats is not this class" 0
    (List.length (findings "let c = compare a b\n"));
  Alcotest.(check int) "identifier containing 'compare' untouched" 0
    (List.length (findings "let c = my_compare_floats x y\n"))

let test_lint_self_init () =
  match hazards "let () = Random.self_init ()\n" with
  | [ Source_lint.Raw_random ] -> ()
  | _ -> Alcotest.fail "expected raw-random for self_init"

let test_lint_allowlist () =
  Alcotest.(check int) "same-line marker suppresses" 0
    (List.length (findings "Hashtbl.iter f t (* det-ok: commutative sum *)\n"));
  Alcotest.(check int) "preceding-line marker suppresses" 0
    (List.length (findings "(* det-ok: sorted below *)\nHashtbl.fold f t []\n"));
  Alcotest.(check int) "marker without a reason does not suppress" 1
    (List.length (findings "Hashtbl.iter f t (* det-ok: *)\n"));
  Alcotest.(check int) "marker only covers the next line" 1
    (List.length (findings "(* det-ok: sorted *)\nlet x = 1\nHashtbl.iter f t\n"))

let test_lint_ignores_comments_and_strings () =
  Alcotest.(check int) "comment mention not flagged" 0
    (List.length (findings "(* callers must avoid Hashtbl.iter here *)\nlet x = 1\n"));
  Alcotest.(check int) "string literal not flagged" 0
    (List.length (findings "let s = \"Hashtbl.iter\"\n"));
  Alcotest.(check int) "nested comment stripped" 0
    (List.length (findings "(* outer (* Random.int *) still comment *)\nlet x = 1\n"))

let test_lint_repo_tree_shape () =
  (* The real tree scan is the @lint alias under dune runtest; here, just
     pin the scanner's file discovery behavior on a tiny shape. *)
  Alcotest.(check bool) "scan of empty source is clean" true (findings "" = [])

let () =
  Alcotest.run "analysis"
    [
      ("reject", reject_tests);
      ( "accept",
        [
          Alcotest.test_case "khop raw program" `Quick test_khop_accepted;
          Alcotest.test_case "ldbc ic/is suite" `Quick test_ldbc_suite_accepted;
          Alcotest.test_case "compiled dsl queries" `Quick test_compiled_queries_accepted;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "local engine with check" `Quick test_local_check;
          Alcotest.test_case "async engine with check" `Quick test_async_check;
          Alcotest.test_case "bsp engine with check" `Quick test_bsp_check;
        ] );
      ( "lint",
        [
          Alcotest.test_case "detects hazard classes" `Quick test_lint_detects;
          Alcotest.test_case "float-bearing compare" `Quick test_lint_float_compare;
          Alcotest.test_case "random self_init" `Quick test_lint_self_init;
          Alcotest.test_case "det-ok allowlist" `Quick test_lint_allowlist;
          Alcotest.test_case "comments and strings" `Quick test_lint_ignores_comments_and_strings;
          Alcotest.test_case "empty source" `Quick test_lint_repo_tree_shape;
        ] );
    ]
