(* Chaos suite for the fault-injection plane (Faults + reliable channel +
   engine recovery):

   - same-seed fault schedules replay byte-identically (rows, latencies,
     event counts, every fault counter);
   - under drop/duplicate/delay faults every registry engine still
     matches the reference oracle's rows for completed queries;
   - the runtime sanitizer stays clean across the whole fault matrix;
   - a partition paused past the deadline degrades to TIMEOUT without
     wedging the tracker or leaking memo entries;
   - recovery machinery actually engages (retransmits under drop, dedup
     discards under duplication). *)

open Pstm_engine
open Pstm_query

let small_cluster = { Cluster.default_config with Cluster.n_nodes = 3; workers_per_node = 3 }

let fixture_graph () = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny

let khop_program graph hops =
  Compile.compile ~name:"khop" graph
    Dsl.(
      v_lookup ~key:"id" (int 1) |> repeat ~dir:Graph.Out ~times:hops () |> count |> build)

let show_rows rows =
  Fmt.str "%a"
    (Fmt.list ~sep:(Fmt.any "@.") (Fmt.array ~sep:(Fmt.any "|") Value.pp))
    (Engine.sorted_rows rows)

let common_with ?deadline spec =
  {
    Engine.Common.default with
    Engine.Common.check = true;
    faults = Some spec;
    deadline;
  }

let run_async ?deadline spec graph program =
  Async_engine.run
    ~common:(common_with ?deadline spec)
    ~cluster_config:small_cluster ~channel_config:Channel.default_config ~graph
    [| Engine.submit program |]

(* The fault matrix every scenario test walks. *)
let scenarios =
  [
    ("drop", { Faults.none with Faults.drop = 0.1 });
    ("duplicate", { Faults.none with Faults.duplicate = 0.15 });
    ("delay", { Faults.none with Faults.delay_prob = 0.3; delay = Sim_time.us 150 });
    ("straggler", { Faults.none with Faults.slow_nodes = [ (1, 3.0) ] });
    ( "pause",
      {
        Faults.none with
        Faults.pauses = [ Faults.pause ~node:2 ~from_:(Sim_time.us 5) ~until:(Sim_time.us 400) ];
      } );
    ( "combined",
      {
        Faults.none with
        Faults.seed = 0xC0DE;
        drop = 0.08;
        duplicate = 0.08;
        delay_prob = 0.1;
        delay = Sim_time.us 250;
        slow_nodes = [ (0, 2.0) ];
        pauses = [ Faults.pause ~node:1 ~from_:(Sim_time.us 10) ~until:(Sim_time.us 200) ];
      } );
  ]

(* One comparable fingerprint of everything a run produced. *)
let fingerprint (r : Engine.report) =
  let m = r.Engine.metrics in
  Fmt.str "%s|makespan=%d|events=%d|%a|rows=%s|faults=%d/%d/%d/%d/%d/%d/%d"
    r.Engine.engine
    (Sim_time.to_ns r.Engine.makespan)
    r.Engine.events
    (Fmt.array ~sep:(Fmt.any ",") (fun ppf (q : Engine.query_report) ->
         Fmt.pf ppf "%d:%s" q.Engine.qid
           (match Engine.completed_at q with None -> "T" | Some c -> string_of_int (Sim_time.to_ns c))))
    r.Engine.queries
    (show_rows r.Engine.queries.(0).Engine.rows)
    (Metrics.fault_drops m) (Metrics.fault_dups m) (Metrics.fault_delays m)
    (Metrics.retransmits m) (Metrics.dup_dropped m) (Metrics.acks m) (Metrics.abandoned m)

let test_same_seed_byte_identical () =
  let graph = fixture_graph () in
  let program = khop_program graph 3 in
  List.iter
    (fun (name, spec) ->
      let a = fingerprint (run_async spec graph program) in
      let b = fingerprint (run_async spec graph program) in
      Alcotest.(check string) (name ^ " replays byte-identically") a b)
    scenarios

let test_different_seed_diverges () =
  (* Sanity check on the harness itself: a different fault seed gives a
     different schedule (otherwise the determinism test proves nothing). *)
  let graph = fixture_graph () in
  let program = khop_program graph 3 in
  let spec seed = { Faults.none with Faults.drop = 0.15; seed } in
  let a = fingerprint (run_async (spec 1) graph program) in
  let b = fingerprint (run_async (spec 2) graph program) in
  Alcotest.(check bool) "different seeds diverge" true (a <> b)

let test_registry_engines_match_oracle () =
  let graph = fixture_graph () in
  let program = khop_program graph 2 in
  let expected = show_rows (Local_engine.run graph program) in
  let registry = Registry.make ~cluster_config:small_cluster () in
  List.iter
    (fun (scenario_name, spec) ->
      List.iter
        (fun (engine_name, (module E : Engine.S)) ->
          let report =
            E.run ~common:(common_with spec) ~graph [| Engine.submit program |]
          in
          let q = report.Engine.queries.(0) in
          match Engine.completed_at q with
          | None ->
            Alcotest.failf "%s under %s faults did not complete" engine_name scenario_name
          | Some _ ->
            Alcotest.(check string)
              (Fmt.str "%s under %s faults matches the oracle" engine_name scenario_name)
              expected (show_rows q.Engine.rows))
        registry)
    scenarios

let test_sanitizer_clean_under_faults () =
  let graph = fixture_graph () in
  let program = khop_program graph 3 in
  List.iter
    (fun (name, spec) ->
      match run_async spec graph program with
      | report ->
        Alcotest.(check bool) (name ^ " completes") true (Engine.all_completed report)
      | exception Engine.Check_violation message ->
        Alcotest.failf "sanitizer violation under %s faults: %s" name message)
    scenarios

let test_pause_past_deadline_degrades () =
  let graph = fixture_graph () in
  let program = khop_program graph 3 in
  (* Node 0 hosts the coordinator and sleeps through the whole deadline
     window: the query cannot finish, and must degrade cleanly (TIMEOUT,
     sanitizer quiet, memos reclaimed) instead of wedging. *)
  let spec =
    {
      Faults.none with
      Faults.pauses = [ Faults.pause ~node:0 ~from_:Sim_time.zero ~until:(Sim_time.ms 50) ];
    }
  in
  match run_async ~deadline:(Sim_time.ms 1) spec graph program with
  | report ->
    Alcotest.(check bool) "timed out" false (Engine.all_completed report);
    Alcotest.(check bool) "latency reported as infinite" true
      (Engine.latency_ms report.Engine.queries.(0) = Float.infinity)
  | exception Engine.Check_violation message ->
    Alcotest.failf "sanitizer violation on paused partition: %s" message

let test_recovery_engages () =
  let graph = fixture_graph () in
  let program = khop_program graph 3 in
  let dropped = run_async { Faults.none with Faults.drop = 0.2 } graph program in
  let dm = dropped.Engine.metrics in
  Alcotest.(check bool) "drops were injected" true (Metrics.fault_drops dm > 0);
  Alcotest.(check bool) "retransmits recovered the drops" true (Metrics.retransmits dm > 0);
  Alcotest.(check bool) "acks flowed" true (Metrics.acks dm > 0);
  let duplicated = run_async { Faults.none with Faults.duplicate = 0.3 } graph program in
  let um = duplicated.Engine.metrics in
  Alcotest.(check bool) "duplicates were injected" true (Metrics.fault_dups um > 0);
  Alcotest.(check bool) "dedup window discarded the copies" true (Metrics.dup_dropped um > 0)

let test_zero_rate_spec_still_exact () =
  (* A fault plane with all-zero rates exercises the reliable channel
     (sequence numbers, acks) without injecting anything; results must
     still be exact and nothing may be counted as a fault. *)
  let graph = fixture_graph () in
  let program = khop_program graph 2 in
  let report = run_async Faults.none graph program in
  let expected = show_rows (Local_engine.run graph program) in
  Alcotest.(check string) "rows exact" expected
    (show_rows report.Engine.queries.(0).Engine.rows);
  let m = report.Engine.metrics in
  Alcotest.(check int) "no drops" 0 (Metrics.fault_drops m);
  Alcotest.(check int) "no dups" 0 (Metrics.fault_dups m);
  Alcotest.(check int) "no retransmits" 0 (Metrics.retransmits m);
  Alcotest.(check bool) "acks still flow" true (Metrics.acks m > 0)

let test_mixed_ldbc_run_survives_faults () =
  (* The LDBC driver path with a fault plane threaded through [common]:
     the run must finish without sanitizer violations and keep reporting
     sane aggregate numbers. *)
  let data = Pstm_ldbc.Snb_gen.load Pstm_ldbc.Snb_gen.snb_tiny in
  let spec = { Faults.none with Faults.drop = 0.02; duplicate = 0.02 } in
  let common = { Engine.Common.default with Engine.Common.check = true; faults = Some spec } in
  let result =
    Pstm_ldbc.Driver.run_mixed_async ~common ~cluster_config:small_cluster
      ~duration:(Sim_time.ms 20) ~tcr:1.0 ~seed:42 data
  in
  Alcotest.(check bool) "issued some queries" true (result.Pstm_ldbc.Driver.issued > 0);
  Alcotest.(check bool) "completed within issued" true
    (result.Pstm_ldbc.Driver.completed <= result.Pstm_ldbc.Driver.issued)

let () =
  Alcotest.run "faults"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed byte-identical" `Quick test_same_seed_byte_identical;
          Alcotest.test_case "different seed diverges" `Quick test_different_seed_diverges;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "registry engines match oracle" `Quick
            test_registry_engines_match_oracle;
          Alcotest.test_case "sanitizer clean under faults" `Quick
            test_sanitizer_clean_under_faults;
          Alcotest.test_case "pause past deadline degrades" `Quick
            test_pause_past_deadline_degrades;
          Alcotest.test_case "recovery engages" `Quick test_recovery_engages;
          Alcotest.test_case "zero-rate spec still exact" `Quick test_zero_rate_spec_still_exact;
          Alcotest.test_case "mixed ldbc run survives faults" `Quick
            test_mixed_ldbc_run_survives_faults;
        ] );
    ]
