(* Frontier-batched execution and the compiled-plan cache:

   - the batched async engine matches the reference oracle's rows on
     random graphs and queries, with the runtime sanitizer on (which
     asserts Theorem-1 conservation per batch);
   - batched runs survive the whole fault matrix and still agree with
     the oracle;
   - batch metrics are populated when batching is on and exactly zero
     when it is off (the off path is the untouched scalar path);
   - a plan-cache hit skips re-verification and binds a program that is
     structurally identical to a cold compile of the concrete query. *)

open Pstm_engine
open Pstm_query

let qcheck = QCheck_alcotest.to_alcotest

(* --- Fixtures (same shapes as test_engines) --- *)

let graph_of ~n ~edges =
  let b = Builder.create () in
  for i = 0 to n - 1 do
    ignore
      (Builder.add_vertex b ~label:(if i mod 3 = 0 then "A" else "B")
         ~props:[ ("id", Value.Int i); ("weight", Value.Int ((i * 37) mod 100)) ]
         ())
  done;
  List.iter
    (fun (s, d, l) ->
      if s < n && d < n then
        ignore (Builder.add_edge b ~src:s ~label:(if l then "x" else "y") ~dst:d ()))
    edges;
  Builder.build b

let arb_graph =
  QCheck.make
    ~print:(fun (n, edges) -> Fmt.str "graph n=%d m=%d" n (List.length edges))
    QCheck.Gen.(
      let* n = int_range 4 24 in
      let* edges = list_size (int_range 0 60) (triple (int_range 0 23) (int_range 0 23) bool) in
      return (n, edges))

(* Random queries biased toward fusable Expand/Filter chains, plus the
   stateful ops (dedup, aggregates) that must fall back to the scalar
   interpreter inside a batch. *)
let arb_query =
  let open QCheck.Gen in
  let movement =
    oneof
      [
        return (Ast.Out (Some "x"));
        return (Ast.Out (Some "y"));
        return (Ast.Out None);
        return (Ast.In (Some "x"));
        return (Ast.Both (Some "y"));
      ]
  in
  let filter =
    oneof
      [
        map (fun v -> Ast.Has ("weight", Ast.Ge (Value.Int v))) (int_range 0 100);
        map (fun v -> Ast.Has ("weight", Ast.Lt (Value.Int v))) (int_range 0 100);
        return (Ast.Has_label "A");
        return Ast.Dedup;
      ]
  in
  let middle = list_size (int_range 0 5) (oneof [ movement; movement; filter ]) in
  let repeat =
    map (fun k -> Ast.Repeat { dir = Graph.Out; label = None; times = k }) (int_range 1 3)
  in
  let terminal =
    oneof
      [
        return [ Ast.Count ];
        return [ Ast.Sum_of "weight" ];
        return [ Ast.Group_count "weight" ];
        return [ Ast.Top_k { key = "weight"; k = 4 } ];
        return [ Ast.Dedup ];
      ]
  in
  let gen =
    let* source =
      oneof
        [
          map (fun i -> Ast.Lookup { label = None; key = "id"; value = Value.Int i }) (int_range 0 23);
          return (Ast.Scan_all (Some "A"));
          return (Ast.Scan_all None);
        ]
    in
    let* use_repeat = bool in
    let* mid = middle in
    let* rep = repeat in
    let* term = terminal in
    let steps = if use_repeat then (rep :: mid) @ term else mid @ term in
    return (Ast.Traversal { Ast.source; steps })
  in
  QCheck.make ~print:(Fmt.str "%a" Ast.pp) gen

let show_rows rows =
  Fmt.str "%a"
    (Fmt.list ~sep:(Fmt.any "@.") (Fmt.array ~sep:(Fmt.any "|") Value.pp))
    (Engine.sorted_rows rows)

let small_cluster = { Cluster.default_config with Cluster.n_nodes = 3; workers_per_node = 3 }

(* Batched + sanitizer: every batch asserts conservation. *)
let batched_common ?faults () =
  { Engine.Common.default with Engine.Common.batched = true; check = true; faults }

let run_async ?common ?(config = small_cluster) graph program =
  let common = match common with Some c -> c | None -> batched_common () in
  Async_engine.run ~common ~cluster_config:config ~channel_config:Channel.default_config ~graph
    [| Engine.submit program |]

let khop_program graph hops =
  Compile.compile ~name:"khop" graph
    Dsl.(v_lookup ~key:"id" (int 0) |> repeat ~dir:Graph.Out ~times:hops () |> count |> build)

(* --- Batched engine vs the oracle --- *)

let batched_matches_oracle =
  QCheck.Test.make ~name:"batched async matches the reference" ~count:120
    (QCheck.pair arb_graph arb_query)
    (fun ((n, edges), ast) ->
      let graph = graph_of ~n ~edges in
      match Compile.compile ~name:"prop" graph ast with
      | exception Compile.Error _ -> QCheck.assume_fail ()
      | program ->
        let expected = show_rows (Local_engine.run graph program) in
        let report = run_async graph program in
        expected = show_rows report.Engine.queries.(0).Engine.rows)

let batched_deterministic =
  QCheck.Test.make ~name:"batched runs are deterministic" ~count:40
    (QCheck.pair arb_graph arb_query)
    (fun ((n, edges), ast) ->
      let graph = graph_of ~n ~edges in
      match Compile.compile ~name:"prop" graph ast with
      | exception Compile.Error _ -> QCheck.assume_fail ()
      | program ->
        let run () =
          let r = run_async graph program in
          ( Engine.latency_ms r.Engine.queries.(0),
            show_rows r.Engine.queries.(0).Engine.rows,
            Metrics.batches r.Engine.metrics )
        in
        run () = run ())

let test_batched_khop_ldbc () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  List.iter
    (fun hops ->
      let program = khop_program graph hops in
      let expected = show_rows (Local_engine.run graph program) in
      let report = run_async graph program in
      Alcotest.(check string) (Fmt.str "%d-hop rows" hops) expected
        (show_rows report.Engine.queries.(0).Engine.rows);
      (* One-partition batched runs must agree too. *)
      let solo =
        run_async ~config:{ small_cluster with Cluster.n_nodes = 1; workers_per_node = 1 } graph
          program
      in
      Alcotest.(check string)
        (Fmt.str "%d-hop rows, one partition" hops)
        expected
        (show_rows solo.Engine.queries.(0).Engine.rows))
    [ 1; 2; 3 ]

(* --- Fault matrix (mirrors test_faults scenarios, batching on) --- *)

let fault_scenarios =
  [
    ("drop", { Faults.none with Faults.drop = 0.1 });
    ("duplicate", { Faults.none with Faults.duplicate = 0.15 });
    ("delay", { Faults.none with Faults.delay_prob = 0.3; delay = Sim_time.us 150 });
    ("straggler", { Faults.none with Faults.slow_nodes = [ (1, 3.0) ] });
    ( "combined",
      {
        Faults.none with
        Faults.seed = 0xC0DE;
        drop = 0.08;
        duplicate = 0.08;
        delay_prob = 0.1;
        delay = Sim_time.us 250;
        slow_nodes = [ (0, 2.0) ];
      } );
  ]

let test_batched_survives_faults () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let program = khop_program graph 3 in
  let expected = show_rows (Local_engine.run graph program) in
  List.iter
    (fun (name, spec) ->
      match run_async ~common:(batched_common ~faults:spec ()) graph program with
      | report ->
        Alcotest.(check bool) (name ^ " completes") true (Engine.all_completed report);
        Alcotest.(check string) (name ^ " matches oracle") expected
          (show_rows report.Engine.queries.(0).Engine.rows)
      | exception Engine.Check_violation message ->
        Alcotest.failf "sanitizer violation under %s faults (batched): %s" name message)
    fault_scenarios

(* --- Batch metrics on/off --- *)

let test_batch_metrics_populated () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let program = khop_program graph 3 in
  let report = run_async graph program in
  let m = report.Engine.metrics in
  Alcotest.(check bool) "batches recorded" true (Metrics.batches m > 0);
  Alcotest.(check bool) "each batch holds >= 1 traverser" true
    (Metrics.batched_traversers m >= Metrics.batches m);
  Alcotest.(check bool) "remote sends were coalesced" true (Metrics.coalesced_msgs m > 0);
  Alcotest.(check int) "histogram counts every batch" (Metrics.batches m)
    (Histogram.count (Metrics.batch_sizes m))

let test_batching_off_is_scalar_path () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let program = khop_program graph 3 in
  let expected = show_rows (Local_engine.run graph program) in
  let report =
    run_async ~common:{ Engine.Common.default with Engine.Common.check = true } graph program
  in
  let m = report.Engine.metrics in
  Alcotest.(check string) "rows" expected (show_rows report.Engine.queries.(0).Engine.rows);
  Alcotest.(check int) "no batches" 0 (Metrics.batches m);
  Alcotest.(check int) "no batched traversers" 0 (Metrics.batched_traversers m);
  Alcotest.(check int) "no coalesced messages" 0 (Metrics.coalesced_msgs m);
  (* Explicit off equals the default record: the flag defaults to false,
     so existing callers are untouched. *)
  Alcotest.(check bool) "default is unbatched" false Engine.Common.default.Engine.Common.batched

(* --- Plan cache --- *)

let test_plan_cache_hit_identical () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let cache = Plan_cache.create ~graph in
  let text_a = "g.V().has('id', 3).out('link').has('weight', gt(10)).count()" in
  let text_b = "g.V().has('id', 7).out('link').has('weight', gt(55)).count()" in
  let direct text = Compile.compile ~name:"query" graph (Parser.parse_exn text) in
  let cold = Plan_cache.compile cache text_a in
  Alcotest.(check bool) "cold compile = direct compile" true (cold = direct text_a);
  let warm = Plan_cache.compile cache text_b in
  Alcotest.(check bool) "hit-path bind = direct compile" true (warm = direct text_b);
  let s = Plan_cache.stats cache in
  Alcotest.(check int) "one miss" 1 s.Plan_cache.misses;
  Alcotest.(check int) "one hit" 1 s.Plan_cache.hits;
  Alcotest.(check int) "verified once, hit skipped the verifier" 1 s.Plan_cache.verifications;
  Alcotest.(check int) "one family" 1 (Plan_cache.size cache);
  (* The bound program answers like the direct one end to end. *)
  Alcotest.(check string) "rows"
    (show_rows (Local_engine.run graph (direct text_b)))
    (show_rows (Local_engine.run graph warm))

let test_plan_cache_families_kept_apart () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let cache = Plan_cache.create ~graph in
  (* Structural knobs and parameter types separate families; literal
     values do not. *)
  List.iter
    (fun text -> ignore (Plan_cache.compile cache text))
    [
      "g.V().has('weight', gt(10)).count()";
      "g.V().has('weight', gt(99)).count()" (* same family *);
      "g.V().has('weight', gt(1.5)).count()" (* float parameter: new family *);
      "g.V().has('weight', lt(10)).count()" (* different predicate shape *);
      "g.V().hasLabel('vertex').has('weight', gt(10)).count()" (* extra step *);
      "g.V().has('weight', within(1, 2)).count()";
      "g.V().has('weight', within(1, 2, 3)).count()" (* arity is structural *);
    ];
  let s = Plan_cache.stats cache in
  Alcotest.(check int) "six families" 6 (Plan_cache.size cache);
  Alcotest.(check int) "one hit" 1 s.Plan_cache.hits;
  Alcotest.(check int) "six cold verifications" 6 s.Plan_cache.verifications

let plan_cache_equals_cold_compile =
  QCheck.Test.make ~name:"plan cache binds = cold compile on random queries" ~count:120
    (QCheck.pair arb_graph arb_query)
    (fun ((n, edges), ast) ->
      let graph = graph_of ~n ~edges in
      match Compile.compile ~name:"query" graph ast with
      | exception Compile.Error _ -> QCheck.assume_fail ()
      | direct ->
        let cache = Plan_cache.create ~graph in
        let cold = Plan_cache.compile_ast cache ast in
        let warm = Plan_cache.compile_ast cache ast in
        let s = Plan_cache.stats cache in
        cold = direct && warm = direct && s.Plan_cache.hits = 1 && s.Plan_cache.verifications = 1)

let test_plan_stats_mirrored_into_metrics () =
  let m = Metrics.create () in
  Metrics.add_plan_stats m ~hits:3 ~misses:2 ~verifications:2;
  Alcotest.(check int) "hits" 3 (Metrics.plan_hits m);
  Alcotest.(check int) "misses" 2 (Metrics.plan_misses m);
  Alcotest.(check int) "verifications" 2 (Metrics.plan_verifications m);
  Alcotest.(check bool) "pp gates on presence" true (Metrics.plan_cache_seen m);
  Metrics.reset m;
  Alcotest.(check int) "reset clears" 0 (Metrics.plan_hits m)

let () =
  Alcotest.run "batch"
    [
      ( "batched-engine",
        [
          qcheck batched_matches_oracle;
          qcheck batched_deterministic;
          Alcotest.test_case "k-hop on ldbc tiny" `Quick test_batched_khop_ldbc;
          Alcotest.test_case "fault matrix" `Quick test_batched_survives_faults;
          Alcotest.test_case "batch metrics populated" `Quick test_batch_metrics_populated;
          Alcotest.test_case "batching off = scalar path" `Quick test_batching_off_is_scalar_path;
        ] );
      ( "plan-cache",
        [
          Alcotest.test_case "hit is identical to cold" `Quick test_plan_cache_hit_identical;
          Alcotest.test_case "families kept apart" `Quick test_plan_cache_families_kept_apart;
          qcheck plan_cache_equals_cold_compile;
          Alcotest.test_case "stats mirror into metrics" `Quick test_plan_stats_mirrored_into_metrics;
        ] );
    ]
