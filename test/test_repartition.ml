(* Adaptive repartitioning: refinement unit tests, and the engine's
   online migration protocol under the runtime sanitizer — weight
   conservation and memo emptiness must hold through mid-query vertex
   migration, answers must match the oracle, and the machinery must be
   fully inert when the strategy is static. *)

open Pstm_engine
open Pstm_query

(* --- Refinement (pure table manipulation) --- *)

(* Three vertex pairs exchanging all the traffic, split across the two
   partitions: with room to grow, refinement co-locates every pair. *)
let pairs_profile = [| (0, 1, 100); (2, 3, 100); (4, 5, 100) |]
let pairs_assignment () = [| 0; 1; 0; 1; 0; 1 |]

let test_refine_colocates () =
  let moves, stats =
    Repartition.refine ~max_imbalance:2.0 ~n_parts:2 ~assignment:(pairs_assignment ())
      pairs_profile
  in
  Alcotest.(check int) "cut before" 300 stats.Repartition.cut_before;
  Alcotest.(check int) "cut eliminated" 0 stats.Repartition.cut_after;
  Alcotest.(check int) "total weight" 300 stats.Repartition.total_weight;
  let refined = pairs_assignment () in
  List.iter (fun m -> refined.(m.Repartition.vertex) <- m.Repartition.dst) moves;
  Array.iter
    (fun (u, v, _) ->
      Alcotest.(check int) "pair co-located" refined.(u) refined.(v))
    pairs_profile;
  Alcotest.(check int) "recomputed cut agrees" stats.Repartition.cut_after
    (Repartition.cut_weight ~assignment:refined pairs_profile);
  (* The input table is not mutated. *)
  Alcotest.(check bool) "input untouched" true (pairs_assignment () = [| 0; 1; 0; 1; 0; 1 |])

let test_refine_deterministic () =
  let run () =
    Repartition.refine ~max_imbalance:2.0 ~n_parts:2 ~assignment:(pairs_assignment ())
      pairs_profile
  in
  Alcotest.(check bool) "identical output" true (run () = run ())

let test_refine_size_cap () =
  (* At max_imbalance 1.0 both partitions already sit at the cap, so the
     greedy pass has nowhere to put anything. *)
  let moves, stats =
    Repartition.refine ~max_imbalance:1.0 ~n_parts:2 ~assignment:(pairs_assignment ())
      pairs_profile
  in
  Alcotest.(check int) "no moves" 0 (List.length moves);
  Alcotest.(check int) "cut unchanged" stats.Repartition.cut_before stats.Repartition.cut_after;
  Alcotest.(check (float 0.0)) "balance kept" stats.Repartition.imbalance_before
    stats.Repartition.imbalance_after

let test_refine_max_moves () =
  let moves, stats =
    Repartition.refine ~max_imbalance:2.0 ~max_moves:1 ~n_parts:2
      ~assignment:(pairs_assignment ()) pairs_profile
  in
  Alcotest.(check int) "one move" 1 (List.length moves);
  Alcotest.(check int) "stats agree" 1 stats.Repartition.moves

let test_refine_heat_cap () =
  (* A star: every leaf wants to join the hub's partition. Without a heat
     cap they all pile on (cut -> 0); with the cap at 1.0 the hub's
     partition is already too hot to accept anyone. *)
  let star = Array.init 7 (fun i -> (0, i + 1, 10)) in
  let assignment () = Array.init 8 (fun v -> v mod 4) in
  let _, unconstrained =
    Repartition.refine ~max_imbalance:4.0 ~n_parts:4 ~assignment:(assignment ()) star
  in
  Alcotest.(check int) "without cap the star collapses" 0 unconstrained.Repartition.cut_after;
  let moves, capped =
    Repartition.refine ~max_imbalance:4.0 ~max_heat_imbalance:1.0 ~n_parts:4
      ~assignment:(assignment ()) star
  in
  Alcotest.(check int) "heat cap blocks the pile-on" 0 (List.length moves);
  Alcotest.(check int) "cut unchanged" capped.Repartition.cut_before capped.Repartition.cut_after

(* --- Engine: online migration --- *)

let show_rows rows =
  Fmt.str "%a"
    (Fmt.list ~sep:(Fmt.any "@.") (Fmt.array ~sep:(Fmt.any "|") Value.pp))
    (Engine.sorted_rows rows)

let khop graph ~start ~hops =
  Compile.compile ~name:"khop" graph
    Dsl.(v_lookup ~key:"id" (int start) |> repeat ~dir:Graph.Out ~times:hops () |> count |> build)

let migration_cluster = { Cluster.default_config with Cluster.n_nodes = 2; workers_per_node = 4 }

(* Aggressive knobs so rounds fire mid-query on a tiny workload. *)
let aggressive_adaptive =
  {
    Async_engine.default_options with
    Async_engine.partition = Partition.Adaptive;
    adaptive =
      {
        Async_engine.default_adaptive with
        Async_engine.refine_interval = Sim_time.us 5;
        min_traffic = 16;
      };
  }

(* Repeated waves over a few start vertices: migration happens during the
   early waves, later waves traverse the migrated graph. *)
let wave_submissions graph ~starts ~waves ~hops =
  let n = Array.length starts in
  Array.init (waves * n) (fun i ->
      let at = Sim_time.us (i * 10) in
      Engine.submit ~at (khop graph ~start:starts.(i mod n) ~hops))

let run_adaptive ?(check = false) ?(options = aggressive_adaptive) graph subs =
  Async_engine.run ~options
    ~common:{ Engine.Common.default with Engine.Common.check }
    ~cluster_config:migration_cluster ~channel_config:Channel.default_config ~graph subs

let test_migration_sanitized () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let starts = [| 1; 2; 3; 5 |] in
  let subs = wave_submissions graph ~starts ~waves:4 ~hops:2 in
  (* check:true turns on per-exec weight conservation, tracker overshoot
     detection, query termination and memo emptiness — a migration that
     loses a traverser, double-delivers, or orphans a memo entry raises
     Check_violation here. *)
  let report = run_adaptive ~check:true graph subs in
  Alcotest.(check bool) "all queries complete" true (Engine.all_completed report);
  let m = report.Engine.metrics in
  Alcotest.(check bool) "migrations happened" true (Metrics.migrations m > 0);
  Alcotest.(check bool) "memo entries re-homed" true (Metrics.migrated_entries m > 0);
  (* Every wave of the same start answers exactly what the oracle says,
     before and after its start vertex moved. *)
  Array.iteri
    (fun i (q : Engine.query_report) ->
      let expected =
        show_rows
          (Local_engine.run graph (khop graph ~start:starts.(i mod Array.length starts) ~hops:2))
      in
      Alcotest.(check string) "rows match oracle" expected (show_rows q.Engine.rows))
    report.Engine.queries

let test_migration_deterministic () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let subs = wave_submissions graph ~starts:[| 1; 2; 3; 5 |] ~waves:3 ~hops:2 in
  let fingerprint () =
    let r = run_adaptive graph subs in
    let m = r.Engine.metrics in
    ( Array.map Engine.latency_ms r.Engine.queries,
      Fmt.str "%a" (Fmt.list ~sep:(Fmt.any ";") Fmt.string)
        (Array.to_list (Array.map (fun q -> show_rows q.Engine.rows) r.Engine.queries)),
      ( Metrics.migrations m,
        Metrics.migrated_entries m,
        Metrics.forwarded m,
        Metrics.stashed m,
        Metrics.message_bytes m Metrics.Traverser_msg ) )
  in
  Alcotest.(check bool) "same seed, same run" true (fingerprint () = fingerprint ())

let test_static_strategy_inert () =
  (* With a static strategy the adaptive knobs must be dead weight: the
     run is bit-for-bit the seed behavior, and no migration happens. *)
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let subs = wave_submissions graph ~starts:[| 1; 2; 3 |] ~waves:2 ~hops:2 in
  let fingerprint options =
    let r =
      Async_engine.run ~options ~cluster_config:migration_cluster
        ~channel_config:Channel.default_config ~graph subs
    in
    let m = r.Engine.metrics in
    Alcotest.(check int) "no migrations" 0 (Metrics.migrations m);
    Alcotest.(check int) "no forwards" 0 (Metrics.forwarded m);
    ( Array.map Engine.latency_ms r.Engine.queries,
      Array.map (fun (q : Engine.query_report) -> show_rows q.Engine.rows) r.Engine.queries,
      Metrics.message_bytes m Metrics.Traverser_msg )
  in
  let hash_aggressive =
    { aggressive_adaptive with Async_engine.partition = Partition.Hash }
  in
  Alcotest.(check bool) "hash run ignores adaptive knobs" true
    (fingerprint Async_engine.default_options = fingerprint hash_aggressive)

let test_warm_start_assignment () =
  (* A warm start installs the refined table up front: with online rounds
     disabled there are no migrations, yet the remote traffic drops
     relative to hash on the same submissions. *)
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let subs = wave_submissions graph ~starts:[| 1; 2; 3; 5 |] ~waves:3 ~hops:2 in
  let n_parts = migration_cluster.Cluster.n_nodes * migration_cluster.Cluster.workers_per_node in
  let obs = Pstm_obs.Recorder.create () in
  let hash =
    Async_engine.run
      ~common:(Engine.Common.with_obs obs Engine.Common.default)
      ~cluster_config:migration_cluster ~channel_config:Channel.default_config ~graph subs
  in
  let profile =
    Array.map
      (fun (u, v, _count, bytes) -> (u, v, bytes))
      (Pstm_obs.Traffic.edges (Pstm_obs.Recorder.traffic obs))
  in
  Alcotest.(check bool) "profile is non-empty" true (Array.length profile > 0);
  let assignment =
    Partition.to_assignment
      (Partition.create ~strategy:Partition.Hash ~n_parts
         ~n_vertices:(Graph.n_vertices graph) ())
  in
  let moves, _ =
    Repartition.refine ~max_imbalance:1.1 ~max_heat_imbalance:1.5 ~n_parts ~assignment profile
  in
  let refined = Array.copy assignment in
  List.iter (fun m -> refined.(m.Repartition.vertex) <- m.Repartition.dst) moves;
  let warm =
    run_adaptive ~check:true
      ~options:
        {
          aggressive_adaptive with
          Async_engine.initial_assignment = Some refined;
          adaptive =
            { Async_engine.default_adaptive with Async_engine.min_traffic = max_int };
        }
      graph subs
  in
  Alcotest.(check bool) "all complete" true (Engine.all_completed warm);
  Alcotest.(check int) "online rounds disabled" 0 (Metrics.migrations warm.Engine.metrics);
  let bytes r = Metrics.message_bytes r.Engine.metrics Metrics.Traverser_msg in
  Alcotest.(check bool) "remote traffic reduced" true (bytes warm < bytes hash)

let () =
  Alcotest.run "repartition"
    [
      ( "refine",
        [
          Alcotest.test_case "co-locates pairs" `Quick test_refine_colocates;
          Alcotest.test_case "deterministic" `Quick test_refine_deterministic;
          Alcotest.test_case "size cap" `Quick test_refine_size_cap;
          Alcotest.test_case "max moves" `Quick test_refine_max_moves;
          Alcotest.test_case "heat cap" `Quick test_refine_heat_cap;
        ] );
      ( "migration",
        [
          Alcotest.test_case "sanitized mid-query migration" `Quick test_migration_sanitized;
          Alcotest.test_case "deterministic" `Quick test_migration_deterministic;
          Alcotest.test_case "static strategy inert" `Quick test_static_strategy_inert;
          Alcotest.test_case "warm start" `Quick test_warm_start_assignment;
        ] );
    ]
