(* Causal-tracing suite (EXPLAIN LATENCY):

   - the disabled instance is inert and the engine's disabled path stays
     on it;
   - binding-edge semantics on a hand-built DAG: the last-added incoming
     edge binds, segments abut, and the per-category attribution
     partitions the end-to-end span exactly;
   - a truncated store reports itself (dropped > 0, no path) instead of
     yielding a corrupted chain;
   - on real k-hop runs across every async flavor the critical-path
     segments sum to the measured latency exactly (integer equality);
   - the acceptance construction: one hot partition behind an injected
     straggler must be blamed on Compute for >= 80% of the critical
     path, again with the exact-partition equality;
   - under drop faults the exact-partition equality survives and the
     path can surface Retransmit segments. *)

open Pstm_engine
open Pstm_query
module Causal = Pstm_obs.Causal
module Recorder = Pstm_obs.Recorder

let ns = Sim_time.ns

let khop_program ?(start = 0) graph hops =
  Compile.compile ~name:"khop" graph
    Dsl.(
      v_lookup ~key:"id" (int start) |> repeat ~dir:Graph.Out ~times:hops () |> count |> build)

(* --- Disabled instance --- *)

let test_disabled_noop () =
  let c = Causal.disabled in
  Alcotest.(check bool) "disabled" false (Causal.enabled c);
  let a = Causal.node c ~qid:0 ~name:"submit" ~ts:(ns 0) in
  Alcotest.(check int) "node refused" (-1) a;
  Causal.edge c ~src:a ~dst:a Causal.Compute;
  Causal.set_submit c ~qid:0 a;
  Causal.set_release c ~qid:0 a;
  Alcotest.(check int) "no nodes" 0 (Causal.n_nodes c);
  Alcotest.(check int) "no edges" 0 (Causal.n_edges c);
  Alcotest.(check int) "nothing dropped" 0 (Causal.dropped c);
  Alcotest.(check bool) "no queries" true (Causal.queries c = []);
  Alcotest.(check bool) "no path" true (Causal.critical_path c ~qid:0 = None);
  Alcotest.(check bool) "no attribution" true (Causal.attribution c ~qid:0 = None)

let test_engine_disabled_records_nothing () =
  (* A run with observability off must leave the causal plane untouched. *)
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let obs = Recorder.create () in
  (* causal defaults off *)
  let report =
    Async_engine.run
      ~common:(Engine.Common.with_obs obs Engine.Common.default)
      ~cluster_config:
        { Cluster.default_config with Cluster.n_nodes = 2; workers_per_node = 4 }
      ~channel_config:Channel.default_config ~graph
      [| Engine.submit (khop_program graph 2) |]
  in
  Alcotest.(check bool) "query completed" true (Engine.all_completed report);
  let c = Recorder.causal obs in
  Alcotest.(check int) "no causal nodes" 0 (Causal.n_nodes c);
  Alcotest.(check int) "no causal edges" 0 (Causal.n_edges c)

(* --- Binding-edge semantics on a hand-built DAG --- *)

let test_binding_last_wins () =
  let c = Causal.create () in
  let submit = Causal.node c ~qid:7 ~name:"submit" ~ts:(ns 0) in
  let decoy = Causal.node c ~qid:7 ~name:"decoy" ~ts:(ns 5) in
  let exec = Causal.node c ~qid:7 ~name:"exec" ~ts:(ns 10) in
  (* The decoy edge arrives first; the binding cause is added last. *)
  Causal.edge c ~src:decoy ~dst:exec Causal.Queue;
  Causal.edge c ~src:submit ~dst:exec Causal.Network;
  let release = Causal.node c ~qid:7 ~name:"release" ~ts:(ns 40) in
  Causal.edge c ~src:exec ~dst:release Causal.Tracker;
  Causal.set_submit c ~qid:7 submit;
  Causal.set_release c ~qid:7 release;
  Alcotest.(check bool) "query listed" true (Causal.queries c = [ 7 ]);
  let path =
    match Causal.critical_path c ~qid:7 with
    | Some p -> p
    | None -> Alcotest.fail "no critical path"
  in
  Alcotest.(check int) "two segments" 2 (List.length path);
  let s0 = List.nth path 0 and s1 = List.nth path 1 in
  (* The last-added Network edge binds, not the decoy's Queue edge. *)
  Alcotest.(check bool) "binding edge wins" true (s0.Causal.seg_cat = Causal.Network);
  Alcotest.(check string) "first src" "submit" s0.Causal.seg_src;
  Alcotest.(check bool) "second is tracker" true (s1.Causal.seg_cat = Causal.Tracker);
  (* Segments abut: t1 of one is t0 of the next, spanning [0, 40]. *)
  Alcotest.(check int) "starts at submit" 0 (Sim_time.to_ns s0.Causal.seg_t0);
  Alcotest.(check int) "abuts" (Sim_time.to_ns s0.Causal.seg_t1) (Sim_time.to_ns s1.Causal.seg_t0);
  Alcotest.(check int) "ends at release" 40 (Sim_time.to_ns s1.Causal.seg_t1);
  let attr =
    match Causal.attribution c ~qid:7 with
    | Some a -> a
    | None -> Alcotest.fail "no attribution"
  in
  Alcotest.(check int) "network share" 10 (Sim_time.to_ns (List.assoc Causal.Network attr));
  Alcotest.(check int) "tracker share" 30 (Sim_time.to_ns (List.assoc Causal.Tracker attr));
  Alcotest.(check int) "partitions the span exactly" 40
    (Sim_time.to_ns (Causal.attribution_total attr));
  Alcotest.(check bool) "dominant is tracker" true (fst (Causal.dominant attr) = Causal.Tracker)

let test_truncation_reports_itself () =
  let c = Causal.create ~capacity:2 () in
  let submit = Causal.node c ~qid:0 ~name:"submit" ~ts:(ns 0) in
  let mid = Causal.node c ~qid:0 ~name:"mid" ~ts:(ns 10) in
  let release = Causal.node c ~qid:0 ~name:"release" ~ts:(ns 20) in
  Alcotest.(check int) "third node refused" (-1) release;
  Alcotest.(check int) "drop counted" 1 (Causal.dropped c);
  Causal.edge c ~src:submit ~dst:mid Causal.Compute;
  Causal.edge c ~src:mid ~dst:release Causal.Tracker;
  (* dst = -1: ignored *)
  Alcotest.(check int) "refused edge ignored" 1 (Causal.n_edges c);
  Causal.set_submit c ~qid:0 submit;
  Causal.set_release c ~qid:0 release;
  Alcotest.(check bool) "truncated DAG yields no path" true
    (Causal.critical_path c ~qid:0 = None);
  Alcotest.(check bool) "nor attribution" true (Causal.attribution c ~qid:0 = None)

(* --- Exact partition of the latency on real runs --- *)

let check_exact_partition ~label report causal =
  let attr =
    match Causal.attribution causal ~qid:0 with
    | Some a -> a
    | None -> Alcotest.fail (label ^ ": no complete causal path")
  in
  let total = Causal.attribution_total attr in
  let latency =
    match Engine.latency report.Engine.queries.(0) with
    | Some l -> l
    | None -> Alcotest.fail (label ^ ": query did not complete")
  in
  Alcotest.(check int)
    (label ^ ": segments partition the latency exactly")
    (Sim_time.to_ns latency) (Sim_time.to_ns total);
  attr

let run_traced ?(options = Async_engine.default_options) ?faults ?(nodes = 2) ?(workers = 4)
    ?(hops = 2) graph =
  let obs = Recorder.create ~causal:true () in
  let common =
    { (Engine.Common.with_obs obs Engine.Common.default) with Engine.Common.faults }
  in
  let report =
    Async_engine.run ~options ~common
      ~cluster_config:
        { Cluster.default_config with Cluster.n_nodes = nodes; workers_per_node = workers }
      ~channel_config:Channel.default_config ~graph
      [| Engine.submit (khop_program graph hops) |]
  in
  (report, Recorder.causal obs)

let test_exact_sum_all_flavors () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  List.iter
    (fun flavor ->
      let label = Async_engine.flavor_name flavor in
      let options = { Async_engine.default_options with Async_engine.flavor } in
      let report, causal = run_traced ~options graph in
      ignore (check_exact_partition ~label report causal))
    [ Async_engine.Graphdance; Async_engine.Banyan_like; Async_engine.Gaia_like ]

(* --- The acceptance construction: hot partition behind a straggler --- *)

let share attr cat =
  let total = Sim_time.to_s (Causal.attribution_total attr) in
  Sim_time.to_s (List.assoc cat attr) /. Float.max total 1e-12

let test_straggler_blamed () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  (* Pin every vertex on partition 0 (worker 0 of node 0) and freeze the
     repartitioner, then make node 0 a 40x straggler. Query 0's
     coordinator also lands on worker 0, so the whole serial chain runs
     on the straggler: the critical path must blame Compute. *)
  let options =
    {
      Async_engine.default_options with
      Async_engine.partition = Partition.Adaptive;
      initial_assignment = Some (Array.make (Graph.n_vertices graph) 0);
      adaptive =
        { Async_engine.default_adaptive with Async_engine.min_traffic = max_int };
    }
  in
  let faults = { Faults.none with Faults.slow_nodes = [ (0, 40.0) ] } in
  let report, causal = run_traced ~options ~faults graph in
  let attr = check_exact_partition ~label:"straggler" report causal in
  let compute = share attr Causal.Compute in
  Alcotest.(check bool)
    (Printf.sprintf "straggler category blamed for >= 80%% (got %.1f%%)" (100.0 *. compute))
    true (compute >= 0.8);
  Alcotest.(check bool) "dominant is compute" true
    (fst (Causal.dominant attr) = Causal.Compute);
  (* Control: the same placement without the straggler must not be
     compute-bound to the same degree — the blame tracks the fault. *)
  let report', causal' = run_traced ~options graph in
  let attr' = check_exact_partition ~label:"control" report' causal' in
  Alcotest.(check bool) "blame tracks the injected fault" true
    (share attr' Causal.Compute < compute)

(* --- Faults: exact partition survives; retransmits are classified --- *)

let test_exact_sum_under_drops () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let saw_retransmit = ref false in
  List.iter
    (fun seed ->
      let faults = { Faults.none with Faults.drop = 0.15; seed } in
      let report, causal = run_traced ~faults graph in
      ignore (check_exact_partition ~label:(Printf.sprintf "drop seed %d" seed) report causal);
      match Causal.critical_path causal ~qid:0 with
      | Some path ->
        if List.exists (fun s -> s.Causal.seg_cat = Causal.Retransmit) path then
          saw_retransmit := true
      | None -> Alcotest.fail "path vanished after attribution succeeded")
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "some critical path crosses a retransmitted delivery" true
    !saw_retransmit

let () =
  Alcotest.run "causal"
    [
      ( "disabled",
        [
          Alcotest.test_case "inert instance" `Quick test_disabled_noop;
          Alcotest.test_case "engine records nothing" `Quick
            test_engine_disabled_records_nothing;
        ] );
      ( "dag",
        [
          Alcotest.test_case "binding edge wins" `Quick test_binding_last_wins;
          Alcotest.test_case "truncation reports itself" `Quick
            test_truncation_reports_itself;
        ] );
      ( "engine",
        [
          Alcotest.test_case "exact sum, all flavors" `Quick test_exact_sum_all_flavors;
          Alcotest.test_case "straggler blamed >= 80%" `Quick test_straggler_blamed;
          Alcotest.test_case "exact sum under drops" `Quick test_exact_sum_under_drops;
        ] );
    ]
