(* Service-layer suite: open-loop arrivals, weighted-fair scheduling,
   admission control, and scoped cancellation.

   - same-seed arrival generation and whole-service runs replay
     byte-identically;
   - two continuously backlogged tenants split completions by their
     weighted-fair shares;
   - cancelling a query mid-flight leaves the sanitizer clean (trackers
     released, memos empty) and reports [Cancelled];
   - shed queries never consume engine events;
   - past saturation, admission control sheds while every admitted query
     stays within the SLO headroom — where the admission-off baseline's
     tail grows without bound. *)

open Pstm_engine
open Pstm_service
open Pstm_query

let small_cluster = { Cluster.default_config with Cluster.n_nodes = 3; workers_per_node = 3 }
let registry = Registry.make ~cluster_config:small_cluster ()
let graphdance () = Registry.find_exn ~registry "graphdance"
let fixture_graph () = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny

let khop graph hops =
  Compile.compile ~name:(Printf.sprintf "khop%d" hops) graph
    Dsl.(
      v_lookup ~key:"id" (int 1) |> repeat ~dir:Graph.Out ~times:hops () |> count |> build)

let checked = { Engine.Common.default with Engine.Common.check = true }

(* --- Arrival determinism ------------------------------------------------ *)

let test_arrival_determinism () =
  let take process seed =
    Arrival.take (Arrival.create ~seed process) ~horizon:(Sim_time.ms 100)
  in
  List.iter
    (fun (name, process) ->
      let a = take process 7 and b = take process 7 in
      Alcotest.(check (array int)) (name ^ ": same seed, same arrivals") a b;
      let c = take process 8 in
      if a = c then Alcotest.failf "%s: different seeds produced identical streams" name;
      Array.iteri
        (fun i at ->
          if i > 0 && Sim_time.compare at a.(i - 1) < 0 then
            Alcotest.failf "%s: arrivals not monotone at %d" name i)
        a;
      if Array.length a < 10 then Alcotest.failf "%s: expected a busy stream" name)
    [
      ("poisson", Arrival.Poisson { rate_qps = 1000.0 });
      ( "bursty",
        Arrival.Bursty
          { base_qps = 300.0; burst_qps = 3000.0; mean_dwell = Sim_time.ms 5 } );
    ]

(* --- Whole-run determinism ---------------------------------------------- *)

let service_config ?(admission = true) ?(seed = 11) ?patience ?(max_inflight = 2) ~rate () =
  Service.config ~max_inflight ~slo:(Sim_time.ms 1) ~admission ~seed
    ~horizon:(Sim_time.ms 2)
    [| Service.tenant ?patience (Arrival.Poisson { rate_qps = rate }) |]

let run_service ?(common = checked) config =
  let graph = fixture_graph () in
  Service.run (graphdance ()) ~common ~graph ~config
    ~program:(fun ~tenant:_ ~seq:_ -> khop graph 2)
    ()

let test_same_seed_identical () =
  let cfg = service_config ~rate:3000.0 ~patience:(Sim_time.ms 1) () in
  let a = Service.fingerprint (run_service cfg) in
  let b = Service.fingerprint (run_service cfg) in
  Alcotest.(check string) "same seed, same service run" a b

(* --- Weighted-fair share ------------------------------------------------ *)

let test_weighted_fair_share () =
  let graph = fixture_graph () in
  (* Both tenants continuously backlogged (offered load far beyond
     capacity), both impatient: completions then track dispatch rate,
     which WFQ sets by weight — 3x for the heavy tenant. *)
  let mk weight =
    Service.tenant ~weight ~patience:(Sim_time.ms 1)
      (Arrival.Poisson { rate_qps = 20_000.0 })
  in
  let config =
    Service.config ~max_inflight:1 ~slo:(Sim_time.ms 1) ~admission:false ~seed:5
      ~horizon:(Sim_time.ms 4)
      [| mk 1.0; mk 3.0 |]
  in
  let r =
    Service.run (graphdance ()) ~common:checked ~graph ~config
      ~program:(fun ~tenant:_ ~seq:_ -> khop graph 2)
      ()
  in
  let c0 = r.Service.r_per_tenant.(0).Service.ts_completed in
  let c1 = r.Service.r_per_tenant.(1).Service.ts_completed in
  if c0 = 0 then Alcotest.fail "light tenant starved outright";
  let ratio = float_of_int c1 /. float_of_int c0 in
  if ratio < 2.0 || ratio > 4.5 then
    Alcotest.failf "weighted share off: heavy/light = %d/%d = %.2f (want ~3)" c1 c0 ratio;
  (* Both tenants were overloaded, so both must have abandoned some. *)
  if r.Service.r_per_tenant.(0).Service.ts_cancelled = 0 then
    Alcotest.fail "expected abandonment under overload"

(* --- Priority classes --------------------------------------------------- *)

let test_priority_preemption () =
  let graph = fixture_graph () in
  let mk priority =
    Service.tenant ~priority ~patience:(Sim_time.ms 1)
      (Arrival.Poisson { rate_qps = 20_000.0 })
  in
  let config =
    Service.config ~max_inflight:1 ~slo:(Sim_time.ms 1) ~admission:false ~seed:6
      ~horizon:(Sim_time.ms 3)
      [| mk 0; mk 1 |]
  in
  let r =
    Service.run (graphdance ()) ~common:checked ~graph ~config
      ~program:(fun ~tenant:_ ~seq:_ -> khop graph 2)
      ()
  in
  let lo = r.Service.r_per_tenant.(0) and hi = r.Service.r_per_tenant.(1) in
  if hi.Service.ts_completed <= lo.Service.ts_completed then
    Alcotest.failf "priority ignored: high=%d low=%d" hi.Service.ts_completed
      lo.Service.ts_completed;
  (* The high-priority backlogged tenant should claim nearly everything. *)
  if lo.Service.ts_completed * 4 > hi.Service.ts_completed then
    Alcotest.failf "strict priority too soft: high=%d low=%d" hi.Service.ts_completed
      lo.Service.ts_completed

(* --- Scoped cancellation under the sanitizer ---------------------------- *)

let test_cancel_mid_flight_clean () =
  let graph = fixture_graph () in
  let program = khop graph 3 in
  (* Find the uncancelled latency first, then cancel halfway through. *)
  let full =
    Async_engine.run ~common:checked ~cluster_config:small_cluster
      ~channel_config:Channel.default_config ~graph
      [| Engine.submit program |]
  in
  let lat =
    match Engine.latency full.Engine.queries.(0) with
    | Some l -> l
    | None -> Alcotest.fail "fixture query did not complete"
  in
  let halfway = Sim_time.of_float_ns (float_of_int (Sim_time.to_ns lat) /. 2.0) in
  let h =
    Async_engine.create ~common:checked ~cluster_config:small_cluster
      ~channel_config:Channel.default_config ~graph ()
  in
  let terminal = ref [] in
  h.Engine.sh_on_terminal (fun qid o -> terminal := (qid, o) :: !terminal);
  let qid = h.Engine.sh_submit (Engine.submit program) in
  h.Engine.sh_cancel ~qid ~at:halfway;
  (* [sh_finish] runs the sanitizer: trackers must be released and every
     memo empty even though the query died mid-flight. *)
  h.Engine.sh_drive ~until:None;
  let report = h.Engine.sh_finish () in
  (match report.Engine.queries.(qid).Engine.outcome with
  | Engine.Cancelled -> ()
  | o -> Alcotest.failf "expected Cancelled, got %s" (Engine.outcome_name o));
  (match !terminal with
  | [ (q, Engine.Cancelled) ] when q = qid -> ()
  | _ -> Alcotest.fail "terminal callback did not fire exactly once with Cancelled")

(* Regression: a cancelled query used to strand its pending causal
   coalescer bindings in the per-worker [cz_coalesce] table (and, under
   hierarchical tracking, [cz_delegate]). The sanitizer now asserts both
   tables empty at finish, so this run — causal tracing on, cancellation
   landing mid-flight — fails loudly if the cleanup regresses. Runs flat
   and with a fanout-2 delegate tree. *)
let test_cancel_strands_no_causal_state () =
  let graph = fixture_graph () in
  let program = khop graph 3 in
  List.iter
    (fun (mode, tracker_fanout) ->
      let options = { Async_engine.default_options with Async_engine.tracker_fanout } in
      let full =
        Async_engine.run ~options ~common:checked ~cluster_config:small_cluster
          ~channel_config:Channel.default_config ~graph
          [| Engine.submit program |]
      in
      let lat =
        match Engine.latency full.Engine.queries.(0) with
        | Some l -> l
        | None -> Alcotest.failf "%s: fixture query did not complete" mode
      in
      let halfway = Sim_time.of_float_ns (float_of_int (Sim_time.to_ns lat) /. 2.0) in
      let obs = Pstm_obs.Recorder.create ~causal:true () in
      let h =
        Async_engine.create ~options
          ~common:(Engine.Common.with_obs obs checked)
          ~cluster_config:small_cluster ~channel_config:Channel.default_config ~graph ()
      in
      let qid = h.Engine.sh_submit (Engine.submit program) in
      h.Engine.sh_cancel ~qid ~at:halfway;
      h.Engine.sh_drive ~until:None;
      match h.Engine.sh_finish () with
      | report -> (
        match report.Engine.queries.(qid).Engine.outcome with
        | Engine.Cancelled -> ()
        | o ->
          Alcotest.failf "%s: expected Cancelled, got %s" mode (Engine.outcome_name o))
      | exception Engine.Check_violation why ->
        Alcotest.failf "%s: stranded state after cancellation: %s" mode why)
    [ ("flat", None); ("hierarchical", Some 2) ]

let test_per_query_deadline () =
  let graph = fixture_graph () in
  let program = khop graph 3 in
  let h =
    Async_engine.create ~common:checked ~cluster_config:small_cluster
      ~channel_config:Channel.default_config ~graph ()
  in
  let qid = h.Engine.sh_submit (Engine.submit ~deadline:(Sim_time.us 2) program) in
  h.Engine.sh_drive ~until:None;
  let report = h.Engine.sh_finish () in
  match report.Engine.queries.(qid).Engine.outcome with
  | Engine.Timed_out -> ()
  | o -> Alcotest.failf "expected Timed_out, got %s" (Engine.outcome_name o)

(* Cancellation through the service layer (patience), against every
   registry engine: the run must stay sanitizer-clean end to end. *)
let test_cancellation_all_engines () =
  let graph = fixture_graph () in
  let total_cancelled = ref 0 in
  List.iter
    (fun (name, engine) ->
      let config =
        Service.config ~max_inflight:1 ~slo:(Sim_time.ms 1) ~admission:false ~seed:9
          ~horizon:(Sim_time.ms 1)
          [| Service.tenant ~patience:(Sim_time.ms 1) (Arrival.Poisson { rate_qps = 40_000.0 }) |]
      in
      match
        Service.run engine ~common:checked ~graph ~config
          ~program:(fun ~tenant:_ ~seq:_ -> khop graph 2)
          ()
      with
      | r ->
        if Service.offered r = 0 then Alcotest.failf "%s: no arrivals" name;
        if Service.completed r = 0 then Alcotest.failf "%s: nothing completed" name;
        total_cancelled := !total_cancelled + Service.cancelled r
      | exception Engine.Check_violation why ->
        Alcotest.failf "%s: sanitizer violation under cancellation: %s" name why)
    registry;
  (* The local oracle completes instantly and can never be caught by a
     patience timer; the slower engines must have abandoned queries. *)
  if !total_cancelled = 0 then Alcotest.fail "no engine exercised abandonment"

(* --- Shedding ----------------------------------------------------------- *)

let test_shed_consumes_no_engine_events () =
  (* Headroom below the idle-service projection: everything is shed at
     the door. The engine then executes exactly one event per arrival
     timer and nothing else — no query ever launched. *)
  let graph = fixture_graph () in
  let config =
    Service.config ~max_inflight:1 ~slo:(Sim_time.ms 1) ~admission:true ~headroom:0.1
      ~seed:13 ~horizon:(Sim_time.ms 1)
      [| Service.tenant (Arrival.Poisson { rate_qps = 5000.0 }) |]
  in
  let r =
    Service.run (graphdance ()) ~common:checked ~graph ~config
      ~program:(fun ~tenant:_ ~seq:_ -> khop graph 2)
      ()
  in
  Alcotest.(check int) "every query shed" (Service.offered r) (Service.shed r);
  Alcotest.(check int) "engine saw no queries" 0 (Array.length r.Service.r_report.Engine.queries);
  Alcotest.(check int)
    "one engine event per arrival timer, none from queries" (Service.offered r)
    r.Service.r_report.Engine.events

(* --- Graceful degradation under overload -------------------------------- *)

let overload_config ~admission ~seed =
  Service.config ~max_inflight:2 ~slo:(Sim_time.ms 1) ~admission ~headroom:2.0 ~seed
    ~horizon:(Sim_time.ms 5)
    [| Service.tenant (Arrival.Poisson { rate_qps = 30_000.0 }) |]

let test_overload_admitted_meet_slo () =
  let graph = fixture_graph () in
  let run admission =
    Service.run (graphdance ()) ~common:checked ~graph
      ~config:(overload_config ~admission ~seed:17)
      ~program:(fun ~tenant:_ ~seq:_ -> khop graph 2)
      ()
  in
  let guarded = run true in
  if Service.shed guarded = 0 then Alcotest.fail "overload did not trigger shedding";
  if Service.completed guarded = 0 then Alcotest.fail "nothing admitted completed";
  let slo_ms = Sim_time.to_ms (Sim_time.ms 1) in
  let p99 = Service.p99_ms guarded in
  if p99 > 2.0 *. slo_ms then
    Alcotest.failf "admitted p99 %.3fms blew the 2x SLO bound (%.3fms)" p99 (2.0 *. slo_ms);
  (* The no-admission baseline queues unboundedly: its tail must be far
     worse than the guarded service's. *)
  let baseline = run false in
  Alcotest.(check int) "baseline sheds nothing" 0 (Service.shed baseline);
  let p99_base = Service.p99_ms baseline in
  if p99_base <= 2.0 *. p99 then
    Alcotest.failf "baseline p99 %.3fms did not collapse vs guarded %.3fms" p99_base p99

(* Regression: [observe_service] used to learn only from completions.
   Under a workload where every admitted query blows its engine deadline
   there are no completions, so the admission EWMA stayed frozen at its
   optimistic seed (slo/2) and the service kept admitting queries that
   were doomed to time out. Timeouts (and abandonments) now feed the
   EWMA at their elapsed time, so after a handful of timed-out queries
   the projected latency crosses the headroom and the service sheds at
   the door instead. *)
let test_timeouts_feed_admission () =
  let graph = fixture_graph () in
  (* Deadline = 2 x SLO, far below the query's real latency: nothing can
     complete, so timeouts are the only learning signal available. *)
  let config =
    Service.config ~max_inflight:2 ~slo:(Sim_time.us 10) ~admission:true ~headroom:2.0
      ~deadline_factor:2.0 ~seed:21 ~horizon:(Sim_time.ms 2)
      [| Service.tenant (Arrival.Poisson { rate_qps = 100_000.0 }) |]
  in
  let r =
    Service.run (graphdance ()) ~common:checked ~graph ~config
      ~program:(fun ~tenant:_ ~seq:_ -> khop graph 3)
      ()
  in
  Alcotest.(check int) "nothing can complete" 0 (Service.completed r);
  if Service.timed_out r = 0 then Alcotest.fail "no query timed out (fixture too easy)";
  if Service.shed r = 0 then
    Alcotest.fail "admission never learned from timeouts: no shedding";
  (* Once the EWMA has absorbed a few deadline-elapsed observations the
     projection stays above headroom x SLO, so shed queries must come to
     dominate admitted-and-doomed ones. *)
  if Service.shed r <= Service.timed_out r then
    Alcotest.failf "admission barely reacted: shed %d <= timed out %d" (Service.shed r)
      (Service.timed_out r)

let () =
  Alcotest.run "service"
    [
      ( "arrival",
        [ Alcotest.test_case "same seed, same stream" `Quick test_arrival_determinism ] );
      ( "determinism",
        [ Alcotest.test_case "same seed, same run" `Quick test_same_seed_identical ] );
      ( "fairness",
        [
          Alcotest.test_case "weighted share ~3:1" `Quick test_weighted_fair_share;
          Alcotest.test_case "strict priority wins" `Quick test_priority_preemption;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "mid-flight, sanitizer clean" `Quick test_cancel_mid_flight_clean;
          Alcotest.test_case "no stranded causal state (flat + hierarchical)" `Quick
            test_cancel_strands_no_causal_state;
          Alcotest.test_case "per-query deadline" `Quick test_per_query_deadline;
          Alcotest.test_case "every engine, via patience" `Quick test_cancellation_all_engines;
        ] );
      ( "admission",
        [
          Alcotest.test_case "shed consumes no engine events" `Quick
            test_shed_consumes_no_engine_events;
          Alcotest.test_case "overload: admitted meet SLO" `Quick
            test_overload_admitted_meet_slo;
          Alcotest.test_case "timeouts feed the admission EWMA" `Quick
            test_timeouts_feed_admission;
        ] );
    ]
