(* Cross-engine properties: every distributed engine must produce the
   reference interpreter's rows on randomly generated graphs and queries,
   weights must conserve through every step, runs must be deterministic,
   and deadlines must be honored. *)

open Pstm_engine
open Pstm_query

let qcheck = QCheck_alcotest.to_alcotest

(* --- Random fixtures --- *)

(* A random labeled property graph: n vertices with id/weight, random
   edges over two labels. *)
let graph_of ~n ~edges =
  let b = Builder.create () in
  for i = 0 to n - 1 do
    ignore
      (Builder.add_vertex b ~label:(if i mod 3 = 0 then "A" else "B")
         ~props:[ ("id", Value.Int i); ("weight", Value.Int ((i * 37) mod 100)) ]
         ())
  done;
  List.iter
    (fun (s, d, l) ->
      if s < n && d < n then
        ignore (Builder.add_edge b ~src:s ~label:(if l then "x" else "y") ~dst:d ()))
    edges;
  Builder.build b

let arb_graph =
  QCheck.make
    ~print:(fun (n, edges) -> Fmt.str "graph n=%d m=%d" n (List.length edges))
    QCheck.Gen.(
      let* n = int_range 4 24 in
      let* edges =
        list_size (int_range 0 60) (triple (int_range 0 23) (int_range 0 23) bool)
      in
      return (n, edges))

(* Random queries from the deterministic fragment: movement, filters,
   dedup, repeat, then an order-insensitive terminal. *)
let arb_query =
  let open QCheck.Gen in
  let movement =
    oneof
      [
        return (Ast.Out (Some "x"));
        return (Ast.Out (Some "y"));
        return (Ast.Out None);
        return (Ast.In (Some "x"));
        return (Ast.Both (Some "y"));
      ]
  in
  let filter =
    oneof
      [
        map (fun v -> Ast.Has ("weight", Ast.Ge (Value.Int v))) (int_range 0 100);
        map (fun v -> Ast.Has ("weight", Ast.Lt (Value.Int v))) (int_range 0 100);
        return (Ast.Has_label "A");
        return Ast.Dedup;
      ]
  in
  let middle = list_size (int_range 0 4) (oneof [ movement; filter ]) in
  let repeat = map (fun k -> Ast.Repeat { dir = Graph.Out; label = None; times = k }) (int_range 1 3) in
  let terminal =
    oneof
      [
        return [ Ast.Count ];
        return [ Ast.Sum_of "weight" ];
        return [ Ast.Max_of "weight" ];
        return [ Ast.Min_of "weight" ];
        return [ Ast.Group_count "weight" ];
        return [ Ast.Top_k { key = "weight"; k = 4 } ];
        return [ Ast.Dedup ] (* row stream *);
      ]
  in
  let gen =
    let* source =
      oneof
        [
          map (fun i -> Ast.Lookup { label = None; key = "id"; value = Value.Int i }) (int_range 0 23);
          return (Ast.Scan_all (Some "A"));
        ]
    in
    let* use_repeat = bool in
    let* mid = middle in
    let* rep = repeat in
    let* term = terminal in
    let steps = if use_repeat then (rep :: mid) @ term else mid @ term in
    return (Ast.Traversal { Ast.source; steps })
  in
  QCheck.make ~print:(Fmt.str "%a" Ast.pp) gen

let show_rows rows =
  Fmt.str "%a" (Fmt.list ~sep:(Fmt.any "@.") (Fmt.array ~sep:(Fmt.any "|") Value.pp))
    (Engine.sorted_rows rows)

let small_cluster = { Cluster.default_config with Cluster.n_nodes = 3; workers_per_node = 3 }

let run_async ?(options = Async_engine.default_options) ?(channel = Channel.default_config)
    ?(config = small_cluster) graph program =
  let report =
    Async_engine.run ~options ~cluster_config:config ~channel_config:channel ~graph
      [| Engine.submit program |]
  in
  report.Engine.queries.(0).Engine.rows

let engines_agree =
  QCheck.Test.make ~name:"async/bsp engines match the reference" ~count:120
    (QCheck.pair arb_graph arb_query)
    (fun ((n, edges), ast) ->
      let graph = graph_of ~n ~edges in
      match Compile.compile ~name:"prop" graph ast with
      | exception Compile.Error _ -> QCheck.assume_fail ()
      | program ->
        let expected = show_rows (Local_engine.run graph program) in
        let async_rows = show_rows (run_async graph program) in
        let bsp_report =
          Bsp_engine.run ~cluster_config:small_cluster ~graph [| Engine.submit program |]
        in
        let bsp_rows = show_rows bsp_report.Engine.queries.(0).Engine.rows in
        expected = async_rows && expected = bsp_rows)

let variants_agree =
  QCheck.Test.make ~name:"flavors, channels and partitions preserve answers" ~count:60
    (QCheck.pair arb_graph arb_query)
    (fun ((n, edges), ast) ->
      let graph = graph_of ~n ~edges in
      match Compile.compile ~name:"prop" graph ast with
      | exception Compile.Error _ -> QCheck.assume_fail ()
      | program ->
        let expected = show_rows (Local_engine.run graph program) in
        List.for_all
          (fun rows -> show_rows rows = expected)
          [
            run_async ~channel:Channel.no_batching graph program;
            run_async ~channel:Channel.tlc_only graph program;
            run_async
              ~options:{ Async_engine.default_options with Async_engine.weight_coalescing = false }
              graph program;
            run_async
              ~options:{ Async_engine.default_options with Async_engine.flavor = Async_engine.Banyan_like }
              graph program;
            run_async
              ~options:{ Async_engine.default_options with Async_engine.flavor = Async_engine.Gaia_like }
              graph program;
            run_async
              ~options:{ Async_engine.default_options with Async_engine.shared_state = true }
              graph program;
            run_async ~config:{ small_cluster with Cluster.n_nodes = 1; workers_per_node = 1 } graph
              program;
          ])

(* Weight conservation through every op (the Exec invariant). *)
let exec_conserves_weight =
  QCheck.Test.make ~name:"exec conserves weight on every step" ~count:150
    (QCheck.triple arb_graph arb_query QCheck.small_int)
    (fun ((n, edges), ast, seed) ->
      let graph = graph_of ~n ~edges in
      match Compile.compile ~name:"prop" graph ast with
      | exception Compile.Error _ -> QCheck.assume_fail ()
      | program ->
        (* Drive the program on a plain queue, checking the invariant on
           every single exec call. *)
        let memo = Memo.create () in
        let prng = Prng.create seed in
        let scan label =
          let out = ref [] in
          (match label with
          | None -> Graph.iter_vertices graph (fun v -> out := v :: !out)
          | Some l -> Graph.iter_vertices_with_label graph l (fun v -> out := v :: !out));
          Array.of_list !out
        in
        let queue = Queue.create () in
        Array.iter
          (fun e ->
            Queue.add
              (Traverser.make ~vertex:0 ~step:e ~weight:Weight.root
                 ~n_registers:(Program.n_registers program))
              queue)
          (Program.entries program);
        let ok = ref true in
        let budget = ref 50_000 in
        while (not (Queue.is_empty queue)) && !budget > 0 do
          decr budget;
          let t = Queue.pop queue in
          let o = Exec.exec ~graph ~memo ~prng ~qid:0 ~program ~scan t in
          let total =
            List.fold_left
              (fun acc (c : Traverser.t) -> Weight.add acc c.Traverser.weight)
              o.Exec.finished o.Exec.spawns
          in
          let total = List.fold_left (fun acc (_, w) -> Weight.add acc w) total o.Exec.rows in
          if not (Weight.equal total t.Traverser.weight) then ok := false;
          (* Only follow same-phase spawns; aggregates end phases. *)
          List.iter (fun c -> Queue.add c queue) o.Exec.spawns
        done;
        !ok)

(* Determinism: identical runs give identical reports. *)
let runs_deterministic =
  QCheck.Test.make ~name:"async engine is deterministic" ~count:40
    (QCheck.pair arb_graph arb_query)
    (fun ((n, edges), ast) ->
      let graph = graph_of ~n ~edges in
      match Compile.compile ~name:"prop" graph ast with
      | exception Compile.Error _ -> QCheck.assume_fail ()
      | program ->
        let run () =
          let r =
            Async_engine.run ~cluster_config:small_cluster ~channel_config:Channel.default_config
              ~graph [| Engine.submit program |]
          in
          (Engine.latency_ms r.Engine.queries.(0), show_rows r.Engine.queries.(0).Engine.rows)
        in
        run () = run ())

(* --- Directed scenario tests --- *)

let khop_program graph hops =
  Compile.compile ~name:"khop" graph
    Dsl.(v_lookup ~key:"id" (int 0) |> repeat ~dir:Graph.Out ~times:hops () |> count |> build)

let test_concurrent_queries_complete () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let program = khop_program graph 2 in
  let expected = show_rows (Local_engine.run graph program) in
  let submissions =
    Array.init 20 (fun i -> Engine.submit ~at:(Sim_time.us (i * 7)) program)
  in
  let report =
    Async_engine.run ~cluster_config:small_cluster ~channel_config:Channel.default_config ~graph
      submissions
  in
  Alcotest.(check bool) "all complete" true (Engine.all_completed report);
  Array.iter
    (fun q -> Alcotest.(check string) "same rows under concurrency" expected (show_rows q.Engine.rows))
    report.Engine.queries;
  (* Latencies are sane: completion after submission. *)
  Array.iter
    (fun (q : Engine.query_report) ->
      Alcotest.(check bool) "positive latency" true (Engine.latency_ms q > 0.0))
    report.Engine.queries

let test_deadline_times_out () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.lj_like in
  let program =
    Compile.compile ~name:"big" graph
      Dsl.(v_lookup ~key:"id" (int 1) |> repeat_out "link" ~times:4 |> count |> build)
  in
  let report =
    Async_engine.run
      ~common:(Engine.Common.with_deadline (Some (Sim_time.us 10)) Engine.Common.default)
      ~cluster_config:small_cluster
      ~channel_config:Channel.default_config ~graph
      [| Engine.submit program |]
  in
  Alcotest.(check bool) "timed out" false (Engine.all_completed report);
  Alcotest.(check bool) "latency reported as infinite" true
    (Engine.latency_ms report.Engine.queries.(0) = Float.infinity)

let test_bsp_profiles_same_rows () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let program = khop_program graph 3 in
  let expected = show_rows (Local_engine.run graph program) in
  List.iter
    (fun profile ->
      let report = Bsp_engine.run ~profile ~cluster_config:small_cluster ~graph [| Engine.submit program |] in
      Alcotest.(check string)
        (Bsp_engine.profile_name profile)
        expected
        (show_rows report.Engine.queries.(0).Engine.rows);
      (* The interpreted profile must be slower. *)
      ignore report)
    [ Bsp_engine.Ablation; Bsp_engine.Tigergraph_role ]

let test_tigergraph_profile_slower () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let program = khop_program graph 3 in
  let latency profile =
    let r = Bsp_engine.run ~profile ~cluster_config:small_cluster ~graph [| Engine.submit program |] in
    Engine.latency_ms r.Engine.queries.(0)
  in
  Alcotest.(check bool) "interpretation costs" true
    (latency Bsp_engine.Tigergraph_role > latency Bsp_engine.Ablation)

let test_single_node_engine () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let program = khop_program graph 2 in
  let expected = show_rows (Local_engine.run graph program) in
  let report =
    Single_node_engine.run ~workers:4 ~base_config:Cluster.default_config ~graph
      [| Engine.submit program |]
  in
  Alcotest.(check string) "rows" expected (show_rows report.Engine.queries.(0).Engine.rows);
  Alcotest.(check int) "no network packets on one node" 0
    (Metrics.packets report.Engine.metrics)

let test_worker_busy_reported () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let program = khop_program graph 2 in
  let report =
    Async_engine.run ~cluster_config:small_cluster ~channel_config:Channel.default_config ~graph
      [| Engine.submit program |]
  in
  Alcotest.(check int) "one entry per worker" 9 (Array.length report.Engine.worker_busy);
  let total = Array.fold_left ( + ) 0 report.Engine.worker_busy in
  Alcotest.(check bool) "some work recorded" true (total > 0);
  Alcotest.(check bool) "max below makespan" true
    (Array.for_all (fun b -> b <= report.Engine.makespan) report.Engine.worker_busy)

let test_wc_off_sends_more_progress () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let program = khop_program graph 3 in
  let progress wc =
    let r =
      Async_engine.run
        ~options:{ Async_engine.default_options with Async_engine.weight_coalescing = wc }
        ~cluster_config:small_cluster ~channel_config:Channel.default_config ~graph
        [| Engine.submit program |]
    in
    Metrics.messages r.Engine.metrics Metrics.Progress_msg
  in
  Alcotest.(check bool) "coalescing reduces tracker messages" true (progress false > progress true)

let () =
  Alcotest.run "engines"
    [
      ( "properties",
        [
          qcheck engines_agree;
          qcheck variants_agree;
          qcheck exec_conserves_weight;
          qcheck runs_deterministic;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "concurrent queries" `Quick test_concurrent_queries_complete;
          Alcotest.test_case "deadline timeout" `Quick test_deadline_times_out;
          Alcotest.test_case "bsp profiles agree" `Quick test_bsp_profiles_same_rows;
          Alcotest.test_case "tigergraph profile slower" `Quick test_tigergraph_profile_slower;
          Alcotest.test_case "single node" `Quick test_single_node_engine;
          Alcotest.test_case "worker busy reported" `Quick test_worker_busy_reported;
          Alcotest.test_case "wc off sends more progress" `Quick test_wc_off_sends_more_progress;
        ] );
    ]
