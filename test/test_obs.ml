(* lib/obs unit tests: deterministic JSON, trace recorder semantics
   (disabled path, ring bounding, span nesting), byte-identical trace
   export across same-seed engine runs, operator-stats conservation,
   flight-recorder decimation, and histogram percentile edge cases. *)

open Pstm_engine
open Pstm_query
module Json = Pstm_obs.Json
module Trace = Pstm_obs.Trace
module Flight = Pstm_obs.Flight
module Opstats = Pstm_obs.Opstats
module Recorder = Pstm_obs.Recorder

(* --- Json --- *)

let test_json_render () =
  let check name expected doc = Alcotest.(check string) name expected (Json.to_string doc) in
  check "escaping" {|"a\"b\\c\n\tx\u0001"|} (Json.Str "a\"b\\c\n\tx\001");
  check "null" "null" Json.Null;
  check "bools" "[true,false]" (Json.List [ Json.Bool true; Json.Bool false ]);
  check "int" "-42" (Json.Int (-42));
  check "non-finite floats are null" "[null,null,null]"
    (Json.List [ Json.Float nan; Json.Float infinity; Json.Float neg_infinity ]);
  check "integral float" "3" (Json.Float 3.0);
  check "fractional float" "0.25" (Json.Float 0.25);
  check "raw verbatim" "12.500" (Json.Raw "12.500");
  check "object field order preserved" {|{"b":1,"a":2}|}
    (Json.Obj [ ("b", Json.Int 1); ("a", Json.Int 2) ])

(* --- Trace recorder --- *)

let test_trace_disabled_noop () =
  let t = Trace.disabled in
  Alcotest.(check bool) "disabled" false (Trace.enabled t);
  Trace.span t ~tid:0 ~name:"s" ~ts:0 ~dur:10 ();
  Trace.instant t ~tid:0 ~name:"i" ~ts:5 ();
  Alcotest.(check int) "no events retained" 0 (Trace.length t);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped t)

let test_trace_ring_bounds () =
  let t = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.instant t ~tid:0 ~name:(Printf.sprintf "e%d" i) ~ts:i ()
  done;
  Alcotest.(check int) "retains capacity" 4 (Trace.length t);
  Alcotest.(check int) "drops oldest" 6 (Trace.dropped t);
  let names = List.map (fun (e : Trace.event) -> e.Trace.name) (Trace.events t) in
  Alcotest.(check (list string)) "newest survive, oldest first" [ "e6"; "e7"; "e8"; "e9" ] names

let test_trace_nesting () =
  (* Proper nesting: parent [0,100), children [10,20) and [30,40). *)
  let good = Trace.create () in
  Trace.span good ~tid:1 ~name:"parent" ~ts:0 ~dur:100 ();
  Trace.span good ~tid:1 ~name:"child1" ~ts:10 ~dur:10 ();
  Trace.span good ~tid:1 ~name:"child2" ~ts:30 ~dur:10 ();
  (* A different track may overlap freely. *)
  Trace.span good ~tid:2 ~name:"other" ~ts:15 ~dur:200 ();
  Alcotest.(check bool) "nested spans ok" true (Trace.nesting_well_formed good);
  (* Partial overlap on one track: [0,50) vs [25,75). *)
  let bad = Trace.create () in
  Trace.span bad ~tid:1 ~name:"a" ~ts:0 ~dur:50 ();
  Trace.span bad ~tid:1 ~name:"b" ~ts:25 ~dur:50 ();
  Alcotest.(check bool) "partial overlap rejected" false (Trace.nesting_well_formed bad)

(* --- Trace through a real engine run --- *)

let small_cluster = { Cluster.default_config with Cluster.n_nodes = 3; workers_per_node = 3 }

let khop_program_at graph ~start hops =
  Compile.compile ~name:"khop" graph
    Dsl.(v_lookup ~key:"id" (int start) |> repeat ~dir:Graph.Out ~times:hops () |> count |> build)

let khop_program graph hops = khop_program_at graph ~start:0 hops

let traced_run () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let program = khop_program graph 2 in
  let obs = Recorder.create () in
  let report =
    Async_engine.run
      ~common:(Engine.Common.with_obs obs Engine.Common.default)
      ~cluster_config:small_cluster
      ~channel_config:Channel.default_config ~graph
      [| Engine.submit program |]
  in
  (obs, report)

let test_trace_byte_identical () =
  let export () =
    let obs, report = traced_run () in
    Alcotest.(check bool) "query completed" true (Engine.all_completed report);
    Alcotest.(check bool) "events recorded" true (Trace.length (Recorder.trace obs) > 0);
    Json.to_string (Trace.to_chrome_json (Recorder.trace obs))
  in
  let a = export () and b = export () in
  Alcotest.(check string) "same-seed trace exports byte-identical" a b

let test_trace_engine_nesting () =
  let obs, _ = traced_run () in
  Alcotest.(check bool) "engine trace spans nest" true
    (Trace.nesting_well_formed (Recorder.trace obs))

(* --- Operator stats --- *)

let test_opstats_accounting () =
  let s = Opstats.create () in
  Opstats.seed s 2;
  (* Step 0 fans 2 seeds out into 3; step 1 retires all 3 with rows. *)
  Opstats.record s ~step:0 ~out:2 ~rows:0 ~finished:false ~edges:4 ~memo_hits:1
    ~memo_misses:0 ~busy_ns:100;
  Opstats.record s ~step:0 ~out:1 ~rows:0 ~finished:false ~edges:2 ~memo_hits:0
    ~memo_misses:1 ~busy_ns:50;
  for _ = 1 to 3 do
    Opstats.record s ~step:1 ~out:0 ~rows:1 ~finished:true ~edges:0 ~memo_hits:0
      ~memo_misses:0 ~busy_ns:10
  done;
  Alcotest.(check int) "steps" 2 (Opstats.n_steps s);
  Alcotest.(check int) "in" 5 (Opstats.total_in s);
  Alcotest.(check int) "out" 3 (Opstats.total_out s);
  Alcotest.(check int) "finished" 3 (Opstats.total_finished s);
  Alcotest.(check bool) "conserves" true (Opstats.conserves s);
  (* One unexplained traverser breaks conservation. *)
  Opstats.record s ~step:1 ~out:0 ~rows:0 ~finished:true ~edges:0 ~memo_hits:0
    ~memo_misses:0 ~busy_ns:1;
  Alcotest.(check bool) "extra input detected" false (Opstats.conserves s)

let test_opstats_engine_conservation () =
  let obs, _ = traced_run () in
  let s = Recorder.opstats obs in
  Alcotest.(check bool) "engine recorded steps" true (Opstats.total_in s > 0);
  Alcotest.(check bool) "total in = seeds + total out" true (Opstats.conserves s)

(* --- Flight recorder --- *)

let test_flight_decimation () =
  let f = Flight.create ~capacity:8 () in
  let h = Flight.series f "q.weight" in
  for i = 0 to 999 do
    Flight.sample f h ~time:(i * 10) (float_of_int i)
  done;
  Alcotest.(check bool) "bounded" true (Flight.points h <= 8);
  Alcotest.(check int) "all offers counted" 1000 (Flight.seen h);
  Alcotest.(check int) "find-or-create is stable" 1
    (let h' = Flight.series f "q.weight" in
     ignore (Flight.seen h');
     Flight.n_series f)

(* Flight recorder through a hostile run: drop faults force retransmits
   and aggressive adaptive knobs force mid-query migration, yet every
   retained series must stay monotone in sim-time and the operator
   counts must still conserve (no traverser lost or double-counted
   across a retransmitted delivery or a vertex move). *)
let test_flight_faults_migration () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let khop start = khop_program_at graph ~start 2 in
  let subs =
    Array.init 8 (fun i ->
        Engine.submit ~at:(Sim_time.us (i * 10)) (khop (1 + (i mod 4))))
  in
  let options =
    {
      Async_engine.default_options with
      Async_engine.partition = Partition.Adaptive;
      adaptive =
        {
          Async_engine.default_adaptive with
          Async_engine.refine_interval = Sim_time.us 5;
          min_traffic = 16;
        };
    }
  in
  let obs = Recorder.create () in
  let common =
    {
      (Engine.Common.with_obs obs Engine.Common.default) with
      Engine.Common.check = true;
      faults = Some { Faults.none with Faults.drop = 0.1 };
    }
  in
  let report =
    Async_engine.run ~options ~common
      ~cluster_config:{ Cluster.default_config with Cluster.n_nodes = 2; workers_per_node = 4 }
      ~channel_config:Channel.default_config ~graph subs
  in
  Alcotest.(check bool) "all queries complete" true (Engine.all_completed report);
  let m = report.Engine.metrics in
  Alcotest.(check bool) "retransmits engaged" true (Metrics.retransmits m > 0);
  Alcotest.(check bool) "migrations happened" true (Metrics.migrations m > 0);
  let flight = Recorder.flight obs in
  Alcotest.(check bool) "series recorded" true (Flight.n_series flight > 0);
  (* Every engine-recorded series samples against the simulated clock in
     event order; decimation keeps a subsequence, so retained timestamps
     must be nondecreasing. The engine names worker queue/memo series
     and per-phase weight trajectories; walk them all. *)
  let monotone h =
    let rec ok = function
      | (t0, _) :: ((t1, _) :: _ as rest) -> Sim_time.compare t0 t1 <= 0 && ok rest
      | _ -> true
    in
    ok (Flight.samples h)
  in
  for w = 0 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "worker%d.queue monotone" w)
      true
      (monotone (Flight.series flight (Printf.sprintf "worker%d.queue" w)));
    Alcotest.(check bool)
      (Printf.sprintf "worker%d.memo monotone" w)
      true
      (monotone (Flight.series flight (Printf.sprintf "worker%d.memo" w)))
  done;
  Alcotest.(check bool) "inflight monotone" true (monotone (Flight.series flight "inflight"));
  Alcotest.(check bool) "weight trajectory monotone" true
    (monotone (Flight.series flight "q0.phase0.weight"));
  (* Conservation across retransmit + migration: every traverser that
     entered a step is either forwarded, spawned or retired. *)
  Alcotest.(check bool) "opstats conserve under faults + migration" true
    (Opstats.conserves (Recorder.opstats obs))

(* A trace ring too small for the run must surface its drop count in the
   report's metrics, not lose it inside the recorder. *)
let test_trace_dropped_surfaced () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let obs = Recorder.create ~trace_capacity:8 () in
  let report =
    Async_engine.run
      ~common:(Engine.Common.with_obs obs Engine.Common.default)
      ~cluster_config:small_cluster ~channel_config:Channel.default_config ~graph
      [| Engine.submit (khop_program graph 2) |]
  in
  let dropped = Trace.dropped (Recorder.trace obs) in
  Alcotest.(check bool) "tiny ring dropped events" true (dropped > 0);
  Alcotest.(check int) "drop count mirrored into metrics" dropped
    (Metrics.trace_dropped report.Engine.metrics)

let test_flight_disabled_noop () =
  let f = Flight.disabled in
  let h = Flight.series f "x" in
  Flight.sample f h ~time:0 1.0;
  Alcotest.(check int) "no series" 0 (Flight.n_series f);
  Alcotest.(check int) "no points" 0 (Flight.points h)

(* --- Histogram percentile edge cases --- *)

let test_histogram_edges () =
  let open Pstm_util in
  let h = Histogram.create () in
  Alcotest.(check (float 0.0)) "empty percentile" 0.0 (Histogram.percentile h 99.0);
  (* The empty-histogram contract is a defined 0.0 at every entry point:
     quantile, the (p50, p95, p99) triple, and percentile — an idle
     engine's metrics must print as zeros, not bucket-walk garbage. *)
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Histogram.quantile h 0.5);
  Alcotest.(check bool) "empty quantile triple" true (Histogram.quantiles h = (0., 0., 0.));
  Alcotest.(check bool) "empty min" true (Histogram.min_seen h = None);
  Alcotest.(check bool) "empty max" true (Histogram.max_seen h = None);
  Histogram.add h 3.5;
  Alcotest.(check (float 0.0)) "single-sample p50 exact" 3.5 (Histogram.percentile h 50.0);
  Alcotest.(check (float 0.0)) "single-sample p99 exact" 3.5 (Histogram.percentile h 99.0);
  Alcotest.(check bool) "single min" true (Histogram.min_seen h = Some 3.5);
  Alcotest.(check bool) "single max" true (Histogram.max_seen h = Some 3.5);
  let eq = Histogram.create () in
  for _ = 1 to 100 do
    Histogram.add eq 7.25
  done;
  (* Extrema clamping makes every percentile exact when all samples equal. *)
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "all-equal p%.0f exact" q)
        7.25 (Histogram.percentile eq q))
    [ 1.0; 50.0; 90.0; 99.9 ];
  Alcotest.(check (float 0.0)) "all-equal sum" 725.0 (Histogram.sum eq)

let () =
  Alcotest.run "obs"
    [
      ("json", [ Alcotest.test_case "render" `Quick test_json_render ]);
      ( "trace",
        [
          Alcotest.test_case "disabled no-op" `Quick test_trace_disabled_noop;
          Alcotest.test_case "ring bounds" `Quick test_trace_ring_bounds;
          Alcotest.test_case "nesting" `Quick test_trace_nesting;
          Alcotest.test_case "byte-identical export" `Quick test_trace_byte_identical;
          Alcotest.test_case "engine spans nest" `Quick test_trace_engine_nesting;
          Alcotest.test_case "dropped count surfaced" `Quick test_trace_dropped_surfaced;
        ] );
      ( "opstats",
        [
          Alcotest.test_case "accounting" `Quick test_opstats_accounting;
          Alcotest.test_case "engine conservation" `Quick test_opstats_engine_conservation;
        ] );
      ( "flight",
        [
          Alcotest.test_case "decimation" `Quick test_flight_decimation;
          Alcotest.test_case "disabled no-op" `Quick test_flight_disabled_noop;
          Alcotest.test_case "faults + migration" `Quick test_flight_faults_migration;
        ] );
      ("histogram", [ Alcotest.test_case "percentile edges" `Quick test_histogram_edges ]);
    ]
